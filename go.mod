module veridp

go 1.22
