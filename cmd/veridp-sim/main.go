// Command veridp-sim runs one end-to-end emulation: build a topology,
// compile and install routes, optionally inject a data-plane fault, drive
// an all-pairs ping mesh, and print the verification and localization
// summary. It is the quickest way to watch VeriDP catch an inconsistency.
//
//	veridp-sim -topo fattree4 -fault wrongport
//	veridp-sim -topo stanford -fault blackhole -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"veridp/internal/bloom"
	"veridp/internal/dataplane"
	"veridp/internal/faults"
	"veridp/internal/netfile"
	"veridp/internal/pcap"
	"veridp/internal/sim"
	"veridp/internal/topo"
	"veridp/internal/traffic"
)

var (
	topoName = flag.String("topo", "fattree4", "topology: fattree4|fattree6|stanford|internet2|figure5")
	file     = flag.String("file", "", "load topology+rules from a netfile JSON document instead of -topo")
	fault    = flag.String("fault", "wrongport", "fault to inject: none|wrongport|blackhole|evict")
	seed     = flag.Int64("seed", 1, "RNG seed for fault selection")
	mbits    = flag.Int("mbits", 16, "Bloom tag size in bits")
	verbose  = flag.Bool("v", false, "print every violation")
	pcapPath = flag.String("pcap", "", "capture injected and delivered frames to a pcap file")
)

func main() {
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "veridp-sim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	params := bloom.Params{MBits: *mbits}
	if err := params.Validate(); err != nil {
		return err
	}

	var opts []dataplane.Option
	if *pcapPath != "" {
		out, err := os.Create(*pcapPath)
		if err != nil {
			return err
		}
		defer out.Close()
		w, err := pcap.NewWriter(out)
		if err != nil {
			return err
		}
		opts = append(opts, dataplane.WithCapture(func(ts time.Time, frame []byte) {
			w.WritePacket(ts, frame)
		}))
	}

	var (
		e   *sim.Env
		err error
	)
	if *file != "" {
		f, ferr := os.Open(*file)
		if ferr != nil {
			return ferr
		}
		var rules []netfile.RuleSpec
		var n *topo.Network
		n, rules, err = netfile.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		e = sim.CustomEnv(*file, n, params, opts...)
		if _, err := netfile.InstallRules(n, e.Ctrl, rules); err != nil {
			return err
		}
	} else {
		switch *topoName {
		case "fattree4":
			e, err = sim.FatTreeEnv(4, params, opts...)
		case "fattree6":
			e, err = sim.FatTreeEnv(6, params, opts...)
		case "stanford":
			e, err = sim.StanfordEnv(sim.StanfordDefault, params, opts...)
		case "internet2":
			e, err = sim.Internet2Env(sim.Internet2Default, params, opts...)
		case "figure5":
			e, err = sim.Figure5Env(params, opts...)
		default:
			return fmt.Errorf("unknown topology %q", *topoName)
		}
		if err != nil {
			return err
		}
	}
	pt := e.Table()
	st := pt.Stats()
	fmt.Printf("topology %s: %d switches, %d hosts; path table: %d pairs, %d paths (avg len %.2f)\n",
		e.Name, e.Net.NumSwitches(), len(e.Net.Hosts()), st.Pairs, st.Paths, st.AvgPathLength)

	rng := sim.NewRNG(*seed)
	var injected *faults.Injected
	if *fault != "none" {
		sw, ruleID, ok := faults.RandomRule(e.Fabric, rng)
		if !ok {
			return fmt.Errorf("no rules to fault")
		}
		var inj faults.Injected
		switch *fault {
		case "wrongport":
			inj, err = faults.WrongPort(e.Fabric, sw, ruleID, rng)
		case "blackhole":
			inj, err = faults.Blackhole(e.Fabric, sw, ruleID)
		case "evict":
			inj, err = faults.Evict(e.Fabric, sw, ruleID)
		default:
			return fmt.Errorf("unknown fault %q", *fault)
		}
		if err != nil {
			return err
		}
		injected = &inj
		fmt.Printf("injected fault: %v (switch %s)\n", inj, e.Net.Switch(inj.Switch).Name)
	}

	mesh := traffic.PingMesh(e.Net)
	bv := sim.NewBatchVerifier(e.Handle().Current())
	var delivered, dropped, looped, verified, violated, localized, correct int
	blamed := map[string]int{}
	for _, ping := range mesh {
		// An interrupt mid-mesh stops cleanly between pings; each inject
		// is synchronous, so nothing is left in flight.
		if err := ctx.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "veridp-sim: interrupted, stopping after",
				delivered+dropped+looped, "of", len(mesh), "pings")
			return err
		}
		res, err := e.Fabric.InjectFromHost(ping.SrcHost, ping.Header)
		if err != nil {
			return err
		}
		switch res.Outcome.String() {
		case "delivered":
			delivered++
		case "dropped":
			dropped++
		case "looped":
			looped++
		}
		verdicts := bv.Verdicts(res.Reports)
		for i, rep := range res.Reports {
			v := verdicts[i]
			if v.OK {
				verified++
				continue
			}
			violated++
			sw, _, ok := pt.Localize(rep)
			if ok {
				localized++
				name := e.Net.Switch(sw).Name
				blamed[name]++
				if injected != nil && sw == injected.Switch {
					correct++
				}
				if *verbose {
					fmt.Printf("  VIOLATION %v: %v → blamed %s\n", v.Reason, rep, name)
				}
			} else if *verbose {
				fmt.Printf("  VIOLATION %v: %v (no candidate path)\n", v.Reason, rep)
			}
		}
	}

	fmt.Printf("pings: %d (delivered %d, dropped %d, looped %d)\n", len(mesh), delivered, dropped, looped)
	fmt.Printf("reports verified: %d, violations: %d\n", verified, violated)
	if violated > 0 {
		fmt.Printf("localized: %d/%d", localized, violated)
		if injected != nil {
			fmt.Printf(" (%d blamed the injected switch)", correct)
		}
		fmt.Println()
		for name, n := range blamed {
			fmt.Printf("  blamed %-12s %d times\n", name, n)
		}
	}
	if injected == nil && violated > 0 {
		return fmt.Errorf("violations on a healthy network — this is a bug")
	}
	if injected != nil && violated == 0 {
		fmt.Println("note: the injected fault was not exercised by the ping mesh (try another -seed)")
	}
	return nil
}
