// Command veridp-server is the standalone VeriDP verification server of
// Figure 4: it splices the OpenFlow channel between switches and the
// controller (rebuilding its path table from intercepted FlowMods) and
// collects tag reports over UDP, printing a verdict for each.
//
//	veridp-server -topo figure5 -listen :6653 -controller 127.0.0.1:6654 -reports :48879
//
// Switches dial -listen instead of the controller; the server forwards
// everything upstream unchanged. SIGINT/SIGTERM trigger a graceful
// shutdown: the proxy stops accepting, spliced sessions and in-flight
// report datagrams drain, and the process exits within -shutdown-timeout.
// With -table-cache the built path table is saved on that graceful exit
// and reloaded on the next start (warm start), falling back to a cold
// rebuild if the file is missing or its topology/parameters mismatch.
// See examples/liveproxy for a complete in-process deployment wired over
// real sockets.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"veridp"
	"veridp/internal/bloom"
	"veridp/internal/core"
	"veridp/internal/flowtable"
	"veridp/internal/openflow"
	"veridp/internal/packet"
	"veridp/internal/report"
	"veridp/internal/topo"
)

var (
	topoName    = flag.String("topo", "figure5", "topology: fattree4|fattree6|stanford|internet2|figure5|linear")
	listenAddr  = flag.String("listen", ":6653", "address switches dial (OpenFlow proxy)")
	ctrlAddr    = flag.String("controller", "127.0.0.1:6654", "upstream controller address")
	reportAddr  = flag.String("reports", fmt.Sprintf(":%d", packet.ReportPort), "UDP address for tag reports")
	metricsAddr = flag.String("metrics", "", "HTTP address for Prometheus metrics (empty disables)")
	mbits       = flag.Int("mbits", 16, "Bloom tag size in bits")
	workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "report collector worker goroutines")
	batch       = flag.Int("batch", 0, "max report datagrams a worker verifies per wakeup (0 = default)")
	tableCache  = flag.String("table-cache", "", "path-table snapshot file: loaded on start (warm start), saved on graceful shutdown")
	shutdownTO  = flag.Duration("shutdown-timeout", 5*time.Second, "grace period for draining on SIGINT/SIGTERM")
)

func buildTopo(name string) (*topo.Network, error) {
	switch name {
	case "fattree4":
		return topo.FatTree(4), nil
	case "fattree6":
		return topo.FatTree(6), nil
	case "stanford":
		return topo.Stanford(3), nil
	case "internet2":
		return topo.Internet2(2), nil
	case "figure5":
		return topo.Figure5(), nil
	case "linear":
		return topo.Linear(3, 1), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

func main() {
	flag.Parse()
	logger := log.New(os.Stderr, "veridp-server: ", log.LstdFlags)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, logger); err != nil && !errors.Is(err, context.Canceled) {
		logger.Fatal(err)
	}
}

func run(ctx context.Context, logger *log.Logger) error {
	params := bloom.Params{MBits: *mbits}
	if err := params.Validate(); err != nil {
		return err
	}
	net_, err := buildTopo(*topoName)
	if err != nil {
		return err
	}

	cfg := veridp.MonitorConfig{
		Params: params,
		OnViolation: func(v veridp.Violation) {
			sw := "unlocalized"
			if v.Localized {
				sw = fmt.Sprintf("switch %s", net_.Switch(v.FaultySwitch).Name)
			}
			fmt.Printf("VIOLATION %-22s %v → %s\n", v.Reason, v.Report, sw)
		},
		OnVerified: func(r *veridp.Report) {
			fmt.Printf("ok        %v\n", r)
		},
	}

	// Warm start: reload the path table a previous run saved, falling back
	// to a cold (empty, fills from intercepted FlowMods) table when the
	// cache is absent, stale, or built under different parameters.
	var mon *veridp.Monitor
	var logical map[topo.SwitchID]*flowtable.SwitchConfig
	if *tableCache != "" {
		pt, err := loadTable(*tableCache, net_, params)
		if err != nil {
			logger.Printf("table cache %s unusable (%v); building cold", *tableCache, err)
		} else {
			// The loaded table carries the logical per-switch configs it
			// was saved with; interception keeps editing those.
			logical = pt.Configs
			mon = veridp.NewMonitorFromTable(net_, pt, cfg)
			logger.Printf("warm start: loaded path table from %s", *tableCache)
		}
	}
	if mon == nil {
		logical = make(map[topo.SwitchID]*flowtable.SwitchConfig, net_.NumSwitches())
		for _, sw := range net_.Switches() {
			logical[sw.ID] = flowtable.NewSwitchConfig(sw.Ports())
		}
		mon = veridp.NewMonitor(net_, logical, cfg)
	}

	// Tag-report collector: each worker gets its own batch handler (and
	// with it a private verdict cache).
	copts := []report.Option{report.WithWorkers(*workers)}
	if *batch > 0 {
		copts = append(copts, report.WithBatch(*batch))
	}
	collector, err := report.NewCollector(*reportAddr, mon.BatchHandler, logger, copts...)
	if err != nil {
		return err
	}
	defer collector.Close()
	// chan: buffered 1 — the Run goroutine hands off its exit status without rendezvous, so it can never leak
	collectorDone := make(chan error, 1)
	go func() {
		// Run drains its workers before returning, so a receive from
		// collectorDone is the "in-flight datagrams finished" signal.
		collectorDone <- collector.Run(ctx)
	}()
	logger.Printf("collecting tag reports on %v (%d workers)", collector.Addr(), collector.Workers())

	// Metrics endpoint.
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", mon)
		msrv := &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			logger.Printf("serving metrics on %s/metrics", *metricsAddr)
			if err := msrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("metrics server stopped: %v", err)
			}
		}()
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), *shutdownTO)
			defer cancel()
			msrv.Shutdown(sctx)
		}()
	}

	// OpenFlow interception proxy.
	proxy := openflow.NewProxy(*ctrlAddr, mon.ProxyHooks(logical), logger)
	l, err := net.Listen("tcp", *listenAddr)
	if err != nil {
		return err
	}
	logger.Printf("proxying OpenFlow on %v → controller %s", l.Addr(), *ctrlAddr)
	err = proxy.Serve(ctx, l)

	// Serve has drained its spliced sessions; give the collector the
	// remaining grace period to drain in-flight datagrams.
	if ctx.Err() != nil {
		logger.Printf("shutting down (grace %v)", *shutdownTO)
	}
	select {
	case cerr := <-collectorDone:
		if ctx.Err() == nil && cerr != nil {
			logger.Printf("collector stopped: %v", cerr)
		}
	case <-time.After(*shutdownTO):
		logger.Printf("collector did not drain within %v", *shutdownTO)
	}

	// Graceful shutdown persists the table so the next start is warm.
	if *tableCache != "" && ctx.Err() != nil {
		if serr := saveTable(*tableCache, mon); serr != nil {
			logger.Printf("table cache %s not saved: %v", *tableCache, serr)
		} else {
			logger.Printf("saved path table to %s", *tableCache)
		}
	}
	return err
}

// loadTable deserializes a path-table snapshot and validates it against
// this run's topology and tag parameters. Any mismatch is an error: the
// caller falls back to a cold build rather than verifying against state
// from a different deployment.
func loadTable(path string, net_ *topo.Network, params bloom.Params) (*core.PathTable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	pt, err := core.Load(f, net_)
	if err != nil {
		return nil, err
	}
	if pt.Params != params {
		return nil, fmt.Errorf("snapshot tag params %+v differ from -mbits %d", pt.Params, params.MBits)
	}
	return pt, nil
}

// saveTable writes the monitor's table to a temp file and renames it into
// place, so a crash mid-write can never leave a truncated cache behind.
func saveTable(path string, mon *veridp.Monitor) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := mon.PathTable().Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
