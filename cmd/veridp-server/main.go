// Command veridp-server is the standalone VeriDP verification server of
// Figure 4: it splices the OpenFlow channel between switches and the
// controller (rebuilding its path table from intercepted FlowMods) and
// collects tag reports over UDP, printing a verdict for each.
//
//	veridp-server -topo figure5 -listen :6653 -controller 127.0.0.1:6654 -reports :48879
//
// Switches dial -listen instead of the controller; the server forwards
// everything upstream unchanged. See examples/liveproxy for a complete
// in-process deployment wired over real sockets.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"

	"veridp"
	"veridp/internal/bloom"
	"veridp/internal/flowtable"
	"veridp/internal/openflow"
	"veridp/internal/packet"
	"veridp/internal/report"
	"veridp/internal/topo"
)

var (
	topoName    = flag.String("topo", "figure5", "topology: fattree4|fattree6|stanford|internet2|figure5|linear")
	listenAddr  = flag.String("listen", ":6653", "address switches dial (OpenFlow proxy)")
	ctrlAddr    = flag.String("controller", "127.0.0.1:6654", "upstream controller address")
	reportAddr  = flag.String("reports", fmt.Sprintf(":%d", packet.ReportPort), "UDP address for tag reports")
	metricsAddr = flag.String("metrics", "", "HTTP address for Prometheus metrics (empty disables)")
	mbits       = flag.Int("mbits", 16, "Bloom tag size in bits")
	workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "report collector worker goroutines")
)

func buildTopo(name string) (*topo.Network, error) {
	switch name {
	case "fattree4":
		return topo.FatTree(4), nil
	case "fattree6":
		return topo.FatTree(6), nil
	case "stanford":
		return topo.Stanford(3), nil
	case "internet2":
		return topo.Internet2(2), nil
	case "figure5":
		return topo.Figure5(), nil
	case "linear":
		return topo.Linear(3, 1), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

func main() {
	flag.Parse()
	logger := log.New(os.Stderr, "veridp-server: ", log.LstdFlags)
	if err := run(logger); err != nil {
		logger.Fatal(err)
	}
}

func run(logger *log.Logger) error {
	params := bloom.Params{MBits: *mbits}
	if err := params.Validate(); err != nil {
		return err
	}
	net_, err := buildTopo(*topoName)
	if err != nil {
		return err
	}

	// The server's own logical view starts empty and fills from the
	// intercepted FlowMods.
	logical := make(map[topo.SwitchID]*flowtable.SwitchConfig, net_.NumSwitches())
	for _, sw := range net_.Switches() {
		logical[sw.ID] = flowtable.NewSwitchConfig(sw.Ports())
	}
	mon := veridp.NewMonitor(net_, logical, veridp.MonitorConfig{
		Params: params,
		OnViolation: func(v veridp.Violation) {
			sw := "unlocalized"
			if v.Localized {
				sw = fmt.Sprintf("switch %s", net_.Switch(v.FaultySwitch).Name)
			}
			fmt.Printf("VIOLATION %-22s %v → %s\n", v.Reason, v.Report, sw)
		},
		OnVerified: func(r *veridp.Report) {
			fmt.Printf("ok        %v\n", r)
		},
	})

	// Tag-report collector.
	collector, err := report.NewCollector(*reportAddr, mon.HandleReport, logger, report.WithWorkers(*workers))
	if err != nil {
		return err
	}
	defer collector.Close()
	go func() {
		if err := collector.Run(); err != nil {
			logger.Printf("collector stopped: %v", err)
		}
	}()
	logger.Printf("collecting tag reports on %v (%d workers)", collector.Addr(), collector.Workers())

	// Metrics endpoint.
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", mon)
		go func() {
			logger.Printf("serving metrics on %s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				logger.Printf("metrics server stopped: %v", err)
			}
		}()
	}

	// OpenFlow interception proxy.
	proxy := openflow.NewProxy(*ctrlAddr, mon.ProxyHooks(logical), logger)
	l, err := net.Listen("tcp", *listenAddr)
	if err != nil {
		return err
	}
	logger.Printf("proxying OpenFlow on %v → controller %s", l.Addr(), *ctrlAddr)
	return proxy.Serve(l)
}
