// Command veridp-bench regenerates every table and figure of the paper's
// evaluation (§6):
//
//	table2    path-table statistics (entries, paths, avg length, build time)
//	fig6      distribution of paths per inport-outport pair
//	functest  the §6.2 function tests (black hole, deviation, ACL, loop)
//	fig12     false-negative rate vs Bloom tag size
//	table3    fault-localization probability on fat trees
//	fig13     verification time per tag report
//	fig14     incremental path-table update time per rule
//	table4    data-plane pipeline overhead (FPGA cycle model)
//	all       everything above
//
// By default the synthetic Stanford/Internet2 rule sets run at laptop
// scale; -full uses the published rule counts (slower; see DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"math/rand"

	"veridp/internal/bloom"
	"veridp/internal/dataplane/hwpipe"
	"veridp/internal/faults"
	"veridp/internal/flowtable"
	"veridp/internal/packet"
	"veridp/internal/sim"
	"veridp/internal/traffic"
)

var (
	experiment = flag.String("experiment", "all", "which experiment to run (table2|fig6|functest|fig12|table3|fig13|fig14|table4|latency|volume|ablation|all)")
	full       = flag.Bool("full", false, "use the paper's full rule-set scale (slow)")
	trials     = flag.Int("trials", 2000, "fault trials per Figure 12 point")
	rounds     = flag.Int("rounds", 10, "fault rounds per Table 3 row")
	seed       = flag.Int64("seed", 1, "experiment RNG seed")
)

func main() {
	flag.Parse()
	runners := map[string]func() error{
		"table2":   table2,
		"fig6":     fig6,
		"functest": functest,
		"fig12":    fig12,
		"table3":   table3,
		"fig13":    fig13,
		"fig14":    fig14,
		"table4":   table4,
		"latency":  latency,
		"volume":   volume,
		"ablation": ablation,
	}
	order := []string{"table2", "fig6", "functest", "fig12", "table3", "fig13", "fig14", "table4", "latency", "volume", "ablation"}
	if *experiment != "all" {
		if _, ok := runners[*experiment]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
			os.Exit(2)
		}
		order = []string{*experiment}
	}
	for _, name := range order {
		if err := runners[name](); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

func scales() (sim.StanfordScale, sim.Internet2Scale) {
	if *full {
		return sim.StanfordFull, sim.Internet2Full
	}
	return sim.StanfordDefault, sim.Internet2Default
}

// buildEnvs constructs the four Table 2 setups, timing construction.
func table2() error {
	st, i2 := scales()
	fmt.Println("== Table 2: path table statistics ==")
	fmt.Printf("%-12s %10s %10s %16s %12s\n", "Setup", "# entries", "# paths", "avg. path len.", "time")
	type build struct {
		name string
		mk   func() (*sim.Env, error)
	}
	builds := []build{
		{"Stanford", func() (*sim.Env, error) { return sim.StanfordEnv(st, bloom.DefaultParams) }},
		{"Internet2", func() (*sim.Env, error) { return sim.Internet2Env(i2, bloom.DefaultParams) }},
		{"FT(k=4)", func() (*sim.Env, error) { return sim.FatTreeEnv(4, bloom.DefaultParams) }},
		{"FT(k=6)", func() (*sim.Env, error) { return sim.FatTreeEnv(6, bloom.DefaultParams) }},
	}
	for _, b := range builds {
		e, err := b.mk()
		if err != nil {
			return err
		}
		start := time.Now()
		pt := e.Build()
		elapsed := time.Since(start)
		s := pt.Stats()
		fmt.Printf("%-12s %10d %10d %16.2f %12s\n", b.name, s.Pairs, s.Paths, s.AvgPathLength, elapsed.Round(time.Millisecond))
	}
	fmt.Println()
	return nil
}

func fig6() error {
	st, i2 := scales()
	fmt.Println("== Figure 6: paths per inport-outport pair (CDF) ==")
	for _, b := range []struct {
		name string
		mk   func() (*sim.Env, error)
	}{
		{"Stanford", func() (*sim.Env, error) { return sim.StanfordEnv(st, bloom.DefaultParams) }},
		{"Internet2", func() (*sim.Env, error) { return sim.Internet2Env(i2, bloom.DefaultParams) }},
	} {
		e, err := b.mk()
		if err != nil {
			return err
		}
		dist := e.Table().PathsPerPair()
		if len(dist) == 0 {
			continue
		}
		fmt.Printf("%s: %d pairs\n", b.name, len(dist))
		sort.Ints(dist)
		for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
			idx := int(q * float64(len(dist)-1))
			fmt.Printf("  p%-4.0f paths/pair: %d\n", q*100, dist[idx])
		}
		hist := map[int]int{}
		for _, d := range dist {
			hist[d]++
		}
		keys := make([]int, 0, len(hist))
		for k := range hist {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		cum := 0
		for _, k := range keys {
			cum += hist[k]
			fmt.Printf("  ≤%2d paths: %6.2f%%\n", k, 100*float64(cum)/float64(len(dist)))
		}
	}
	fmt.Println()
	return nil
}

func functest() error {
	st, _ := scales()
	fmt.Println("== §6.2 function tests (Stanford-like) ==")
	results, err := sim.FunctionTests(st, bloom.DefaultParams)
	if err != nil {
		return err
	}
	for _, r := range results {
		status := "FAULT MISSED"
		if r.Detected {
			status = "detected"
		}
		loc := ""
		if r.Expected != "" {
			loc = fmt.Sprintf(" localized=%v (blamed %q, expected %q)", r.Localized, r.Blamed, r.Expected)
		}
		fmt.Printf("  %-16s %s%s — %s\n", r.Name+":", status, loc, r.Detail)
	}
	fmt.Println()
	return nil
}

func fig12() error {
	st, i2 := scales()
	fmt.Println("== Figure 12: false negative rate vs Bloom filter size ==")
	sizes := []int{8, 16, 24, 32, 48, 64}
	for _, b := range []struct {
		name string
		mk   func() (*sim.Env, error)
	}{
		{"Stanford", func() (*sim.Env, error) { return sim.StanfordEnv(st, bloom.DefaultParams) }},
		{"Internet2", func() (*sim.Env, error) { return sim.Internet2Env(i2, bloom.DefaultParams) }},
		{"FT(k=4)", func() (*sim.Env, error) { return sim.FatTreeEnv(4, bloom.DefaultParams) }},
	} {
		e, err := b.mk()
		if err != nil {
			return err
		}
		points, err := sim.FalseNegativeSweep(e, sizes, *trials, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("%s (n=%d trials/point):\n", b.name, *trials)
		fmt.Printf("  %6s %12s %12s %10s %10s\n", "bits", "absolute", "relative", "n1/n", "n2")
		for _, p := range points {
			fmt.Printf("  %6d %11.3f%% %11.3f%% %10.2f %10d\n",
				p.MBits, p.Absolute()*100, p.Relative()*100,
				float64(p.Arrived)/float64(p.Trials), p.FalseNegatives)
		}
	}
	fmt.Println()
	return nil
}

func table3() error {
	fmt.Println("== Table 3: fault localization on fat trees ==")
	fmt.Printf("%-10s %16s %18s %18s %16s\n", "Setup", "# failed verif.", "# recovered paths", "localization prob.", "strawman acc.")
	for _, k := range []int{4, 6} {
		e, err := sim.FatTreeEnv(k, bloom.DefaultParams)
		if err != nil {
			return err
		}
		res, err := sim.Localization(e, *rounds, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("FT(k=%d)    %16d %18d %17.1f%% %15.1f%%\n",
			k, res.FailedVerifications, res.RecoveredPaths,
			res.Probability()*100, res.StrawmanAccuracy()*100)
	}
	fmt.Println()
	return nil
}

func fig13() error {
	st, i2 := scales()
	fmt.Println("== Figure 13: verification time per tag report ==")
	const reps = 10000 // the paper verifies each report 10^4 times
	for _, b := range []struct {
		name string
		mk   func() (*sim.Env, error)
	}{
		{"Stanford", func() (*sim.Env, error) { return sim.StanfordEnv(st, bloom.DefaultParams) }},
		{"Internet2", func() (*sim.Env, error) { return sim.Internet2Env(i2, bloom.DefaultParams) }},
	} {
		e, err := b.mk()
		if err != nil {
			return err
		}
		pt := e.Table()
		var reports []*packet.Report
		for _, w := range traffic.Witnesses(pt) {
			res, err := e.Fabric.Inject(w.Inport, w.Header)
			if err != nil {
				return err
			}
			if len(res.Reports) > 0 {
				reports = append(reports, res.Reports[len(res.Reports)-1])
			}
		}
		if len(reports) == 0 {
			continue
		}
		start := time.Now()
		n := 0
		for i := 0; i < reps; i++ {
			if v := pt.Verify(reports[i%len(reports)]); !v.OK {
				return fmt.Errorf("witness failed verification: %v", v.Reason)
			}
			n++
		}
		per := time.Since(start) / time.Duration(n)
		fmt.Printf("  %-10s %8d reports, %10v per verification (%.2e verif/s)\n",
			b.name, len(reports), per, float64(time.Second)/float64(per))
	}
	fmt.Println()
	return nil
}

func fig14() error {
	_, i2 := scales()
	fmt.Println("== Figure 14: incremental path-table update (Internet2, router wash) ==")
	res, err := sim.IncrementalUpdate(i2, "wash")
	if err != nil {
		return err
	}
	fmt.Printf("  rules added: %d\n", len(res.Measurements))
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		fmt.Printf("  p%-4.0f per-rule update: %v\n", q*100, res.Percentile(q))
	}
	under10ms := 0
	for _, m := range res.Measurements {
		if m.Duration < 10*time.Millisecond {
			under10ms++
		}
	}
	fmt.Printf("  under 10 ms: %.1f%% (paper: most rules)\n", 100*float64(under10ms)/float64(len(res.Measurements)))
	fmt.Printf("  full rebuild for comparison: %v\n", res.RebuildTime)
	fmt.Println()
	return nil
}

// ablation compares the localization variants on one exercised fault:
// Algorithm 4 (Bloom-guided, with fold equality), the hash-tag blind
// search, and the §4.3 strawman.
func ablation() error {
	fmt.Println("== Localization ablation: Bloom-guided vs hash-tag blind vs strawman ==")
	e, err := sim.FatTreeEnv(4, bloom.DefaultParams)
	if err != nil {
		return err
	}
	pt := e.Table()
	rng := rand.New(rand.NewSource(*seed))
	var failing []*packet.Report
	var injSwitch string
	for attempt := 0; attempt < 50 && len(failing) == 0; attempt++ {
		sw, ruleID, ok := faults.RandomRule(e.Fabric, rng)
		if !ok {
			return fmt.Errorf("no rules")
		}
		inj, err := faults.WrongPort(e.Fabric, sw, ruleID, rng)
		if err != nil {
			return err
		}
		for _, ping := range traffic.PingMesh(e.Net) {
			res, err := e.Fabric.InjectFromHost(ping.SrcHost, ping.Header)
			if err != nil {
				return err
			}
			for _, rep := range res.Reports {
				if !pt.Verify(rep).OK {
					failing = append(failing, rep)
				}
			}
		}
		injSwitch = e.Net.Switch(inj.Switch).Name
		if len(failing) == 0 {
			e.Fabric.Switch(sw).Config.Table.Modify(ruleID, func(r *flowtable.Rule) { r.OutPort = inj.OldPort })
		}
	}
	if len(failing) == 0 {
		return fmt.Errorf("no fault exercised")
	}
	fmt.Printf("fault at %s produced %d failing reports\n", injSwitch, len(failing))

	measure := func(name string, fn func(*packet.Report) int) {
		start := time.Now()
		cands := 0
		for _, rep := range failing {
			cands += fn(rep)
		}
		per := time.Since(start) / time.Duration(len(failing))
		fmt.Printf("  %-22s %10v/report  %5.2f candidates/report\n", name, per, float64(cands)/float64(len(failing)))
	}
	measure("Algorithm 4 (Bloom)", func(r *packet.Report) int { return len(pt.PathInfer(r)) })
	measure("hash-tag blind", func(r *packet.Report) int { return len(pt.PathInferBlind(r)) })
	correct := 0
	start := time.Now()
	for _, rep := range failing {
		if sw, ok := pt.StrawmanLocalize(rep); ok && e.Net.Switch(sw).Name == injSwitch {
			correct++
		}
	}
	fmt.Printf("  %-22s %10v/report  %5.1f%% correct switch\n", "strawman (§4.3)",
		time.Since(start)/time.Duration(len(failing)), 100*float64(correct)/float64(len(failing)))
	fmt.Println()
	return nil
}

func latency() error {
	fmt.Println("== §4.5: detection latency vs the T_s + T_a bound ==")
	for _, cfg := range []sim.LatencyConfig{
		{SamplingInterval: 50 * time.Millisecond, MaxInterArrival: 20 * time.Millisecond, Trials: 50, Seed: *seed},
		{SamplingInterval: 200 * time.Millisecond, MaxInterArrival: 50 * time.Millisecond, Trials: 50, Seed: *seed},
		{SamplingInterval: 1 * time.Second, MaxInterArrival: 200 * time.Millisecond, Trials: 50, Seed: *seed},
	} {
		res, err := sim.DetectionLatency(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("  T_s=%-6v T_a=%-6v bound=%-7v max measured=%-10v (%d trials, bound held: %v)\n",
			cfg.SamplingInterval, cfg.MaxInterArrival, res.Bound, res.Max(), len(res.Latencies), res.Max() <= res.Bound)
	}
	fmt.Println()
	return nil
}

func volume() error {
	fmt.Println("== §7: telemetry volume, per-hop postcards (NetSight) vs sampled tag reports ==")
	for _, iv := range []time.Duration{50 * time.Millisecond, 200 * time.Millisecond, time.Second} {
		res, err := sim.ReportVolume(sim.VolumeConfig{
			Flows:            50,
			PacketsPerFlow:   60,
			MeanInterArrival: 10 * time.Millisecond,
			SamplingInterval: iv,
			Seed:             *seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  T_s=%-6v packets=%d postcards=%d veridp-reports=%d ratio=%.0fx\n",
			iv, res.Packets, res.NetSightPostcards, res.VeriDPReports, res.Ratio())
	}
	fmt.Println()
	return nil
}

func table4() error {
	fmt.Println("== Table 4: data-plane pipeline delay (ONetSwitch cycle model) ==")
	rows, err := hwpipe.Default().Table4([]int{128, 256, 512, 1024, 1500})
	if err != nil {
		return err
	}
	fmt.Printf("  %-10s %12s %12s %10s %12s %10s\n", "size (B)", "native", "sampling", "OH", "tagging", "OH")
	for _, r := range rows {
		fmt.Printf("  %-10d %12v %12v %9.2f%% %12v %9.2f%%\n",
			r.PacketSize, r.Native, r.Sampling, r.SamplingOH*100, r.Tagging, r.TaggingOH*100)
	}
	fmt.Println()
	return nil
}
