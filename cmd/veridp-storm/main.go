// Command veridp-storm runs seeded network-state fuzzing campaigns
// against a live VeriDP deployment and checks the five invariant oracles
// after every step (exactly-one-verdict, no false positives, localization
// pinpoints the fault, counter folds, no goroutine leaks).
//
//	veridp-storm -topo ft4 -steps 500 -seed 1          # one campaign
//	veridp-storm -topo ft6 -duration 30s               # seeds until the clock runs out
//	veridp-storm -replay failing.json                  # replay a campaign file
//	veridp-storm -replay failing.json -minimize        # shrink it with ddmin
//
// Exit status: 0 every campaign passed, 1 an oracle failed (the campaign
// is written to -fail-out for replay), 2 harness error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"veridp/internal/storm"
)

var (
	topoName  = flag.String("topo", "ft4", "topology: ft4|ft6|figure5")
	seed      = flag.Int64("seed", 1, "campaign generator seed")
	steps     = flag.Int("steps", 500, "steps per campaign")
	probes    = flag.Int("probes", 4, "probe injections after every step")
	mbits     = flag.Int("mbits", 64, "Bloom tag size in bits")
	duration  = flag.Duration("duration", 0, "run consecutive seeds until this elapses (0: one campaign)")
	replay    = flag.String("replay", "", "replay a campaign file instead of generating")
	minimize  = flag.Bool("minimize", false, "with -replay or on failure: ddmin-shrink the failing campaign")
	minBudget = flag.Int("minimize-budget", storm.MinimizeBudget, "max campaign re-runs during minimization")
	failOut   = flag.String("fail-out", "storm-failure.json", "write the failing (and .min minimized) campaign here")
	desyncW   = flag.Int("desync-weight", 0, "generator weight of the desync-params self-test op")
	verbose   = flag.Bool("v", false, "log per-campaign progress")
)

func main() {
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	code, err := run(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "veridp-storm:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(ctx context.Context) (int, error) {
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	if *replay != "" {
		data, err := os.ReadFile(*replay)
		if err != nil {
			return 2, err
		}
		c, err := storm.Decode(data)
		if err != nil {
			return 2, err
		}
		return campaign(ctx, c, logf)
	}

	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	s := *seed
	for {
		c := storm.Generate(*topoName, s, *steps, *probes, storm.GenOptions{DesyncWeight: *desyncW})
		c.MBits = *mbits
		code, err := campaign(ctx, c, logf)
		if code != 0 || err != nil {
			return code, err
		}
		if deadline.IsZero() || !time.Now().Before(deadline) || ctx.Err() != nil {
			return 0, ctx.Err()
		}
		s++
	}
}

// campaign runs one campaign, reporting and persisting any failure.
func campaign(ctx context.Context, c *storm.Campaign, logf func(string, ...any)) (int, error) {
	res, err := storm.Run(ctx, c, logf)
	if err != nil {
		return 2, err
	}
	fmt.Printf("storm: topo=%s seed=%d steps=%d/%d probes=%d reports=%d verified=%d violated=%d localized=%d\n",
		c.Topo, c.Seed, res.Steps, len(c.Steps), res.Probes, res.Reports,
		res.Verified, res.Violated, res.Localized)
	if res.Failure == nil {
		return 0, nil
	}
	fmt.Printf("storm: FAIL %s\n", res.Failure)
	if err := writeCampaign(*failOut, c); err != nil {
		return 2, err
	}
	fmt.Printf("storm: failing campaign written to %s\n", *failOut)
	if *minimize {
		min, err := storm.Minimize(ctx, c, *minBudget, logf)
		if err != nil {
			return 2, err
		}
		path := *failOut + ".min"
		if err := writeCampaign(path, min); err != nil {
			return 2, err
		}
		fmt.Printf("storm: minimized to %d steps, written to %s\n", len(min.Steps), path)
	}
	return 1, nil
}

func writeCampaign(path string, c *storm.Campaign) error {
	data, err := storm.Encode(c)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
