// Command bench2json converts `go test -bench` text output (the
// benchstat input format) into a JSON document, so benchmark baselines
// can be committed and diffed mechanically without leaving the stdlib.
//
//	go test -run '^$' -bench . -count 6 ./... | tee BENCH.txt
//	go run ./cmd/bench2json < BENCH.txt > BENCH_baseline.json
//
// Repeated runs of one benchmark (from -count) stay separate records;
// benchstat-style aggregation is the consumer's job. Lines that are not
// benchmark results (pkg headers, PASS/ok trailers) populate the context
// block or are skipped.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line: name, iteration count, and every
// value-unit metric pair the line reported (ns/op, B/op, custom metrics).
type Result struct {
	Name    string             `json:"name"`
	Package string             `json:"package,omitempty"`
	Iters   int64              `json:"iterations"`
	Metrics map[string]float64 `json:"metrics"`
}

// Document is the file layout: run context plus the flat result list.
type Document struct {
	Context map[string]string `json:"context"`
	Results []Result          `json:"results"`
}

func main() {
	doc := Document{Context: map[string]string{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "PASS") || strings.HasPrefix(line, "ok "):
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			doc.Context[k] = strings.TrimSpace(v)
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				r.Package = pkg
				doc.Results = append(doc.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json: read:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json: write:", err)
		os.Exit(1)
	}
}

// parseBenchLine splits "BenchmarkName-4  123  45.6 ns/op  7 B/op ..."
// into a Result. Fields after the iteration count come in value-unit
// pairs; a pair that fails to parse ends the line (benchmarks never emit
// prose mid-line, but be defensive).
func parseBenchLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			break
		}
		r.Metrics[f[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}
