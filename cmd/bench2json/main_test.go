package main

import "testing"

// The allocation columns -benchmem adds (B/op, allocs/op) must survive
// into the metrics map alongside ns/op and custom metrics — the
// bench-smoke job watches allocs/op to spot hot-path regressions.
func TestParseBenchLineBenchmem(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkVerifyReport-4   	  746948	      1613 ns/op	       0 B/op	       0 allocs/op")
	if !ok {
		t.Fatal("parseBenchLine rejected a -benchmem line")
	}
	if r.Name != "BenchmarkVerifyReport-4" || r.Iters != 746948 {
		t.Errorf("name/iters = %q/%d, want BenchmarkVerifyReport-4/746948", r.Name, r.Iters)
	}
	want := map[string]float64{"ns/op": 1613, "B/op": 0, "allocs/op": 0}
	for unit, v := range want {
		got, present := r.Metrics[unit]
		if !present {
			t.Errorf("metric %q missing from %v", unit, r.Metrics)
		} else if got != v {
			t.Errorf("metric %q = %v, want %v", unit, got, v)
		}
	}
}

// Custom testing.B metrics and the allocation columns coexist on one line.
func TestParseBenchLineCustomMetrics(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkCollector-8   	   12345	     98765 ns/op	        1.000 reports/op	     128 B/op	       2 allocs/op")
	if !ok {
		t.Fatal("parseBenchLine rejected a mixed-metrics line")
	}
	for _, unit := range []string{"ns/op", "reports/op", "B/op", "allocs/op"} {
		if _, present := r.Metrics[unit]; !present {
			t.Errorf("metric %q missing from %v", unit, r.Metrics)
		}
	}
	if r.Metrics["allocs/op"] != 2 || r.Metrics["B/op"] != 128 {
		t.Errorf("allocation metrics = %v, want B/op=128 allocs/op=2", r.Metrics)
	}
}

func TestParseBenchLineRejectsProse(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken-4",                    // no iteration count
		"BenchmarkBroken-4 notanumber 1 ns/op", // bad iteration count
		"BenchmarkBroken-4 100 fast ns/op",     // bad value
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("parseBenchLine accepted %q", line)
		}
	}
}
