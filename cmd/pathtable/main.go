// Command pathtable builds a path table for a chosen topology and dumps
// its statistics and (optionally) its entries — the operator-facing view
// of what the control plane believes about every edge-to-edge path.
//
//	pathtable -topo figure5 -dump
//	pathtable -topo stanford
//	pathtable -file mynet.json -dump
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"veridp/internal/bloom"
	"veridp/internal/core"
	"veridp/internal/netfile"
	"veridp/internal/sim"
	"veridp/internal/topo"
)

var (
	topoName = flag.String("topo", "figure5", "topology: fattree4|fattree6|stanford|internet2|figure5")
	file     = flag.String("file", "", "load topology+rules from a netfile JSON document instead of -topo")
	dump     = flag.Bool("dump", false, "dump every path entry")
	mbits    = flag.Int("mbits", 16, "Bloom tag size in bits")
	saveTo   = flag.String("save", "", "write a path-table snapshot after building")
	loadFrom = flag.String("load", "", "restore the path table from a snapshot instead of building")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pathtable:", err)
		os.Exit(1)
	}
}

func run() error {
	params := bloom.Params{MBits: *mbits}
	if err := params.Validate(); err != nil {
		return err
	}
	e, err := buildEnv(params)
	if err != nil {
		return err
	}

	start := time.Now()
	var pt *core.PathTable
	if *loadFrom != "" {
		in, err := os.Open(*loadFrom)
		if err != nil {
			return err
		}
		pt, err = core.Load(in, e.Net)
		in.Close()
		if err != nil {
			return err
		}
	} else {
		pt = e.Build()
	}
	elapsed := time.Since(start)
	if *saveTo != "" {
		out, err := os.Create(*saveTo)
		if err != nil {
			return err
		}
		if err := pt.Save(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		if fi, err := os.Stat(*saveTo); err == nil {
			fmt.Printf("snapshot:   %s (%d bytes)\n", *saveTo, fi.Size())
		}
	}
	st := pt.Stats()
	fmt.Printf("topology:   %s (%d switches, %d links, %d hosts)\n",
		e.Name, e.Net.NumSwitches(), e.Net.NumLinks(), len(e.Net.Hosts()))
	fmt.Printf("entries:    %d port pairs\n", st.Pairs)
	fmt.Printf("paths:      %d\n", st.Paths)
	fmt.Printf("avg length: %.2f hops\n", st.AvgPathLength)
	verb := "built in: "
	if *loadFrom != "" {
		verb = "restored in:"
	}
	fmt.Printf("%s %v\n", verb, elapsed)

	if !*dump {
		return nil
	}
	fmt.Println()
	name := func(pk topo.PortKey) string {
		sw := e.Net.Switch(pk.Switch)
		if sw == nil {
			return pk.String()
		}
		return fmt.Sprintf("%s:%s", sw.Name, pk.Port)
	}
	pt.Entries(func(in, out topo.PortKey, pe *core.PathEntry) {
		headers := e.Space.T.SatCount(pe.Headers)
		fmt.Printf("%s → %s  tag=%v  |headers|=%.3g\n  %v\n", name(in), name(out), pe.Tag, headers, pe.Path)
	})
	return nil
}

func buildEnv(params bloom.Params) (*sim.Env, error) {
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		n, rules, err := netfile.Load(f)
		if err != nil {
			return nil, err
		}
		e := sim.CustomEnv(*file, n, params)
		if _, err := netfile.InstallRules(n, e.Ctrl, rules); err != nil {
			return nil, err
		}
		return e, nil
	}
	switch *topoName {
	case "fattree4":
		return sim.FatTreeEnv(4, params)
	case "fattree6":
		return sim.FatTreeEnv(6, params)
	case "stanford":
		return sim.StanfordEnv(sim.StanfordDefault, params)
	case "internet2":
		return sim.Internet2Env(sim.Internet2Default, params)
	case "figure5":
		return sim.Figure5Env(params)
	default:
		return nil, fmt.Errorf("unknown topology %q", *topoName)
	}
}
