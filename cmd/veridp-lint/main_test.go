package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// scratch materializes a throwaway module, chdirs into it, and returns
// its directory. Each file is name → content.
func scratch(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module scratch\n\ngo 1.22\n"
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
	return dir
}

// One lockedblock violation: a channel send under a held mutex.
const violation = `package scratch

import "sync"

type s struct {
	mu sync.Mutex
	ch chan int
}

func (x *s) f() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.ch <- 1
}
`

func TestGoldenOutput(t *testing.T) {
	scratch(t, map[string]string{"main.go": violation})
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"./..."}); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr.String())
	}
	wantOut := "main.go:13:7: channel send while holding scratch.s.mu [lockedblock]\n"
	if stdout.String() != wantOut {
		t.Errorf("stdout = %q, want %q", stdout.String(), wantOut)
	}
	wantSummary := "veridp-lint: 1 finding(s), 0 suppressed, 0 baselined\n"
	if stderr.String() != wantSummary {
		t.Errorf("stderr = %q, want %q", stderr.String(), wantSummary)
	}
}

func TestJSONOutput(t *testing.T) {
	scratch(t, map[string]string{"main.go": violation})
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"-json", "./..."}); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr.String())
	}
	var out jsonOutput
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout.String())
	}
	if len(out.Diagnostics) != 1 || out.Summary.Findings != 1 {
		t.Fatalf("diagnostics = %+v, want exactly one", out)
	}
	d := out.Diagnostics[0]
	if d.Checker != "lockedblock" || d.File != "main.go" || d.Line != 13 {
		t.Errorf("diagnostic = %+v, want lockedblock at main.go:13", d)
	}
}

func TestCheckerSelection(t *testing.T) {
	scratch(t, map[string]string{"main.go": violation})
	var stdout, stderr bytes.Buffer
	// The violation is a lockedblock finding; running only mutexbyvalue
	// must come back clean.
	if code := run(&stdout, &stderr, []string{"-checkers", "mutexbyvalue", "./..."}); code != 0 {
		t.Errorf("exit = %d, want 0\nstderr: %s", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run(&stdout, &stderr, []string{"-c", "lockedblock", "./..."}); code != 1 {
		t.Errorf("exit = %d, want 1 from the shorthand flag", code)
	}
}

func TestUnknownCheckerExit2(t *testing.T) {
	scratch(t, map[string]string{"main.go": violation})
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"-checkers", "nosuchpass", "./..."}); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown checker") {
		t.Errorf("stderr = %q, want unknown-checker error", stderr.String())
	}
}

func TestLoadErrorExit2(t *testing.T) {
	scratch(t, map[string]string{"main.go": "package scratch\n\nfunc broken( {\n"})
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"./..."}); code != 2 {
		t.Errorf("exit = %d, want 2\nstderr: %s", code, stderr.String())
	}
}

func TestBaselineWorkflow(t *testing.T) {
	dir := scratch(t, map[string]string{"main.go": violation})

	// Baseline the existing finding: subsequent runs are clean.
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"-write-baseline", "lint.baseline", "./..."}); code != 0 {
		t.Fatalf("write-baseline exit = %d, want 0\nstderr: %s", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run(&stdout, &stderr, []string{"-baseline", "lint.baseline", "./..."}); code != 0 {
		t.Fatalf("baselined run exit = %d, want 0\nstdout: %s", code, stdout.String())
	}
	if !strings.Contains(stderr.String(), "1 baselined") {
		t.Errorf("stderr = %q, want the baselined count", stderr.String())
	}

	// A fresh violation in a new file fails the gate again.
	fresh := strings.ReplaceAll(violation, "type s struct", "type t struct")
	fresh = strings.ReplaceAll(fresh, "func (x *s)", "func (x *t)")
	if err := os.WriteFile(filepath.Join(dir, "extra.go"), []byte(fresh), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run(&stdout, &stderr, []string{"-baseline", "lint.baseline", "./..."}); code != 1 {
		t.Fatalf("exit = %d, want 1 on a fresh finding\nstdout: %s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "extra.go") {
		t.Errorf("stdout = %q, want the fresh finding from extra.go", stdout.String())
	}
}

func TestPruneBaselineGolden(t *testing.T) {
	dir := scratch(t, map[string]string{"main.go": violation})

	// Baseline the finding, then add a stale hand-written entry for a
	// violation that does not exist. The gate tolerates stale entries
	// (they are only counted), but -prune-baseline must drop them.
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"-write-baseline", "lint.baseline", "./..."}); code != 0 {
		t.Fatalf("write-baseline exit = %d, want 0\nstderr: %s", code, stderr.String())
	}
	path := filepath.Join(dir, "lint.baseline")
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stale := "lockedblock\tgone.go\tchannel send while holding scratch.old.mu\n"
	if err := os.WriteFile(path, append(before, stale...), 0o644); err != nil {
		t.Fatal(err)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run(&stdout, &stderr, []string{"-prune-baseline", "lint.baseline", "./..."}); code != 0 {
		t.Fatalf("prune-baseline exit = %d, want 0 even with findings present\nstderr: %s", code, stderr.String())
	}
	if got, want := stderr.String(), "veridp-lint: pruned lint.baseline: kept 1 entr(y/ies), dropped 1\n"; got != want {
		t.Errorf("stderr = %q, want %q", got, want)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The surviving file is byte-identical to the pre-tamper baseline:
	// header plus the one live entry, stale line gone.
	if !bytes.Equal(after, before) {
		t.Errorf("pruned baseline = %q, want the original %q", after, before)
	}

	// Pruning an already-clean baseline is a no-op that still exits 0.
	stdout.Reset()
	stderr.Reset()
	if code := run(&stdout, &stderr, []string{"-prune-baseline", "lint.baseline", "./..."}); code != 0 {
		t.Fatalf("idempotent prune exit = %d, want 0\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "kept 1 entr(y/ies), dropped 0") {
		t.Errorf("stderr = %q, want a dropped-0 no-op", stderr.String())
	}

	// A missing baseline file is a load failure: exit 2, not 0 or 1.
	stdout.Reset()
	stderr.Reset()
	if code := run(&stdout, &stderr, []string{"-prune-baseline", "nosuch.baseline", "./..."}); code != 2 {
		t.Errorf("prune of missing file exit = %d, want 2", code)
	}
}

func TestSuppressionCounted(t *testing.T) {
	suppressed := strings.Replace(violation, "\tx.ch <- 1\n",
		"\t//lint:ignore lockedblock exercising the suppression path\n\tx.ch <- 1\n", 1)
	scratch(t, map[string]string{"main.go": suppressed})
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"./..."}); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s", code, stdout.String())
	}
	if !strings.Contains(stderr.String(), "0 finding(s), 1 suppressed") {
		t.Errorf("stderr = %q, want the suppression counted in the summary", stderr.String())
	}
}

func TestStaleSuppressionsGolden(t *testing.T) {
	// One live suppression (it silences the real lockedblock finding) and
	// one stale directive excusing a violation that no longer exists.
	suppressed := strings.Replace(violation, "\tx.ch <- 1\n",
		"\t//lint:ignore lockedblock known send under lock\n\tx.ch <- 1\n", 1)
	stale := `package scratch

//lint:ignore goleak the goroutine this excused was removed
func nothingHere() {}
`
	scratch(t, map[string]string{"main.go": suppressed, "stale.go": stale})

	// Without the flag the tree is clean: the gate contract is unchanged.
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"./..."}); code != 0 {
		t.Fatalf("exit = %d, want 0 without the flag\nstderr: %s", code, stderr.String())
	}

	// Maintenance mode reports the stale directive and exits 1.
	stdout.Reset()
	stderr.Reset()
	if code := run(&stdout, &stderr, []string{"-stale-suppressions", "./..."}); code != 1 {
		t.Fatalf("exit = %d, want 1 in maintenance mode\nstderr: %s", code, stderr.String())
	}
	wantOut := "stale.go:3: stale //lint:ignore goleak (\"the goroutine this excused was removed\") silences nothing — remove it\n"
	if stdout.String() != wantOut {
		t.Errorf("stdout = %q, want %q", stdout.String(), wantOut)
	}
	wantSummary := "veridp-lint: 0 finding(s), 1 suppressed, 0 baselined, 1 stale suppression(s)\n"
	if stderr.String() != wantSummary {
		t.Errorf("stderr = %q, want %q", stderr.String(), wantSummary)
	}

	// A run restricted to checkers that exclude goleak must not condemn
	// the goleak suppression it never evaluated.
	stdout.Reset()
	stderr.Reset()
	if code := run(&stdout, &stderr, []string{"-stale-suppressions", "-checkers", "lockedblock", "./..."}); code != 0 {
		t.Fatalf("restricted run exit = %d, want 0\nstdout: %s", code, stdout.String())
	}

	// JSON carries the stale list and count.
	stdout.Reset()
	stderr.Reset()
	if code := run(&stdout, &stderr, []string{"-stale-suppressions", "-json", "./..."}); code != 1 {
		t.Fatalf("json run exit = %d, want 1", code)
	}
	var out jsonOutput
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout.String())
	}
	if len(out.StaleSuppressions) != 1 || out.Summary.StaleSuppressions != 1 {
		t.Fatalf("staleSuppressions = %+v, want exactly one", out)
	}
	s := out.StaleSuppressions[0]
	if s.File != "stale.go" || s.Line != 3 || len(s.Checkers) != 1 || s.Checkers[0] != "goleak" {
		t.Errorf("stale = %+v, want goleak at stale.go:3", s)
	}
}

// One relay type violating all three lifetime checkers at distinct
// lines: an unstoppable spawned sleep-loop (ctxprop), an unbounded
// redial loop (retrybound), and a write on a conn no caller arms
// (deadline).
const lifetimeViolations = `package scratch

import (
	"net"
	"time"
)

type relay struct {
	addr string
	conn net.Conn
}

func (r *relay) start() {
	go func() {
		for {
			time.Sleep(50 * time.Millisecond)
			r.flush()
		}
	}()
}

func (r *relay) reconnect() {
	for {
		c, err := net.Dial("tcp", r.addr)
		if err != nil {
			continue
		}
		r.conn = c
		return
	}
}

func (r *relay) flush() {
	if r.conn == nil {
		return
	}
	r.conn.Write([]byte("x"))
}
`

func TestCtxFlowGolden(t *testing.T) {
	scratch(t, map[string]string{"main.go": lifetimeViolations})
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"-checkers", "ctxprop,deadline,retrybound", "./..."}); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr.String())
	}
	wantOut := "main.go:15:3: goroutine (spawned at main.go:14) loops forever into time.Sleep with no exit and no cancellation signal — accept and thread a context.Context or stop channel [ctxprop]\n" +
		"main.go:23:2: loop retries net.Dial without a bound: add an attempt counter, a deadline/context check, or a capped backoff [retrybound]\n" +
		"main.go:37:2: net.Conn.Write on r.conn reaches a caller (func@main.go:14 at main.go:17) that has not armed a write deadline; call SetWriteDeadline on every path or annotate `// lint:deadline conn=r.conn <reason>` [deadline]\n"
	if stdout.String() != wantOut {
		t.Errorf("stdout = %q, want %q", stdout.String(), wantOut)
	}
	wantSummary := "veridp-lint: 3 finding(s), 0 suppressed, 0 baselined\n"
	if stderr.String() != wantSummary {
		t.Errorf("stderr = %q, want %q", stderr.String(), wantSummary)
	}

	// The annotation routes govern: binding the conn's lifetime to a
	// documented owner silences deadline, and a `//lint:ignore` line
	// silences a finding while keeping it counted.
	annotated := strings.Replace(lifetimeViolations,
		"func (r *relay) flush() {",
		"// lint:deadline conn=r.conn the relay's watchdog closes conn on cancel\nfunc (r *relay) flush() {", 1)
	scratch(t, map[string]string{"main.go": annotated})
	stdout.Reset()
	stderr.Reset()
	if code := run(&stdout, &stderr, []string{"-checkers", "deadline", "./..."}); code != 0 {
		t.Fatalf("annotated exit = %d, want 0\nstdout: %s", code, stdout.String())
	}
}

func TestCtxFlowJSON(t *testing.T) {
	scratch(t, map[string]string{"main.go": lifetimeViolations})
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"-json", "-checkers", "ctxprop,deadline,retrybound", "./..."}); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr.String())
	}
	var out jsonOutput
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout.String())
	}
	if len(out.Diagnostics) != 3 || out.Summary.Findings != 3 {
		t.Fatalf("diagnostics = %+v, want exactly three", out)
	}
	byChecker := map[string]int{}
	for _, d := range out.Diagnostics {
		byChecker[d.Checker] = d.Line
	}
	want := map[string]int{"ctxprop": 15, "retrybound": 23, "deadline": 37}
	for checker, line := range want {
		if byChecker[checker] != line {
			t.Errorf("%s fired at line %d, want %d (all: %+v)", checker, byChecker[checker], line, out.Diagnostics)
		}
	}
}

func TestListCheckers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"-list"}); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"lockorder", "lockedblock", "lifecycle", "goleak", "chanflow", "wgsync", "tickleak"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output is missing checker %q", name)
		}
	}
}

// Three message-passing violations at distinct positions in one
// function: an unjustified buffered make (chanflow, line 9), a spawn
// whose Done has no preceding Add (wgsync, line 11), and a ticker that
// is never stopped (tickleak, line 17).
const chanProtocolViolations = `package scratch

import (
	"sync"
	"time"
)

func pump(events []int) {
	out := make(chan int, 8)
	var wg sync.WaitGroup
	go func() {
		defer wg.Done()
		for range events {
			out <- 1
		}
	}()
	t := time.NewTicker(time.Second)
	for range t.C {
		<-out
	}
	wg.Wait()
}
`

func TestChanProtocolGolden(t *testing.T) {
	scratch(t, map[string]string{"main.go": chanProtocolViolations})
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"-checkers", "chanflow,wgsync,tickleak", "./..."}); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr.String())
	}
	wantOut := "main.go:9:9: buffered channel (cap 8) without a justification — annotate `// chan: buffered 8 — <reason>` or make it unbuffered [chanflow]\n" +
		"main.go:11:2: goroutine calls wg.Done but no wg.Add precedes the spawn — Add must be ordered before the go statement, or Wait can return early [wgsync]\n" +
		"main.go:17:7: time.NewTicker t is never stopped — the ticker outlives this function; defer t.Stop() [tickleak]\n"
	if stdout.String() != wantOut {
		t.Errorf("stdout = %q, want %q", stdout.String(), wantOut)
	}
	wantSummary := "veridp-lint: 3 finding(s), 0 suppressed, 0 baselined\n"
	if stderr.String() != wantSummary {
		t.Errorf("stderr = %q, want %q", stderr.String(), wantSummary)
	}

	// The annotation grammar governs: a justified buffer passes chanflow
	// with no suppression spent.
	annotated := strings.Replace(chanProtocolViolations,
		"\tout := make(chan int, 8)",
		"\t// chan: buffered 8 — absorbs an event burst while the drain loop ticks\n\tout := make(chan int, 8)", 1)
	scratch(t, map[string]string{"main.go": annotated})
	stdout.Reset()
	stderr.Reset()
	if code := run(&stdout, &stderr, []string{"-checkers", "chanflow", "./..."}); code != 0 {
		t.Fatalf("annotated exit = %d, want 0\nstdout: %s", code, stdout.String())
	}

	// `//lint:ignore` silences a finding but keeps it counted.
	ignored := strings.Replace(chanProtocolViolations,
		"\tgo func() {",
		"\t//lint:ignore wgsync the demo spawn is joined by the harness\n\tgo func() {", 1)
	scratch(t, map[string]string{"main.go": ignored})
	stdout.Reset()
	stderr.Reset()
	if code := run(&stdout, &stderr, []string{"-checkers", "wgsync", "./..."}); code != 0 {
		t.Fatalf("suppressed exit = %d, want 0\nstdout: %s", code, stdout.String())
	}
	if want := "veridp-lint: 0 finding(s), 1 suppressed, 0 baselined\n"; stderr.String() != want {
		t.Errorf("stderr = %q, want %q", stderr.String(), want)
	}
}

func TestChanProtocolJSON(t *testing.T) {
	scratch(t, map[string]string{"main.go": chanProtocolViolations})
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"-json", "-checkers", "chanflow,wgsync,tickleak", "./..."}); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr.String())
	}
	var out jsonOutput
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout.String())
	}
	if len(out.Diagnostics) != 3 || out.Summary.Findings != 3 {
		t.Fatalf("diagnostics = %+v, want exactly three", out)
	}
	want := map[string]int{"chanflow": 9, "wgsync": 11, "tickleak": 17}
	for _, d := range out.Diagnostics {
		if d.File != "main.go" || want[d.Checker] != d.Line {
			t.Errorf("%s fired at %s:%d, want main.go:%d", d.Checker, d.File, d.Line, want[d.Checker])
		}
	}
}

func TestChanProtocolBaselineRoundTrip(t *testing.T) {
	scratch(t, map[string]string{"main.go": chanProtocolViolations})
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"-checkers", "chanflow,wgsync,tickleak", "-write-baseline", "lint.baseline", "./..."}); code != 0 {
		t.Fatalf("write-baseline exit = %d, want 0\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "wrote 3 finding(s)") {
		t.Errorf("write-baseline stderr = %q, want a 3-finding write notice", stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run(&stdout, &stderr, []string{"-checkers", "chanflow,wgsync,tickleak", "-baseline", "lint.baseline", "./..."}); code != 0 {
		t.Fatalf("baselined exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if want := "veridp-lint: 0 finding(s), 0 suppressed, 3 baselined\n"; stderr.String() != want {
		t.Errorf("stderr = %q, want %q", stderr.String(), want)
	}
}
