// veridp-lint runs the repo's custom static-analysis passes (package
// internal/lint) over the named package patterns. It is the lint half of
// `make check`:
//
//	go run ./cmd/veridp-lint -baseline lint.baseline ./...
//
// Exit status contract: 0 clean (no findings beyond the baseline),
// 1 fresh findings, 2 usage or load failure. Test files are not linted —
// `go vet` and `go test -race` cover those.
//
// The baseline-maintenance modes step outside the gate contract:
// -write-baseline and -prune-baseline rewrite the named file and exit 0
// on success even when findings remain (2 on load or write failure,
// never 1) — they are maintenance commands, not gates, so a baseline
// refresh in a dirty tree does not fail the build that performs it.
// -prune-baseline drops entries no longer matched by any current finding
// (the entries ApplyBaseline would count as stale) and keeps the rest.
//
// -stale-suppressions is the suppression-side maintenance gate: it
// reports every `//lint:ignore` comment that silenced nothing in this
// run and exits 1 when any exist (0 when all suppressions still earn
// their keep). Only directives naming checkers that actually ran are
// judged, so a -checkers-restricted run never condemns a suppression it
// did not evaluate.
//
// Findings silenced by `//lint:ignore <checker> <reason>` comments and
// findings matched by the baseline are counted in the summary rather
// than silently dropped; `-json` emits the full machine-readable result.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"veridp/internal/lint"
)

type jsonDiag struct {
	Checker string `json:"checker"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

type jsonOutput struct {
	Diagnostics []jsonDiag `json:"diagnostics"`
	Suppressed  []jsonDiag `json:"suppressed"`
	Baselined   []jsonDiag `json:"baselined"`
	// StaleSuppressions is populated only under -stale-suppressions.
	StaleSuppressions []lint.StaleSuppression `json:"staleSuppressions,omitempty"`
	Summary           struct {
		Findings          int `json:"findings"`
		Suppressed        int `json:"suppressed"`
		Baselined         int `json:"baselined"`
		StaleBaseline     int `json:"staleBaseline"`
		StaleSuppressions int `json:"staleSuppressions,omitempty"`
	} `json:"summary"`
}

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("veridp-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checkers := fs.String("checkers", "", "comma-separated checker names to run (default: all)")
	fs.StringVar(checkers, "c", "", "shorthand for -checkers")
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON on stdout")
	baselinePath := fs.String("baseline", "", "baseline file of known findings to tolerate")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	pruneBaseline := fs.String("prune-baseline", "", "rewrite this baseline file dropping entries no longer reported, and exit 0")
	staleSuppr := fs.Bool("stale-suppressions", false, "report //lint:ignore comments that silence nothing (maintenance gate: exit 1 when any are stale)")
	timing := fs.Bool("timing", false, "print per-checker wall time (and the shared program-build time) to stderr")
	list := fs.Bool("list", false, "list available checkers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: veridp-lint [flags] [packages]\n\nExit status: 0 clean, 1 findings, 2 usage/load error.\n\nCheckers:\n")
		for _, a := range lint.Analyzers {
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.Analyzers
	if *checkers != "" {
		analyzers = nil
		for _, name := range strings.Split(*checkers, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "veridp-lint: unknown checker %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "veridp-lint:", err)
		return 2
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "veridp-lint:", err)
		return 2
	}

	result, stats := lint.RunStats(pkgs, analyzers)
	if *timing {
		// Timing goes to stderr so -json stdout stays machine-readable and
		// the golden plain output is unchanged.
		fmt.Fprintf(stderr, "veridp-lint: program build %v (shared by %d checkers)\n",
			stats.BuildProgram.Round(time.Microsecond), len(analyzers))
		for _, ct := range stats.Checkers {
			fmt.Fprintf(stderr, "veridp-lint:   %-14s %v\n", ct.Name, ct.Duration.Round(time.Microsecond))
		}
	}

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fmt.Fprintln(stderr, "veridp-lint:", err)
			return 2
		}
		werr := lint.FormatBaseline(f, cwd, result.Diags)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, "veridp-lint:", werr)
			return 2
		}
		fmt.Fprintf(stderr, "veridp-lint: wrote %d finding(s) to %s\n", len(result.Diags), *writeBaseline)
		return 0
	}

	if *pruneBaseline != "" {
		f, err := os.Open(*pruneBaseline)
		if err != nil {
			fmt.Fprintln(stderr, "veridp-lint:", err)
			return 2
		}
		entries, err := lint.ParseBaseline(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(stderr, "veridp-lint:", err)
			return 2
		}
		kept, dropped := lint.PruneBaseline(cwd, result.Diags, entries)
		out, err := os.Create(*pruneBaseline)
		if err != nil {
			fmt.Fprintln(stderr, "veridp-lint:", err)
			return 2
		}
		werr := lint.WriteBaselineEntries(out, kept)
		if cerr := out.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, "veridp-lint:", werr)
			return 2
		}
		fmt.Fprintf(stderr, "veridp-lint: pruned %s: kept %d entr(y/ies), dropped %d\n", *pruneBaseline, len(kept), dropped)
		return 0
	}

	var staleSupprs []lint.StaleSuppression
	if *staleSuppr {
		staleSupprs = lint.StaleSuppressions(pkgs, analyzers, result)
		for i := range staleSupprs {
			if r, err := filepath.Rel(cwd, staleSupprs[i].File); err == nil && !strings.HasPrefix(r, "..") {
				staleSupprs[i].File = filepath.ToSlash(r)
			}
		}
	}

	fresh := result.Diags
	var baselined []lint.Diagnostic
	stale := 0
	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "veridp-lint:", err)
			return 2
		}
		entries, err := lint.ParseBaseline(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(stderr, "veridp-lint:", err)
			return 2
		}
		fresh, baselined, stale = lint.ApplyBaseline(cwd, fresh, entries)
	}

	rel := func(d lint.Diagnostic) jsonDiag {
		file := d.Pos.Filename
		if r, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(r, "..") {
			file = filepath.ToSlash(r)
		}
		return jsonDiag{Checker: d.Checker, File: file, Line: d.Pos.Line, Column: d.Pos.Column, Message: d.Message}
	}

	if *jsonOut {
		out := jsonOutput{
			Diagnostics: []jsonDiag{},
			Suppressed:  []jsonDiag{},
			Baselined:   []jsonDiag{},
		}
		for _, d := range fresh {
			out.Diagnostics = append(out.Diagnostics, rel(d))
		}
		for _, d := range result.Suppressed {
			out.Suppressed = append(out.Suppressed, rel(d))
		}
		for _, d := range baselined {
			out.Baselined = append(out.Baselined, rel(d))
		}
		out.StaleSuppressions = staleSupprs
		out.Summary.Findings = len(fresh)
		out.Summary.Suppressed = len(result.Suppressed)
		out.Summary.Baselined = len(baselined)
		out.Summary.StaleBaseline = stale
		out.Summary.StaleSuppressions = len(staleSupprs)
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "veridp-lint:", err)
			return 2
		}
	} else {
		for _, d := range fresh {
			j := rel(d)
			fmt.Fprintf(stdout, "%s:%d:%d: %s [%s]\n", j.File, j.Line, j.Column, j.Message, j.Checker)
		}
		for _, s := range staleSupprs {
			fmt.Fprintf(stdout, "%s:%d: stale //lint:ignore %s (%q) silences nothing — remove it\n",
				s.File, s.Line, strings.Join(s.Checkers, ","), s.Reason)
		}
	}

	summary := fmt.Sprintf("veridp-lint: %d finding(s), %d suppressed, %d baselined",
		len(fresh), len(result.Suppressed), len(baselined))
	if stale > 0 {
		summary += fmt.Sprintf(", %d stale baseline entr(y/ies)", stale)
	}
	if *staleSuppr {
		summary += fmt.Sprintf(", %d stale suppression(s)", len(staleSupprs))
	}
	fmt.Fprintln(stderr, summary)
	if len(fresh) > 0 || len(staleSupprs) > 0 {
		return 1
	}
	return 0
}
