// veridp-lint runs the repo's custom static-analysis passes (package
// internal/lint) over the named package patterns. It is the lint half of
// `make check`:
//
//	go run ./cmd/veridp-lint ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. Test files
// are not linted — `go vet` and `go test -race` cover those.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"veridp/internal/lint"
)

func main() {
	checks := flag.String("c", "", "comma-separated checker names to run (default: all)")
	list := flag.Bool("list", false, "list available checkers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: veridp-lint [-c checkers] [-list] [packages]\n\nCheckers:\n")
		for _, a := range lint.Analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers
	if *checks != "" {
		analyzers = nil
		for _, name := range strings.Split(*checks, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "veridp-lint: unknown checker %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "veridp-lint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "veridp-lint:", err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "veridp-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
