package veridp

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsEndpoint(t *testing.T) {
	em, ids := buildFigure5(t)
	mon := em.NewMonitor(MonitorConfig{})

	// One healthy flow, then a faulted one.
	h := Header{SrcIP: MustParseIP("10.0.1.1"), DstIP: MustParseIP("10.0.2.1"), Proto: 6, DstPort: 22}
	if _, err := em.Fabric.InjectFromHost("H1", h); err != nil {
		t.Fatal(err)
	}
	s1 := em.Net.SwitchByName("S1").ID
	if err := em.Fabric.Switch(s1).Config.Table.Modify(ids["ssh"], func(r *Rule) { r.OutPort = 4 }); err != nil {
		t.Fatal(err)
	}
	if _, err := em.Fabric.InjectFromHost("H1", h); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(mon)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		"veridp_reports_verified_total 1",
		"veridp_reports_violated_total 1",
		`veridp_violations_total{reason="tag-mismatch"} 1`,
		`veridp_blamed_total{switch="S1"} 1`,
		"veridp_path_table_pairs",
		"veridp_path_table_paths",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
}
