package veridp

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestMetricsEndpoint(t *testing.T) {
	em, ids := buildFigure5(t)
	mon := em.NewMonitor(MonitorConfig{})

	// One healthy flow, then a faulted one.
	h := Header{SrcIP: MustParseIP("10.0.1.1"), DstIP: MustParseIP("10.0.2.1"), Proto: 6, DstPort: 22}
	if _, err := em.Fabric.InjectFromHost("H1", h); err != nil {
		t.Fatal(err)
	}
	s1 := em.Net.SwitchByName("S1").ID
	if err := em.Fabric.Switch(s1).Config.Table.Modify(ids["ssh"], func(r *Rule) { r.OutPort = 4 }); err != nil {
		t.Fatal(err)
	}
	if _, err := em.Fabric.InjectFromHost("H1", h); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(mon)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		"veridp_reports_verified_total 1",
		"veridp_reports_violated_total 1",
		`veridp_violations_total{reason="tag-mismatch"} 1`,
		`veridp_blamed_total{switch="S1"} 1`,
		"veridp_path_table_pairs",
		"veridp_path_table_paths",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
}

// TestMetricsConcurrentWithVerification pins the WriteMetrics contract
// under -race: the exposition write happens after the monitor lock is
// released, so scraping and verification interleave freely instead of a
// slow writer stalling HandleReport.
func TestMetricsConcurrentWithVerification(t *testing.T) {
	em, _ := buildFigure5(t)
	mon := em.NewMonitor(MonitorConfig{})
	h := Header{SrcIP: MustParseIP("10.0.1.1"), DstIP: MustParseIP("10.0.2.1"), Proto: 6, DstPort: 80}
	res, err := em.Fabric.InjectFromHost("H1", h)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Reports[0]
	base, _ := mon.Stats() // the injection above already reported once

	const workers, iters = 4, 50
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				mon.HandleReport(rep)
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				if err := mon.WriteMetrics(io.Discard); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if verified, violated := mon.Stats(); verified != base+workers*iters || violated != 0 {
		t.Fatalf("stats = (%d, %d), want (%d, 0)", verified, violated, base+workers*iters)
	}
}
