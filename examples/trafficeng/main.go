// Traffic engineering (the paper's Figure 3 scenario): traffic from two
// client subnets is split across two equal-cost paths. When the rules fail
// at the splitting switch and everything collapses onto one path, no
// packet is lost — reachability testing stays green — but the split policy
// is violated. VeriDP sees the deviated paths in the tags.
//
//	go run ./examples/trafficeng
package main

import (
	"fmt"
	"log"

	"veridp"
)

func main() {
	// Figure 3's diamond: S1 splits traffic toward S4 over S2 and S3.
	net := veridp.NewNetwork()
	s1 := net.AddSwitch("S1", 4)
	s2 := net.AddSwitch("S2", 2)
	s3 := net.AddSwitch("S3", 2)
	s4 := net.AddSwitch("S4", 3)
	net.AddLink(s1.ID, 2, s2.ID, 1)
	net.AddLink(s1.ID, 3, s3.ID, 1)
	net.AddLink(s2.ID, 2, s4.ID, 1)
	net.AddLink(s3.ID, 2, s4.ID, 2)
	hA := net.AddHost("clientA", veridp.MustParseIP("10.1.0.1"), s1.ID, 1)
	hB := net.AddHost("clientB", veridp.MustParseIP("10.2.0.1"), s1.ID, 4)
	srv := net.AddHost("server", veridp.MustParseIP("10.9.0.1"), s4.ID, 3)

	em := veridp.NewEmulation(net, veridp.DefaultTagParams)

	// The TE policy: clientA's subnet goes via S2, clientB's via S3.
	classes := []veridp.Match{
		{SrcPrefix: veridp.Prefix{IP: veridp.MustParseIP("10.1.0.0"), Len: 16}, DstPrefix: veridp.Prefix{IP: srv.IP, Len: 32}},
		{SrcPrefix: veridp.Prefix{IP: veridp.MustParseIP("10.2.0.0"), Len: 16}, DstPrefix: veridp.Prefix{IP: srv.IP, Len: 32}},
	}
	_, err := em.Controller.InstallSplitRoute(hA.Attach, srv.Attach, classes[:1], 100)
	if err != nil {
		log.Fatal(err)
	}
	_, err = em.Controller.InstallSplitRoute(hB.Attach, srv.Attach, classes[1:], 100)
	if err != nil {
		log.Fatal(err)
	}
	// Note: ShortestPaths is deterministic, so both calls see the same
	// ECMP order; steer class B onto the second path by overriding S1.
	// (A production controller would pass both classes in one call; we
	// keep them separate to show the per-class API too.)
	if err := em.Controller.RouteAllHosts(); err != nil {
		log.Fatal(err)
	}
	// Repin class B through S3 explicitly.
	pathB, err := net.ShortestPaths(hB.Attach, srv.Attach, 2)
	if err != nil || len(pathB) < 2 {
		log.Fatalf("need two equal-cost paths, got %d (%v)", len(pathB), err)
	}
	if _, err := em.Controller.InstallPathRules(pathB[1], classes[1], 200); err != nil {
		log.Fatal(err)
	}

	mon := em.NewMonitor(veridp.MonitorConfig{
		OnViolation: func(v veridp.Violation) {
			fmt.Printf("  !! TE violation (%s)", v.Reason)
			if v.Localized {
				fmt.Printf(" — fault at %s", net.Switch(v.FaultySwitch).Name)
			}
			fmt.Println()
		},
	})

	viaS2 := func(p veridp.Path) bool {
		for _, h := range p {
			if h.Switch == s2.ID {
				return true
			}
		}
		return false
	}

	hdrA := veridp.Header{SrcIP: hA.IP, DstIP: srv.IP, Proto: 6, SrcPort: 10000, DstPort: 80}
	hdrB := veridp.Header{SrcIP: hB.IP, DstIP: srv.IP, Proto: 6, SrcPort: 20000, DstPort: 80}

	fmt.Println("1) healthy split:")
	resA, _ := em.Fabric.InjectFromHost("clientA", hdrA)
	resB, _ := em.Fabric.InjectFromHost("clientB", hdrB)
	fmt.Printf("   class A via S2: %v (%v)\n", viaS2(resA.Path), resA.Path)
	fmt.Printf("   class B via S2: %v (%v)\n", viaS2(resB.Path), resB.Path)

	fmt.Println("\n2) fault: S1's class-B rules fail; everything collapses onto one path")
	// Delete the physical class-B pin at S1 (highest-priority rule for B).
	for _, r := range em.Fabric.Switch(s1.ID).Config.Table.Rules() {
		if r.Priority == 200 && r.Match.InPort == hB.Attach.Port {
			if err := em.Fabric.Switch(s1.ID).Config.Table.Delete(r.ID); err != nil {
				log.Fatal(err)
			}
			break
		}
	}

	resB2, _ := em.Fabric.InjectFromHost("clientB", hdrB)
	fmt.Printf("   class B now via S2: %v (%v) — still delivered!\n", viaS2(resB2.Path), resB2.Path)

	verified, violated := mon.Stats()
	fmt.Printf("\nmonitor: verified=%d violations=%d\n", verified, violated)
	if violated == 0 {
		log.Fatal("expected the TE collapse to be flagged")
	}
}
