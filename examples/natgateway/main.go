// NAT gateway / load balancer: the header-rewrite extension (the paper's
// future-work item 1) end to end. A gateway switch exposes one virtual IP
// and rewrites client traffic onto two backends, split by client subnet.
// The monitor verifies the rewritten flows against path-table entries whose
// header sets are the *images* of the client sets under the NAT; when one
// rewrite silently degrades (wrong backend), verification flags it even
// though packets keep flowing.
//
//	go run ./examples/natgateway
package main

import (
	"fmt"
	"log"

	"veridp"
	"veridp/internal/dataplane"
	"veridp/internal/header"
)

func main() {
	// clientA/clientB — edge — gateway — backends b1, b2.
	net := veridp.NewNetwork()
	edge := net.AddSwitch("edge", 3)
	gw := net.AddSwitch("gateway", 3)
	net.AddLink(edge.ID, 3, gw.ID, 1)
	clientA := net.AddHost("clientA", veridp.MustParseIP("10.1.0.1"), edge.ID, 1)
	clientB := net.AddHost("clientB", veridp.MustParseIP("10.2.0.1"), edge.ID, 2)
	b1 := net.AddHost("backend1", veridp.MustParseIP("192.168.0.1"), gw.ID, 2)
	b2 := net.AddHost("backend2", veridp.MustParseIP("192.168.0.2"), gw.ID, 3)

	vip := veridp.MustParseIP("203.0.113.80")
	em := veridp.NewEmulation(net, veridp.DefaultTagParams)

	install := func(sw veridp.SwitchID, r veridp.Rule) uint64 {
		id, err := em.Controller.InstallRule(sw, r)
		if err != nil {
			log.Fatal(err)
		}
		return id
	}
	vipPfx := veridp.Prefix{IP: vip, Len: 32}
	install(edge.ID, veridp.Rule{Priority: 10, Match: veridp.Match{DstPrefix: vipPfx}, Action: veridp.ActOutput, OutPort: 3})
	// The load-balancing NAT: subnet A → backend1, subnet B → backend2.
	install(gw.ID, veridp.Rule{
		Priority: 20,
		Match:    veridp.Match{DstPrefix: vipPfx, SrcPrefix: veridp.Prefix{IP: veridp.MustParseIP("10.1.0.0"), Len: 16}},
		Action:   veridp.ActOutput, OutPort: 2,
		Rewrite: &veridp.Rewrite{SetDstIP: true, DstIP: b1.IP},
	})
	natB := install(gw.ID, veridp.Rule{
		Priority: 20,
		Match:    veridp.Match{DstPrefix: vipPfx, SrcPrefix: veridp.Prefix{IP: veridp.MustParseIP("10.2.0.0"), Len: 16}},
		Action:   veridp.ActOutput, OutPort: 3,
		Rewrite: &veridp.Rewrite{SetDstIP: true, DstIP: b2.IP},
	})

	mon := em.NewMonitor(veridp.MonitorConfig{
		OnViolation: func(v veridp.Violation) {
			fmt.Printf("  !! NAT inconsistency: %s (report header %v)\n", v.Reason, v.Report.Header)
		},
	})

	hA := veridp.Header{SrcIP: clientA.IP, DstIP: vip, Proto: 6, SrcPort: 40001, DstPort: 80}
	hB := veridp.Header{SrcIP: clientB.IP, DstIP: vip, Proto: 6, SrcPort: 40002, DstPort: 80}

	fmt.Println("1) healthy load-balanced NAT:")
	resA, err := em.Fabric.InjectFromHost("clientA", hA)
	if err != nil {
		log.Fatal(err)
	}
	resB, err := em.Fabric.InjectFromHost("clientB", hB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   clientA → VIP lands on %v (report dst %s)\n", resA.Exit, ipOf(resA))
	fmt.Printf("   clientB → VIP lands on %v (report dst %s)\n", resB.Exit, ipOf(resB))
	v, x := mon.Stats()
	fmt.Printf("   verified=%d violations=%d\n", v, x)

	fmt.Println("\n2) fault: the gateway rewrites subnet B onto the WRONG backend")
	err = em.Fabric.Switch(gw.ID).Config.Table.Modify(natB, func(r *veridp.Rule) {
		r.OutPort = 2
		r.Rewrite = &veridp.Rewrite{SetDstIP: true, DstIP: b1.IP}
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := em.Fabric.InjectFromHost("clientB", hB); err != nil {
		log.Fatal(err)
	}
	v, x = mon.Stats()
	fmt.Printf("\nmonitor: verified=%d violations=%d\n", v, x)
	if x == 0 {
		log.Fatal("expected the misdirected NAT to be flagged")
	}
}

// ipOf renders the destination the report carried (post-rewrite).
func ipOf(res *dataplane.Result) string {
	if len(res.Reports) == 0 {
		return "no report"
	}
	return header.IPString(res.Reports[len(res.Reports)-1].Header.DstIP)
}
