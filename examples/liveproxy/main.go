// Live deployment: the complete Figure 4 architecture over real sockets.
//
//	switch agents ──TCP──▶ VeriDP proxy ──TCP──▶ controller server
//	switch agents ──UDP tag reports──▶ VeriDP collector
//
// The controller compiles Figure 5's policy and pushes FlowMods through
// the proxy; the VeriDP server intercepts them to keep its path table
// current. Test packets are injected with PacketOut; exit switches send
// UDP tag reports; the collector verifies each one. Then a switch "bug"
// corrupts a physical rule out-of-band and the next packet is flagged.
//
//	go run ./examples/liveproxy
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"veridp"
	"veridp/internal/controller"
	"veridp/internal/dataplane"
	"veridp/internal/flowtable"
	"veridp/internal/openflow"
	"veridp/internal/packet"
	"veridp/internal/report"
	"veridp/internal/topo"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context) error {
	logger := log.New(os.Stderr, "", 0)
	net_ := veridp.Figure5()

	// ---- controller server -------------------------------------------
	ctrlSrv := controller.NewServer()
	ctrlL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go ctrlSrv.Serve(ctx, ctrlL)
	defer ctrlSrv.Close()

	// ---- VeriDP server: monitor + proxy + UDP collector ---------------
	logical := make(map[topo.SwitchID]*flowtable.SwitchConfig)
	for _, sw := range net_.Switches() {
		logical[sw.ID] = flowtable.NewSwitchConfig(sw.Ports())
	}
	// chan: buffered 64 — verdict callbacks fire on collector workers; the buffer absorbs bursts between the demo's prints
	verdicts := make(chan string, 64)
	mon := veridp.NewMonitor(net_, logical, veridp.MonitorConfig{
		OnVerified: func(r *veridp.Report) {
			verdicts <- fmt.Sprintf("ok        %v→%v %v", r.Inport, r.Outport, r.Header)
		},
		OnViolation: func(v veridp.Violation) {
			blame := "unlocalized"
			if v.Localized {
				blame = "faulty switch " + net_.Switch(v.FaultySwitch).Name
			}
			verdicts <- fmt.Sprintf("VIOLATION %s — %s", v.Reason, blame)
		},
	})

	collector, err := report.NewCollector("127.0.0.1:0", mon.BatchHandler, logger)
	if err != nil {
		return err
	}
	defer collector.Close()
	go collector.Run(ctx)

	proxy := openflow.NewProxy(ctrlL.Addr().String(), mon.ProxyHooks(logical), nil)
	proxyL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go proxy.Serve(ctx, proxyL)
	defer proxy.Close()

	// ---- data plane: fabric + one agent per switch, reports over UDP --
	sender, err := report.NewSender(collector.Addr().String())
	if err != nil {
		return err
	}
	defer sender.Close()

	fabric := dataplane.NewFabric(net_)
	var fabricMu sync.Mutex
	for _, sw := range net_.Switches() {
		agent := &dataplane.Agent{Fabric: fabric, ID: sw.ID, Mu: &fabricMu, Sink: sender}
		conn, err := net.Dial("tcp", proxyL.Addr().String())
		if err != nil {
			return err
		}
		go agent.Run(ctx, conn)
	}

	// ---- control plane work over the live channel ---------------------
	var ids []topo.SwitchID
	for _, sw := range net_.Switches() {
		ids = append(ids, sw.ID)
	}
	if err := ctrlSrv.WaitForSwitches(ids); err != nil {
		return err
	}
	fmt.Printf("all %d switches connected through the proxy\n", len(ids))

	ctrl := controller.New(net_, ctrlSrv)
	s1 := net_.SwitchByName("S1").ID
	s2 := net_.SwitchByName("S2").ID
	s3 := net_.SwitchByName("S3").ID
	subnetS := veridp.Prefix{IP: veridp.MustParseIP("10.0.2.0"), Len: 24}
	sshRule := uint64(0)
	installs := []struct {
		sw topo.SwitchID
		r  veridp.Rule
	}{
		{s1, veridp.Rule{Priority: 20, Match: veridp.Match{DstPrefix: subnetS, HasDst: true, DstPort: 22}, Action: veridp.ActOutput, OutPort: 3}},
		{s1, veridp.Rule{Priority: 10, Match: veridp.Match{DstPrefix: subnetS}, Action: veridp.ActOutput, OutPort: 4}},
		{s2, veridp.Rule{Priority: 10, Match: veridp.Match{InPort: 1}, Action: veridp.ActOutput, OutPort: 3}},
		{s2, veridp.Rule{Priority: 10, Match: veridp.Match{InPort: 3}, Action: veridp.ActOutput, OutPort: 2}},
		{s3, veridp.Rule{Priority: 20, Match: veridp.Match{DstPrefix: subnetS}, Action: veridp.ActOutput, OutPort: 2}},
	}
	for i, in := range installs {
		id, err := ctrl.InstallRule(in.sw, in.r)
		if err != nil {
			return err
		}
		if i == 0 {
			sshRule = id
		}
	}
	if err := ctrl.Barrier(); err != nil {
		return err
	}
	fmt.Println("policy installed over the live southbound channel (path table tracked by interception)")

	// ---- inject a test packet via PacketOut ---------------------------
	ssh := veridp.Header{SrcIP: veridp.MustParseIP("10.0.1.1"), DstIP: veridp.MustParseIP("10.0.2.1"), Proto: 6, SrcPort: 40001, DstPort: 22}
	frame := packet.BuildData(ssh, 64, []byte("probe"))
	if err := ctrlSrv.PacketOut(s1, 1, frame); err != nil {
		return err
	}
	fmt.Println("1) healthy SSH probe:", <-await(verdicts))

	// ---- a switch bug corrupts the physical rule out-of-band ----------
	fabricMu.Lock()
	err = fabric.Switch(s1).Config.Table.Modify(sshRule, func(r *veridp.Rule) { r.OutPort = 4 })
	fabricMu.Unlock()
	if err != nil {
		return err
	}
	if err := ctrlSrv.PacketOut(s1, 1, frame); err != nil {
		return err
	}
	fmt.Println("2) after the silent rule corruption:", <-await(verdicts))
	return nil
}

// await wraps the verdict channel with a timeout so a lost UDP datagram
// cannot hang the example.
func await(ch chan string) chan string {
	// chan: buffered 1 — the helper sends exactly once and exits without waiting on the printer
	out := make(chan string, 1)
	go func() {
		select {
		case v := <-ch:
			out <- v
		case <-time.After(5 * time.Second):
			out <- "timed out waiting for a verdict"
		}
	}()
	return out
}
