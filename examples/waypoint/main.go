// Waypoint traversal (the paper's Figure 2 scenario): client traffic must
// pass a firewall middlebox before reaching the server. A fat-tree network
// carries the policy as high-priority per-hop rules; when the data plane
// loses one of them (the §2.2 "rule eviction" fault), the firewall is
// silently bypassed. Reception-only testing cannot see this — the packet
// still arrives — but VeriDP's path verification flags it immediately.
//
//	go run ./examples/waypoint
package main

import (
	"fmt"
	"log"

	"veridp"
)

func main() {
	net := buildNetwork()
	em := veridp.NewEmulation(net, veridp.DefaultTagParams)

	client := net.Host("client")
	server := net.Host("server")

	// Baseline connectivity.
	if err := em.Controller.RouteAllHosts(); err != nil {
		log.Fatal(err)
	}
	// The security policy: client → server traffic must traverse the
	// firewall on the aggregation switch.
	agg := net.SwitchByName("agg")
	clientToServer := veridp.Match{
		SrcPrefix: veridp.Prefix{IP: client.IP, Len: 32},
		DstPrefix: veridp.Prefix{IP: server.IP, Len: 32},
	}
	ruleIDs, err := em.Controller.InstallWaypoint(clientToServer,
		client.Attach,
		veridp.PortKey{Switch: agg.ID, Port: 4}, // the firewall port
		server.Attach,
		1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("waypoint policy installed: %d per-hop rules\n", len(ruleIDs))

	mon := em.NewMonitor(veridp.MonitorConfig{
		OnViolation: func(v veridp.Violation) {
			fmt.Printf("  !! policy violation (%s)", v.Reason)
			if v.Localized {
				fmt.Printf(" — faulty switch %s, actual path %v", net.Switch(v.FaultySwitch).Name, v.Candidates[0])
			}
			fmt.Println()
		},
	})

	h := veridp.Header{SrcIP: client.IP, DstIP: server.IP, Proto: 6, SrcPort: 55000, DstPort: 443}
	fmt.Println("\n1) healthy: client → server passes the firewall")
	res, err := em.Fabric.InjectFromHost("client", h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   path: %v\n", res.Path)

	// Fault: the aggregation switch evicts the waypoint rule that steers
	// client traffic into the firewall (table pressure, §2.2). The
	// controller still believes the firewall is in path.
	fmt.Println("\n2) fault: agg evicts the firewall-redirect rule")
	evicted := false
	for _, id := range ruleIDs {
		if r := em.Fabric.Switch(agg.ID).Config.Table.Get(id); r != nil && r.OutPort == 4 {
			if err := em.Fabric.Switch(agg.ID).Config.Table.Delete(id); err != nil {
				log.Fatal(err)
			}
			evicted = true
			break
		}
	}
	if !evicted {
		log.Fatal("no firewall-redirect rule found on agg")
	}

	fmt.Println("\n3) the same flow is still delivered — but around the firewall:")
	res, err = em.Fabric.InjectFromHost("client", h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   path: %v (delivered: %v)\n", res.Path, res.Outcome)

	verified, violated := mon.Stats()
	fmt.Printf("\nmonitor: verified=%d violations=%d\n", verified, violated)
	if violated == 0 {
		log.Fatal("expected the firewall bypass to be flagged")
	}
}

// buildNetwork creates client—edge1—agg—edge2—server with a firewall
// middlebox hanging off the aggregation switch.
func buildNetwork() *veridp.Network {
	n := veridp.NewNetwork()
	e1 := n.AddSwitch("edge1", 3)
	agg := n.AddSwitch("agg", 4)
	e2 := n.AddSwitch("edge2", 3)
	n.AddLink(e1.ID, 2, agg.ID, 1)
	n.AddLink(agg.ID, 2, e2.ID, 2)
	n.AddLink(e1.ID, 3, e2.ID, 3) // a backdoor path around the aggregation
	n.AddMiddlebox(agg.ID, 4)     // the firewall
	n.AddHost("client", veridp.MustParseIP("10.0.1.10"), e1.ID, 1)
	n.AddHost("server", veridp.MustParseIP("10.0.2.20"), e2.ID, 1)
	return n
}
