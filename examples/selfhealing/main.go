// Self-healing: the full detect → localize → repair loop, implementing the
// paper's future-work item (2) — "automatically repair the flow table of a
// faulty switch ... with minimal human interaction" (§8).
//
// A fat-tree network runs healthy traffic; a switch silently rewires one
// route; the monitor's violation callback localizes the switch and pushes
// a repair FlowMod re-asserting the controller's rule; traffic verifies
// again with no operator in the loop.
//
//	go run ./examples/selfhealing
package main

import (
	"fmt"
	"log"

	"veridp"
	"veridp/internal/dataplane"
)

func main() {
	net := veridp.FatTree(4)
	em := veridp.NewEmulation(net, veridp.DefaultTagParams)
	if err := em.Controller.RouteAllHosts(); err != nil {
		log.Fatal(err)
	}

	installer := &dataplane.FabricInstaller{Fabric: em.Fabric}
	repairs := 0
	var mon *veridp.Monitor
	mon = em.NewMonitor(veridp.MonitorConfig{
		OnViolation: func(v veridp.Violation) {
			fmt.Printf("  !! %s — repairing...\n", v.Reason)
			blamed, err := mon.Repair(v.Report, installer)
			if err != nil {
				fmt.Println("     repair failed:", err)
				return
			}
			repairs++
			fmt.Printf("     re-asserted the logical rule on %s\n", net.Switch(blamed).Name)
		},
	})

	src := net.Host("h-0-0-0")
	dst := net.Host("h-3-1-1")
	h := veridp.Header{SrcIP: src.IP, DstIP: dst.IP, Proto: 6, SrcPort: 51000, DstPort: 443}

	fmt.Println("1) healthy flow across pods:")
	res, err := em.Fabric.InjectFromHost(src.Name, h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %v via %v\n", res.Outcome, res.Path.Switches())

	// A silent fault: the first aggregation switch on the path rewires the
	// destination's route to its other core uplink.
	agg := res.Path[1].Switch
	rule := em.Fabric.Switch(agg).Config.Table.Lookup(res.Path[1].In, h)
	fmt.Printf("\n2) switch %s silently rewires rule %d\n", net.Switch(agg).Name, rule.ID)
	err = em.Fabric.Switch(agg).Config.Table.Modify(rule.ID, func(r *veridp.Rule) {
		if r.OutPort == 3 {
			r.OutPort = 4
		} else {
			r.OutPort = 3
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n3) the next packet trips the monitor, which self-heals:")
	if _, err := em.Fabric.InjectFromHost(src.Name, h); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n4) and the flow is consistent again:")
	res, err = em.Fabric.InjectFromHost(src.Name, h)
	if err != nil {
		log.Fatal(err)
	}
	verified, violated := mon.Stats()
	fmt.Printf("   %v via %v\n", res.Outcome, res.Path.Switches())
	fmt.Printf("\nmonitor: verified=%d violations=%d repairs=%d\n", verified, violated, repairs)
	if repairs != 1 || violated != 1 {
		log.Fatal("self-healing loop did not run as expected")
	}
}
