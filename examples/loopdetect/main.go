// Loop detection (the §6.2 loop function test): the control plane is
// loop-free, but data-plane-only rules bounce a destination between two
// switches. Sampled packets carry Algorithm 1's TTL; when it expires the
// switch reports from mid-network, which can never match a path table
// built from a loop-free configuration — so the loop is detected.
//
//	go run ./examples/loopdetect
package main

import (
	"fmt"
	"log"

	"veridp"
)

func main() {
	net := veridp.Ring(4)
	em := veridp.NewEmulation(net, veridp.DefaultTagParams)
	if err := em.Controller.RouteAllHosts(); err != nil {
		log.Fatal(err)
	}

	mon := em.NewMonitor(veridp.MonitorConfig{
		OnViolation: func(v veridp.Violation) {
			fmt.Printf("  !! loop evidence: %s report from %v (tag %v)\n",
				v.Reason, v.Report.Outport, v.Report.Tag)
		},
	})

	src := net.Host("rh1")
	dst := net.Host("rh3")
	h := veridp.Header{SrcIP: src.IP, DstIP: dst.IP, Proto: 6, SrcPort: 12345, DstPort: 443}

	fmt.Println("1) healthy ring: rh1 → rh3")
	res, err := em.Fabric.InjectFromHost("rh1", h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   path (%d hops): %v\n", len(res.Path), res.Path)

	// Data-plane-only fault: r2 and r3 bounce rh3's address between each
	// other. The controller's view stays loop-free.
	fmt.Println("\n2) fault: physical rules on r2/r3 form a forwarding loop")
	r2 := net.SwitchByName("r2")
	r3 := net.SwitchByName("r3")
	victim := veridp.Prefix{IP: dst.IP, Len: 32}
	em.Fabric.Switch(r2.ID).Config.Table.Add(&veridp.Rule{
		Priority: 60000, Match: veridp.Match{DstPrefix: victim}, Action: veridp.ActOutput, OutPort: 2,
	})
	em.Fabric.Switch(r3.ID).Config.Table.Add(&veridp.Rule{
		Priority: 60000, Match: veridp.Match{DstPrefix: victim}, Action: veridp.ActOutput, OutPort: 1,
	})

	fmt.Println("\n3) the same flow now circles until its TTL dies:")
	res, err = em.Fabric.InjectFromHost("rh1", h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   outcome: %v after %d hops\n", res.Outcome, len(res.Path))

	verified, violated := mon.Stats()
	fmt.Printf("\nmonitor: verified=%d violations=%d\n", verified, violated)
	if violated == 0 {
		log.Fatal("expected the loop to be flagged")
	}
}
