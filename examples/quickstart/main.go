// Quickstart: the paper's Figure 5 network end to end.
//
// Three switches, a middlebox, and three hosts. The controller routes SSH
// from H1 through the middlebox and everything else over the direct link,
// and drops H2's traffic at S3. We attach a VeriDP monitor, watch healthy
// traffic verify, then corrupt one physical rule — the control plane never
// hears about it — and watch VeriDP detect the inconsistency and name the
// faulty switch.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"veridp"
)

func main() {
	net := veridp.Figure5()
	em := veridp.NewEmulation(net, veridp.DefaultTagParams)

	// Compile Figure 5's policy into rules (IDs let us corrupt one later).
	s1 := net.SwitchByName("S1").ID
	s2 := net.SwitchByName("S2").ID
	s3 := net.SwitchByName("S3").ID
	install := func(sw veridp.SwitchID, r veridp.Rule) uint64 {
		id, err := em.Controller.InstallRule(sw, r)
		if err != nil {
			log.Fatal(err)
		}
		return id
	}
	subnetH := veridp.Prefix{IP: veridp.MustParseIP("10.0.1.0"), Len: 24} // H1, H2
	subnetS := veridp.Prefix{IP: veridp.MustParseIP("10.0.2.0"), Len: 24} // H3

	install(s1, veridp.Rule{Priority: 30, Match: veridp.Match{DstPrefix: veridp.Prefix{IP: veridp.MustParseIP("10.0.1.1"), Len: 32}}, Action: veridp.ActOutput, OutPort: 1})
	install(s1, veridp.Rule{Priority: 30, Match: veridp.Match{DstPrefix: veridp.Prefix{IP: veridp.MustParseIP("10.0.1.2"), Len: 32}}, Action: veridp.ActOutput, OutPort: 2})
	sshRule := install(s1, veridp.Rule{Priority: 20, Match: veridp.Match{DstPrefix: subnetS, HasDst: true, DstPort: 22}, Action: veridp.ActOutput, OutPort: 3})
	install(s1, veridp.Rule{Priority: 10, Match: veridp.Match{DstPrefix: subnetS}, Action: veridp.ActOutput, OutPort: 4})
	install(s2, veridp.Rule{Priority: 10, Match: veridp.Match{InPort: 1}, Action: veridp.ActOutput, OutPort: 3})
	install(s2, veridp.Rule{Priority: 10, Match: veridp.Match{InPort: 3}, Action: veridp.ActOutput, OutPort: 2})
	install(s3, veridp.Rule{Priority: 30, Match: veridp.Match{SrcPrefix: veridp.Prefix{IP: veridp.MustParseIP("10.0.1.2"), Len: 32}}, Action: veridp.ActDrop})
	install(s3, veridp.Rule{Priority: 20, Match: veridp.Match{DstPrefix: subnetS}, Action: veridp.ActOutput, OutPort: 2})
	install(s3, veridp.Rule{Priority: 10, Match: veridp.Match{DstPrefix: subnetH}, Action: veridp.ActOutput, OutPort: 3})

	// Attach the monitor: every tag report from the data plane is verified
	// against the path table built from the controller's rules.
	mon := em.NewMonitor(veridp.MonitorConfig{
		OnViolation: func(v veridp.Violation) {
			fmt.Printf("  !! inconsistency: %s\n", v.Reason)
			if v.Localized {
				fmt.Printf("     faulty switch: %s\n", net.Switch(v.FaultySwitch).Name)
				fmt.Printf("     recovered path: %v\n", v.Candidates[0])
			}
		},
	})
	st := mon.PathTable().Stats()
	fmt.Printf("path table: %d port pairs, %d paths, avg length %.1f hops\n\n", st.Pairs, st.Paths, st.AvgPathLength)

	ssh := veridp.Header{SrcIP: veridp.MustParseIP("10.0.1.1"), DstIP: veridp.MustParseIP("10.0.2.1"), Proto: 6, SrcPort: 41000, DstPort: 22}

	fmt.Println("1) healthy network: H1 sends SSH to H3 (via the middlebox)")
	res, err := em.Fabric.InjectFromHost("H1", ssh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   path taken: %v\n", res.Path)
	v, x := mon.Stats()
	fmt.Printf("   verified=%d violations=%d\n\n", v, x)

	fmt.Println("2) a switch bug rewires the SSH redirect — the controller is never told")
	err = em.Fabric.Switch(s1).Config.Table.Modify(sshRule, func(r *veridp.Rule) { r.OutPort = 4 })
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("3) the same SSH flow now bypasses the middlebox:")
	res, err = em.Fabric.InjectFromHost("H1", ssh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   path taken: %v\n", res.Path)
	v, x = mon.Stats()
	fmt.Printf("\nfinal monitor stats: verified=%d violations=%d\n", v, x)
	if x == 0 {
		log.Fatal("expected a violation")
	}
}
