// Intent checking + runtime monitoring together: the full Figure 1 chain.
//
// The operator states intent (reachability + isolation + waypoint); the
// suite compiles it into rules (I → R); a static check proves the compiled
// configuration satisfies the intent (I = R); and VeriDP's monitor then
// guards the remaining gap at runtime (R = F). A data-plane fault slips
// past the static check — by definition it cannot see the physical tables —
// and is caught by the monitor.
//
//	go run ./examples/intentcheck
package main

import (
	"fmt"
	"log"

	"veridp"
)

func main() {
	net := veridp.Figure5()
	em := veridp.NewEmulation(net, veridp.DefaultTagParams)

	suite := veridp.PolicySuite{
		veridp.Reachability{SrcHost: "H1", DstHost: "H3"},
		veridp.WaypointIntent{
			Match:     veridp.Match{HasDst: true, DstPort: 22},
			SrcHost:   "H1",
			DstHost:   "H3",
			Middlebox: veridp.PortKey{Switch: net.SwitchByName("S2").ID, Port: 3},
			Priority:  200,
		},
		veridp.Isolation{
			SrcPrefix: veridp.Prefix{IP: veridp.MustParseIP("10.0.1.2"), Len: 32},
			DstPrefix: veridp.Prefix{IP: veridp.MustParseIP("10.0.2.1"), Len: 32},
		},
	}

	fmt.Println("1) compile intent into rules (I → R)")
	if err := suite.Compile(em.Controller); err != nil {
		log.Fatal(err)
	}

	fmt.Println("2) static check: does the compiled configuration satisfy the intent? (I = R)")
	mon := em.NewMonitor(veridp.MonitorConfig{
		OnViolation: func(v veridp.Violation) {
			fmt.Printf("   !! runtime inconsistency (%s) at switch %s\n",
				v.Reason, net.Switch(v.FaultySwitch).Name)
		},
	})
	if errs := suite.Check(mon.PathTable()); len(errs) != 0 {
		log.Fatalf("static check failed: %v", errs)
	}
	fmt.Println("   all policies hold statically")

	fmt.Println("\n3) runtime: traffic verifies against the same path table")
	ssh := veridp.Header{SrcIP: veridp.MustParseIP("10.0.1.1"), DstIP: veridp.MustParseIP("10.0.2.1"), Proto: 6, DstPort: 22}
	res, err := em.Fabric.InjectFromHost("H1", ssh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   SSH path: %v\n", res.Path)

	fmt.Println("\n4) a data-plane fault the static check CANNOT see (physical-only):")
	s2 := net.SwitchByName("S2").ID
	// The middlebox continuation rule vanishes physically; statically I=R
	// still holds because the logical rules are intact.
	for _, r := range em.Fabric.Switch(s2).Config.Table.Rules() {
		if r.Match.InPort == 1 {
			em.Fabric.Switch(s2).Config.Table.Delete(r.ID)
			break
		}
	}
	if errs := suite.Check(mon.PathTable()); len(errs) != 0 {
		log.Fatal("static check should still pass — the logical config is intact")
	}
	fmt.Println("   static check still green (it checks I=R, not R=F)...")

	if _, err := em.Fabric.InjectFromHost("H1", ssh); err != nil {
		log.Fatal(err)
	}
	_, violated := mon.Stats()
	fmt.Printf("\nmonitor: violations=%d — the R=F gap is VeriDP's job\n", violated)
	if violated == 0 {
		log.Fatal("expected the monitor to catch what the static check cannot")
	}
}
