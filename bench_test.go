// Benchmarks regenerating the measured quantities of every table and
// figure in the paper's evaluation (§6). Absolute numbers differ from the
// paper's testbed; the shapes they establish are asserted by the test
// suite and printed in full by cmd/veridp-bench. Mapping:
//
//	Table 2  → BenchmarkPathTableConstruction* (construction time; the
//	           entry/path counts print as custom metrics)
//	Figure 6 → BenchmarkPathLookup* (per-pair path list scan cost; the
//	           full distribution prints via cmd/veridp-bench -experiment fig6)
//	Figure 12→ BenchmarkFalseNegativeSweep (FNR as custom metrics)
//	Table 3  → BenchmarkLocalization / BenchmarkLocalizationStrawman
//	Figure 13→ BenchmarkVerify* (µs per tag report)
//	Figure 14→ BenchmarkIncrementalUpdate (per-rule path-table update)
//	Table 4  → BenchmarkPipeline* (software pipeline stages on real
//	           packets) and BenchmarkHWPipeModel (FPGA cycle model)
package veridp

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"veridp/internal/bloom"
	"veridp/internal/core"
	"veridp/internal/dataplane"
	"veridp/internal/dataplane/hwpipe"
	"veridp/internal/faults"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/packet"
	"veridp/internal/sim"
	"veridp/internal/topo"
	"veridp/internal/traffic"
)

// Benchmark-scale environments are built once and shared.
var (
	envOnce sync.Once
	envs    map[string]*sim.Env
)

func benchEnvs(b *testing.B) map[string]*sim.Env {
	b.Helper()
	envOnce.Do(func() {
		envs = map[string]*sim.Env{}
		must := func(e *sim.Env, err error) *sim.Env {
			if err != nil {
				b.Fatal(err)
			}
			return e
		}
		envs["stanford"] = must(sim.StanfordEnv(sim.StanfordDefault, bloom.DefaultParams))
		envs["internet2"] = must(sim.Internet2Env(sim.Internet2Default, bloom.DefaultParams))
		envs["ft4"] = must(sim.FatTreeEnv(4, bloom.DefaultParams))
		envs["ft6"] = must(sim.FatTreeEnv(6, bloom.DefaultParams))
	})
	return envs
}

// --- Table 2: path-table construction -----------------------------------

func benchConstruction(b *testing.B, name string) {
	e := benchEnvs(b)[name]
	var pt *core.PathTable
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt = e.Build()
	}
	b.StopTimer()
	st := pt.Stats()
	b.ReportMetric(float64(st.Pairs), "entries")
	b.ReportMetric(float64(st.Paths), "paths")
	b.ReportMetric(st.AvgPathLength, "avg-path-len")
}

func BenchmarkPathTableConstructionStanford(b *testing.B)  { benchConstruction(b, "stanford") }
func BenchmarkPathTableConstructionInternet2(b *testing.B) { benchConstruction(b, "internet2") }
func BenchmarkPathTableConstructionFT4(b *testing.B)       { benchConstruction(b, "ft4") }
func BenchmarkPathTableConstructionFT6(b *testing.B)       { benchConstruction(b, "ft6") }

// --- Figure 13: verification time per tag report -------------------------

func benchVerify(b *testing.B, name string) {
	e := benchEnvs(b)[name]
	pt := e.Table()
	// One report per path: inject the witness packet and keep its report,
	// mirroring §6.4 ("generate a test packet for each path ... run the
	// verification algorithm for each tag report").
	var reports []*packet.Report
	for _, w := range traffic.Witnesses(pt) {
		res, err := e.Fabric.Inject(w.Inport, w.Header)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Reports) > 0 {
			reports = append(reports, res.Reports[len(res.Reports)-1])
		}
	}
	if len(reports) == 0 {
		b.Fatal("no reports")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := pt.Verify(reports[i%len(reports)]); !v.OK {
			b.Fatalf("witness report failed verification: %v", v.Reason)
		}
	}
}

func BenchmarkVerifyStanford(b *testing.B)  { benchVerify(b, "stanford") }
func BenchmarkVerifyInternet2(b *testing.B) { benchVerify(b, "internet2") }

// BenchmarkVerifyParallel realizes §6.4's anticipated multi-threaded
// verification: every goroutine verifies lock-free against the handle's
// published snapshot, so throughput scales with GOMAXPROCS even while
// updates could be swapping new snapshots in.
func BenchmarkVerifyParallel(b *testing.B) {
	e := benchEnvs(b)["stanford"]
	pt := e.Table()
	var reports []*packet.Report
	for _, w := range traffic.Witnesses(pt) {
		res, err := e.Fabric.Inject(w.Inport, w.Header)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Reports) > 0 {
			reports = append(reports, res.Reports[len(res.Reports)-1])
		}
	}
	if len(reports) == 0 {
		b.Fatal("no reports")
	}
	h := e.Handle()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		snap := h.Current() // pin once per goroutine: the batch-path discipline
		i := 0
		for pb.Next() {
			if v := snap.Verify(reports[i%len(reports)]); !v.OK {
				b.Errorf("verification failed: %v", v.Reason)
				return
			}
			i++
		}
	})
}

// BenchmarkVerifyZipf measures the verdict cache on a Zipf-skewed report
// stream (the elephant-flow regime §6.4's scaling argument lives in):
// witness reports replayed in a seeded Zipf order, verified in batches
// against one pinned snapshot, cached vs uncached. Both arms run the
// identical stream through the identical batch API; the differential
// check at the end asserts equal verdicts, so the reports/sec gap is pure
// cache effect.
func BenchmarkVerifyZipf(b *testing.B) {
	e := benchEnvs(b)["stanford"]
	pt := e.Table()
	var reports []packet.Report
	for _, w := range traffic.Witnesses(pt) {
		res, err := e.Fabric.Inject(w.Inport, w.Header)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Reports) > 0 {
			reports = append(reports, *res.Reports[len(res.Reports)-1])
		}
	}
	if len(reports) == 0 {
		b.Fatal("no reports")
	}
	const batchSize = 32
	idx := traffic.ZipfIndices(len(reports), 1<<16, 1.2, 42)
	stream := make([]packet.Report, len(idx))
	for i, j := range idx {
		stream[i] = reports[j]
	}
	snap := e.Handle().Current()

	run := func(b *testing.B, cache *core.VerdictCache) {
		var out [batchSize]core.Verdict
		b.ReportAllocs()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			off := (i * batchSize) % (len(stream) - batchSize)
			snap.VerifyBatch(cache, stream[off:off+batchSize], out[:])
		}
		b.ReportMetric(float64(b.N)*batchSize/time.Since(start).Seconds(), "reports/sec")
		b.StopTimer()
		// Equal correctness: the arm's last batch must match uncached
		// verdicts exactly.
		off := ((b.N - 1) * batchSize) % (len(stream) - batchSize)
		for k := 0; k < batchSize; k++ {
			if want := snap.Verify(&stream[off+k]); out[k] != want {
				b.Fatalf("verdict %d diverged: %+v != %+v", k, out[k], want)
			}
		}
	}
	b.Run("cached", func(b *testing.B) {
		cache := core.NewVerdictCache(0)
		run(b, cache)
		if h, m := cache.Hits(), cache.Misses(); h+m > 0 {
			b.ReportMetric(float64(h)/float64(h+m)*100, "hit%")
		}
	})
	b.Run("uncached", func(b *testing.B) { run(b, nil) })
}

// BenchmarkColdVsWarmStart measures what the -table-cache flag buys at
// Stanford scale: cold is a full path-table construction from the logical
// rules; warm is deserializing the saved snapshot (core.Load), which
// skips traversal, BDD recomputation, and tag folding.
func BenchmarkColdVsWarmStart(b *testing.B) {
	e := benchEnvs(b)["stanford"]
	var blob bytes.Buffer
	if err := e.Table().Save(&blob); err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if e.Build() == nil {
				b.Fatal("nil table")
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pt, err := core.Load(bytes.NewReader(blob.Bytes()), e.Net)
			if err != nil {
				b.Fatal(err)
			}
			if pt == nil {
				b.Fatal("nil table")
			}
		}
	})
}

// --- Figure 6: path lookup (per-pair list scan) ---------------------------

func benchLookup(b *testing.B, name string) {
	e := benchEnvs(b)[name]
	pt := e.Table()
	type key struct{ in, out topo.PortKey }
	var keys []key
	pt.Entries(func(in, out topo.PortKey, _ *core.PathEntry) {
		keys = append(keys, key{in, out})
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		if len(pt.Lookup(k.in, k.out)) == 0 {
			b.Fatal("empty pair")
		}
	}
}

func BenchmarkPathLookupStanford(b *testing.B)  { benchLookup(b, "stanford") }
func BenchmarkPathLookupInternet2(b *testing.B) { benchLookup(b, "internet2") }

// --- Figure 12: false-negative rate vs tag size --------------------------

func BenchmarkFalseNegativeSweep(b *testing.B) {
	e := benchEnvs(b)["ft4"]
	b.ResetTimer()
	var points []sim.FNRPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = sim.FalseNegativeSweep(e, []int{8, 16, 32, 64}, 300, int64(i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, p := range points {
		b.ReportMetric(p.Absolute()*100, "absFNR%@"+itoa(p.MBits)+"bit")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// --- Table 3: localization ------------------------------------------------

// Localization modes under measurement: the paper's Algorithm 4, the §4.3
// strawman, and the hash-tag-equivalent blind search (ablation: what the
// Bloom subset structure buys, §3.3).
type locMode int

const (
	locPathInfer locMode = iota
	locStrawman
	locBlind
)

// benchLocalization measures localization on a standing set of failed
// reports.
func benchLocalization(b *testing.B, mode locMode) {
	e := benchEnvs(b)["ft4"]
	pt := e.Table()
	rng := rand.New(rand.NewSource(99))
	var failing []*packet.Report
	var sw topo.SwitchID
	var ruleID uint64
	var inj faults.Injected
	// Some random rules sit on switches no ping path uses; retry until the
	// fault is actually exercised.
	for attempt := 0; attempt < 50 && len(failing) == 0; attempt++ {
		var ok bool
		sw, ruleID, ok = faults.RandomRule(e.Fabric, rng)
		if !ok {
			b.Fatal("no rules")
		}
		var err error
		inj, err = faults.WrongPort(e.Fabric, sw, ruleID, rng)
		if err != nil {
			b.Fatal(err)
		}
		for _, ping := range traffic.PingMesh(e.Net) {
			res, err := e.Fabric.InjectFromHost(ping.SrcHost, ping.Header)
			if err != nil {
				b.Fatal(err)
			}
			for _, rep := range res.Reports {
				if !pt.Verify(rep).OK {
					failing = append(failing, rep)
				}
			}
		}
		if len(failing) == 0 {
			// Inert fault: restore and retry.
			e.Fabric.Switch(sw).Config.Table.Modify(ruleID, func(r *flowtable.Rule) { r.OutPort = inj.OldPort })
		}
	}
	if len(failing) == 0 {
		b.Fatal("no fault produced failures after 50 attempts")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := failing[i%len(failing)]
		switch mode {
		case locStrawman:
			pt.StrawmanLocalize(rep)
		case locBlind:
			pt.PathInferBlind(rep)
		default:
			pt.PathInfer(rep)
		}
	}
	b.StopTimer()
	// Restore.
	e.Fabric.Switch(sw).Config.Table.Modify(ruleID, func(r *flowtable.Rule) { r.OutPort = inj.OldPort })
}

func BenchmarkLocalization(b *testing.B)             { benchLocalization(b, locPathInfer) }
func BenchmarkLocalizationStrawman(b *testing.B)     { benchLocalization(b, locStrawman) }
func BenchmarkLocalizationHashTagBlind(b *testing.B) { benchLocalization(b, locBlind) }

// --- Figure 14: incremental path-table update ----------------------------

func BenchmarkIncrementalUpdate(b *testing.B) {
	// Per-iteration work is one full Figure 14 run scaled down; the metric
	// of interest is per-rule time, reported as a custom metric.
	scale := sim.Internet2Scale{HostsPerRouter: 1, Prefixes: 48, Seed: 4}
	var res *sim.UpdateExperimentResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sim.IncrementalUpdate(scale, "wash")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(res.Measurements) > 0 {
		b.ReportMetric(float64(res.Percentile(0.5))/1e6, "ms/rule-p50")
		b.ReportMetric(float64(res.Percentile(0.99))/1e6, "ms/rule-p99")
		b.ReportMetric(float64(res.RebuildTime)/1e6, "ms/full-rebuild")
	}
}

// --- Table 4: data-plane pipeline overhead -------------------------------

// Software pipeline stages measured on real serialized packets.
func benchPacket(size int) []byte {
	h := header.Header{SrcIP: 0x0a000101, DstIP: 0x0a000201, Proto: header.ProtoTCP, SrcPort: 40000, DstPort: 80}
	payload := size - packet.EthernetLen - packet.IPv4Len - packet.TCPLen
	return packet.BuildData(h, 64, make([]byte, payload))
}

func BenchmarkPipelineNative512(b *testing.B) {
	// Native forwarding work: parse + flow-table lookup.
	cfg := flowtable.NewSwitchConfig([]topo.PortID{1, 2, 3, 4})
	for i := 0; i < 64; i++ {
		cfg.Table.Add(&flowtable.Rule{
			Priority: 24,
			Match:    flowtable.Match{DstPrefix: flowtable.Prefix{IP: uint32(10)<<24 | uint32(i)<<8, Len: 24}},
			Action:   flowtable.ActOutput, OutPort: topo.PortID(i%4 + 1),
		})
	}
	raw := benchPacket(512)
	b.SetBytes(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := packet.Parse(raw)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Classify(1, p.Header)
	}
}

func BenchmarkPipelineSampling512(b *testing.B) {
	s := dataplane.NewFlowSampler(time.Millisecond)
	raw := benchPacket(512)
	p, err := packet.Parse(raw)
	if err != nil {
		b.Fatal(err)
	}
	now := time.Now()
	b.SetBytes(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := p.Header
		h.SrcPort = uint16(i) // rotate flows like real traffic
		s.ShouldSample(h, now)
	}
}

func BenchmarkPipelineTagging512(b *testing.B) {
	raw := benchPacket(512)
	enc, err := packet.Encapsulate(raw, 0, topo.PortKey{Switch: 1, Port: 1})
	if err != nil {
		b.Fatal(err)
	}
	hop := topo.Hop{In: 1, Switch: 7, Out: 3}
	params := bloom.DefaultParams
	var tag bloom.Tag
	b.SetBytes(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tag = tag.Union(params.Hash(hop.Bytes()))
		if err := packet.UpdateTag(enc, tag); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHWPipeModel(b *testing.B) {
	m := hwpipe.Default()
	var rows []hwpipe.Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = m.Table4([]int{128, 256, 512, 1024, 1500})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(r.TaggingOH*100, "tagOH%@"+itoa(r.PacketSize)+"B")
	}
}

// --- End-to-end: whole-fabric packet processing --------------------------

func BenchmarkFabricInject(b *testing.B) {
	e := benchEnvs(b)["ft4"]
	hosts := e.Net.Hosts()
	h := header.Header{SrcIP: hosts[0].IP, DstIP: hosts[len(hosts)-1].IP, Proto: header.ProtoTCP, DstPort: 80}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Fabric.InjectFromHost(hosts[0].Name, h); err != nil {
			b.Fatal(err)
		}
	}
}
