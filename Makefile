# Development gate for the VeriDP reproduction. `make check` is what CI
# runs: vet + formatting + the repo's own static analysis (veridp-lint)
# + the full test suite under the race detector.

GO ?= go

# Per-target budget for `make fuzz`. CI smoke runs keep the default;
# a local soak can say `make fuzz FUZZTIME=5m`.
FUZZTIME ?= 10s

# Packages with Fuzz* targets and committed seed corpora.
FUZZ_PKGS = ./internal/openflow ./internal/packet ./internal/pcap ./internal/storm

# `make storm` settings: one seeded fuzzing campaign against a live
# deployment (see internal/storm). CI runs storm-smoke non-gating.
STORM_TOPO ?= ft4
STORM_STEPS ?= 500
STORM_SEED ?= 1

# `make bench` settings: packages with benchmarks, selection regex, and
# repeat count (6 runs is what benchstat wants for a stable comparison).
BENCH_PKGS = . ./internal/report
BENCH ?= .
BENCHTIME ?= 200ms
BENCHCOUNT ?= 6

.PHONY: build test vet fmt lint race fuzz check bench bench-smoke storm storm-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

lint:
	$(GO) run ./cmd/veridp-lint -timing -baseline lint.baseline ./...

race:
	$(GO) test -race ./...

# Short fuzzing pass over every Fuzz* target. `go test -fuzz` accepts a
# regex that must match exactly one target, so enumerate with -list and
# run them one at a time.
fuzz:
	@set -e; \
	for pkg in $(FUZZ_PKGS); do \
		for target in $$($(GO) test -list '^Fuzz' $$pkg | grep '^Fuzz'); do \
			echo "fuzz $$pkg $$target ($(FUZZTIME))"; \
			$(GO) test -run '^$$' -fuzz "^$$target$$" -fuzztime $(FUZZTIME) $$pkg; \
		done; \
	done

# Network-state fuzzing: one seeded campaign with the invariant oracles
# armed. A failure writes storm-failure.json for replay/minimization:
#   go run ./cmd/veridp-storm -replay storm-failure.json -minimize
storm:
	$(GO) run ./cmd/veridp-storm -topo $(STORM_TOPO) -steps $(STORM_STEPS) -seed $(STORM_SEED)

# CI smoke: a shorter campaign on each topology.
storm-smoke:
	@set -e; \
	for topo in ft4 ft6 figure5; do \
		$(GO) run ./cmd/veridp-storm -topo $$topo -steps 200 -seed $(STORM_SEED); \
	done

# Benchmark run: plain `go test -bench` text (feed BENCH.txt pairs to
# benchstat for before/after comparisons) plus a JSON rendering committed
# as the tracked baseline.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime $(BENCHTIME) -count $(BENCHCOUNT) $(BENCH_PKGS) | tee BENCH.txt
	$(GO) run ./cmd/bench2json < BENCH.txt > BENCH_baseline.json
	@echo "wrote BENCH.txt and BENCH_baseline.json"

# One iteration per benchmark: proves every benchmark still compiles and
# runs. CI uses this non-gating; it says nothing about performance.
bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime 1x -count 1 $(BENCH_PKGS)

check: vet fmt lint race
