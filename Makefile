# Development gate for the VeriDP reproduction. `make check` is what CI
# runs: vet + formatting + the repo's own static analysis (veridp-lint)
# + the full test suite under the race detector.

GO ?= go

# Per-target budget for `make fuzz`. CI smoke runs keep the default;
# a local soak can say `make fuzz FUZZTIME=5m`.
FUZZTIME ?= 10s

# Packages with Fuzz* targets and committed seed corpora.
FUZZ_PKGS = ./internal/openflow ./internal/packet ./internal/pcap

.PHONY: build test vet fmt lint race fuzz check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

lint:
	$(GO) run ./cmd/veridp-lint -baseline lint.baseline ./...

race:
	$(GO) test -race ./...

# Short fuzzing pass over every Fuzz* target. `go test -fuzz` accepts a
# regex that must match exactly one target, so enumerate with -list and
# run them one at a time.
fuzz:
	@set -e; \
	for pkg in $(FUZZ_PKGS); do \
		for target in $$($(GO) test -list '^Fuzz' $$pkg | grep '^Fuzz'); do \
			echo "fuzz $$pkg $$target ($(FUZZTIME))"; \
			$(GO) test -run '^$$' -fuzz "^$$target$$" -fuzztime $(FUZZTIME) $$pkg; \
		done; \
	done

check: vet fmt lint race
