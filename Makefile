# Development gate for the VeriDP reproduction. `make check` is what CI
# runs: vet + formatting + the repo's own static analysis (veridp-lint)
# + the full test suite under the race detector.

GO ?= go

.PHONY: build test vet fmt lint race check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

lint:
	$(GO) run ./cmd/veridp-lint -baseline lint.baseline ./...

race:
	$(GO) test -race ./...

check: vet fmt lint race
