// End-to-end shutdown test for the live Figure 4 deployment: controller
// server, interception proxy, per-switch agents, and the UDP collector
// are wired over real sockets, traffic flows, and then the root context
// is cancelled mid-stream. The contract under test is the one the
// ctxprop/deadline/retrybound checkers enforce statically: cancellation
// reaches every goroutine (none leak), every Serve/Run returns, and the
// collector drains — its per-worker counters fold to exactly the number
// of reports the monitor handled.
package veridp_test

import (
	"context"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"veridp"
	"veridp/internal/controller"
	"veridp/internal/dataplane"
	"veridp/internal/flowtable"
	"veridp/internal/openflow"
	"veridp/internal/packet"
	"veridp/internal/report"
	"veridp/internal/topo"
)

func TestShutdownLeaksNothing(t *testing.T) {
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	net_ := veridp.Figure5()

	// Everything long-lived is accounted for in wg: the test fails if any
	// Serve/Run does not return after cancel.
	var wg sync.WaitGroup
	serve := func(f func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f() // after cancel every return value is some flavor of ctx.Err
		}()
	}

	ctrlSrv := controller.NewServer()
	ctrlL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serve(func() error { return ctrlSrv.Serve(ctx, ctrlL) })

	logical := make(map[topo.SwitchID]*flowtable.SwitchConfig)
	for _, sw := range net_.Switches() {
		logical[sw.ID] = flowtable.NewSwitchConfig(sw.Ports())
	}
	var handled atomic.Uint64
	mon := veridp.NewMonitor(net_, logical, veridp.MonitorConfig{
		OnVerified:  func(*veridp.Report) { handled.Add(1) },
		OnViolation: func(veridp.Violation) { handled.Add(1) },
	})

	collector, err := report.NewCollector("127.0.0.1:0", mon.BatchHandler, nil, report.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	serve(func() error { return collector.Run(ctx) })

	proxy := openflow.NewProxy(ctrlL.Addr().String(), mon.ProxyHooks(logical), nil)
	proxyL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serve(func() error { return proxy.Serve(ctx, proxyL) })

	sender, err := report.NewSender(collector.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	fabric := dataplane.NewFabric(net_)
	var fabricMu sync.Mutex
	var ids []topo.SwitchID
	for _, sw := range net_.Switches() {
		ids = append(ids, sw.ID)
		agent := &dataplane.Agent{Fabric: fabric, ID: sw.ID, Mu: &fabricMu, Sink: sender}
		conn, err := net.Dial("tcp", proxyL.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		serve(func() error { return agent.Run(ctx, conn) })
	}
	if err := ctrlSrv.WaitForSwitches(ids); err != nil {
		t.Fatal(err)
	}

	// Figure 5's SSH policy, installed over the live southbound channel.
	ctrl := controller.New(net_, ctrlSrv)
	s1 := net_.SwitchByName("S1").ID
	s2 := net_.SwitchByName("S2").ID
	s3 := net_.SwitchByName("S3").ID
	subnetS := veridp.Prefix{IP: veridp.MustParseIP("10.0.2.0"), Len: 24}
	for _, in := range []struct {
		sw topo.SwitchID
		r  veridp.Rule
	}{
		{s1, veridp.Rule{Priority: 20, Match: veridp.Match{DstPrefix: subnetS, HasDst: true, DstPort: 22}, Action: veridp.ActOutput, OutPort: 3}},
		{s2, veridp.Rule{Priority: 10, Match: veridp.Match{InPort: 1}, Action: veridp.ActOutput, OutPort: 3}},
		{s3, veridp.Rule{Priority: 20, Match: veridp.Match{DstPrefix: subnetS}, Action: veridp.ActOutput, OutPort: 2}},
	} {
		if _, err := ctrl.InstallRule(in.sw, in.r); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctrl.Barrier(); err != nil {
		t.Fatal(err)
	}

	// Traffic pump: PacketOut probes until the context dies or the
	// control channel is torn down under it — both are expected ends.
	ssh := veridp.Header{SrcIP: veridp.MustParseIP("10.0.1.1"), DstIP: veridp.MustParseIP("10.0.2.1"), Proto: 6, SrcPort: 40001, DstPort: 22}
	frame := packet.BuildData(ssh, 64, []byte("probe"))
	serve(func() error {
		for ctx.Err() == nil {
			if err := ctrlSrv.PacketOut(s1, 1, frame); err != nil {
				return err
			}
			time.Sleep(time.Millisecond)
		}
		return ctx.Err()
	})

	// Let real traffic flow, then cancel mid-stream.
	waitFor(t, "first verified reports", func() bool { return handled.Load() >= 5 })
	cancel()

	drained := make(chan struct{})
	go func() { wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("cancel did not stop every Serve/Run within 10s")
	}

	// The collector has drained: its per-worker shard counters must fold
	// to exactly the number of handler invocations — a report is either
	// fully processed or never dispatched, nothing is half-counted.
	if got, want := collector.Received(), handled.Load(); got != want {
		t.Errorf("collector.Received() = %d, monitor handled %d; shard counters did not fold cleanly", got, want)
	}
	if m := collector.Malformed(); m != 0 {
		t.Errorf("collector.Malformed() = %d, want 0", m)
	}

	// Close the endpoints (idempotent after cancel) and require the
	// goroutine count to settle back to the pre-test baseline.
	collector.Close()
	proxy.Close()
	ctrlSrv.Close()
	waitFor(t, "goroutines to drain", func() bool { return runtime.NumGoroutine() <= baseline })
}

// waitFor polls cond for up to 10s; on timeout it fails the test with a
// goroutine dump so the leak (or stall) is identifiable.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("timed out waiting for %s\n%s", what, buf[:runtime.Stack(buf, true)])
}
