// Package veridp is the public API of this VeriDP reproduction — a tool
// that continuously monitors control-data plane consistency in software
// defined networks (Zhang et al., "Mind the Gap", CoNEXT 2016).
//
// The control plane is abstracted as a path table: for every pair of edge
// ports, the set of paths a packet may legitimately take, each path paired
// with the BDD of headers it admits and a Bloom-filter tag folding its
// hops. The data plane samples real packets at entry switches, updates
// their tags hop by hop, and reports ⟨inport, outport, header, tag⟩ when a
// packet exits (or is dropped, or its TTL expires). The Monitor verifies
// each report against the path table and, on a mismatch, localizes the
// faulty switch by Bloom-guided path inference.
//
// Quick start (an emulated network; see examples/ for complete programs):
//
//	net := veridp.Figure5()
//	em := veridp.NewEmulation(net, veridp.DefaultTagParams)
//	// ... install rules via em.Controller ...
//	mon := em.NewMonitor(veridp.MonitorConfig{
//	    OnViolation: func(v veridp.Violation) { fmt.Println("fault:", v) },
//	})
//	em.Fabric.InjectFromHost("H1", hdr) // reports flow to mon automatically
//
// The heavy lifting lives in internal packages: internal/bdd (header
// sets), internal/bloom (tags), internal/core (path table, verification,
// localization, incremental update), internal/dataplane (switch emulator),
// internal/openflow (southbound channel + interception proxy),
// internal/report (UDP report transport). This facade re-exports the
// vocabulary types so applications only import veridp.
package veridp

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"veridp/internal/bloom"
	"veridp/internal/controller"
	"veridp/internal/core"
	"veridp/internal/dataplane"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/openflow"
	"veridp/internal/packet"
	"veridp/internal/policy"
	"veridp/internal/topo"
)

// Topology vocabulary.
type (
	// Network is the topology graph: switches, ports, links, hosts,
	// middleboxes.
	Network = topo.Network
	// SwitchID identifies a switch.
	SwitchID = topo.SwitchID
	// PortID is a switch-local port number; DropPort is ⊥.
	PortID = topo.PortID
	// PortKey names one port globally.
	PortKey = topo.PortKey
	// Hop is ⟨input_port, switch, output_port⟩.
	Hop = topo.Hop
	// Path is a hop sequence.
	Path = topo.Path
)

// DropPort is the ⊥ pseudo-port packets are dropped to.
const DropPort = topo.DropPort

// Topology builders.
var (
	// NewNetwork returns an empty topology to populate manually.
	NewNetwork = topo.NewNetwork
	// FatTree builds the k-ary fat tree of the paper's §6.1.
	FatTree = topo.FatTree
	// Stanford builds the Stanford-backbone-like topology.
	Stanford = topo.Stanford
	// Internet2 builds the nine-router Internet2-like backbone.
	Internet2 = topo.Internet2
	// Figure5 builds the paper's running example network.
	Figure5 = topo.Figure5
	// Figure7 builds the paper's fault-localization example.
	Figure7 = topo.Figure7
	// Linear builds a switch chain; Ring builds a cycle.
	Linear = topo.Linear
	Ring   = topo.Ring
)

// Packet and rule vocabulary.
type (
	// Header is the TCP/UDP 5-tuple VeriDP verifies over.
	Header = header.Header
	// Rule is one flow entry; Match its matching half; Prefix an IPv4
	// prefix.
	Rule   = flowtable.Rule
	Match  = flowtable.Match
	Prefix = flowtable.Prefix
	// Rewrite pins header fields on forwarding (OpenFlow set-field; the
	// future-work extension implemented here — see internal/header).
	Rewrite = header.Rewrite
	// Report is the ⟨inport, outport, header, tag⟩ tag report.
	Report = packet.Report
	// TagParams configures the Bloom-filter tag scheme.
	TagParams = bloom.Params
	// Tag is a Bloom-filter packet tag.
	Tag = bloom.Tag
)

// Rule actions.
const (
	ActOutput = flowtable.ActOutput
	ActDrop   = flowtable.ActDrop
)

// DefaultTagParams is the paper's prototype configuration: 16-bit tags
// carried in a VLAN TCI.
var DefaultTagParams = bloom.DefaultParams

// ParseIP converts dotted-quad notation to the uint32 addresses Header
// uses; MustParseIP panics on malformed input.
var (
	ParseIP     = header.ParseIP
	MustParseIP = header.MustParseIP
)

// Intent layer (Figure 1's I→R stage): declarative policies that compile
// to rules and statically check I = R against the path table, while the
// Monitor guards R = F at runtime.
type (
	// Policy is one piece of operator intent; PolicySuite bundles them.
	Policy      = policy.Policy
	PolicySuite = policy.Suite
	// Reachability, Isolation, and Waypoint are the built-in intent
	// classes of the paper's §2.3.
	Reachability   = policy.Reachability
	Isolation      = policy.Isolation
	WaypointIntent = policy.Waypoint
)

// Violation describes one failed verification, with localization output.
type Violation struct {
	Report *Report
	// Reason is the Algorithm 3 failure class.
	Reason string
	// Localized reports whether path inference recovered candidate paths.
	Localized bool
	// FaultySwitch is the blamed switch when Localized.
	FaultySwitch SwitchID
	// Candidates are the tag-consistent paths the packet may have taken.
	Candidates []Path
}

// MonitorConfig configures a Monitor.
type MonitorConfig struct {
	// Params selects the tag scheme; zero value means DefaultTagParams.
	Params TagParams
	// OnViolation, if set, fires for every failed verification.
	OnViolation func(Violation)
	// OnVerified, if set, fires for every passed verification.
	OnVerified func(*Report)
}

// Monitor is the VeriDP verification server: a path table plus the
// verdict plumbing. Safe for concurrent use from any number of goroutines:
// report verification runs lock-free against an atomically-published
// snapshot of the path table (core.Handle), so a stream of HandleReport
// calls scales with cores and never blocks behind a table rebuild.
type Monitor struct {
	cfg MonitorConfig

	handle *core.Handle
	net    *Network

	verified atomic.Uint64
	violated atomic.Uint64

	mu      sync.Mutex
	reasons map[string]uint64    // guarded by mu
	blames  map[SwitchID]uint64  // guarded by mu
	caches  []*core.VerdictCache // guarded by mu; one per BatchHandler worker
}

// NewMonitor builds a monitor over the network and the control plane's
// logical per-switch configurations (as maintained by Controller.Logical).
func NewMonitor(net *Network, logical map[SwitchID]*flowtable.SwitchConfig, cfg MonitorConfig) *Monitor {
	if cfg.Params == (TagParams{}) {
		cfg.Params = DefaultTagParams
	}
	b := &core.Builder{
		Net:     net,
		Space:   header.NewSpace(),
		Params:  cfg.Params,
		Configs: logical,
	}
	return NewMonitorFromTable(net, b.Build(), cfg)
}

// NewMonitorFromTable builds a monitor around an already-constructed path
// table — the warm-start entry point: veridp-server deserializes a table
// saved by a previous run (core.PathTable.Load) and mounts a monitor on it
// without paying reconstruction. The monitor owns pt from here on.
func NewMonitorFromTable(net *Network, pt *core.PathTable, cfg MonitorConfig) *Monitor {
	if cfg.Params == (TagParams{}) {
		cfg.Params = DefaultTagParams
	}
	return &Monitor{
		cfg:     cfg,
		handle:  core.NewHandle(pt),
		net:     net,
		reasons: make(map[string]uint64),
		blames:  make(map[SwitchID]uint64),
	}
}

// HandleReport verifies one tag report, dispatching the configured
// callbacks. It implements the data plane's report-sink interface, so a
// Monitor can be wired directly into an Emulation or a UDP collector. The
// verification itself is lock-free and allocation-free (the Figure 13
// hot path); only a failed report takes the monitor's locks, for
// localization and the violation breakdowns. Callbacks run with every
// lock released, so they may call back into the Monitor (e.g. OnViolation
// invoking Repair for self-healing).
func (m *Monitor) HandleReport(r *Report) {
	m.tally(r, m.handle.Current().Verify(r))
}

// BatchHandler returns a batch-verification closure for one collector
// worker — the factory report.NewCollector expects. Each closure owns a
// private verdict cache (single-writer: no atomics on the probe path) and
// a reusable verdict buffer; the whole batch is verified against one
// pinned snapshot via core.Snapshot.VerifyBatch, then tallied through the
// same callback plumbing as HandleReport. Reports passed to callbacks are
// only valid until the handler returns, exactly as the collector's batch
// contract states.
func (m *Monitor) BatchHandler() func([]Report) {
	cache := core.NewVerdictCache(0)
	m.mu.Lock()
	m.caches = append(m.caches, cache)
	m.mu.Unlock()
	var verdicts []core.Verdict
	return func(batch []Report) {
		if cap(verdicts) < len(batch) {
			verdicts = make([]core.Verdict, len(batch))
		}
		out := verdicts[:len(batch)]
		m.handle.Current().VerifyBatch(cache, batch, out)
		for i := range batch {
			m.tally(&batch[i], out[i])
		}
	}
}

// tally routes one verdict into the counters, localization, and callbacks.
func (m *Monitor) tally(r *Report, v core.Verdict) {
	if v.OK {
		m.verified.Add(1)
		if cb := m.cfg.OnVerified; cb != nil {
			cb(r)
		}
		return
	}
	m.violated.Add(1)
	m.mu.Lock()
	m.reasons[v.Reason.String()]++
	m.mu.Unlock()
	// Localization builds BDDs, which extends the shared table — Inspect
	// serializes it against concurrent path-table updates.
	var sw SwitchID
	var candidates []Path
	var ok bool
	m.handle.Inspect(func(pt *core.PathTable) {
		sw, candidates, ok = pt.Localize(r)
	})
	if ok {
		m.mu.Lock()
		m.blames[sw]++
		m.mu.Unlock()
	}
	if cb := m.cfg.OnViolation; cb != nil {
		cb(Violation{
			Report:       r,
			Reason:       v.Reason.String(),
			Localized:    ok,
			FaultySwitch: sw,
			Candidates:   candidates,
		})
	}
}

// Verify checks one report without firing callbacks, returning whether it
// passed and the failure reason otherwise. Lock-free.
func (m *Monitor) Verify(r *Report) (bool, string) {
	v := m.handle.Current().Verify(r)
	return v.OK, v.Reason.String()
}

// Stats returns the running verified/violated counters.
func (m *Monitor) Stats() (verified, violated uint64) {
	return m.verified.Load(), m.violated.Load()
}

// CacheStats folds the verdict-cache hit/miss counters across every
// BatchHandler worker. Zero/zero when no batch handler was ever built.
func (m *Monitor) CacheStats() (hits, misses uint64) {
	m.mu.Lock()
	caches := m.caches
	m.mu.Unlock()
	for _, c := range caches {
		hits += c.Hits()
		misses += c.Misses()
	}
	return hits, misses
}

// PathTable exposes the underlying table for inspection (stats, entries).
// Callers must not use it concurrently with HandleReport or rule updates;
// concurrent deployments read through Handle instead.
func (m *Monitor) PathTable() *core.PathTable { return m.handle.Table() }

// Handle exposes the snapshot-publication handle, for callers that verify
// reports or apply §4.4 deltas from their own goroutines.
func (m *Monitor) Handle() *core.Handle { return m.handle }

// WriteMetrics emits the monitor's counters in the Prometheus text
// exposition format: verified/violated totals, violations by reason,
// localizations by blamed switch, and path-table gauges.
func (m *Monitor) WriteMetrics(w io.Writer) error {
	// Stats compacts the table in place, so it needs the update lock.
	var st core.Stats
	m.handle.Inspect(func(pt *core.PathTable) { st = pt.Stats() })
	m.mu.Lock()
	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE veridp_reports_verified_total counter\n")
	fmt.Fprintf(&b, "veridp_reports_verified_total %d\n", m.verified.Load())
	fmt.Fprintf(&b, "# TYPE veridp_reports_violated_total counter\n")
	fmt.Fprintf(&b, "veridp_reports_violated_total %d\n", m.violated.Load())
	var hits, misses uint64
	for _, c := range m.caches {
		hits += c.Hits()
		misses += c.Misses()
	}
	fmt.Fprintf(&b, "# TYPE veridp_cache_hits_total counter\n")
	fmt.Fprintf(&b, "veridp_cache_hits_total %d\n", hits)
	fmt.Fprintf(&b, "# TYPE veridp_cache_misses_total counter\n")
	fmt.Fprintf(&b, "veridp_cache_misses_total %d\n", misses)
	fmt.Fprintf(&b, "# TYPE veridp_violations_total counter\n")
	reasons := make([]string, 0, len(m.reasons))
	for r := range m.reasons {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(&b, "veridp_violations_total{reason=%q} %d\n", r, m.reasons[r])
	}
	fmt.Fprintf(&b, "# TYPE veridp_blamed_total counter\n")
	ids := make([]SwitchID, 0, len(m.blames))
	for id := range m.blames {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		name := fmt.Sprintf("S%d", id)
		if sw := m.net.Switch(id); sw != nil {
			name = sw.Name
		}
		fmt.Fprintf(&b, "veridp_blamed_total{switch=%q} %d\n", name, m.blames[id])
	}
	fmt.Fprintf(&b, "# TYPE veridp_path_table_pairs gauge\n")
	fmt.Fprintf(&b, "veridp_path_table_pairs %d\n", st.Pairs)
	fmt.Fprintf(&b, "# TYPE veridp_path_table_paths gauge\n")
	fmt.Fprintf(&b, "veridp_path_table_paths %d\n", st.Paths)
	m.mu.Unlock()
	// The write happens after release: w is typically a network-backed
	// ResponseWriter, and a slow scraper must not stall verification.
	_, err := io.WriteString(w, b.String())
	return err
}

// ServeHTTP serves the metrics, making a Monitor mountable at /metrics.
func (m *Monitor) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	m.WriteMetrics(w)
}

// RuleInstaller is the southbound surface Repair pushes FlowMods through;
// dataplane.FabricInstaller and controller.Server both satisfy it.
type RuleInstaller = core.RuleInstaller

// Repair localizes the failure behind a report and re-asserts the logical
// rule on the blamed switch through the installer — the paper's
// future-work item (2), automatic flow-table repair. It returns the blamed
// switch.
func (m *Monitor) Repair(r *Report, inst RuleInstaller) (SwitchID, error) {
	// Plan under the update lock (planning reads the path table and builds
	// BDDs), push the FlowMods outside it: the installer may write to a
	// real southbound channel, and one stuck switch must not wedge table
	// updates for all the others.
	var plan *core.RepairPlan
	var err error
	m.handle.Inspect(func(pt *core.PathTable) { plan, err = pt.PlanRepair(r) })
	if err != nil {
		return 0, err
	}
	if err := plan.Apply(inst); err != nil {
		return 0, err
	}
	return plan.Switch, nil
}

// ProxyHooks returns interception hooks that rebuild the path table when
// FlowMods pass through the southbound proxy — the deployment of Figure 4,
// where the VeriDP server sits on the OpenFlow channel. The rebuild
// strategy is correct for arbitrary rules; deployments restricted to
// destination-prefix rules can use the incremental §4.4 path via
// core.PathTable.ApplyDelta instead.
func (m *Monitor) ProxyHooks(logical map[SwitchID]*flowtable.SwitchConfig) openflow.ProxyHooks {
	rebuild := func(sw SwitchID, f *openflow.FlowMod) {
		// Swap serializes the logical-config edit and the rebuild against
		// all other table updates, then publishes the new table in one
		// atomic snapshot; in-flight verifications finish against the old
		// one.
		m.handle.Swap(func(old *core.PathTable) *core.PathTable {
			cfg, ok := logical[sw]
			if !ok {
				return old
			}
			switch f.Command {
			case openflow.FlowAdd:
				r := f.Rule
				r.ID = f.RuleID
				cfg.Table.Add(&r)
			case openflow.FlowDelete:
				cfg.Table.Delete(f.RuleID)
			case openflow.FlowModify:
				cfg.Table.Modify(f.RuleID, func(r *Rule) {
					r.Priority = f.Rule.Priority
					r.Match = f.Rule.Match
					r.Action = f.Rule.Action
					r.OutPort = f.Rule.OutPort
				})
			}
			b := &core.Builder{Net: m.net, Space: header.NewSpace(), Params: m.cfg.Params, Configs: logical}
			return b.Build()
		})
	}
	return openflow.ProxyHooks{OnFlowMod: rebuild}
}

// Emulation bundles an emulated data plane with a controller — the
// Mininet-equivalent playground every example runs on.
type Emulation struct {
	Net        *Network
	Fabric     *dataplane.Fabric
	Controller *controller.Controller

	monitor *Monitor
}

// NewEmulation builds switches for every topology node and a controller
// wired to them through the in-process southbound path.
func NewEmulation(net *Network, params TagParams) *Emulation {
	em := &Emulation{Net: net}
	em.Fabric = dataplane.NewFabric(net,
		dataplane.WithParams(params),
		dataplane.WithReportSink(dataplane.ReportFunc(func(r *Report) {
			if em.monitor != nil {
				em.monitor.HandleReport(r)
			}
		})),
	)
	em.Controller = controller.New(net, &dataplane.FabricInstaller{Fabric: em.Fabric})
	return em
}

// NewMonitor builds a Monitor from the emulation's current logical rules
// and attaches it so every future tag report is verified automatically.
func (em *Emulation) NewMonitor(cfg MonitorConfig) *Monitor {
	if cfg.Params == (TagParams{}) {
		cfg.Params = em.Fabric.Params
	}
	m := NewMonitor(em.Net, em.Controller.Logical(), cfg)
	em.monitor = m
	return m
}
