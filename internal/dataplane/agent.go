// Agent: the OpenFlow-agent side of an emulated switch (§3.2's "OpenFlow
// agent that terminates the OpenFlow channel"). It dials the controller —
// or, in a VeriDP deployment, the interception proxy — announces its
// switch ID, and serves FlowMods, Barriers, Echo, and PacketOut over the
// southbound protocol. Used by the live examples and cmd/veridp-server
// deployments where rules and packets travel over real TCP.

package dataplane

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"

	"veridp/internal/flowtable"
	"veridp/internal/openflow"
	"veridp/internal/packet"
	"veridp/internal/topo"
)

// Agent serves the southbound channel for one emulated switch. All agents
// of one fabric share Mu: the fabric is single-threaded by design, and the
// lock serializes rule updates and packet injections across connections.
type Agent struct {
	Fabric *Fabric
	ID     topo.SwitchID
	Mu     *sync.Mutex
	Logger *log.Logger // may be nil

	// Sink receives tag reports for packets this agent injects via
	// PacketOut (nil discards them). Sink callbacks are serialized under
	// the fabric lock. guarded by Mu
	Sink ReportSink
}

func (a *Agent) logf(format string, args ...interface{}) {
	if a.Logger != nil {
		a.Logger.Printf("agent[%d]: "+format, append([]interface{}{a.ID}, args...)...)
	}
}

// Run performs the Hello handshake on nc and serves messages until the
// connection closes or ctx is cancelled (which closes the connection,
// failing the parked read). It always returns a non-nil error: ctx.Err()
// after cancellation, the transport error otherwise.
func (a *Agent) Run(ctx context.Context, nc net.Conn) error {
	if a.Fabric.Switch(a.ID) == nil {
		return fmt.Errorf("dataplane: agent for unknown switch %d", a.ID)
	}
	c := openflow.NewConn(nc)
	stop := context.AfterFunc(ctx, func() { c.Close() })
	defer stop()
	if err := c.SendHello(a.ID); err != nil {
		return err
	}
	for {
		m, err := c.Recv()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		if err := a.handle(c, m); err != nil {
			a.logf("xid %d: %v", m.Xid, err)
			if sendErr := c.SendError(m.Xid, err.Error()); sendErr != nil {
				return sendErr
			}
		}
	}
}

// handle dispatches one message.
func (a *Agent) handle(c *openflow.Conn, m *openflow.Message) error {
	switch m.Type {
	case openflow.TypeFlowMod:
		f, err := openflow.UnmarshalFlowMod(m.Body)
		if err != nil {
			return err
		}
		return a.applyFlowMod(f)
	case openflow.TypeBarrierRequest:
		// Applies are synchronous under the lock, so the barrier holds by
		// the time we reply — unlike the too-eager hardware of §2.2.
		return c.SendBarrierReply(m.Xid)
	case openflow.TypePacketOut:
		po, err := openflow.UnmarshalPacketOut(m.Body)
		if err != nil {
			return err
		}
		return a.packetOut(po)
	case openflow.TypeEchoRequest:
		return c.Send(&openflow.Message{Type: openflow.TypeEchoReply, Xid: m.Xid, Body: m.Body})
	case openflow.TypeTableDumpRequest:
		a.Mu.Lock()
		rules := append([]*flowtable.Rule(nil), a.Fabric.Switch(a.ID).Config.Table.Rules()...)
		body := openflow.MarshalTableDump(rules)
		a.Mu.Unlock()
		return c.Send(&openflow.Message{Type: openflow.TypeTableDumpReply, Xid: m.Xid, Body: body})
	case openflow.TypeHello, openflow.TypeEchoReply, openflow.TypeBarrierReply, openflow.TypeError:
		return nil // tolerated
	default:
		return fmt.Errorf("unsupported message %v", m.Type)
	}
}

// applyFlowMod mutates the switch's physical table.
func (a *Agent) applyFlowMod(f *openflow.FlowMod) error {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	sw := a.Fabric.Switch(a.ID)
	switch f.Command {
	case openflow.FlowAdd:
		r := f.Rule
		r.ID = f.RuleID
		_, err := sw.Config.Table.Add(&r)
		return err
	case openflow.FlowDelete:
		return sw.Config.Table.Delete(f.RuleID)
	case openflow.FlowModify:
		return sw.Config.Table.Modify(f.RuleID, func(r *flowtable.Rule) {
			r.Priority = f.Rule.Priority
			r.Match = f.Rule.Match
			r.Action = f.Rule.Action
			r.OutPort = f.Rule.OutPort
		})
	default:
		return fmt.Errorf("unknown FlowMod command %d", f.Command)
	}
}

// packetOut decodes the carried frame and injects it at the named port.
func (a *Agent) packetOut(po *openflow.PacketOut) error {
	p, err := packet.Parse(po.Data)
	if err != nil {
		return fmt.Errorf("PacketOut carries undecodable frame: %w", err)
	}
	a.Mu.Lock()
	defer a.Mu.Unlock()
	//lint:ignore lockedblock Mu is the documented fabric lock: injection must not race FlowMods, and the sim Sink sends UDP best-effort without blocking
	res, err := a.Fabric.Inject(topo.PortKey{Switch: a.ID, Port: po.Port}, p.Header)
	if err != nil {
		return err
	}
	if a.Sink != nil {
		for _, r := range res.Reports {
			//lint:ignore lockedblock reports ride the fabric-lock contract; the report.Sender sink is a non-blocking UDP datagram write
			a.Sink.HandleReport(r)
		}
	}
	return nil
}
