package hwpipe

import (
	"testing"
	"time"

	"veridp/internal/header"
	"veridp/internal/packet"
	"veridp/internal/topo"
)

func TestTable4Shape(t *testing.T) {
	rows, err := Default().Table4([]int{128, 256, 512, 1024, 1500})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows %d", len(rows))
	}
	for i, r := range rows {
		// Modules are constant-time per packet.
		if i > 0 {
			if r.Sampling != rows[0].Sampling || r.Tagging != rows[0].Tagging {
				t.Fatalf("module delay varies with packet size: %+v vs %+v", r, rows[0])
			}
			// Native grows with packet size; overheads shrink.
			if r.Native <= rows[i-1].Native {
				t.Fatalf("native delay not increasing: %v then %v", rows[i-1].Native, r.Native)
			}
			if r.SamplingOH >= rows[i-1].SamplingOH || r.TaggingOH >= rows[i-1].TaggingOH {
				t.Fatalf("relative overhead not shrinking: %+v then %+v", rows[i-1], r)
			}
		}
	}
	// Table 4's regime: sampling ≈ 0.15 µs, tagging ≈ 0.27 µs, native at
	// 128 B a few µs; overheads a few percent at 128 B and <2% at 512 B.
	r0 := rows[0]
	if r0.Sampling < 50*time.Nanosecond || r0.Sampling > 500*time.Nanosecond {
		t.Fatalf("sampling delay %v outside the paper's regime", r0.Sampling)
	}
	if r0.Tagging < 100*time.Nanosecond || r0.Tagging > 800*time.Nanosecond {
		t.Fatalf("tagging delay %v outside the paper's regime", r0.Tagging)
	}
	if r0.Native < time.Microsecond || r0.Native > 20*time.Microsecond {
		t.Fatalf("native delay %v at 128B outside the paper's regime", r0.Native)
	}
	if r0.TaggingOH > 0.15 {
		t.Fatalf("tagging overhead %.2f%% at 128B too large", r0.TaggingOH*100)
	}
	r512 := rows[2]
	if r512.TaggingOH > 0.03 {
		t.Fatalf("tagging overhead %.3f at 512B should be ~1%%", r512.TaggingOH)
	}
}

func TestProcessRejectsGarbage(t *testing.T) {
	if _, err := Default().Process([]byte{1, 2, 3}, topo.Hop{}, true); err == nil {
		t.Fatal("garbage packet accepted")
	}
	if _, err := Default().Table4([]int{10}); err == nil {
		t.Fatal("absurd packet size accepted")
	}
}

func TestSamplingOnlyAtEntry(t *testing.T) {
	h := header.Header{SrcIP: 1, DstIP: 2, Proto: header.ProtoTCP, SrcPort: 3, DstPort: 4}
	raw := packet.BuildData(h, 64, make([]byte, 100))
	m := Default()
	entry, err := m.Process(raw, topo.Hop{In: 1, Switch: 1, Out: 2}, true)
	if err != nil {
		t.Fatal(err)
	}
	core, err := m.Process(raw, topo.Hop{In: 1, Switch: 2, Out: 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if entry.SamplingCycles == 0 {
		t.Fatal("entry switch skipped sampling")
	}
	if core.SamplingCycles != 0 {
		t.Fatal("non-entry switch ran the sampling module (§6.6: only entry switches sample)")
	}
	if entry.TaggingCycles == 0 || core.TaggingCycles == 0 {
		t.Fatal("tagging must run at every hop")
	}
}
