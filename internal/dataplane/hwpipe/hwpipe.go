// Package hwpipe models the ONetSwitch FPGA implementation of the VeriDP
// pipeline (§5, Figure 10) as a cycle-accounted store-and-forward pipeline,
// standing in for the hardware the paper measures in Table 4 (see
// DESIGN.md, "Substitutions").
//
// The FPGA runs at 125 MHz (one cycle = 8 ns) with a 1 Gbps datapath, i.e.
// exactly one byte per cycle on ingress and egress. Table 4's native delay
// is therefore dominated by per-byte passes through the datapath (its slope
// is ≈ 3 × 8 ns per byte: ingress DMA, internal buffer crossing, egress
// DMA), while the VeriDP sampling and tagging modules cost a constant
// number of cycles per packet — which is why their relative overhead falls
// from a few percent at 128 B to well under 1% at 1500 B.
//
// The model processes real serialized packets: it walks the actual layer
// chain to parse, hashes the actual hop bytes to tag, and patches the
// actual TOS word to mark, accumulating a cycle count per stage.
package hwpipe

import (
	"fmt"
	"time"

	"veridp/internal/bloom"
	"veridp/internal/header"
	"veridp/internal/packet"
	"veridp/internal/topo"
)

// Model is the cycle-cost configuration. The defaults are calibrated so
// the native curve and module constants land in the regime Table 4
// reports; the *structure* (constant modules vs linear native) is what the
// experiment reproduces.
type Model struct {
	ClockMHz float64 // FPGA clock; 125 MHz on the ONetSwitch

	// Per-byte datapath passes of the native pipeline (ingress DMA,
	// buffer crossing, egress DMA).
	DatapathPasses int
	// Fixed cycles of the native pipeline: header parse offsets, flow
	// table TCAM match, action execution, scheduling.
	ParseCyclesPerHeaderByte int
	LookupCycles             int
	SchedulingCycles         int

	// Sampling module: flow-array hash probe + compare + timestamp update.
	SamplingHashCycles  int
	SamplingProbeCycles int

	// Tagging module: Murmur3 over the 6-byte hop, three probe ORs, VLAN
	// TCI write, TOS/checksum patch.
	TagHashCycles  int
	TagProbeCycles int
	TagWriteCycles int
}

// Default is the ONetSwitch-calibrated model.
func Default() Model {
	return Model{
		ClockMHz:                 125,
		DatapathPasses:           3,
		ParseCyclesPerHeaderByte: 1,
		LookupCycles:             12,
		SchedulingCycles:         90,
		SamplingHashCycles:       6,
		SamplingProbeCycles:      13,
		TagHashCycles:            12,
		TagProbeCycles:           3,
		TagWriteCycles:           13,
	}
}

// cycleTime converts cycles to wall time at the model's clock.
func (m Model) cycleTime(cycles int) time.Duration {
	ns := float64(cycles) * 1000 / m.ClockMHz
	return time.Duration(ns) * time.Nanosecond
}

// Result is a per-stage cycle account for one packet.
type Result struct {
	NativeCycles   int
	SamplingCycles int
	TaggingCycles  int
}

// NativeDelay converts the native account to time.
func (m Model) delay(c int) time.Duration { return m.cycleTime(c) }

// Process accounts one packet through the pipeline. raw must be a parseable
// packet; hop is the ⟨in, switch, out⟩ the tagging module encodes; entry
// selects whether the sampling module runs (entry switches only, §6.6).
func (m Model) Process(raw []byte, hop topo.Hop, entry bool) (Result, error) {
	p, err := packet.Parse(raw)
	if err != nil {
		return Result{}, fmt.Errorf("hwpipe: %w", err)
	}
	var r Result

	// Native pipeline: datapath passes + parse + lookup + scheduling.
	r.NativeCycles += m.DatapathPasses * len(raw)
	headerBytes := packet.EthernetLen + packet.IPv4Len
	if p.HasVeriDP {
		headerBytes += 2 * packet.VLANLen
	}
	switch p.Header.Proto {
	case 6:
		headerBytes += packet.TCPLen
	case 17:
		headerBytes += packet.UDPLen
	}
	r.NativeCycles += m.ParseCyclesPerHeaderByte * headerBytes
	r.NativeCycles += m.LookupCycles + m.SchedulingCycles

	// Sampling module (entry switches): hash the 5-tuple, probe the flow
	// array. The hash is actually computed — the model charges cycles for
	// work it really does.
	if entry {
		key := [13]byte{}
		copy(key[0:4], u32(p.Header.SrcIP))
		copy(key[4:8], u32(p.Header.DstIP))
		key[8] = p.Header.Proto
		copy(key[9:11], u16(p.Header.SrcPort))
		copy(key[11:13], u16(p.Header.DstPort))
		_ = bloom.Murmur3(key[:], 0)
		r.SamplingCycles += m.SamplingHashCycles + m.SamplingProbeCycles
	}

	// Tagging module: BF(x‖s‖y) and the in-place tag OR + marker patch.
	elem := bloom.DefaultParams.Hash(hop.Bytes())
	_ = elem
	r.TaggingCycles += m.TagHashCycles + bloom.NumHashes*m.TagProbeCycles + m.TagWriteCycles

	return r, nil
}

// Row is one line of Table 4.
type Row struct {
	PacketSize int
	Native     time.Duration
	Sampling   time.Duration
	SamplingOH float64 // T2/T1
	Tagging    time.Duration
	TaggingOH  float64 // T3/T1
}

// Table4 reproduces the paper's Table 4 for the given packet sizes.
func (m Model) Table4(sizes []int) ([]Row, error) {
	hop := topo.Hop{In: 1, Switch: 7, Out: 3}
	var rows []Row
	for _, size := range sizes {
		payload := size - packet.EthernetLen - packet.IPv4Len - packet.TCPLen
		if payload < 0 {
			return nil, fmt.Errorf("hwpipe: packet size %d too small", size)
		}
		h := header.Header{SrcIP: 0x0a000101, DstIP: 0x0a000201, Proto: header.ProtoTCP, SrcPort: 40000, DstPort: 80}
		raw := packet.BuildData(h, 64, make([]byte, payload))
		res, err := m.Process(raw, hop, true)
		if err != nil {
			return nil, err
		}
		native := m.delay(res.NativeCycles)
		sampling := m.delay(res.SamplingCycles)
		tagging := m.delay(res.TaggingCycles)
		rows = append(rows, Row{
			PacketSize: size,
			Native:     native,
			Sampling:   sampling,
			SamplingOH: float64(sampling) / float64(native),
			Tagging:    tagging,
			TaggingOH:  float64(tagging) / float64(native),
		})
	}
	return rows, nil
}

func u32(v uint32) []byte {
	return []byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

func u16(v uint16) []byte {
	return []byte{byte(v >> 8), byte(v)}
}
