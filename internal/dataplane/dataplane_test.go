package dataplane

import (
	"testing"
	"time"

	"veridp/internal/bloom"
	"veridp/internal/controller"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/packet"
	"veridp/internal/topo"
)

// setup wires a controller to a fabric over the given network and installs
// host routes.
func setup(t *testing.T, n *topo.Network, opts ...Option) (*Fabric, *controller.Controller) {
	t.Helper()
	f := NewFabric(n, opts...)
	c := controller.New(n, &FabricInstaller{Fabric: f})
	if err := c.RouteAllHosts(); err != nil {
		t.Fatal(err)
	}
	return f, c
}

func TestDeliveryOnLinear(t *testing.T) {
	n := topo.Linear(3, 1)
	f, _ := setup(t, n)
	h := header.Header{
		SrcIP: n.Host("h1-0").IP, DstIP: n.Host("h3-0").IP,
		Proto: header.ProtoTCP, SrcPort: 999, DstPort: 80,
	}
	res, err := f.InjectFromHost("h1-0", h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeDelivered {
		t.Fatalf("outcome = %v, want delivered", res.Outcome)
	}
	if res.Exit != n.Host("h3-0").Attach {
		t.Fatalf("exit = %v, want %v", res.Exit, n.Host("h3-0").Attach)
	}
	if len(res.Path) != 3 {
		t.Fatalf("path length %d, want 3: %v", len(res.Path), res.Path)
	}
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(res.Reports))
	}
	r := res.Reports[0]
	if r.Inport != n.Host("h1-0").Attach || r.Outport != n.Host("h3-0").Attach {
		t.Fatalf("report endpoints: %v", r)
	}
	if r.Header != h {
		t.Fatalf("report header %v, want %v", r.Header, h)
	}
	// The reported tag must equal the Bloom fold of the actual path.
	var want bloom.Tag
	for _, hop := range res.Path {
		want = want.Union(f.Params.Hash(hop.Bytes()))
	}
	if r.Tag != want {
		t.Fatalf("tag %v, want %v", r.Tag, want)
	}
}

func TestUnmatchedTrafficDropsWithReport(t *testing.T) {
	n := topo.Linear(2, 1)
	f, _ := setup(t, n)
	h := header.Header{SrcIP: n.Host("h1-0").IP, DstIP: header.MustParseIP("99.9.9.9")}
	res, err := f.InjectFromHost("h1-0", h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeDropped {
		t.Fatalf("outcome = %v, want dropped", res.Outcome)
	}
	if res.Exit.Port != topo.DropPort {
		t.Fatalf("exit = %v", res.Exit)
	}
	// §3.3: switches send tag reports for dropped packets.
	if len(res.Reports) != 1 || res.Reports[0].Outport.Port != topo.DropPort {
		t.Fatalf("drop report missing: %v", res.Reports)
	}
}

func TestSamplingControlsTagging(t *testing.T) {
	n := topo.Linear(3, 1)
	f, _ := setup(t, n, WithSampler(func() Sampler { return SampleNone{} }))
	h := header.Header{SrcIP: n.Host("h1-0").IP, DstIP: n.Host("h3-0").IP}
	res, err := f.InjectFromHost("h1-0", h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeDelivered {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if res.Sampled || len(res.Reports) != 0 {
		t.Fatal("unsampled packet was tagged/reported")
	}
	for _, sw := range f.Switches() {
		if sw.Counters.Tagged != 0 {
			t.Fatal("tagging happened without sampling")
		}
	}
}

func TestFlowSamplerInterval(t *testing.T) {
	s := NewFlowSampler(10 * time.Second)
	h := header.Header{SrcIP: 1, DstIP: 2, Proto: 6, SrcPort: 3, DstPort: 4}
	t0 := time.Unix(1000, 0)
	if !s.ShouldSample(h, t0) {
		t.Fatal("first packet of a flow must be sampled")
	}
	if s.ShouldSample(h, t0.Add(5*time.Second)) {
		t.Fatal("sampled again inside the interval")
	}
	if !s.ShouldSample(h, t0.Add(11*time.Second)) {
		t.Fatal("not sampled after the interval")
	}
	// Distinct flows are independent.
	h2 := h
	h2.DstPort = 5
	if !s.ShouldSample(h2, t0.Add(time.Second)) {
		t.Fatal("new flow not sampled")
	}
	if s.ActiveFlows() != 2 {
		t.Fatalf("ActiveFlows = %d", s.ActiveFlows())
	}
	// Per-flow override.
	s.PerFlow[h] = time.Second
	if !s.ShouldSample(h, t0.Add(13*time.Second)) {
		t.Fatal("per-flow interval override ignored")
	}
}

func TestArraySampler(t *testing.T) {
	s := NewArraySampler(2, 10*time.Second, time.Minute)
	t0 := time.Unix(2000, 0)
	a := header.Header{SrcPort: 1}
	b := header.Header{SrcPort: 2}
	c := header.Header{SrcPort: 3}
	if !s.ShouldSample(a, t0) || !s.ShouldSample(b, t0) {
		t.Fatal("fresh flows must sample")
	}
	if s.ShouldSample(a, t0.Add(time.Second)) {
		t.Fatal("tracked flow resampled inside interval")
	}
	// Array full of active flows: the overflow flow samples unconditionally.
	if !s.ShouldSample(c, t0.Add(time.Second)) || !s.ShouldSample(c, t0.Add(2*time.Second)) {
		t.Fatal("overflow flow should sample unconditionally")
	}
	// After the idle timeout, c claims a's slot.
	late := t0.Add(2 * time.Minute)
	if !s.ShouldSample(c, late) {
		t.Fatal("idle slot not reclaimed")
	}
	if s.ShouldSample(c, late.Add(time.Second)) {
		t.Fatal("reclaimed slot not tracking")
	}
}

func TestMiddleboxTraversalTagsBothLegs(t *testing.T) {
	// Figure 5: SSH from H1 to H3 detours through the middlebox at S2:3.
	n := topo.Figure5()
	f := NewFabric(n)
	c := controller.New(n, &FabricInstaller{Fabric: f})

	s1 := n.SwitchByName("S1")
	s3 := n.SwitchByName("S3")
	sshMatch := flowtable.Match{HasDst: true, DstPort: 22}
	wp, err := c.InstallWaypoint(sshMatch,
		n.Host("H1").Attach,
		topo.PortKey{Switch: n.SwitchByName("S2").ID, Port: 3},
		n.Host("H3").Attach, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(wp) == 0 {
		t.Fatal("no waypoint rules installed")
	}
	// Low-priority direct route for everything else.
	if _, err := c.RoutePrefix(flowtable.Prefix{IP: n.Host("H3").IP, Len: 32}, n.Host("H3").Attach); err != nil {
		t.Fatal(err)
	}

	ssh := header.Header{SrcIP: n.Host("H1").IP, DstIP: n.Host("H3").IP, Proto: header.ProtoTCP, DstPort: 22}
	res, err := f.InjectFromHost("H1", ssh)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeDelivered {
		t.Fatalf("SSH outcome = %v (path %v)", res.Outcome, res.Path)
	}
	// Paper's expected path: ⟨1,S1,3⟩ ⟨1,S2,3⟩ ⟨3,S2,2⟩ ⟨1,S3,2⟩.
	s2 := n.SwitchByName("S2")
	want := topo.Path{
		{In: 1, Switch: s1.ID, Out: 3},
		{In: 1, Switch: s2.ID, Out: 3},
		{In: 3, Switch: s2.ID, Out: 2},
		{In: 1, Switch: s3.ID, Out: 2},
	}
	if len(res.Path) != len(want) {
		t.Fatalf("path %v, want %v", res.Path, want)
	}
	for i := range want {
		if res.Path[i] != want[i] {
			t.Fatalf("hop %d = %v, want %v", i, res.Path[i], want[i])
		}
	}
	// Tag must fold all four hops, including both S2 visits.
	var tag bloom.Tag
	for _, hop := range want {
		tag = tag.Union(f.Params.Hash(hop.Bytes()))
	}
	if res.Reports[0].Tag != tag {
		t.Fatal("middlebox legs missing from the tag")
	}

	// Non-SSH traffic takes the direct S1→S3 link.
	web := ssh
	web.DstPort = 80
	res, err = f.InjectFromHost("H1", web)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeDelivered || len(res.Path) != 2 {
		t.Fatalf("web path %v (outcome %v)", res.Path, res.Outcome)
	}
}

func TestLoopTTLReport(t *testing.T) {
	// A deliberate two-switch forwarding loop: sampled packets must
	// TTL-expire and emit a report rather than circling forever.
	n := topo.Linear(2, 1)
	f := NewFabric(n)
	s1 := n.SwitchByName("s1")
	s2 := n.SwitchByName("s2")
	f.Switch(s1.ID).Config.Table.Add(&flowtable.Rule{Priority: 1, Action: flowtable.ActOutput, OutPort: 2})
	f.Switch(s2.ID).Config.Table.Add(&flowtable.Rule{Priority: 1, Action: flowtable.ActOutput, OutPort: 1})

	res, err := f.InjectFromHost("h1-0", header.Header{SrcIP: 1, DstIP: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeLooped {
		t.Fatalf("outcome = %v, want looped", res.Outcome)
	}
	if len(res.Reports) == 0 {
		t.Fatal("loop produced no TTL report")
	}
	last := res.Reports[len(res.Reports)-1]
	if last.Outport.Port == topo.DropPort {
		t.Fatal("TTL report should carry the real egress, not ⊥")
	}
}

func TestInjectValidation(t *testing.T) {
	n := topo.Linear(2, 1)
	f := NewFabric(n)
	if _, err := f.InjectFromHost("nobody", header.Header{}); err == nil {
		t.Fatal("unknown host accepted")
	}
	if _, err := f.Inject(topo.PortKey{Switch: 1, Port: 2}, header.Header{}); err == nil {
		t.Fatal("non-edge port accepted")
	}
}

func TestGlobalReportSink(t *testing.T) {
	n := topo.Linear(2, 1)
	var got []*packet.Report
	f := NewFabric(n, WithReportSink(ReportFunc(func(r *packet.Report) { got = append(got, r) })))
	c := controller.New(n, &FabricInstaller{Fabric: f})
	if err := c.RouteAllHosts(); err != nil {
		t.Fatal(err)
	}
	h := header.Header{SrcIP: n.Host("h1-0").IP, DstIP: n.Host("h2-0").IP}
	if _, err := f.InjectFromHost("h1-0", h); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("global sink saw %d reports, want 1", len(got))
	}
}

func TestInstallerCommands(t *testing.T) {
	n := topo.Linear(2, 1)
	f := NewFabric(n)
	c := controller.New(n, &FabricInstaller{Fabric: f})
	sw := n.SwitchByName("s1")

	id, err := c.InstallRule(sw.ID, flowtable.Rule{Priority: 9, Action: flowtable.ActOutput, OutPort: 2})
	if err != nil {
		t.Fatal(err)
	}
	phys := f.Switch(sw.ID).Config.Table
	if phys.Get(id) == nil {
		t.Fatal("rule did not reach the physical table")
	}
	if c.Logical()[sw.ID].Table.Get(id) == nil {
		t.Fatal("rule missing from the logical store")
	}
	if err := c.RemoveRule(sw.ID, id); err != nil {
		t.Fatal(err)
	}
	if phys.Get(id) != nil {
		t.Fatal("delete did not reach the physical table")
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
}

func TestCountersAndReset(t *testing.T) {
	n := topo.Linear(2, 1)
	f, _ := setup(t, n)
	h := header.Header{SrcIP: n.Host("h1-0").IP, DstIP: n.Host("h2-0").IP}
	f.InjectFromHost("h1-0", h)
	s1 := f.Switch(n.SwitchByName("s1").ID)
	if s1.Counters.Received != 1 || s1.Counters.Sampled != 1 || s1.Counters.Tagged != 1 {
		t.Fatalf("counters: %+v", s1.Counters)
	}
	f.ResetCounters()
	if s1.Counters.Received != 0 {
		t.Fatal("ResetCounters did not clear")
	}
}
