// The fabric: an in-process network emulator that moves packets between
// emulated switches along the topology's links, playing the role Mininet +
// Open vSwitch play in the paper's evaluation (see DESIGN.md,
// "Substitutions"). Injection is synchronous and deterministic: a packet is
// walked hop by hop until it is delivered to a host, dropped, lost, or runs
// out of the fabric's hop budget (which catches forwarding loops for
// unsampled packets that carry no TTL).

package dataplane

import (
	"fmt"
	"time"

	"veridp/internal/bloom"
	"veridp/internal/header"
	"veridp/internal/packet"
	"veridp/internal/topo"
)

// Outcome classifies what finally happened to an injected packet.
type Outcome uint8

const (
	// OutcomeDelivered means the packet reached a host edge port.
	OutcomeDelivered Outcome = iota
	// OutcomeDropped means a switch sent it to ⊥.
	OutcomeDropped
	// OutcomeLost means it was emitted on a port with nothing attached —
	// invisible to VeriDP, like the hardware failures §3.3 scopes out.
	OutcomeLost
	// OutcomeLooped means the fabric's hop budget expired, i.e. the packet
	// was circling (sampled packets also TTL-report before this).
	OutcomeLooped
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeDelivered:
		return "delivered"
	case OutcomeDropped:
		return "dropped"
	case OutcomeLost:
		return "lost"
	case OutcomeLooped:
		return "looped"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// Result summarizes one injected packet's journey.
type Result struct {
	Outcome Outcome
	// Exit is the last port the packet was seen at: the destination edge
	// port, the ⟨switch,⊥⟩ drop location, or the void port it vanished on.
	Exit topo.PortKey
	// Path is the ground-truth hop sequence (for experiment scoring only).
	Path topo.Path
	// Reports are the tag reports this packet triggered (usually one; a
	// loop can produce several via TTL expiry and revisits).
	Reports []*packet.Report
	// Sampled records whether the entry switch marked the packet.
	Sampled bool
}

// Fabric owns the emulated switches and the links between them.
type Fabric struct {
	Net    *topo.Network
	Params bloom.Params

	switches map[topo.SwitchID]*Switch
	sink     ReportSink
	clock    func() time.Time
	capture  CaptureFunc
}

// Option configures a Fabric.
type Option func(*fabricConfig)

type fabricConfig struct {
	params  bloom.Params
	sampler func() Sampler
	sink    ReportSink
	clock   func() time.Time
	capture CaptureFunc
}

// WithParams sets the Bloom-tag parameters (default: the paper's 16 bits).
func WithParams(p bloom.Params) Option {
	return func(c *fabricConfig) { c.params = p }
}

// WithSampler sets a factory producing each switch's sampler (default:
// SampleAll, which the accuracy experiments use).
func WithSampler(f func() Sampler) Option {
	return func(c *fabricConfig) { c.sampler = f }
}

// WithReportSink routes every tag report to sink in addition to the
// per-injection Result.
func WithReportSink(s ReportSink) Option {
	return func(c *fabricConfig) { c.sink = s }
}

// WithClock substitutes the time source (tests use a fake clock to drive
// sampling intervals deterministically).
func WithClock(f func() time.Time) Option {
	return func(c *fabricConfig) { c.clock = f }
}

// CaptureFunc receives serialized frames from the fabric's capture taps.
type CaptureFunc func(ts time.Time, frame []byte)

// WithCapture taps the fabric: every injected packet (as the host sent it)
// and every delivered packet (as the destination receives it — rewritten
// headers, and the VeriDP VLAN encapsulation when a sampled packet's tag
// fits the 16-bit wire format) is serialized to a real Ethernet frame and
// handed to fn, typically a pcap.Writer.
func WithCapture(fn CaptureFunc) Option {
	return func(c *fabricConfig) { c.capture = fn }
}

// NewFabric builds a switch for every topology node.
func NewFabric(n *topo.Network, opts ...Option) *Fabric {
	cfg := fabricConfig{
		params:  bloom.DefaultParams,
		sampler: func() Sampler { return SampleAll{} },
		clock:   time.Now,
	}
	for _, o := range opts {
		o(&cfg)
	}
	f := &Fabric{
		Net:      n,
		Params:   cfg.params,
		switches: make(map[topo.SwitchID]*Switch, n.NumSwitches()),
		sink:     cfg.sink,
		clock:    cfg.clock,
		capture:  cfg.capture,
	}
	for _, sw := range n.Switches() {
		f.switches[sw.ID] = newSwitch(n, sw, cfg.params, cfg.sampler())
	}
	return f
}

// Switch returns the emulated switch, or nil. Fault injection and rule
// installation go through it.
func (f *Fabric) Switch(id topo.SwitchID) *Switch { return f.switches[id] }

// Switches returns all emulated switches keyed by ID (shared map; do not
// mutate).
func (f *Fabric) Switches() map[topo.SwitchID]*Switch { return f.switches }

// InjectFromHost injects a packet with the given 5-tuple at the named
// host's edge port.
func (f *Fabric) InjectFromHost(host string, h header.Header) (*Result, error) {
	hh := f.Net.Host(host)
	if hh == nil {
		return nil, fmt.Errorf("dataplane: unknown host %q", host)
	}
	return f.Inject(hh.Attach, h)
}

// Inject walks a packet into the network at the given edge port and follows
// it to its fate.
func (f *Fabric) Inject(at topo.PortKey, h header.Header) (*Result, error) {
	if !f.Net.IsEdgePort(at) {
		return nil, fmt.Errorf("dataplane: %v is not an edge port", at)
	}
	p := &SimPacket{Header: h}
	res := &Result{}

	// Collect this packet's reports while still forwarding to the global
	// sink (the verification server).
	collect := ReportFunc(func(r *packet.Report) {
		res.Reports = append(res.Reports, r)
		if f.sink != nil {
			f.sink.HandleReport(r)
		}
	})

	now := f.clock()
	if f.capture != nil {
		f.capture(now, packet.BuildData(h, 64, nil))
	}
	cur := at
	budget := 4*f.Net.MaxPathLength() + 8 // catches loops of unsampled packets
	for {
		sw := f.switches[cur.Switch]
		out := sw.Process(cur.Port, p, now, collect)
		res.Sampled = p.Sampled

		outKey := topo.PortKey{Switch: cur.Switch, Port: out}
		if out == topo.DropPort {
			res.Outcome = OutcomeDropped
			res.Exit = outKey
			break
		}
		if f.Net.IsEdgePort(outKey) {
			res.Outcome = OutcomeDelivered
			res.Exit = outKey
			if f.capture != nil {
				f.capture(now, f.deliveredFrame(p))
			}
			break
		}
		if p.Sampled && p.TTL <= 0 {
			// The TTL report already fired; the packet dies here, exactly
			// like an IP TTL expiry.
			res.Outcome = OutcomeLooped
			res.Exit = outKey
			break
		}
		next, ok := f.Net.Peer(outKey)
		if !ok {
			res.Outcome = OutcomeLost
			res.Exit = outKey
			break
		}
		budget--
		if budget <= 0 {
			res.Outcome = OutcomeLooped
			res.Exit = outKey
			break
		}
		cur = next
	}
	res.Path = p.Path()
	return res, nil
}

// Path exposes the packet's ground-truth trace.
func (p *SimPacket) Path() topo.Path { return p.Trace }

// deliveredFrame serializes the packet as the destination receives it:
// final (possibly rewritten) header, with the VeriDP encapsulation kept
// when the tag fits the 16-bit wire format — what a capture at the last
// link would show just before the exit switch pops the tags.
func (f *Fabric) deliveredFrame(p *SimPacket) []byte {
	ttl := uint8(64)
	if p.Sampled && p.TTL > 0 && p.TTL < 64 {
		ttl = uint8(p.TTL)
	}
	raw := packet.BuildData(p.Header, ttl, nil)
	if p.Sampled && uint64(p.Tag)>>16 == 0 {
		if enc, err := packet.Encapsulate(raw, p.Tag, p.Ingress); err == nil {
			return enc
		}
	}
	return raw
}

// SetParams switches the Bloom-tag configuration on every switch — the
// Figure 12 experiment sweeps tag sizes over one installed network.
func (f *Fabric) SetParams(p bloom.Params) {
	f.Params = p
	for _, s := range f.switches {
		s.params = p
	}
}

// SetSampler re-seats every switch's sampler with a fresh draw from the
// factory — a mid-run sampling-rate shift (the storm harness's
// sample-shift action). Like NewFabric, each switch gets its own instance,
// so per-switch sampler state is never shared.
func (f *Fabric) SetSampler(factory func() Sampler) {
	for _, s := range f.switches {
		s.sampler = factory()
	}
}

// ResetCounters zeroes every switch's counters between experiment runs.
func (f *Fabric) ResetCounters() {
	for _, s := range f.switches {
		s.Counters = Counters{}
	}
}
