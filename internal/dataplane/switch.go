// The emulated SDN switch: an OpenFlow pipeline (in-ACL → flow table →
// out-ACL) feeding the VeriDP pipeline of Algorithm 1 (sample at entry, tag
// every hop, report at exit/drop/TTL-expiry). The two pipelines are
// deliberately separate, as in the paper (§3.3): tagging depends only on the
// actual ⟨in, switch, out⟩ hop, never on flow-table contents, so flow-table
// faults cannot corrupt the evidence used to detect them.

package dataplane

import (
	"time"

	"veridp/internal/bloom"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/packet"
	"veridp/internal/topo"
)

// SimPacket is the in-process packet representation the fabric moves
// between switches. Simulation-level packets carry the Bloom tag natively
// so Figure 12's 8–64-bit sweeps aren't limited by the 16-bit wire format.
type SimPacket struct {
	Header  header.Header
	Sampled bool
	Tag     bloom.Tag
	Ingress topo.PortKey
	TTL     int

	// Trace is ground truth for the experiments: the hops the packet
	// actually took. The verification server never sees it.
	Trace topo.Path
}

// ReportSink receives tag reports emitted by switches.
type ReportSink interface {
	HandleReport(r *packet.Report)
}

// ReportFunc adapts a function to ReportSink.
type ReportFunc func(r *packet.Report)

// HandleReport calls the function.
func (f ReportFunc) HandleReport(r *packet.Report) { f(r) }

// Counters tracks per-switch pipeline activity.
type Counters struct {
	Received uint64 // packets entering the OpenFlow pipeline
	Sampled  uint64 // packets marked by the sampling module
	Tagged   uint64 // tag updates performed
	Reports  uint64 // tag reports emitted
	Dropped  uint64 // packets sent to ⊥
}

// Switch is one emulated switch. Not safe for concurrent use; the Fabric
// (or the live agent's lock) serializes access.
type Switch struct {
	ID     topo.SwitchID
	Config *flowtable.SwitchConfig // the PHYSICAL rules (faults mutate these)

	// OutputOverride, when non-nil, rewrites the OpenFlow pipeline's
	// forwarding decision — the §6.3 fault model ("output the packet to a
	// port different from the original one") applied per packet without
	// touching the rule table. The VeriDP pipeline tags the overridden
	// port, exactly as a misforwarding switch would.
	OutputOverride func(in topo.PortID, h header.Header, out topo.PortID) topo.PortID

	net     *topo.Network
	params  bloom.Params
	sampler Sampler

	Counters Counters
}

// newSwitch is constructed by the Fabric.
func newSwitch(n *topo.Network, sw *topo.Switch, params bloom.Params, sampler Sampler) *Switch {
	return &Switch{
		ID:      sw.ID,
		Config:  flowtable.NewSwitchConfig(sw.Ports()),
		net:     n,
		params:  params,
		sampler: sampler,
	}
}

// Process implements Algorithm 1 on one packet arriving at port in. It
// returns the chosen output port; the packet's VeriDP state (tag, TTL,
// sampled flag) is updated in place and a tag report goes to sink when the
// packet leaves the monitored domain (nil sink discards reports).
func (s *Switch) Process(in topo.PortID, p *SimPacket, now time.Time, sink ReportSink) topo.PortID {
	s.Counters.Received++

	// OpenFlow pipeline decides the output port (and any header rewrite)
	// first; the VeriDP pipeline then observes the ⟨in, s, out⟩ hop that
	// actually happened.
	out, rewrite := s.Config.Forward(in, p.Header)
	if s.OutputOverride != nil {
		out = s.OutputOverride(in, p.Header, out)
	}

	inKey := topo.PortKey{Switch: s.ID, Port: in}
	if s.net.IsEdgePort(inKey) {
		// Entry switch: sampling decision + tag/TTL initialization.
		if s.sampler.ShouldSample(p.Header, now) {
			s.Counters.Sampled++
			p.Sampled = true
			p.Tag = 0
			p.TTL = s.net.MaxPathLength()
			p.Ingress = inKey
		} else {
			p.Sampled = false
		}
	}

	hop := topo.Hop{In: in, Switch: s.ID, Out: out}
	p.Trace = append(p.Trace, hop)

	// Set-field actions execute before the VeriDP pipeline (§5: it runs
	// "after all actions have been executed"), so reports carry the header
	// as it leaves the switch.
	p.Header = rewrite.Apply(p.Header)

	if p.Sampled {
		// tag ← tag ⊔ BF(x‖s‖y); TTL ← TTL − 1.
		p.Tag = p.Tag.Union(s.params.Hash(hop.Bytes()))
		s.Counters.Tagged++
		p.TTL--

		outKey := topo.PortKey{Switch: s.ID, Port: out}
		if s.net.IsEdgePort(outKey) || out == topo.DropPort || p.TTL <= 0 {
			s.report(p, outKey, sink)
		}
	}
	if out == topo.DropPort {
		s.Counters.Dropped++
	}
	return out
}

// report emits the 4-tuple ⟨inport, outport, header, tag⟩ (§3.3).
func (s *Switch) report(p *SimPacket, out topo.PortKey, sink ReportSink) {
	s.Counters.Reports++
	if sink == nil {
		return
	}
	sink.HandleReport(&packet.Report{
		Inport:  p.Ingress,
		Outport: out,
		Header:  p.Header,
		Tag:     p.Tag,
		MBits:   uint8(s.params.MBits),
	})
}
