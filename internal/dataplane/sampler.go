// Traffic sampling (§4.5): entry switches sample packets per flow. Each
// flow f has a sampling interval T_s^f; a packet is marked when at least
// T_s^f has elapsed since the flow's last sampled packet. Choosing
// T_s^f ≤ τ − T_a^f bounds fault-detection latency by τ, where T_a^f is the
// flow's maximum inter-packet gap.

package dataplane

import (
	"time"

	"veridp/internal/header"
)

// Sampler decides which packets an entry switch marks for verification.
type Sampler interface {
	// ShouldSample reports whether the packet with this 5-tuple, arriving
	// at the given instant, is sampled.
	ShouldSample(h header.Header, now time.Time) bool
}

// SampleAll marks every packet — the configuration the accuracy experiments
// use so every injected packet yields a tag report.
type SampleAll struct{}

// ShouldSample always returns true.
func (SampleAll) ShouldSample(header.Header, time.Time) bool { return true }

// SampleNone never samples; used to measure the un-instrumented baseline.
type SampleNone struct{}

// ShouldSample always returns false.
func (SampleNone) ShouldSample(header.Header, time.Time) bool { return false }

// FlowSampler implements the paper's per-flow interval sampling with a hash
// table of last-sampling instants, as the Open vSwitch prototype does (§5).
// It is not safe for concurrent use; each switch owns one.
type FlowSampler struct {
	// Interval is T_s applied to flows without a specific override.
	Interval time.Duration
	// PerFlow overrides the interval for specific flows.
	PerFlow map[header.Header]time.Duration

	last map[header.Header]time.Time
}

// NewFlowSampler returns a sampler with the given default interval.
func NewFlowSampler(interval time.Duration) *FlowSampler {
	return &FlowSampler{
		Interval: interval,
		PerFlow:  make(map[header.Header]time.Duration),
		last:     make(map[header.Header]time.Time),
	}
}

// ShouldSample samples the first packet of a flow and then one packet per
// interval.
func (s *FlowSampler) ShouldSample(h header.Header, now time.Time) bool {
	interval := s.Interval
	if iv, ok := s.PerFlow[h]; ok {
		interval = iv
	}
	t, seen := s.last[h]
	if seen && now.Sub(t) <= interval {
		return false
	}
	s.last[h] = now
	return true
}

// ActiveFlows returns the number of tracked flows (the hash-table footprint
// the hardware pipeline bounds with a fixed array).
func (s *FlowSampler) ActiveFlows() int { return len(s.last) }

// ArraySampler models the hardware pipeline's sampling stage (§5): a fixed
// array of flow slots, each holding a flow key, its last sampling instant,
// and a last-hit instant used to reclaim idle slots. Collisions evict the
// least-recently-hit entry, trading accuracy for bounded FPGA memory.
type ArraySampler struct {
	Interval time.Duration
	IdleOut  time.Duration // slots idle longer than this are reclaimable

	slots []arraySlot
}

type arraySlot struct {
	used    bool
	flow    header.Header
	sampled time.Time
	hit     time.Time
}

// NewArraySampler returns a sampler with the given slot count.
func NewArraySampler(slots int, interval, idleOut time.Duration) *ArraySampler {
	if slots < 1 {
		panic("dataplane: ArraySampler needs at least one slot")
	}
	return &ArraySampler{Interval: interval, IdleOut: idleOut, slots: make([]arraySlot, slots)}
}

// ShouldSample looks the flow up in the array; a miss claims a free or
// reclaimable slot (sampling the packet), and a full array falls back to
// sampling unconditionally, which errs toward visibility.
func (s *ArraySampler) ShouldSample(h header.Header, now time.Time) bool {
	var free = -1
	var oldest = -1
	for i := range s.slots {
		sl := &s.slots[i]
		if !sl.used {
			if free == -1 {
				free = i
			}
			continue
		}
		if sl.flow == h {
			sl.hit = now
			if now.Sub(sl.sampled) > s.Interval {
				sl.sampled = now
				return true
			}
			return false
		}
		if oldest == -1 || sl.hit.Before(s.slots[oldest].hit) {
			oldest = i
		}
	}
	idx := free
	if idx == -1 {
		if oldest != -1 && now.Sub(s.slots[oldest].hit) > s.IdleOut {
			idx = oldest // reclaim an idle slot
		} else {
			return true // array full of active flows: sample unconditionally
		}
	}
	s.slots[idx] = arraySlot{used: true, flow: h, sampled: now, hit: now}
	return true
}
