// FabricInstaller: the in-process southbound path. It applies FlowMods
// directly to the emulated switches' physical tables, playing the role of a
// perfectly healthy OpenFlow agent. The faults package wraps it to emulate
// the §2.2 failure modes (silently dropped installs, priority loss, ...).

package dataplane

import (
	"fmt"

	"veridp/internal/flowtable"
	"veridp/internal/openflow"
	"veridp/internal/topo"
)

// FabricInstaller satisfies the controller's Installer interface against a
// Fabric.
type FabricInstaller struct {
	Fabric *Fabric
}

// Apply executes one FlowMod on the target switch's physical table.
func (fi *FabricInstaller) Apply(f *openflow.FlowMod) error {
	sw := fi.Fabric.Switch(f.Switch)
	if sw == nil {
		return fmt.Errorf("dataplane: no switch %d", f.Switch)
	}
	switch f.Command {
	case openflow.FlowAdd:
		r := f.Rule
		r.ID = f.RuleID
		_, err := sw.Config.Table.Add(&r)
		return err
	case openflow.FlowDelete:
		return sw.Config.Table.Delete(f.RuleID)
	case openflow.FlowModify:
		return sw.Config.Table.Modify(f.RuleID, func(r *flowtable.Rule) {
			r.Priority = f.Rule.Priority
			r.Match = f.Rule.Match
			r.Action = f.Rule.Action
			r.OutPort = f.Rule.OutPort
		})
	default:
		return fmt.Errorf("dataplane: unknown FlowMod command %d", f.Command)
	}
}

// Barrier is trivially satisfied: the in-process path is synchronous.
func (fi *FabricInstaller) Barrier(topo.SwitchID) error { return nil }
