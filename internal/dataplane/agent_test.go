package dataplane

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/openflow"
	"veridp/internal/packet"
	"veridp/internal/topo"
)

// startAgent wires an agent to an in-memory pipe and returns the
// controller-side conn.
func startAgent(t *testing.T, f *Fabric, id topo.SwitchID, sink ReportSink) *openflow.Conn {
	t.Helper()
	a, b := net.Pipe()
	agent := &Agent{Fabric: f, ID: id, Mu: &sync.Mutex{}, Sink: sink}
	go agent.Run(context.Background(), a)
	c := openflow.NewConn(b)
	sw, err := c.RecvHello()
	if err != nil || sw != id {
		t.Fatalf("hello: %d, %v", sw, err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return c
}

func TestAgentFlowModAndBarrier(t *testing.T) {
	n := topo.Linear(2, 1)
	f := NewFabric(n)
	s1 := n.SwitchByName("s1").ID
	c := startAgent(t, f, s1, nil)

	fm := &openflow.FlowMod{
		Command: openflow.FlowAdd, Switch: s1, RuleID: 11,
		Rule: flowtable.Rule{Priority: 4, Action: flowtable.ActOutput, OutPort: 2},
	}
	if _, err := c.SendFlowMod(fm); err != nil {
		t.Fatal(err)
	}
	xid, err := c.SendBarrierRequest()
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.Recv()
	if err != nil || m.Type != openflow.TypeBarrierReply || m.Xid != xid {
		t.Fatalf("barrier reply: %+v, %v", m, err)
	}
	// The barrier guarantees the rule is installed.
	if f.Switch(s1).Config.Table.Get(11) == nil {
		t.Fatal("rule not installed after barrier")
	}

	// Modify and delete round-trip too.
	fm.Command = openflow.FlowModify
	fm.Rule.OutPort = 1
	c.SendFlowMod(fm)
	fm.Command = openflow.FlowDelete
	c.SendFlowMod(fm)
	xid, _ = c.SendBarrierRequest()
	for {
		m, err = c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Type == openflow.TypeBarrierReply && m.Xid == xid {
			break
		}
	}
	if f.Switch(s1).Config.Table.Get(11) != nil {
		t.Fatal("rule survived delete")
	}
}

func TestAgentErrorsOnBadFlowMod(t *testing.T) {
	n := topo.Linear(2, 1)
	f := NewFabric(n)
	s1 := n.SwitchByName("s1").ID
	c := startAgent(t, f, s1, nil)

	// Deleting a rule that doesn't exist must produce an Error message.
	fm := &openflow.FlowMod{Command: openflow.FlowDelete, Switch: s1, RuleID: 999}
	xid, err := c.SendFlowMod(fm)
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.Recv()
	if err != nil || m.Type != openflow.TypeError {
		t.Fatalf("expected Error, got %+v err %v", m, err)
	}
	e, err := openflow.UnmarshalError(m.Body)
	if err != nil || e.Xid != xid {
		t.Fatalf("error body: %+v err %v", e, err)
	}
}

func TestAgentPacketOutInjectsAndReports(t *testing.T) {
	n := topo.Linear(2, 1)
	f := NewFabric(n)
	// Route h2 on both switches so the packet is delivered.
	h2 := n.Host("h2-0")
	for _, sw := range n.Switches() {
		out := topo.PortID(2)
		if sw.ID == h2.Attach.Switch {
			out = h2.Attach.Port
		}
		f.Switch(sw.ID).Config.Table.Add(&flowtable.Rule{
			Priority: 1, Match: flowtable.Match{DstPrefix: flowtable.Prefix{IP: h2.IP, Len: 32}},
			Action: flowtable.ActOutput, OutPort: out,
		})
	}

	var mu sync.Mutex
	var got []*packet.Report
	sink := ReportFunc(func(r *packet.Report) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})
	s1 := n.SwitchByName("s1").ID
	c := startAgent(t, f, s1, sink)

	h := header.Header{SrcIP: n.Host("h1-0").IP, DstIP: h2.IP, Proto: header.ProtoTCP, DstPort: 80}
	frame := packet.BuildData(h, 64, nil)
	if err := c.SendPacketOut(&openflow.PacketOut{Port: n.Host("h1-0").Attach.Port, Data: frame}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		cnt := len(got)
		mu.Unlock()
		if cnt == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no report from PacketOut injection")
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if got[0].Header != h {
		t.Fatalf("report header %v, want %v", got[0].Header, h)
	}
}

func TestAgentEcho(t *testing.T) {
	n := topo.Linear(2, 1)
	f := NewFabric(n)
	c := startAgent(t, f, n.SwitchByName("s1").ID, nil)
	if err := c.Send(&openflow.Message{Type: openflow.TypeEchoRequest, Xid: 77, Body: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Recv()
	if err != nil || m.Type != openflow.TypeEchoReply || m.Xid != 77 || string(m.Body) != "hi" {
		t.Fatalf("echo reply: %+v err %v", m, err)
	}
}

func TestAgentUnknownSwitch(t *testing.T) {
	n := topo.Linear(2, 1)
	f := NewFabric(n)
	agent := &Agent{Fabric: f, ID: 99, Mu: &sync.Mutex{}}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if err := agent.Run(context.Background(), a); err == nil {
		t.Fatal("agent for unknown switch ran")
	}
}
