package bdd

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	src := New(16)
	rng := rand.New(rand.NewSource(5))
	var roots []Ref
	var evals []func([]byte) bool
	for i := 0; i < 20; i++ {
		f, eval := randomFormula(src, rng, 16, 5)
		roots = append(roots, f)
		evals = append(evals, eval)
	}
	roots = append(roots, False, True)

	var buf bytes.Buffer
	pos, err := src.Export(&buf, roots)
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != len(roots) {
		t.Fatalf("positions %d", len(pos))
	}

	dst := New(16)
	resolve, err := dst.Import(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pos {
		ref, err := resolve(p)
		if err != nil {
			t.Fatal(err)
		}
		// Semantic equality on random assignments.
		for probe := 0; probe < 200; probe++ {
			a := make([]byte, 16)
			for j := range a {
				a[j] = byte(rng.Intn(2))
			}
			if i < len(evals) {
				if dst.Eval(ref, a) != evals[i](a) {
					t.Fatalf("root %d diverged after round trip", i)
				}
			}
		}
	}
	// Terminals round trip by identity.
	if ref, _ := resolve(pos[len(pos)-2]); ref != False {
		t.Fatal("False corrupted")
	}
	if ref, _ := resolve(pos[len(pos)-1]); ref != True {
		t.Fatal("True corrupted")
	}
}

func TestImportIntoPopulatedTableShares(t *testing.T) {
	src := New(8)
	f := src.And(src.Var(0), src.Var(3))
	var buf bytes.Buffer
	pos, err := src.Export(&buf, []Ref{f})
	if err != nil {
		t.Fatal(err)
	}
	dst := New(8)
	g := dst.And(dst.Var(0), dst.Var(3)) // same function, built directly
	resolve, err := dst.Import(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := resolve(pos[0])
	if got != g {
		t.Fatal("import did not canonicalize onto the existing structure")
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	dst := New(8)
	cases := [][]byte{
		{},
		{0, 0, 0, 9, 0, 0, 0, 0},             // wrong var count
		{0, 0, 0, 8, 0xff, 0xff, 0xff, 0xff}, // absurd node count
		{0, 0, 0, 8, 0, 0, 0, 1, 0, 0, 0, 99, 0, 0, 0, 0, 0, 0, 0, 1}, // bad level
		{0, 0, 0, 8, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 5, 0, 0, 0, 1},  // forward ref
		{0, 0, 0, 8, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1},  // redundant
	}
	for i, c := range cases {
		if _, err := dst.Import(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Ordering violation: node at level 3 with a child at level 3.
	src := New(8)
	inner := src.Var(3)
	outer := src.mk(3, inner, True) // illegal by ordering; mk would never
	_ = outer                       // be handed this by normal ops, so craft bytes directly
	bad := []byte{
		0, 0, 0, 8, // numVars
		0, 0, 0, 2, // two nodes
		0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0, 1, // node A: level 3
		0, 0, 0, 3, 0, 0, 0, 2, 0, 0, 0, 1, // node B: level 3 with child A
	}
	if _, err := New(8).Import(bytes.NewReader(bad)); err == nil {
		t.Error("ordering violation accepted")
	}
}
