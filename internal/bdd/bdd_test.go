package bdd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTerminals(t *testing.T) {
	tb := New(4)
	if tb.Size() != 2 {
		t.Fatalf("fresh table size = %d, want 2", tb.Size())
	}
	if tb.Not(False) != True || tb.Not(True) != False {
		t.Fatal("Not on terminals broken")
	}
	if tb.And(True, True) != True || tb.And(True, False) != False {
		t.Fatal("And on terminals broken")
	}
	if tb.Or(False, False) != False || tb.Or(False, True) != True {
		t.Fatal("Or on terminals broken")
	}
}

func TestVarBasics(t *testing.T) {
	tb := New(4)
	x := tb.Var(0)
	y := tb.Var(1)
	if x == y {
		t.Fatal("distinct variables share a node")
	}
	if tb.Var(0) != x {
		t.Fatal("Var not canonical")
	}
	if tb.NVar(0) != tb.Not(x) {
		t.Fatal("NVar(0) != Not(Var(0))")
	}
	if tb.And(x, tb.Not(x)) != False {
		t.Fatal("x ∧ ¬x != False")
	}
	if tb.Or(x, tb.Not(x)) != True {
		t.Fatal("x ∨ ¬x != True")
	}
}

func TestVarOutOfRange(t *testing.T) {
	tb := New(4)
	for _, f := range []func(){
		func() { tb.Var(-1) },
		func() { tb.Var(4) },
		func() { tb.NVar(17) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range variable")
				}
			}()
			f()
		}()
	}
}

func TestNewPanicsOnBadVarCount(t *testing.T) {
	for _, n := range []int{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestCanonicity(t *testing.T) {
	tb := New(4)
	x, y := tb.Var(0), tb.Var(1)
	a := tb.And(x, y)
	b := tb.Not(tb.Or(tb.Not(x), tb.Not(y))) // De Morgan
	if a != b {
		t.Fatal("equivalent formulas produced different refs (canonicity broken)")
	}
}

func TestXor(t *testing.T) {
	tb := New(2)
	x, y := tb.Var(0), tb.Var(1)
	xor := tb.Xor(x, y)
	want := tb.Or(tb.And(x, tb.Not(y)), tb.And(tb.Not(x), y))
	if xor != want {
		t.Fatal("Xor disagrees with its definition")
	}
	if tb.Xor(x, x) != False {
		t.Fatal("x ⊕ x != False")
	}
	if tb.Xor(x, False) != x || tb.Xor(False, x) != x {
		t.Fatal("x ⊕ 0 != x")
	}
	if tb.Xor(x, True) != tb.Not(x) {
		t.Fatal("x ⊕ 1 != ¬x")
	}
}

func TestIte(t *testing.T) {
	tb := New(3)
	f, g, h := tb.Var(0), tb.Var(1), tb.Var(2)
	ite := tb.Ite(f, g, h)
	// Check against truth-table evaluation.
	for bits := 0; bits < 8; bits++ {
		a := []byte{byte(bits & 1), byte(bits >> 1 & 1), byte(bits >> 2 & 1)}
		want := (a[0] == 1 && a[1] == 1) || (a[0] == 0 && a[2] == 1)
		if got := tb.Eval(ite, a); got != want {
			t.Fatalf("Ite eval mismatch at %v: got %v want %v", a, got, want)
		}
	}
}

func TestDiffAndImplies(t *testing.T) {
	tb := New(4)
	x, y := tb.Var(0), tb.Var(1)
	xy := tb.And(x, y)
	if !tb.Implies(xy, x) {
		t.Fatal("x∧y should imply x")
	}
	if tb.Implies(x, xy) {
		t.Fatal("x should not imply x∧y")
	}
	if tb.Diff(x, x) != False {
		t.Fatal("x \\ x != ∅")
	}
	if tb.Diff(x, False) != x {
		t.Fatal("x \\ ∅ != x")
	}
}

func TestRestrict(t *testing.T) {
	tb := New(3)
	x, y, z := tb.Var(0), tb.Var(1), tb.Var(2)
	f := tb.Or(tb.And(x, y), tb.And(tb.Not(x), z))
	if got := tb.Restrict(f, 0, true); got != y {
		t.Fatalf("Restrict(f, x=1) = %v, want y", got)
	}
	if got := tb.Restrict(f, 0, false); got != z {
		t.Fatalf("Restrict(f, x=0) = %v, want z", got)
	}
	// Restricting a variable the function does not depend on is identity.
	if got := tb.Restrict(y, 0, true); got != y {
		t.Fatal("Restrict on independent variable changed the function")
	}
}

func TestExists(t *testing.T) {
	tb := New(4)
	x0, x1, x2 := tb.Var(0), tb.Var(1), tb.Var(2)
	f := tb.And(x0, tb.And(x1, x2))
	// Quantifying x1 leaves x0 ∧ x2.
	if got := tb.Exists(f, 1, 1); got != tb.And(x0, x2) {
		t.Fatal("Exists over one variable wrong")
	}
	// Quantifying everything that f depends on gives True.
	if tb.Exists(f, 0, 3) != True {
		t.Fatal("Exists over all vars of a satisfiable f should be True")
	}
	if tb.Exists(False, 0, 3) != False {
		t.Fatal("Exists(False) must stay False")
	}
	// Independence: quantifying untouched variables is identity.
	if tb.Exists(x0, 2, 3) != x0 {
		t.Fatal("Exists over independent vars changed the function")
	}
}

// Property: h' satisfies Exists(f, lo, hi) iff some setting of [lo,hi]
// makes f true (checked by brute force over 6 variables).
func TestQuickExistsSemantics(t *testing.T) {
	tb := New(6)
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 100; trial++ {
		f, _ := randomFormula(tb, rng, 6, 4)
		lo := rng.Intn(6)
		hi := lo + rng.Intn(6-lo)
		g := tb.Exists(f, lo, hi)
		for bits := 0; bits < 64; bits++ {
			a := make([]byte, 6)
			for i := range a {
				a[i] = byte(bits >> i & 1)
			}
			want := false
			span := hi - lo + 1
			for w := 0; w < 1<<span; w++ {
				b := append([]byte(nil), a...)
				for i := 0; i < span; i++ {
					b[lo+i] = byte(w >> i & 1)
				}
				if tb.Eval(f, b) {
					want = true
					break
				}
			}
			if got := tb.Eval(g, a); got != want {
				t.Fatalf("trial %d: Exists[%d,%d] mismatch at %v", trial, lo, hi, a)
			}
		}
	}
}

func TestCube(t *testing.T) {
	tb := New(4)
	c := tb.Cube([]int{0, 2}, []bool{true, false})
	want := tb.And(tb.Var(0), tb.Not(tb.Var(2)))
	if c != want {
		t.Fatal("Cube disagrees with explicit conjunction")
	}
	if tb.Cube(nil, nil) != True {
		t.Fatal("empty cube should be True")
	}
}

func TestCubePanics(t *testing.T) {
	tb := New(4)
	for _, f := range []func(){
		func() { tb.Cube([]int{0}, nil) },
		func() { tb.Cube([]int{1, 0}, []bool{true, true}) }, // not increasing
		func() { tb.Cube([]int{9}, []bool{true}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic from malformed Cube")
				}
			}()
			f()
		}()
	}
}

func TestSatCount(t *testing.T) {
	tb := New(4)
	if got := tb.SatCount(True); got != 16 {
		t.Fatalf("SatCount(True) = %v, want 16", got)
	}
	if got := tb.SatCount(False); got != 0 {
		t.Fatalf("SatCount(False) = %v, want 0", got)
	}
	x := tb.Var(0)
	if got := tb.SatCount(x); got != 8 {
		t.Fatalf("SatCount(x0) = %v, want 8", got)
	}
	// x3 (bottom variable): still half the space.
	if got := tb.SatCount(tb.Var(3)); got != 8 {
		t.Fatalf("SatCount(x3) = %v, want 8", got)
	}
	xy := tb.And(tb.Var(0), tb.Var(3))
	if got := tb.SatCount(xy); got != 4 {
		t.Fatalf("SatCount(x0∧x3) = %v, want 4", got)
	}
	cube := tb.Cube([]int{0, 1, 2, 3}, []bool{true, false, true, true})
	if got := tb.SatCount(cube); got != 1 {
		t.Fatalf("SatCount(full cube) = %v, want 1", got)
	}
}

func TestSatCountLargeSpace(t *testing.T) {
	tb := New(104) // the header-space width VeriDP uses
	if got, want := tb.SatCount(True), math.Exp2(104); got != want {
		t.Fatalf("SatCount(True) over 104 vars = %g, want %g", got, want)
	}
	if got, want := tb.SatCount(tb.Var(50)), math.Exp2(103); got != want {
		t.Fatalf("SatCount(var) over 104 vars = %g, want %g", got, want)
	}
}

func TestAnySat(t *testing.T) {
	tb := New(4)
	if _, ok := tb.AnySat(False); ok {
		t.Fatal("AnySat(False) reported satisfiable")
	}
	a, ok := tb.AnySat(True)
	if !ok {
		t.Fatal("AnySat(True) reported unsatisfiable")
	}
	for i, v := range a {
		if v != DontCare {
			t.Fatalf("AnySat(True)[%d] = %d, want DontCare", i, v)
		}
	}
	f := tb.And(tb.Var(0), tb.Not(tb.Var(2)))
	a, ok = tb.AnySat(f)
	if !ok {
		t.Fatal("satisfiable function reported unsatisfiable")
	}
	full := concretize(a)
	if !tb.Eval(f, full) {
		t.Fatalf("AnySat assignment %v does not satisfy f", a)
	}
}

// concretize replaces DontCare with 0 to build a complete assignment.
func concretize(a []byte) []byte {
	out := make([]byte, len(a))
	for i, v := range a {
		if v == DontCare {
			out[i] = 0
		} else {
			out[i] = v
		}
	}
	return out
}

func TestAllSat(t *testing.T) {
	tb := New(3)
	f := tb.Or(tb.And(tb.Var(0), tb.Var(1)), tb.Not(tb.Var(0)))
	var count float64
	tb.AllSat(f, func(a []byte) bool {
		free := 0
		for _, v := range a {
			if v == DontCare {
				free++
			}
		}
		count += math.Exp2(float64(free))
		return true
	})
	if want := tb.SatCount(f); count != want {
		t.Fatalf("AllSat cube weights sum to %v, SatCount says %v", count, want)
	}
}

func TestAllSatEarlyStop(t *testing.T) {
	tb := New(3)
	calls := 0
	tb.AllSat(True, func([]byte) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("AllSat did not stop after fn returned false (calls=%d)", calls)
	}
	tb.AllSat(False, func([]byte) bool { calls++; return true })
	if calls != 1 {
		t.Fatal("AllSat(False) invoked fn")
	}
}

func TestNodeCount(t *testing.T) {
	tb := New(4)
	if tb.NodeCount(True) != 1 || tb.NodeCount(False) != 1 {
		t.Fatal("terminal NodeCount != 1")
	}
	x := tb.Var(0)
	if got := tb.NodeCount(x); got != 3 {
		t.Fatalf("NodeCount(var) = %d, want 3", got)
	}
}

func TestEvalPanicsOnShortAssignment(t *testing.T) {
	tb := New(4)
	defer func() {
		if recover() == nil {
			t.Fatal("Eval accepted a short assignment")
		}
	}()
	tb.Eval(True, []byte{0, 1})
}

func TestClearCaches(t *testing.T) {
	tb := New(8)
	x, y := tb.Var(0), tb.Var(1)
	a := tb.And(x, y)
	tb.ClearCaches()
	if tb.And(x, y) != a {
		t.Fatal("result changed after ClearCaches (canonicity must survive)")
	}
}

// randomFormula builds a random BDD over n variables with the given depth,
// returning the Ref and an evaluator closure for cross-checking.
func randomFormula(tb *Table, rng *rand.Rand, n, depth int) (Ref, func([]byte) bool) {
	if depth == 0 || rng.Intn(4) == 0 {
		v := rng.Intn(n)
		if rng.Intn(2) == 0 {
			return tb.Var(v), func(a []byte) bool { return a[v] == 1 }
		}
		return tb.NVar(v), func(a []byte) bool { return a[v] == 0 }
	}
	l, lf := randomFormula(tb, rng, n, depth-1)
	r, rf := randomFormula(tb, rng, n, depth-1)
	switch rng.Intn(3) {
	case 0:
		return tb.And(l, r), func(a []byte) bool { return lf(a) && rf(a) }
	case 1:
		return tb.Or(l, r), func(a []byte) bool { return lf(a) || rf(a) }
	default:
		return tb.Xor(l, r), func(a []byte) bool { return lf(a) != rf(a) }
	}
}

// TestRandomFormulasAgainstTruthTable cross-checks the whole engine against
// brute-force evaluation over all 2^n assignments.
func TestRandomFormulasAgainstTruthTable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tb := New(6)
	for trial := 0; trial < 200; trial++ {
		f, eval := randomFormula(tb, rng, 6, 4)
		var satCount float64
		for bits := 0; bits < 64; bits++ {
			a := make([]byte, 6)
			for i := range a {
				a[i] = byte(bits >> i & 1)
			}
			want := eval(a)
			if got := tb.Eval(f, a); got != want {
				t.Fatalf("trial %d: Eval mismatch at %v", trial, a)
			}
			if want {
				satCount++
			}
		}
		if got := tb.SatCount(f); got != satCount {
			t.Fatalf("trial %d: SatCount = %v, brute force = %v", trial, got, satCount)
		}
	}
}

// Property: And is the set intersection — an assignment satisfies a∧b iff it
// satisfies both.
func TestQuickAndIsIntersection(t *testing.T) {
	tb := New(8)
	rng := rand.New(rand.NewSource(7))
	prop := func(seedA, seedB int64, bits uint8) bool {
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		a, _ := randomFormula(tb, ra, 8, 3)
		b, _ := randomFormula(tb, rb, 8, 3)
		assign := make([]byte, 8)
		for i := range assign {
			assign[i] = byte(bits >> i & 1)
		}
		return tb.Eval(tb.And(a, b), assign) == (tb.Eval(a, assign) && tb.Eval(b, assign))
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: double negation is identity, and De Morgan's laws hold at the
// canonical-reference level.
func TestQuickNegationLaws(t *testing.T) {
	tb := New(8)
	prop := func(seedA, seedB int64) bool {
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		a, _ := randomFormula(tb, ra, 8, 3)
		b, _ := randomFormula(tb, rb, 8, 3)
		if tb.Not(tb.Not(a)) != a {
			return false
		}
		if tb.Not(tb.And(a, b)) != tb.Or(tb.Not(a), tb.Not(b)) {
			return false
		}
		return tb.Not(tb.Or(a, b)) == tb.And(tb.Not(a), tb.Not(b))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Diff partitions — (a\b) ∪ (a∧b) == a and (a\b) ∧ b == ∅.
func TestQuickDiffPartition(t *testing.T) {
	tb := New(8)
	prop := func(seedA, seedB int64) bool {
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		a, _ := randomFormula(tb, ra, 8, 3)
		b, _ := randomFormula(tb, rb, 8, 3)
		d := tb.Diff(a, b)
		if tb.Or(d, tb.And(a, b)) != a {
			return false
		}
		return tb.And(d, b) == False
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: AnySat returns an assignment that satisfies the formula.
func TestQuickAnySatSound(t *testing.T) {
	tb := New(8)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f, _ := randomFormula(tb, rng, 8, 4)
		a, ok := tb.AnySat(f)
		if !ok {
			return f == False
		}
		return tb.Eval(f, concretize(a))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAndChain(b *testing.B) {
	tb := New(104)
	vars := make([]Ref, 104)
	for i := range vars {
		vars[i] = tb.Var(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := True
		for _, v := range vars {
			f = tb.And(f, v)
		}
	}
}

func BenchmarkEval104Vars(b *testing.B) {
	tb := New(104)
	f := True
	for i := 0; i < 104; i += 2 {
		f = tb.And(f, tb.Var(i))
	}
	assign := make([]byte, 104)
	for i := range assign {
		assign[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Eval(f, assign)
	}
}
