// Package bdd implements reduced ordered binary decision diagrams (ROBDDs),
// the header-set representation used throughout VeriDP.
//
// The paper (§4.1) argues that wildcard expressions are too inefficient for
// representing arbitrary header sets — characterizing the Stanford backbone
// needs 652 million wildcard expressions — and adopts BDDs instead, following
// Yang & Lam's atomic-predicate work. This package is a from-scratch ROBDD
// engine with hash-consed nodes, an ITE-based apply with memoization, and the
// set operations VeriDP's path-table construction requires: conjunction,
// disjunction, complement, difference, emptiness, and satisfying-assignment
// enumeration (for synthesizing witness packets).
//
// Nodes live in a Table (a manager). A Ref is an index into the table's node
// array; the constants False and True are the terminal nodes. Refs from
// different Tables must not be mixed; Table methods panic if handed an
// out-of-range Ref.
//
// Append-only invariant: the node array only ever grows, and a node is never
// mutated after it is created. Every Ref therefore stays valid for the
// lifetime of the Table, and a View captured at any moment (an immutable
// prefix of the node array) can evaluate those Refs from any goroutine while
// other goroutines keep extending the table — the property VeriDP's
// snapshot-published path table relies on (see internal/core.Handle).
//
// The variable order is fixed at Table creation: variable 0 is the root-most
// level. Callers lay out header fields across variables (see package header).
package bdd

import (
	"fmt"
	"math"
)

// Ref identifies a BDD node within its Table. The zero value is False, so an
// uninitialized Ref denotes the empty set.
type Ref int32

// Terminal nodes, shared by every Table.
const (
	False Ref = 0 // the constant-false BDD (empty header set)
	True  Ref = 1 // the constant-true BDD (all-match header set)
)

// node is one decision node: if variable "level" is 0 follow lo, else hi.
// Terminals use level = terminalLevel so they sort below every variable.
type node struct {
	level int32
	lo    Ref
	hi    Ref
}

const terminalLevel = int32(1<<30 - 1)

// opcode distinguishes cached binary operations.
type opcode uint8

const (
	opAnd opcode = iota
	opOr
	opXor
)

// Sizing of the open-addressed unique table and the direct-mapped computed
// caches. The unique table doubles past 75% load; the lossy computed caches
// double alongside it (until the cap) so their hit rate keeps up with the
// node count, exactly the design of classic BDD packages (BuDDy, CUDD).
const (
	initialBuckets  = 1 << 10
	initialOpCache  = 1 << 12
	initialNotCache = 1 << 10
	maxCacheSize    = 1 << 22
)

// Table is a BDD manager: it owns the node storage, the hash-cons table that
// guarantees canonicity, and the operation caches. A Table is not safe for
// concurrent mutation; VeriDP serializes all set-building operations through
// one writer at a time. Concurrent *readers* are supported only through
// View (see the package comment's append-only invariant).
//
// The unique table is open-addressed: buckets hold node indices (0 = empty;
// the False terminal is never hash-consed, so index 0 is free as the empty
// marker), probed linearly. The computed caches are direct-mapped arrays —
// lossy by design: a collision overwrites, costing at worst a recomputation,
// never correctness.
type Table struct {
	nodes   []node  // append-only: published Views alias this array
	buckets []int32 // unique table: node index or 0 = empty

	opKeys  []uint64 // packed (a, b, op); 0 = empty slot
	opVals  []Ref
	notKeys []int32 // operand Ref; 0 = empty slot
	notVals []Ref

	numVars int
}

// New returns a Table over numVars Boolean variables (levels 0..numVars-1).
func New(numVars int) *Table {
	if numVars <= 0 || numVars >= int(terminalLevel) {
		panic(fmt.Sprintf("bdd: invalid variable count %d", numVars))
	}
	t := &Table{
		nodes:   make([]node, 2, 1024),
		buckets: make([]int32, initialBuckets),
		opKeys:  make([]uint64, initialOpCache),
		opVals:  make([]Ref, initialOpCache),
		notKeys: make([]int32, initialNotCache),
		notVals: make([]Ref, initialNotCache),
		numVars: numVars,
	}
	t.nodes[False] = node{level: terminalLevel}
	t.nodes[True] = node{level: terminalLevel}
	return t
}

// mix64 finalizes a 64-bit hash (the SplitMix64/Murmur3 finalizer).
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// hashTriple hashes a (level, lo, hi) node shape for the unique table.
func hashTriple(level int32, lo, hi Ref) uint64 {
	return mix64(uint64(uint32(level))*0x9e3779b97f4a7c15 +
		uint64(uint32(lo))*0xc2b2ae3d27d4eb4f +
		uint64(uint32(hi))*0x165667b19e3779f9)
}

// NumVars reports the number of Boolean variables the table was created with.
func (t *Table) NumVars() int { return t.numVars }

// Size reports the total number of nodes allocated in the table, including
// the two terminals. It only ever grows: this engine does not garbage-collect
// dead nodes, which is acceptable for VeriDP because path tables are built in
// bulk and incremental updates touch a small frontier (§4.4).
func (t *Table) Size() int { return len(t.nodes) }

// check panics if r does not belong to this table.
func (t *Table) check(r Ref) {
	if r < 0 || int(r) >= len(t.nodes) {
		panic(fmt.Sprintf("bdd: ref %d out of range (table size %d)", r, len(t.nodes)))
	}
}

// mk returns the canonical node (level, lo, hi), applying the ROBDD reduction
// rules: redundant tests collapse, and structurally equal nodes are shared.
func (t *Table) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	mask := uint64(len(t.buckets) - 1)
	slot := hashTriple(level, lo, hi) & mask
	for {
		idx := t.buckets[slot]
		if idx == 0 {
			break
		}
		n := &t.nodes[idx]
		if n.level == level && n.lo == lo && n.hi == hi {
			return Ref(idx)
		}
		slot = (slot + 1) & mask
	}
	// Miss: insert. Grow first when the table would pass 75% load, so
	// probe sequences stay short; growth moved the free slot, so re-probe.
	if (len(t.nodes)-1)*4 >= len(t.buckets)*3 {
		t.growUnique()
		mask = uint64(len(t.buckets) - 1)
		slot = hashTriple(level, lo, hi) & mask
		for t.buckets[slot] != 0 {
			slot = (slot + 1) & mask
		}
	}
	r := Ref(len(t.nodes))
	t.nodes = append(t.nodes, node{level: level, lo: lo, hi: hi})
	t.buckets[slot] = int32(r)
	return r
}

// growUnique doubles the unique table and rehashes every interior node (a
// plain scan: node order is insertion order). The computed caches double in
// step, up to maxCacheSize; being lossy they are simply reallocated empty.
func (t *Table) growUnique() {
	nb := make([]int32, len(t.buckets)*2)
	mask := uint64(len(nb) - 1)
	for i := 2; i < len(t.nodes); i++ {
		n := &t.nodes[i]
		slot := hashTriple(n.level, n.lo, n.hi) & mask
		for nb[slot] != 0 {
			slot = (slot + 1) & mask
		}
		nb[slot] = int32(i)
	}
	t.buckets = nb
	if len(t.opKeys) < maxCacheSize {
		t.opKeys = make([]uint64, len(t.opKeys)*2)
		t.opVals = make([]Ref, len(t.opVals)*2)
	}
	if len(t.notKeys) < maxCacheSize {
		t.notKeys = make([]int32, len(t.notKeys)*2)
		t.notVals = make([]Ref, len(t.notVals)*2)
	}
}

// Var returns the BDD for "variable v is 1".
func (t *Table) Var(v int) Ref {
	if v < 0 || v >= t.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, t.numVars))
	}
	return t.mk(int32(v), False, True)
}

// NVar returns the BDD for "variable v is 0".
func (t *Table) NVar(v int) Ref {
	if v < 0 || v >= t.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, t.numVars))
	}
	return t.mk(int32(v), True, False)
}

// Not returns the complement of a.
func (t *Table) Not(a Ref) Ref {
	t.check(a)
	switch a {
	case False:
		return True
	case True:
		return False
	}
	// Direct-mapped complement cache. a ≥ 2 here (terminals returned
	// above), so 0 is free as the empty marker.
	slot := mix64(uint64(uint32(a))) & uint64(len(t.notKeys)-1)
	if t.notKeys[slot] == int32(a) {
		return t.notVals[slot]
	}
	n := t.nodes[a]
	r := t.mk(n.level, t.Not(n.lo), t.Not(n.hi))
	// The caches may have been reallocated (grown) during the recursion;
	// recompute the slot against the current array.
	slot = mix64(uint64(uint32(a))) & uint64(len(t.notKeys)-1)
	t.notKeys[slot] = int32(a)
	t.notVals[slot] = r
	return r
}

// And returns the conjunction (set intersection) of a and b.
func (t *Table) And(a, b Ref) Ref {
	t.check(a)
	t.check(b)
	return t.apply(opAnd, a, b)
}

// Or returns the disjunction (set union) of a and b.
func (t *Table) Or(a, b Ref) Ref {
	t.check(a)
	t.check(b)
	return t.apply(opOr, a, b)
}

// Xor returns the symmetric difference of a and b.
func (t *Table) Xor(a, b Ref) Ref {
	t.check(a)
	t.check(b)
	return t.apply(opXor, a, b)
}

// Diff returns a ∧ ¬b (set difference), the operation path-entry update
// (§4.4) uses to shrink header sets when a more-specific rule is added.
func (t *Table) Diff(a, b Ref) Ref {
	return t.And(a, t.Not(b))
}

// Implies reports whether a ⊆ b as header sets (a → b as predicates).
func (t *Table) Implies(a, b Ref) bool {
	return t.Diff(a, b) == False
}

// Equiv reports whether a and b denote the same set. Because nodes are
// hash-consed this is constant-time reference equality; the method exists to
// make call sites self-documenting.
func (t *Table) Equiv(a, b Ref) bool {
	t.check(a)
	t.check(b)
	return a == b
}

// apply computes the memoized binary operation op(a, b) by Shannon expansion
// on the topmost variable of either operand.
func (t *Table) apply(op opcode, a, b Ref) Ref {
	// Terminal cases.
	switch op {
	case opAnd:
		if a == False || b == False {
			return False
		}
		if a == True {
			return b
		}
		if b == True {
			return a
		}
		if a == b {
			return a
		}
	case opOr:
		if a == True || b == True {
			return True
		}
		if a == False {
			return b
		}
		if b == False {
			return a
		}
		if a == b {
			return a
		}
	case opXor:
		if a == False {
			return b
		}
		if b == False {
			return a
		}
		if a == b {
			return False
		}
		if a == True {
			return t.Not(b)
		}
		if b == True {
			return t.Not(a)
		}
	}
	// And/Or/Xor are commutative: normalize the cache key. Both operands
	// are ≥ 2 here (every terminal case returned above) and fit 31 bits,
	// so the packed key is never 0, the empty-slot marker of the
	// direct-mapped computed cache.
	ka, kb := a, b
	if ka > kb {
		ka, kb = kb, ka
	}
	key := uint64(uint32(ka))<<33 | uint64(uint32(kb))<<2 | uint64(op)
	slot := mix64(key) & uint64(len(t.opKeys)-1)
	if t.opKeys[slot] == key {
		return t.opVals[slot]
	}
	na, nb := t.nodes[a], t.nodes[b]
	var level int32
	var alo, ahi, blo, bhi Ref
	switch {
	case na.level == nb.level:
		level, alo, ahi, blo, bhi = na.level, na.lo, na.hi, nb.lo, nb.hi
	case na.level < nb.level:
		level, alo, ahi, blo, bhi = na.level, na.lo, na.hi, b, b
	default:
		level, alo, ahi, blo, bhi = nb.level, a, a, nb.lo, nb.hi
	}
	r := t.mk(level, t.apply(op, alo, blo), t.apply(op, ahi, bhi))
	// Recompute: the cache may have been reallocated during the recursion.
	slot = mix64(key) & uint64(len(t.opKeys)-1)
	t.opKeys[slot] = key
	t.opVals[slot] = r
	return r
}

// Ite returns if-then-else: (f ∧ g) ∨ (¬f ∧ h).
func (t *Table) Ite(f, g, h Ref) Ref {
	return t.Or(t.And(f, g), t.And(t.Not(f), h))
}

// Restrict fixes variable v to the given value in f and returns the cofactor.
func (t *Table) Restrict(f Ref, v int, value bool) Ref {
	t.check(f)
	if v < 0 || v >= t.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, t.numVars))
	}
	memo := make(map[Ref]Ref)
	var rec func(Ref) Ref
	rec = func(r Ref) Ref {
		n := t.nodes[r]
		if n.level > int32(v) {
			return r // r does not depend on v (terminals included)
		}
		if m, ok := memo[r]; ok {
			return m
		}
		var res Ref
		if n.level == int32(v) {
			if value {
				res = n.hi
			} else {
				res = n.lo
			}
		} else {
			res = t.mk(n.level, rec(n.lo), rec(n.hi))
		}
		memo[r] = res
		return res
	}
	return rec(f)
}

// Exists existentially quantifies the contiguous variable range [lo, hi]
// out of f: the result is satisfied by an assignment iff some setting of
// those variables satisfies f. Header rewrites use this to "forget" a
// field before pinning it to its new value.
func (t *Table) Exists(f Ref, lo, hi int) Ref {
	t.check(f)
	if lo < 0 || hi >= t.numVars || lo > hi {
		panic(fmt.Sprintf("bdd: Exists range [%d,%d] invalid for %d vars", lo, hi, t.numVars))
	}
	memo := make(map[Ref]Ref)
	var rec func(Ref) Ref
	rec = func(r Ref) Ref {
		n := t.nodes[r]
		if n.level > int32(hi) {
			return r // below the range (terminals included): unchanged
		}
		if m, ok := memo[r]; ok {
			return m
		}
		var res Ref
		if n.level >= int32(lo) {
			// Inside the range: either branch may witness satisfaction.
			res = t.Or(rec(n.lo), rec(n.hi))
		} else {
			res = t.mk(n.level, rec(n.lo), rec(n.hi))
		}
		memo[r] = res
		return res
	}
	return rec(f)
}

// Cube returns the conjunction of literals: for each (variable, value) pair,
// variable = value. Pairs must be given in increasing variable order; this is
// the fast path used to encode a concrete packet header.
func (t *Table) Cube(vars []int, values []bool) Ref {
	if len(vars) != len(values) {
		panic("bdd: Cube argument length mismatch")
	}
	r := True
	for i := len(vars) - 1; i >= 0; i-- {
		v := vars[i]
		if v < 0 || v >= t.numVars {
			panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, t.numVars))
		}
		if i > 0 && vars[i-1] >= v {
			panic("bdd: Cube variables must be strictly increasing")
		}
		if values[i] {
			r = t.mk(int32(v), False, r)
		} else {
			r = t.mk(int32(v), r, False)
		}
	}
	return r
}

// SatCount returns the number of satisfying assignments of f over all
// NumVars variables, as a float64 (the counts for 104-variable header spaces
// overflow uint64).
func (t *Table) SatCount(f Ref) float64 {
	t.check(f)
	memo := make(map[Ref]float64)
	var rec func(Ref) float64
	rec = func(r Ref) float64 {
		switch r {
		case False:
			return 0
		case True:
			return 1
		}
		if c, ok := memo[r]; ok {
			return c
		}
		n := t.nodes[r]
		skipLo := t.levelOf(n.lo) - n.level - 1
		skipHi := t.levelOf(n.hi) - n.level - 1
		c := rec(n.lo)*math.Exp2(float64(skipLo)) + rec(n.hi)*math.Exp2(float64(skipHi))
		memo[r] = c
		return c
	}
	if f == False {
		return 0
	}
	// Variables above the root are unconstrained: each doubles the count.
	return rec(f) * math.Exp2(float64(t.levelOf(f)))
}

// levelOf returns the level of r, mapping terminals to numVars so that
// "variables skipped" arithmetic works at the bottom of the diagram.
func (t *Table) levelOf(r Ref) int32 {
	n := t.nodes[r]
	if n.level == terminalLevel {
		return int32(t.numVars)
	}
	return n.level
}

// AnySat returns one satisfying assignment of f as a slice of NumVars bytes:
// 0 (variable must be false), 1 (must be true), or DontCare for variables f
// does not constrain on the chosen path. It returns ok=false iff f is False.
// VeriDP uses AnySat to synthesize a concrete witness packet from a path's
// header set.
func (t *Table) AnySat(f Ref) (assignment []byte, ok bool) {
	t.check(f)
	if f == False {
		return nil, false
	}
	a := make([]byte, t.numVars)
	for i := range a {
		a[i] = DontCare
	}
	for f != True {
		n := t.nodes[f]
		if n.lo != False {
			a[n.level] = 0
			f = n.lo
		} else {
			a[n.level] = 1
			f = n.hi
		}
	}
	return a, true
}

// DontCare marks an unconstrained variable in AnySat / AllSat assignments.
const DontCare byte = 2

// AllSat invokes fn for every cube (path to True) of f, as a NumVars-byte
// assignment using 0, 1, and DontCare. Iteration stops early if fn returns
// false. The assignment slice is reused across calls; callers must copy it if
// they retain it.
func (t *Table) AllSat(f Ref, fn func(assignment []byte) bool) {
	t.check(f)
	if f == False {
		return
	}
	a := make([]byte, t.numVars)
	for i := range a {
		a[i] = DontCare
	}
	var rec func(Ref) bool
	rec = func(r Ref) bool {
		if r == True {
			return fn(a)
		}
		if r == False {
			return true
		}
		n := t.nodes[r]
		a[n.level] = 0
		if !rec(n.lo) {
			return false
		}
		a[n.level] = 1
		if !rec(n.hi) {
			return false
		}
		a[n.level] = DontCare
		return true
	}
	rec(f)
}

// NodeCount returns the number of distinct nodes reachable from f, a useful
// measure of how compactly a header set is represented.
func (t *Table) NodeCount(f Ref) int {
	t.check(f)
	if f == False || f == True {
		return 1
	}
	seen := make(map[Ref]bool)
	var rec func(Ref)
	rec = func(r Ref) {
		if r == False || r == True || seen[r] {
			return
		}
		seen[r] = true
		n := t.nodes[r]
		rec(n.lo)
		rec(n.hi)
	}
	rec(f)
	return len(seen) + 2 // interior nodes plus the two terminals
}

// Eval evaluates f under a complete assignment (one byte per variable, 0 or
// 1) and reports whether the assignment satisfies f.
//
//lint:allocfree
func (t *Table) Eval(f Ref, assignment []byte) bool {
	t.check(f)
	if len(assignment) != t.numVars {
		panic(fmt.Sprintf("bdd: Eval assignment length %d, want %d", len(assignment), t.numVars))
	}
	for f != True && f != False {
		n := t.nodes[f]
		if assignment[n.level] != 0 {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}

// ClearCaches drops the operation memo tables (but not the hash-cons table,
// which canonicity requires). Long-running incremental-update loops call this
// periodically to bound memory. The direct-mapped arrays are zeroed in place;
// their size is already capped at maxCacheSize.
func (t *Table) ClearCaches() {
	clear(t.opKeys)
	clear(t.opVals)
	clear(t.notKeys)
	clear(t.notVals)
}

// View is an immutable snapshot of the table's node storage: every node that
// existed when View was called, and no node created after. Because nodes are
// append-only and never mutated, a View may be read from any number of
// goroutines concurrently with ongoing table operations — provided the View
// itself was published to those goroutines with proper synchronization (an
// atomic pointer swap, a channel send, a mutex). Refs obtained before the
// View was taken are always in range; Refs minted later are not and Eval
// panics on them.
type View struct {
	nodes   []node
	numVars int
}

// View captures the current node array. The three-index slice pins the
// length so that a later append can never expose post-snapshot nodes
// through this View.
func (t *Table) View() View {
	return View{nodes: t.nodes[:len(t.nodes):len(t.nodes)], numVars: t.numVars}
}

// NumNodes reports how many nodes the view spans (including terminals).
func (v View) NumNodes() int { return len(v.nodes) }

// Contains reports whether r was already allocated when the view was taken.
//
//lint:allocfree
func (v View) Contains(r Ref) bool { return r >= 0 && int(r) < len(v.nodes) }

// Eval evaluates f under a complete assignment, exactly like Table.Eval but
// against the immutable snapshot — the lock-free read path of Algorithm 3.
//
//lint:allocfree
func (v View) Eval(f Ref, assignment []byte) bool {
	if f < 0 || int(f) >= len(v.nodes) {
		panic(fmt.Sprintf("bdd: ref %d outside view (size %d)", f, len(v.nodes)))
	}
	if len(assignment) != v.numVars {
		panic(fmt.Sprintf("bdd: Eval assignment length %d, want %d", len(assignment), v.numVars))
	}
	nodes := v.nodes
	for f > True {
		n := &nodes[f]
		if assignment[n.level] != 0 {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}
