// Package bdd implements reduced ordered binary decision diagrams (ROBDDs),
// the header-set representation used throughout VeriDP.
//
// The paper (§4.1) argues that wildcard expressions are too inefficient for
// representing arbitrary header sets — characterizing the Stanford backbone
// needs 652 million wildcard expressions — and adopts BDDs instead, following
// Yang & Lam's atomic-predicate work. This package is a from-scratch ROBDD
// engine with hash-consed nodes, an ITE-based apply with memoization, and the
// set operations VeriDP's path-table construction requires: conjunction,
// disjunction, complement, difference, emptiness, and satisfying-assignment
// enumeration (for synthesizing witness packets).
//
// Nodes live in a Table (a manager). A Ref is an index into the table's node
// array; the constants False and True are the terminal nodes. Refs from
// different Tables must not be mixed; Table methods panic if handed an
// out-of-range Ref.
//
// The variable order is fixed at Table creation: variable 0 is the root-most
// level. Callers lay out header fields across variables (see package header).
package bdd

import (
	"fmt"
	"math"
)

// Ref identifies a BDD node within its Table. The zero value is False, so an
// uninitialized Ref denotes the empty set.
type Ref int32

// Terminal nodes, shared by every Table.
const (
	False Ref = 0 // the constant-false BDD (empty header set)
	True  Ref = 1 // the constant-true BDD (all-match header set)
)

// node is one decision node: if variable "level" is 0 follow lo, else hi.
// Terminals use level = terminalLevel so they sort below every variable.
type node struct {
	level int32
	lo    Ref
	hi    Ref
}

const terminalLevel = int32(1<<30 - 1)

// opcode distinguishes cached binary operations.
type opcode uint8

const (
	opAnd opcode = iota
	opOr
	opXor
)

// opKey is the memoization key for binary apply operations.
type opKey struct {
	op   opcode
	a, b Ref
}

// uniqueKey identifies a (level, lo, hi) triple for hash-consing.
type uniqueKey struct {
	level int32
	lo    Ref
	hi    Ref
}

// Table is a BDD manager: it owns the node storage, the hash-cons table that
// guarantees canonicity, and the operation caches. A Table is not safe for
// concurrent use; VeriDP gives each verification server its own Table and
// serializes updates through it.
type Table struct {
	nodes    []node
	unique   map[uniqueKey]Ref
	opCache  map[opKey]Ref
	notCache map[Ref]Ref
	numVars  int
}

// New returns a Table over numVars Boolean variables (levels 0..numVars-1).
func New(numVars int) *Table {
	if numVars <= 0 || numVars >= int(terminalLevel) {
		panic(fmt.Sprintf("bdd: invalid variable count %d", numVars))
	}
	t := &Table{
		nodes:    make([]node, 2, 1024),
		unique:   make(map[uniqueKey]Ref, 1024),
		opCache:  make(map[opKey]Ref, 1024),
		notCache: make(map[Ref]Ref, 256),
		numVars:  numVars,
	}
	t.nodes[False] = node{level: terminalLevel}
	t.nodes[True] = node{level: terminalLevel}
	return t
}

// NumVars reports the number of Boolean variables the table was created with.
func (t *Table) NumVars() int { return t.numVars }

// Size reports the total number of nodes allocated in the table, including
// the two terminals. It only ever grows: this engine does not garbage-collect
// dead nodes, which is acceptable for VeriDP because path tables are built in
// bulk and incremental updates touch a small frontier (§4.4).
func (t *Table) Size() int { return len(t.nodes) }

// check panics if r does not belong to this table.
func (t *Table) check(r Ref) {
	if r < 0 || int(r) >= len(t.nodes) {
		panic(fmt.Sprintf("bdd: ref %d out of range (table size %d)", r, len(t.nodes)))
	}
}

// mk returns the canonical node (level, lo, hi), applying the ROBDD reduction
// rules: redundant tests collapse, and structurally equal nodes are shared.
func (t *Table) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	key := uniqueKey{level, lo, hi}
	if r, ok := t.unique[key]; ok {
		return r
	}
	r := Ref(len(t.nodes))
	t.nodes = append(t.nodes, node{level: level, lo: lo, hi: hi})
	t.unique[key] = r
	return r
}

// Var returns the BDD for "variable v is 1".
func (t *Table) Var(v int) Ref {
	if v < 0 || v >= t.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, t.numVars))
	}
	return t.mk(int32(v), False, True)
}

// NVar returns the BDD for "variable v is 0".
func (t *Table) NVar(v int) Ref {
	if v < 0 || v >= t.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, t.numVars))
	}
	return t.mk(int32(v), True, False)
}

// Not returns the complement of a.
func (t *Table) Not(a Ref) Ref {
	t.check(a)
	switch a {
	case False:
		return True
	case True:
		return False
	}
	if r, ok := t.notCache[a]; ok {
		return r
	}
	n := t.nodes[a]
	r := t.mk(n.level, t.Not(n.lo), t.Not(n.hi))
	t.notCache[a] = r
	return r
}

// And returns the conjunction (set intersection) of a and b.
func (t *Table) And(a, b Ref) Ref {
	t.check(a)
	t.check(b)
	return t.apply(opAnd, a, b)
}

// Or returns the disjunction (set union) of a and b.
func (t *Table) Or(a, b Ref) Ref {
	t.check(a)
	t.check(b)
	return t.apply(opOr, a, b)
}

// Xor returns the symmetric difference of a and b.
func (t *Table) Xor(a, b Ref) Ref {
	t.check(a)
	t.check(b)
	return t.apply(opXor, a, b)
}

// Diff returns a ∧ ¬b (set difference), the operation path-entry update
// (§4.4) uses to shrink header sets when a more-specific rule is added.
func (t *Table) Diff(a, b Ref) Ref {
	return t.And(a, t.Not(b))
}

// Implies reports whether a ⊆ b as header sets (a → b as predicates).
func (t *Table) Implies(a, b Ref) bool {
	return t.Diff(a, b) == False
}

// Equiv reports whether a and b denote the same set. Because nodes are
// hash-consed this is constant-time reference equality; the method exists to
// make call sites self-documenting.
func (t *Table) Equiv(a, b Ref) bool {
	t.check(a)
	t.check(b)
	return a == b
}

// apply computes the memoized binary operation op(a, b) by Shannon expansion
// on the topmost variable of either operand.
func (t *Table) apply(op opcode, a, b Ref) Ref {
	// Terminal cases.
	switch op {
	case opAnd:
		if a == False || b == False {
			return False
		}
		if a == True {
			return b
		}
		if b == True {
			return a
		}
		if a == b {
			return a
		}
	case opOr:
		if a == True || b == True {
			return True
		}
		if a == False {
			return b
		}
		if b == False {
			return a
		}
		if a == b {
			return a
		}
	case opXor:
		if a == False {
			return b
		}
		if b == False {
			return a
		}
		if a == b {
			return False
		}
		if a == True {
			return t.Not(b)
		}
		if b == True {
			return t.Not(a)
		}
	}
	// And/Or/Xor are commutative: normalize the cache key.
	ka, kb := a, b
	if ka > kb {
		ka, kb = kb, ka
	}
	key := opKey{op, ka, kb}
	if r, ok := t.opCache[key]; ok {
		return r
	}
	na, nb := t.nodes[a], t.nodes[b]
	var level int32
	var alo, ahi, blo, bhi Ref
	switch {
	case na.level == nb.level:
		level, alo, ahi, blo, bhi = na.level, na.lo, na.hi, nb.lo, nb.hi
	case na.level < nb.level:
		level, alo, ahi, blo, bhi = na.level, na.lo, na.hi, b, b
	default:
		level, alo, ahi, blo, bhi = nb.level, a, a, nb.lo, nb.hi
	}
	r := t.mk(level, t.apply(op, alo, blo), t.apply(op, ahi, bhi))
	t.opCache[key] = r
	return r
}

// Ite returns if-then-else: (f ∧ g) ∨ (¬f ∧ h).
func (t *Table) Ite(f, g, h Ref) Ref {
	return t.Or(t.And(f, g), t.And(t.Not(f), h))
}

// Restrict fixes variable v to the given value in f and returns the cofactor.
func (t *Table) Restrict(f Ref, v int, value bool) Ref {
	t.check(f)
	if v < 0 || v >= t.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, t.numVars))
	}
	memo := make(map[Ref]Ref)
	var rec func(Ref) Ref
	rec = func(r Ref) Ref {
		n := t.nodes[r]
		if n.level > int32(v) {
			return r // r does not depend on v (terminals included)
		}
		if m, ok := memo[r]; ok {
			return m
		}
		var res Ref
		if n.level == int32(v) {
			if value {
				res = n.hi
			} else {
				res = n.lo
			}
		} else {
			res = t.mk(n.level, rec(n.lo), rec(n.hi))
		}
		memo[r] = res
		return res
	}
	return rec(f)
}

// Exists existentially quantifies the contiguous variable range [lo, hi]
// out of f: the result is satisfied by an assignment iff some setting of
// those variables satisfies f. Header rewrites use this to "forget" a
// field before pinning it to its new value.
func (t *Table) Exists(f Ref, lo, hi int) Ref {
	t.check(f)
	if lo < 0 || hi >= t.numVars || lo > hi {
		panic(fmt.Sprintf("bdd: Exists range [%d,%d] invalid for %d vars", lo, hi, t.numVars))
	}
	memo := make(map[Ref]Ref)
	var rec func(Ref) Ref
	rec = func(r Ref) Ref {
		n := t.nodes[r]
		if n.level > int32(hi) {
			return r // below the range (terminals included): unchanged
		}
		if m, ok := memo[r]; ok {
			return m
		}
		var res Ref
		if n.level >= int32(lo) {
			// Inside the range: either branch may witness satisfaction.
			res = t.Or(rec(n.lo), rec(n.hi))
		} else {
			res = t.mk(n.level, rec(n.lo), rec(n.hi))
		}
		memo[r] = res
		return res
	}
	return rec(f)
}

// Cube returns the conjunction of literals: for each (variable, value) pair,
// variable = value. Pairs must be given in increasing variable order; this is
// the fast path used to encode a concrete packet header.
func (t *Table) Cube(vars []int, values []bool) Ref {
	if len(vars) != len(values) {
		panic("bdd: Cube argument length mismatch")
	}
	r := True
	for i := len(vars) - 1; i >= 0; i-- {
		v := vars[i]
		if v < 0 || v >= t.numVars {
			panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, t.numVars))
		}
		if i > 0 && vars[i-1] >= v {
			panic("bdd: Cube variables must be strictly increasing")
		}
		if values[i] {
			r = t.mk(int32(v), False, r)
		} else {
			r = t.mk(int32(v), r, False)
		}
	}
	return r
}

// SatCount returns the number of satisfying assignments of f over all
// NumVars variables, as a float64 (the counts for 104-variable header spaces
// overflow uint64).
func (t *Table) SatCount(f Ref) float64 {
	t.check(f)
	memo := make(map[Ref]float64)
	var rec func(Ref) float64
	rec = func(r Ref) float64 {
		switch r {
		case False:
			return 0
		case True:
			return 1
		}
		if c, ok := memo[r]; ok {
			return c
		}
		n := t.nodes[r]
		skipLo := t.levelOf(n.lo) - n.level - 1
		skipHi := t.levelOf(n.hi) - n.level - 1
		c := rec(n.lo)*math.Exp2(float64(skipLo)) + rec(n.hi)*math.Exp2(float64(skipHi))
		memo[r] = c
		return c
	}
	if f == False {
		return 0
	}
	// Variables above the root are unconstrained: each doubles the count.
	return rec(f) * math.Exp2(float64(t.levelOf(f)))
}

// levelOf returns the level of r, mapping terminals to numVars so that
// "variables skipped" arithmetic works at the bottom of the diagram.
func (t *Table) levelOf(r Ref) int32 {
	n := t.nodes[r]
	if n.level == terminalLevel {
		return int32(t.numVars)
	}
	return n.level
}

// AnySat returns one satisfying assignment of f as a slice of NumVars bytes:
// 0 (variable must be false), 1 (must be true), or DontCare for variables f
// does not constrain on the chosen path. It returns ok=false iff f is False.
// VeriDP uses AnySat to synthesize a concrete witness packet from a path's
// header set.
func (t *Table) AnySat(f Ref) (assignment []byte, ok bool) {
	t.check(f)
	if f == False {
		return nil, false
	}
	a := make([]byte, t.numVars)
	for i := range a {
		a[i] = DontCare
	}
	for f != True {
		n := t.nodes[f]
		if n.lo != False {
			a[n.level] = 0
			f = n.lo
		} else {
			a[n.level] = 1
			f = n.hi
		}
	}
	return a, true
}

// DontCare marks an unconstrained variable in AnySat / AllSat assignments.
const DontCare byte = 2

// AllSat invokes fn for every cube (path to True) of f, as a NumVars-byte
// assignment using 0, 1, and DontCare. Iteration stops early if fn returns
// false. The assignment slice is reused across calls; callers must copy it if
// they retain it.
func (t *Table) AllSat(f Ref, fn func(assignment []byte) bool) {
	t.check(f)
	if f == False {
		return
	}
	a := make([]byte, t.numVars)
	for i := range a {
		a[i] = DontCare
	}
	var rec func(Ref) bool
	rec = func(r Ref) bool {
		if r == True {
			return fn(a)
		}
		if r == False {
			return true
		}
		n := t.nodes[r]
		a[n.level] = 0
		if !rec(n.lo) {
			return false
		}
		a[n.level] = 1
		if !rec(n.hi) {
			return false
		}
		a[n.level] = DontCare
		return true
	}
	rec(f)
}

// NodeCount returns the number of distinct nodes reachable from f, a useful
// measure of how compactly a header set is represented.
func (t *Table) NodeCount(f Ref) int {
	t.check(f)
	if f == False || f == True {
		return 1
	}
	seen := make(map[Ref]bool)
	var rec func(Ref)
	rec = func(r Ref) {
		if r == False || r == True || seen[r] {
			return
		}
		seen[r] = true
		n := t.nodes[r]
		rec(n.lo)
		rec(n.hi)
	}
	rec(f)
	return len(seen) + 2 // interior nodes plus the two terminals
}

// Eval evaluates f under a complete assignment (one byte per variable, 0 or
// 1) and reports whether the assignment satisfies f.
func (t *Table) Eval(f Ref, assignment []byte) bool {
	t.check(f)
	if len(assignment) != t.numVars {
		panic(fmt.Sprintf("bdd: Eval assignment length %d, want %d", len(assignment), t.numVars))
	}
	for f != True && f != False {
		n := t.nodes[f]
		if assignment[n.level] != 0 {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}

// ClearCaches drops the operation memo tables (but not the hash-cons table,
// which canonicity requires). Long-running incremental-update loops call this
// periodically to bound memory.
func (t *Table) ClearCaches() {
	t.opCache = make(map[opKey]Ref, 1024)
	t.notCache = make(map[Ref]Ref, 256)
}
