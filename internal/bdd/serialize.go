// BDD serialization: exporting the reachable subgraph of chosen roots and
// rebuilding it in a fresh table. Node indices are topologically ordered by
// construction (mk never creates a parent before its children), so export
// is a single ascending scan and import can re-canonicalize node by node.
// The path-table snapshot feature builds on this.

package bdd

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Export writes the subgraph reachable from roots and returns, for each
// root, its position in the written order (terminals map to 0 and 1).
// Format: numVars u32, nodeCount u32, then per node level u32, lo u32,
// hi u32 — where lo/hi index into the written sequence (0=False, 1=True,
// 2=first written node, ...).
func (t *Table) Export(w io.Writer, roots []Ref) ([]uint32, error) {
	for _, r := range roots {
		t.check(r)
	}
	// Collect reachable interior nodes.
	seen := make(map[Ref]bool)
	var stack []Ref
	for _, r := range roots {
		if r > True && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := t.nodes[r]
		for _, c := range []Ref{n.lo, n.hi} {
			if c > True && !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	order := make([]Ref, 0, len(seen))
	for r := range seen {
		order = append(order, r)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	remap := make(map[Ref]uint32, len(order)+2)
	remap[False] = 0
	remap[True] = 1
	for i, r := range order {
		remap[r] = uint32(i + 2)
	}

	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(t.numVars))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(order)))
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	buf := make([]byte, 12)
	for _, r := range order {
		n := t.nodes[r]
		binary.BigEndian.PutUint32(buf[0:4], uint32(n.level))
		binary.BigEndian.PutUint32(buf[4:8], remap[n.lo])
		binary.BigEndian.PutUint32(buf[8:12], remap[n.hi])
		if _, err := w.Write(buf); err != nil {
			return nil, err
		}
	}
	out := make([]uint32, len(roots))
	for i, r := range roots {
		out[i] = remap[r]
	}
	return out, nil
}

// Import reads an exported subgraph into the table (which must have the
// same variable count) and returns a resolver from exported positions to
// live Refs. Nodes are re-canonicalized through the hash-cons table, so
// importing into a non-empty table is safe and shares structure.
func (t *Table) Import(r io.Reader) (func(uint32) (Ref, error), error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("bdd: import header: %w", err)
	}
	if nv := binary.BigEndian.Uint32(hdr[0:4]); int(nv) != t.numVars {
		return nil, fmt.Errorf("bdd: import variable count %d, table has %d", nv, t.numVars)
	}
	count := binary.BigEndian.Uint32(hdr[4:8])
	const maxImport = 1 << 26
	if count > maxImport {
		return nil, fmt.Errorf("bdd: implausible import of %d nodes", count)
	}
	refs := make([]Ref, count+2)
	refs[0], refs[1] = False, True
	buf := make([]byte, 12)
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("bdd: import node %d: %w", i, err)
		}
		level := binary.BigEndian.Uint32(buf[0:4])
		lo := binary.BigEndian.Uint32(buf[4:8])
		hi := binary.BigEndian.Uint32(buf[8:12])
		if int(level) >= t.numVars {
			return nil, fmt.Errorf("bdd: import node %d: level %d out of range", i, level)
		}
		if lo >= i+2 || hi >= i+2 {
			return nil, fmt.Errorf("bdd: import node %d: forward reference", i)
		}
		// Children must sit strictly below this node's level.
		for _, c := range []uint32{lo, hi} {
			if c >= 2 {
				if t.nodes[refs[c]].level <= int32(level) {
					return nil, fmt.Errorf("bdd: import node %d: ordering violation", i)
				}
			}
		}
		if lo == hi {
			return nil, fmt.Errorf("bdd: import node %d: redundant node", i)
		}
		refs[i+2] = t.mk(int32(level), refs[lo], refs[hi])
	}
	return func(pos uint32) (Ref, error) {
		if uint64(pos) >= uint64(len(refs)) {
			return False, fmt.Errorf("bdd: import position %d out of range", pos)
		}
		return refs[pos], nil
	}, nil
}
