//go:build race

// Race-gated regression for the dump-delivery contract. serveConn hands
// table-dump results to waiters outside s.mu: it claims the channel by
// deleting the waiter key under the lock, then sends and closes with no
// lock held. The channel's single buffer slot is what makes that safe —
// a waiter that timed out between the delete and the send has abandoned
// the channel, and without the slot serveConn would park on the send
// forever, wedging the switch's entire reply loop. This test drives the
// timeout and the delivery into each other with jitter that straddles
// the deadline, then proves the reply loop survived: a final dump with a
// generous deadline must still come back.

package controller

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"veridp/internal/flowtable"
	"veridp/internal/openflow"
	"veridp/internal/topo"
)

// TestServerDumpTimeoutRacesDelivery hammers DumpTable and Barrier with
// a deadline the switch's reply jitter lands on either side of, so every
// interleaving of "waiter times out" and "serveConn delivers" happens
// many times under the race detector.
func TestServerDumpTimeoutRacesDelivery(t *testing.T) {
	srv := NewServer()
	srv.Timeout = 5 * time.Second
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(context.Background(), l) }()

	raw, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	swc := openflow.NewConn(raw)
	if err := swc.SendHello(7); err != nil {
		t.Fatal(err)
	}
	rules := []*flowtable.Rule{{ID: 1, Priority: 2, Action: flowtable.ActOutput, OutPort: 3}}
	go func() {
		rng := rand.New(rand.NewSource(1))
		for {
			m, err := swc.Recv()
			if err != nil {
				return
			}
			// Jitter around the 2ms hammer deadline below: some replies
			// beat the waiter's timer, some lose to it mid-delivery.
			time.Sleep(time.Duration(rng.Intn(4)) * time.Millisecond)
			switch m.Type {
			case openflow.TypeBarrierRequest:
				if err := swc.SendBarrierReply(m.Xid); err != nil {
					return
				}
			case openflow.TypeTableDumpRequest:
				reply := &openflow.Message{
					Type: openflow.TypeTableDumpReply,
					Xid:  m.Xid,
					Body: openflow.MarshalTableDump(rules),
				}
				if err := swc.Send(reply); err != nil {
					return
				}
			}
		}
	}()
	if err := srv.WaitForSwitches([]topo.SwitchID{7}); err != nil {
		t.Fatal(err)
	}

	// Hammer with a deadline inside the jitter band. Timeouts are an
	// expected outcome here; what must never happen is a hang, a wrong
	// result, or a race on the waiter maps.
	srv.Timeout = 2 * time.Millisecond
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 40; j++ {
				if i%2 == 0 {
					if err := srv.Barrier(7); err != nil && !strings.Contains(err.Error(), "timeout") {
						errs <- err
						return
					}
					continue
				}
				got, err := srv.DumpTable(7)
				if err != nil {
					if !strings.Contains(err.Error(), "timeout") {
						errs <- err
						return
					}
					continue
				}
				if len(got) != 1 || got[0].ID != 1 {
					errs <- fmt.Errorf("dump returned wrong rules: %v", got)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The wedge check: if any abandoned dump parked serveConn on its
	// send, the reply loop is dead and this generous-deadline dump can
	// never come back.
	srv.Timeout = 5 * time.Second
	got, err := srv.DumpTable(7)
	if err != nil || len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("reply loop wedged after timeout storm: rules=%v err=%v", got, err)
	}

	srv.Close()
	select {
	case <-serveDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not drain after Close")
	}
}
