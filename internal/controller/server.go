// Server: the controller's southbound endpoint. It accepts switch
// connections (usually spliced through the VeriDP proxy), tracks them by
// announced switch ID, and implements the Installer interface over them —
// so the same Controller compiles policies whether the data plane is
// in-process or at the far end of a TCP channel.

package controller

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"veridp/internal/flowtable"
	"veridp/internal/netutil"
	"veridp/internal/openflow"
	"veridp/internal/topo"
)

// Server accepts and serves switch connections.
type Server struct {
	// Timeout bounds Apply/Barrier waits for a switch connection and for
	// barrier replies (default 10s).
	Timeout time.Duration

	acceptRetries atomic.Uint64 // temporary Accept errors retried with backoff

	mu       sync.Mutex
	conns    map[topo.SwitchID]*openflow.Conn      // guarded by mu
	raws     map[net.Conn]struct{}                 // guarded by mu; accepted conns incl. pre-Hello
	barriers map[barrierKey]chan struct{}          // guarded by mu
	dumps    map[barrierKey]chan []*flowtable.Rule // guarded by mu
	arrived  *sync.Cond
	closed   bool           // guarded by mu
	listener net.Listener   // guarded by mu
	draining sync.WaitGroup // one unit per serveConn goroutine
}

type barrierKey struct {
	sw  topo.SwitchID
	xid uint32
}

// NewServer returns an idle server; call Serve with a listener.
func NewServer() *Server {
	s := &Server{
		Timeout:  10 * time.Second,
		conns:    make(map[topo.SwitchID]*openflow.Conn),
		raws:     make(map[net.Conn]struct{}),
		barriers: make(map[barrierKey]chan struct{}),
		dumps:    make(map[barrierKey]chan []*flowtable.Rule),
	}
	s.arrived = sync.NewCond(&s.mu)
	return s
}

// AcceptRetries returns how many temporary Accept errors the server has
// ridden out with backoff since it started.
func (s *Server) AcceptRetries() uint64 { return s.acceptRetries.Load() }

// Serve accepts switch connections until ctx is cancelled or Close is
// called, then drains every per-switch goroutine before returning. It
// always returns a non-nil error: ctx.Err() after cancellation,
// net.ErrClosed after Close. Temporary Accept errors are retried with
// capped exponential backoff rather than killing the listener.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()

	// Cancellation is delivered by closing the listener and every switch
	// conn, which fails the parked Accept/Recv calls below.
	stop := context.AfterFunc(ctx, s.Close)
	defer stop()

	var bo netutil.Backoff
	for {
		c, err := l.Accept()
		if err != nil {
			if netutil.IsTemporary(err) && bo.Sleep(ctx) {
				s.acceptRetries.Add(1)
				continue
			}
			s.draining.Wait()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		bo.Reset()
		s.draining.Add(1)
		go func() {
			defer s.draining.Done()
			s.serveConn(c)
		}()
	}
}

// Close shuts the listener and every switch connection (including
// accepted conns still mid-handshake), unblocking Serve's drain.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.raws {
		c.Close()
	}
	s.arrived.Broadcast()
}

func (s *Server) serveConn(raw net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		raw.Close()
		return
	}
	s.raws[raw] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.raws, raw)
		s.mu.Unlock()
		raw.Close()
	}()

	c := openflow.NewConn(raw)
	sw, err := c.RecvHello()
	if err != nil {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.conns[sw] = c
	s.arrived.Broadcast()
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		if s.conns[sw] == c {
			delete(s.conns, sw)
		}
		s.mu.Unlock()
	}()

	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		switch m.Type {
		case openflow.TypeBarrierReply:
			s.mu.Lock()
			if ch, ok := s.barriers[barrierKey{sw, m.Xid}]; ok {
				close(ch)
				delete(s.barriers, barrierKey{sw, m.Xid})
			}
			s.mu.Unlock()
		case openflow.TypeTableDumpReply:
			rules, err := openflow.UnmarshalTableDump(m.Body)
			s.mu.Lock()
			ch, ok := s.dumps[barrierKey{sw, m.Xid}]
			if ok {
				delete(s.dumps, barrierKey{sw, m.Xid})
			}
			s.mu.Unlock()
			// Deliver outside the lock: deleting the key above made this
			// goroutine the channel's only sender, and the buffer of 1
			// guarantees the send cannot park even if the waiter timed out.
			if ok {
				if err == nil {
					ch <- rules
				}
				close(ch)
			}
		case openflow.TypeEchoRequest:
			// A failed echo reply means the channel is dead; drop the
			// connection rather than let the switch keep believing it is
			// being served.
			if err := c.Send(&openflow.Message{Type: openflow.TypeEchoReply, Xid: m.Xid, Body: m.Body}); err != nil {
				return
			}
		default:
			// Errors and stray messages are tolerated; a real controller
			// would log them.
		}
	}
}

// WaitForSwitches blocks until every listed switch has connected (or the
// server's timeout elapses).
func (s *Server) WaitForSwitches(ids []topo.SwitchID) error {
	deadline := time.Now().Add(s.Timeout)
	// A timer wakes the condition variable so waits can expire.
	t := time.AfterFunc(s.Timeout, func() {
		s.mu.Lock()
		s.arrived.Broadcast()
		s.mu.Unlock()
	})
	defer t.Stop()

	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		missing := 0
		for _, id := range ids {
			if s.conns[id] == nil {
				missing++
			}
		}
		if missing == 0 {
			return nil
		}
		if s.closed {
			return fmt.Errorf("controller: server closed while waiting for switches")
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("controller: %d switches missing after %v", missing, s.Timeout)
		}
		s.arrived.Wait()
	}
}

// conn fetches the connection for a switch.
func (s *Server) conn(sw topo.SwitchID) (*openflow.Conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.conns[sw]
	if c == nil {
		return nil, fmt.Errorf("controller: switch %d not connected", sw)
	}
	return c, nil
}

// Apply sends the FlowMod to its target switch.
func (s *Server) Apply(f *openflow.FlowMod) error {
	c, err := s.conn(f.Switch)
	if err != nil {
		return err
	}
	_, err = c.SendFlowMod(f)
	return err
}

// Barrier sends a BarrierRequest and waits for the matching reply.
func (s *Server) Barrier(sw topo.SwitchID) error {
	c, err := s.conn(sw)
	if err != nil {
		return err
	}
	ch := make(chan struct{})
	xid := c.NextXid()
	s.mu.Lock()
	s.barriers[barrierKey{sw, xid}] = ch
	s.mu.Unlock()
	if err := c.Send(&openflow.Message{Type: openflow.TypeBarrierRequest, Xid: xid}); err != nil {
		s.mu.Lock()
		delete(s.barriers, barrierKey{sw, xid})
		s.mu.Unlock()
		return err
	}
	// A stopped Timer is reclaimed immediately; time.After would pin its
	// channel until the full Timeout elapses even on the fast path.
	t := time.NewTimer(s.Timeout)
	defer t.Stop()
	select {
	case <-ch:
		return nil
	case <-t.C:
		s.mu.Lock()
		delete(s.barriers, barrierKey{sw, xid})
		s.mu.Unlock()
		return fmt.Errorf("controller: barrier timeout on switch %d", sw)
	}
}

// DumpTable fetches the switch's full physical flow table — the §3.1
// "checking flow tables" design option. Expensive by construction: the
// entire table crosses the wire on every audit.
func (s *Server) DumpTable(sw topo.SwitchID) ([]*flowtable.Rule, error) {
	c, err := s.conn(sw)
	if err != nil {
		return nil, err
	}
	// chan: buffered 1 — serveConn delivers outside s.mu; one slot lets its send-and-close finish even after this waiter times out
	ch := make(chan []*flowtable.Rule, 1)
	xid := c.NextXid()
	s.mu.Lock()
	s.dumps[barrierKey{sw, xid}] = ch
	s.mu.Unlock()
	if err := c.Send(&openflow.Message{Type: openflow.TypeTableDumpRequest, Xid: xid}); err != nil {
		s.mu.Lock()
		delete(s.dumps, barrierKey{sw, xid})
		s.mu.Unlock()
		return nil, err
	}
	t := time.NewTimer(s.Timeout)
	defer t.Stop()
	select {
	case rules, ok := <-ch:
		if !ok {
			return nil, fmt.Errorf("controller: undecodable table dump from switch %d", sw)
		}
		return rules, nil
	case <-t.C:
		s.mu.Lock()
		delete(s.dumps, barrierKey{sw, xid})
		s.mu.Unlock()
		return nil, fmt.Errorf("controller: table dump timeout on switch %d", sw)
	}
}

// PacketOut asks the switch to emit a frame on a port.
func (s *Server) PacketOut(sw topo.SwitchID, port topo.PortID, data []byte) error {
	c, err := s.conn(sw)
	if err != nil {
		return err
	}
	return c.SendPacketOut(&openflow.PacketOut{Port: port, Data: data})
}
