// Package controller is the SDN control plane: it compiles operator intent
// (reachability, ACLs, waypoint chains, traffic-engineering splits — the
// §2.3 policy classes) into logical rules, and installs them on switches
// through a southbound Installer. The controller's logical rule store is
// stage R of the paper's Figure 1 pipeline; whatever the data plane
// actually holds is R′, and faults between the two are exactly what VeriDP
// detects.
package controller

import (
	"fmt"
	"sort"

	"veridp/internal/flowtable"
	"veridp/internal/openflow"
	"veridp/internal/topo"
)

// Installer carries rules to the data plane. The sim package installs
// directly into emulated switches; the live example sends FlowMods over
// TCP; the faults package wraps an Installer to emulate installation
// failures (§2.2, "lack of data plane acknowledgement").
type Installer interface {
	// Apply delivers one FlowMod to its target switch.
	Apply(f *openflow.FlowMod) error
	// Barrier blocks until the switch has processed prior FlowMods.
	Barrier(sw topo.SwitchID) error
}

// Controller compiles and installs rules, remembering the logical rule set.
type Controller struct {
	Net *topo.Network

	installer Installer
	logical   map[topo.SwitchID]*flowtable.SwitchConfig
	nextRule  uint64
}

// New returns a controller over the network using the given installer.
func New(n *topo.Network, inst Installer) *Controller {
	c := &Controller{
		Net:       n,
		installer: inst,
		logical:   make(map[topo.SwitchID]*flowtable.SwitchConfig, n.NumSwitches()),
		nextRule:  1,
	}
	for _, sw := range n.Switches() {
		c.logical[sw.ID] = flowtable.NewSwitchConfig(sw.Ports())
	}
	return c
}

// Logical exposes the controller's view of every switch configuration —
// the input to path-table construction. Callers must not mutate it.
func (c *Controller) Logical() map[topo.SwitchID]*flowtable.SwitchConfig {
	return c.logical
}

// SetInstaller replaces the southbound installer. The storm harness uses
// this to interpose a faults.FaultyInstaller on an already-routed
// deployment: the logical store is untouched, only future installs route
// through the new installer.
func (c *Controller) SetInstaller(inst Installer) { c.installer = inst }

// InstallRule records the rule logically and pushes it to the data plane,
// returning the assigned rule ID.
func (c *Controller) InstallRule(sw topo.SwitchID, r flowtable.Rule) (uint64, error) {
	cfg, ok := c.logical[sw]
	if !ok {
		return 0, fmt.Errorf("controller: unknown switch %d", sw)
	}
	r.ID = c.nextRule
	c.nextRule++
	if _, err := cfg.Table.Add(&r); err != nil {
		return 0, err
	}
	err := c.installer.Apply(&openflow.FlowMod{
		Command: openflow.FlowAdd,
		Switch:  sw,
		RuleID:  r.ID,
		Rule:    r,
	})
	if err != nil {
		return 0, fmt.Errorf("controller: install on switch %d: %w", sw, err)
	}
	return r.ID, nil
}

// RemoveRule deletes a rule logically and on the data plane.
func (c *Controller) RemoveRule(sw topo.SwitchID, id uint64) error {
	cfg, ok := c.logical[sw]
	if !ok {
		return fmt.Errorf("controller: unknown switch %d", sw)
	}
	if err := cfg.Table.Delete(id); err != nil {
		return err
	}
	return c.installer.Apply(&openflow.FlowMod{
		Command: openflow.FlowDelete,
		Switch:  sw,
		RuleID:  id,
	})
}

// Barrier synchronizes with every switch.
func (c *Controller) Barrier() error {
	for _, sw := range c.Net.Switches() {
		if err := c.installer.Barrier(sw.ID); err != nil {
			return err
		}
	}
	return nil
}

// destTree computes, for one destination attach point, the egress port at
// every switch: the port toward the destination on a shortest path
// (deterministic tie-break toward lower-numbered neighbors' ports), and the
// host port at the attach switch itself. One reverse BFS per destination.
func (c *Controller) destTree(attach topo.PortKey) map[topo.SwitchID]topo.PortID {
	dist := map[topo.SwitchID]int{attach.Switch: 0}
	order := []topo.SwitchID{attach.Switch}
	for i := 0; i < len(order); i++ {
		cur := order[i]
		for _, nb := range c.Net.Neighbors(cur) {
			if _, seen := dist[nb.Switch]; !seen {
				dist[nb.Switch] = dist[cur] + 1
				order = append(order, nb.Switch)
			}
		}
	}
	out := make(map[topo.SwitchID]topo.PortID, len(order))
	out[attach.Switch] = attach.Port
	for _, sw := range order[1:] {
		best := topo.PortID(0)
		for _, nb := range c.Net.Neighbors(sw) {
			if dist[nb.Switch] == dist[sw]-1 && (best == 0 || nb.LocalPort < best) {
				best = nb.LocalPort
			}
		}
		out[sw] = best
	}
	return out
}

// RoutePrefix installs, on every switch that can reach it, a forwarding
// rule sending dst-prefix traffic toward the attach port. Priority defaults
// to the prefix length (longest-prefix-match semantics). It returns the
// installed rule IDs keyed by switch.
func (c *Controller) RoutePrefix(prefix flowtable.Prefix, attach topo.PortKey) (map[topo.SwitchID]uint64, error) {
	tree := c.destTree(attach)
	ids := make(map[topo.SwitchID]uint64, len(tree))
	// Deterministic installation order.
	sws := make([]topo.SwitchID, 0, len(tree))
	for sw := range tree {
		sws = append(sws, sw)
	}
	sort.Slice(sws, func(i, j int) bool { return sws[i] < sws[j] })
	for _, sw := range sws {
		id, err := c.InstallRule(sw, flowtable.Rule{
			Priority: uint16(prefix.Len),
			Match:    flowtable.Match{DstPrefix: prefix},
			Action:   flowtable.ActOutput,
			OutPort:  tree[sw],
		})
		if err != nil {
			return ids, err
		}
		ids[sw] = id
	}
	return ids, nil
}

// RouteAllHosts installs /32 routes for every host on every switch —
// the "ping each other to populate the flow tables with shortest-path
// forwarding rules" setup of §6.1's fat-tree experiments.
func (c *Controller) RouteAllHosts() error {
	for _, h := range c.Net.Hosts() {
		if _, err := c.RoutePrefix(flowtable.Prefix{IP: h.IP, Len: 32}, h.Attach); err != nil {
			return fmt.Errorf("controller: routing host %s: %w", h.Name, err)
		}
	}
	return nil
}

// InstallPathRules pins a traffic class to an explicit path: one rule per
// hop, each constrained to the hop's input port so detours (middlebox
// reflections included) stay unambiguous. Used by waypoint and
// traffic-engineering policies. Returns installed rule IDs in path order.
func (c *Controller) InstallPathRules(path topo.Path, match flowtable.Match, priority uint16) ([]uint64, error) {
	ids := make([]uint64, 0, len(path))
	for _, hop := range path {
		m := match
		m.InPort = hop.In
		r := flowtable.Rule{Priority: priority, Match: m, Action: flowtable.ActOutput, OutPort: hop.Out}
		if hop.Out == topo.DropPort {
			r.Action = flowtable.ActDrop
			r.OutPort = 0
		}
		id, err := c.InstallRule(hop.Switch, r)
		if err != nil {
			return ids, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// WaypointPath computes a path from an edge port to an edge port that
// detours through the given middlebox port: shortest path to the middlebox
// switch, a reflection off the middlebox, then shortest path onward.
func (c *Controller) WaypointPath(src, waypoint, dst topo.PortKey) (topo.Path, error) {
	if c.Net.Switch(waypoint.Switch) == nil ||
		c.Net.Switch(waypoint.Switch).Role(waypoint.Port) != topo.RoleMiddlebox {
		return nil, fmt.Errorf("controller: %v is not a middlebox port", waypoint)
	}
	// Leg 1: src edge → middlebox switch, exiting into the middlebox.
	leg1, err := c.switchLegPath(src, waypoint.Switch)
	if err != nil {
		return nil, err
	}
	leg1 = append(leg1, topo.Hop{
		In:     c.legEntryPort(leg1, src),
		Switch: waypoint.Switch,
		Out:    waypoint.Port,
	})
	// Leg 2: re-entry from the middlebox → dst edge port.
	reentry := topo.PortKey{Switch: waypoint.Switch, Port: waypoint.Port}
	leg2, err := c.switchLegPath(reentry, dst.Switch)
	if err != nil {
		return nil, err
	}
	leg2 = append(leg2, topo.Hop{
		In:     c.legEntryPort(leg2, reentry),
		Switch: dst.Switch,
		Out:    dst.Port,
	})
	return append(leg1, leg2...), nil
}

// switchLegPath returns the hops from a starting port to (but excluding)
// the destination switch: the caller appends the final hop with the right
// egress.
func (c *Controller) switchLegPath(from topo.PortKey, toSwitch topo.SwitchID) (topo.Path, error) {
	sws, ok := c.Net.SwitchPath(from.Switch, toSwitch)
	if !ok {
		return nil, fmt.Errorf("controller: no path from switch %d to %d", from.Switch, toSwitch)
	}
	var path topo.Path
	in := from.Port
	for i := 0; i+1 < len(sws); i++ {
		out, ok := c.Net.LinkPort(sws[i], sws[i+1])
		if !ok {
			return nil, fmt.Errorf("controller: missing link %d→%d", sws[i], sws[i+1])
		}
		path = append(path, topo.Hop{In: in, Switch: sws[i], Out: out})
		peer, _ := c.Net.Peer(topo.PortKey{Switch: sws[i], Port: out})
		in = peer.Port
	}
	return path, nil
}

// legEntryPort determines the input port at the leg's final switch: the
// peer of the last hop's egress, or the starting port if the leg is empty
// (the path starts on the final switch).
func (c *Controller) legEntryPort(leg topo.Path, start topo.PortKey) topo.PortID {
	if len(leg) == 0 {
		return start.Port
	}
	last := leg[len(leg)-1]
	peer, _ := c.Net.Peer(topo.PortKey{Switch: last.Switch, Port: last.Out})
	return peer.Port
}

// InstallWaypoint routes the traffic class through the middlebox with
// per-hop pinned rules at the given priority — the Figure 2 policy.
func (c *Controller) InstallWaypoint(match flowtable.Match, src, waypoint, dst topo.PortKey, priority uint16) ([]uint64, error) {
	path, err := c.WaypointPath(src, waypoint, dst)
	if err != nil {
		return nil, err
	}
	return c.InstallPathRules(path, match, priority)
}

// InstallSplitRoute implements the Figure 3 traffic-engineering policy:
// traffic from src to dst is split across up to maxPaths equal-cost paths,
// each subclass pinned to its path. The classes slice assigns one match per
// path (e.g. different source prefixes); len(classes) paths are installed.
func (c *Controller) InstallSplitRoute(src, dst topo.PortKey, classes []flowtable.Match, priority uint16) ([][]uint64, error) {
	paths, err := c.Net.ShortestPaths(src, dst, len(classes))
	if err != nil {
		return nil, err
	}
	if len(paths) < len(classes) {
		return nil, fmt.Errorf("controller: only %d equal-cost paths for %d classes", len(paths), len(classes))
	}
	var all [][]uint64
	for i, m := range classes {
		ids, err := c.InstallPathRules(paths[i], m, priority)
		if err != nil {
			return all, err
		}
		all = append(all, ids)
	}
	return all, nil
}
