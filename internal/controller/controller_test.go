package controller

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/openflow"
	"veridp/internal/topo"
)

// recorder captures FlowMods instead of applying them.
type recorder struct {
	mu   sync.Mutex
	mods []*openflow.FlowMod
	bars []topo.SwitchID
}

func (r *recorder) Apply(f *openflow.FlowMod) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mods = append(r.mods, f)
	return nil
}

func (r *recorder) Barrier(sw topo.SwitchID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bars = append(r.bars, sw)
	return nil
}

func TestInstallRuleRecordsLogically(t *testing.T) {
	n := topo.Linear(2, 1)
	rec := &recorder{}
	c := New(n, rec)
	sw := n.SwitchByName("s1").ID
	id, err := c.InstallRule(sw, flowtable.Rule{Priority: 5, Action: flowtable.ActOutput, OutPort: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Logical()[sw].Table.Get(id) == nil {
		t.Fatal("logical store missing rule")
	}
	if len(rec.mods) != 1 || rec.mods[0].RuleID != id || rec.mods[0].Command != openflow.FlowAdd {
		t.Fatalf("installer saw %v", rec.mods)
	}
	if _, err := c.InstallRule(99, flowtable.Rule{}); err == nil {
		t.Fatal("unknown switch accepted")
	}
	if err := c.RemoveRule(sw, id); err != nil {
		t.Fatal(err)
	}
	if len(rec.mods) != 2 || rec.mods[1].Command != openflow.FlowDelete {
		t.Fatalf("delete not sent: %v", rec.mods)
	}
	if err := c.RemoveRule(sw, id); err == nil {
		t.Fatal("double remove accepted")
	}
	if err := c.Barrier(); err != nil || len(rec.bars) != n.NumSwitches() {
		t.Fatalf("barrier fanout %d, err %v", len(rec.bars), err)
	}
}

func TestRoutePrefixBuildsDeliveryTree(t *testing.T) {
	n := topo.Linear(3, 1)
	rec := &recorder{}
	c := New(n, rec)
	h3 := n.Host("h3-0")
	ids, err := c.RoutePrefix(flowtable.Prefix{IP: h3.IP, Len: 32}, h3.Attach)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("rules on %d switches, want 3", len(ids))
	}
	// Every switch's logical rule forwards toward h3.
	hdr := header.Header{DstIP: h3.IP}
	for _, sw := range n.Switches() {
		out := c.Logical()[sw.ID].Classify(1, hdr)
		if out == topo.DropPort {
			t.Fatalf("switch %s drops traffic toward the routed prefix", sw.Name)
		}
		if sw.ID == h3.Attach.Switch && out != h3.Attach.Port {
			t.Fatalf("attach switch forwards to %s, want host port %s", out, h3.Attach.Port)
		}
	}
}

func TestWaypointPathValidation(t *testing.T) {
	n := topo.Figure5()
	c := New(n, &recorder{})
	h1 := n.Host("H1").Attach
	h3 := n.Host("H3").Attach
	s2 := n.SwitchByName("S2").ID
	// Port 2 of S2 is a link, not a middlebox.
	if _, err := c.WaypointPath(h1, topo.PortKey{Switch: s2, Port: 2}, h3); err == nil {
		t.Fatal("non-middlebox waypoint accepted")
	}
	path, err := c.WaypointPath(h1, topo.PortKey{Switch: s2, Port: 3}, h3)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4 {
		t.Fatalf("waypoint path %v, want 4 hops", path)
	}
	// The reflection appears as out-then-in on the same port.
	if path[1].Out != 3 || path[2].In != 3 {
		t.Fatalf("middlebox reflection missing: %v", path)
	}
}

func TestInstallSplitRouteRequiresECMP(t *testing.T) {
	n := topo.Linear(2, 2) // a chain has exactly one path
	c := New(n, &recorder{})
	classes := []flowtable.Match{{}, {}}
	_, err := c.InstallSplitRoute(n.Host("h1-0").Attach, n.Host("h2-0").Attach, classes, 10)
	if err == nil {
		t.Fatal("two classes accepted with a single path")
	}
}

func TestRouteAllHostsCoversEveryPair(t *testing.T) {
	n := topo.FatTree(4)
	rec := &recorder{}
	c := New(n, rec)
	if err := c.RouteAllHosts(); err != nil {
		t.Fatal(err)
	}
	// Every switch can classify traffic toward every host.
	for _, sw := range n.Switches() {
		for _, h := range n.Hosts() {
			out := c.Logical()[sw.ID].Classify(1, header.Header{DstIP: h.IP})
			if out == topo.DropPort {
				t.Fatalf("switch %s drops traffic to %s", sw.Name, h.Name)
			}
		}
	}
	if len(rec.mods) != n.NumSwitches()*len(n.Hosts()) {
		t.Fatalf("installer saw %d FlowMods, want %d", len(rec.mods), n.NumSwitches()*len(n.Hosts()))
	}
}

func TestInstallPathRulesPinsHops(t *testing.T) {
	n := topo.Linear(3, 1)
	c := New(n, &recorder{})
	path, err := n.HostPath("h1-0", "h3-0")
	if err != nil {
		t.Fatal(err)
	}
	m := flowtable.Match{HasDst: true, DstPort: 443}
	ids, err := c.InstallPathRules(path, m, 777)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(path) {
		t.Fatalf("ids %d for %d hops", len(ids), len(path))
	}
	for i, hop := range path {
		r := c.Logical()[hop.Switch].Table.Get(ids[i])
		if r == nil || r.Match.InPort != hop.In || r.OutPort != hop.Out || r.Priority != 777 {
			t.Fatalf("hop %d rule wrong: %+v", i, r)
		}
	}
	// Drop hops compile to drop rules.
	dropPath := topo.Path{{In: 1, Switch: n.SwitchByName("s1").ID, Out: topo.DropPort}}
	ids, err = c.InstallPathRules(dropPath, m, 778)
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Logical()[dropPath[0].Switch].Table.Get(ids[0]); r.Action != flowtable.ActDrop {
		t.Fatalf("drop hop compiled to %+v", r)
	}
}

func TestInstallWaypointThroughRecorder(t *testing.T) {
	n := topo.Figure5()
	c := New(n, &recorder{})
	mb := topo.PortKey{Switch: n.SwitchByName("S2").ID, Port: 3}
	ids, err := c.InstallWaypoint(flowtable.Match{HasDst: true, DstPort: 22},
		n.Host("H1").Attach, mb, n.Host("H3").Attach, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 {
		t.Fatalf("waypoint installed %d rules, want 4", len(ids))
	}
}

// TestServerEndToEnd exercises the TCP southbound: a fake switch connects,
// receives a FlowMod, answers a barrier.
func TestServerEndToEnd(t *testing.T) {
	srv := NewServer()
	srv.Timeout = 3 * time.Second
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(context.Background(), l)
	defer srv.Close()

	// Fake switch.
	raw, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	swc := openflow.NewConn(raw)
	if err := swc.SendHello(42); err != nil {
		t.Fatal(err)
	}
	received := make(chan *openflow.FlowMod, 1)
	go func() {
		for {
			m, err := swc.Recv()
			if err != nil {
				return
			}
			switch m.Type {
			case openflow.TypeFlowMod:
				if f, err := openflow.UnmarshalFlowMod(m.Body); err == nil {
					received <- f
				}
			case openflow.TypeBarrierRequest:
				swc.SendBarrierReply(m.Xid)
			}
		}
	}()

	if err := srv.WaitForSwitches([]topo.SwitchID{42}); err != nil {
		t.Fatal(err)
	}
	fm := &openflow.FlowMod{Command: openflow.FlowAdd, Switch: 42, RuleID: 7,
		Rule: flowtable.Rule{Priority: 3, Action: flowtable.ActOutput, OutPort: 1}}
	if err := srv.Apply(fm); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-received:
		if got.RuleID != 7 {
			t.Fatalf("switch received %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("FlowMod never arrived")
	}
	if err := srv.Barrier(42); err != nil {
		t.Fatal(err)
	}
	// Unknown switch errors.
	if err := srv.Apply(&openflow.FlowMod{Command: openflow.FlowAdd, Switch: 99}); err == nil {
		t.Fatal("apply to unconnected switch succeeded")
	}
	if err := srv.Barrier(99); err == nil {
		t.Fatal("barrier to unconnected switch succeeded")
	}
}

func TestServerWaitTimeout(t *testing.T) {
	srv := NewServer()
	srv.Timeout = 100 * time.Millisecond
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(context.Background(), l)
	defer srv.Close()
	start := time.Now()
	if err := srv.WaitForSwitches([]topo.SwitchID{1}); err == nil {
		t.Fatal("wait for a never-connecting switch succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout did not bound the wait")
	}
}

// TestServerConcurrentBarrierAndDump stresses the reply-delivery path
// under -race: serveConn hands dump results to waiters outside s.mu, so
// many concurrent Barrier/DumpTable callers against one switch must all
// complete without deadlocking or racing on the waiter maps.
func TestServerConcurrentBarrierAndDump(t *testing.T) {
	srv := NewServer()
	srv.Timeout = 5 * time.Second
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(context.Background(), l)
	defer srv.Close()

	raw, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	swc := openflow.NewConn(raw)
	if err := swc.SendHello(7); err != nil {
		t.Fatal(err)
	}
	rules := []*flowtable.Rule{{ID: 1, Priority: 2, Action: flowtable.ActOutput, OutPort: 3}}
	go func() {
		for {
			m, err := swc.Recv()
			if err != nil {
				return
			}
			switch m.Type {
			case openflow.TypeBarrierRequest:
				if err := swc.SendBarrierReply(m.Xid); err != nil {
					return
				}
			case openflow.TypeTableDumpRequest:
				reply := &openflow.Message{
					Type: openflow.TypeTableDumpReply,
					Xid:  m.Xid,
					Body: openflow.MarshalTableDump(rules),
				}
				if err := swc.Send(reply); err != nil {
					return
				}
			}
		}
	}()
	if err := srv.WaitForSwitches([]topo.SwitchID{7}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if i%2 == 0 {
					if err := srv.Barrier(7); err != nil {
						errs <- err
						return
					}
					continue
				}
				got, err := srv.DumpTable(7)
				if err != nil {
					errs <- err
					return
				}
				if len(got) != 1 || got[0].ID != 1 {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
