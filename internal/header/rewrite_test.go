package header

import (
	"math/rand"
	"testing"

	"veridp/internal/bdd"
)

func TestRewriteApply(t *testing.T) {
	rw := &Rewrite{SetDstIP: true, DstIP: MustParseIP("10.0.9.9"), SetDstPort: true, DstPort: 8080}
	h := Header{SrcIP: 1, DstIP: 2, Proto: ProtoTCP, SrcPort: 3, DstPort: 80}
	got := rw.Apply(h)
	if got.DstIP != MustParseIP("10.0.9.9") || got.DstPort != 8080 {
		t.Fatalf("rewrite not applied: %v", got)
	}
	if got.SrcIP != 1 || got.SrcPort != 3 || got.Proto != ProtoTCP {
		t.Fatalf("rewrite touched unrelated fields: %v", got)
	}
	var nilRW *Rewrite
	if nilRW.Apply(h) != h {
		t.Fatal("nil rewrite should be identity")
	}
	if !nilRW.IsZero() || !(&Rewrite{}).IsZero() || rw.IsZero() {
		t.Fatal("IsZero wrong")
	}
	if !nilRW.Equal(&Rewrite{}) || rw.Equal(nilRW) {
		t.Fatal("Equal wrong")
	}
	if rw.String() == "rewrite{}" {
		t.Fatal("String lost assignments")
	}
}

func TestTransformSingleton(t *testing.T) {
	s := NewSpace()
	h := Header{SrcIP: MustParseIP("10.0.1.1"), DstIP: MustParseIP("172.16.0.1"), Proto: ProtoTCP, SrcPort: 5555, DstPort: 80}
	rw := &Rewrite{SetDstIP: true, DstIP: MustParseIP("10.0.2.1")}
	set := s.HeaderSet(h)
	img := s.Transform(set, rw)
	if got := s.T.SatCount(img); got != 1 {
		t.Fatalf("image of a singleton has SatCount %v", got)
	}
	if !s.Contains(img, rw.Apply(h)) {
		t.Fatal("image misses the rewritten header")
	}
	if s.Contains(img, h) {
		t.Fatal("image still contains the original header")
	}
}

func TestTransformCollapsesField(t *testing.T) {
	s := NewSpace()
	// A whole /24 of destinations NATs onto one backend: the image pins
	// dst entirely, keeping everything else free.
	set := s.DstIPPrefix(MustParseIP("192.168.1.0"), 24)
	rw := &Rewrite{SetDstIP: true, DstIP: MustParseIP("10.0.2.1")}
	img := s.Transform(set, rw)
	if img != s.DstIPEq(MustParseIP("10.0.2.1")) {
		t.Fatal("image should be exactly dst == backend")
	}
	// Transform of False is False; zero rewrite is identity.
	if s.Transform(bdd.False, rw) != bdd.False {
		t.Fatal("image of empty set non-empty")
	}
	if s.Transform(set, nil) != set || s.Transform(set, &Rewrite{}) != set {
		t.Fatal("zero rewrite not identity")
	}
}

// Property: h' ∈ Transform(S, rw) iff h' = rw.Apply(h) for some h ∈ S —
// checked on prefix-shaped sets where membership of preimages is decidable
// by arithmetic.
func TestQuickTransformSemantics(t *testing.T) {
	s := NewSpace()
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 200; trial++ {
		plen := rng.Intn(25)
		base := rng.Uint32()
		set := s.DstIPPrefix(base, plen)
		set = s.T.And(set, s.SrcPortEq(uint16(rng.Intn(65536))))
		rw := &Rewrite{}
		if rng.Intn(2) == 0 {
			rw.SetDstIP, rw.DstIP = true, rng.Uint32()
		}
		if rng.Intn(2) == 0 {
			rw.SetSrcPort, rw.SrcPort = true, uint16(rng.Intn(65536))
		}
		img := s.Transform(set, rw)

		// Probe with the rewritten version of a member and a non-member.
		member, ok := s.Witness(set)
		if !ok {
			continue
		}
		if !s.Contains(img, rw.Apply(member)) {
			t.Fatalf("trial %d: rewritten member missing from image", trial)
		}
		probe := member
		probe.DstIP = ^probe.DstIP // usually leaves the prefix
		probe = rw.Apply(probe)
		inSet := s.Contains(set, Header{SrcIP: probe.SrcIP, DstIP: probePreimageDst(rw, probe, member), Proto: probe.Proto, SrcPort: preimageSrcPort(rw, probe, member), DstPort: probe.DstPort})
		if !inSet && !rw.SetDstIP {
			// Without a dst rewrite the image keeps the prefix constraint;
			// the flipped dst must be outside unless it still matches.
			if s.Contains(img, probe) != s.Contains(set, probe) {
				t.Fatalf("trial %d: identity-field membership diverged", trial)
			}
		}
	}
}

// probePreimageDst/preimageSrcPort reconstruct a candidate preimage field:
// rewritten fields came from the member; untouched fields from the probe.
func probePreimageDst(rw *Rewrite, probe, member Header) uint32 {
	if rw.SetDstIP {
		return member.DstIP
	}
	return probe.DstIP
}

func preimageSrcPort(rw *Rewrite, probe, member Header) uint16 {
	if rw.SetSrcPort {
		return member.SrcPort
	}
	return probe.SrcPort
}
