// Wildcard-expression header sets: the baseline representation that §4.1
// rejects. Each Wildcard is a ternary string over the 104 header bits
// (0, 1, or *); a WildcardSet is a union of such strings. The representation
// is exact but explodes combinatorially under complement and difference —
// this package exists so the ablation benchmarks can measure that explosion
// against BDDs on the same inputs.

package header

import (
	"strings"

	"veridp/internal/bdd"
)

// Wildcard is one ternary match over the header bits. Bits use the same
// encoding as bdd assignments: 0, 1, or bdd.DontCare.
type Wildcard [NumVars]byte

// String renders the wildcard as a 104-character ternary string.
func (w Wildcard) String() string {
	var b strings.Builder
	b.Grow(NumVars)
	for _, v := range w {
		switch v {
		case 0:
			b.WriteByte('0')
		case 1:
			b.WriteByte('1')
		default:
			b.WriteByte('*')
		}
	}
	return b.String()
}

// MatchAll returns the wildcard that matches every header.
func MatchAll() Wildcard {
	var w Wildcard
	for i := range w {
		w[i] = bdd.DontCare
	}
	return w
}

// Matches reports whether the concrete header satisfies the wildcard.
func (w Wildcard) Matches(s *Space, h Header) bool {
	a := s.assignment(h)
	for i, v := range w {
		if v != bdd.DontCare && v != a[i] {
			return false
		}
	}
	return true
}

// Intersect returns the bitwise intersection of two wildcards and whether it
// is non-empty (a 0 meeting a 1 empties the intersection).
func (w Wildcard) Intersect(o Wildcard) (Wildcard, bool) {
	var out Wildcard
	for i := range w {
		a, b := w[i], o[i]
		switch {
		case a == bdd.DontCare:
			out[i] = b
		case b == bdd.DontCare:
			out[i] = a
		case a == b:
			out[i] = a
		default:
			return Wildcard{}, false
		}
	}
	return out, true
}

// Subtract returns w \ o as a union of wildcards. Each fixed bit of o splits
// w into at most one residual wildcard, so the result has at most one
// wildcard per fixed bit of o — the combinatorial growth §4.1 warns about.
func (w Wildcard) Subtract(o Wildcard) []Wildcard {
	if _, ok := w.Intersect(o); !ok {
		return []Wildcard{w} // disjoint: nothing to remove
	}
	var out []Wildcard
	cur := w
	for i := range w {
		if o[i] == bdd.DontCare || w[i] != bdd.DontCare {
			continue
		}
		// w is free at bit i but o fixes it: the half where they differ
		// survives subtraction.
		piece := cur
		piece[i] = 1 - o[i]
		out = append(out, piece)
		cur[i] = o[i]
	}
	// The remaining cur is exactly the intersection with o and is removed.
	return out
}

// BDD converts the wildcard to its BDD representation in the given space.
func (w Wildcard) BDD(s *Space) bdd.Ref {
	vars := make([]int, 0, NumVars)
	values := make([]bool, 0, NumVars)
	for i, v := range w {
		if v == bdd.DontCare {
			continue
		}
		vars = append(vars, i)
		values = append(values, v == 1)
	}
	return s.T.Cube(vars, values)
}

// WildcardSet is a union of wildcards: the header-set representation used by
// Header Space Analysis, kept here purely as the measurable baseline.
type WildcardSet struct {
	Terms []Wildcard
}

// Len returns the number of wildcard terms — the §4.1 cost metric.
func (ws *WildcardSet) Len() int { return len(ws.Terms) }

// Add unions one wildcard into the set (no redundancy elimination; the point
// of the baseline is to observe growth).
func (ws *WildcardSet) Add(w Wildcard) { ws.Terms = append(ws.Terms, w) }

// IntersectWildcard intersects the whole set with one wildcard.
func (ws *WildcardSet) IntersectWildcard(w Wildcard) *WildcardSet {
	out := &WildcardSet{}
	for _, t := range ws.Terms {
		if x, ok := t.Intersect(w); ok {
			out.Add(x)
		}
	}
	return out
}

// SubtractWildcard subtracts one wildcard from every term of the set.
func (ws *WildcardSet) SubtractWildcard(w Wildcard) *WildcardSet {
	out := &WildcardSet{}
	for _, t := range ws.Terms {
		out.Terms = append(out.Terms, t.Subtract(w)...)
	}
	return out
}

// Matches reports whether any term matches the header.
func (ws *WildcardSet) Matches(s *Space, h Header) bool {
	for _, t := range ws.Terms {
		if t.Matches(s, h) {
			return true
		}
	}
	return false
}

// BDD converts the whole set to a BDD for cross-checking against the
// first-class representation.
func (ws *WildcardSet) BDD(s *Space) bdd.Ref {
	r := bdd.False
	for _, t := range ws.Terms {
		r = s.T.Or(r, t.BDD(s))
	}
	return r
}
