package header

import (
	"math/rand"
	"testing"
	"testing/quick"

	"veridp/internal/bdd"
)

func TestParseIP(t *testing.T) {
	cases := []struct {
		in   string
		want uint32
		ok   bool
	}{
		{"10.0.0.1", 0x0a000001, true},
		{"255.255.255.255", 0xffffffff, true},
		{"0.0.0.0", 0, true},
		{"192.168.1.200", 0xc0a801c8, true},
		{"256.0.0.1", 0, false},
		{"10.0.0", 0, false},
		{"bogus", 0, false},
	}
	for _, c := range cases {
		got, err := ParseIP(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseIP(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseIP(%q) succeeded, want error", c.in)
		}
	}
}

func TestIPStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		ip := rng.Uint32()
		back, err := ParseIP(IPString(ip))
		if err != nil || back != ip {
			t.Fatalf("round trip failed for %#x: got %#x, err %v", ip, back, err)
		}
	}
}

func TestMustParseIPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseIP accepted garbage")
		}
	}()
	MustParseIP("not-an-ip")
}

func TestHeaderString(t *testing.T) {
	h := Header{SrcIP: MustParseIP("10.0.0.1"), DstIP: MustParseIP("10.0.0.2"),
		Proto: ProtoTCP, SrcPort: 1234, DstPort: 80}
	want := "10.0.0.1:1234 > 10.0.0.2:80 proto 6"
	if got := h.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestHeaderSetSingleton(t *testing.T) {
	s := NewSpace()
	h := Header{SrcIP: MustParseIP("10.0.1.1"), DstIP: MustParseIP("10.0.2.1"),
		Proto: ProtoTCP, SrcPort: 40000, DstPort: 22}
	set := s.HeaderSet(h)
	if got := s.T.SatCount(set); got != 1 {
		t.Fatalf("singleton set has SatCount %v, want 1", got)
	}
	if !s.Contains(set, h) {
		t.Fatal("singleton does not contain its own header")
	}
	other := h
	other.DstPort = 23
	if s.Contains(set, other) {
		t.Fatal("singleton contains a different header")
	}
}

func TestPrefixPredicates(t *testing.T) {
	s := NewSpace()
	p := s.DstIPPrefix(MustParseIP("10.0.2.0"), 24)
	in := Header{DstIP: MustParseIP("10.0.2.77")}
	out := Header{DstIP: MustParseIP("10.0.3.77")}
	if !s.Contains(p, in) {
		t.Fatal("address inside prefix rejected")
	}
	if s.Contains(p, out) {
		t.Fatal("address outside prefix accepted")
	}
	// /0 matches everything.
	if s.DstIPPrefix(0, 0) != bdd.True {
		t.Fatal("/0 prefix is not all-match")
	}
	// /32 is address equality.
	if s.DstIPPrefix(MustParseIP("1.2.3.4"), 32) != s.DstIPEq(MustParseIP("1.2.3.4")) {
		t.Fatal("/32 prefix differs from equality predicate")
	}
}

func TestPrefixSatCount(t *testing.T) {
	s := NewSpace()
	// A /24 prefix constrains 24 of 104 bits: 2^80 headers.
	p := s.DstIPPrefix(MustParseIP("10.1.1.0"), 24)
	want := 1.0
	for i := 0; i < 80; i++ {
		want *= 2
	}
	if got := s.T.SatCount(p); got != want {
		t.Fatalf("/24 SatCount = %g, want %g", got, want)
	}
}

func TestPrefixNesting(t *testing.T) {
	s := NewSpace()
	wide := s.DstIPPrefix(MustParseIP("10.0.0.0"), 8)
	narrow := s.DstIPPrefix(MustParseIP("10.1.0.0"), 16)
	if !s.T.Implies(narrow, wide) {
		t.Fatal("10.1.0.0/16 should be inside 10.0.0.0/8")
	}
	disjoint := s.DstIPPrefix(MustParseIP("11.0.0.0"), 8)
	if s.T.And(wide, disjoint) != bdd.False {
		t.Fatal("10/8 and 11/8 should be disjoint")
	}
}

func TestPortRange(t *testing.T) {
	s := NewSpace()
	r := s.DstPortRange(1000, 2000)
	for _, c := range []struct {
		port uint16
		in   bool
	}{{999, false}, {1000, true}, {1500, true}, {2000, true}, {2001, false}, {0, false}, {65535, false}} {
		h := Header{DstPort: c.port}
		if got := s.Contains(r, h); got != c.in {
			t.Errorf("port %d: Contains = %v, want %v", c.port, got, c.in)
		}
	}
	// Exact range count: 1001 ports × 2^88 free bits.
	free := 1.0
	for i := 0; i < NumVars-16; i++ {
		free *= 2
	}
	if got := s.T.SatCount(r); got != 1001*free {
		t.Fatalf("range SatCount = %g, want %g", got, 1001*free)
	}
}

func TestPortRangeDegenerate(t *testing.T) {
	s := NewSpace()
	if s.DstPortRange(5, 4) != bdd.False {
		t.Fatal("inverted range should be empty")
	}
	if s.DstPortRange(0, 65535) != bdd.True {
		t.Fatal("full range should be all-match")
	}
	if s.DstPortRange(80, 80) != s.DstPortEq(80) {
		t.Fatal("single-point range should equal equality predicate")
	}
}

func TestNotDstPort22(t *testing.T) {
	// The paper's Table 1 example: dst_port != 22 as the complement set.
	s := NewSpace()
	ssh := s.DstPortEq(22)
	notSSH := s.T.Not(ssh)
	if s.Contains(notSSH, Header{DstPort: 22}) {
		t.Fatal("¬(dst_port=22) contains port 22")
	}
	if !s.Contains(notSSH, Header{DstPort: 80}) {
		t.Fatal("¬(dst_port=22) rejects port 80")
	}
}

func TestProtoPredicate(t *testing.T) {
	s := NewSpace()
	tcp := s.ProtoEq(ProtoTCP)
	if !s.Contains(tcp, Header{Proto: ProtoTCP}) || s.Contains(tcp, Header{Proto: ProtoUDP}) {
		t.Fatal("protocol predicate wrong")
	}
}

func TestWitness(t *testing.T) {
	s := NewSpace()
	set := s.T.And(s.DstIPPrefix(MustParseIP("10.0.2.0"), 24), s.DstPortEq(22))
	h, ok := s.Witness(set)
	if !ok {
		t.Fatal("non-empty set has no witness")
	}
	if !s.Contains(set, h) {
		t.Fatalf("witness %v not contained in its set", h)
	}
	if h.DstPort != 22 {
		t.Fatalf("witness dst port = %d, want 22", h.DstPort)
	}
	if h.Proto != ProtoTCP {
		t.Fatalf("unconstrained proto defaulted to %d, want TCP", h.Proto)
	}
	if _, ok := s.Witness(bdd.False); ok {
		t.Fatal("empty set produced a witness")
	}
}

// Property: every witness belongs to the set it was extracted from.
func TestQuickWitnessMembership(t *testing.T) {
	s := NewSpace()
	prop := func(prefix uint32, plenRaw uint8, port uint16) bool {
		plen := int(plenRaw % 33)
		set := s.T.And(s.DstIPPrefix(prefix, plen), s.SrcPortEq(port))
		h, ok := s.Witness(set)
		return ok && s.Contains(set, h)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: prefix membership by BDD agrees with arithmetic membership.
func TestQuickPrefixAgreesWithArithmetic(t *testing.T) {
	s := NewSpace()
	prop := func(prefix, addr uint32, plenRaw uint8) bool {
		plen := int(plenRaw % 33)
		set := s.DstIPPrefix(prefix, plen)
		want := plen == 0 || prefix>>(32-plen) == addr>>(32-plen)
		return s.Contains(set, Header{DstIP: addr}) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: range membership agrees with arithmetic comparison.
func TestQuickRangeAgreesWithArithmetic(t *testing.T) {
	s := NewSpace()
	prop := func(lo, hi, p uint16) bool {
		set := s.DstPortRange(lo, hi)
		want := lo <= p && p <= hi
		return s.Contains(set, Header{DstPort: p}) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWildcardBasics(t *testing.T) {
	s := NewSpace()
	all := MatchAll()
	if !all.Matches(s, Header{}) {
		t.Fatal("MatchAll rejects the zero header")
	}
	if got := len(all.String()); got != NumVars {
		t.Fatalf("wildcard string length %d, want %d", got, NumVars)
	}
	if all.BDD(s) != bdd.True {
		t.Fatal("MatchAll BDD is not True")
	}
}

func TestWildcardIntersect(t *testing.T) {
	s := NewSpace()
	a := MatchAll()
	a[DstIPOffset] = 1
	b := MatchAll()
	b[DstIPOffset] = 0
	if _, ok := a.Intersect(b); ok {
		t.Fatal("conflicting wildcards intersected")
	}
	c := MatchAll()
	c[DstIPOffset+1] = 1
	x, ok := a.Intersect(c)
	if !ok {
		t.Fatal("compatible wildcards failed to intersect")
	}
	if got, want := x.BDD(s), s.T.And(a.BDD(s), c.BDD(s)); got != want {
		t.Fatal("wildcard intersection disagrees with BDD intersection")
	}
}

func TestWildcardSubtract(t *testing.T) {
	s := NewSpace()
	// Subtract dst_port=22 from all-match: should equal ¬(dst_port=22).
	all := MatchAll()
	var ssh Wildcard = MatchAll()
	for i := 0; i < DstPortBits; i++ {
		bit := byte(22 >> (DstPortBits - 1 - i) & 1)
		ssh[DstPortOffset+i] = bit
	}
	pieces := all.Subtract(ssh)
	if len(pieces) != DstPortBits {
		t.Fatalf("subtracting a 16-bit point from all-match produced %d pieces, want %d",
			len(pieces), DstPortBits)
	}
	set := &WildcardSet{Terms: pieces}
	want := s.T.Not(s.DstPortEq(22))
	if got := set.BDD(s); got != want {
		t.Fatal("wildcard subtraction disagrees with BDD complement")
	}
}

// Property: wildcard subtraction agrees with BDD difference.
func TestQuickWildcardSubtractAgreesWithBDD(t *testing.T) {
	s := NewSpace()
	rng := rand.New(rand.NewSource(3))
	randWildcard := func() Wildcard {
		w := MatchAll()
		// Fix a handful of random bits.
		for k := 0; k < 6; k++ {
			w[rng.Intn(NumVars)] = byte(rng.Intn(2))
		}
		return w
	}
	for trial := 0; trial < 100; trial++ {
		a, b := randWildcard(), randWildcard()
		got := (&WildcardSet{Terms: a.Subtract(b)}).BDD(s)
		want := s.T.Diff(a.BDD(s), b.BDD(s))
		if got != want {
			t.Fatalf("trial %d: subtraction mismatch\n a=%s\n b=%s", trial, a, b)
		}
	}
}

// TestWildcardExplosion reproduces the §4.1 motivation: representing
// "dst_port != 22" takes 16 wildcard terms but a compact BDD.
func TestWildcardExplosion(t *testing.T) {
	s := NewSpace()
	ws := &WildcardSet{Terms: []Wildcard{MatchAll()}}
	var ssh Wildcard = MatchAll()
	for i := 0; i < DstPortBits; i++ {
		ssh[DstPortOffset+i] = byte(22 >> (DstPortBits - 1 - i) & 1)
	}
	ws = ws.SubtractWildcard(ssh)
	if ws.Len() != 16 {
		t.Fatalf("dst_port!=22 took %d wildcard terms, paper says 16", ws.Len())
	}
	bddNodes := s.T.NodeCount(s.T.Not(s.DstPortEq(22)))
	if bddNodes >= 32 {
		t.Fatalf("BDD for dst_port!=22 should be small, got %d nodes", bddNodes)
	}
}

// BenchmarkRepresentationWildcardVsBDD is the §4.1 ablation: subtracting k
// point rules from the all-match set grows a wildcard union multiplicatively
// while the BDD stays compact. The custom metrics report the final sizes.
func BenchmarkRepresentationWildcardVsBDD(b *testing.B) {
	s := NewSpace()
	// Scattered service ports (a subcube of ports would cancel the blowup).
	ports := []uint16{22, 80, 443, 3306, 5432, 8080, 27017, 65000}
	var lastWildcards, lastNodes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws := &WildcardSet{Terms: []Wildcard{MatchAll()}}
		set := s.T.Not(bddFalse())
		for _, port := range ports {
			var w Wildcard = MatchAll()
			for bit := 0; bit < DstPortBits; bit++ {
				w[DstPortOffset+bit] = byte(port >> (DstPortBits - 1 - bit) & 1)
			}
			ws = ws.SubtractWildcard(w)
			set = s.T.Diff(set, s.DstPortEq(port))
		}
		lastWildcards = ws.Len()
		lastNodes = s.T.NodeCount(set)
	}
	b.StopTimer()
	b.ReportMetric(float64(lastWildcards), "wildcard-terms")
	b.ReportMetric(float64(lastNodes), "bdd-nodes")
}

func bddFalse() bdd.Ref { return bdd.False }

func BenchmarkHeaderSetSingleton(b *testing.B) {
	s := NewSpace()
	h := Header{SrcIP: 0x0a000101, DstIP: 0x0a000201, Proto: ProtoTCP, SrcPort: 4242, DstPort: 80}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.HeaderSet(h)
	}
}

func BenchmarkContains(b *testing.B) {
	s := NewSpace()
	set := s.T.And(s.DstIPPrefix(0x0a000200, 24), s.T.Not(s.DstPortEq(22)))
	h := Header{SrcIP: 0x0a000101, DstIP: 0x0a000201, Proto: ProtoTCP, SrcPort: 4242, DstPort: 80}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Contains(set, h)
	}
}
