// Package header models the packet-header space VeriDP verifies over and its
// encoding into BDD variables.
//
// VeriDP identifies flows by the TCP/UDP 5-tuple (§5). We therefore lay the
// header space out as 104 Boolean variables:
//
//	vars   0..31   source IPv4 address   (MSB first)
//	vars  32..63   destination IPv4 address
//	vars  64..71   IP protocol
//	vars  72..87   source transport port
//	vars  88..103  destination transport port
//
// MSB-first ordering within each field keeps prefix predicates shallow: an
// IPv4 /24 prefix over the destination address is a 24-node chain. Fields are
// ordered source-to-destination because forwarding rules overwhelmingly match
// destination prefixes; interleaving buys nothing for this workload.
//
// The package also provides a wildcard-expression representation (Wildcard,
// WildcardSet) used only as the measurable baseline for the §4.1 argument
// that wildcards are too inefficient for arbitrary header sets.
package header

import (
	"fmt"

	"veridp/internal/bdd"
)

// Field bit offsets within the 104-variable header space.
const (
	SrcIPOffset   = 0
	SrcIPBits     = 32
	DstIPOffset   = 32
	DstIPBits     = 32
	ProtoOffset   = 64
	ProtoBits     = 8
	SrcPortOffset = 72
	SrcPortBits   = 16
	DstPortOffset = 88
	DstPortBits   = 16

	// NumVars is the total width of the header space in Boolean variables.
	NumVars = 104
)

// Well-known IP protocol numbers used throughout the examples and tests.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// Header is a concrete 5-tuple: the portion of a packet VeriDP reports to the
// verification server (§3.3, "header is a portion of packet header, e.g.,
// TCP 5-tuple").
type Header struct {
	SrcIP   uint32
	DstIP   uint32
	Proto   uint8
	SrcPort uint16
	DstPort uint16
}

// String renders the header in the conventional 5-tuple form.
func (h Header) String() string {
	return fmt.Sprintf("%s:%d > %s:%d proto %d",
		IPString(h.SrcIP), h.SrcPort, IPString(h.DstIP), h.DstPort, h.Proto)
}

// IPString formats a uint32 IPv4 address in dotted-quad notation.
func IPString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// MustParseIP converts dotted-quad notation to a uint32, panicking on
// malformed input. It is intended for literals in examples and tests.
func MustParseIP(s string) uint32 {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// ParseIP converts dotted-quad notation to a uint32 IPv4 address.
func ParseIP(s string) (uint32, error) {
	var a, b, c, d int
	n, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d)
	if err != nil || n != 4 {
		return 0, fmt.Errorf("header: malformed IPv4 address %q", s)
	}
	for _, v := range []int{a, b, c, d} {
		if v < 0 || v > 255 {
			return 0, fmt.Errorf("header: IPv4 octet out of range in %q", s)
		}
	}
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d), nil
}

// Space wraps a bdd.Table laid out for the 104-bit header space and provides
// field-level predicate constructors. All VeriDP components that manipulate
// header sets share one Space.
type Space struct {
	T *bdd.Table
}

// NewSpace allocates a fresh header space backed by a new BDD table.
func NewSpace() *Space {
	return &Space{T: bdd.New(NumVars)}
}

// All returns the all-match header set (the BDD True).
func (s *Space) All() bdd.Ref { return bdd.True }

// None returns the empty header set (the BDD False).
func (s *Space) None() bdd.Ref { return bdd.False }

// fieldEq builds the predicate "field == value" for a field of width bits
// starting at offset.
func (s *Space) fieldEq(offset, bits int, value uint32) bdd.Ref {
	vars := make([]int, bits)
	values := make([]bool, bits)
	for i := 0; i < bits; i++ {
		vars[i] = offset + i
		values[i] = value>>(bits-1-i)&1 == 1
	}
	return s.T.Cube(vars, values)
}

// fieldPrefix builds the predicate "top plen bits of field == top plen bits
// of value".
func (s *Space) fieldPrefix(offset, bits int, value uint32, plen int) bdd.Ref {
	if plen < 0 || plen > bits {
		panic(fmt.Sprintf("header: prefix length %d out of range [0,%d]", plen, bits))
	}
	vars := make([]int, plen)
	values := make([]bool, plen)
	for i := 0; i < plen; i++ {
		vars[i] = offset + i
		values[i] = value>>(bits-1-i)&1 == 1
	}
	return s.T.Cube(vars, values)
}

// fieldRange builds the predicate lo <= field <= hi by recursive interval
// splitting on the field's bits.
func (s *Space) fieldRange(offset, bits int, lo, hi uint32) bdd.Ref {
	if lo > hi {
		return bdd.False
	}
	max := uint32(1)<<bits - 1
	if bits == 32 {
		max = ^uint32(0)
	}
	if lo == 0 && hi == max {
		return bdd.True
	}
	// ge(lo) ∧ le(hi), each built bottom-up over the field's bits.
	return s.T.And(s.fieldGE(offset, bits, lo), s.fieldLE(offset, bits, hi))
}

// fieldGE builds "field >= bound" bottom-up: at each bit position, if the
// bound bit is 0, a 1 in the field makes the rest unconstrained.
func (s *Space) fieldGE(offset, bits int, bound uint32) bdd.Ref {
	acc := bdd.True // equality on all bits so far means >= holds
	for i := bits - 1; i >= 0; i-- {
		v := offset + i
		bit := bound >> (bits - 1 - i) & 1
		if bit == 0 {
			// field bit 1 ⇒ strictly greater regardless of lower bits;
			// field bit 0 ⇒ must still satisfy acc on the remaining bits.
			acc = s.T.Or(s.T.Var(v), acc)
		} else {
			// field bit 0 ⇒ strictly less: fail; bit 1 ⇒ recurse.
			acc = s.T.And(s.T.Var(v), acc)
		}
	}
	return acc
}

// fieldLE builds "field <= bound" by the dual construction.
func (s *Space) fieldLE(offset, bits int, bound uint32) bdd.Ref {
	acc := bdd.True
	for i := bits - 1; i >= 0; i-- {
		v := offset + i
		bit := bound >> (bits - 1 - i) & 1
		if bit == 1 {
			acc = s.T.Or(s.T.NVar(v), acc)
		} else {
			acc = s.T.And(s.T.NVar(v), acc)
		}
	}
	return acc
}

// SrcIPPrefix returns the predicate src_ip ∈ prefix/plen.
func (s *Space) SrcIPPrefix(prefix uint32, plen int) bdd.Ref {
	return s.fieldPrefix(SrcIPOffset, SrcIPBits, prefix, plen)
}

// DstIPPrefix returns the predicate dst_ip ∈ prefix/plen.
func (s *Space) DstIPPrefix(prefix uint32, plen int) bdd.Ref {
	return s.fieldPrefix(DstIPOffset, DstIPBits, prefix, plen)
}

// SrcIPEq returns the predicate src_ip == ip.
func (s *Space) SrcIPEq(ip uint32) bdd.Ref { return s.fieldEq(SrcIPOffset, SrcIPBits, ip) }

// DstIPEq returns the predicate dst_ip == ip.
func (s *Space) DstIPEq(ip uint32) bdd.Ref { return s.fieldEq(DstIPOffset, DstIPBits, ip) }

// ProtoEq returns the predicate proto == p.
func (s *Space) ProtoEq(p uint8) bdd.Ref { return s.fieldEq(ProtoOffset, ProtoBits, uint32(p)) }

// SrcPortEq returns the predicate src_port == p.
func (s *Space) SrcPortEq(p uint16) bdd.Ref { return s.fieldEq(SrcPortOffset, SrcPortBits, uint32(p)) }

// DstPortEq returns the predicate dst_port == p.
func (s *Space) DstPortEq(p uint16) bdd.Ref { return s.fieldEq(DstPortOffset, DstPortBits, uint32(p)) }

// SrcPortRange returns the predicate lo <= src_port <= hi.
func (s *Space) SrcPortRange(lo, hi uint16) bdd.Ref {
	return s.fieldRange(SrcPortOffset, SrcPortBits, uint32(lo), uint32(hi))
}

// DstPortRange returns the predicate lo <= dst_port <= hi.
func (s *Space) DstPortRange(lo, hi uint16) bdd.Ref {
	return s.fieldRange(DstPortOffset, DstPortBits, uint32(lo), uint32(hi))
}

// HeaderSet returns the singleton predicate for a concrete 5-tuple. The
// verification server uses this to test header ∈ path.headers (§5: "generate
// a BDD representation for the packet header, and then intersect").
func (s *Space) HeaderSet(h Header) bdd.Ref {
	vars := make([]int, 0, NumVars)
	values := make([]bool, 0, NumVars)
	appendField := func(offset, bits int, value uint32) {
		for i := 0; i < bits; i++ {
			vars = append(vars, offset+i)
			values = append(values, value>>(bits-1-i)&1 == 1)
		}
	}
	appendField(SrcIPOffset, SrcIPBits, h.SrcIP)
	appendField(DstIPOffset, DstIPBits, h.DstIP)
	appendField(ProtoOffset, ProtoBits, uint32(h.Proto))
	appendField(SrcPortOffset, SrcPortBits, uint32(h.SrcPort))
	appendField(DstPortOffset, DstPortBits, uint32(h.DstPort))
	return s.T.Cube(vars, values)
}

// Contains reports whether the concrete header h belongs to the header set.
// It evaluates the BDD directly rather than building the singleton cube and
// keeps the assignment on the stack, so the per-report verification path is
// allocation-free (Figure 13 is a microseconds-per-report budget).
//
//lint:allocfree
func (s *Space) Contains(set bdd.Ref, h Header) bool {
	var a [NumVars]byte
	fillAssignment(&a, h)
	return s.T.Eval(set, a[:])
}

// ContainsView is Contains evaluated against an immutable BDD view instead
// of the live table — the lock-free verification path: many goroutines may
// call it concurrently while a writer keeps extending the underlying table
// (the view's refs stay valid because the node array is append-only).
//
//lint:allocfree
func (s *Space) ContainsView(v bdd.View, set bdd.Ref, h Header) bool {
	var a [NumVars]byte
	fillAssignment(&a, h)
	return v.Eval(set, a[:])
}

// assignment expands a concrete header into a full 104-variable assignment
// (heap-allocating; hot paths use fillAssignment with a stack array).
func (s *Space) assignment(h Header) []byte {
	var a [NumVars]byte
	fillAssignment(&a, h)
	return a[:]
}

// fillAssignment writes h's bits into a caller-provided array.
//
//lint:allocfree
func fillAssignment(a *[NumVars]byte, h Header) {
	fillField(a, SrcIPOffset, SrcIPBits, h.SrcIP)
	fillField(a, DstIPOffset, DstIPBits, h.DstIP)
	fillField(a, ProtoOffset, ProtoBits, uint32(h.Proto))
	fillField(a, SrcPortOffset, SrcPortBits, uint32(h.SrcPort))
	fillField(a, DstPortOffset, DstPortBits, uint32(h.DstPort))
}

// fillField writes one field's big-endian bits into the assignment array.
//
//lint:allocfree
func fillField(a *[NumVars]byte, offset, bits int, value uint32) {
	for i := 0; i < bits; i++ {
		a[offset+i] = byte(value >> (bits - 1 - i) & 1)
	}
}

// Witness extracts one concrete header from a non-empty header set,
// defaulting unconstrained bits to zero except the protocol, which defaults
// to TCP so that synthesized witness packets carry a parseable transport
// header. It returns ok=false iff the set is empty. Traffic generation uses
// this to build one test packet per path (§6.4).
func (s *Space) Witness(set bdd.Ref) (Header, bool) {
	a, ok := s.T.AnySat(set)
	if !ok {
		return Header{}, false
	}
	read := func(offset, bits int, dflt uint32) uint32 {
		var v uint32
		allFree := true
		for i := 0; i < bits; i++ {
			bit := a[offset+i]
			if bit != bdd.DontCare {
				allFree = false
			}
			v <<= 1
			if bit == 1 {
				v |= 1
			}
		}
		if allFree {
			return dflt
		}
		return v
	}
	h := Header{
		SrcIP:   read(SrcIPOffset, SrcIPBits, 0),
		DstIP:   read(DstIPOffset, DstIPBits, 0),
		Proto:   uint8(read(ProtoOffset, ProtoBits, ProtoTCP)),
		SrcPort: uint16(read(SrcPortOffset, SrcPortBits, 0)),
		DstPort: uint16(read(DstPortOffset, DstPortBits, 0)),
	}
	return h, true
}
