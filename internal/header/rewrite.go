// Header rewrites — the paper's future work item (1): "incorporating
// header rewrites into the current VeriDP framework, in order to support
// actions that need to modify packet headers" (§8).
//
// A Rewrite pins selected 5-tuple fields to new values (the OpenFlow
// set-field actions NAT, load balancing, and service chaining use). The
// concrete form applies to one packet; Transform lifts it to header sets:
// existentially quantify the rewritten field's variables, then constrain
// them to the new value — exactly the image of the set under the rewrite.

package header

import (
	"fmt"
	"strings"

	"veridp/internal/bdd"
)

// Rewrite pins selected header fields to fixed values.
type Rewrite struct {
	SetSrcIP   bool
	SrcIP      uint32
	SetDstIP   bool
	DstIP      uint32
	SetSrcPort bool
	SrcPort    uint16
	SetDstPort bool
	DstPort    uint16
}

// IsZero reports whether the rewrite changes nothing.
func (rw *Rewrite) IsZero() bool {
	return rw == nil || !(rw.SetSrcIP || rw.SetDstIP || rw.SetSrcPort || rw.SetDstPort)
}

// Apply returns the rewritten header.
func (rw *Rewrite) Apply(h Header) Header {
	if rw == nil {
		return h
	}
	if rw.SetSrcIP {
		h.SrcIP = rw.SrcIP
	}
	if rw.SetDstIP {
		h.DstIP = rw.DstIP
	}
	if rw.SetSrcPort {
		h.SrcPort = rw.SrcPort
	}
	if rw.SetDstPort {
		h.DstPort = rw.DstPort
	}
	return h
}

// String renders the rewrite's assignments.
func (rw *Rewrite) String() string {
	if rw.IsZero() {
		return "rewrite{}"
	}
	var parts []string
	if rw.SetSrcIP {
		parts = append(parts, "src="+IPString(rw.SrcIP))
	}
	if rw.SetDstIP {
		parts = append(parts, "dst="+IPString(rw.DstIP))
	}
	if rw.SetSrcPort {
		parts = append(parts, fmt.Sprintf("sport=%d", rw.SrcPort))
	}
	if rw.SetDstPort {
		parts = append(parts, fmt.Sprintf("dport=%d", rw.DstPort))
	}
	return "rewrite{" + strings.Join(parts, ",") + "}"
}

// Equal compares two rewrites (nil equals the zero rewrite).
func (rw *Rewrite) Equal(o *Rewrite) bool {
	a, b := Rewrite{}, Rewrite{}
	if rw != nil {
		a = *rw
	}
	if o != nil {
		b = *o
	}
	return a == b
}

// Preimage returns {h : rw.Apply(h) ∈ set}: the headers that land inside
// set after the rewrite. Used to evaluate out-bound ACLs, which see the
// rewritten packet, against pre-rewrite header sets.
func (s *Space) Preimage(set bdd.Ref, rw *Rewrite) bdd.Ref {
	if rw.IsZero() || set == bdd.False || set == bdd.True {
		return set
	}
	out := set
	apply := func(offset, bits int, value uint32) {
		// Fix the field to its post-rewrite value, then free it: the
		// original field value is unconstrained.
		out = s.T.And(out, s.fieldEq(offset, bits, value))
		out = s.T.Exists(out, offset, offset+bits-1)
	}
	if rw.SetSrcIP {
		apply(SrcIPOffset, SrcIPBits, rw.SrcIP)
	}
	if rw.SetDstIP {
		apply(DstIPOffset, DstIPBits, rw.DstIP)
	}
	if rw.SetSrcPort {
		apply(SrcPortOffset, SrcPortBits, uint32(rw.SrcPort))
	}
	if rw.SetDstPort {
		apply(DstPortOffset, DstPortBits, uint32(rw.DstPort))
	}
	return out
}

// Transform returns the image of a header set under the rewrite: exactly
// the headers rw.Apply can produce from members of the set.
func (s *Space) Transform(set bdd.Ref, rw *Rewrite) bdd.Ref {
	if rw.IsZero() || set == bdd.False {
		return set
	}
	out := set
	apply := func(offset, bits int, value uint32) {
		out = s.T.Exists(out, offset, offset+bits-1)
		out = s.T.And(out, s.fieldEq(offset, bits, value))
	}
	if rw.SetSrcIP {
		apply(SrcIPOffset, SrcIPBits, rw.SrcIP)
	}
	if rw.SetDstIP {
		apply(DstIPOffset, DstIPBits, rw.DstIP)
	}
	if rw.SetSrcPort {
		apply(SrcPortOffset, SrcPortBits, uint32(rw.SrcPort))
	}
	if rw.SetDstPort {
		apply(DstPortOffset, DstPortBits, uint32(rw.DstPort))
	}
	return out
}
