package core

import (
	"testing"

	"veridp/internal/dataplane"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/packet"
	"veridp/internal/topo"
)

// driveAndRepair injects the flow, expects a verification failure, runs
// the repair, and asserts the next packet verifies.
func driveAndRepair(t *testing.T, f *dataplane.Fabric, pt *PathTable, src string, h header.Header) *RepairPlan {
	t.Helper()
	res, err := f.InjectFromHost(src, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) == 0 {
		t.Fatalf("no report (outcome %v)", res.Outcome)
	}
	rep := res.Reports[len(res.Reports)-1]
	if pt.Verify(rep).OK {
		t.Fatal("fault escaped verification")
	}
	plan, err := pt.Repair(rep, &dataplane.FabricInstaller{Fabric: f})
	if err != nil {
		t.Fatal(err)
	}
	// The same flow must now verify end to end.
	res, err = f.InjectFromHost(src, h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != dataplane.OutcomeDelivered && res.Outcome != dataplane.OutcomeDropped {
		t.Fatalf("post-repair outcome %v", res.Outcome)
	}
	for _, r := range res.Reports {
		if v := pt.Verify(r); !v.OK {
			t.Fatalf("still inconsistent after repair: %v", v.Reason)
		}
	}
	return plan
}

func TestRepairWrongPort(t *testing.T) {
	n := topo.Figure5()
	f, c, ids := figure5Rules(t, n)
	pt := buildTable(n, c)
	s1 := n.SwitchByName("S1").ID
	if err := f.Switch(s1).Config.Table.Modify(ids["r3"], func(r *flowtable.Rule) { r.OutPort = 4 }); err != nil {
		t.Fatal(err)
	}
	ssh := header.Header{SrcIP: ip("10.0.1.1"), DstIP: ip("10.0.2.1"), Proto: header.ProtoTCP, DstPort: 22}
	plan := driveAndRepair(t, f, pt, "H1", ssh)
	if plan.Switch != s1 || len(plan.Rules) != 1 || plan.Rules[0].ID != ids["r3"] {
		t.Fatalf("plan %+v", plan)
	}
	// The physical rule equals the logical one again.
	phys := f.Switch(s1).Config.Table.Get(ids["r3"])
	if phys == nil || phys.OutPort != 3 {
		t.Fatalf("physical rule after repair: %+v", phys)
	}
}

func TestRepairBlackhole(t *testing.T) {
	n := topo.Figure5()
	f, c, ids := figure5Rules(t, n)
	pt := buildTable(n, c)
	s1 := n.SwitchByName("S1").ID
	if err := f.Switch(s1).Config.Table.Modify(ids["r4"], func(r *flowtable.Rule) { r.Action = flowtable.ActDrop }); err != nil {
		t.Fatal(err)
	}
	web := header.Header{SrcIP: ip("10.0.1.1"), DstIP: ip("10.0.2.1"), Proto: header.ProtoTCP, DstPort: 80}
	driveAndRepair(t, f, pt, "H1", web)
}

func TestRepairEviction(t *testing.T) {
	n := topo.Figure5()
	f, c, ids := figure5Rules(t, n)
	pt := buildTable(n, c)
	s1 := n.SwitchByName("S1").ID
	// The SSH redirect vanishes; SSH falls through to the direct route.
	if err := f.Switch(s1).Config.Table.Delete(ids["r3"]); err != nil {
		t.Fatal(err)
	}
	ssh := header.Header{SrcIP: ip("10.0.1.1"), DstIP: ip("10.0.2.1"), Proto: header.ProtoTCP, DstPort: 22}
	driveAndRepair(t, f, pt, "H1", ssh)
	if f.Switch(s1).Config.Table.Get(ids["r3"]) == nil {
		t.Fatal("evicted rule not re-installed")
	}
}

func TestPlanRepairErrors(t *testing.T) {
	n := topo.Figure5()
	_, c, _ := figure5Rules(t, n)
	pt := buildTable(n, c)
	// A report with no recoverable candidates.
	bogus := &packet.Report{
		Inport:  topo.PortKey{Switch: 77, Port: 1},
		Outport: topo.PortKey{Switch: 78, Port: 1},
	}
	if _, err := pt.PlanRepair(bogus); err == nil {
		t.Fatal("repair planned for an unlocalizable report")
	}
}
