package core

import (
	"fmt"
	"math/rand"
	"testing"

	"veridp/internal/bdd"
	"veridp/internal/bloom"
	"veridp/internal/controller"
	"veridp/internal/dataplane"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/packet"
	"veridp/internal/topo"
)

func ip(s string) uint32 { return header.MustParseIP(s) }

// figure5Rules installs the paper's Figure 5 rule set through a controller
// (so logical and physical configurations start identical) and returns the
// fabric, controller, and the rule IDs of interest.
func figure5Rules(t *testing.T, n *topo.Network) (*dataplane.Fabric, *controller.Controller, map[string]uint64) {
	t.Helper()
	f := dataplane.NewFabric(n)
	c := controller.New(n, &dataplane.FabricInstaller{Fabric: f})
	s1 := n.SwitchByName("S1").ID
	s2 := n.SwitchByName("S2").ID
	s3 := n.SwitchByName("S3").ID
	ids := map[string]uint64{}
	add := func(name string, sw topo.SwitchID, r flowtable.Rule) {
		id, err := c.InstallRule(sw, r)
		if err != nil {
			t.Fatalf("installing %s: %v", name, err)
		}
		ids[name] = id
	}
	// S1: local delivery, SSH redirect (rule 3), default toward S3 (rule 4).
	add("s1-h1", s1, flowtable.Rule{Priority: 30, Match: flowtable.Match{DstPrefix: flowtable.Prefix{IP: ip("10.0.1.1"), Len: 32}}, Action: flowtable.ActOutput, OutPort: 1})
	add("s1-h2", s1, flowtable.Rule{Priority: 30, Match: flowtable.Match{DstPrefix: flowtable.Prefix{IP: ip("10.0.1.2"), Len: 32}}, Action: flowtable.ActOutput, OutPort: 2})
	add("r3", s1, flowtable.Rule{Priority: 20, Match: flowtable.Match{DstPrefix: flowtable.Prefix{IP: ip("10.0.2.0"), Len: 24}, HasDst: true, DstPort: 22}, Action: flowtable.ActOutput, OutPort: 3})
	add("r4", s1, flowtable.Rule{Priority: 10, Match: flowtable.Match{DstPrefix: flowtable.Prefix{IP: ip("10.0.2.0"), Len: 24}}, Action: flowtable.ActOutput, OutPort: 4})
	// S2: port-1 traffic to the middlebox (rule 5), returns continue to S3
	// (rule 6).
	add("r5", s2, flowtable.Rule{Priority: 10, Match: flowtable.Match{InPort: 1}, Action: flowtable.ActOutput, OutPort: 3})
	add("r6", s2, flowtable.Rule{Priority: 10, Match: flowtable.Match{InPort: 3}, Action: flowtable.ActOutput, OutPort: 2})
	// S3: drop H2's traffic (rule 8), deliver to H3, route back to S1.
	add("r8", s3, flowtable.Rule{Priority: 30, Match: flowtable.Match{SrcPrefix: flowtable.Prefix{IP: ip("10.0.1.2"), Len: 32}}, Action: flowtable.ActDrop})
	add("s3-h3", s3, flowtable.Rule{Priority: 20, Match: flowtable.Match{DstPrefix: flowtable.Prefix{IP: ip("10.0.2.0"), Len: 24}}, Action: flowtable.ActOutput, OutPort: 2})
	add("s3-back", s3, flowtable.Rule{Priority: 10, Match: flowtable.Match{DstPrefix: flowtable.Prefix{IP: ip("10.0.1.0"), Len: 24}}, Action: flowtable.ActOutput, OutPort: 3})
	return f, c, ids
}

// buildTable constructs the path table from the controller's logical view.
func buildTable(n *topo.Network, c *controller.Controller) *PathTable {
	b := &Builder{
		Net:     n,
		Space:   header.NewSpace(),
		Params:  bloom.DefaultParams,
		Configs: c.Logical(),
	}
	return b.Build()
}

func TestBuildFigure5Table1(t *testing.T) {
	n := topo.Figure5()
	_, c, _ := figure5Rules(t, n)
	pt := buildTable(n, c)

	s1 := n.SwitchByName("S1").ID
	s2 := n.SwitchByName("S2").ID
	s3 := n.SwitchByName("S3").ID
	in := topo.PortKey{Switch: s1, Port: 1}
	out := topo.PortKey{Switch: s3, Port: 2}

	entries := pt.Lookup(in, out)
	if len(entries) != 2 {
		t.Fatalf("pair (⟨S1,1⟩,⟨S3,2⟩) has %d paths, Table 1 shows 2: %v", len(entries), entries)
	}
	// Identify the SSH-via-middlebox path (4 hops) and the direct path (2).
	var mb, direct *PathEntry
	for _, e := range entries {
		switch len(e.Path) {
		case 4:
			mb = e
		case 2:
			direct = e
		}
	}
	if mb == nil || direct == nil {
		t.Fatalf("expected a 4-hop and a 2-hop path, got %v", entries)
	}
	wantMB := topo.Path{{In: 1, Switch: s1, Out: 3}, {In: 1, Switch: s2, Out: 3}, {In: 3, Switch: s2, Out: 2}, {In: 1, Switch: s3, Out: 2}}
	for i := range wantMB {
		if mb.Path[i] != wantMB[i] {
			t.Fatalf("middlebox path %v, want %v", mb.Path, wantMB)
		}
	}
	// Table 1 header sets: SSH in the middlebox path, non-SSH in the direct.
	ssh := header.Header{SrcIP: ip("10.0.1.1"), DstIP: ip("10.0.2.1"), Proto: header.ProtoTCP, DstPort: 22}
	web := ssh
	web.DstPort = 80
	if !pt.Space.Contains(mb.Headers, ssh) || pt.Space.Contains(mb.Headers, web) {
		t.Fatal("middlebox path headers wrong")
	}
	if !pt.Space.Contains(direct.Headers, web) || pt.Space.Contains(direct.Headers, ssh) {
		t.Fatal("direct path headers wrong")
	}
	// Tags are the Bloom folds of the hops.
	var tag bloom.Tag
	for _, hop := range wantMB {
		tag = tag.Union(pt.Params.Hash(hop.Bytes()))
	}
	if mb.Tag != tag {
		t.Fatalf("middlebox tag %v, want %v", mb.Tag, tag)
	}
	// Table 1 row 3: H2's traffic is dropped at S3.
	dropKey := topo.PortKey{Switch: s3, Port: topo.DropPort}
	h2in := topo.PortKey{Switch: s1, Port: 2}
	dropped := pt.Lookup(h2in, dropKey)
	if len(dropped) == 0 {
		t.Fatal("no drop path for H2's traffic")
	}
	h2pkt := header.Header{SrcIP: ip("10.0.1.2"), DstIP: ip("10.0.2.1"), Proto: header.ProtoTCP, DstPort: 80}
	found := false
	for _, e := range dropped {
		if pt.Space.Contains(e.Headers, h2pkt) {
			found = true
		}
	}
	if !found {
		t.Fatal("H2's packet not in any drop path")
	}
}

// TestNoFalsePositives is the core §6.3 claim: when the data plane matches
// the control plane, every report verifies.
func TestNoFalsePositives(t *testing.T) {
	n := topo.Figure5()
	f, c, _ := figure5Rules(t, n)
	pt := buildTable(n, c)
	rng := rand.New(rand.NewSource(5))

	hosts := []string{"H1", "H2", "H3"}
	ipOf := map[string]uint32{"H1": ip("10.0.1.1"), "H2": ip("10.0.1.2"), "H3": ip("10.0.2.1")}
	for trial := 0; trial < 300; trial++ {
		src := hosts[rng.Intn(3)]
		dst := hosts[rng.Intn(3)]
		if src == dst {
			continue
		}
		h := header.Header{
			SrcIP: ipOf[src], DstIP: ipOf[dst], Proto: header.ProtoTCP,
			SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(1024)),
		}
		res, err := f.InjectFromHost(src, h)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Reports {
			if v := pt.Verify(r); !v.OK {
				t.Fatalf("consistent network failed verification: %v → %v (%v), report %v, path %v",
					src, dst, v.Reason, r, res.Path)
			}
		}
	}
}

func TestDetectsWrongPort(t *testing.T) {
	// Fault: S1's SSH redirect (rule 3) misforwards out port 4 (the direct
	// link) instead of port 3 — the paper's "path deviation" case.
	n := topo.Figure5()
	f, c, ids := figure5Rules(t, n)
	pt := buildTable(n, c)

	s1 := n.SwitchByName("S1").ID
	if err := f.Switch(s1).Config.Table.Modify(ids["r3"], func(r *flowtable.Rule) { r.OutPort = 4 }); err != nil {
		t.Fatal(err)
	}
	ssh := header.Header{SrcIP: ip("10.0.1.1"), DstIP: ip("10.0.2.1"), Proto: header.ProtoTCP, DstPort: 22}
	res, err := f.InjectFromHost("H1", ssh)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != dataplane.OutcomeDelivered {
		t.Fatalf("outcome %v", res.Outcome)
	}
	v := pt.Verify(res.Reports[0])
	if v.OK {
		t.Fatal("wrong-port fault escaped verification")
	}
	if v.Reason != FailTagMismatch {
		t.Fatalf("reason = %v, want tag mismatch", v.Reason)
	}

	// Localization: PathInfer must recover the actual path and blame S1.
	sw, candidates, ok := pt.Localize(res.Reports[0])
	if !ok {
		t.Fatal("localization found no candidate path")
	}
	if sw != s1 {
		t.Fatalf("blamed switch %d, want S1=%d (candidates %v)", sw, s1, candidates)
	}
	foundReal := false
	for _, cand := range candidates {
		if samePath(cand, res.Path) {
			foundReal = true
		}
	}
	if !foundReal {
		t.Fatalf("real path %v not among candidates %v", res.Path, candidates)
	}
}

func TestDetectsBlackhole(t *testing.T) {
	// Fault: rule 4 at S1 turns into a drop — the §6.2 black-hole case.
	n := topo.Figure5()
	f, c, ids := figure5Rules(t, n)
	pt := buildTable(n, c)

	s1 := n.SwitchByName("S1").ID
	if err := f.Switch(s1).Config.Table.Modify(ids["r4"], func(r *flowtable.Rule) { r.Action = flowtable.ActDrop }); err != nil {
		t.Fatal(err)
	}
	web := header.Header{SrcIP: ip("10.0.1.1"), DstIP: ip("10.0.2.1"), Proto: header.ProtoTCP, DstPort: 80}
	res, err := f.InjectFromHost("H1", web)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != dataplane.OutcomeDropped {
		t.Fatalf("outcome %v", res.Outcome)
	}
	v := pt.Verify(res.Reports[0])
	if v.OK {
		t.Fatal("black hole escaped verification")
	}
	// The report exits at ⟨S1,⊥⟩, a pair with no legitimate path for this
	// header.
	if v.Reason != FailNoPair && v.Reason != FailNoHeaderMatch {
		t.Fatalf("reason = %v", v.Reason)
	}
}

func TestDetectsACLViolation(t *testing.T) {
	// Fault: S3's deny rule (rule 8) vanishes from the data plane — the
	// §6.2 access-violation case. H2's packets now reach H3.
	n := topo.Figure5()
	f, c, ids := figure5Rules(t, n)
	pt := buildTable(n, c)

	s3 := n.SwitchByName("S3").ID
	if err := f.Switch(s3).Config.Table.Delete(ids["r8"]); err != nil {
		t.Fatal(err)
	}
	h := header.Header{SrcIP: ip("10.0.1.2"), DstIP: ip("10.0.2.1"), Proto: header.ProtoTCP, DstPort: 80}
	res, err := f.InjectFromHost("H2", h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != dataplane.OutcomeDelivered {
		t.Fatalf("outcome %v — the ACL should have been bypassed", res.Outcome)
	}
	v := pt.Verify(res.Reports[0])
	if v.OK {
		t.Fatal("access violation escaped verification")
	}
}

func TestIntendedPathMatchesDataPlane(t *testing.T) {
	// With no faults, IntendedPath must equal the path packets take.
	n := topo.Figure5()
	f, c, _ := figure5Rules(t, n)
	pt := buildTable(n, c)
	for _, tc := range []struct {
		src string
		h   header.Header
	}{
		{"H1", header.Header{SrcIP: ip("10.0.1.1"), DstIP: ip("10.0.2.1"), Proto: 6, DstPort: 22}},
		{"H1", header.Header{SrcIP: ip("10.0.1.1"), DstIP: ip("10.0.2.1"), Proto: 6, DstPort: 80}},
		{"H2", header.Header{SrcIP: ip("10.0.1.2"), DstIP: ip("10.0.2.1"), Proto: 6, DstPort: 80}},
	} {
		res, err := f.InjectFromHost(tc.src, tc.h)
		if err != nil {
			t.Fatal(err)
		}
		intended := pt.IntendedPath(n.Host(tc.src).Attach, tc.h)
		if !samePath(intended, res.Path) {
			t.Fatalf("intended %v != actual %v for %v", intended, res.Path, tc.h)
		}
	}
}

func TestFaultySwitchComparison(t *testing.T) {
	a := topo.Path{{In: 1, Switch: 1, Out: 2}, {In: 1, Switch: 2, Out: 2}, {In: 1, Switch: 4, Out: 3}}
	b := topo.Path{{In: 1, Switch: 1, Out: 4}, {In: 1, Switch: 3, Out: 3}, {In: 1, Switch: 6, Out: topo.DropPort}}
	sw, ok := FaultySwitch(a, b)
	if !ok || sw != 1 {
		t.Fatalf("FaultySwitch = %d, %v; want 1", sw, ok)
	}
	if _, ok := FaultySwitch(a, a); ok {
		t.Fatal("identical paths blamed a switch")
	}
	// Prefix divergence.
	sw, ok = FaultySwitch(a[:2], a)
	if !ok || sw != 4 {
		t.Fatalf("prefix divergence: %d, %v", sw, ok)
	}
}

// TestFigure7Localization reproduces the paper's Figure 7 walk-through: S1
// misforwards to port 4; the packet ends dropped at S6; PathInfer must
// recover the real path S1→S3→S6 and blame S1, not S6.
func TestFigure7Localization(t *testing.T) {
	n := topo.Figure7()
	f := dataplane.NewFabric(n)
	c := controller.New(n, &dataplane.FabricInstaller{Fabric: f})
	if err := c.RouteAllHosts(); err != nil {
		t.Fatal(err)
	}
	pt := buildTable(n, c)

	s1 := n.SwitchByName("S1")
	// Fault: the route toward Dst at S1 goes out port 4 (to S3) instead of
	// port 2 (to S2). S3 and S6 have no rule for Dst → dropped at S3...
	// to match the figure, give S3 a stray rule pushing it to S6.
	dst := n.Host("Dst")
	var routeRule *flowtable.Rule
	for _, r := range f.Switch(s1.ID).Config.Table.Rules() {
		if r.Match.DstPrefix.Matches(dst.IP) && r.Match.DstPrefix.Len == 32 {
			routeRule = r
		}
	}
	if routeRule == nil {
		t.Fatal("no route rule at S1")
	}
	f.Switch(s1.ID).Config.Table.Modify(routeRule.ID, func(r *flowtable.Rule) { r.OutPort = 4 })
	// S3 already routes toward Dst per the controller (via its shortest
	// path). Check where the packet actually goes and that localization
	// recovers it.
	h := header.Header{SrcIP: n.Host("Src").IP, DstIP: dst.IP, Proto: header.ProtoTCP, DstPort: 80}
	res, err := f.InjectFromHost("Src", h)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) == 0 {
		t.Fatalf("no report (outcome %v, path %v)", res.Outcome, res.Path)
	}
	rep := res.Reports[len(res.Reports)-1]
	if v := pt.Verify(rep); v.OK {
		t.Fatal("fault escaped verification")
	}
	sw, candidates, ok := pt.Localize(rep)
	if !ok {
		t.Fatalf("no candidates (real path %v)", res.Path)
	}
	if sw != s1.ID {
		t.Fatalf("blamed %d, want S1=%d; candidates %v, real %v", sw, s1.ID, candidates, res.Path)
	}
}

func TestVerifyUnknownPair(t *testing.T) {
	n := topo.Figure5()
	_, c, _ := figure5Rules(t, n)
	pt := buildTable(n, c)
	r := &packet.Report{
		Inport:  topo.PortKey{Switch: 99, Port: 1},
		Outport: topo.PortKey{Switch: 98, Port: 1},
	}
	if v := pt.Verify(r); v.OK || v.Reason != FailNoPair {
		t.Fatalf("verdict %v", v)
	}
}

func TestStatsOnFatTree(t *testing.T) {
	n := topo.FatTree(4)
	f := dataplane.NewFabric(n)
	c := controller.New(n, &dataplane.FabricInstaller{Fabric: f})
	if err := c.RouteAllHosts(); err != nil {
		t.Fatal(err)
	}
	pt := buildTable(n, c)
	st := pt.Stats()
	if st.Pairs == 0 || st.Paths == 0 {
		t.Fatalf("empty stats: %+v", st)
	}
	// 16 hosts: every ordered pair has a delivery path, plus drop pairs
	// for unroutable traffic.
	if st.Paths < 16*15 {
		t.Fatalf("paths = %d, want ≥ 240", st.Paths)
	}
	if st.AvgPathLength < 1 || st.AvgPathLength > 6 {
		t.Fatalf("avg path length %v out of range", st.AvgPathLength)
	}
	dist := pt.PathsPerPair()
	total := 0
	for _, d := range dist {
		total += d
	}
	if total != st.Paths {
		t.Fatalf("distribution sums to %d, stats say %d", total, st.Paths)
	}
}

// snapshot serializes a path table for structural comparison.
func snapshot(pt *PathTable) map[string]bdd.Ref {
	out := make(map[string]bdd.Ref)
	pt.Entries(func(in, outK topo.PortKey, e *PathEntry) {
		key := fmt.Sprintf("%v|%v|%v|%v", in, outK, e.Path, e.Tag)
		if prev, ok := out[key]; ok {
			out[key] = pt.Space.T.Or(prev, e.Headers)
		} else {
			out[key] = e.Headers
		}
	})
	return out
}

// TestIncrementalMatchesScratch drives random prefix-rule adds/deletes
// through ApplyDelta and checks the table equals a scratch rebuild — the
// §4.4 correctness claim.
func TestIncrementalMatchesScratch(t *testing.T) {
	n := topo.Linear(4, 2)
	space := header.NewSpace()
	rng := rand.New(rand.NewSource(23))

	// Start from connectivity routes compiled by a controller.
	f := dataplane.NewFabric(n)
	c := controller.New(n, &dataplane.FabricInstaller{Fabric: f})
	if err := c.RouteAllHosts(); err != nil {
		t.Fatal(err)
	}

	// Mirror every switch's rules into a PrefixTree, seeding deltas.
	trees := make(map[topo.SwitchID]*flowtable.PrefixTree)
	treeIDs := make(map[topo.SwitchID]map[uint64]uint64) // tree id → table id
	for _, sw := range n.Switches() {
		trees[sw.ID] = flowtable.NewPrefixTree(space, sw.Ports())
		treeIDs[sw.ID] = make(map[uint64]uint64)
		for _, r := range c.Logical()[sw.ID].Table.Rules() {
			tid, _, err := trees[sw.ID].Insert(r.Match.DstPrefix, r.OutPort)
			if err != nil {
				t.Fatal(err)
			}
			treeIDs[sw.ID][tid] = r.ID
		}
	}

	build := func() *PathTable {
		return (&Builder{Net: n, Space: space, Params: bloom.DefaultParams, Configs: c.Logical()}).Build()
	}
	pt := build()

	type liveRule struct {
		sw     topo.SwitchID
		treeID uint64
	}
	var liveRules []liveRule
	sws := n.Switches()
	for step := 0; step < 60; step++ {
		if len(liveRules) == 0 || rng.Intn(3) != 0 {
			// Add a random prefix rule.
			sw := sws[rng.Intn(len(sws))]
			ports := sw.Ports()
			port := ports[rng.Intn(len(ports))]
			pfx := flowtable.Prefix{IP: uint32(10)<<24 | rng.Uint32()&0x00ffffff, Len: 10 + rng.Intn(20)}.Canonical()
			tid, delta, err := trees[sw.ID].Insert(pfx, port)
			if err != nil {
				continue // duplicate prefix
			}
			// Mirror into the logical table so scratch rebuilds agree.
			id, err := c.InstallRule(sw.ID, flowtable.Rule{
				Priority: uint16(pfx.Len),
				Match:    flowtable.Match{DstPrefix: pfx},
				Action:   flowtable.ActOutput,
				OutPort:  port,
			})
			if err != nil {
				t.Fatal(err)
			}
			treeIDs[sw.ID][tid] = id
			if err := pt.ApplyDelta(sw.ID, delta); err != nil {
				t.Fatal(err)
			}
			liveRules = append(liveRules, liveRule{sw.ID, tid})
		} else {
			// Remove a random previously-added rule.
			i := rng.Intn(len(liveRules))
			lr := liveRules[i]
			delta, err := trees[lr.sw].Remove(lr.treeID)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.RemoveRule(lr.sw, treeIDs[lr.sw][lr.treeID]); err != nil {
				t.Fatal(err)
			}
			if err := pt.ApplyDelta(lr.sw, delta); err != nil {
				t.Fatal(err)
			}
			liveRules = append(liveRules[:i], liveRules[i+1:]...)
		}
	}

	pt.Compact()
	fresh := build()
	got, want := snapshot(pt), snapshot(fresh)
	for k, h := range want {
		if got[k] != h {
			t.Fatalf("entry %s: incremental headers %v, scratch %v", k, got[k], h)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Fatalf("incremental has spurious entry %s", k)
		}
	}
}
