// Equivalence-class verdict cache: the hot-path answer to §6.4's per-report
// verdict cost. Sampled traffic is heavily repetitive — a handful of elephant
// flows dominate any Zipf-skewed workload — so the common case should be a
// constant-time hash probe, not a BDD membership walk. The cache maps the
// exact report bytes ⟨inport, outport, header, tag, mbits⟩ to the verdict the
// snapshot produced for them, stamped with the snapshot's epoch.
//
// Invalidation is free: every publication mints a process-unique epoch
// (handle.go), and a probe only accepts an entry whose stamp equals the
// epoch of the snapshot being verified against. Publishing a new snapshot
// therefore kills every cached entry at once — no flush, no writer
// coordination, no shootdown. A stale epoch can never serve a stale verdict
// because epochs are never reused (global counter), so an entry stamped e
// can only ever be served to a verification pinned to the one snapshot that
// carried e — and snapshots are immutable.
//
// Concurrency: a VerdictCache is single-writer. Each collector worker (or
// measurement loop) owns one outright, so slot reads and writes need no
// atomics. Only the hit/miss counters are atomic, because stats readers
// fold them from other goroutines.

package core

import (
	"sync/atomic"

	"veridp/internal/packet"
)

// vcDefaultBits sizes the cache when NewVerdictCache is given bits <= 0:
// 2^12 = 4096 slots ≈ 192 KiB per worker, comfortably larger than the
// distinct-flow working set of a skewed workload.
const vcDefaultBits = 12

// vcMaxBits caps the cache at 2^20 slots so a typo'd knob cannot ask for
// gigabytes.
const vcMaxBits = 20

// vcProbeWindow is the linear-probe length. Past it, store evicts the home
// slot; probe gives up and reports a miss. Misses are always safe (the
// caller recomputes), so a short window trades hit rate for bounded work.
const vcProbeWindow = 8

// vcKey packs the full 34-byte report wire encoding into four words. The
// wire format truncates switch and port IDs to 16 bits (packet.Marshal), so
// the packing is lossless: two reports with equal keys are byte-identical
// and must receive the identical verdict.
type vcKey struct {
	k0 uint64 // in.switch<<48 | in.port<<32 | out.switch<<16 | out.port
	k1 uint64 // srcIP<<32 | dstIP
	k2 uint64 // proto<<48 | srcPort<<32 | dstPort<<16 | mbits
	k3 uint64 // tag
}

// keyOf packs a report into its cache key.
//
//lint:allocfree
func keyOf(r *packet.Report) vcKey {
	return vcKey{
		k0: uint64(uint16(r.Inport.Switch))<<48 | uint64(uint16(r.Inport.Port))<<32 |
			uint64(uint16(r.Outport.Switch))<<16 | uint64(uint16(r.Outport.Port)),
		k1: uint64(r.Header.SrcIP)<<32 | uint64(r.Header.DstIP),
		k2: uint64(r.Header.Proto)<<48 | uint64(r.Header.SrcPort)<<32 |
			uint64(r.Header.DstPort)<<16 | uint64(r.MBits),
		k3: uint64(r.Tag),
	}
}

// mix64 is the splitmix64 finalizer: full avalanche over 64 bits.
//
//lint:allocfree
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hash folds the key words through the mixer.
//
//lint:allocfree
func (k vcKey) hash() uint64 {
	return mix64(k.k0 ^ mix64(k.k1^mix64(k.k2^mix64(k.k3))))
}

// vcSlot is one packed cache entry. meta encodes epoch<<8 | reason<<1 | ok;
// meta==0 marks an empty slot (epochs start at 1, so no live entry encodes
// to zero). Slots are never cleared: an entry dies by its epoch going stale,
// and the slot is reused by the next store that lands on it.
type vcSlot struct {
	key     vcKey
	meta    uint64
	matched *PathEntry
}

// VerdictCache is a fixed-size, power-of-two, open-addressed verdict cache.
// Single-writer: probe and store must be called from one goroutine only
// (give each worker its own cache); Hits and Misses may be read from any.
type VerdictCache struct {
	slots []vcSlot // fixed after NewVerdictCache; single-writer slots
	mask  uint64

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewVerdictCache builds a cache with 2^bits slots. bits <= 0 selects the
// default size; oversized requests are clamped.
func NewVerdictCache(bits int) *VerdictCache {
	if bits <= 0 {
		bits = vcDefaultBits
	}
	if bits > vcMaxBits {
		bits = vcMaxBits
	}
	n := 1 << bits
	return &VerdictCache{slots: make([]vcSlot, n), mask: uint64(n - 1)}
}

// probe looks the key up under the given epoch. Hitting an empty slot ends
// the scan early: slots are never cleared, so a slot empty now was empty at
// every earlier store, and no entry for this key can live beyond it.
//
//lint:allocfree
func (c *VerdictCache) probe(k vcKey, epoch uint64) (Verdict, bool) {
	h := k.hash()
	for d := uint64(0); d < vcProbeWindow; d++ {
		s := &c.slots[(h+d)&c.mask]
		if s.meta == 0 {
			return Verdict{}, false
		}
		if s.key == k && s.meta>>8 == epoch {
			return Verdict{
				OK:      s.meta&1 == 1,
				Reason:  FailReason(s.meta >> 1 & 0x7f),
				Matched: s.matched,
			}, true
		}
	}
	return Verdict{}, false
}

// store records the verdict computed for k under epoch. It fills the first
// empty, stale, or same-key slot in the probe window, evicting the home
// slot when the whole window holds live entries.
//
//lint:allocfree
func (c *VerdictCache) store(k vcKey, epoch uint64, v Verdict) {
	meta := epoch<<8 | uint64(v.Reason)<<1
	if v.OK {
		meta |= 1
	}
	h := k.hash()
	victim := &c.slots[h&c.mask]
	for d := uint64(0); d < vcProbeWindow; d++ {
		s := &c.slots[(h+d)&c.mask]
		if s.meta == 0 || s.meta>>8 != epoch || s.key == k {
			victim = s
			break
		}
	}
	victim.key = k
	victim.matched = v.Matched
	victim.meta = meta
}

// Hits returns the number of probes served from the cache.
func (c *VerdictCache) Hits() uint64 { return c.hits.Load() }

// Misses returns the number of probes that fell through to a full verify.
func (c *VerdictCache) Misses() uint64 { return c.misses.Load() }

// Len returns the slot count (introspection and tests).
func (c *VerdictCache) Len() int { return len(c.slots) }

// VerifyBatch verifies reports[i] into out[i] for every report, all against
// this one snapshot — the batch twin of Verify, amortizing the snapshot pin
// and the cache counter updates over the whole batch. out must be at least
// as long as reports. A nil cache degrades to plain per-report Verify
// (the uncached arm benchmarks compare against).
//
// With a cache, each report costs one hash probe when its exact bytes were
// verified before under this snapshot's epoch, and one full verify plus a
// store otherwise. Cached verdicts are identical to uncached ones — same
// OK, Reason, and Matched pointer — because the key covers every report
// byte and entries from any other epoch are unreachable.
//
//lint:allocfree
func (s *Snapshot) VerifyBatch(c *VerdictCache, reports []packet.Report, out []Verdict) {
	if c == nil {
		for i := range reports {
			out[i] = s.Verify(&reports[i])
		}
		return
	}
	var hits, misses uint64
	for i := range reports {
		k := keyOf(&reports[i])
		if v, ok := c.probe(k, s.epoch); ok {
			out[i] = v
			hits++
			continue
		}
		v := s.Verify(&reports[i])
		c.store(k, s.epoch, v)
		out[i] = v
		misses++
	}
	c.hits.Add(hits)
	c.misses.Add(misses)
}
