package core

import (
	"testing"

	"veridp/internal/bdd"
	"veridp/internal/bloom"
	"veridp/internal/dataplane"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/topo"
)

// natSetup builds a 3-switch chain where the last switch NATs a virtual IP
// onto the real server: client — s1 — s2 — s3 — server, with
// dst 203.0.113.80:80 rewritten to the server's address at s3.
func natSetup(t *testing.T) (*dataplane.Fabric, *PathTable, *topo.Network, uint64, header.Header) {
	t.Helper()
	n := topo.Linear(3, 1)
	f := dataplane.NewFabric(n)
	cfgs := make(map[topo.SwitchID]*flowtable.SwitchConfig)
	vip := header.MustParseIP("203.0.113.80")
	server := n.Host("h3-0")

	install := func(sw topo.SwitchID, r flowtable.Rule) uint64 {
		id, err := f.Switch(sw).Config.Table.Add(&r)
		if err != nil {
			t.Fatal(err)
		}
		logical := r
		logical.ID = id
		if _, err := cfgs[sw].Table.Add(&logical); err != nil {
			t.Fatal(err)
		}
		return id
	}
	for _, sw := range n.Switches() {
		cfgs[sw.ID] = flowtable.NewSwitchConfig(sw.Ports())
	}
	s1 := n.SwitchByName("s1").ID
	s2 := n.SwitchByName("s2").ID
	s3 := n.SwitchByName("s3").ID
	vipPrefix := flowtable.Prefix{IP: vip, Len: 32}
	install(s1, flowtable.Rule{Priority: 10, Match: flowtable.Match{DstPrefix: vipPrefix}, Action: flowtable.ActOutput, OutPort: 2})
	install(s2, flowtable.Rule{Priority: 10, Match: flowtable.Match{DstPrefix: vipPrefix}, Action: flowtable.ActOutput, OutPort: 2})
	natID := install(s3, flowtable.Rule{
		Priority: 10,
		Match:    flowtable.Match{DstPrefix: vipPrefix},
		Action:   flowtable.ActOutput,
		OutPort:  server.Attach.Port,
		Rewrite:  &header.Rewrite{SetDstIP: true, DstIP: server.IP},
	})

	pt := (&Builder{Net: n, Space: header.NewSpace(), Params: bloom.DefaultParams, Configs: cfgs}).Build()
	client := header.Header{
		SrcIP: n.Host("h1-0").IP, DstIP: vip,
		Proto: header.ProtoTCP, SrcPort: 43210, DstPort: 80,
	}
	return f, pt, n, natID, client
}

func TestNATPathTableContainsImage(t *testing.T) {
	_, pt, n, _, client := natSetup(t)
	in := n.Host("h1-0").Attach
	out := n.Host("h3-0").Attach
	entries := pt.Lookup(in, out)
	if len(entries) == 0 {
		t.Fatal("no path through the NAT")
	}
	rewritten := client
	rewritten.DstIP = n.Host("h3-0").IP
	foundImage := false
	for _, e := range entries {
		if pt.Space.Contains(e.Headers, rewritten) {
			foundImage = true
		}
		if pt.Space.Contains(e.Headers, client) {
			t.Fatal("path table entry still contains the pre-NAT header")
		}
	}
	if !foundImage {
		t.Fatal("rewritten header missing from the exit header set")
	}
}

func TestNATVerifiesEndToEnd(t *testing.T) {
	f, pt, n, _, client := natSetup(t)
	res, err := f.InjectFromHost("h1-0", client)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != dataplane.OutcomeDelivered || res.Exit != n.Host("h3-0").Attach {
		t.Fatalf("NAT flow not delivered: %v at %v", res.Outcome, res.Exit)
	}
	rep := res.Reports[0]
	if rep.Header.DstIP != n.Host("h3-0").IP {
		t.Fatalf("report carries pre-NAT destination %v", rep.Header)
	}
	if v := pt.Verify(rep); !v.OK {
		t.Fatalf("consistent NAT failed verification: %v", v.Reason)
	}
}

func TestNATFaultsDetected(t *testing.T) {
	// Fault 1: the NAT rewrite silently disappears (rule degraded to plain
	// forwarding). The packet reaches the server port still addressed to
	// the VIP — a header the path table's exit set cannot contain.
	f, pt, n, natID, client := natSetup(t)
	s3 := n.SwitchByName("s3").ID
	if err := f.Switch(s3).Config.Table.Modify(natID, func(r *flowtable.Rule) { r.Rewrite = nil }); err != nil {
		t.Fatal(err)
	}
	res, err := f.InjectFromHost("h1-0", client)
	if err != nil {
		t.Fatal(err)
	}
	if v := pt.Verify(res.Reports[0]); v.OK {
		t.Fatal("lost NAT rewrite escaped verification")
	}

	// Fault 2: the NAT rewrites to the wrong backend.
	f2, pt2, n2, natID2, client2 := natSetup(t)
	s3b := n2.SwitchByName("s3").ID
	wrong := header.MustParseIP("10.99.99.99")
	if err := f2.Switch(s3b).Config.Table.Modify(natID2, func(r *flowtable.Rule) {
		r.Rewrite = &header.Rewrite{SetDstIP: true, DstIP: wrong}
	}); err != nil {
		t.Fatal(err)
	}
	res2, err := f2.InjectFromHost("h1-0", client2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Reports) == 0 {
		t.Fatal("no report")
	}
	if v := pt2.Verify(res2.Reports[0]); v.OK {
		t.Fatal("wrong-backend rewrite escaped verification")
	}
}

// TestRewriteTransferEntriesDisjoint: a switch mixing rewriting and plain
// rules produces disjoint guards per pair, and traversal covers both.
func TestRewriteTransferEntriesDisjoint(t *testing.T) {
	s := header.NewSpace()
	cfg := flowtable.NewSwitchConfig([]topo.PortID{1, 2})
	vip := header.MustParseIP("203.0.113.80")
	cfg.Table.Add(&flowtable.Rule{
		Priority: 20,
		Match:    flowtable.Match{DstPrefix: flowtable.Prefix{IP: vip, Len: 32}},
		Action:   flowtable.ActOutput, OutPort: 2,
		Rewrite: &header.Rewrite{SetDstIP: true, DstIP: header.MustParseIP("10.0.0.9")},
	})
	cfg.Table.Add(&flowtable.Rule{Priority: 10, Action: flowtable.ActOutput, OutPort: 2})
	tf := cfg.TransferFuncs(s)
	entries := tf[flowtable.PortPair{In: 1, Out: 2}]
	if len(entries) != 2 {
		t.Fatalf("expected 2 transfer entries (rewrite + plain), got %d", len(entries))
	}
	if s.T.And(entries[0].Guard, entries[1].Guard) != bdd.False {
		t.Fatal("guards overlap")
	}
	union := s.T.Or(entries[0].Guard, entries[1].Guard)
	if union != s.All() {
		t.Fatal("guards should cover everything (no drops configured)")
	}
}

// TestApplyDeltaRejectsRewritingPairs: the §4.4 incremental path refuses to
// patch transfer pairs that carry rewrites.
func TestApplyDeltaRejectsRewritingPairs(t *testing.T) {
	f, pt, n, _, _ := natSetup(t)
	_ = f
	s3 := n.SwitchByName("s3").ID
	tree := flowtable.NewPrefixTree(pt.Space, n.SwitchByName("s3").Ports())
	_, delta, err := tree.Insert(flowtable.Prefix{IP: header.MustParseIP("203.0.113.80"), Len: 32}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Force the delta onto the NAT's pair: From must collide with a
	// rewrite-carrying pair. The NAT pair is (in, out=host port 3).
	delta.From = 3
	delta.To = 2
	if err := pt.ApplyDelta(s3, delta); err == nil {
		t.Fatal("incremental update on a rewriting pair accepted")
	}
}
