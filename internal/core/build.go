// Path-table construction: Algorithm 2. From every edge port, inject the
// all-match header set and recursively push it through transfer predicates,
// splitting at each switch by output port, until it exits at an edge port
// or the ⊥ drop port. Loops are cut as in §6.1: a traversal never enters
// the same switch port twice on one path.

package core

import (
	"veridp/internal/bdd"
	"veridp/internal/bloom"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/topo"
)

// Builder assembles a PathTable from the control plane's logical view.
type Builder struct {
	Net    *topo.Network
	Space  *header.Space
	Params bloom.Params
	// Configs is the logical per-switch configuration (rules + ACLs).
	Configs map[topo.SwitchID]*flowtable.SwitchConfig
}

// Build runs Algorithm 2 from every edge port.
func (b *Builder) Build() *PathTable {
	pt := &PathTable{
		Net:          b.Net,
		Space:        b.Space,
		Params:       b.Params,
		Configs:      b.Configs,
		entries:      make(map[tableKey][]*PathEntry),
		hopIndex:     make(map[topo.PortKey][]*PathEntry),
		arrivals:     make(map[topo.SwitchID][]*arrival),
		arrivalIndex: make(map[topo.PortKey][]*arrival),
		transfer:     make(map[topo.SwitchID]map[flowtable.PortPair][]flowtable.TransferEntry, len(b.Configs)),
	}
	for sw, cfg := range b.Configs {
		pt.transfer[sw] = cfg.TransferFuncs(b.Space)
	}
	for _, inport := range b.Net.EdgePorts() {
		visited := map[topo.PortKey]bool{inport: true}
		pt.traverse(inport, inport, b.Space.All(), nil, 0, visited)
	}
	return pt
}

// traverse is Algorithm 2's recursive search, shared by initial
// construction and §4.4's incremental re-traversal. visited guards against
// control-plane loops (a port entered twice ends the branch).
func (pt *PathTable) traverse(inport, at topo.PortKey, h bdd.Ref, prefix topo.Path, tag bloom.Tag, visited map[topo.PortKey]bool) {
	s := at.Switch
	x := at.Port
	pt.addArrival(s, &arrival{
		Inport:  inport,
		At:      x,
		Headers: h,
		Prefix:  append(topo.Path(nil), prefix...),
		Tag:     tag,
	})

	tp := pt.transfer[s]
	sw := pt.Net.Switch(s)
	outs := append(sw.Ports(), topo.DropPort)
	for _, y := range outs {
		for _, te := range tp[flowtable.PortPair{In: x, Out: y}] {
			h2 := pt.Space.T.And(h, te.Guard)
			if h2 == bdd.False {
				continue
			}
			// Rewrites apply as the packet leaves: the continuation (and
			// any recorded path entry) carries the transformed set.
			h3 := pt.Space.Transform(h2, te.Rewrite)
			pt.extend(inport, at, y, h3, prefix, tag, visited)
		}
	}
}

// extend pushes a header set out of one port: it appends the hop, updates
// the tag, and either records a finished path (edge port, ⊥, or dead end)
// or recurses into the next switch.
func (pt *PathTable) extend(inport, at topo.PortKey, y topo.PortID, h bdd.Ref, prefix topo.Path, tag bloom.Tag, visited map[topo.PortKey]bool) {
	s := at.Switch
	hop := topo.Hop{In: at.Port, Switch: s, Out: y}
	tag2 := tag.Union(pt.Params.Hash(hop.Bytes()))
	path2 := append(prefix, hop)
	outKey := topo.PortKey{Switch: s, Port: y}

	if y == topo.DropPort || pt.Net.IsEdgePort(outKey) {
		pt.addPath(inport, outKey, h, path2, tag2)
		return
	}
	next, ok := pt.Net.Peer(outKey)
	if !ok {
		// Output to a port with nothing attached: the control plane says
		// these packets leave the network unobserved. Record the path so
		// operators can audit it; no report will ever match it.
		pt.addPath(inport, outKey, h, path2, tag2)
		return
	}
	if visited[next] {
		return // control-plane loop: cut the branch (§6.1)
	}
	visited[next] = true
	pt.traverse(inport, next, h, path2, tag2, visited)
	delete(visited, next)
}
