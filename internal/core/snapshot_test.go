package core

import (
	"bytes"
	"testing"

	"veridp/internal/controller"

	"veridp/internal/dataplane"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/topo"
)

func TestSnapshotRoundTripFigure5(t *testing.T) {
	n := topo.Figure5()
	f, c, ids := figure5Rules(t, n)
	pt := buildTable(n, c)

	var buf bytes.Buffer
	if err := pt.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), n)
	if err != nil {
		t.Fatal(err)
	}

	// Structural equality.
	a, b := pt.Stats(), loaded.Stats()
	if a != b {
		t.Fatalf("stats diverged: %+v vs %+v", a, b)
	}

	// Behavioral equality: healthy traffic verifies; a fault is detected,
	// localized, and repairable through the loaded table.
	ssh := header.Header{SrcIP: ip("10.0.1.1"), DstIP: ip("10.0.2.1"), Proto: header.ProtoTCP, DstPort: 22}
	res, err := f.InjectFromHost("H1", ssh)
	if err != nil {
		t.Fatal(err)
	}
	if v := loaded.Verify(res.Reports[0]); !v.OK {
		t.Fatalf("loaded table rejects healthy traffic: %v", v.Reason)
	}

	s1 := n.SwitchByName("S1").ID
	if err := f.Switch(s1).Config.Table.Modify(ids["r3"], func(r *flowtable.Rule) { r.OutPort = 4 }); err != nil {
		t.Fatal(err)
	}
	res, err = f.InjectFromHost("H1", ssh)
	if err != nil {
		t.Fatal(err)
	}
	if v := loaded.Verify(res.Reports[0]); v.OK {
		t.Fatal("loaded table missed a fault")
	}
	sw, _, ok := loaded.Localize(res.Reports[0])
	if !ok || sw != s1 {
		t.Fatalf("loaded table localization: %d, %v", sw, ok)
	}
	if _, err := loaded.Repair(res.Reports[0], &dataplane.FabricInstaller{Fabric: f}); err != nil {
		t.Fatalf("repair through loaded table: %v", err)
	}
}

// TestSnapshotSupportsIncrementalUpdates: the restored arrivals and
// transfer functions keep §4.4's ApplyDelta working.
func TestSnapshotSupportsIncrementalUpdates(t *testing.T) {
	n := topo.Linear(3, 1)
	f := dataplane.NewFabric(n)
	c := controller.New(n, &dataplane.FabricInstaller{Fabric: f})
	if err := c.RouteAllHosts(); err != nil {
		t.Fatal(err)
	}
	pt := buildTable(n, c)

	var buf bytes.Buffer
	if err := pt.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), n)
	if err != nil {
		t.Fatal(err)
	}

	// Add a prefix rule incrementally on the loaded table.
	mid := n.SwitchByName("s2")
	tree := flowtable.NewPrefixTree(loaded.Space, mid.Ports())
	for _, r := range c.Logical()[mid.ID].Table.Rules() {
		if _, _, err := tree.Insert(r.Match.DstPrefix, r.OutPort); err != nil {
			t.Fatal(err)
		}
	}
	pfx := flowtable.Prefix{IP: ip("42.42.0.0"), Len: 16}
	_, delta, err := tree.Insert(pfx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.ApplyDelta(mid.ID, delta); err != nil {
		t.Fatal(err)
	}
	// The new space flows to s3's side... the delta moved 42.42/16 from ⊥
	// to port 2 at s2; a report claiming that path should now verify IF the
	// downstream continues. Just assert the table grew consistently.
	if loaded.NumPaths() < pt.NumPaths() {
		t.Fatal("incremental update on a loaded table lost paths")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	n := topo.Figure5()
	cases := [][]byte{
		{},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
	}
	for i, c := range cases {
		if _, err := Load(bytes.NewReader(c), n); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Valid snapshot against the wrong topology: switch IDs missing.
	_, c2, _ := figure5Rules(t, n)
	pt := buildTable(n, c2)
	var buf bytes.Buffer
	if err := pt.Save(&buf); err != nil {
		t.Fatal(err)
	}
	tiny := topo.Linear(1, 1)
	if _, err := Load(bytes.NewReader(buf.Bytes()), tiny); err == nil {
		t.Error("snapshot accepted against a mismatched topology")
	}
	// Truncations at various points must error, not panic.
	full := buf.Bytes()
	for _, cut := range []int{13, len(full) / 4, len(full) / 2, len(full) - 3} {
		if _, err := Load(bytes.NewReader(full[:cut]), n); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}
