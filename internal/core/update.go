// Incremental path-table update (§4.4). A rule add/delete at switch S is
// reduced (by flowtable.PrefixTree) to a Delta: the header set Δ that moves
// from output port From to output port To. Applying it touches only the
// affected slice of the table:
//
//  1. Every path (and every recorded traversal arrival) whose hop sequence
//     exits S through From loses Δ from its header set; emptied paths are
//     deleted.
//  2. Every header set that reached S during the recursive search is
//     intersected with Δ and re-traversed out of To, adding or growing
//     paths downstream.
//
// The §4.4 preconditions apply: destination-prefix forwarding rules only —
// no ACLs, no input-port matches — so transfer predicates are input-port
// independent and can be patched in place.

package core

import (
	"fmt"

	"veridp/internal/bdd"
	"veridp/internal/flowtable"
	"veridp/internal/topo"
)

// ApplyDelta incrementally updates the path table after a rule change at
// switch sw moved header set d.Set from port d.From to port d.To.
func (pt *PathTable) ApplyDelta(sw topo.SwitchID, d flowtable.Delta) error {
	s := pt.Net.Switch(sw)
	if s == nil {
		return fmt.Errorf("core: unknown switch %d", sw)
	}
	if d.From == d.To || d.Set == bdd.False {
		return nil // nothing moves
	}

	// Patch the cached transfer functions for S (input-port independent
	// under the §4.4 preconditions: pure destination-prefix rules — no
	// ACLs, no input-port matches, no rewrites).
	tp := pt.transfer[sw]
	for _, x := range s.Ports() {
		if err := patchPlainGuard(pt, tp, flowtable.PortPair{In: x, Out: d.From}, d.Set, false); err != nil {
			return err
		}
		if err := patchPlainGuard(pt, tp, flowtable.PortPair{In: x, Out: d.To}, d.Set, true); err != nil {
			return err
		}
	}

	fromKey := topo.PortKey{Switch: sw, Port: d.From}

	// Step 1a: shrink paths that exited S via From.
	for _, e := range pt.hopIndex[fromKey] {
		if e.deleted {
			continue
		}
		e.Headers = pt.Space.T.Diff(e.Headers, d.Set)
		if e.Headers == bdd.False {
			e.deleted = true
		}
	}
	// Step 1b: shrink downstream arrival records whose prefix used that
	// hop.
	for _, a := range pt.arrivalIndex[fromKey] {
		if a.deleted {
			continue
		}
		a.Headers = pt.Space.T.Diff(a.Headers, d.Set)
		if a.Headers == bdd.False {
			a.deleted = true
		}
	}

	// Step 2: re-traverse the moved headers out of To from every arrival
	// at S. Snapshot the arrival list first: the traversal appends new
	// arrivals downstream (never at S itself unless the topology loops
	// back, which the visited set prevents from recursing unboundedly).
	snapshot := append([]*arrival(nil), pt.arrivals[sw]...)
	for _, a := range snapshot {
		if a.deleted {
			continue
		}
		moved := pt.Space.T.And(a.Headers, d.Set)
		if moved == bdd.False {
			continue
		}
		visited := pt.visitedAlong(a)
		pt.extend(a.Inport, topo.PortKey{Switch: sw, Port: a.At}, d.To, moved, a.Prefix, a.Tag, visited)
	}
	return nil
}

// patchPlainGuard adjusts the nil-rewrite entry of a transfer pair by the
// delta (add=true ORs it in, add=false subtracts). Pairs carrying rewrite
// entries violate the §4.4 preconditions and are rejected.
func patchPlainGuard(pt *PathTable, tp map[flowtable.PortPair][]flowtable.TransferEntry, pp flowtable.PortPair, delta bdd.Ref, add bool) error {
	es := tp[pp]
	for i := range es {
		if es[i].Rewrite.IsZero() {
			if add {
				es[i].Guard = pt.Space.T.Or(es[i].Guard, delta)
			} else {
				es[i].Guard = pt.Space.T.Diff(es[i].Guard, delta)
			}
			return nil
		}
	}
	if len(es) > 0 {
		return fmt.Errorf("core: incremental update on a rewriting pair %v (unsupported; rebuild instead)", pp)
	}
	if add {
		tp[pp] = append(es, flowtable.TransferEntry{Guard: delta})
	}
	return nil
}

// visitedAlong reconstructs the loop-guard set for a recorded arrival: the
// entry port plus every port entered along its prefix.
func (pt *PathTable) visitedAlong(a *arrival) map[topo.PortKey]bool {
	visited := map[topo.PortKey]bool{a.Inport: true}
	for _, hop := range a.Prefix {
		out := topo.PortKey{Switch: hop.Switch, Port: hop.Out}
		if next, ok := pt.Net.Peer(out); ok {
			visited[next] = true
		}
	}
	return visited
}

// Compact drops deleted entries and arrival records and rebuilds the
// indexes. Long-running servers call it periodically; experiments call it
// before comparing tables.
func (pt *PathTable) Compact() {
	for k := range pt.entries {
		pt.live(k)
	}
	pt.hopIndex = make(map[topo.PortKey][]*PathEntry, len(pt.hopIndex))
	for _, es := range pt.entries {
		for _, e := range es {
			for _, hop := range e.Path {
				pk := topo.PortKey{Switch: hop.Switch, Port: hop.Out}
				pt.hopIndex[pk] = append(pt.hopIndex[pk], e)
			}
		}
	}
	arr := make(map[topo.SwitchID][]*arrival, len(pt.arrivals))
	pt.arrivalIndex = make(map[topo.PortKey][]*arrival, len(pt.arrivalIndex))
	for sw, as := range pt.arrivals {
		for _, a := range as {
			if a.deleted {
				continue
			}
			arr[sw] = append(arr[sw], a)
			for _, hop := range a.Prefix {
				pk := topo.PortKey{Switch: hop.Switch, Port: hop.Out}
				pt.arrivalIndex[pk] = append(pt.arrivalIndex[pk], a)
			}
		}
	}
	pt.arrivals = arr
}
