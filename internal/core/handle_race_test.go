//go:build race

// Race-gated storm: Compact and Swap republish the whole table while
// ApplyDelta churns the overlay and readers verify lock-free. The plain
// test suite covers each update method's correctness single-threaded
// (TestHandleMatchesTable); this file exists for what only the race
// detector can prove — that freezeAll under a maintenance fold or a
// wholesale swap has the happens-before edges to be read concurrently.

package core

import (
	"sync"
	"testing"

	"veridp/internal/flowtable"
	"veridp/internal/packet"
)

// TestHandleCompactSwapStorm runs three writers against pinned-snapshot
// readers: one flips the host route through ApplyDelta (so Compact has a
// live overlay to fold), one calls Compact in a loop, one calls Swap with
// a republish-unchanged build. The reader invariant is the same as
// TestHandleStormOneVerdict — each pinned snapshot verifies exactly one
// of the two reports — and must survive the maintenance churn: a Compact
// or Swap that published a half-frozen base would verify both or neither.
func TestHandleCompactSwapStorm(t *testing.T) {
	d := newDiamondEnv(t)
	h := NewHandle(d.pt)

	tagA := d.tagFor(t, h.Current()) // via S2
	host32 := flowtable.Prefix{IP: 0x0a000201, Len: 32}
	id, delta, err := d.tree.Insert(host32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ApplyDelta(d.s1, delta); err != nil {
		t.Fatal(err)
	}
	tagB := d.tagFor(t, h.Current()) // direct S1→S3
	if tagA == tagB {
		t.Fatal("both routes fold the same tag; the storm test needs them distinct")
	}
	rA := &packet.Report{Inport: d.pair[0], Outport: d.pair[1], Header: d.hdr, Tag: tagA}
	rB := &packet.Report{Inport: d.pair[0], Outport: d.pair[1], Header: d.hdr, Tag: tagB}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Current() // pin ONE snapshot for both verdicts
				vA, vB := s.Verify(rA), s.Verify(rB)
				if vA.OK == vB.OK {
					t.Errorf("torn snapshot: before-report OK=%v, after-report OK=%v", vA.OK, vB.OK)
					return
				}
				for _, v := range []Verdict{vA, vB} {
					if !v.OK && v.Reason != FailTagMismatch {
						t.Errorf("losing report failed with %v, want FailTagMismatch", v.Reason)
						return
					}
				}
			}
		}()
	}

	// Maintenance writers: Compact folds whatever overlay the delta flips
	// have built up; Swap republishes the (possibly mid-churn) table
	// wholesale. Both serialize with ApplyDelta on h.mu, so the reader
	// invariant must hold across every interleaving.
	maintDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-maintDone:
				return
			default:
			}
			h.Compact()
			h.Swap(func(old *PathTable) *PathTable { return old })
		}
	}()

	const flips = 100
	for i := 0; i < flips; i++ {
		delta, err := d.tree.Remove(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.ApplyDelta(d.s1, delta); err != nil {
			t.Fatal(err)
		}
		if id, delta, err = d.tree.Insert(host32, 4); err != nil {
			t.Fatal(err)
		}
		if err := h.ApplyDelta(d.s1, delta); err != nil {
			t.Fatal(err)
		}
	}
	close(maintDone)
	close(stop)
	wg.Wait()

	// After the dust settles the snapshot still matches the writer table's
	// final state: the host route is installed, so rB wins.
	if v := h.Current().Verify(rB); !v.OK {
		t.Errorf("post-storm snapshot lost the final route: %v", v.Reason)
	}
	if v := h.Current().Verify(rA); v.OK {
		t.Error("post-storm snapshot still verifies the stale route")
	}
}

// TestVerdictCacheConcurrentPublish hammers per-goroutine verdict caches
// against concurrent snapshot publications. Each reader pins a snapshot,
// verifies through its own cache, and differentially checks the cached
// verdict against the uncached one on the same pinned snapshot — while
// the main goroutine churns ApplyDelta/Compact/Swap, bumping the epoch as
// fast as it can. Under -race this also proves the epoch stamp's
// happens-before edge: a cache is single-writer, but the snapshots (and
// epochs) it keys on are published across goroutines.
func TestVerdictCacheConcurrentPublish(t *testing.T) {
	d := newDiamondEnv(t)
	h := NewHandle(d.pt)

	tagA := d.tagFor(t, h.Current())
	host32 := flowtable.Prefix{IP: 0x0a000201, Len: 32}
	id, delta, err := d.tree.Insert(host32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ApplyDelta(d.s1, delta); err != nil {
		t.Fatal(err)
	}
	tagB := d.tagFor(t, h.Current())
	rA := packet.Report{Inport: d.pair[0], Outport: d.pair[1], Header: d.hdr, Tag: tagA}
	rB := packet.Report{Inport: d.pair[0], Outport: d.pair[1], Header: d.hdr, Tag: tagB}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cache := NewVerdictCache(8) // small: exercises eviction too
			in := [2]packet.Report{rA, rB}
			var out [2]Verdict
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := h.Current()
				snap.VerifyBatch(cache, in[:], out[:])
				for i := range in {
					if want := snap.Verify(&in[i]); out[i] != want {
						t.Errorf("cached verdict %+v != uncached %+v under epoch %d", out[i], want, snap.Epoch())
						return
					}
				}
				if out[0].OK == out[1].OK {
					t.Errorf("torn snapshot through cache: OK=%v/%v", out[0].OK, out[1].OK)
					return
				}
			}
		}()
	}

	const flips = 100
	for i := 0; i < flips; i++ {
		delta, err := d.tree.Remove(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.ApplyDelta(d.s1, delta); err != nil {
			t.Fatal(err)
		}
		if id, delta, err = d.tree.Insert(host32, 4); err != nil {
			t.Fatal(err)
		}
		if err := h.ApplyDelta(d.s1, delta); err != nil {
			t.Fatal(err)
		}
		h.Compact()
		h.Swap(func(old *PathTable) *PathTable { return old })
	}
	close(stop)
	wg.Wait()
}
