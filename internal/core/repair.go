// Automatic flow-table repair — the paper's future work item (2):
// "designing a method that can automatically repair the flow table of a
// faulty switch, in order to resolve the inconsistency with minimal human
// interaction" (§8).
//
// The repair is conservative: after localization names a switch, the plan
// re-asserts the logical rule the failing packet should have matched there
// — a delete (tolerated if the rule is already gone) followed by a fresh
// add of the controller's version. This single primitive fixes every §2.2
// fault class that manifests as a corrupted or missing rule: wrong output
// port, blackholed action, out-of-band modification, and eviction.

package core

import (
	"fmt"

	"veridp/internal/flowtable"
	"veridp/internal/openflow"
	"veridp/internal/packet"
	"veridp/internal/topo"
)

// RuleInstaller is the slice of the southbound API repair needs; both the
// in-process FabricInstaller and the TCP controller server satisfy it.
type RuleInstaller interface {
	Apply(f *openflow.FlowMod) error
}

// RepairPlan re-asserts logical rules on one switch.
type RepairPlan struct {
	Switch topo.SwitchID
	// Rules are the controller's versions to re-assert (IDs preserved).
	Rules []flowtable.Rule
}

// PlanRepair localizes the failure and plans the re-assertion. It returns
// an error when localization fails or when the blamed switch has no
// logical rule for the packet (nothing to re-assert; the fault is an
// extraneous physical rule that needs operator attention).
func (pt *PathTable) PlanRepair(r *packet.Report) (*RepairPlan, error) {
	blamed, _, ok := pt.Localize(r)
	if !ok {
		return nil, fmt.Errorf("core: cannot repair: no candidate path recovered")
	}
	// The input port at the blamed switch along the intended path.
	intended := pt.IntendedPath(r.Inport, r.Header)
	var in topo.PortID
	found := false
	for _, hop := range intended {
		if hop.Switch == blamed {
			in, found = hop.In, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("core: blamed switch %d is not on the intended path", blamed)
	}
	cfg, ok := pt.Configs[blamed]
	if !ok {
		return nil, fmt.Errorf("core: no logical configuration for switch %d", blamed)
	}
	rule := cfg.Table.Lookup(in, r.Header)
	if rule == nil {
		return nil, fmt.Errorf("core: switch %d has no logical rule for %v — extraneous physical state, manual repair needed", blamed, r.Header)
	}
	return &RepairPlan{Switch: blamed, Rules: []flowtable.Rule{*rule}}, nil
}

// Apply pushes the plan through the southbound channel: delete (ignoring
// "no such rule") then re-add the logical version.
func (p *RepairPlan) Apply(inst RuleInstaller) error {
	for _, r := range p.Rules {
		// Best-effort delete: an evicted rule is already gone.
		_ = inst.Apply(&openflow.FlowMod{
			Command: openflow.FlowDelete,
			Switch:  p.Switch,
			RuleID:  r.ID,
		})
		if err := inst.Apply(&openflow.FlowMod{
			Command: openflow.FlowAdd,
			Switch:  p.Switch,
			RuleID:  r.ID,
			Rule:    r,
		}); err != nil {
			return fmt.Errorf("core: repair of rule %d on switch %d: %w", r.ID, p.Switch, err)
		}
	}
	return nil
}

// Repair is the one-shot convenience: plan and apply.
func (pt *PathTable) Repair(r *packet.Report, inst RuleInstaller) (*RepairPlan, error) {
	plan, err := pt.PlanRepair(r)
	if err != nil {
		return nil, err
	}
	if err := plan.Apply(inst); err != nil {
		return plan, err
	}
	return plan, nil
}
