package core

import (
	"math/rand"
	"testing"

	"veridp/internal/bloom"
	"veridp/internal/controller"
	"veridp/internal/dataplane"
	"veridp/internal/faults"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/topo"
)

// pingMesh is a local copy of traffic.PingMesh (importing traffic from a
// core test would cycle).
func pingMesh(n *topo.Network) []header.Header {
	hosts := n.Hosts()
	var out []header.Header
	for _, src := range hosts {
		for _, dst := range hosts {
			if src != dst {
				out = append(out, header.Header{SrcIP: src.IP, DstIP: dst.IP, Proto: header.ProtoICMP})
			}
		}
	}
	return out
}

// TestBloomTagsPruneCandidates quantifies the §3.3 design argument: with
// per-hop Bloom membership tests, PathInfer narrows to (usually) exactly
// the real path; the hash-tag-equivalent blind search returns strictly
// more candidates, and the Bloom candidates are always a subset.
func TestBloomTagsPruneCandidates(t *testing.T) {
	n := topo.FatTree(4)
	f := dataplane.NewFabric(n)
	c := controller.New(n, &dataplane.FabricInstaller{Fabric: f})
	if err := c.RouteAllHosts(); err != nil {
		t.Fatal(err)
	}
	pt := (&Builder{Net: n, Space: header.NewSpace(), Params: bloom.DefaultParams, Configs: c.Logical()}).Build()

	rng := rand.New(rand.NewSource(31))
	var bloomTotal, blindTotal, cases int
	for round := 0; round < 10; round++ {
		sw, ruleID, ok := faults.RandomRule(f, rng)
		if !ok {
			t.Fatal("no rules")
		}
		inj, err := faults.WrongPort(f, sw, ruleID, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, hdr := range pingMesh(n) {
			res, err := f.Inject(n.HostByIP(hdr.SrcIP).Attach, hdr)
			if err != nil {
				t.Fatal(err)
			}
			for _, rep := range res.Reports {
				if pt.Verify(rep).OK {
					continue
				}
				cases++
				guided := pt.PathInfer(rep)
				blind := pt.PathInferBlind(rep)
				bloomTotal += len(guided)
				blindTotal += len(blind)
				if len(guided) > len(blind) {
					t.Fatalf("guided search returned MORE candidates (%d) than blind (%d)", len(guided), len(blind))
				}
				// Every guided candidate appears in the blind set: the
				// Bloom test only prunes, never invents.
				for _, g := range guided {
					found := false
					for _, bl := range blind {
						if samePath(g, bl) {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("guided candidate %v missing from blind set", g)
					}
				}
			}
		}
		// Restore.
		if err := f.Switch(sw).Config.Table.Modify(ruleID, func(r *flowtable.Rule) { r.OutPort = inj.OldPort }); err != nil {
			t.Fatal(err)
		}
	}
	if cases == 0 {
		t.Skip("no fault round produced failures")
	}
	avgBloom := float64(bloomTotal) / float64(cases)
	avgBlind := float64(blindTotal) / float64(cases)
	// The subset relation is asserted per case above; on small topologies
	// the blind search can tie, but it must never be narrower.
	if avgBloom > avgBlind {
		t.Fatalf("Bloom pruning hurt: %.2f vs %.2f candidates/case", avgBloom, avgBlind)
	}
	t.Logf("candidates per failed report: Bloom-guided %.2f, hash-tag-blind %.2f (%d cases)", avgBloom, avgBlind, cases)
}
