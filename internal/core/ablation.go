// Ablations for the design choices §3.3 and §4.3 call out.
//
// Hash-based tagging (fold the path with a hash/XOR instead of a Bloom
// filter) verifies just as well — equality still detects deviations — but
// hollows out localization: without the subset structure, the server
// cannot test whether an individual hop is consistent with the tag, so
// path inference degenerates to blind enumeration of every deviation from
// every prefix of the intended path, keeping only those whose full fold
// equals the reported tag. PathInferBlind implements that degenerate
// search. Because any path whose fold equals the tag necessarily passes
// every per-hop test, the guided search's answers are a subset of the
// blind search's; what Bloom structure buys is pruning — the guided search
// replays a handful of deviations where the blind one replays
// O(path length × ports) — plus suppression of late-deviating fold
// collisions (the "why not hash tags" argument of §3.3).

package core

import (
	"veridp/internal/header"
	"veridp/internal/packet"
	"veridp/internal/topo"
)

// PathInferBlind mirrors PathInfer but may not consult the tag for
// per-hop membership tests — only final tag equality, which is all a
// hash-fold tag supports. Every suffix deviation whose replay reaches the
// reported exit becomes a candidate.
func (pt *PathTable) PathInferBlind(r *packet.Report) []topo.Path {
	intended := pt.IntendedPath(r.Inport, r.Header)

	// Without per-hop tests the failing hop is unknown: every prefix of
	// the intended path is a possible common part.
	comPath := append(topo.Path(nil), intended...)

	var pathset []topo.Path
	for len(comPath) > 0 {
		devHop := comPath[len(comPath)-1]
		comPath = comPath[:len(comPath)-1]
		s, x := devHop.Switch, devHop.In

		outs := append(pt.Net.Switch(s).Ports(), topo.DropPort)
		for _, y := range outs {
			if dev, ok := pt.replayBlind(r, s, x, y, len(comPath)); ok {
				cand := concatPath(comPath, dev)
				// Final equality is all a hash fold supports.
				if pt.foldPath(cand) == r.Tag {
					pathset = append(pathset, cand)
				}
			}
		}
	}
	return pathset
}

// BlindReplays counts the replay work the blind search performs for one
// report — the cost metric of the ablation (the guided search replays only
// tag-consistent deviations from the post-failure suffix).
func (pt *PathTable) BlindReplays(r *packet.Report) int {
	intended := pt.IntendedPath(r.Inport, r.Header)
	n := 0
	for _, hop := range intended {
		n += len(pt.Net.Switch(hop.Switch).Ports()) + 1
	}
	return n
}

// replayBlind is replayDeviation without the per-hop tag test.
func (pt *PathTable) replayBlind(r *packet.Report, s topo.SwitchID, x, y topo.PortID, hopsBefore int) (topo.Path, bool) {
	maxHops := pt.Net.MaxPathLength()
	var dev topo.Path
	cur := topo.PortKey{Switch: s, Port: x}
	total := hopsBefore

	h := r.Header
	for total < maxHops {
		var out topo.PortID
		if cur.Switch == s {
			out = y
		} else {
			cfg, ok := pt.Configs[cur.Switch]
			if !ok {
				return nil, false
			}
			var rw *header.Rewrite
			out, rw = cfg.Forward(cur.Port, h)
			h = rw.Apply(h)
		}
		hop := topo.Hop{In: cur.Port, Switch: cur.Switch, Out: out}
		dev = append(dev, hop)
		total++
		outKey := topo.PortKey{Switch: cur.Switch, Port: out}
		if out == topo.DropPort || pt.Net.IsEdgePort(outKey) {
			return dev, outKey == r.Outport
		}
		if total >= maxHops {
			return dev, outKey == r.Outport
		}
		next, ok := pt.Net.Peer(outKey)
		if !ok {
			return dev, outKey == r.Outport
		}
		cur = next
	}
	return nil, false
}
