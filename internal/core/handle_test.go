// Handle tests: snapshot publication correctness (a verdict never observes
// a half-applied update), equivalence with the single-threaded table, and
// the allocation-free guarantee of the verification hot path.

package core

import (
	"sync"
	"testing"

	"veridp/internal/bloom"
	"veridp/internal/controller"
	"veridp/internal/dataplane"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/packet"
	"veridp/internal/topo"
)

// diamondEnv builds Figure 5's topology with pure prefix routing so §4.4
// deltas apply: traffic to 10.0.2.0/24 rides S1→S2→S3, and a /32 for H3
// toggled on S1 re-routes H3's traffic onto the direct S1→S3 link. Both
// routes share the ⟨S1.1, S3.2⟩ pair but fold different tags, which is
// exactly the shape a torn update would confuse.
type diamondEnv struct {
	pt   *PathTable
	tree *flowtable.PrefixTree
	s1   topo.SwitchID
	hdr  header.Header
	pair [2]topo.PortKey // inport, outport of the H1→H3 flow
}

func newDiamondEnv(t *testing.T) *diamondEnv {
	t.Helper()
	n := topo.Figure5()
	space := header.NewSpace()
	f := dataplane.NewFabric(n)
	c := controller.New(n, &dataplane.FabricInstaller{Fabric: f})
	s1 := n.SwitchByName("S1").ID
	s2 := n.SwitchByName("S2").ID
	s3 := n.SwitchByName("S3").ID
	dst24 := flowtable.Prefix{IP: 0x0a000200, Len: 24}
	for _, in := range []struct {
		sw topo.SwitchID
		r  flowtable.Rule
	}{
		{s1, flowtable.Rule{Priority: 24, Match: flowtable.Match{DstPrefix: dst24}, Action: flowtable.ActOutput, OutPort: 3}},
		{s2, flowtable.Rule{Priority: 24, Match: flowtable.Match{DstPrefix: dst24}, Action: flowtable.ActOutput, OutPort: 2}},
		{s3, flowtable.Rule{Priority: 24, Match: flowtable.Match{DstPrefix: dst24}, Action: flowtable.ActOutput, OutPort: 2}},
	} {
		if _, err := c.InstallRule(in.sw, in.r); err != nil {
			t.Fatal(err)
		}
	}
	pt := (&Builder{Net: n, Space: space, Params: bloom.DefaultParams, Configs: c.Logical()}).Build()
	tree := flowtable.NewPrefixTree(space, n.SwitchByName("S1").Ports())
	if _, _, err := tree.Insert(dst24, 3); err != nil { // mirror S1's build-time state
		t.Fatal(err)
	}
	return &diamondEnv{
		pt:   pt,
		tree: tree,
		s1:   s1,
		hdr:  header.Header{SrcIP: 0x0a000101, DstIP: 0x0a000201, Proto: header.ProtoTCP, DstPort: 80},
		pair: [2]topo.PortKey{{Switch: s1, Port: 1}, {Switch: s3, Port: 2}},
	}
}

// tagFor finds the tag of the pair's entry admitting the flow's header in
// the current snapshot.
func (d *diamondEnv) tagFor(t *testing.T, s *Snapshot) bloom.Tag {
	t.Helper()
	for _, e := range s.Lookup(d.pair[0], d.pair[1]) {
		if d.pt.Space.Contains(e.Headers, d.hdr) {
			return e.Tag
		}
	}
	t.Fatal("no entry admits the flow header")
	return 0
}

// TestHandleStormOneVerdict is the torn-update regression test: reader
// goroutines verify two reports — one valid before a rule change, one valid
// after — against single pinned snapshots while a writer flips the rule
// through ApplyDelta as fast as it can. Every snapshot must satisfy
// "exactly one of the two reports verifies, the other fails as a tag
// mismatch": a half-applied update (shrink done, re-traversal pending)
// would break it. Run under -race this also proves the publication's
// happens-before edges.
func TestHandleStormOneVerdict(t *testing.T) {
	d := newDiamondEnv(t)
	h := NewHandle(d.pt)

	tagA := d.tagFor(t, h.Current()) // via S2
	host32 := flowtable.Prefix{IP: 0x0a000201, Len: 32}
	id, delta, err := d.tree.Insert(host32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ApplyDelta(d.s1, delta); err != nil {
		t.Fatal(err)
	}
	tagB := d.tagFor(t, h.Current()) // direct S1→S3
	if tagA == tagB {
		t.Fatal("both routes fold the same tag; the storm test needs them distinct")
	}
	rA := &packet.Report{Inport: d.pair[0], Outport: d.pair[1], Header: d.hdr, Tag: tagA}
	rB := &packet.Report{Inport: d.pair[0], Outport: d.pair[1], Header: d.hdr, Tag: tagB}

	const flips = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Current() // pin ONE snapshot for both verdicts
				vA, vB := s.Verify(rA), s.Verify(rB)
				if vA.OK == vB.OK {
					t.Errorf("torn snapshot: before-report OK=%v, after-report OK=%v", vA.OK, vB.OK)
					return
				}
				for _, v := range []Verdict{vA, vB} {
					if !v.OK && v.Reason != FailTagMismatch {
						t.Errorf("losing report failed with %v, want FailTagMismatch", v.Reason)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < flips; i++ {
		delta, err := d.tree.Remove(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.ApplyDelta(d.s1, delta); err != nil {
			t.Fatal(err)
		}
		if id, delta, err = d.tree.Insert(host32, 4); err != nil {
			t.Fatal(err)
		}
		if err := h.ApplyDelta(d.s1, delta); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestHandleMatchesTable checks that the published snapshot agrees with the
// writer table after every update: same pairs, same headers/paths/tags.
func TestHandleMatchesTable(t *testing.T) {
	d := newDiamondEnv(t)
	h := NewHandle(d.pt)

	check := func(step string) {
		t.Helper()
		s := h.Current()
		pt := h.Table()
		seen := 0
		pt.Entries(func(in, out topo.PortKey, e *PathEntry) {
			seen++
			var twin *PathEntry
			for _, fe := range s.Lookup(in, out) {
				if samePath(fe.Path, e.Path) {
					twin = fe
					break
				}
			}
			if twin == nil {
				t.Fatalf("%s: entry %v missing from snapshot", step, e)
			}
			if twin.Headers != e.Headers || twin.Tag != e.Tag {
				t.Fatalf("%s: snapshot entry diverged: %v vs %v", step, twin, e)
			}
		})
		if seen == 0 {
			t.Fatalf("%s: table has no entries", step)
		}
	}

	check("initial")
	host32 := flowtable.Prefix{IP: 0x0a000201, Len: 32}
	id, delta, err := d.tree.Insert(host32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ApplyDelta(d.s1, delta); err != nil {
		t.Fatal(err)
	}
	check("after insert")
	if delta, err = d.tree.Remove(id); err != nil {
		t.Fatal(err)
	}
	if err := h.ApplyDelta(d.s1, delta); err != nil {
		t.Fatal(err)
	}
	check("after remove")
	h.SetParams(bloom.Params{MBits: 32})
	check("after SetParams")
	h.Compact()
	check("after Compact")
}

// TestVerifyAllocationFree pins the hot path's zero-allocation guarantee:
// PathTable.Verify, the snapshot twin, and every verdict-cache path —
// probe hit, probe miss + fill, and the batch API — must not allocate per
// report.
func TestVerifyAllocationFree(t *testing.T) {
	d := newDiamondEnv(t)
	h := NewHandle(d.pt)
	r := &packet.Report{Inport: d.pair[0], Outport: d.pair[1], Header: d.hdr, Tag: d.tagFor(t, h.Current())}

	snap := h.Current()
	if v := snap.Verify(r); !v.OK {
		t.Fatalf("witness report failed: %v", v.Reason)
	}
	if avg := testing.AllocsPerRun(200, func() { snap.Verify(r) }); avg != 0 {
		t.Errorf("Snapshot.Verify allocates %.1f/op, want 0", avg)
	}
	pt := h.Table()
	if avg := testing.AllocsPerRun(200, func() { pt.Verify(r) }); avg != 0 {
		t.Errorf("PathTable.Verify allocates %.1f/op, want 0", avg)
	}

	// Cache probe hit: prime once, then every run is a pure probe.
	cache := NewVerdictCache(0)
	in := [1]packet.Report{*r}
	var out [1]Verdict
	snap.VerifyBatch(cache, in[:], out[:])
	if avg := testing.AllocsPerRun(200, func() { snap.VerifyBatch(cache, in[:], out[:]) }); avg != 0 {
		t.Errorf("VerifyBatch (probe hit) allocates %.1f/op, want 0", avg)
	}
	if cache.Hits() == 0 {
		t.Fatal("hit path never exercised")
	}

	// Cache probe miss + fill: vary the source port so every run misses
	// and stores.
	miss := *r
	if avg := testing.AllocsPerRun(200, func() {
		miss.Header.SrcPort++
		in[0] = miss
		snap.VerifyBatch(cache, in[:], out[:])
	}); avg != 0 {
		t.Errorf("VerifyBatch (probe miss + fill) allocates %.1f/op, want 0", avg)
	}

	// Uncached batch arm (nil cache).
	batch := [4]packet.Report{*r, *r, *r, *r}
	var vs [4]Verdict
	if avg := testing.AllocsPerRun(200, func() { snap.VerifyBatch(nil, batch[:], vs[:]) }); avg != 0 {
		t.Errorf("VerifyBatch (uncached) allocates %.1f/op, want 0", avg)
	}
}

// TestVerdictCacheCoherence is the in-package differential check: cached
// verdicts must be identical (OK, Reason, Matched pointer) to uncached
// ones, and a publication must kill every cached entry — the epoch
// invariant that lets publication skip any cache flush.
func TestVerdictCacheCoherence(t *testing.T) {
	d := newDiamondEnv(t)
	h := NewHandle(d.pt)
	snap := h.Current()
	cache := NewVerdictCache(0)

	good := packet.Report{Inport: d.pair[0], Outport: d.pair[1], Header: d.hdr, Tag: d.tagFor(t, h.Current())}
	bad := good
	bad.Tag ^= 0x2a
	nopair := good
	nopair.Outport.Port = 9

	reports := []packet.Report{good, bad, nopair, good, bad}
	out := make([]Verdict, len(reports))
	for round := 0; round < 3; round++ { // round 1+ serves from cache
		snap.VerifyBatch(cache, reports, out)
		for i := range reports {
			if want := snap.Verify(&reports[i]); out[i] != want {
				t.Fatalf("round %d report %d: cached verdict %+v != uncached %+v", round, i, out[i], want)
			}
		}
	}
	if cache.Hits() == 0 || cache.Misses() == 0 {
		t.Fatalf("expected both hits and misses, got hits=%d misses=%d", cache.Hits(), cache.Misses())
	}

	// Publish: the host /32 re-routes the flow, so the good report's tag
	// goes stale. The old cache entries must be unreachable under the new
	// snapshot's epoch — a stale hit would keep verifying the old tag.
	host32 := flowtable.Prefix{IP: 0x0a000201, Len: 32}
	_, delta, err := d.tree.Insert(host32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ApplyDelta(d.s1, delta); err != nil {
		t.Fatal(err)
	}
	snap2 := h.Current()
	if snap2.Epoch() <= snap.Epoch() {
		t.Fatalf("epoch did not advance: %d -> %d", snap.Epoch(), snap2.Epoch())
	}
	snap2.VerifyBatch(cache, reports, out)
	for i := range reports {
		if want := snap2.Verify(&reports[i]); out[i] != want {
			t.Fatalf("post-publish report %d: cached verdict %+v != uncached %+v", i, out[i], want)
		}
	}
	if v := out[0]; v.OK {
		t.Fatal("old-route report still verifies after the delta — stale cache entry served")
	}
	// The old snapshot keeps answering with its own epoch: entries stored
	// under it are still valid there.
	if v := snap.Verify(&good); !v.OK {
		t.Fatalf("pinned old snapshot changed its verdict: %+v", v)
	}
}
