// Tag verification: Algorithm 3. Look up the report's ⟨inport, outport⟩
// pair, linearly scan its paths for one whose header set admits the
// reported header, and compare tags. Detection has no false positives: a
// correctly forwarded packet always reproduces the table's tag exactly
// (§6.3).

package core

import (
	"fmt"

	"veridp/internal/packet"
)

// FailReason classifies a verification failure.
type FailReason uint8

const (
	// FailNone means verification passed.
	FailNone FailReason = iota
	// FailNoPair means no path exists for the ⟨inport, outport⟩ pair: the
	// packet exited somewhere it never should have (Algorithm 3 line 7).
	FailNoPair
	// FailNoHeaderMatch means paths exist for the pair but none admits the
	// reported header.
	FailNoHeaderMatch
	// FailTagMismatch means the header matched a path but the tag differs:
	// the packet took a different route than the control plane intended.
	FailTagMismatch
)

// String names the reason.
func (r FailReason) String() string {
	switch r {
	case FailNone:
		return "ok"
	case FailNoPair:
		return "no-path-for-port-pair"
	case FailNoHeaderMatch:
		return "no-header-match"
	case FailTagMismatch:
		return "tag-mismatch"
	default:
		return fmt.Sprintf("FailReason(%d)", uint8(r))
	}
}

// Verdict is the outcome of verifying one tag report.
type Verdict struct {
	OK     bool
	Reason FailReason
	// Matched is the entry whose header set admitted the packet (set for
	// FailNone and FailTagMismatch).
	Matched *PathEntry
}

// Verify implements Algorithm 3 on one tag report.
func (pt *PathTable) Verify(r *packet.Report) Verdict {
	paths := pt.Lookup(r.Inport, r.Outport)
	if len(paths) == 0 {
		return Verdict{Reason: FailNoPair}
	}
	// Header sets of one pair are disjoint by construction, so at most one
	// entry admits the header; scan them all anyway and prefer a tag match,
	// which keeps verification sound if incremental merges ever overlap.
	var matched *PathEntry
	for _, e := range paths {
		if !pt.Space.Contains(e.Headers, r.Header) {
			continue
		}
		if e.Tag == r.Tag {
			return Verdict{OK: true, Reason: FailNone, Matched: e}
		}
		if matched == nil {
			matched = e
		}
	}
	if matched != nil {
		return Verdict{Reason: FailTagMismatch, Matched: matched}
	}
	return Verdict{Reason: FailNoHeaderMatch}
}
