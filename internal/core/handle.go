// Snapshot publication: the verification server's answer to §6.4's
// multi-threaded verification running *while the table changes* (the
// property Foerster & Schmid's local-verification line of work argues
// consistency monitors need). A Handle owns the mutable PathTable and
// publishes immutable Snapshots of it through an atomic pointer: any number
// of goroutines verify tag reports lock-free against the snapshot they
// loaded, while rule updates mutate the private table and swap in a new
// snapshot when they finish. A verdict therefore always reflects a fully
// applied update — never the half-way state between ApplyDelta's shrink and
// re-traversal steps.
//
// Why BDD refs stay valid across snapshots: bdd.Table is append-only — a
// node is never mutated or freed once created (see the bdd package
// comment). A Snapshot captures a bdd.View (an immutable prefix of the node
// array) at publication time; every Headers ref frozen into the snapshot
// was minted before the view was taken, so the view can evaluate it even
// while the writer keeps extending the table for the next update. The
// atomic pointer swap provides the happens-before edge that makes the
// writer's appends visible to readers.
//
// Publication is copy-on-write at pair granularity. A snapshot is a shared
// base map plus a small overlay of recently-changed pairs; ApplyDelta only
// freezes the pairs it touched, and the overlay folds into a fresh base
// once it grows past a quarter of the base. Frozen entries are copies, so
// writer-side mutation of live entries (header shrinking, deletion marks)
// never tears a published one.

package core

import (
	"sync"
	"sync/atomic"

	"veridp/internal/bdd"
	"veridp/internal/bloom"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/packet"
	"veridp/internal/topo"
)

// Snapshot is one immutable publication of the path table: verification and
// lookup against it are lock-free and allocation-free, and all reads within
// one Snapshot observe the same fully-applied update sequence. Entries
// reachable from a Snapshot must not be mutated.
type Snapshot struct {
	base    map[tableKey][]*PathEntry // frozen after publish; shared with older snapshots
	overlay map[tableKey][]*PathEntry // frozen after publish; recently-updated pairs; nil slice = pair gone
	view    bdd.View                  // frozen after publish
	space   *header.Space             // frozen after publish
	params  bloom.Params              // frozen after publish
	epoch   uint64                    // frozen after publish; process-unique publication number
}

// snapEpoch numbers every snapshot publication in the process. It is
// global, not per-Handle, so epochs stay unique across Handle rebuilds
// (a restarted monitor's first snapshot must never collide with a cached
// entry stamped by its predecessor). Epochs start at 1: a VerdictCache
// uses meta==0 as its empty-slot marker.
var snapEpoch atomic.Uint64

func nextEpoch() uint64 { return snapEpoch.Add(1) }

// Epoch returns the snapshot's publication number. Epochs increase
// monotonically with every publication in the process and are never
// reused, which is what lets a VerdictCache invalidate itself for free:
// an entry stamped with any other epoch is dead on probe.
//
//lint:allocfree
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// lookup resolves a pair against overlay-then-base.
//
//lint:allocfree
func (s *Snapshot) lookup(k tableKey) []*PathEntry {
	if s.overlay != nil {
		if es, ok := s.overlay[k]; ok {
			return es
		}
	}
	return s.base[k]
}

// Lookup returns the live paths for an ⟨inport, outport⟩ pair. The returned
// entries are frozen: safe to read from any goroutine, never mutated.
//
//lint:allocfree
func (s *Snapshot) Lookup(in, out topo.PortKey) []*PathEntry {
	return s.lookup(tableKey{in, out})
}

// Params reports the Bloom configuration the snapshot's tags were derived
// under.
func (s *Snapshot) Params() bloom.Params { return s.params }

// Verify implements Algorithm 3 on one tag report against this snapshot.
// It is the lock-free twin of PathTable.Verify: safe from any number of
// goroutines concurrently with table updates, and allocation-free.
//
//lint:allocfree
func (s *Snapshot) Verify(r *packet.Report) Verdict {
	paths := s.lookup(tableKey{r.Inport, r.Outport})
	if len(paths) == 0 {
		return Verdict{Reason: FailNoPair}
	}
	var matched *PathEntry
	for _, e := range paths {
		if !s.space.ContainsView(s.view, e.Headers, r.Header) {
			continue
		}
		if e.Tag == r.Tag {
			return Verdict{OK: true, Reason: FailNone, Matched: e}
		}
		if matched == nil {
			matched = e
		}
	}
	if matched != nil {
		return Verdict{Reason: FailTagMismatch, Matched: matched}
	}
	return Verdict{Reason: FailNoHeaderMatch}
}

// Handle publishes a PathTable for concurrent use: Verify/Lookup load the
// current Snapshot atomically and never block, while the update methods
// (ApplyDelta, SetParams, Compact, Swap) serialize on an internal mutex,
// mutate the private table, and publish a fresh Snapshot on completion.
type Handle struct {
	mu   sync.Mutex
	work *PathTable // guarded by mu
	cur  atomic.Pointer[Snapshot]
}

// NewHandle wraps pt and publishes its first snapshot. The Handle owns pt
// from here on: callers must not mutate pt directly anymore (use the
// Handle's update methods, or Inspect for serialized read access).
func NewHandle(pt *PathTable) *Handle {
	h := &Handle{work: pt}
	h.cur.Store(freezeAll(pt))
	return h
}

// Current returns the latest published Snapshot. Callers that verify a
// batch of reports against one consistent table state hold on to the
// returned snapshot rather than calling h.Verify per report.
//
//lint:allocfree
func (h *Handle) Current() *Snapshot { return h.cur.Load() }

// ApplyDelta applies a §4.4 incremental update and publishes the result as
// one atomic snapshot swap: concurrent verifications see either the table
// before the rule change or after it, never in between.
func (h *Handle) ApplyDelta(sw topo.SwitchID, d flowtable.Delta) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	// Pairs whose entries the shrink step may touch, recorded up front;
	// addPath records the pairs the re-traversal grows via pt.touched.
	touched := make(map[tableKey]bool)
	for _, e := range h.work.hopIndex[topo.PortKey{Switch: sw, Port: d.From}] {
		if !e.deleted {
			touched[entryKeyOf(e)] = true
		}
	}
	h.work.touched = touched
	err := h.work.ApplyDelta(sw, d)
	h.work.touched = nil
	h.publishTouched(h.work, touched)
	return err
}

// SetParams re-derives every tag under a new Bloom configuration and
// publishes a full snapshot.
func (h *Handle) SetParams(p bloom.Params) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.work.SetParams(p)
	h.cur.Store(freezeAll(h.work))
}

// Compact garbage-collects the writer table and folds the published
// overlay into a fresh base.
func (h *Handle) Compact() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.work.Compact()
	h.cur.Store(freezeAll(h.work))
}

// Swap replaces the table wholesale: build receives the current table (for
// its Configs/Space) and returns its successor — the full-rebuild path the
// OpenFlow interception proxy uses. Returning the received table republishes
// it unchanged.
func (h *Handle) Swap(build func(old *PathTable) *PathTable) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.work = build(h.work)
	h.cur.Store(freezeAll(h.work))
}

// Inspect runs fn on the writer table under the update lock, without
// republishing. It serializes fn against all updates, so fn may run
// operations that extend the BDD (localization, repair planning) — but it
// must not change entries, arrivals, or tags; use the update methods for
// that.
func (h *Handle) Inspect(fn func(pt *PathTable)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	fn(h.work)
}

// Table exposes the writer table for single-threaded call sites (stats
// dumps, experiment harnesses). Any use concurrent with the Handle's update
// methods must go through Inspect instead.
func (h *Handle) Table() *PathTable {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.work
}

// entryKeyOf recovers an entry's ⟨inport, outport⟩ pair from its hop
// sequence. Invariant (maintained by traverse/extend and checked by
// construction): Path[0] enters at the entry's inport — Path[0].Switch is
// the inport switch and Path[0].In its port — and the last hop exits at the
// outport.
func entryKeyOf(e *PathEntry) tableKey {
	first, last := e.Path[0], e.Path[len(e.Path)-1]
	return tableKey{
		In:  topo.PortKey{Switch: first.Switch, Port: first.In},
		Out: topo.PortKey{Switch: last.Switch, Port: last.Out},
	}
}

// freezeKey copies a pair's live entries into immutable structs. The Path
// slice is shared: addPath copies it at insert time and no code mutates a
// recorded path in place.
func freezeKey(pt *PathTable, k tableKey) []*PathEntry {
	es := pt.entries[k]
	out := make([]*PathEntry, 0, len(es))
	for _, e := range es {
		if e.deleted {
			continue
		}
		out = append(out, &PathEntry{Headers: e.Headers, Path: e.Path, Tag: e.Tag})
	}
	return out
}

// freezeAll builds a from-scratch snapshot (empty overlay).
func freezeAll(pt *PathTable) *Snapshot {
	base := make(map[tableKey][]*PathEntry, len(pt.entries))
	for k := range pt.entries {
		if fs := freezeKey(pt, k); len(fs) > 0 {
			base[k] = fs
		}
	}
	return &Snapshot{base: base, view: pt.Space.T.View(), space: pt.Space, params: pt.Params, epoch: nextEpoch()}
}

// publishTouched publishes a snapshot that re-freezes only the touched
// pairs of pt (the writer table, passed in by a caller holding mu), layered
// over the previous snapshot's base. Once the overlay grows past a quarter
// of the base it folds into a fresh base, keeping lookups at one map probe
// in the steady state and publication cost proportional to the update's
// footprint, not the table size.
func (h *Handle) publishTouched(pt *PathTable, touched map[tableKey]bool) {
	prev := h.cur.Load()
	if len(prev.overlay)+len(touched) >= 32+len(prev.base)/4 {
		h.cur.Store(freezeAll(pt))
		return
	}
	ov := make(map[tableKey][]*PathEntry, len(prev.overlay)+len(touched))
	for k, v := range prev.overlay {
		ov[k] = v
	}
	for k := range touched {
		if fs := freezeKey(pt, k); len(fs) > 0 {
			ov[k] = fs
		} else {
			ov[k] = nil // pair emptied by this update
		}
	}
	h.cur.Store(&Snapshot{base: prev.base, overlay: ov, view: pt.Space.T.View(), space: pt.Space, params: pt.Params, epoch: nextEpoch()})
}
