// Path-table snapshots: serialize the verification server's full state —
// header-set BDDs, path entries, traversal arrivals, transfer functions,
// and the logical configurations — so a restarted server resumes verifying
// immediately instead of re-running Algorithm 2 (which costs tens of
// seconds at the published rule scales; see EXPERIMENTS.md, Table 2).
// The topology itself is not serialized: it is code- or netfile-defined and
// must be supplied to Load, which validates the snapshot against it.

package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"veridp/internal/bdd"
	"veridp/internal/bloom"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/openflow"
	"veridp/internal/topo"
)

const (
	snapshotMagic   = 0x56445054 // "VDPT"
	snapshotVersion = 1
)

// Save writes the complete path-table state to w.
func (pt *PathTable) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)

	// Collect every BDD root the snapshot references, in a fixed order.
	var roots []bdd.Ref
	addRoot := func(r bdd.Ref) uint32 {
		roots = append(roots, r)
		return uint32(len(roots) - 1)
	}

	type entryRec struct {
		in, out topo.PortKey
		headers uint32
		path    topo.Path
		tag     bloom.Tag
	}
	var entries []entryRec
	pt.Entries(func(in, out topo.PortKey, e *PathEntry) {
		entries = append(entries, entryRec{in, out, addRoot(e.Headers), e.Path, e.Tag})
	})

	type arrivalRec struct {
		sw      topo.SwitchID
		inport  topo.PortKey
		at      topo.PortID
		headers uint32
		prefix  topo.Path
		tag     bloom.Tag
	}
	var arrivals []arrivalRec
	for _, sw := range pt.Net.Switches() {
		for _, a := range pt.arrivals[sw.ID] {
			if a.deleted {
				continue
			}
			arrivals = append(arrivals, arrivalRec{sw.ID, a.Inport, a.At, addRoot(a.Headers), a.Prefix, a.Tag})
		}
	}

	type transferRec struct {
		sw      topo.SwitchID
		pair    flowtable.PortPair
		guard   uint32
		rewrite *header.Rewrite
	}
	var transfers []transferRec
	for _, sw := range pt.Net.Switches() {
		for pair, tes := range pt.transfer[sw.ID] {
			for _, te := range tes {
				transfers = append(transfers, transferRec{sw.ID, pair, addRoot(te.Guard), te.Rewrite})
			}
		}
	}

	// Header.
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], snapshotMagic)
	binary.BigEndian.PutUint32(hdr[4:8], snapshotVersion)
	hdr[8] = uint8(pt.Params.MBits)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}

	// BDD section.
	pos, err := pt.Space.T.Export(bw, roots)
	if err != nil {
		return err
	}

	// Configs: per switch, the rule table (as a dump) and ACLs.
	writeU32 := func(v uint32) error { return binary.Write(bw, binary.BigEndian, v) }
	if err := writeU32(uint32(len(pt.Configs))); err != nil {
		return err
	}
	for _, sw := range pt.Net.Switches() {
		cfg, ok := pt.Configs[sw.ID]
		if !ok {
			continue
		}
		if err := writeU32(uint32(sw.ID)); err != nil {
			return err
		}
		dump := openflow.MarshalTableDump(cfg.Table.Rules())
		if err := writeU32(uint32(len(dump))); err != nil {
			return err
		}
		if _, err := bw.Write(dump); err != nil {
			return err
		}
		for _, dir := range []map[topo.PortID]flowtable.ACL{cfg.InACL, cfg.OutACL} {
			if err := writeU32(uint32(len(dir))); err != nil {
				return err
			}
			for _, p := range sw.Ports() {
				acl, ok := dir[p]
				if !ok {
					continue
				}
				if err := writeU32(uint32(p)); err != nil {
					return err
				}
				if err := writeU32(uint32(len(acl))); err != nil {
					return err
				}
				for _, r := range acl {
					if err := writeACLRule(bw, r); err != nil {
						return err
					}
				}
			}
		}
	}

	// Entries.
	if err := writeU32(uint32(len(entries))); err != nil {
		return err
	}
	for _, e := range entries {
		writePortKey(bw, e.in)
		writePortKey(bw, e.out)
		writeU32(pos[e.headers])
		writePath(bw, e.path)
		binary.Write(bw, binary.BigEndian, uint64(e.tag))
	}

	// Arrivals.
	if err := writeU32(uint32(len(arrivals))); err != nil {
		return err
	}
	for _, a := range arrivals {
		writeU32(uint32(a.sw))
		writePortKey(bw, a.inport)
		writeU32(uint32(a.at))
		writeU32(pos[a.headers])
		writePath(bw, a.prefix)
		binary.Write(bw, binary.BigEndian, uint64(a.tag))
	}

	// Transfer functions.
	if err := writeU32(uint32(len(transfers))); err != nil {
		return err
	}
	for _, tr := range transfers {
		writeU32(uint32(tr.sw))
		writeU32(uint32(tr.pair.In))
		writeU32(uint32(tr.pair.Out))
		writeU32(pos[tr.guard])
		writeRewrite(bw, tr.rewrite)
	}
	return bw.Flush()
}

// Load reconstructs a path table from a snapshot over the given (already
// constructed) topology, using a fresh header space.
func Load(r io.Reader, net *topo.Network) (*PathTable, error) {
	br := bufio.NewReader(r)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: snapshot header: %w", err)
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != snapshotMagic {
		return nil, fmt.Errorf("core: not a path-table snapshot")
	}
	if v := binary.BigEndian.Uint32(hdr[4:8]); v != snapshotVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", v)
	}
	params := bloom.Params{MBits: int(hdr[8])}
	if err := params.Validate(); err != nil {
		return nil, err
	}

	space := header.NewSpace()
	resolve, err := space.T.Import(br)
	if err != nil {
		return nil, err
	}

	pt := &PathTable{
		Net:          net,
		Space:        space,
		Params:       params,
		Configs:      make(map[topo.SwitchID]*flowtable.SwitchConfig),
		entries:      make(map[tableKey][]*PathEntry),
		hopIndex:     make(map[topo.PortKey][]*PathEntry),
		arrivals:     make(map[topo.SwitchID][]*arrival),
		arrivalIndex: make(map[topo.PortKey][]*arrival),
		transfer:     make(map[topo.SwitchID]map[flowtable.PortPair][]flowtable.TransferEntry),
	}

	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.BigEndian, &v)
		return v, err
	}
	checkSwitch := func(id uint32) (topo.SwitchID, error) {
		sw := topo.SwitchID(id)
		if net.Switch(sw) == nil {
			return 0, fmt.Errorf("core: snapshot references unknown switch %d", id)
		}
		return sw, nil
	}

	// Configs.
	nCfg, err := readU32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nCfg; i++ {
		id, err := readU32()
		if err != nil {
			return nil, err
		}
		sw, err := checkSwitch(id)
		if err != nil {
			return nil, err
		}
		dumpLen, err := readU32()
		if err != nil {
			return nil, err
		}
		const maxDump = 64 << 20
		if dumpLen > maxDump {
			return nil, fmt.Errorf("core: implausible config dump of %d bytes", dumpLen)
		}
		dump := make([]byte, dumpLen)
		if _, err := io.ReadFull(br, dump); err != nil {
			return nil, err
		}
		rules, err := openflow.UnmarshalTableDump(dump)
		if err != nil {
			return nil, err
		}
		cfg := flowtable.NewSwitchConfig(net.Switch(sw).Ports())
		for _, r := range rules {
			if _, err := cfg.Table.Add(r); err != nil {
				return nil, err
			}
		}
		for _, dir := range []map[topo.PortID]flowtable.ACL{cfg.InACL, cfg.OutACL} {
			nPorts, err := readU32()
			if err != nil {
				return nil, err
			}
			for j := uint32(0); j < nPorts; j++ {
				port, err := readU32()
				if err != nil {
					return nil, err
				}
				nRules, err := readU32()
				if err != nil {
					return nil, err
				}
				var acl flowtable.ACL
				for k := uint32(0); k < nRules; k++ {
					r, err := readACLRule(br)
					if err != nil {
						return nil, err
					}
					acl = append(acl, r)
				}
				dir[topo.PortID(port)] = acl
			}
		}
		pt.Configs[sw] = cfg
	}

	// Entries.
	nEntries, err := readU32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nEntries; i++ {
		in, err := readPortKey(br)
		if err != nil {
			return nil, err
		}
		out, err := readPortKey(br)
		if err != nil {
			return nil, err
		}
		hp, err := readU32()
		if err != nil {
			return nil, err
		}
		headers, err := resolve(hp)
		if err != nil {
			return nil, err
		}
		path, err := readPath(br)
		if err != nil {
			return nil, err
		}
		var tag uint64
		if err := binary.Read(br, binary.BigEndian, &tag); err != nil {
			return nil, err
		}
		pt.addPath(in, out, headers, path, bloom.Tag(tag))
	}

	// Arrivals.
	nArr, err := readU32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nArr; i++ {
		id, err := readU32()
		if err != nil {
			return nil, err
		}
		sw, err := checkSwitch(id)
		if err != nil {
			return nil, err
		}
		inport, err := readPortKey(br)
		if err != nil {
			return nil, err
		}
		at, err := readU32()
		if err != nil {
			return nil, err
		}
		hp, err := readU32()
		if err != nil {
			return nil, err
		}
		headers, err := resolve(hp)
		if err != nil {
			return nil, err
		}
		prefix, err := readPath(br)
		if err != nil {
			return nil, err
		}
		var tag uint64
		if err := binary.Read(br, binary.BigEndian, &tag); err != nil {
			return nil, err
		}
		pt.addArrival(sw, &arrival{
			Inport: inport, At: topo.PortID(at),
			Headers: headers, Prefix: prefix, Tag: bloom.Tag(tag),
		})
	}

	// Transfer functions.
	nTr, err := readU32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nTr; i++ {
		id, err := readU32()
		if err != nil {
			return nil, err
		}
		sw, err := checkSwitch(id)
		if err != nil {
			return nil, err
		}
		pin, err := readU32()
		if err != nil {
			return nil, err
		}
		pout, err := readU32()
		if err != nil {
			return nil, err
		}
		gp, err := readU32()
		if err != nil {
			return nil, err
		}
		guard, err := resolve(gp)
		if err != nil {
			return nil, err
		}
		rw, err := readRewrite(br)
		if err != nil {
			return nil, err
		}
		if pt.transfer[sw] == nil {
			pt.transfer[sw] = make(map[flowtable.PortPair][]flowtable.TransferEntry)
		}
		pair := flowtable.PortPair{In: topo.PortID(pin), Out: topo.PortID(pout)}
		pt.transfer[sw][pair] = append(pt.transfer[sw][pair], flowtable.TransferEntry{Guard: guard, Rewrite: rw})
	}
	return pt, nil
}

// ---- primitive codecs ----------------------------------------------------

func writePortKey(w io.Writer, pk topo.PortKey) {
	binary.Write(w, binary.BigEndian, uint32(pk.Switch))
	binary.Write(w, binary.BigEndian, uint32(pk.Port))
}

func readPortKey(r io.Reader) (topo.PortKey, error) {
	var sw, p uint32
	if err := binary.Read(r, binary.BigEndian, &sw); err != nil {
		return topo.PortKey{}, err
	}
	if err := binary.Read(r, binary.BigEndian, &p); err != nil {
		return topo.PortKey{}, err
	}
	return topo.PortKey{Switch: topo.SwitchID(sw), Port: topo.PortID(p)}, nil
}

func writePath(w io.Writer, p topo.Path) {
	binary.Write(w, binary.BigEndian, uint32(len(p)))
	for _, h := range p {
		binary.Write(w, binary.BigEndian, uint32(h.In))
		binary.Write(w, binary.BigEndian, uint32(h.Switch))
		binary.Write(w, binary.BigEndian, uint32(h.Out))
	}
}

func readPath(r io.Reader) (topo.Path, error) {
	var n uint32
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return nil, err
	}
	const maxPath = 1 << 16
	if n > maxPath {
		return nil, fmt.Errorf("core: implausible path of %d hops", n)
	}
	out := make(topo.Path, n)
	for i := range out {
		var in, sw, o uint32
		if err := binary.Read(r, binary.BigEndian, &in); err != nil {
			return nil, err
		}
		if err := binary.Read(r, binary.BigEndian, &sw); err != nil {
			return nil, err
		}
		if err := binary.Read(r, binary.BigEndian, &o); err != nil {
			return nil, err
		}
		out[i] = topo.Hop{In: topo.PortID(in), Switch: topo.SwitchID(sw), Out: topo.PortID(o)}
	}
	return out, nil
}

func writeRewrite(w io.Writer, rw *header.Rewrite) {
	var flags uint8
	v := header.Rewrite{}
	if rw != nil {
		v = *rw
	}
	if v.SetSrcIP {
		flags |= 1
	}
	if v.SetDstIP {
		flags |= 2
	}
	if v.SetSrcPort {
		flags |= 4
	}
	if v.SetDstPort {
		flags |= 8
	}
	binary.Write(w, binary.BigEndian, flags)
	binary.Write(w, binary.BigEndian, v.SrcIP)
	binary.Write(w, binary.BigEndian, v.DstIP)
	binary.Write(w, binary.BigEndian, v.SrcPort)
	binary.Write(w, binary.BigEndian, v.DstPort)
}

func readRewrite(r io.Reader) (*header.Rewrite, error) {
	var flags uint8
	var rw header.Rewrite
	if err := binary.Read(r, binary.BigEndian, &flags); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.BigEndian, &rw.SrcIP); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.BigEndian, &rw.DstIP); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.BigEndian, &rw.SrcPort); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.BigEndian, &rw.DstPort); err != nil {
		return nil, err
	}
	rw.SetSrcIP = flags&1 != 0
	rw.SetDstIP = flags&2 != 0
	rw.SetSrcPort = flags&4 != 0
	rw.SetDstPort = flags&8 != 0
	if !rw.SetSrcIP {
		rw.SrcIP = 0
	}
	if !rw.SetDstIP {
		rw.DstIP = 0
	}
	if !rw.SetSrcPort {
		rw.SrcPort = 0
	}
	if !rw.SetDstPort {
		rw.DstPort = 0
	}
	if rw.IsZero() {
		return nil, nil
	}
	return &rw, nil
}

func writeACLRule(w io.Writer, r flowtable.ACLRule) error {
	m := r.Match
	binary.Write(w, binary.BigEndian, uint32(m.InPort))
	binary.Write(w, binary.BigEndian, m.SrcPrefix.IP)
	binary.Write(w, binary.BigEndian, uint8(m.SrcPrefix.Len))
	binary.Write(w, binary.BigEndian, m.DstPrefix.IP)
	binary.Write(w, binary.BigEndian, uint8(m.DstPrefix.Len))
	var flags uint8
	if m.HasProto {
		flags |= 1
	}
	if m.HasSrc {
		flags |= 2
	}
	if m.HasDst {
		flags |= 4
	}
	if r.Permit {
		flags |= 8
	}
	binary.Write(w, binary.BigEndian, flags)
	binary.Write(w, binary.BigEndian, m.Proto)
	binary.Write(w, binary.BigEndian, m.SrcPort)
	return binary.Write(w, binary.BigEndian, m.DstPort)
}

func readACLRule(r io.Reader) (flowtable.ACLRule, error) {
	var out flowtable.ACLRule
	var inPort uint32
	var srcLen, dstLen, flags uint8
	fields := []interface{}{&inPort, &out.Match.SrcPrefix.IP, &srcLen, &out.Match.DstPrefix.IP, &dstLen, &flags, &out.Match.Proto, &out.Match.SrcPort, &out.Match.DstPort}
	for _, f := range fields {
		if err := binary.Read(r, binary.BigEndian, f); err != nil {
			return out, err
		}
	}
	if srcLen > 32 || dstLen > 32 {
		return out, fmt.Errorf("core: snapshot ACL prefix length out of range")
	}
	out.Match.InPort = topo.PortID(inPort)
	out.Match.SrcPrefix.Len = int(srcLen)
	out.Match.DstPrefix.Len = int(dstLen)
	out.Match.HasProto = flags&1 != 0
	out.Match.HasSrc = flags&2 != 0
	out.Match.HasDst = flags&4 != 0
	out.Permit = flags&8 != 0
	return out, nil
}
