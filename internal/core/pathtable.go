// Package core implements VeriDP's verification server: the path table
// (§3.4), its construction from control-plane configurations via
// Algorithm 2, tag-report verification via Algorithm 3, Bloom-filter-guided
// fault localization via Algorithm 4 (plus the strawman baseline §4.3
// rejects), and the incremental path-table update of §4.4.
//
// The path table maps an ⟨inport, outport⟩ pair to the list of paths a
// packet may legitimately take between those edge ports. Each path entry
// holds the BDD of admissible headers, the hop sequence, and the
// Bloom-filter tag a correctly-forwarded packet accumulates.
package core

import (
	"fmt"
	"sort"

	"veridp/internal/bdd"
	"veridp/internal/bloom"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/topo"
)

// PathEntry is one path of the path table: ⟨headers, path, tag⟩.
type PathEntry struct {
	// Headers is the set of packet headers admitted along this path.
	Headers bdd.Ref
	// Path is the hop sequence from entry to exit.
	Path topo.Path
	// Tag is the Bloom fold of the path's hops.
	Tag bloom.Tag

	deleted bool
}

// String renders the entry compactly.
func (e *PathEntry) String() string {
	return fmt.Sprintf("{path %v tag %v}", e.Path, e.Tag)
}

// tableKey indexes the path table by entry and exit port.
type tableKey struct {
	In  topo.PortKey
	Out topo.PortKey
}

// arrival records that, during Algorithm 2's recursive search, the header
// set Headers reached switch-port At having entered the network at Inport
// and traversed Prefix so far. §4.4's path-entry update replays forwarding
// from these records when a rule changes a switch's behavior.
type arrival struct {
	Inport  topo.PortKey
	At      topo.PortID
	Headers bdd.Ref
	Prefix  topo.Path
	Tag     bloom.Tag

	deleted bool
}

// PathTable is the verification server's model of the control plane.
// Methods are not safe for concurrent use on their own; wrap the table in
// a Handle to get lock-free concurrent verification with serialized,
// atomically-published updates (the multi-threading §6.4 anticipates).
type PathTable struct {
	Net    *topo.Network
	Space  *header.Space
	Params bloom.Params

	// Configs is the logical (control-plane) configuration used to compute
	// intended paths during localization.
	Configs map[topo.SwitchID]*flowtable.SwitchConfig

	entries map[tableKey][]*PathEntry

	// hopIndex lists entries whose path exits through a given switch port
	// (including ⊥ exits), for §4.4's "paths that pass port y" step.
	hopIndex map[topo.PortKey][]*PathEntry

	// arrivals and arrivalIndex support incremental re-traversal: arrivals
	// by switch, and by hops of their prefixes for shrinking.
	arrivals     map[topo.SwitchID][]*arrival
	arrivalIndex map[topo.PortKey][]*arrival

	// transfer caches every switch's guarded transfer functions from build
	// time; incremental updates patch the plain (nil-rewrite) guards
	// (valid under §4.4's no-ACL, no-rewrite assumption).
	transfer map[topo.SwitchID]map[flowtable.PortPair][]flowtable.TransferEntry

	// touched, when non-nil, collects the ⟨inport, outport⟩ pairs addPath
	// modifies — Handle sets it around ApplyDelta so snapshot publication
	// re-freezes only the update's footprint.
	touched map[tableKey]bool
}

// Pairs returns the number of ⟨inport, outport⟩ pairs with at least one
// path — the "# entries" column of Table 2.
func (pt *PathTable) Pairs() int {
	n := 0
	for k := range pt.entries {
		if len(pt.live(k)) > 0 {
			n++
		}
	}
	return n
}

// live returns the non-deleted entries for a key, compacting in place.
func (pt *PathTable) live(k tableKey) []*PathEntry {
	es := pt.entries[k]
	out := es[:0]
	for _, e := range es {
		if !e.deleted {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		delete(pt.entries, k)
		return nil
	}
	pt.entries[k] = out
	return out
}

// NumPaths returns the total number of paths — Table 2's "# paths".
func (pt *PathTable) NumPaths() int {
	n := 0
	for k := range pt.entries {
		n += len(pt.live(k))
	}
	return n
}

// AvgPathLength returns the mean number of hops per path — Table 2's
// "avg. path len.".
func (pt *PathTable) AvgPathLength() float64 {
	paths, hops := 0, 0
	for k := range pt.entries {
		for _, e := range pt.live(k) {
			paths++
			hops += len(e.Path)
		}
	}
	if paths == 0 {
		return 0
	}
	return float64(hops) / float64(paths)
}

// PathsPerPair returns the path count of every populated pair, sorted
// ascending — the distribution Figure 6 plots.
func (pt *PathTable) PathsPerPair() []int {
	var out []int
	for k := range pt.entries {
		if n := len(pt.live(k)); n > 0 {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// Lookup returns the live paths for an ⟨inport, outport⟩ pair. It is
// read-only (no compaction), so Lookup and Verify may run concurrently
// from many goroutines as long as no update (ApplyDelta, SetParams,
// Compact) runs at the same time — the multi-threaded verification the
// paper's §6.4 anticipates. The common no-deletions case returns the
// internal slice without allocating.
func (pt *PathTable) Lookup(in, out topo.PortKey) []*PathEntry {
	es := pt.entries[tableKey{in, out}]
	clean := true
	for _, e := range es {
		if e.deleted {
			clean = false
			break
		}
	}
	if clean {
		return es
	}
	out2 := make([]*PathEntry, 0, len(es))
	for _, e := range es {
		if !e.deleted {
			out2 = append(out2, e)
		}
	}
	return out2
}

// Entries invokes fn for every live entry; fn must not mutate the table.
func (pt *PathTable) Entries(fn func(in, out topo.PortKey, e *PathEntry)) {
	keys := make([]tableKey, 0, len(pt.entries))
	for k := range pt.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.In != b.In {
			if a.In.Switch != b.In.Switch {
				return a.In.Switch < b.In.Switch
			}
			return a.In.Port < b.In.Port
		}
		if a.Out.Switch != b.Out.Switch {
			return a.Out.Switch < b.Out.Switch
		}
		return a.Out.Port < b.Out.Port
	})
	for _, k := range keys {
		for _, e := range pt.live(k) {
			fn(k.In, k.Out, e)
		}
	}
}

// addPath inserts a path entry, merging header sets when the identical hop
// sequence is already present for the pair (which only happens during
// incremental updates).
func (pt *PathTable) addPath(in, out topo.PortKey, headers bdd.Ref, path topo.Path, tag bloom.Tag) *PathEntry {
	k := tableKey{in, out}
	if pt.touched != nil {
		pt.touched[k] = true
	}
	for _, e := range pt.live(k) {
		if samePath(e.Path, path) {
			e.Headers = pt.Space.T.Or(e.Headers, headers)
			return e
		}
	}
	e := &PathEntry{Headers: headers, Path: append(topo.Path(nil), path...), Tag: tag}
	pt.entries[k] = append(pt.entries[k], e)
	for _, hop := range e.Path {
		pk := topo.PortKey{Switch: hop.Switch, Port: hop.Out}
		pt.hopIndex[pk] = append(pt.hopIndex[pk], e)
	}
	return e
}

// addArrival records a traversal arrival for incremental updates.
func (pt *PathTable) addArrival(sw topo.SwitchID, a *arrival) {
	pt.arrivals[sw] = append(pt.arrivals[sw], a)
	for _, hop := range a.Prefix {
		pk := topo.PortKey{Switch: hop.Switch, Port: hop.Out}
		pt.arrivalIndex[pk] = append(pt.arrivalIndex[pk], a)
	}
}

// samePath compares hop sequences.
func samePath(a, b topo.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SetParams re-derives every tag (entries and traversal arrivals) under a
// new Bloom configuration — the Figure 12 experiment sweeps tag sizes
// without re-running Algorithm 2, since tags are a pure fold of each path.
func (pt *PathTable) SetParams(p bloom.Params) {
	pt.Params = p
	fold := func(path topo.Path) bloom.Tag {
		var t bloom.Tag
		for _, hop := range path {
			t = t.Union(p.Hash(hop.Bytes()))
		}
		return t
	}
	for _, es := range pt.entries {
		for _, e := range es {
			e.Tag = fold(e.Path)
		}
	}
	for _, as := range pt.arrivals {
		for _, a := range as {
			a.Tag = fold(a.Prefix)
		}
	}
}

// Stats summarizes the table for Table 2.
type Stats struct {
	Pairs         int
	Paths         int
	AvgPathLength float64
}

// Stats computes the summary.
func (pt *PathTable) Stats() Stats {
	return Stats{Pairs: pt.Pairs(), Paths: pt.NumPaths(), AvgPathLength: pt.AvgPathLength()}
}
