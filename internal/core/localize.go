// Fault localization (§4.3). When verification fails, the server infers
// which switch misforwarded. The strawman walks the intended path and
// blames the first hop whose Bloom element is absent from the tag — but a
// Bloom false positive on the actually-faulty hop shifts the blame
// downstream. Algorithm 4 (PathInfer) repairs this by requiring a complete,
// tag-consistent path to the reported exit before accepting a hypothesis,
// backtracking through every suffix of the intended path.

package core

import (
	"veridp/internal/bloom"
	"veridp/internal/header"
	"veridp/internal/packet"
	"veridp/internal/topo"
)

// IntendedPath computes the path the control plane intends for a concrete
// header entering at the given port — Algorithm 4's GetPath — by walking
// the logical switch configurations, applying any header rewrites along
// the way. The walk stops at an edge port, the ⊥ port, a dead end, or when
// the hop budget (a loop guard) runs out.
//
// Localization caveat (inherited from the paper's no-rewrite scope): the
// report carries the header observed at the exit, so IntendedPath — and
// therefore PathInfer — is exact only for flows whose headers were not
// rewritten in flight.
func (pt *PathTable) IntendedPath(at topo.PortKey, h header.Header) topo.Path {
	var path topo.Path
	cur := at
	for budget := pt.Net.MaxPathLength(); budget > 0; budget-- {
		cfg, ok := pt.Configs[cur.Switch]
		if !ok {
			return path
		}
		out, rw := cfg.Forward(cur.Port, h)
		h = rw.Apply(h)
		path = append(path, topo.Hop{In: cur.Port, Switch: cur.Switch, Out: out})
		outKey := topo.PortKey{Switch: cur.Switch, Port: out}
		if out == topo.DropPort || pt.Net.IsEdgePort(outKey) {
			return path
		}
		next, ok := pt.Net.Peer(outKey)
		if !ok {
			return path
		}
		cur = next
	}
	return path
}

// hopInTag tests BF(hop) ⊓ tag == BF(hop).
func (pt *PathTable) hopInTag(hop topo.Hop, tag bloom.Tag) bool {
	return tag.Contains(pt.Params.Hash(hop.Bytes()))
}

// foldPath recomputes the tag a packet accumulates along a path.
func (pt *PathTable) foldPath(p topo.Path) bloom.Tag {
	var t bloom.Tag
	for _, hop := range p {
		t = t.Union(pt.Params.Hash(hop.Bytes()))
	}
	return t
}

// StrawmanLocalize blames the first intended hop missing from the tag
// (§4.3's rejected baseline, kept for the ablation benchmarks). ok=false
// means every intended hop passed the set test, so no switch can be blamed.
func (pt *PathTable) StrawmanLocalize(r *packet.Report) (topo.SwitchID, bool) {
	for _, hop := range pt.IntendedPath(r.Inport, r.Header) {
		if !pt.hopInTag(hop, r.Tag) {
			return hop.Switch, true
		}
	}
	return 0, false
}

// PathInfer implements Algorithm 4: reconstruct every path consistent with
// the report's tag that starts on a prefix of the intended path, deviates
// at one switch, follows intended forwarding afterwards, and ends at the
// reported exit. Beyond the paper's per-hop membership tests, each
// candidate must also reproduce the reported tag exactly when folded —
// sound because tagging is deterministic, and it eliminates the spurious
// candidates (including the intended path itself) that small filters'
// false positives would otherwise admit. The returned candidate paths let
// the operator pinpoint the deviating switch (FaultySwitch).
func (pt *PathTable) PathInfer(r *packet.Report) []topo.Path {
	intended := pt.IntendedPath(r.Inport, r.Header)

	// Phase 1: the longest intended prefix consistent with the tag,
	// including the first failing hop (Algorithm 4 lines 4-7).
	var comPath topo.Path
	for _, hop := range intended {
		comPath = append(comPath, hop)
		if !pt.hopInTag(hop, r.Tag) {
			break
		}
	}

	// Phase 2: backtrack, replacing the last hop with every tag-consistent
	// deviation and extending along intended forwarding (lines 8-22).
	var pathset []topo.Path
	for len(comPath) > 0 {
		devHop := comPath[len(comPath)-1]
		comPath = comPath[:len(comPath)-1]
		s, x := devHop.Switch, devHop.In

		outs := append(pt.Net.Switch(s).Ports(), topo.DropPort)
		for _, y := range outs {
			alt := topo.Hop{In: x, Switch: s, Out: y}
			if !pt.hopInTag(alt, r.Tag) {
				continue
			}
			if dev, ok := pt.replayDeviation(r, s, x, y, len(comPath)); ok {
				cand := concatPath(comPath, dev)
				if pt.foldPath(cand) == r.Tag {
					pathset = append(pathset, cand)
				}
			}
		}
	}
	return pathset
}

// replayDeviation tests the hypothesis "switch s misforwards this header to
// port y" by replaying forwarding from ⟨s, x⟩: the deviating switch always
// outputs y (rule faults ignore the input port), every other switch follows
// its logical configuration, and the walk carries Algorithm 1's TTL so that
// forwarding loops reconstruct exactly up to the hop where the data plane
// reported TTL expiry. hopsBefore is the number of hops already consumed by
// the common prefix. It returns the deviated suffix and whether the replay
// ends at the reported exit with every hop tag-consistent.
func (pt *PathTable) replayDeviation(r *packet.Report, s topo.SwitchID, x, y topo.PortID, hopsBefore int) (topo.Path, bool) {
	maxHops := pt.Net.MaxPathLength()
	var dev topo.Path
	cur := topo.PortKey{Switch: s, Port: x}
	total := hopsBefore

	h := r.Header
	for total < maxHops {
		var out topo.PortID
		if cur.Switch == s {
			out = y // the hypothesized fault
		} else {
			cfg, ok := pt.Configs[cur.Switch]
			if !ok {
				return nil, false
			}
			var rw *header.Rewrite
			out, rw = cfg.Forward(cur.Port, h)
			h = rw.Apply(h)
		}
		hop := topo.Hop{In: cur.Port, Switch: cur.Switch, Out: out}
		if !pt.hopInTag(hop, r.Tag) {
			return nil, false // inconsistent with the evidence: dismiss
		}
		dev = append(dev, hop)
		total++
		outKey := topo.PortKey{Switch: cur.Switch, Port: out}
		if out == topo.DropPort || pt.Net.IsEdgePort(outKey) {
			return dev, outKey == r.Outport
		}
		if total >= maxHops {
			// TTL expired here — matches reports from looping packets.
			return dev, outKey == r.Outport
		}
		next, ok := pt.Net.Peer(outKey)
		if !ok {
			return dev, outKey == r.Outport // packet left the network here
		}
		cur = next
	}
	return nil, false
}

// concatPath returns a fresh slice holding a followed by b.
func concatPath(a, b topo.Path) topo.Path {
	out := make(topo.Path, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// FaultySwitch compares an intended path with a (recovered or ground-truth)
// real path and returns the switch at the first deviation — the switch to
// blame. ok=false means the paths agree entirely.
func FaultySwitch(intended, real topo.Path) (topo.SwitchID, bool) {
	n := len(intended)
	if len(real) < n {
		n = len(real)
	}
	for i := 0; i < n; i++ {
		if intended[i] != real[i] {
			return real[i].Switch, true
		}
	}
	if len(real) != len(intended) {
		// One path is a strict prefix of the other: the divergence is at
		// the first unmatched hop.
		if len(real) > n {
			return real[n].Switch, true
		}
		return intended[n].Switch, true
	}
	return 0, false
}

// Localize is the convenience entry point the server uses on a failed
// verdict: run PathInfer and, if any candidate real path was recovered,
// name the deviating switch of the first candidate.
func (pt *PathTable) Localize(r *packet.Report) (sw topo.SwitchID, candidates []topo.Path, ok bool) {
	candidates = pt.PathInfer(r)
	if len(candidates) == 0 {
		return 0, nil, false
	}
	intended := pt.IntendedPath(r.Inport, r.Header)
	sw, ok = FaultySwitch(intended, candidates[0])
	return sw, candidates, ok
}
