// The prefix tree of §4.4: destination-prefix forwarding rules organized by
// prefix containment, with a virtual drop rule at 0.0.0.0/0 turning the
// forest into a tree. The tree maintains per-output-port predicates
// incrementally — adding or deleting a rule touches exactly two ports:
//
//	add R (out x, parent out y):   P_x ← P_x ∨ R.match,  P_y ← P_y ∧ ¬R.match
//	del R (out x, parent out y):   P_x ← P_x ∧ ¬R.match, P_y ← P_y ∨ R.match
//
// where R.match = R.prefix ∧ ¬(∨ children prefixes) is the longest-match
// exclusive header set of the rule.

package flowtable

import (
	"fmt"

	"veridp/internal/bdd"
	"veridp/internal/header"
	"veridp/internal/topo"
)

// pnode is one tree node: a rule plus the rules immediately nested inside
// its prefix.
type pnode struct {
	id       uint64
	prefix   Prefix
	outPort  topo.PortID // topo.DropPort for the virtual root
	children []*pnode
}

// PrefixTree holds one switch's destination-prefix rules and their
// incrementally-maintained port predicates.
type PrefixTree struct {
	space  *header.Space
	root   *pnode
	byID   map[uint64]*pnode
	preds  map[topo.PortID]bdd.Ref
	nextID uint64
}

// Delta describes the header-space change one rule add/delete caused: the
// set Δ moved from port From to port To. The path-table updater (§4.4,
// "path entry update") consumes it.
type Delta struct {
	Set  bdd.Ref
	From topo.PortID
	To   topo.PortID
}

// NewPrefixTree returns a tree over the given real ports, initially
// dropping everything (only the virtual 0.0.0.0/0 drop rule is present).
func NewPrefixTree(s *header.Space, ports []topo.PortID) *PrefixTree {
	t := &PrefixTree{
		space:  s,
		root:   &pnode{prefix: Prefix{0, 0}, outPort: topo.DropPort},
		byID:   make(map[uint64]*pnode),
		preds:  make(map[topo.PortID]bdd.Ref, len(ports)+1),
		nextID: 1,
	}
	for _, p := range ports {
		t.preds[p] = bdd.False
	}
	t.preds[topo.DropPort] = bdd.True
	return t
}

// Predicate returns the current P_y for the port (False for unknown ports).
func (t *PrefixTree) Predicate(y topo.PortID) bdd.Ref {
	if r, ok := t.preds[y]; ok {
		return r
	}
	return bdd.False
}

// Predicates returns the full port→predicate map (shared; do not mutate).
func (t *PrefixTree) Predicates() map[topo.PortID]bdd.Ref { return t.preds }

// Len returns the number of real (non-virtual) rules in the tree.
func (t *PrefixTree) Len() int { return len(t.byID) }

// findParent descends from the root to the deepest node whose prefix
// contains p, which will be the new rule's parent.
func (t *PrefixTree) findParent(p Prefix) *pnode {
	cur := t.root
descend:
	for {
		for _, c := range cur.children {
			if c.prefix.Contains(p) {
				cur = c
				continue descend
			}
		}
		return cur
	}
}

// match computes R.match for a node: its prefix minus its children's
// prefixes.
func (t *PrefixTree) match(n *pnode) bdd.Ref {
	m := t.space.DstIPPrefix(n.prefix.IP, n.prefix.Len)
	for _, c := range n.children {
		m = t.space.T.Diff(m, t.space.DstIPPrefix(c.prefix.IP, c.prefix.Len))
	}
	return m
}

// Insert adds a destination-prefix rule forwarding to outPort and returns
// its assigned ID and the predicate delta. Duplicate prefixes are rejected:
// longest-prefix match cannot disambiguate them.
func (t *PrefixTree) Insert(p Prefix, outPort topo.PortID) (uint64, Delta, error) {
	p = p.Canonical()
	if _, known := t.preds[outPort]; !known {
		return 0, Delta{}, fmt.Errorf("flowtable: prefix tree has no port %s", outPort)
	}
	parent := t.findParent(p)
	if parent.prefix.Equal(p) && parent != t.root {
		return 0, Delta{}, fmt.Errorf("flowtable: duplicate prefix %s", p)
	}
	if parent == t.root && p.Len == 0 {
		return 0, Delta{}, fmt.Errorf("flowtable: cannot install 0.0.0.0/0 over the virtual root")
	}
	n := &pnode{id: t.nextID, prefix: p, outPort: outPort}
	t.nextID++

	// Children of the parent that nest inside p move under n.
	kept := parent.children[:0]
	for _, c := range parent.children {
		if p.Contains(c.prefix) {
			n.children = append(n.children, c)
		} else {
			kept = append(kept, c)
		}
	}
	parent.children = append(kept, n)
	t.byID[n.id] = n

	delta := t.match(n)
	// A child forwarding to its parent's port changes no predicate: the
	// same headers keep flowing to the same port (From == To).
	if parent.outPort != outPort {
		t.preds[outPort] = t.space.T.Or(t.preds[outPort], delta)
		t.preds[parent.outPort] = t.space.T.Diff(t.preds[parent.outPort], delta)
	}
	return n.id, Delta{Set: delta, From: parent.outPort, To: outPort}, nil
}

// Remove deletes the rule with the given ID and returns the predicate
// delta: its exclusive match reverts to the parent's port.
func (t *PrefixTree) Remove(id uint64) (Delta, error) {
	n, ok := t.byID[id]
	if !ok {
		return Delta{}, fmt.Errorf("flowtable: prefix tree has no rule %d", id)
	}
	parent := t.parentOf(n)
	delta := t.match(n)

	// Children revert to the parent.
	kept := parent.children[:0]
	for _, c := range parent.children {
		if c != n {
			kept = append(kept, c)
		}
	}
	parent.children = append(kept, n.children...)
	delete(t.byID, id)

	if n.outPort != parent.outPort {
		t.preds[n.outPort] = t.space.T.Diff(t.preds[n.outPort], delta)
		t.preds[parent.outPort] = t.space.T.Or(t.preds[parent.outPort], delta)
	}
	return Delta{Set: delta, From: n.outPort, To: parent.outPort}, nil
}

// parentOf walks from the root to n's parent. The tree is shallow in
// practice (forwarding tables nest a few levels deep), so the walk is cheap.
func (t *PrefixTree) parentOf(n *pnode) *pnode {
	cur := t.root
descend:
	for {
		for _, c := range cur.children {
			if c == n {
				return cur
			}
			if c.prefix.Contains(n.prefix) {
				cur = c
				continue descend
			}
		}
		// Unreachable for nodes present in the tree.
		panic("flowtable: prefix tree parent not found")
	}
}

// LookupPort returns the output port longest-prefix matching dst — the
// reference semantics the predicates must agree with (tested by property
// tests).
func (t *PrefixTree) LookupPort(dst uint32) topo.PortID {
	cur := t.root
descend:
	for {
		for _, c := range cur.children {
			if c.prefix.Matches(dst) {
				cur = c
				continue descend
			}
		}
		return cur.outPort
	}
}
