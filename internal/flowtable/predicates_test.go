package flowtable

import (
	"math/rand"
	"testing"

	"veridp/internal/bdd"
	"veridp/internal/header"
	"veridp/internal/topo"
)

// buildConfig assembles a small config with overlapping priorities, an ACL,
// and a drop rule — enough to exercise every term of the §4.1 equations.
func buildConfig() *SwitchConfig {
	c := NewSwitchConfig([]topo.PortID{1, 2, 3})
	// SSH to 10.0.2/24 goes out port 2 (high priority).
	c.Table.Add(&Rule{Priority: 30, Match: Match{DstPrefix: Prefix{ip("10.0.2.0"), 24}, HasDst: true, DstPort: 22}, Action: ActOutput, OutPort: 2})
	// Everything else to 10.0.2/24 goes out port 3.
	c.Table.Add(&Rule{Priority: 20, Match: Match{DstPrefix: Prefix{ip("10.0.2.0"), 24}}, Action: ActOutput, OutPort: 3})
	// Traffic to 10.0.3/24 is dropped explicitly.
	c.Table.Add(&Rule{Priority: 20, Match: Match{DstPrefix: Prefix{ip("10.0.3.0"), 24}}, Action: ActDrop})
	// In-ACL on port 1: deny UDP.
	c.InACL[1] = ACL{{Match: Match{HasProto: true, Proto: header.ProtoUDP}, Permit: false}}
	// Out-ACL on port 2: deny sources outside 10.0.0.0/8.
	c.OutACL[2] = ACL{{Match: Match{SrcPrefix: Prefix{ip("10.0.0.0"), 8}}, Permit: true}, {Permit: false}}
	return c
}

// simulate mirrors the data-plane pipeline over the config: in-ACL, table
// lookup, out-ACL; returns the effective output port.
func simulate(c *SwitchConfig, inPort topo.PortID, h header.Header) topo.PortID {
	if acl, ok := c.InACL[inPort]; ok && !acl.Allows(h) {
		return topo.DropPort
	}
	r := c.Table.Lookup(inPort, h)
	if r == nil {
		return topo.DropPort
	}
	out := r.EffectiveOut()
	if out == topo.DropPort {
		return topo.DropPort
	}
	known := false
	for _, p := range c.Ports {
		if p == out {
			known = true
		}
	}
	if !known {
		return topo.DropPort
	}
	if acl, ok := c.OutACL[out]; ok && !acl.Allows(h) {
		return topo.DropPort
	}
	return out
}

func TestForwardPredicatesPriority(t *testing.T) {
	s := header.NewSpace()
	c := buildConfig()
	fwd := c.ForwardPredicates(s, 0)
	ssh := header.Header{SrcIP: ip("10.1.1.1"), DstIP: ip("10.0.2.9"), Proto: header.ProtoTCP, DstPort: 22}
	web := header.Header{SrcIP: ip("10.1.1.1"), DstIP: ip("10.0.2.9"), Proto: header.ProtoTCP, DstPort: 80}
	if !s.Contains(fwd[2], ssh) {
		t.Fatal("SSH should forward to port 2")
	}
	if s.Contains(fwd[3], ssh) {
		t.Fatal("high-priority SSH leaked into the low-priority port")
	}
	if !s.Contains(fwd[3], web) {
		t.Fatal("web should forward to port 3")
	}
	dropped := header.Header{DstIP: ip("10.0.3.9")}
	if !s.Contains(fwd[topo.DropPort], dropped) {
		t.Fatal("explicit drop rule missing from ⊥ predicate")
	}
	unmatched := header.Header{DstIP: ip("99.0.0.1")}
	if !s.Contains(fwd[topo.DropPort], unmatched) {
		t.Fatal("unmatched traffic missing from ⊥ predicate")
	}
}

// TestForwardPredicatesPartition: the per-port forwarding predicates
// (including ⊥) partition the header space.
func TestForwardPredicatesPartition(t *testing.T) {
	s := header.NewSpace()
	c := buildConfig()
	fwd := c.ForwardPredicates(s, 0)
	union := bdd.False
	ports := append([]topo.PortID{topo.DropPort}, c.Ports...)
	for i, a := range ports {
		union = s.T.Or(union, fwd[a])
		for _, b := range ports[i+1:] {
			if s.T.And(fwd[a], fwd[b]) != bdd.False {
				t.Fatalf("forwarding predicates for ports %s and %s overlap", a, b)
			}
		}
	}
	if union != bdd.True {
		t.Fatal("forwarding predicates do not cover the header space")
	}
}

func TestTransferPredicatesACLTerms(t *testing.T) {
	s := header.NewSpace()
	c := buildConfig()
	tp := c.TransferPredicates(s)

	// UDP arriving on port 1 is dropped by the in-ACL.
	udp := header.Header{SrcIP: ip("10.1.1.1"), DstIP: ip("10.0.2.9"), Proto: header.ProtoUDP, DstPort: 22}
	if !s.Contains(tp[PortPair{1, topo.DropPort}], udp) {
		t.Fatal("in-ACL drop missing from P_{1,⊥}")
	}
	if s.Contains(tp[PortPair{1, 2}], udp) {
		t.Fatal("in-ACL-filtered packet appears in a forwarding predicate")
	}
	// Same UDP on port 2 (no in-ACL) forwards normally.
	if !s.Contains(tp[PortPair{2, 2}], udp) {
		t.Fatal("UDP on un-ACLed port should forward")
	}
	// SSH from outside 10/8 is blocked by port 2's out-ACL.
	ext := header.Header{SrcIP: ip("99.1.1.1"), DstIP: ip("10.0.2.9"), Proto: header.ProtoTCP, DstPort: 22}
	if !s.Contains(tp[PortPair{3, topo.DropPort}], ext) {
		t.Fatal("out-ACL drop missing from P_{3,⊥}")
	}
	if s.Contains(tp[PortPair{3, 2}], ext) {
		t.Fatal("out-ACL-filtered packet appears in P_{3,2}")
	}
}

// TestTransferAgreesWithSimulation: for random headers, the transfer
// predicates classify exactly as the operational pipeline does — the
// invariant that makes verification free of false positives (§6.3).
func TestTransferAgreesWithSimulation(t *testing.T) {
	s := header.NewSpace()
	c := buildConfig()
	tp := c.TransferPredicates(s)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		h := header.Header{
			SrcIP: rng.Uint32(), DstIP: rng.Uint32(),
			Proto: uint8(rng.Intn(256)), SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
		}
		// Steer half the samples into the configured prefixes.
		switch rng.Intn(4) {
		case 0:
			h.DstIP = ip("10.0.2.0") | rng.Uint32()&0xff
			if rng.Intn(2) == 0 {
				h.DstPort = 22
			}
		case 1:
			h.DstIP = ip("10.0.3.0") | rng.Uint32()&0xff
		}
		if rng.Intn(2) == 0 {
			h.SrcIP = ip("10.0.0.0") | rng.Uint32()&0xffffff
		}
		if rng.Intn(3) == 0 {
			h.Proto = header.ProtoUDP
		}
		inPort := topo.PortID(rng.Intn(3) + 1)
		want := simulate(c, inPort, h)
		hits := 0
		var got topo.PortID
		for _, y := range []topo.PortID{1, 2, 3, topo.DropPort} {
			if s.Contains(tp[PortPair{inPort, y}], h) {
				hits++
				got = y
			}
		}
		if hits != 1 {
			t.Fatalf("trial %d: header in %d transfer predicates, want exactly 1", trial, hits)
		}
		if got != want {
			t.Fatalf("trial %d: predicates route %v to %s, pipeline routes to %s (h=%v in=%d)",
				trial, h, got, want, h, inPort)
		}
	}
}

func TestTransferPerInputPortRules(t *testing.T) {
	s := header.NewSpace()
	c := NewSwitchConfig([]topo.PortID{1, 2, 3})
	// Port-1 traffic detours to port 3 (Figure 5's Rule 5 pattern).
	c.Table.Add(&Rule{Priority: 10, Match: Match{InPort: 1}, Action: ActOutput, OutPort: 3})
	c.Table.Add(&Rule{Priority: 5, Action: ActOutput, OutPort: 2})
	tp := c.TransferPredicates(s)
	h := header.Header{DstIP: ip("10.0.0.1")}
	if !s.Contains(tp[PortPair{1, 3}], h) {
		t.Fatal("in-port rule should send port-1 traffic to 3")
	}
	if s.Contains(tp[PortPair{1, 2}], h) {
		t.Fatal("port-1 traffic leaked to the default rule")
	}
	if !s.Contains(tp[PortPair{2, 2}], h) {
		t.Fatal("port-2 traffic should use the default rule")
	}
}

// TestQuickTransferFuncsAgreeWithForward is the master agreement property:
// for random configurations mixing priorities, in-port matches, ACLs, and
// rewrites, the guarded transfer functions classify every random header to
// exactly the port-and-image that operational forwarding produces.
func TestQuickTransferFuncsAgreeWithForward(t *testing.T) {
	s := header.NewSpace()
	rng := rand.New(rand.NewSource(2024))

	randConfig := func() *SwitchConfig {
		c := NewSwitchConfig([]topo.PortID{1, 2, 3})
		nRules := 3 + rng.Intn(6)
		for i := 0; i < nRules; i++ {
			r := Rule{Priority: uint16(rng.Intn(50))}
			if rng.Intn(2) == 0 {
				r.Match.DstPrefix = Prefix{IP: uint32(10)<<24 | rng.Uint32()&0x00ffff00, Len: 16 + rng.Intn(9)}.Canonical()
			}
			if rng.Intn(4) == 0 {
				r.Match.InPort = topo.PortID(rng.Intn(3) + 1)
			}
			if rng.Intn(4) == 0 {
				r.Match.HasDst, r.Match.DstPort = true, uint16(rng.Intn(1024))
			}
			if rng.Intn(6) == 0 {
				r.Action = ActDrop
			} else {
				r.Action = ActOutput
				r.OutPort = topo.PortID(rng.Intn(3) + 1)
				if rng.Intn(4) == 0 {
					r.Rewrite = &header.Rewrite{SetDstIP: true, DstIP: uint32(192)<<24 | rng.Uint32()&0xffffff}
				}
			}
			c.Table.Add(&r)
		}
		if rng.Intn(2) == 0 {
			c.InACL[1] = ACL{{Match: Match{HasProto: true, Proto: header.ProtoUDP}, Permit: false}}
		}
		if rng.Intn(2) == 0 {
			c.OutACL[2] = ACL{{Match: Match{DstPrefix: Prefix{IP: uint32(192) << 24, Len: 8}}, Permit: false}}
		}
		return c
	}

	for trial := 0; trial < 40; trial++ {
		c := randConfig()
		tf := c.TransferFuncs(s)
		for probe := 0; probe < 100; probe++ {
			h := header.Header{
				SrcIP:   rng.Uint32(),
				DstIP:   uint32(10)<<24 | rng.Uint32()&0xffffff,
				Proto:   []uint8{header.ProtoTCP, header.ProtoUDP}[rng.Intn(2)],
				DstPort: uint16(rng.Intn(2048)),
			}
			in := topo.PortID(rng.Intn(3) + 1)
			wantOut, wantRW := c.Forward(in, h)

			// The header must fall in exactly one guard across the input
			// port's pairs, and that guard must agree on port and rewrite.
			hits := 0
			for _, y := range []topo.PortID{1, 2, 3, topo.DropPort} {
				for _, te := range tf[PortPair{In: in, Out: y}] {
					if !s.Contains(te.Guard, h) {
						continue
					}
					hits++
					if y != wantOut {
						t.Fatalf("trial %d: guards route %v to %s, Forward says %s", trial, h, y, wantOut)
					}
					if !te.Rewrite.Equal(wantRW) {
						t.Fatalf("trial %d: rewrite mismatch: %v vs %v", trial, te.Rewrite, wantRW)
					}
					// The image contains the rewritten header.
					img := s.Transform(s.HeaderSet(h), te.Rewrite)
					if !s.Contains(img, wantRW.Apply(h)) {
						t.Fatalf("trial %d: image misses the forwarded header", trial)
					}
				}
			}
			if hits != 1 {
				t.Fatalf("trial %d: header in %d guards, want exactly 1 (in=%d h=%v)", trial, hits, in, h)
			}
		}
	}
}

func TestRuleToNonexistentPortDrops(t *testing.T) {
	s := header.NewSpace()
	c := NewSwitchConfig([]topo.PortID{1, 2})
	c.Table.Add(&Rule{Priority: 5, Action: ActOutput, OutPort: 9})
	fwd := c.ForwardPredicates(s, 0)
	if fwd[topo.DropPort] != bdd.True {
		t.Fatal("rule to a nonexistent port should drop everything")
	}
}
