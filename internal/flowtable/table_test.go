package flowtable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"veridp/internal/header"
	"veridp/internal/topo"
)

func ip(s string) uint32 { return header.MustParseIP(s) }

func TestPrefixBasics(t *testing.T) {
	p := Prefix{ip("10.1.2.3"), 16}
	if got := p.Canonical(); got.IP != ip("10.1.0.0") {
		t.Fatalf("Canonical = %v", got)
	}
	if !p.Matches(ip("10.1.255.255")) || p.Matches(ip("10.2.0.0")) {
		t.Fatal("Matches wrong")
	}
	if !(Prefix{ip("10.0.0.0"), 8}).Contains(Prefix{ip("10.1.0.0"), 16}) {
		t.Fatal("Contains wrong")
	}
	if (Prefix{ip("10.1.0.0"), 16}).Contains(Prefix{ip("10.0.0.0"), 8}) {
		t.Fatal("Contains not antisymmetric")
	}
	if (Prefix{0, 0}).String() != "0.0.0.0/0" {
		t.Fatal("String wrong")
	}
	if !(Prefix{0, 0}).Matches(0xdeadbeef) {
		t.Fatal("/0 must match everything")
	}
}

func TestMatchSemantics(t *testing.T) {
	m := Match{
		InPort:    2,
		SrcPrefix: Prefix{ip("10.0.1.0"), 24},
		HasDst:    true,
		DstPort:   80,
	}
	h := header.Header{SrcIP: ip("10.0.1.5"), DstIP: ip("10.0.2.1"), Proto: header.ProtoTCP, DstPort: 80}
	if !m.MatchesHeader(2, h) {
		t.Fatal("should match")
	}
	if m.MatchesHeader(1, h) {
		t.Fatal("wrong in-port matched")
	}
	h2 := h
	h2.DstPort = 81
	if m.MatchesHeader(2, h2) {
		t.Fatal("wrong dst port matched")
	}
	h3 := h
	h3.SrcIP = ip("10.0.2.5")
	if m.MatchesHeader(2, h3) {
		t.Fatal("wrong src prefix matched")
	}
	var any Match
	if !any.MatchesHeader(7, h) {
		t.Fatal("zero match should match everything")
	}
	if any.String() != "any" {
		t.Fatalf("zero match String = %q", any.String())
	}
}

// Property: Match.MatchesHeader agrees with Match.HeaderPredicate for
// matches that don't constrain the input port.
func TestQuickMatchAgreesWithPredicate(t *testing.T) {
	s := header.NewSpace()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		m := Match{}
		if rng.Intn(2) == 0 {
			m.SrcPrefix = Prefix{rng.Uint32(), rng.Intn(33)}.Canonical()
		}
		if rng.Intn(2) == 0 {
			m.DstPrefix = Prefix{rng.Uint32(), rng.Intn(33)}.Canonical()
		}
		if rng.Intn(3) == 0 {
			m.HasProto, m.Proto = true, uint8(rng.Intn(256))
		}
		if rng.Intn(3) == 0 {
			m.HasDst, m.DstPort = true, uint16(rng.Intn(65536))
		}
		h := header.Header{
			SrcIP: rng.Uint32(), DstIP: rng.Uint32(),
			Proto: uint8(rng.Intn(256)), SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
		}
		// Bias toward hits: half the time copy matched fields into h.
		if rng.Intn(2) == 0 {
			h.SrcIP = m.SrcPrefix.IP | h.SrcIP&^m.SrcPrefix.mask()
			h.DstIP = m.DstPrefix.IP | h.DstIP&^m.DstPrefix.mask()
			if m.HasProto {
				h.Proto = m.Proto
			}
			if m.HasDst {
				h.DstPort = m.DstPort
			}
		}
		want := m.MatchesHeader(0, h)
		got := s.Contains(m.HeaderPredicate(s), h)
		if got != want {
			t.Fatalf("trial %d: predicate %v vs direct %v for match %v, header %v", trial, got, want, m, h)
		}
	}
}

func TestTableAddDeleteLookup(t *testing.T) {
	tb := NewTable()
	id1, err := tb.Add(&Rule{Priority: 10, Match: Match{DstPrefix: Prefix{ip("10.0.0.0"), 8}}, Action: ActOutput, OutPort: 1})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := tb.Add(&Rule{Priority: 20, Match: Match{DstPrefix: Prefix{ip("10.1.0.0"), 16}}, Action: ActOutput, OutPort: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	// Higher priority wins.
	r := tb.Lookup(1, header.Header{DstIP: ip("10.1.2.3")})
	if r == nil || r.ID != id2 {
		t.Fatalf("Lookup returned %v, want rule %d", r, id2)
	}
	r = tb.Lookup(1, header.Header{DstIP: ip("10.2.2.3")})
	if r == nil || r.ID != id1 {
		t.Fatalf("Lookup returned %v, want rule %d", r, id1)
	}
	if tb.Lookup(1, header.Header{DstIP: ip("11.0.0.1")}) != nil {
		t.Fatal("lookup matched nothing-rule")
	}
	if err := tb.Delete(id2); err != nil {
		t.Fatal(err)
	}
	r = tb.Lookup(1, header.Header{DstIP: ip("10.1.2.3")})
	if r == nil || r.ID != id1 {
		t.Fatal("delete did not take effect")
	}
	if err := tb.Delete(id2); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestTablePriorityTieBreak(t *testing.T) {
	tb := NewTable()
	idA, _ := tb.Add(&Rule{Priority: 5, Action: ActOutput, OutPort: 1})
	tb.Add(&Rule{Priority: 5, Action: ActOutput, OutPort: 2})
	r := tb.Lookup(1, header.Header{})
	if r.ID != idA {
		t.Fatalf("tie should break to earliest-installed rule, got %d", r.ID)
	}
}

func TestTableExplicitIDs(t *testing.T) {
	tb := NewTable()
	if _, err := tb.Add(&Rule{ID: 42, Action: ActDrop}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Add(&Rule{ID: 42, Action: ActDrop}); err == nil {
		t.Fatal("duplicate explicit ID accepted")
	}
	id, _ := tb.Add(&Rule{Action: ActDrop})
	if id <= 42 {
		t.Fatalf("fresh ID %d did not advance past explicit ID", id)
	}
	if tb.Get(42) == nil || tb.Get(999) != nil {
		t.Fatal("Get broken")
	}
}

func TestTableModify(t *testing.T) {
	tb := NewTable()
	id, _ := tb.Add(&Rule{Priority: 1, Action: ActOutput, OutPort: 1})
	if err := tb.Modify(id, func(r *Rule) { r.OutPort = 3 }); err != nil {
		t.Fatal(err)
	}
	if tb.Get(id).OutPort != 3 {
		t.Fatal("modify lost")
	}
	// Priority changes re-sort.
	tb.Add(&Rule{Priority: 5, Action: ActOutput, OutPort: 9})
	if err := tb.Modify(id, func(r *Rule) { r.Priority = 10 }); err != nil {
		t.Fatal(err)
	}
	r := tb.Lookup(1, header.Header{})
	if r.ID != id {
		t.Fatal("priority bump did not re-sort")
	}
	if err := tb.Modify(777, func(r *Rule) {}); err == nil {
		t.Fatal("modify of missing rule succeeded")
	}
}

func TestRuleEffectiveOut(t *testing.T) {
	r := &Rule{Action: ActDrop, OutPort: 3}
	if r.EffectiveOut() != topo.DropPort {
		t.Fatal("drop rule should map to ⊥")
	}
	r.Action = ActOutput
	if r.EffectiveOut() != 3 {
		t.Fatal("output rule should map to its port")
	}
}

func TestACLSemantics(t *testing.T) {
	acl := ACL{
		{Match: Match{SrcPrefix: Prefix{ip("10.9.0.0"), 16}, HasDst: true, DstPort: 22}, Permit: true},
		{Match: Match{SrcPrefix: Prefix{ip("10.9.0.0"), 16}}, Permit: false},
	}
	if !acl.Allows(header.Header{SrcIP: ip("10.9.1.1"), DstPort: 22}) {
		t.Fatal("explicit permit ignored")
	}
	if acl.Allows(header.Header{SrcIP: ip("10.9.1.1"), DstPort: 80}) {
		t.Fatal("deny ignored")
	}
	if !acl.Allows(header.Header{SrcIP: ip("10.8.1.1"), DstPort: 80}) {
		t.Fatal("implicit final permit missing")
	}
}

// Property: ACL.Allows agrees with ACL.Predicate.
func TestQuickACLAgreesWithPredicate(t *testing.T) {
	s := header.NewSpace()
	acl := ACL{
		{Match: Match{SrcPrefix: Prefix{ip("10.9.0.0"), 16}, HasDst: true, DstPort: 22}, Permit: true},
		{Match: Match{SrcPrefix: Prefix{ip("10.9.0.0"), 16}}, Permit: false},
		{Match: Match{HasProto: true, Proto: header.ProtoUDP, DstPrefix: Prefix{ip("10.0.0.0"), 8}}, Permit: false},
	}
	pred := acl.Predicate(s)
	prop := func(src, dst uint32, proto uint8, dport uint16) bool {
		h := header.Header{SrcIP: src, DstIP: dst, Proto: proto, DstPort: dport}
		// Bias some samples into the interesting prefixes.
		if src%3 == 0 {
			h.SrcIP = ip("10.9.0.0") | src&0xffff
		}
		if dst%3 == 0 {
			h.DstIP = ip("10.0.0.0") | dst&0xffffff
		}
		return acl.Allows(h) == s.Contains(pred, h)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
