// The flow table proper: prioritized rule storage with OpenFlow-style
// lookup, plus ACL lists evaluated before and after forwarding.

package flowtable

import (
	"fmt"
	"sort"

	"veridp/internal/bdd"
	"veridp/internal/header"
	"veridp/internal/topo"
)

// Table is one switch's flow table. Rules are kept sorted by descending
// priority (ties by ascending ID) so Lookup is a linear scan that returns
// the first hit — exactly the priority semantics whose violation the paper's
// "premature switch implementation" fault models (§2.2).
//
// Table is not safe for concurrent use; the dataplane switch serializes
// access.
type Table struct {
	rules  []*Rule
	byID   map[uint64]*Rule
	nextID uint64
}

// NewTable returns an empty flow table.
func NewTable() *Table {
	return &Table{byID: make(map[uint64]*Rule), nextID: 1}
}

// Len returns the number of installed rules.
func (t *Table) Len() int { return len(t.rules) }

// Rules returns the rules in match order (descending priority). The slice
// is shared; callers must not mutate it.
func (t *Table) Rules() []*Rule { return t.rules }

// Get returns the rule with the given ID, or nil.
func (t *Table) Get(id uint64) *Rule { return t.byID[id] }

// Add installs a copy of the rule and returns its assigned ID. A zero
// r.ID is assigned the next fresh ID; a nonzero ID must be unused (this is
// how the controller and data plane keep rule identity aligned across the
// southbound channel).
func (t *Table) Add(r *Rule) (uint64, error) {
	c := r.Clone()
	if c.ID == 0 {
		c.ID = t.nextID
	}
	if _, dup := t.byID[c.ID]; dup {
		return 0, fmt.Errorf("flowtable: duplicate rule ID %d", c.ID)
	}
	if c.ID >= t.nextID {
		t.nextID = c.ID + 1
	}
	t.byID[c.ID] = c
	idx := sort.Search(len(t.rules), func(i int) bool {
		ri := t.rules[i]
		if ri.Priority != c.Priority {
			return ri.Priority < c.Priority
		}
		return ri.ID > c.ID
	})
	t.rules = append(t.rules, nil)
	copy(t.rules[idx+1:], t.rules[idx:])
	t.rules[idx] = c
	return c.ID, nil
}

// Delete removes the rule with the given ID.
func (t *Table) Delete(id uint64) error {
	if _, ok := t.byID[id]; !ok {
		return fmt.Errorf("flowtable: no rule with ID %d", id)
	}
	delete(t.byID, id)
	for i, r := range t.rules {
		if r.ID == id {
			t.rules = append(t.rules[:i], t.rules[i+1:]...)
			break
		}
	}
	return nil
}

// Modify replaces the match/action of an existing rule in place, keeping
// its ID. Per §4.4 a modification is semantically delete-then-add; Modify
// exists because external-modification faults (§2.2) alter rules in place.
func (t *Table) Modify(id uint64, mutate func(*Rule)) error {
	r, ok := t.byID[id]
	if !ok {
		return fmt.Errorf("flowtable: no rule with ID %d", id)
	}
	pri := r.Priority
	mutate(r)
	if r.ID != id {
		r.ID = id // identity is not mutable
	}
	if r.Priority != pri {
		// Re-sort under the new priority.
		if err := t.Delete(id); err != nil {
			return err
		}
		if _, err := t.Add(r); err != nil {
			return err
		}
	}
	return nil
}

// Lookup returns the highest-priority rule matching the header on inPort,
// or nil if no rule matches (the paper's drop case (1): "the packet does
// not match any forwarding entry").
func (t *Table) Lookup(inPort topo.PortID, h header.Header) *Rule {
	for _, r := range t.rules {
		if r.Match.MatchesHeader(inPort, h) {
			return r
		}
	}
	return nil
}

// ACLRule is one access-control entry. ACLs are evaluated first-match with
// an implicit final permit, the convention of the Stanford configurations
// the paper parses (deny rules carve exceptions out of default
// connectivity).
type ACLRule struct {
	Match  Match
	Permit bool
}

// ACL is an ordered access-control list bound to a port direction.
type ACL []ACLRule

// Allows reports whether the header passes the ACL.
func (a ACL) Allows(h header.Header) bool {
	for _, r := range a {
		if r.Match.MatchesHeader(0, h) {
			return r.Permit
		}
	}
	return true
}

// Predicate returns the BDD of headers the ACL admits: the P^in / P^out
// port predicates of §4.1.
func (a ACL) Predicate(s *header.Space) bdd.Ref {
	allowed := bdd.False
	remaining := s.All()
	for _, r := range a {
		m := r.Match.HeaderPredicate(s)
		hit := s.T.And(remaining, m)
		if r.Permit {
			allowed = s.T.Or(allowed, hit)
		}
		remaining = s.T.Diff(remaining, m)
	}
	return s.T.Or(allowed, remaining) // implicit final permit
}
