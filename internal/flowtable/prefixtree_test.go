package flowtable

import (
	"math/rand"
	"testing"

	"veridp/internal/bdd"
	"veridp/internal/header"
	"veridp/internal/topo"
)

func TestPrefixTreeEmpty(t *testing.T) {
	s := header.NewSpace()
	pt := NewPrefixTree(s, []topo.PortID{1, 2})
	if pt.Len() != 0 {
		t.Fatal("fresh tree not empty")
	}
	if pt.Predicate(topo.DropPort) != bdd.True {
		t.Fatal("empty tree should drop everything")
	}
	if pt.Predicate(1) != bdd.False || pt.Predicate(99) != bdd.False {
		t.Fatal("empty tree has nonempty port predicates")
	}
	if pt.LookupPort(ip("1.2.3.4")) != topo.DropPort {
		t.Fatal("empty tree should LPM to ⊥")
	}
}

func TestPrefixTreeInsertDelta(t *testing.T) {
	s := header.NewSpace()
	pt := NewPrefixTree(s, []topo.PortID{1, 2})
	_, d, err := pt.Insert(Prefix{ip("10.0.0.0"), 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.From != topo.DropPort || d.To != 1 {
		t.Fatalf("delta ports = %s→%s, want ⊥→1", d.From, d.To)
	}
	if d.Set != s.DstIPPrefix(ip("10.0.0.0"), 8) {
		t.Fatal("delta set should be the whole /8 (no children yet)")
	}
	// Nested rule: delta carves out of the /8.
	_, d2, err := pt.Insert(Prefix{ip("10.1.0.0"), 16}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d2.From != 1 || d2.To != 2 {
		t.Fatalf("nested delta ports = %s→%s, want 1→2", d2.From, d2.To)
	}
	if d2.Set != s.DstIPPrefix(ip("10.1.0.0"), 16) {
		t.Fatal("nested delta should be the /16")
	}
	// Port predicate for 1 excludes the /16 now.
	if s.Contains(pt.Predicate(1), header.Header{DstIP: ip("10.1.2.3")}) {
		t.Fatal("parent predicate still contains the nested /16")
	}
	if !s.Contains(pt.Predicate(2), header.Header{DstIP: ip("10.1.2.3")}) {
		t.Fatal("child predicate missing its /16")
	}
}

func TestPrefixTreeReparenting(t *testing.T) {
	s := header.NewSpace()
	pt := NewPrefixTree(s, []topo.PortID{1, 2, 3})
	// Insert the /24 first, then a covering /16: the /24 must be
	// re-parented under the /16 and the /16's match must exclude it.
	pt.Insert(Prefix{ip("10.1.1.0"), 24}, 1)
	_, d, err := pt.Insert(Prefix{ip("10.1.0.0"), 16}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := s.T.Diff(s.DstIPPrefix(ip("10.1.0.0"), 16), s.DstIPPrefix(ip("10.1.1.0"), 24))
	if d.Set != want {
		t.Fatal("covering rule's delta should exclude the pre-existing /24")
	}
	if pt.LookupPort(ip("10.1.1.7")) != 1 {
		t.Fatal("/24 no longer wins LPM after re-parenting")
	}
	if pt.LookupPort(ip("10.1.2.7")) != 2 {
		t.Fatal("/16 should win outside the /24")
	}
}

func TestPrefixTreeRemove(t *testing.T) {
	s := header.NewSpace()
	pt := NewPrefixTree(s, []topo.PortID{1, 2})
	id8, _, _ := pt.Insert(Prefix{ip("10.0.0.0"), 8}, 1)
	id16, _, _ := pt.Insert(Prefix{ip("10.1.0.0"), 16}, 2)

	// Removing the /16 reverts its space to the /8.
	d, err := pt.Remove(id16)
	if err != nil {
		t.Fatal(err)
	}
	if d.From != 2 || d.To != 1 {
		t.Fatalf("remove delta = %s→%s, want 2→1", d.From, d.To)
	}
	if pt.LookupPort(ip("10.1.2.3")) != 1 {
		t.Fatal("space did not revert to parent")
	}
	// Removing the /8 reverts to drop.
	if _, err := pt.Remove(id8); err != nil {
		t.Fatal(err)
	}
	if pt.Predicate(topo.DropPort) != bdd.True {
		t.Fatal("tree did not return to drop-everything")
	}
	if _, err := pt.Remove(id8); err == nil {
		t.Fatal("double remove succeeded")
	}
}

func TestPrefixTreeRemoveMiddleKeepsGrandchildren(t *testing.T) {
	s := header.NewSpace()
	pt := NewPrefixTree(s, []topo.PortID{1, 2, 3})
	pt.Insert(Prefix{ip("10.0.0.0"), 8}, 1)
	id16, _, _ := pt.Insert(Prefix{ip("10.1.0.0"), 16}, 2)
	pt.Insert(Prefix{ip("10.1.1.0"), 24}, 3)

	pt.Remove(id16)
	if pt.LookupPort(ip("10.1.1.9")) != 3 {
		t.Fatal("grandchild lost after middle removal")
	}
	if pt.LookupPort(ip("10.1.2.9")) != 1 {
		t.Fatal("middle space did not revert to grandparent")
	}
}

func TestPrefixTreeErrors(t *testing.T) {
	s := header.NewSpace()
	pt := NewPrefixTree(s, []topo.PortID{1})
	if _, _, err := pt.Insert(Prefix{ip("10.0.0.0"), 8}, 9); err == nil {
		t.Fatal("unknown port accepted")
	}
	if _, _, err := pt.Insert(Prefix{0, 0}, 1); err == nil {
		t.Fatal("default route over virtual root accepted")
	}
	pt.Insert(Prefix{ip("10.0.0.0"), 8}, 1)
	if _, _, err := pt.Insert(Prefix{ip("10.0.0.0"), 8}, 1); err == nil {
		t.Fatal("duplicate prefix accepted")
	}
}

// TestPrefixTreeMatchesIncrementalVsScratch: after a random add/remove
// workload, the incrementally-maintained predicates equal predicates
// computed from scratch on an equivalent priority table — the §4.4
// correctness claim.
func TestPrefixTreeMatchesIncrementalVsScratch(t *testing.T) {
	s := header.NewSpace()
	ports := []topo.PortID{1, 2, 3, 4}
	pt := NewPrefixTree(s, ports)
	rng := rand.New(rand.NewSource(7))

	type live struct {
		id   uint64
		pfx  Prefix
		port topo.PortID
	}
	var rules []live
	for step := 0; step < 300; step++ {
		if len(rules) == 0 || rng.Intn(3) != 0 {
			pfx := Prefix{rng.Uint32(), 8 + rng.Intn(17)}.Canonical()
			port := ports[rng.Intn(len(ports))]
			id, _, err := pt.Insert(pfx, port)
			if err != nil {
				continue // duplicate prefix; skip
			}
			rules = append(rules, live{id, pfx, port})
		} else {
			i := rng.Intn(len(rules))
			if _, err := pt.Remove(rules[i].id); err != nil {
				t.Fatal(err)
			}
			rules = append(rules[:i], rules[i+1:]...)
		}
	}

	// Scratch recomputation: LPM as a priority table (priority = length).
	cfg := NewSwitchConfig(ports)
	for _, r := range rules {
		cfg.Table.Add(&Rule{
			Priority: uint16(r.pfx.Len),
			Match:    Match{DstPrefix: r.pfx},
			Action:   ActOutput,
			OutPort:  r.port,
		})
	}
	scratch := cfg.ForwardPredicates(s, 0)
	for _, p := range append([]topo.PortID{topo.DropPort}, ports...) {
		if pt.Predicate(p) != scratch[p] {
			t.Fatalf("incremental predicate for port %s diverged from scratch recomputation", p)
		}
	}
}

// TestPrefixTreeLPMAgreesWithPredicates: LookupPort and the predicates give
// the same answer for random addresses.
func TestPrefixTreeLPMAgreesWithPredicates(t *testing.T) {
	s := header.NewSpace()
	ports := []topo.PortID{1, 2, 3}
	pt := NewPrefixTree(s, ports)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 100; i++ {
		pfx := Prefix{rng.Uint32() & 0x0fffffff, 4 + rng.Intn(25)}.Canonical()
		pt.Insert(pfx, ports[rng.Intn(len(ports))])
	}
	for trial := 0; trial < 1000; trial++ {
		dst := rng.Uint32() & 0x1fffffff
		want := pt.LookupPort(dst)
		hits := 0
		var got topo.PortID
		for _, p := range append([]topo.PortID{topo.DropPort}, ports...) {
			if s.Contains(pt.Predicate(p), header.Header{DstIP: dst}) {
				hits++
				got = p
			}
		}
		if hits != 1 || got != want {
			t.Fatalf("dst %s: LPM says %s, predicates say %s (hits=%d)",
				header.IPString(dst), want, got, hits)
		}
	}
}
