// Multi-table pipelines: §3.3 notes that "a typical switch can contain a
// cascade of flow tables, each of which may hold thousands of flow
// entries". This file models such cascades — prioritized tables chained by
// goto-table instructions, with write-action rewrite semantics (matches see
// the original header; rewrites merge and apply at egress) — and compiles
// them down to the single-table form the rest of the system consumes.
//
// Flattening walks every goto chain, intersecting matches and assigning
// lexicographic priorities (earlier tables dominate), which preserves
// first-match semantics exactly: a packet's winning chain in the pipeline
// is the highest-priority non-empty intersection in the flattened table.
// The property tests in pipeline_test.go verify classification equivalence
// on randomized pipelines.

package flowtable

import (
	"fmt"

	"veridp/internal/header"
	"veridp/internal/topo"
)

// InstructionKind selects what a pipeline entry does on match.
type InstructionKind uint8

const (
	// InstrOutput emits the packet on a port (ending the pipeline).
	InstrOutput InstructionKind = iota
	// InstrDrop discards the packet.
	InstrDrop
	// InstrGoto continues matching in a later table.
	InstrGoto
)

// PipelineEntry is one rule of one pipeline table.
type PipelineEntry struct {
	Priority uint16
	Match    Match
	Kind     InstructionKind
	OutPort  topo.PortID // for InstrOutput
	Goto     int         // for InstrGoto; must exceed the current table index
	// Rewrite accumulates (write-actions semantics): later tables override
	// per field; the merged rewrite applies once at egress.
	Rewrite *header.Rewrite
}

// Pipeline is an ordered cascade of tables; matching starts in table 0.
type Pipeline struct {
	Tables [][]PipelineEntry
}

// Validate checks table references, monotone gotos, and that every table
// carries a table-miss entry (a full-wildcard match, as the OpenFlow spec
// requires of well-formed pipelines). The miss entries make goto chains
// total, which is what lets Flatten preserve semantics exactly.
func (p *Pipeline) Validate() error {
	if len(p.Tables) == 0 {
		return fmt.Errorf("flowtable: empty pipeline")
	}
	for ti, tbl := range p.Tables {
		miss := false
		for ei, e := range tbl {
			if e.Kind == InstrGoto && (e.Goto <= ti || e.Goto >= len(p.Tables)) {
				return fmt.Errorf("flowtable: table %d entry %d: goto %d must target a later table", ti, ei, e.Goto)
			}
			if e.Match == (Match{}) {
				miss = true
			}
		}
		if !miss {
			return fmt.Errorf("flowtable: table %d lacks a table-miss (full-wildcard) entry", ti)
		}
	}
	return nil
}

// Classify runs the pipeline on one packet: in each visited table, the
// highest-priority matching entry (ties to earlier entries) decides.
// Falling off a table — or a goto chain that never outputs — drops, per
// OpenFlow's table-miss default.
func (p *Pipeline) Classify(in topo.PortID, h header.Header) (topo.PortID, *header.Rewrite) {
	var acc *header.Rewrite
	t := 0
	for {
		e := bestMatch(p.Tables[t], in, h)
		if e == nil {
			return topo.DropPort, nil
		}
		acc = mergeRewrites(acc, e.Rewrite)
		switch e.Kind {
		case InstrOutput:
			if acc.IsZero() {
				acc = nil
			}
			return e.OutPort, acc
		case InstrDrop:
			return topo.DropPort, nil
		case InstrGoto:
			t = e.Goto
		default:
			return topo.DropPort, nil
		}
	}
}

// bestMatch scans a table in declaration order, honoring priorities.
func bestMatch(tbl []PipelineEntry, in topo.PortID, h header.Header) *PipelineEntry {
	var best *PipelineEntry
	for i := range tbl {
		e := &tbl[i]
		if !e.Match.MatchesHeader(in, h) {
			continue
		}
		if best == nil || e.Priority > best.Priority {
			best = e
		}
	}
	return best
}

// mergeRewrites overlays b on a (b's set fields win).
func mergeRewrites(a, b *header.Rewrite) *header.Rewrite {
	if b.IsZero() {
		return a
	}
	out := header.Rewrite{}
	if a != nil {
		out = *a
	}
	if b.SetSrcIP {
		out.SetSrcIP, out.SrcIP = true, b.SrcIP
	}
	if b.SetDstIP {
		out.SetDstIP, out.DstIP = true, b.DstIP
	}
	if b.SetSrcPort {
		out.SetSrcPort, out.SrcPort = true, b.SrcPort
	}
	if b.SetDstPort {
		out.SetDstPort, out.DstPort = true, b.DstPort
	}
	return &out
}

// Intersect computes the conjunction of two matches, reporting ok=false
// when they cannot both hold (disjoint prefixes, conflicting exact fields,
// or conflicting input ports).
func (m Match) Intersect(o Match) (Match, bool) {
	out := m
	switch {
	case m.InPort == 0:
		out.InPort = o.InPort
	case o.InPort == 0 || o.InPort == m.InPort:
		// keep m.InPort
	default:
		return Match{}, false
	}
	var ok bool
	if out.SrcPrefix, ok = intersectPrefix(m.SrcPrefix, o.SrcPrefix); !ok {
		return Match{}, false
	}
	if out.DstPrefix, ok = intersectPrefix(m.DstPrefix, o.DstPrefix); !ok {
		return Match{}, false
	}
	if out.HasProto, out.Proto, ok = intersectExact8(m.HasProto, m.Proto, o.HasProto, o.Proto); !ok {
		return Match{}, false
	}
	if out.HasSrc, out.SrcPort, ok = intersectExact16(m.HasSrc, m.SrcPort, o.HasSrc, o.SrcPort); !ok {
		return Match{}, false
	}
	if out.HasDst, out.DstPort, ok = intersectExact16(m.HasDst, m.DstPort, o.HasDst, o.DstPort); !ok {
		return Match{}, false
	}
	// Exact ports must still fall inside the intersected prefixes.
	return out, true
}

func intersectPrefix(a, b Prefix) (Prefix, bool) {
	switch {
	case a.Len == 0:
		return b.Canonical(), true
	case b.Len == 0:
		return a.Canonical(), true
	case a.Contains(b):
		return b.Canonical(), true
	case b.Contains(a):
		return a.Canonical(), true
	default:
		return Prefix{}, false
	}
}

func intersectExact8(hasA bool, a uint8, hasB bool, b uint8) (bool, uint8, bool) {
	switch {
	case !hasA:
		return hasB, b, true
	case !hasB:
		return true, a, true
	case a == b:
		return true, a, true
	default:
		return false, 0, false
	}
}

func intersectExact16(hasA bool, a uint16, hasB bool, b uint16) (bool, uint16, bool) {
	switch {
	case !hasA:
		return hasB, b, true
	case !hasB:
		return true, a, true
	case a == b:
		return true, a, true
	default:
		return false, 0, false
	}
}

// Flatten compiles the pipeline into an equivalent single prioritized
// table. Every root-to-egress goto chain becomes one rule whose match is
// the chain's intersection and whose priority encodes the chain's
// lexicographic rank, so Lookup picks exactly the chain Classify would.
// Chains ending on a table miss become drops only implicitly (the
// flattened table's miss is also a drop), so misses need no rules.
func (p *Pipeline) Flatten() (*Table, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	type chain struct {
		match   Match
		rewrite *header.Rewrite
		kind    InstructionKind
		out     topo.PortID
		rank    []int // per-table order index of the chosen entry
	}
	var chains []chain

	// Entries of one table ordered by effective precedence: priority desc,
	// then declaration order.
	order := func(tbl []PipelineEntry) []int {
		idx := make([]int, len(tbl))
		for i := range idx {
			idx[i] = i
		}
		// Insertion sort by (priority desc, index asc): stable and simple.
		for i := 1; i < len(idx); i++ {
			for j := i; j > 0 && tbl[idx[j]].Priority > tbl[idx[j-1]].Priority; j-- {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			}
		}
		return idx
	}

	var walk func(t int, m Match, rw *header.Rewrite, rank []int) error
	walk = func(t int, m Match, rw *header.Rewrite, rank []int) error {
		for pos, ei := range order(p.Tables[t]) {
			e := p.Tables[t][ei]
			im, ok := m.Intersect(e.Match)
			if !ok {
				continue
			}
			merged := mergeRewrites(rw, e.Rewrite)
			nextRank := append(append([]int(nil), rank...), pos)
			if e.Kind == InstrGoto {
				if err := walk(e.Goto, im, merged, nextRank); err != nil {
					return err
				}
				continue
			}
			chains = append(chains, chain{match: im, rewrite: merged, kind: e.Kind, out: e.OutPort, rank: nextRank})
		}
		return nil
	}
	if err := walk(0, Match{}, nil, nil); err != nil {
		return nil, err
	}

	// Lexicographic rank → descending priority. Sort chains by rank.
	less := func(a, b []int) bool {
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				return a[i] < b[i]
			}
		}
		return len(a) < len(b)
	}
	for i := 1; i < len(chains); i++ {
		for j := i; j > 0 && less(chains[j].rank, chains[j-1].rank); j-- {
			chains[j], chains[j-1] = chains[j-1], chains[j]
		}
	}
	if len(chains) > 65000 {
		return nil, fmt.Errorf("flowtable: flattened pipeline has %d chains (priority space exhausted)", len(chains))
	}

	out := NewTable()
	pri := uint16(65000)
	for _, c := range chains {
		r := Rule{Priority: pri, Match: c.match, Rewrite: c.rewrite}
		pri--
		if c.kind == InstrDrop {
			r.Action = ActDrop
		} else {
			r.Action = ActOutput
			r.OutPort = c.out
		}
		if c.rewrite.IsZero() {
			r.Rewrite = nil
		}
		if _, err := out.Add(&r); err != nil {
			return nil, err
		}
	}
	return out, nil
}
