// Translation from switch configurations to transfer predicates — the
// control-plane abstraction Algorithm 2 traverses (§4.1):
//
//	P_{x,y} = P_x^in ∧ P_y^fwd ∧ P_y^out                        (y ≠ ⊥)
//	P_{x,⊥} = ¬P_x^in ∨ (P_x^in ∧ P_⊥^fwd)
//	          ∨ (P_x^in ∧ ∨_y (P_y^fwd ∧ ¬P_y^out))
//
// where P_x^in / P_y^out are the in/out-bound ACL predicates and P_y^fwd is
// the set of headers the prioritized forwarding table sends to port y.

package flowtable

import (
	"veridp/internal/bdd"
	"veridp/internal/header"
	"veridp/internal/topo"
)

// SwitchConfig is the control plane's view of one switch: its real ports,
// forwarding table, and per-port ACLs (absent entries mean permit-all).
type SwitchConfig struct {
	Ports  []topo.PortID
	Table  *Table
	InACL  map[topo.PortID]ACL
	OutACL map[topo.PortID]ACL
}

// NewSwitchConfig returns a config with an empty table and no ACLs.
func NewSwitchConfig(ports []topo.PortID) *SwitchConfig {
	return &SwitchConfig{
		Ports:  ports,
		Table:  NewTable(),
		InACL:  make(map[topo.PortID]ACL),
		OutACL: make(map[topo.PortID]ACL),
	}
}

// Classify runs the operational pipeline on one concrete packet: in-ACL,
// prioritized table lookup, out-ACL. Every drop cause (ACL filter, no
// match, explicit drop, nonexistent output port) maps to ⊥. The data-plane
// switch and the verification server's intended-path computation share this
// single definition, so the transfer predicates and the pipeline can never
// disagree by construction drift.
func (c *SwitchConfig) Classify(in topo.PortID, h header.Header) topo.PortID {
	out, _ := c.Forward(in, h)
	return out
}

// Forward is Classify plus the matched rule's rewrite (nil when none
// applies or the packet drops). Out-ACLs are evaluated on the header as it
// will leave the switch, i.e. after the rewrite.
func (c *SwitchConfig) Forward(in topo.PortID, h header.Header) (topo.PortID, *header.Rewrite) {
	if acl, ok := c.InACL[in]; ok && !acl.Allows(h) {
		return topo.DropPort, nil
	}
	r := c.Table.Lookup(in, h)
	if r == nil {
		return topo.DropPort, nil
	}
	out := r.EffectiveOut()
	if out == topo.DropPort {
		return topo.DropPort, nil
	}
	valid := false
	for _, p := range c.Ports {
		if p == out {
			valid = true
			break
		}
	}
	if !valid {
		return topo.DropPort, nil
	}
	rw := r.Rewrite
	if rw.IsZero() {
		rw = nil
	}
	if acl, ok := c.OutACL[out]; ok && !acl.Allows(rw.Apply(h)) {
		return topo.DropPort, nil
	}
	return out, rw
}

// inPredicate returns P_x^in.
func (c *SwitchConfig) inPredicate(s *header.Space, x topo.PortID) bdd.Ref {
	if acl, ok := c.InACL[x]; ok {
		return acl.Predicate(s)
	}
	return s.All()
}

// outPredicate returns P_y^out.
func (c *SwitchConfig) outPredicate(s *header.Space, y topo.PortID) bdd.Ref {
	if acl, ok := c.OutACL[y]; ok {
		return acl.Predicate(s)
	}
	return s.All()
}

// usesInPort reports whether any rule constrains the input port, in which
// case forwarding predicates differ per input port.
func (c *SwitchConfig) usesInPort() bool {
	for _, r := range c.Table.Rules() {
		if r.Match.InPort != 0 {
			return true
		}
	}
	return false
}

// ForwardPredicates computes P_y^fwd for every output port y, including ⊥,
// for packets arriving on inPort (pass 0 when no rule matches on input
// port). The scan walks rules in match order, tracking the header set not
// yet claimed by a higher-priority rule, so overlapping priorities resolve
// exactly as Lookup does.
func (c *SwitchConfig) ForwardPredicates(s *header.Space, inPort topo.PortID) map[topo.PortID]bdd.Ref {
	preds := make(map[topo.PortID]bdd.Ref, len(c.Ports)+1)
	for _, p := range c.Ports {
		preds[p] = s.None()
	}
	preds[topo.DropPort] = s.None()
	remaining := s.All()
	for _, r := range c.Table.Rules() {
		if remaining == bdd.False {
			break
		}
		if r.Match.InPort != 0 && r.Match.InPort != inPort {
			continue
		}
		m := r.Match.HeaderPredicate(s)
		hit := s.T.And(remaining, m)
		if hit == bdd.False {
			continue
		}
		out := r.EffectiveOut()
		if _, known := preds[out]; !known {
			// Rule points at a nonexistent port: the packet vanishes,
			// which the consistency model treats as a drop.
			out = topo.DropPort
		}
		preds[out] = s.T.Or(preds[out], hit)
		remaining = s.T.Diff(remaining, hit)
	}
	// Unmatched headers drop: P_⊥^fwd = ¬(∨_y P_y^fwd).
	preds[topo.DropPort] = s.T.Or(preds[topo.DropPort], remaining)
	return preds
}

// PortPair indexes a transfer predicate: packets entering In may leave Out.
type PortPair struct {
	In  topo.PortID
	Out topo.PortID // may be topo.DropPort
}

// TransferEntry is one slice of a transfer function: packets matching
// Guard leave through the pair's output port carrying Rewrite (nil for
// unmodified forwarding). Entries of one pair have pairwise-disjoint
// guards.
type TransferEntry struct {
	Guard   bdd.Ref
	Rewrite *header.Rewrite
}

// TransferFuncs generalizes TransferPredicates to rewriting rules: for
// every ⟨in, out⟩ pair, the guarded rewrites that apply. For configurations
// without rewrites it degenerates to exactly one nil-rewrite entry per
// pair, guard equal to the §4.1 transfer predicate. Out-bound ACLs are
// evaluated on the post-rewrite header via preimages.
func (c *SwitchConfig) TransferFuncs(s *header.Space) map[PortPair][]TransferEntry {
	out := make(map[PortPair][]TransferEntry, len(c.Ports)*(len(c.Ports)+1))
	addEntry := func(pp PortPair, guard bdd.Ref, rw *header.Rewrite) {
		if guard == bdd.False {
			return
		}
		for i := range out[pp] {
			if out[pp][i].Rewrite.Equal(rw) {
				out[pp][i].Guard = s.T.Or(out[pp][i].Guard, guard)
				return
			}
		}
		out[pp] = append(out[pp], TransferEntry{Guard: guard, Rewrite: rw})
	}

	// The expensive priority scan is input-port independent unless some
	// rule matches on the input port; compute it once in that case and
	// specialize per port only by the (cheap) in-ACL predicate.
	perInput := c.usesInPort()
	var sharedFlat []struct {
		y     topo.PortID
		guard bdd.Ref
		rw    *header.Rewrite
	}
	var sharedDrop bdd.Ref
	if !perInput {
		sharedFlat, sharedDrop = c.scanRules(s, 0)
	}

	for _, x := range c.Ports {
		flat, drop := sharedFlat, sharedDrop
		if perInput {
			flat, drop = c.scanRules(s, x)
		}
		pin := c.inPredicate(s, x)
		if pin == bdd.True {
			for _, fe := range flat {
				addEntry(PortPair{x, fe.y}, fe.guard, fe.rw)
			}
			addEntry(PortPair{x, topo.DropPort}, drop, nil)
			continue
		}
		for _, fe := range flat {
			addEntry(PortPair{x, fe.y}, s.T.And(pin, fe.guard), fe.rw)
		}
		addEntry(PortPair{x, topo.DropPort},
			s.T.Or(s.T.Not(pin), s.T.And(pin, drop)), nil)
	}
	return out
}

// scanRules runs the priority scan for packets arriving on inPort (0 when
// no rule constrains the input port), without the in-ACL term. It returns
// per-output guarded rewrites plus the drop guard.
func (c *SwitchConfig) scanRules(s *header.Space, inPort topo.PortID) ([]struct {
	y     topo.PortID
	guard bdd.Ref
	rw    *header.Rewrite
}, bdd.Ref) {
	type flatEntry = struct {
		y     topo.PortID
		guard bdd.Ref
		rw    *header.Rewrite
	}
	var flat []flatEntry
	drop := bdd.False
	remaining := s.All()
	outACLPred := map[topo.PortID]bdd.Ref{}
	for _, r := range c.Table.Rules() {
		if remaining == bdd.False {
			break
		}
		if r.Match.InPort != 0 && r.Match.InPort != inPort {
			continue
		}
		hit := s.T.And(remaining, r.Match.HeaderPredicate(s))
		if hit == bdd.False {
			continue
		}
		remaining = s.T.Diff(remaining, hit)

		y := r.EffectiveOut()
		if y != topo.DropPort && !validOut(c.Ports, y) {
			y = topo.DropPort // nonexistent port: the packet drops
		}
		if y == topo.DropPort {
			drop = s.T.Or(drop, hit)
			continue
		}
		rw := r.Rewrite
		if rw.IsZero() {
			rw = nil
		}
		pass := hit
		if acl, ok := c.OutACL[y]; ok {
			p, cached := outACLPred[y]
			if !cached {
				p = acl.Predicate(s)
				outACLPred[y] = p
			}
			allowed := s.Preimage(p, rw)
			pass = s.T.And(hit, allowed)
			drop = s.T.Or(drop, s.T.Diff(hit, allowed))
		}
		// Merge into an existing (y, rw) bucket.
		merged := false
		for i := range flat {
			if flat[i].y == y && flat[i].rw.Equal(rw) {
				flat[i].guard = s.T.Or(flat[i].guard, pass)
				merged = true
				break
			}
		}
		if !merged && pass != bdd.False {
			flat = append(flat, flatEntry{y: y, guard: pass, rw: rw})
		}
	}
	drop = s.T.Or(drop, remaining) // unmatched headers drop
	return flat, drop
}

func validOut(ports []topo.PortID, p topo.PortID) bool {
	for _, q := range ports {
		if q == p {
			return true
		}
	}
	return false
}

// TransferPredicates computes P_{x,y} for every input port x and output
// port y ∈ Ports ∪ {⊥}, composing ACLs and forwarding per the §4.1
// equations. This is the whole-switch computation used for initial
// path-table construction; §4.4's incremental path goes through PrefixTree.
func (c *SwitchConfig) TransferPredicates(s *header.Space) map[PortPair]bdd.Ref {
	out := make(map[PortPair]bdd.Ref, len(c.Ports)*(len(c.Ports)+1))

	// Forwarding predicates: shared across input ports unless some rule
	// matches on the input port.
	perInput := c.usesInPort()
	var shared map[topo.PortID]bdd.Ref
	if !perInput {
		shared = c.ForwardPredicates(s, 0)
	}

	// Out-ACL predicates are input-independent; compute once.
	outPred := make(map[topo.PortID]bdd.Ref, len(c.Ports))
	for _, y := range c.Ports {
		outPred[y] = c.outPredicate(s, y)
	}

	for _, x := range c.Ports {
		fwd := shared
		if perInput {
			fwd = c.ForwardPredicates(s, x)
		}
		pin := c.inPredicate(s, x)

		// Drop predicate accumulates its three causes.
		drop := s.T.Not(pin)                                  // filtered by in-ACL
		drop = s.T.Or(drop, s.T.And(pin, fwd[topo.DropPort])) // not forwarded

		for _, y := range c.Ports {
			pxy := s.T.And(pin, s.T.And(fwd[y], outPred[y]))
			out[PortPair{x, y}] = pxy
			blocked := s.T.And(fwd[y], s.T.Not(outPred[y])) // filtered by out-ACL
			drop = s.T.Or(drop, s.T.And(pin, blocked))
		}
		out[PortPair{x, topo.DropPort}] = drop
	}
	return out
}
