package flowtable

import (
	"math/rand"
	"testing"

	"veridp/internal/header"
	"veridp/internal/topo"
)

// missEntry is the mandatory table-miss: drop everything unmatched.
func missEntry() PipelineEntry {
	return PipelineEntry{Priority: 0, Kind: InstrDrop}
}

func TestPipelineValidate(t *testing.T) {
	if err := (&Pipeline{}).Validate(); err == nil {
		t.Fatal("empty pipeline accepted")
	}
	// Goto must point forward.
	p := &Pipeline{Tables: [][]PipelineEntry{
		{{Kind: InstrGoto, Goto: 0}, missEntry()},
		{missEntry()},
	}}
	if err := p.Validate(); err == nil {
		t.Fatal("self-goto accepted")
	}
	// Missing table-miss entry.
	p = &Pipeline{Tables: [][]PipelineEntry{
		{{Match: Match{HasDst: true, DstPort: 80}, Kind: InstrDrop}},
	}}
	if err := p.Validate(); err == nil {
		t.Fatal("missing table-miss accepted")
	}
}

func TestPipelineClassifyCascade(t *testing.T) {
	// Table 0: ACL stage (drop one source, else goto forwarding).
	// Table 1: forwarding by destination with a rewrite.
	p := &Pipeline{Tables: [][]PipelineEntry{
		{
			{Priority: 10, Match: Match{SrcPrefix: Prefix{IP: ip("10.9.0.0"), Len: 16}}, Kind: InstrDrop},
			{Priority: 0, Kind: InstrGoto, Goto: 1},
		},
		{
			{Priority: 10, Match: Match{DstPrefix: Prefix{IP: ip("10.0.2.0"), Len: 24}}, Kind: InstrOutput, OutPort: 2,
				Rewrite: &header.Rewrite{SetDstPort: true, DstPort: 8080}},
			missEntry(),
		},
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Denied at stage 0.
	out, _ := p.Classify(1, header.Header{SrcIP: ip("10.9.1.1"), DstIP: ip("10.0.2.1")})
	if out != topo.DropPort {
		t.Fatalf("ACL stage failed: %s", out)
	}
	// Forwarded with the rewrite.
	out, rw := p.Classify(1, header.Header{SrcIP: ip("10.8.1.1"), DstIP: ip("10.0.2.1")})
	if out != 2 || rw == nil || !rw.SetDstPort || rw.DstPort != 8080 {
		t.Fatalf("forwarding stage: out=%s rw=%v", out, rw)
	}
	// Unrouted traffic hits table 1's miss.
	out, _ = p.Classify(1, header.Header{SrcIP: ip("10.8.1.1"), DstIP: ip("99.0.0.1")})
	if out != topo.DropPort {
		t.Fatalf("table-miss: %s", out)
	}
}

func TestPipelineRewriteMerge(t *testing.T) {
	// Both stages write fields; the later one wins per field.
	p := &Pipeline{Tables: [][]PipelineEntry{
		{{Priority: 1, Kind: InstrGoto, Goto: 1,
			Rewrite: &header.Rewrite{SetDstIP: true, DstIP: 1, SetDstPort: true, DstPort: 1}}},
		{{Priority: 1, Kind: InstrOutput, OutPort: 1,
			Rewrite: &header.Rewrite{SetDstPort: true, DstPort: 2}}},
	}}
	// Add misses to satisfy validation.
	p.Tables[0][0].Match = Match{}
	p.Tables[1][0].Match = Match{}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	_, rw := p.Classify(1, header.Header{})
	if rw == nil || rw.DstIP != 1 || rw.DstPort != 2 {
		t.Fatalf("merge wrong: %v", rw)
	}
}

func TestMatchIntersect(t *testing.T) {
	a := Match{DstPrefix: Prefix{IP: ip("10.0.0.0"), Len: 8}, HasDst: true, DstPort: 80}
	b := Match{DstPrefix: Prefix{IP: ip("10.1.0.0"), Len: 16}, InPort: 2}
	got, ok := a.Intersect(b)
	if !ok {
		t.Fatal("compatible matches failed to intersect")
	}
	if got.DstPrefix.Len != 16 || got.InPort != 2 || !got.HasDst || got.DstPort != 80 {
		t.Fatalf("intersection %v", got)
	}
	// Disjoint prefixes.
	c := Match{DstPrefix: Prefix{IP: ip("11.0.0.0"), Len: 8}}
	if _, ok := a.Intersect(c); ok {
		t.Fatal("disjoint prefixes intersected")
	}
	// Conflicting exact fields / in-ports.
	d := Match{HasDst: true, DstPort: 443}
	if _, ok := a.Intersect(d); ok {
		t.Fatal("conflicting ports intersected")
	}
	e := Match{InPort: 3}
	if _, ok := b.Intersect(e); ok {
		t.Fatal("conflicting in-ports intersected")
	}
}

// randPipeline builds a random validated 2-3 stage pipeline.
func randPipeline(rng *rand.Rand) *Pipeline {
	nTables := 2 + rng.Intn(2)
	p := &Pipeline{Tables: make([][]PipelineEntry, nTables)}
	for t := 0; t < nTables; t++ {
		nEntries := 1 + rng.Intn(4)
		for i := 0; i < nEntries; i++ {
			e := PipelineEntry{Priority: uint16(rng.Intn(20))}
			if rng.Intn(2) == 0 {
				e.Match.DstPrefix = Prefix{IP: uint32(10)<<24 | rng.Uint32()&0x00ffff00, Len: 16 + rng.Intn(9)}.Canonical()
			}
			if rng.Intn(4) == 0 {
				e.Match.HasDst, e.Match.DstPort = true, uint16(rng.Intn(4))
			}
			if t < nTables-1 && rng.Intn(3) == 0 {
				e.Kind = InstrGoto
				e.Goto = t + 1 + rng.Intn(nTables-t-1)
			} else if rng.Intn(5) == 0 {
				e.Kind = InstrDrop
			} else {
				e.Kind = InstrOutput
				e.OutPort = topo.PortID(rng.Intn(4) + 1)
			}
			if rng.Intn(4) == 0 {
				e.Rewrite = &header.Rewrite{SetDstPort: true, DstPort: uint16(rng.Intn(100))}
			}
			p.Tables[t] = append(p.Tables[t], e)
		}
		// Mandatory miss: forward to a distinctive port or drop.
		miss := missEntry()
		if rng.Intn(2) == 0 {
			miss.Kind = InstrOutput
			miss.OutPort = 4
		}
		if t < nTables-1 && rng.Intn(3) == 0 {
			miss.Kind = InstrGoto
			miss.Goto = t + 1
		}
		p.Tables[t] = append(p.Tables[t], miss)
	}
	return p
}

// TestQuickFlattenEquivalence: Flatten preserves classification (port and
// rewrite) for random pipelines and random packets — the compiler's
// correctness property.
func TestQuickFlattenEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 60; trial++ {
		p := randPipeline(rng)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		flat, err := p.Flatten()
		if err != nil {
			t.Fatal(err)
		}
		cfg := &SwitchConfig{Ports: []topo.PortID{1, 2, 3, 4}, Table: flat,
			InACL: map[topo.PortID]ACL{}, OutACL: map[topo.PortID]ACL{}}
		for probe := 0; probe < 200; probe++ {
			h := header.Header{
				SrcIP:   rng.Uint32(),
				DstIP:   uint32(10)<<24 | rng.Uint32()&0xffffff,
				Proto:   6,
				DstPort: uint16(rng.Intn(6)),
			}
			in := topo.PortID(rng.Intn(4) + 1)
			wantOut, wantRW := p.Classify(in, h)
			gotOut, gotRW := cfg.Forward(in, h)
			if gotOut != wantOut {
				t.Fatalf("trial %d: flatten diverged: pipeline %s, flat %s (h=%v)", trial, wantOut, gotOut, h)
			}
			if wantOut != topo.DropPort && !gotRW.Equal(wantRW) {
				t.Fatalf("trial %d: rewrite diverged: %v vs %v", trial, wantRW, gotRW)
			}
		}
	}
}

func TestFlattenedPipelineDrivesDataPlane(t *testing.T) {
	// A realistic two-stage pipeline (ACL then forwarding) flattened and
	// installed as a switch's physical table.
	p := &Pipeline{Tables: [][]PipelineEntry{
		{
			{Priority: 10, Match: Match{SrcPrefix: Prefix{IP: ip("10.9.0.0"), Len: 16}}, Kind: InstrDrop},
			{Priority: 0, Kind: InstrGoto, Goto: 1},
		},
		{
			{Priority: 10, Match: Match{DstPrefix: Prefix{IP: ip("10.0.2.0"), Len: 24}}, Kind: InstrOutput, OutPort: 2},
			missEntry(),
		},
	}}
	flat, err := p.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if flat.Len() == 0 {
		t.Fatal("empty flattened table")
	}
	cfg := &SwitchConfig{Ports: []topo.PortID{1, 2}, Table: flat,
		InACL: map[topo.PortID]ACL{}, OutACL: map[topo.PortID]ACL{}}
	if out := cfg.Classify(1, header.Header{SrcIP: ip("10.9.1.1"), DstIP: ip("10.0.2.1")}); out != topo.DropPort {
		t.Fatal("ACL stage lost in flattening")
	}
	if out := cfg.Classify(1, header.Header{SrcIP: ip("10.8.1.1"), DstIP: ip("10.0.2.1")}); out != 2 {
		t.Fatal("forwarding stage lost in flattening")
	}
}
