// Package flowtable implements OpenFlow-style flow tables: prioritized
// rules over 5-tuple matches, lookup semantics, ACLs, and the translation
// from rule sets to the per-port BDD predicates that VeriDP's path-table
// construction consumes (§4.1), including the prefix-tree organization that
// makes §4.4's incremental updates cheap.
package flowtable

import (
	"fmt"

	"veridp/internal/bdd"
	"veridp/internal/header"
	"veridp/internal/topo"
)

// Prefix is an IPv4 prefix.
type Prefix struct {
	IP  uint32
	Len int // 0..32; 0 matches everything
}

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", header.IPString(p.IP), p.Len)
}

// mask returns the network mask for the prefix length.
func (p Prefix) mask() uint32 {
	if p.Len <= 0 {
		return 0
	}
	return ^uint32(0) << (32 - p.Len)
}

// Canonical returns the prefix with host bits zeroed.
func (p Prefix) Canonical() Prefix {
	return Prefix{IP: p.IP & p.mask(), Len: p.Len}
}

// Matches reports whether the address falls inside the prefix.
func (p Prefix) Matches(ip uint32) bool {
	return ip&p.mask() == p.IP&p.mask()
}

// Contains reports whether o is a (non-strict) sub-prefix of p.
func (p Prefix) Contains(o Prefix) bool {
	return p.Len <= o.Len && p.Matches(o.IP)
}

// Equal reports whether two prefixes denote the same address block.
func (p Prefix) Equal(o Prefix) bool {
	return p.Len == o.Len && p.IP&p.mask() == o.IP&o.mask()
}

// Match is the match half of a rule: every populated field must match. The
// zero Match matches every packet on every port.
type Match struct {
	InPort    topo.PortID // 0 = any input port
	SrcPrefix Prefix      // Len 0 = any
	DstPrefix Prefix      // Len 0 = any
	HasProto  bool
	Proto     uint8
	HasSrc    bool
	SrcPort   uint16
	HasDst    bool
	DstPort   uint16
}

// MatchesHeader reports whether the rule matches the concrete header
// arriving on inPort.
func (m Match) MatchesHeader(inPort topo.PortID, h header.Header) bool {
	if m.InPort != 0 && m.InPort != inPort {
		return false
	}
	if !m.SrcPrefix.Matches(h.SrcIP) || !m.DstPrefix.Matches(h.DstIP) {
		return false
	}
	if m.HasProto && m.Proto != h.Proto {
		return false
	}
	if m.HasSrc && m.SrcPort != h.SrcPort {
		return false
	}
	if m.HasDst && m.DstPort != h.DstPort {
		return false
	}
	return true
}

// HeaderPredicate returns the BDD over header fields (ignoring InPort, which
// the transfer-predicate computation handles separately).
func (m Match) HeaderPredicate(s *header.Space) bdd.Ref {
	r := s.All()
	if m.SrcPrefix.Len > 0 {
		r = s.T.And(r, s.SrcIPPrefix(m.SrcPrefix.IP, m.SrcPrefix.Len))
	}
	if m.DstPrefix.Len > 0 {
		r = s.T.And(r, s.DstIPPrefix(m.DstPrefix.IP, m.DstPrefix.Len))
	}
	if m.HasProto {
		r = s.T.And(r, s.ProtoEq(m.Proto))
	}
	if m.HasSrc {
		r = s.T.And(r, s.SrcPortEq(m.SrcPort))
	}
	if m.HasDst {
		r = s.T.And(r, s.DstPortEq(m.DstPort))
	}
	return r
}

// String summarizes the match compactly.
func (m Match) String() string {
	s := ""
	add := func(f string, args ...interface{}) {
		if s != "" {
			s += ","
		}
		s += fmt.Sprintf(f, args...)
	}
	if m.InPort != 0 {
		add("in=%s", m.InPort)
	}
	if m.SrcPrefix.Len > 0 {
		add("src=%s", m.SrcPrefix)
	}
	if m.DstPrefix.Len > 0 {
		add("dst=%s", m.DstPrefix)
	}
	if m.HasProto {
		add("proto=%d", m.Proto)
	}
	if m.HasSrc {
		add("sport=%d", m.SrcPort)
	}
	if m.HasDst {
		add("dport=%d", m.DstPort)
	}
	if s == "" {
		return "any"
	}
	return s
}

// Action is what a rule does with a matching packet.
type Action uint8

const (
	// ActOutput forwards to OutPort.
	ActOutput Action = iota
	// ActDrop discards the packet — the paper's drop case (1), an explicit
	// deny, or case (2) folded in: an entry with no output port behaves as
	// drop and maps to the ⊥ port.
	ActDrop
)

// Rule is one flow entry. Higher Priority wins; ties break toward the
// earlier-installed rule (lower ID), matching common switch behavior.
type Rule struct {
	ID       uint64
	Priority uint16
	Match    Match
	Action   Action
	OutPort  topo.PortID
	// Rewrite, when non-nil, pins header fields before output (OpenFlow
	// set-field; the paper's future-work extension). Ignored for drops.
	Rewrite *header.Rewrite
}

// EffectiveOut returns the rule's output port, mapping drops to ⊥.
func (r *Rule) EffectiveOut() topo.PortID {
	if r.Action == ActDrop {
		return topo.DropPort
	}
	return r.OutPort
}

// String renders the rule for logs and debugging.
func (r *Rule) String() string {
	act := fmt.Sprintf("output:%s", r.OutPort)
	if r.Action == ActDrop {
		act = "drop"
	}
	if !r.Rewrite.IsZero() {
		act = r.Rewrite.String() + "," + act
	}
	return fmt.Sprintf("#%d pri=%d [%s] -> %s", r.ID, r.Priority, r.Match, act)
}

// Clone returns a deep copy of the rule.
func (r *Rule) Clone() *Rule {
	c := *r
	if r.Rewrite != nil {
		rw := *r.Rewrite
		c.Rewrite = &rw
	}
	return &c
}
