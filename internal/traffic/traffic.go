// Package traffic synthesizes workloads for the evaluation: one witness
// packet per path-table entry (the §6.3/§6.4 methodology — "we randomly
// select paths in the path table, and generate a packet for each path"), an
// all-pairs ping mesh (the §6.3 localization workload), and random flows
// with configurable arrival processes for the sampling experiments.
package traffic

import (
	"math/rand"

	"veridp/internal/core"
	"veridp/internal/header"
	"veridp/internal/topo"
)

// Witness pairs one concrete packet with the path-table entry it was drawn
// from.
type Witness struct {
	Inport topo.PortKey
	Header header.Header
	Entry  *core.PathEntry
}

// Witnesses extracts one concrete header per live path entry whose entry
// port is a real edge port (⊥-terminated and void-terminated paths are
// still included: their packets exercise drop reporting). Paths whose
// header sets are empty are skipped.
func Witnesses(pt *core.PathTable) []Witness {
	var out []Witness
	pt.Entries(func(in, _ topo.PortKey, e *core.PathEntry) {
		if !pt.Net.IsEdgePort(in) {
			return
		}
		h, ok := pt.Space.Witness(e.Headers)
		if !ok {
			return
		}
		out = append(out, Witness{Inport: in, Header: h, Entry: e})
	})
	return out
}

// PingPair is one source-destination probe of a ping mesh.
type PingPair struct {
	SrcHost, DstHost string
	Header           header.Header
}

// PingMesh generates the all-pairs workload of §6.3's localization
// experiment ("we let all hosts ping each other"). Probes use ICMP.
func PingMesh(n *topo.Network) []PingPair {
	hosts := n.Hosts()
	out := make([]PingPair, 0, len(hosts)*(len(hosts)-1))
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			out = append(out, PingPair{
				SrcHost: src.Name,
				DstHost: dst.Name,
				Header: header.Header{
					SrcIP: src.IP,
					DstIP: dst.IP,
					Proto: header.ProtoICMP,
				},
			})
		}
	}
	return out
}

// ZipfIndices draws k indices in [0, n) from a Zipf distribution with
// exponent s (> 1; larger is more skewed), deterministically seeded — the
// elephant-flow access pattern the verdict-cache benchmarks replay: a
// handful of popular flows dominate, exactly as sampled SDN traffic does.
// The returned sequence is reproducible for a given (n, k, s, seed).
func ZipfIndices(n, k int, s float64, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	out := make([]int, k)
	for i := range out {
		out[i] = int(z.Uint64())
	}
	return out
}

// RandomFlows draws k random host-to-host TCP flows with distinct ephemeral
// source ports, for sampling and throughput experiments.
func RandomFlows(n *topo.Network, k int, rng *rand.Rand) []header.Header {
	hosts := n.Hosts()
	if len(hosts) < 2 {
		return nil
	}
	out := make([]header.Header, 0, k)
	for i := 0; i < k; i++ {
		si := rng.Intn(len(hosts))
		di := rng.Intn(len(hosts) - 1)
		if di >= si {
			di++
		}
		out = append(out, header.Header{
			SrcIP:   hosts[si].IP,
			DstIP:   hosts[di].IP,
			Proto:   header.ProtoTCP,
			SrcPort: uint16(32768 + rng.Intn(28000)),
			DstPort: uint16(1 + rng.Intn(1024)),
		})
	}
	return out
}
