package traffic

import (
	"math/rand"
	"testing"

	"veridp/internal/bloom"
	"veridp/internal/controller"
	"veridp/internal/core"
	"veridp/internal/dataplane"
	"veridp/internal/header"
	"veridp/internal/topo"
)

func buildTable(t *testing.T, n *topo.Network) (*core.PathTable, *dataplane.Fabric) {
	t.Helper()
	f := dataplane.NewFabric(n)
	c := controller.New(n, &dataplane.FabricInstaller{Fabric: f})
	if err := c.RouteAllHosts(); err != nil {
		t.Fatal(err)
	}
	b := &core.Builder{Net: n, Space: header.NewSpace(), Params: bloom.DefaultParams, Configs: c.Logical()}
	return b.Build(), f
}

func TestWitnessesCoverEveryEntryAndBelong(t *testing.T) {
	n := topo.FatTree(4)
	pt, _ := buildTable(t, n)
	ws := Witnesses(pt)
	if len(ws) == 0 {
		t.Fatal("no witnesses")
	}
	for _, w := range ws {
		if !pt.Space.Contains(w.Entry.Headers, w.Header) {
			t.Fatalf("witness %v outside its entry's header set", w.Header)
		}
		if !pt.Net.IsEdgePort(w.Inport) {
			t.Fatalf("witness inport %v is not an edge port", w.Inport)
		}
	}
	// Every delivered entry has a witness (entries ending at edge ports).
	count := 0
	pt.Entries(func(in, out topo.PortKey, e *core.PathEntry) {
		if pt.Net.IsEdgePort(in) {
			count++
		}
	})
	if len(ws) != count {
		t.Fatalf("witnesses %d, edge-entered entries %d", len(ws), count)
	}
}

// TestWitnessesReplayToMatchingReports: injecting each witness reproduces
// its entry's path and tag exactly — the §6.4 measurement methodology.
func TestWitnessesReplayToMatchingReports(t *testing.T) {
	n := topo.Linear(3, 2)
	pt, f := buildTable(t, n)
	for _, w := range Witnesses(pt) {
		res, err := f.Inject(w.Inport, w.Header)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Reports) == 0 {
			continue // entries ending at void ports emit nothing
		}
		rep := res.Reports[len(res.Reports)-1]
		if v := pt.Verify(rep); !v.OK {
			t.Fatalf("witness replay failed verification: %v (entry %v, actual %v)",
				v.Reason, w.Entry.Path, res.Path)
		}
	}
}

func TestPingMesh(t *testing.T) {
	n := topo.FatTree(4)
	mesh := PingMesh(n)
	hosts := len(n.Hosts())
	if len(mesh) != hosts*(hosts-1) {
		t.Fatalf("mesh size %d, want %d", len(mesh), hosts*(hosts-1))
	}
	for _, p := range mesh {
		if p.SrcHost == p.DstHost {
			t.Fatal("self-ping in mesh")
		}
		if p.Header.Proto != header.ProtoICMP {
			t.Fatal("pings should be ICMP")
		}
		if n.Host(p.SrcHost).IP != p.Header.SrcIP || n.Host(p.DstHost).IP != p.Header.DstIP {
			t.Fatal("mesh header does not match hosts")
		}
	}
}

func TestRandomFlows(t *testing.T) {
	n := topo.FatTree(4)
	rng := rand.New(rand.NewSource(6))
	flows := RandomFlows(n, 200, rng)
	if len(flows) != 200 {
		t.Fatalf("flows %d", len(flows))
	}
	for _, f := range flows {
		if f.SrcIP == f.DstIP {
			t.Fatal("flow to self")
		}
		if n.HostByIP(f.SrcIP) == nil || n.HostByIP(f.DstIP) == nil {
			t.Fatal("flow endpoints are not hosts")
		}
		if f.SrcPort < 32768 {
			t.Fatal("source port not ephemeral")
		}
	}
	// Degenerate networks produce nothing.
	single := topo.NewNetwork()
	s := single.AddSwitch("s", 2)
	single.AddHost("only", 1, s.ID, 1)
	if got := RandomFlows(single, 5, rng); got != nil {
		t.Fatalf("flows from a single-host network: %v", got)
	}
}

func TestZipfIndices(t *testing.T) {
	const n, k = 100, 5000
	a := ZipfIndices(n, k, 1.2, 7)
	b := ZipfIndices(n, k, 1.2, 7)
	if len(a) != k {
		t.Fatalf("len %d, want %d", len(a), k)
	}
	for i := range a {
		if a[i] < 0 || a[i] >= n {
			t.Fatalf("index %d out of [0,%d)", a[i], n)
		}
		if a[i] != b[i] {
			t.Fatal("same seed produced different sequences")
		}
	}
	if c := ZipfIndices(n, k, 1.2, 8); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] && c[3] == a[3] {
		t.Error("different seeds produced an identical prefix")
	}
	// Skew: the head of the distribution must dominate the draw — that is
	// the whole premise of the verdict cache's hit rate.
	head := 0
	for _, v := range a {
		if v < 10 {
			head++
		}
	}
	if head < k/2 {
		t.Errorf("head (indices <10) drew %d/%d, want a Zipf-skewed majority", head, k)
	}
}
