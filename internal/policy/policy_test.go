package policy

import (
	"testing"

	"veridp/internal/bloom"
	"veridp/internal/controller"
	"veridp/internal/core"
	"veridp/internal/dataplane"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/topo"
)

func build(t *testing.T, n *topo.Network, s Suite) (*dataplane.Fabric, *controller.Controller, *core.PathTable) {
	t.Helper()
	f := dataplane.NewFabric(n)
	c := controller.New(n, &dataplane.FabricInstaller{Fabric: f})
	if err := s.Compile(c); err != nil {
		t.Fatal(err)
	}
	pt := (&core.Builder{Net: n, Space: header.NewSpace(), Params: bloom.DefaultParams, Configs: c.Logical()}).Build()
	return f, c, pt
}

func TestReachabilityCompileAndCheck(t *testing.T) {
	n := topo.Linear(3, 1)
	suite := Suite{
		Reachability{SrcHost: "h1-0", DstHost: "h3-0"},
		Reachability{SrcHost: "h3-0", DstHost: "h1-0"},
	}
	f, _, pt := build(t, n, suite)
	if errs := suite.Check(pt); len(errs) != 0 {
		t.Fatalf("healthy compile violates its own intent: %v", errs)
	}
	// The data plane agrees.
	h := header.Header{SrcIP: n.Host("h1-0").IP, DstIP: n.Host("h3-0").IP, Proto: 6}
	res, err := f.InjectFromHost("h1-0", h)
	if err != nil || res.Outcome != dataplane.OutcomeDelivered {
		t.Fatalf("reachability not realized: %v %v", res.Outcome, err)
	}
}

func TestReachabilityCheckCatchesMissingRoute(t *testing.T) {
	n := topo.Linear(3, 1)
	suite := Suite{Reachability{SrcHost: "h1-0", DstHost: "h3-0"}}
	_, c, _ := build(t, n, suite)
	// Remove the route at the middle switch logically: I ≠ R now.
	mid := n.SwitchByName("s2").ID
	for _, r := range c.Logical()[mid].Table.Rules() {
		if err := c.RemoveRule(mid, r.ID); err != nil {
			t.Fatal(err)
		}
	}
	pt := (&core.Builder{Net: n, Space: header.NewSpace(), Params: bloom.DefaultParams, Configs: c.Logical()}).Build()
	if err := (Reachability{SrcHost: "h1-0", DstHost: "h3-0"}).Check(pt); err == nil {
		t.Fatal("broken route passed the static check")
	}
}

func TestIsolation(t *testing.T) {
	n := topo.Linear(3, 1)
	forbidden := Isolation{
		SrcPrefix: flowtable.Prefix{IP: n.Host("h1-0").IP, Len: 32},
		DstPrefix: flowtable.Prefix{IP: n.Host("h3-0").IP, Len: 32},
	}
	suite := Suite{
		Reachability{SrcHost: "h1-0", DstHost: "h3-0"},
		Reachability{SrcHost: "h2-0", DstHost: "h3-0"},
		forbidden,
	}
	f, c, pt := build(t, n, suite)
	if err := forbidden.Check(pt); err != nil {
		t.Fatalf("compiled isolation violates its own check: %v", err)
	}
	// Operationally: h1 is blocked, h2 still flows.
	h1 := header.Header{SrcIP: n.Host("h1-0").IP, DstIP: n.Host("h3-0").IP, Proto: 6}
	res, _ := f.InjectFromHost("h1-0", h1)
	if res.Outcome != dataplane.OutcomeDropped {
		t.Fatalf("isolated traffic delivered: %v", res.Outcome)
	}
	h2 := header.Header{SrcIP: n.Host("h2-0").IP, DstIP: n.Host("h3-0").IP, Proto: 6}
	res, _ = f.InjectFromHost("h2-0", h2)
	if res.Outcome != dataplane.OutcomeDelivered {
		t.Fatalf("collateral damage: %v", res.Outcome)
	}
	// Static check catches a logical configuration that breaks isolation:
	// remove the deny from the logical store.
	dst := n.Host("h3-0").Attach.Switch
	for _, r := range c.Logical()[dst].Table.Rules() {
		if r.Action == flowtable.ActDrop {
			if err := c.RemoveRule(dst, r.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	pt2 := (&core.Builder{Net: n, Space: header.NewSpace(), Params: bloom.DefaultParams, Configs: c.Logical()}).Build()
	if err := forbidden.Check(pt2); err == nil {
		t.Fatal("isolation breach passed the static check")
	}
}

func TestWaypointPolicy(t *testing.T) {
	n := topo.Figure5()
	wp := Waypoint{
		Match:     flowtable.Match{HasDst: true, DstPort: 22},
		SrcHost:   "H1",
		DstHost:   "H3",
		Middlebox: topo.PortKey{Switch: n.SwitchByName("S2").ID, Port: 3},
		Priority:  100,
	}
	suite := Suite{
		Reachability{SrcHost: "H1", DstHost: "H3"},
		wp,
	}
	f, c, pt := build(t, n, suite)
	if err := wp.Check(pt); err != nil {
		t.Fatalf("compiled waypoint violates its own check: %v", err)
	}
	// Operationally: SSH detours, web goes direct.
	ssh := header.Header{SrcIP: n.Host("H1").IP, DstIP: n.Host("H3").IP, Proto: 6, DstPort: 22}
	res, _ := f.InjectFromHost("H1", ssh)
	if len(res.Path) != 4 {
		t.Fatalf("SSH path %v", res.Path)
	}
	// Static violation: drop the logical waypoint rules; the check fails.
	s1 := n.SwitchByName("S1").ID
	for _, r := range c.Logical()[s1].Table.Rules() {
		if r.Priority == 100 {
			if err := c.RemoveRule(s1, r.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	pt2 := (&core.Builder{Net: n, Space: header.NewSpace(), Params: bloom.DefaultParams, Configs: c.Logical()}).Build()
	if err := wp.Check(pt2); err == nil {
		t.Fatal("middlebox bypass passed the static check")
	}
}

func TestSuiteCollectsViolations(t *testing.T) {
	n := topo.Linear(2, 1)
	// Intent that was never compiled: both checks must fail.
	suite := Suite{
		Reachability{SrcHost: "h1-0", DstHost: "h2-0"},
		Reachability{SrcHost: "h2-0", DstHost: "h1-0"},
	}
	f := dataplane.NewFabric(n)
	c := controller.New(n, &dataplane.FabricInstaller{Fabric: f})
	pt := (&core.Builder{Net: n, Space: header.NewSpace(), Params: bloom.DefaultParams, Configs: c.Logical()}).Build()
	if errs := suite.Check(pt); len(errs) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(errs), errs)
	}
}

func TestPolicyErrors(t *testing.T) {
	n := topo.Linear(2, 1)
	f := dataplane.NewFabric(n)
	c := controller.New(n, &dataplane.FabricInstaller{Fabric: f})
	if err := (Reachability{SrcHost: "ghost", DstHost: "h1-0"}).Compile(c); err == nil {
		t.Fatal("unknown src accepted")
	}
	if err := (Isolation{DstPrefix: flowtable.Prefix{IP: 0xdead0000, Len: 16}}).Compile(c); err == nil {
		t.Fatal("isolation with no protected hosts accepted")
	}
	if err := (Waypoint{SrcHost: "ghost"}).Compile(c); err == nil {
		t.Fatal("unknown waypoint host accepted")
	}
}

func TestCheckHeader(t *testing.T) {
	n := topo.Linear(2, 1)
	suite := Suite{Reachability{SrcHost: "h1-0", DstHost: "h2-0"}}
	_, _, pt := build(t, n, suite)
	h := header.Header{SrcIP: n.Host("h1-0").IP, DstIP: n.Host("h2-0").IP, Proto: 6}
	path, delivered := CheckHeader(pt, n.Host("h1-0").Attach, h)
	if !delivered || len(path) != 2 {
		t.Fatalf("CheckHeader: delivered=%v path=%v", delivered, path)
	}
	bogus := header.Header{SrcIP: 1, DstIP: 2}
	if _, delivered := CheckHeader(pt, n.Host("h1-0").Attach, bogus); delivered {
		t.Fatal("unroutable header reported delivered")
	}
}
