// Package policy is the intent layer of the paper's Figure 1: operators
// state high-level policies (I); Compile translates them into logical
// rules (R) through the controller; Check statically verifies I = R
// against the path table — the control-plane half of the consistency
// story. VeriDP's runtime monitoring then guards the other half, R = F.
// Together they close the full chain the paper's §2.1 lays out: with
// VeriDP ensuring forwarding matches configuration, "operators can focus
// on configuration correctness" — which is exactly what Check automates.
//
// The built-in policies mirror §2.3's intent classes: pairwise
// reachability, access control (isolation), waypoint traversal, and
// traffic-engineering splits.
package policy

import (
	"fmt"

	"veridp/internal/bdd"
	"veridp/internal/controller"
	"veridp/internal/core"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/topo"
)

// Policy is one piece of operator intent.
type Policy interface {
	// Describe names the policy for reports.
	Describe() string
	// Compile installs the rules realizing the intent.
	Compile(c *controller.Controller) error
	// Check statically verifies the logical configuration (via its path
	// table) satisfies the intent. A nil error means I = R holds.
	Check(pt *core.PathTable) error
}

// Reachability: traffic from SrcHost must be able to reach DstHost.
type Reachability struct {
	SrcHost, DstHost string
}

// Describe implements Policy.
func (p Reachability) Describe() string {
	return fmt.Sprintf("reachability %s → %s", p.SrcHost, p.DstHost)
}

// Compile routes the destination host network-wide.
func (p Reachability) Compile(c *controller.Controller) error {
	dst := c.Net.Host(p.DstHost)
	if dst == nil {
		return fmt.Errorf("policy: unknown host %q", p.DstHost)
	}
	if c.Net.Host(p.SrcHost) == nil {
		return fmt.Errorf("policy: unknown host %q", p.SrcHost)
	}
	_, err := c.RoutePrefix(flowtable.Prefix{IP: dst.IP, Len: 32}, dst.Attach)
	return err
}

// Check demands a delivered path from the source's edge port to the
// destination's, admitting the pair's traffic.
func (p Reachability) Check(pt *core.PathTable) error {
	src := pt.Net.Host(p.SrcHost)
	dst := pt.Net.Host(p.DstHost)
	if src == nil || dst == nil {
		return fmt.Errorf("policy: unknown host in %s", p.Describe())
	}
	class := pt.Space.T.And(pt.Space.SrcIPEq(src.IP), pt.Space.DstIPEq(dst.IP))
	for _, e := range pt.Lookup(src.Attach, dst.Attach) {
		if pt.Space.T.And(e.Headers, class) != bdd.False {
			return nil
		}
	}
	return fmt.Errorf("policy violated: %s has no delivering path", p.Describe())
}

// Isolation: no traffic from SrcPrefix may be delivered to hosts inside
// DstPrefix (an access-control intent).
type Isolation struct {
	SrcPrefix, DstPrefix flowtable.Prefix
}

// Describe implements Policy.
func (p Isolation) Describe() string {
	return fmt.Sprintf("isolation %s ↛ %s", p.SrcPrefix, p.DstPrefix)
}

// Compile installs high-priority drop rules on every switch attaching a
// host inside DstPrefix.
func (p Isolation) Compile(c *controller.Controller) error {
	match := flowtable.Match{SrcPrefix: p.SrcPrefix, DstPrefix: p.DstPrefix}
	installed := 0
	seen := map[topo.SwitchID]bool{}
	for _, h := range c.Net.Hosts() {
		if !p.DstPrefix.Matches(h.IP) || seen[h.Attach.Switch] {
			continue
		}
		seen[h.Attach.Switch] = true
		if _, err := c.InstallRule(h.Attach.Switch, flowtable.Rule{
			Priority: 60000,
			Match:    match,
			Action:   flowtable.ActDrop,
		}); err != nil {
			return err
		}
		installed++
	}
	if installed == 0 {
		return fmt.Errorf("policy: no hosts inside %s to protect", p.DstPrefix)
	}
	return nil
}

// Check sweeps every delivered path: none may admit the forbidden class
// into a protected host port.
func (p Isolation) Check(pt *core.PathTable) error {
	s := pt.Space
	class := s.T.And(
		s.SrcIPPrefix(p.SrcPrefix.IP, p.SrcPrefix.Len),
		s.DstIPPrefix(p.DstPrefix.IP, p.DstPrefix.Len),
	)
	var violation error
	pt.Entries(func(in, out topo.PortKey, e *core.PathEntry) {
		if violation != nil || out.Port == topo.DropPort {
			return
		}
		if !pt.Net.IsEdgePort(out) {
			return
		}
		// Only protect ports attaching hosts inside DstPrefix.
		attached := attachedHost(pt.Net, out)
		if attached == nil || !p.DstPrefix.Matches(attached.IP) {
			return
		}
		if s.T.And(e.Headers, class) != bdd.False {
			violation = fmt.Errorf("policy violated: %s — path %v delivers forbidden traffic", p.Describe(), e.Path)
		}
	})
	return violation
}

// attachedHost finds the host on an edge port.
func attachedHost(n *topo.Network, pk topo.PortKey) *topo.Host {
	for _, h := range n.Hosts() {
		if h.Attach == pk {
			return h
		}
	}
	return nil
}

// Waypoint: the matched class from SrcHost to DstHost must traverse the
// middlebox port (Figure 2's firewall intent).
type Waypoint struct {
	Match            flowtable.Match
	SrcHost, DstHost string
	Middlebox        topo.PortKey
	Priority         uint16
}

// Describe implements Policy.
func (p Waypoint) Describe() string {
	return fmt.Sprintf("waypoint %s → %v → %s [%s]", p.SrcHost, p.Middlebox, p.DstHost, p.Match)
}

// Compile pins the class through the middlebox hop by hop.
func (p Waypoint) Compile(c *controller.Controller) error {
	src := c.Net.Host(p.SrcHost)
	dst := c.Net.Host(p.DstHost)
	if src == nil || dst == nil {
		return fmt.Errorf("policy: unknown host in %s", p.Describe())
	}
	_, err := c.InstallWaypoint(p.Match, src.Attach, p.Middlebox, dst.Attach, p.Priority)
	return err
}

// Check requires every delivered path admitting the class between the two
// edge ports to include a hop out of the middlebox port.
func (p Waypoint) Check(pt *core.PathTable) error {
	src := pt.Net.Host(p.SrcHost)
	dst := pt.Net.Host(p.DstHost)
	if src == nil || dst == nil {
		return fmt.Errorf("policy: unknown host in %s", p.Describe())
	}
	class := p.Match.HeaderPredicate(pt.Space)
	class = pt.Space.T.And(class, pt.Space.SrcIPEq(src.IP))
	class = pt.Space.T.And(class, pt.Space.DstIPEq(dst.IP))
	checked := false
	for _, e := range pt.Lookup(src.Attach, dst.Attach) {
		if pt.Space.T.And(e.Headers, class) == bdd.False {
			continue
		}
		checked = true
		if !pathUsesPort(e.Path, p.Middlebox) {
			return fmt.Errorf("policy violated: %s — path %v skips the middlebox", p.Describe(), e.Path)
		}
	}
	if !checked {
		return fmt.Errorf("policy violated: %s — no delivering path for the class", p.Describe())
	}
	return nil
}

func pathUsesPort(path topo.Path, pk topo.PortKey) bool {
	for _, hop := range path {
		if hop.Switch == pk.Switch && (hop.Out == pk.Port || hop.In == pk.Port) {
			return true
		}
	}
	return false
}

// Suite bundles policies: compile all, then check all.
type Suite []Policy

// Compile installs every policy, failing fast.
func (s Suite) Compile(c *controller.Controller) error {
	for _, p := range s {
		if err := p.Compile(c); err != nil {
			return fmt.Errorf("compiling %s: %w", p.Describe(), err)
		}
	}
	return nil
}

// Check verifies every policy against the path table, collecting all
// violations.
func (s Suite) Check(pt *core.PathTable) []error {
	var errs []error
	for _, p := range s {
		if err := p.Check(pt); err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// CheckHeader verifies one concrete header end to end against the path
// table's intent — a convenience for operators poking at a flow: it
// returns the intended path and whether it delivers.
func CheckHeader(pt *core.PathTable, from topo.PortKey, h header.Header) (topo.Path, bool) {
	p := pt.IntendedPath(from, h)
	if len(p) == 0 {
		return nil, false
	}
	last := p[len(p)-1]
	return p, pt.Net.IsEdgePort(topo.PortKey{Switch: last.Switch, Port: last.Out})
}
