package atoms

import (
	"math/rand"
	"testing"

	"veridp/internal/bdd"
	"veridp/internal/flowtable"
	"veridp/internal/header"
)

// family builds a realistic predicate family: transfer-predicate-shaped
// destination prefixes plus a couple of port classes.
func family(s *header.Space, n int, seed int64) []bdd.Ref {
	rng := rand.New(rand.NewSource(seed))
	var preds []bdd.Ref
	for i := 0; i < n; i++ {
		p := flowtable.Prefix{IP: uint32(10)<<24 | rng.Uint32()&0x00ffff00, Len: 16 + rng.Intn(9)}.Canonical()
		preds = append(preds, s.DstIPPrefix(p.IP, p.Len))
	}
	preds = append(preds, s.DstPortEq(22), s.DstPortEq(80))
	return preds
}

func TestAtomsPartition(t *testing.T) {
	s := header.NewSpace()
	preds := family(s, 12, 1)
	u := Compute(s, preds)
	if u.Len() == 0 {
		t.Fatal("no atoms")
	}
	// Atoms are pairwise disjoint and cover the space.
	union := bdd.False
	for i := 0; i < u.Len(); i++ {
		for j := i + 1; j < u.Len(); j++ {
			if s.T.And(u.Atom(i), u.Atom(j)) != bdd.False {
				t.Fatalf("atoms %d and %d overlap", i, j)
			}
		}
		union = s.T.Or(union, u.Atom(i))
	}
	if union != bdd.True {
		t.Fatal("atoms do not cover the header space")
	}
}

func TestRepresentInputsExactly(t *testing.T) {
	s := header.NewSpace()
	preds := family(s, 10, 2)
	u := Compute(s, preds)
	for i, p := range preds {
		set, ok := u.Represent(p)
		if !ok {
			t.Fatalf("input predicate %d not representable", i)
		}
		if u.ToBDD(set) != p {
			t.Fatalf("round trip lost predicate %d", i)
		}
	}
	// Something outside the closure is rejected.
	alien := s.SrcPortEq(12345)
	if _, ok := u.Represent(alien); ok {
		t.Fatal("predicate outside the closure represented")
	}
}

// TestSetAlgebraAgreesWithBDD: every integer-set operation matches the BDD
// operation on the represented predicates.
func TestSetAlgebraAgreesWithBDD(t *testing.T) {
	s := header.NewSpace()
	preds := family(s, 10, 3)
	u := Compute(s, preds)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		a := preds[rng.Intn(len(preds))]
		b := preds[rng.Intn(len(preds))]
		sa, _ := u.Represent(a)
		sb, _ := u.Represent(b)
		if u.ToBDD(sa.And(sb)) != s.T.And(a, b) {
			t.Fatal("And diverged")
		}
		if u.ToBDD(sa.Or(sb)) != s.T.Or(a, b) {
			t.Fatal("Or diverged")
		}
		if u.ToBDD(sa.Diff(sb)) != s.T.Diff(a, b) {
			t.Fatal("Diff diverged")
		}
		if u.ToBDD(u.Not(sa)) != s.T.Not(a) {
			t.Fatal("Not diverged")
		}
		if sa.Contains(sb) != s.T.Implies(b, a) {
			t.Fatal("Contains diverged")
		}
		if sa.And(sb).IsEmpty() != (s.T.And(a, b) == bdd.False) {
			t.Fatal("IsEmpty diverged")
		}
	}
}

func TestFromIDsValidation(t *testing.T) {
	s := header.NewSpace()
	u := Compute(s, family(s, 4, 5))
	if _, err := u.FromIDs([]int32{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := u.FromIDs([]int32{0, 0}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := u.FromIDs([]int32{int32(u.Len())}); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if !Empty().IsEmpty() || u.Full().Len() != u.Len() {
		t.Fatal("Empty/Full broken")
	}
}

func TestAtomCountStaysSmall(t *testing.T) {
	// [56]'s observation: the atom count is far below 2^|preds| — nested
	// and disjoint prefixes barely multiply.
	s := header.NewSpace()
	preds := family(s, 24, 6)
	u := Compute(s, preds)
	if u.Len() > 4*len(preds) {
		t.Fatalf("atom explosion: %d atoms for %d predicates", u.Len(), len(preds))
	}
}

// The [56] speedup claim: set intersections over atoms vastly outpace BDD
// conjunctions of the same predicates.
func BenchmarkIntersectionBDD(b *testing.B) {
	s := header.NewSpace()
	preds := family(s, 16, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Clear the memo cache: real verification workloads intersect
		// ever-new combinations, so cached replays would flatter BDDs.
		s.T.ClearCaches()
		acc := bdd.True
		for _, p := range preds {
			acc = s.T.And(acc, p)
		}
	}
}

func BenchmarkIntersectionAtoms(b *testing.B) {
	s := header.NewSpace()
	preds := family(s, 16, 7)
	u := Compute(s, preds)
	sets := make([]Set, len(preds))
	for i, p := range preds {
		sets[i], _ = u.Represent(p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := u.Full()
		for _, s := range sets {
			acc = acc.And(s)
		}
	}
}
