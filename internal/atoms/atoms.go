// Package atoms implements atomic predicates (Yang & Lam, "Real-time
// verification of network properties using atomic predicates", ICNP 2013 —
// the paper's reference [56] and the direct lineage of its BDD-based
// path-table construction).
//
// Given a family of predicates (e.g. every transfer predicate in the
// network), the atomic predicates are the coarsest partition of the header
// space such that each input predicate is a union of atoms. Once computed,
// any predicate in the Boolean closure of the family is just a sorted set
// of atom IDs, and conjunction/disjunction/negation become integer-set
// operations — typically orders of magnitude cheaper than BDD operations.
// This package provides the computation plus the integer-set algebra, and
// the benchmarks quantify the speedup on transfer-predicate workloads.
package atoms

import (
	"fmt"
	"sort"

	"veridp/internal/bdd"
	"veridp/internal/header"
)

// Universe holds the atomic decomposition of a predicate family.
type Universe struct {
	space *header.Space
	atoms []bdd.Ref // pairwise disjoint, jointly covering, all non-False
}

// Compute derives the atomic predicates of the given family by iterative
// refinement: starting from {True}, each predicate splits every atom it
// properly intersects.
func Compute(space *header.Space, preds []bdd.Ref) *Universe {
	atoms := []bdd.Ref{bdd.True}
	for _, p := range preds {
		next := atoms[:0:0]
		for _, a := range atoms {
			in := space.T.And(a, p)
			out := space.T.Diff(a, p)
			if in != bdd.False {
				next = append(next, in)
			}
			if out != bdd.False {
				next = append(next, out)
			}
		}
		atoms = next
	}
	return &Universe{space: space, atoms: atoms}
}

// Len returns the number of atoms — [56]'s key metric (it is typically far
// smaller than the number of input predicates suggests).
func (u *Universe) Len() int { return len(u.atoms) }

// Atom returns the i-th atom's BDD.
func (u *Universe) Atom(i int) bdd.Ref { return u.atoms[i] }

// Set is a predicate represented as a sorted set of atom IDs.
type Set struct {
	ids []int32 // strictly increasing
}

// Represent converts a predicate to its atom set. ok is false when the
// predicate is not a union of atoms (i.e. it lies outside the Boolean
// closure of the family the universe was computed from).
func (u *Universe) Represent(p bdd.Ref) (Set, bool) {
	var ids []int32
	covered := bdd.False
	for i, a := range u.atoms {
		in := u.space.T.And(a, p)
		if in == bdd.False {
			continue
		}
		if in != a {
			return Set{}, false // the predicate cuts through an atom
		}
		ids = append(ids, int32(i))
		covered = u.space.T.Or(covered, a)
	}
	if covered != p {
		return Set{}, false
	}
	return Set{ids: ids}, true
}

// ToBDD expands an atom set back to its BDD.
func (u *Universe) ToBDD(s Set) bdd.Ref {
	out := bdd.False
	for _, id := range s.ids {
		out = u.space.T.Or(out, u.atoms[id])
	}
	return out
}

// Full returns the set containing every atom (the True predicate).
func (u *Universe) Full() Set {
	ids := make([]int32, len(u.atoms))
	for i := range ids {
		ids[i] = int32(i)
	}
	return Set{ids: ids}
}

// Empty returns the empty set.
func Empty() Set { return Set{} }

// FromIDs builds a set from explicit atom IDs (validated and sorted).
func (u *Universe) FromIDs(ids []int32) (Set, error) {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	for i, id := range out {
		if id < 0 || int(id) >= len(u.atoms) {
			return Set{}, fmt.Errorf("atoms: id %d out of range", id)
		}
		if i > 0 && out[i-1] == id {
			return Set{}, fmt.Errorf("atoms: duplicate id %d", id)
		}
	}
	return Set{ids: out}, nil
}

// Len returns the number of atoms in the set.
func (s Set) Len() int { return len(s.ids) }

// IsEmpty reports whether the set denotes the empty predicate.
func (s Set) IsEmpty() bool { return len(s.ids) == 0 }

// Equal reports element-wise equality.
func (s Set) Equal(o Set) bool {
	if len(s.ids) != len(o.ids) {
		return false
	}
	for i := range s.ids {
		if s.ids[i] != o.ids[i] {
			return false
		}
	}
	return true
}

// And intersects two atom sets (sorted merge).
func (s Set) And(o Set) Set {
	var out []int32
	i, j := 0, 0
	for i < len(s.ids) && j < len(o.ids) {
		switch {
		case s.ids[i] == o.ids[j]:
			out = append(out, s.ids[i])
			i++
			j++
		case s.ids[i] < o.ids[j]:
			i++
		default:
			j++
		}
	}
	return Set{ids: out}
}

// Or unions two atom sets.
func (s Set) Or(o Set) Set {
	out := make([]int32, 0, len(s.ids)+len(o.ids))
	i, j := 0, 0
	for i < len(s.ids) || j < len(o.ids) {
		switch {
		case j >= len(o.ids) || (i < len(s.ids) && s.ids[i] < o.ids[j]):
			out = append(out, s.ids[i])
			i++
		case i >= len(s.ids) || o.ids[j] < s.ids[i]:
			out = append(out, o.ids[j])
			j++
		default:
			out = append(out, s.ids[i])
			i++
			j++
		}
	}
	return Set{ids: out}
}

// Diff subtracts o from s.
func (s Set) Diff(o Set) Set {
	var out []int32
	j := 0
	for _, id := range s.ids {
		for j < len(o.ids) && o.ids[j] < id {
			j++
		}
		if j < len(o.ids) && o.ids[j] == id {
			continue
		}
		out = append(out, id)
	}
	return Set{ids: out}
}

// Not complements s within the universe.
func (u *Universe) Not(s Set) Set { return u.Full().Diff(s) }

// Contains reports s ⊇ o.
func (s Set) Contains(o Set) bool { return o.Diff(s).IsEmpty() }
