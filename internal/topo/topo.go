// Package topo models the network: switches, ports, links, hosts, and
// middleboxes, plus the hop/path vocabulary shared by the path table
// (control plane) and the switch pipeline (data plane).
//
// Port roles follow §3.3: a port either connects to another switch
// (internal), to an end host (a host/edge port, where packets enter and
// leave the network and where VeriDP initializes and reports tags), or to a
// middlebox. Middlebox ports reflect: a packet sent out of one re-enters on
// the same port after the middlebox processes it (Figure 5's S2 ↔ MB), so
// path-table traversal continues through them rather than terminating.
package topo

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// SwitchID identifies a switch. The paper's prototype packs 8 bits of switch
// ID into the second VLAN tag; we allow 16 bits and let the wire format
// enforce its own limits.
type SwitchID uint16

// PortID is a switch-local port number. Real ports are numbered from 1;
// DropPort is the paper's ⊥ pseudo-port for dropped packets.
type PortID uint16

// DropPort is ⊥: the pseudo output port meaning "dropped". Both drop cases
// of §3.3 (no matching entry; matching entry without an output action) map
// to it.
const DropPort PortID = 0xffff

// IsDrop reports whether the port is the ⊥ drop pseudo-port.
func (p PortID) IsDrop() bool { return p == DropPort }

// String renders real port numbers decimally and the drop port as ⊥.
func (p PortID) String() string {
	if p.IsDrop() {
		return "⊥"
	}
	return fmt.Sprintf("%d", p)
}

// PortKey names one port globally: ⟨switch, port⟩.
type PortKey struct {
	Switch SwitchID
	Port   PortID
}

// String renders the port tuple as ⟨S,p⟩.
func (k PortKey) String() string { return fmt.Sprintf("⟨S%d,%s⟩", k.Switch, k.Port) }

// Hop is the paper's 3-tuple ⟨input_port, switch_ID, output_port⟩: the
// forwarding behavior of one switch on one packet.
type Hop struct {
	In     PortID
	Switch SwitchID
	Out    PortID
}

// String renders the hop as ⟨in,S,out⟩.
func (h Hop) String() string {
	return fmt.Sprintf("⟨%s,S%d,%s⟩", h.In, h.Switch, h.Out)
}

// Bytes serializes the hop as the Bloom-filter element x‖s‖y (Algorithm 1).
// The encoding is fixed at six big-endian bytes so taggers and the
// verification server hash identical inputs.
func (h Hop) Bytes() []byte {
	var b [6]byte
	binary.BigEndian.PutUint16(b[0:], uint16(h.In))
	binary.BigEndian.PutUint16(b[2:], uint16(h.Switch))
	binary.BigEndian.PutUint16(b[4:], uint16(h.Out))
	return b[:]
}

// Path is an ordered list of hops.
type Path []Hop

// String renders the path hop by hop.
func (p Path) String() string {
	s := ""
	for i, h := range p {
		if i > 0 {
			s += " "
		}
		s += h.String()
	}
	return s
}

// Switches returns the switch IDs along the path, in order.
func (p Path) Switches() []SwitchID {
	ids := make([]SwitchID, len(p))
	for i, h := range p {
		ids[i] = h.Switch
	}
	return ids
}

// PortRole classifies what a port connects to.
type PortRole uint8

const (
	// RoleUnused is a port with nothing attached; packets sent to it leave
	// the network unobserved, so topology builders avoid routing to them.
	RoleUnused PortRole = iota
	// RoleInternal connects to another switch.
	RoleInternal
	// RoleHost connects to an end host: an edge port in the paper's sense.
	RoleHost
	// RoleMiddlebox connects to a middlebox that reflects traffic back.
	RoleMiddlebox
)

// Switch is one forwarding element with ports numbered 1..NumPorts.
type Switch struct {
	ID       SwitchID
	Name     string
	NumPorts int
	roles    []PortRole // index 0 unused; ports are 1-based
}

// Role returns the role of a port (RoleUnused for out-of-range ports).
func (s *Switch) Role(p PortID) PortRole {
	if p == DropPort || int(p) < 1 || int(p) > s.NumPorts {
		return RoleUnused
	}
	return s.roles[p]
}

// Ports returns all real port IDs of the switch, 1..NumPorts.
func (s *Switch) Ports() []PortID {
	out := make([]PortID, s.NumPorts)
	for i := range out {
		out[i] = PortID(i + 1)
	}
	return out
}

// Host is an end host attached to an edge port.
type Host struct {
	Name   string
	IP     uint32
	Attach PortKey
}

// Network is the topology graph. It is immutable once handed to the
// controller and data plane; builders populate it single-threaded.
type Network struct {
	switches map[SwitchID]*Switch
	byName   map[string]SwitchID
	links    map[PortKey]PortKey
	hosts    map[string]*Host
	hostByIP map[uint32]*Host
	nextID   SwitchID
}

// NewNetwork returns an empty topology.
func NewNetwork() *Network {
	return &Network{
		switches: make(map[SwitchID]*Switch),
		byName:   make(map[string]SwitchID),
		links:    make(map[PortKey]PortKey),
		hosts:    make(map[string]*Host),
		hostByIP: make(map[uint32]*Host),
		nextID:   1,
	}
}

// AddSwitch creates a switch with the given name and port count and returns
// it. Names must be unique.
func (n *Network) AddSwitch(name string, numPorts int) *Switch {
	if _, dup := n.byName[name]; dup {
		panic(fmt.Sprintf("topo: duplicate switch name %q", name))
	}
	if numPorts < 1 {
		panic(fmt.Sprintf("topo: switch %q needs at least one port", name))
	}
	s := &Switch{
		ID:       n.nextID,
		Name:     name,
		NumPorts: numPorts,
		roles:    make([]PortRole, numPorts+1),
	}
	n.nextID++
	n.switches[s.ID] = s
	n.byName[name] = s.ID
	return s
}

// Switch returns the switch with the given ID, or nil.
func (n *Network) Switch(id SwitchID) *Switch { return n.switches[id] }

// SwitchByName returns the switch with the given name, or nil.
func (n *Network) SwitchByName(name string) *Switch {
	id, ok := n.byName[name]
	if !ok {
		return nil
	}
	return n.switches[id]
}

// Switches returns all switches sorted by ID.
func (n *Network) Switches() []*Switch {
	out := make([]*Switch, 0, len(n.switches))
	for _, s := range n.switches {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumSwitches returns the switch count.
func (n *Network) NumSwitches() int { return len(n.switches) }

// validatePort panics unless ⟨sw,p⟩ names a real, currently unused port.
func (n *Network) validatePort(sw SwitchID, p PortID, use string) *Switch {
	s := n.switches[sw]
	if s == nil {
		panic(fmt.Sprintf("topo: unknown switch %d", sw))
	}
	if p == DropPort || int(p) < 1 || int(p) > s.NumPorts {
		panic(fmt.Sprintf("topo: switch %s has no port %s", s.Name, p))
	}
	if s.roles[p] != RoleUnused {
		panic(fmt.Sprintf("topo: port %s:%s already in use (adding %s)", s.Name, p, use))
	}
	return s
}

// AddLink connects two switch ports bidirectionally.
func (n *Network) AddLink(a SwitchID, ap PortID, b SwitchID, bp PortID) {
	sa := n.validatePort(a, ap, "link")
	sb := n.validatePort(b, bp, "link")
	sa.roles[ap] = RoleInternal
	sb.roles[bp] = RoleInternal
	n.links[PortKey{a, ap}] = PortKey{b, bp}
	n.links[PortKey{b, bp}] = PortKey{a, ap}
}

// AddHost attaches a named host with the given IP to an edge port.
func (n *Network) AddHost(name string, ip uint32, sw SwitchID, p PortID) *Host {
	if _, dup := n.hosts[name]; dup {
		panic(fmt.Sprintf("topo: duplicate host name %q", name))
	}
	if _, dup := n.hostByIP[ip]; dup {
		panic(fmt.Sprintf("topo: duplicate host IP for %q", name))
	}
	s := n.validatePort(sw, p, "host")
	s.roles[p] = RoleHost
	h := &Host{Name: name, IP: ip, Attach: PortKey{sw, p}}
	n.hosts[name] = h
	n.hostByIP[ip] = h
	return h
}

// AddMiddlebox marks a port as middlebox-attached: traversal reflects off it.
func (n *Network) AddMiddlebox(sw SwitchID, p PortID) {
	s := n.validatePort(sw, p, "middlebox")
	s.roles[p] = RoleMiddlebox
}

// Host returns the named host, or nil.
func (n *Network) Host(name string) *Host { return n.hosts[name] }

// HostByIP returns the host owning the IP, or nil.
func (n *Network) HostByIP(ip uint32) *Host { return n.hostByIP[ip] }

// Hosts returns all hosts sorted by name.
func (n *Network) Hosts() []*Host {
	out := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Peer implements Algorithm 2's Link(⟨s,y⟩): where does a packet sent out of
// this port arrive next? For internal links it is the far end; for middlebox
// ports the packet reflects back into the same port; for host and unused
// ports the packet leaves the network (ok=false).
func (n *Network) Peer(pk PortKey) (PortKey, bool) {
	s := n.switches[pk.Switch]
	if s == nil {
		return PortKey{}, false
	}
	switch s.Role(pk.Port) {
	case RoleInternal:
		peer, ok := n.links[pk]
		return peer, ok
	case RoleMiddlebox:
		return pk, true
	default:
		return PortKey{}, false
	}
}

// IsEdgePort reports whether packets enter/leave the network at this port —
// the "⟨s,x⟩ is an edge port" test of Algorithms 1 and 2. Only host ports
// qualify; middlebox ports keep the traversal alive (Figure 5).
func (n *Network) IsEdgePort(pk PortKey) bool {
	s := n.switches[pk.Switch]
	return s != nil && s.Role(pk.Port) == RoleHost
}

// EdgePorts returns every host-facing port, sorted for determinism.
func (n *Network) EdgePorts() []PortKey {
	var out []PortKey
	for _, s := range n.Switches() {
		for _, p := range s.Ports() {
			if s.Role(p) == RoleHost {
				out = append(out, PortKey{s.ID, p})
			}
		}
	}
	return out
}

// NumLinks returns the number of bidirectional switch-to-switch links.
func (n *Network) NumLinks() int { return len(n.links) / 2 }

// MaxPathLength returns the TTL budget Algorithm 1 initializes: generously,
// twice the switch count plus a margin, so legitimate middlebox detours
// never hit zero while genuine loops still terminate.
func (n *Network) MaxPathLength() int { return 2*len(n.switches) + 4 }
