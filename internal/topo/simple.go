// Small topologies: the paper's running examples (Figures 5 and 7) plus
// linear and ring networks used by tests and the quickstart example.

package topo

import "fmt"

// Figure5 builds the three-switch example network of Figure 5/Table 1:
//
//	S1: port 1 = H1 (10.0.1.1), port 2 = H2 (10.0.1.2), port 3 → S2, port 4 → S3
//	S2: port 1 → S1, port 2 → S3, port 3 = middlebox
//	S3: port 1 → S2, port 2 = H3 (10.0.2.1), port 3 → S1
//
// SSH traffic from H1 to H3 detours through the middlebox on S2; other
// traffic takes the direct S1 → S3 link.
func Figure5() *Network {
	n := NewNetwork()
	s1 := n.AddSwitch("S1", 4)
	s2 := n.AddSwitch("S2", 3)
	s3 := n.AddSwitch("S3", 3)
	n.AddLink(s1.ID, 3, s2.ID, 1)
	n.AddLink(s1.ID, 4, s3.ID, 3)
	n.AddLink(s2.ID, 2, s3.ID, 1)
	n.AddMiddlebox(s2.ID, 3)
	n.AddHost("H1", 0x0a000101, s1.ID, 1) // 10.0.1.1
	n.AddHost("H2", 0x0a000102, s1.ID, 2) // 10.0.1.2
	n.AddHost("H3", 0x0a000201, s3.ID, 2) // 10.0.2.1
	return n
}

// Figure7 builds the six-switch fault-localization example of Figure 7. The
// controller's intended path is S1 → S2 → S4; the faulty S1 misforwards out
// port 4, sending packets down S3 → S6 where they are dropped.
//
//	Src — S1.1        S4.3 — Dst
//	S1.2—S2.1  S2.2—S4.1
//	S1.4—S3.1  S2.3—S5.1  S3.3—S6.1  S5.3—S6.2  S4.4—S6.4  S3.2—S5.2
func Figure7() *Network {
	n := NewNetwork()
	s := make([]*Switch, 7) // 1-based
	for i := 1; i <= 6; i++ {
		s[i] = n.AddSwitch(fmt.Sprintf("S%d", i), 4)
	}
	n.AddLink(s[1].ID, 2, s[2].ID, 1)
	n.AddLink(s[2].ID, 2, s[4].ID, 1)
	n.AddLink(s[1].ID, 4, s[3].ID, 1)
	n.AddLink(s[2].ID, 3, s[5].ID, 1)
	n.AddLink(s[3].ID, 3, s[6].ID, 1)
	n.AddLink(s[5].ID, 3, s[6].ID, 2)
	n.AddLink(s[4].ID, 4, s[6].ID, 4)
	n.AddLink(s[3].ID, 2, s[5].ID, 2)
	n.AddHost("Src", 0x0a010101, s[1].ID, 1) // 10.1.1.1
	n.AddHost("Dst", 0x0a020202, s[4].ID, 3) // 10.2.2.2
	return n
}

// Linear builds a chain of n switches (n ≥ 1), each serving hostsPerSwitch
// hosts with IPs 10.(100+switch).h.1.
func Linear(n, hostsPerSwitch int) *Network {
	if n < 1 || hostsPerSwitch < 1 {
		panic("topo: Linear needs at least one switch and one host per switch")
	}
	net := NewNetwork()
	sw := make([]*Switch, n)
	for i := 0; i < n; i++ {
		sw[i] = net.AddSwitch(fmt.Sprintf("s%d", i+1), 2+hostsPerSwitch)
	}
	for i := 0; i+1 < n; i++ {
		net.AddLink(sw[i].ID, 2, sw[i+1].ID, 1)
	}
	for i := 0; i < n; i++ {
		for h := 0; h < hostsPerSwitch; h++ {
			ip := uint32(10)<<24 | uint32(100+i)<<16 | uint32(h)<<8 | 1
			net.AddHost(fmt.Sprintf("h%d-%d", i+1, h), ip, sw[i].ID, PortID(3+h))
		}
	}
	return net
}

// Ring builds a cycle of n switches (n ≥ 3) with one host each — the
// smallest topology on which forwarding loops are expressible, used by the
// loop-detection tests (§6.2).
func Ring(n int) *Network {
	if n < 3 {
		panic("topo: Ring needs at least three switches")
	}
	net := NewNetwork()
	sw := make([]*Switch, n)
	for i := 0; i < n; i++ {
		sw[i] = net.AddSwitch(fmt.Sprintf("r%d", i+1), 3)
	}
	for i := 0; i < n; i++ {
		net.AddLink(sw[i].ID, 2, sw[(i+1)%n].ID, 1)
	}
	for i := 0; i < n; i++ {
		ip := uint32(10)<<24 | uint32(200)<<16 | uint32(i)<<8 | 1
		net.AddHost(fmt.Sprintf("rh%d", i+1), ip, sw[i].ID, 3)
	}
	return net
}
