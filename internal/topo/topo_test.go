package topo

import (
	"testing"
	"testing/quick"
)

func TestAddSwitchAndLookup(t *testing.T) {
	n := NewNetwork()
	s := n.AddSwitch("sw1", 4)
	if s.ID == 0 {
		t.Fatal("switch ID should be nonzero")
	}
	if n.Switch(s.ID) != s || n.SwitchByName("sw1") != s {
		t.Fatal("lookup by ID/name failed")
	}
	if n.SwitchByName("nope") != nil {
		t.Fatal("unknown name returned a switch")
	}
	if got := len(s.Ports()); got != 4 {
		t.Fatalf("Ports() length = %d, want 4", got)
	}
}

func TestDuplicateSwitchNamePanics(t *testing.T) {
	n := NewNetwork()
	n.AddSwitch("dup", 2)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate switch name accepted")
		}
	}()
	n.AddSwitch("dup", 2)
}

func TestLinkAndPeer(t *testing.T) {
	n := NewNetwork()
	a := n.AddSwitch("a", 2)
	b := n.AddSwitch("b", 2)
	n.AddLink(a.ID, 1, b.ID, 2)
	peer, ok := n.Peer(PortKey{a.ID, 1})
	if !ok || peer != (PortKey{b.ID, 2}) {
		t.Fatalf("Peer(a:1) = %v, %v", peer, ok)
	}
	peer, ok = n.Peer(PortKey{b.ID, 2})
	if !ok || peer != (PortKey{a.ID, 1}) {
		t.Fatalf("Peer(b:2) = %v, %v", peer, ok)
	}
	if _, ok := n.Peer(PortKey{a.ID, 2}); ok {
		t.Fatal("unconnected port has a peer")
	}
	if n.NumLinks() != 1 {
		t.Fatalf("NumLinks = %d, want 1", n.NumLinks())
	}
}

func TestPortReusePanics(t *testing.T) {
	n := NewNetwork()
	a := n.AddSwitch("a", 2)
	b := n.AddSwitch("b", 2)
	c := n.AddSwitch("c", 2)
	n.AddLink(a.ID, 1, b.ID, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("port reuse accepted")
		}
	}()
	n.AddLink(a.ID, 1, c.ID, 1)
}

func TestHosts(t *testing.T) {
	n := NewNetwork()
	s := n.AddSwitch("s", 3)
	h := n.AddHost("h1", 0x0a000001, s.ID, 1)
	if n.Host("h1") != h || n.HostByIP(0x0a000001) != h {
		t.Fatal("host lookup failed")
	}
	if !n.IsEdgePort(h.Attach) {
		t.Fatal("host attach port should be an edge port")
	}
	if n.IsEdgePort(PortKey{s.ID, 2}) {
		t.Fatal("unused port counted as edge port")
	}
	if got := len(n.EdgePorts()); got != 1 {
		t.Fatalf("EdgePorts length = %d, want 1", got)
	}
}

func TestMiddleboxReflects(t *testing.T) {
	n := NewNetwork()
	s := n.AddSwitch("s", 3)
	n.AddMiddlebox(s.ID, 2)
	peer, ok := n.Peer(PortKey{s.ID, 2})
	if !ok || peer != (PortKey{s.ID, 2}) {
		t.Fatalf("middlebox port should reflect, got %v, %v", peer, ok)
	}
	if n.IsEdgePort(PortKey{s.ID, 2}) {
		t.Fatal("middlebox port must not be an edge port (Figure 5 traversal continues)")
	}
}

func TestDropPort(t *testing.T) {
	if !DropPort.IsDrop() || PortID(1).IsDrop() {
		t.Fatal("IsDrop broken")
	}
	if DropPort.String() != "⊥" {
		t.Fatalf("DropPort.String() = %q", DropPort.String())
	}
}

func TestHopBytesUnique(t *testing.T) {
	// Distinct hops must serialize distinctly — tags hash these bytes.
	seen := map[string]Hop{}
	for in := PortID(1); in <= 4; in++ {
		for sw := SwitchID(1); sw <= 4; sw++ {
			for _, out := range []PortID{1, 2, 3, 4, DropPort} {
				h := Hop{in, sw, out}
				k := string(h.Bytes())
				if prev, dup := seen[k]; dup {
					t.Fatalf("hops %v and %v serialize identically", prev, h)
				}
				seen[k] = h
			}
		}
	}
}

func TestPathString(t *testing.T) {
	p := Path{{1, 2, 3}, {1, 4, DropPort}}
	if got := p.String(); got != "⟨1,S2,3⟩ ⟨1,S4,⊥⟩" {
		t.Fatalf("Path.String() = %q", got)
	}
	if got := p.Switches(); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("Switches() = %v", got)
	}
}

func TestShortestPathLinear(t *testing.T) {
	n := Linear(4, 1)
	src := n.Host("h1-0").Attach
	dst := n.Host("h4-0").Attach
	p, err := n.ShortestPath(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 4 {
		t.Fatalf("path length %d, want 4 switches", len(p))
	}
	if p[0].In != src.Port || p[0].Switch != src.Switch {
		t.Fatalf("path does not start at source: %v", p)
	}
	last := p[len(p)-1]
	if last.Switch != dst.Switch || last.Out != dst.Port {
		t.Fatalf("path does not end at destination: %v", p)
	}
	// Consecutive hops must be linked.
	for i := 0; i+1 < len(p); i++ {
		peer, ok := n.Peer(PortKey{p[i].Switch, p[i].Out})
		if !ok || peer.Switch != p[i+1].Switch || peer.Port != p[i+1].In {
			t.Fatalf("hops %d and %d not linked: %v", i, i+1, p)
		}
	}
}

func TestShortestPathSameSwitch(t *testing.T) {
	n := Linear(2, 2)
	src := n.Host("h1-0").Attach
	dst := n.Host("h1-1").Attach
	p, err := n.ShortestPath(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 || p[0].In != src.Port || p[0].Out != dst.Port {
		t.Fatalf("same-switch path = %v", p)
	}
	if _, err := n.ShortestPath(src, src); err == nil {
		t.Fatal("path from a port to itself should error")
	}
}

func TestShortestPathErrors(t *testing.T) {
	n := Linear(2, 1)
	src := n.Host("h1-0").Attach
	if _, err := n.ShortestPath(PortKey{99, 1}, src); err == nil {
		t.Fatal("bogus source accepted")
	}
	if _, err := n.ShortestPath(src, PortKey{1, 2}); err == nil {
		t.Fatal("non-edge destination accepted")
	}
	// Disconnected networks.
	m := NewNetwork()
	a := m.AddSwitch("a", 2)
	b := m.AddSwitch("b", 2)
	m.AddHost("ha", 1, a.ID, 1)
	m.AddHost("hb", 2, b.ID, 1)
	if _, err := m.ShortestPath(m.Host("ha").Attach, m.Host("hb").Attach); err == nil {
		t.Fatal("path across disconnected components accepted")
	}
	if m.Connected() {
		t.Fatal("disconnected network reported connected")
	}
}

func TestECMPFatTree(t *testing.T) {
	n := FatTree(4)
	// Hosts in different pods have (k/2)² = 4 equal-cost paths.
	src := n.Host("h-0-0-0").Attach
	dst := n.Host("h-3-1-1").Attach
	paths, err := n.ShortestPaths(src, dst, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("inter-pod ECMP path count = %d, want 4", len(paths))
	}
	for _, p := range paths {
		if len(p) != 5 {
			t.Fatalf("inter-pod path length %d, want 5: %v", len(p), p)
		}
	}
	// maxPaths truncates.
	paths, err = n.ShortestPaths(src, dst, 2)
	if err != nil || len(paths) != 2 {
		t.Fatalf("maxPaths=2 returned %d paths, err %v", len(paths), err)
	}
}

func TestFatTreeShape(t *testing.T) {
	for _, k := range []int{4, 6} {
		n := FatTree(k)
		wantSwitches := k*k + (k/2)*(k/2) // k pods × k switches/pod + (k/2)² cores
		if got := n.NumSwitches(); got != wantSwitches {
			t.Errorf("FatTree(%d) switches = %d, want %d", k, got, wantSwitches)
		}
		wantHosts := k * k * k / 4
		if got := len(n.Hosts()); got != wantHosts {
			t.Errorf("FatTree(%d) hosts = %d, want %d", k, got, wantHosts)
		}
		if !n.Connected() {
			t.Errorf("FatTree(%d) not connected", k)
		}
	}
}

func TestFatTreePanicsOnOddK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd k accepted")
		}
	}()
	FatTree(3)
}

func TestStanfordShape(t *testing.T) {
	n := Stanford(2)
	if got := n.NumSwitches(); got != 26 { // 2 backbone + 10 L2 + 14 zone
		t.Fatalf("Stanford switches = %d, want 26", got)
	}
	if got := len(n.Hosts()); got != 28 {
		t.Fatalf("Stanford hosts = %d, want 28", got)
	}
	if !n.Connected() {
		t.Fatal("Stanford not connected")
	}
	// Paper path shape: zone → L2 → backbone → L2 → zone = 5 switches.
	p, err := n.HostPath("host-boza-0", "host-yozb-0")
	if err != nil {
		t.Fatal(err)
	}
	if len(p) < 3 || len(p) > 6 {
		t.Fatalf("cross-zone path length %d out of expected range: %v", len(p), p)
	}
	for _, name := range []string{"boza", "bbra", "bbrb", "sozb", "cozb", "yoza", "yozb"} {
		if n.SwitchByName(name) == nil {
			t.Errorf("switch %s missing (function test of §6.2 needs it)", name)
		}
	}
}

func TestInternet2Shape(t *testing.T) {
	n := Internet2(1)
	if got := n.NumSwitches(); got != 9 {
		t.Fatalf("Internet2 switches = %d, want 9", got)
	}
	if got := n.NumLinks(); got != len(internet2Links) {
		t.Fatalf("Internet2 links = %d, want %d", got, len(internet2Links))
	}
	if !n.Connected() {
		t.Fatal("Internet2 not connected")
	}
	// Coast-to-coast path exists.
	if _, err := n.HostPath("host-seat-0", "host-wash-0"); err != nil {
		t.Fatal(err)
	}
}

func TestFigure5Shape(t *testing.T) {
	n := Figure5()
	if n.NumSwitches() != 3 || len(n.Hosts()) != 3 {
		t.Fatal("Figure5 shape wrong")
	}
	// The middlebox reflects on S2 port 3.
	s2 := n.SwitchByName("S2")
	peer, ok := n.Peer(PortKey{s2.ID, 3})
	if !ok || peer != (PortKey{s2.ID, 3}) {
		t.Fatal("S2 port 3 should reflect off the middlebox")
	}
}

func TestFigure7Shape(t *testing.T) {
	n := Figure7()
	if n.NumSwitches() != 6 || len(n.Hosts()) != 2 {
		t.Fatal("Figure7 shape wrong")
	}
	p, err := n.HostPath("Src", "Dst")
	if err != nil {
		t.Fatal(err)
	}
	// The intended path S1 → S2 → S4 is the unique shortest.
	want := []SwitchID{n.SwitchByName("S1").ID, n.SwitchByName("S2").ID, n.SwitchByName("S4").ID}
	got := p.Switches()
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("Figure7 shortest path = %v, want S1 S2 S4", p)
	}
}

func TestRingAndLoopPotential(t *testing.T) {
	n := Ring(4)
	if !n.Connected() {
		t.Fatal("ring not connected")
	}
	if n.MaxPathLength() <= 4 {
		t.Fatal("TTL budget too small for the ring")
	}
}

func TestSwitchPathAndNextHop(t *testing.T) {
	n := Linear(4, 1)
	s1 := n.SwitchByName("s1").ID
	s4 := n.SwitchByName("s4").ID
	path, ok := n.SwitchPath(s1, s4)
	if !ok || len(path) != 4 || path[0] != s1 || path[3] != s4 {
		t.Fatalf("SwitchPath = %v, %v", path, ok)
	}
	if p, ok := n.SwitchPath(s1, s1); !ok || len(p) != 1 {
		t.Fatalf("self path = %v, %v", p, ok)
	}
	if _, ok := n.SwitchPath(99, s1); ok {
		t.Fatal("unknown switch accepted")
	}
	port, ok := n.NextHopPort(s1, s4)
	if !ok || port != 2 {
		t.Fatalf("NextHopPort = %v, %v", port, ok)
	}
	if _, ok := n.NextHopPort(s1, s1); ok {
		t.Fatal("next hop to self accepted")
	}
	lp, ok := n.LinkPort(s1, n.SwitchByName("s2").ID)
	if !ok || lp != 2 {
		t.Fatalf("LinkPort = %v, %v", lp, ok)
	}
	if _, ok := n.LinkPort(s1, s4); ok {
		t.Fatal("non-adjacent LinkPort accepted")
	}
}

func TestNeighbors(t *testing.T) {
	n := Linear(3, 1)
	s2 := n.SwitchByName("s2").ID
	nb := n.Neighbors(s2)
	if len(nb) != 2 {
		t.Fatalf("neighbors %v", nb)
	}
	if nb[0].LocalPort >= nb[1].LocalPort {
		t.Fatal("neighbors not sorted by local port")
	}
	for _, x := range nb {
		peer, ok := n.Peer(PortKey{s2, x.LocalPort})
		if !ok || peer.Switch != x.Switch || peer.Port != x.Port {
			t.Fatalf("neighbor %v disagrees with Peer", x)
		}
	}
}

// Property: Peer is an involution on internal links.
func TestQuickPeerInvolution(t *testing.T) {
	n := FatTree(4)
	prop := func(swRaw uint16, portRaw uint8) bool {
		sw := SwitchID(swRaw%uint16(n.NumSwitches())) + 1
		s := n.Switch(sw)
		p := PortID(int(portRaw)%s.NumPorts) + 1
		pk := PortKey{sw, p}
		peer, ok := n.Peer(pk)
		if !ok {
			return true
		}
		if peer == pk { // middlebox reflection
			return true
		}
		back, ok2 := n.Peer(peer)
		return ok2 && back == pk
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: every shortest path returned is well-formed (linked hops,
// correct endpoints, no repeated switch).
func TestQuickShortestPathWellFormed(t *testing.T) {
	n := FatTree(4)
	hosts := n.Hosts()
	prop := func(i, j uint8) bool {
		a := hosts[int(i)%len(hosts)]
		b := hosts[int(j)%len(hosts)]
		if a == b {
			return true
		}
		p, err := n.ShortestPath(a.Attach, b.Attach)
		if err != nil {
			return false
		}
		if p[0].Switch != a.Attach.Switch || p[0].In != a.Attach.Port {
			return false
		}
		last := p[len(p)-1]
		if last.Switch != b.Attach.Switch || last.Out != b.Attach.Port {
			return false
		}
		seen := map[SwitchID]bool{}
		for _, h := range p {
			if seen[h.Switch] {
				return false
			}
			seen[h.Switch] = true
		}
		for k := 0; k+1 < len(p); k++ {
			peer, ok := n.Peer(PortKey{p[k].Switch, p[k].Out})
			if !ok || peer.Switch != p[k+1].Switch || peer.Port != p[k+1].In {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
