// Fat-tree topology builder. The paper evaluates localization accuracy and
// path-table statistics on FT(k=4) and FT(k=6) (Tables 2 and 3), emulating
// "medium-sized networks".

package topo

import "fmt"

// FatTree builds the standard k-ary fat tree: k pods, each with k/2 edge and
// k/2 aggregation switches, (k/2)² core switches, and k/2 hosts per edge
// switch (k³/4 hosts total). k must be even and ≥ 2.
//
// Port layout:
//   - edge switch:  ports 1..k/2 to hosts, ports k/2+1..k to the pod's
//     aggregation switches (in index order)
//   - aggregation:  ports 1..k/2 to the pod's edge switches, ports
//     k/2+1..k to its core group
//   - core (g,i):   port p connects to pod p-1's aggregation switch g
//
// Host IPs follow the conventional 10.pod.edge.(host+1) scheme.
func FatTree(k int) *Network {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topo: fat tree arity %d must be even and >= 2", k))
	}
	n := NewNetwork()
	half := k / 2

	edges := make([][]*Switch, k)    // [pod][edge index]
	aggs := make([][]*Switch, k)     // [pod][agg index]
	cores := make([][]*Switch, half) // [group][index within group]

	for p := 0; p < k; p++ {
		edges[p] = make([]*Switch, half)
		aggs[p] = make([]*Switch, half)
		for e := 0; e < half; e++ {
			edges[p][e] = n.AddSwitch(fmt.Sprintf("edge-%d-%d", p, e), k)
		}
		for a := 0; a < half; a++ {
			aggs[p][a] = n.AddSwitch(fmt.Sprintf("agg-%d-%d", p, a), k)
		}
	}
	for g := 0; g < half; g++ {
		cores[g] = make([]*Switch, half)
		for i := 0; i < half; i++ {
			cores[g][i] = n.AddSwitch(fmt.Sprintf("core-%d-%d", g, i), k)
		}
	}

	// Edge ↔ aggregation inside each pod.
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				n.AddLink(edges[p][e].ID, PortID(half+a+1), aggs[p][a].ID, PortID(e+1))
			}
		}
	}
	// Aggregation ↔ core: aggregation switch a of each pod uplinks to core
	// group a; its i-th uplink goes to the group's i-th core switch, which
	// dedicates one port per pod.
	for p := 0; p < k; p++ {
		for a := 0; a < half; a++ {
			for i := 0; i < half; i++ {
				n.AddLink(aggs[p][a].ID, PortID(half+i+1), cores[a][i].ID, PortID(p+1))
			}
		}
	}
	// Hosts.
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				ip := uint32(10)<<24 | uint32(p)<<16 | uint32(e)<<8 | uint32(h+1)
				name := fmt.Sprintf("h-%d-%d-%d", p, e, h)
				n.AddHost(name, ip, edges[p][e].ID, PortID(h+1))
			}
		}
	}
	return n
}
