// Stanford-backbone-like and Internet2-like topology builders.
//
// The paper evaluates on the real Stanford backbone configuration (16 Cisco
// routers + 10 layer-2 switches, 757,170 forwarding + 1,584 ACL rules) and
// the Internet2 observatory snapshot (9 Juniper routers, 126,017 IPv4
// rules). Those configuration files are not redistributable, so these
// builders synthesize topologies with the published structure; the scenario
// package layers synthetic rule sets with the published scale on top
// (see DESIGN.md, "Substitutions").

package topo

import "fmt"

// StanfordZones are the seven zone-router pairs of the Stanford backbone;
// each zone has an "a" and "b" router (boza/bozb, coza/cozb, ...). The
// function test of §6.2 manipulates boza, bbrb, sozb, cozb, yoza, and yozb.
var StanfordZones = []string{"boz", "coz", "goz", "poz", "roz", "soz", "yoz"}

// Stanford builds the Stanford-backbone-like topology: two backbone routers
// (bbra, bbrb), seven zone-router pairs, and ten layer-2 distribution
// switches. Each backbone router fans out to five L2 switches; each zone
// router uplinks to one bbra-side and one bbrb-side L2 switch; the two
// backbone routers interconnect directly. Every zone router serves
// hostsPerRouter edge ports (≥ 1), hosting subnets 10.(16+router).h.0/24.
func Stanford(hostsPerRouter int) *Network {
	if hostsPerRouter < 1 {
		panic("topo: Stanford needs at least one host per zone router")
	}
	n := NewNetwork()

	// Backbone routers: 1 cross link + 5 L2 downlinks.
	bbra := n.AddSwitch("bbra", 6)
	bbrb := n.AddSwitch("bbrb", 6)
	n.AddLink(bbra.ID, 1, bbrb.ID, 1)

	// Ten L2 switches, five per backbone. Each needs 1 uplink + up to 3
	// zone-router downlinks (14 routers across 5 switches = ceil 3).
	l2a := make([]*Switch, 5)
	l2b := make([]*Switch, 5)
	for i := 0; i < 5; i++ {
		l2a[i] = n.AddSwitch(fmt.Sprintf("l2a-%d", i+1), 4)
		l2b[i] = n.AddSwitch(fmt.Sprintf("l2b-%d", i+1), 4)
		n.AddLink(bbra.ID, PortID(i+2), l2a[i].ID, 1)
		n.AddLink(bbrb.ID, PortID(i+2), l2b[i].ID, 1)
	}

	// Fourteen zone routers: ports 1,2 = uplinks, 3.. = hosts.
	l2aNext := make([]int, 5) // next free downlink port per L2 switch
	l2bNext := make([]int, 5)
	idx := 0
	for _, zone := range StanfordZones {
		for _, side := range []string{"a", "b"} {
			r := n.AddSwitch(zone+side, 2+hostsPerRouter)
			ai := idx % 5
			bi := (idx + 2) % 5 // offset so pairs don't share both L2 switches
			n.AddLink(r.ID, 1, l2a[ai].ID, PortID(2+l2aNext[ai]))
			l2aNext[ai]++
			n.AddLink(r.ID, 2, l2b[bi].ID, PortID(2+l2bNext[bi]))
			l2bNext[bi]++
			for h := 0; h < hostsPerRouter; h++ {
				ip := uint32(10)<<24 | uint32(16+idx)<<16 | uint32(h)<<8 | 1
				n.AddHost(fmt.Sprintf("host-%s%s-%d", zone, side, h), ip, r.ID, PortID(3+h))
			}
			idx++
		}
	}
	return n
}

// StanfordSubnet returns the /16 owned by the idx-th zone router (0-based,
// matching the creation order of Stanford): 10.(16+idx).0.0/16. The scenario
// generator carves its synthetic /24 rules out of these.
func StanfordSubnet(idx int) (prefix uint32, plen int) {
	return uint32(10)<<24 | uint32(16+idx)<<16, 16
}

// internet2Links lists the Abilene-era Internet2 backbone adjacencies among
// its nine PoP routers.
var internet2Links = [][2]string{
	{"seat", "sunn"}, {"seat", "denv"},
	{"sunn", "losa"}, {"sunn", "denv"},
	{"losa", "hous"},
	{"denv", "kans"},
	{"kans", "hous"}, {"kans", "chic"},
	{"hous", "atla"},
	{"chic", "atla"}, {"chic", "wash"},
	{"atla", "wash"},
}

// Internet2Routers are the nine PoP routers, in creation order.
var Internet2Routers = []string{"seat", "sunn", "losa", "denv", "kans", "hous", "chic", "atla", "wash"}

// Internet2 builds the nine-router Internet2/Abilene-like backbone. Each
// router serves hostsPerRouter edge ports with subnets 10.(64+router).h.0/24
// representing the customer networks behind that PoP.
func Internet2(hostsPerRouter int) *Network {
	if hostsPerRouter < 1 {
		panic("topo: Internet2 needs at least one host per router")
	}
	n := NewNetwork()
	// Up to 4 backbone adjacencies per router + host ports.
	for _, name := range Internet2Routers {
		n.AddSwitch(name, 4+hostsPerRouter)
	}
	next := map[string]int{}
	for _, l := range internet2Links {
		a, b := n.SwitchByName(l[0]), n.SwitchByName(l[1])
		n.AddLink(a.ID, PortID(1+next[l[0]]), b.ID, PortID(1+next[l[1]]))
		next[l[0]]++
		next[l[1]]++
	}
	for i, name := range Internet2Routers {
		r := n.SwitchByName(name)
		for h := 0; h < hostsPerRouter; h++ {
			ip := uint32(10)<<24 | uint32(64+i)<<16 | uint32(h)<<8 | 1
			n.AddHost(fmt.Sprintf("host-%s-%d", name, h), ip, r.ID, PortID(5+h))
		}
	}
	return n
}

// Internet2Subnet returns the /16 behind the idx-th Internet2 router
// (0-based): 10.(64+idx).0.0/16.
func Internet2Subnet(idx int) (prefix uint32, plen int) {
	return uint32(10)<<24 | uint32(64+idx)<<16, 16
}
