// Shortest-path computation over the topology graph. The controller uses
// these to compile routing rules; the fault-localization experiments use
// them to know the intended path of a flow.

package topo

import (
	"fmt"
	"sort"
)

// adjacency returns, for each switch, its internal links as (local port,
// neighbor switch, neighbor port) sorted by local port for determinism.
type adjEntry struct {
	localPort PortID
	peer      PortKey
}

func (n *Network) adjacency(sw SwitchID) []adjEntry {
	s := n.switches[sw]
	if s == nil {
		return nil
	}
	var out []adjEntry
	for _, p := range s.Ports() {
		if s.Role(p) != RoleInternal {
			continue
		}
		peer, ok := n.links[PortKey{sw, p}]
		if ok {
			out = append(out, adjEntry{p, peer})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].localPort < out[j].localPort })
	return out
}

// ShortestPath returns one shortest switch-level path from the edge port src
// to the edge port dst as a hop list: the first hop enters at src.Port, the
// last exits at dst.Port. It returns an error when no path exists.
func (n *Network) ShortestPath(src, dst PortKey) (Path, error) {
	paths, err := n.ShortestPaths(src, dst, 1)
	if err != nil {
		return nil, err
	}
	return paths[0], nil
}

// ShortestPaths returns up to maxPaths equal-cost shortest paths from src to
// dst (ECMP sets, used by the traffic-engineering policy of Figure 3). All
// returned paths have the same minimal length. Deterministic given the
// topology.
func (n *Network) ShortestPaths(src, dst PortKey, maxPaths int) ([]Path, error) {
	if !n.IsEdgePort(src) {
		return nil, fmt.Errorf("topo: source %v is not an edge port", src)
	}
	if !n.IsEdgePort(dst) {
		return nil, fmt.Errorf("topo: destination %v is not an edge port", dst)
	}
	if maxPaths < 1 {
		maxPaths = 1
	}
	if src.Switch == dst.Switch {
		if src.Port == dst.Port {
			return nil, fmt.Errorf("topo: source and destination are the same port %v", src)
		}
		return []Path{{Hop{In: src.Port, Switch: src.Switch, Out: dst.Port}}}, nil
	}

	// BFS from the source switch recording distances.
	dist := map[SwitchID]int{src.Switch: 0}
	queue := []SwitchID{src.Switch}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, a := range n.adjacency(cur) {
			next := a.peer.Switch
			if _, seen := dist[next]; !seen {
				dist[next] = dist[cur] + 1
				queue = append(queue, next)
			}
		}
	}
	if _, ok := dist[dst.Switch]; !ok {
		return nil, fmt.Errorf("topo: no path from %v to %v", src, dst)
	}

	// Enumerate shortest paths by walking only distance-increasing edges.
	var out []Path
	var walk func(cur SwitchID, inPort PortID, acc Path)
	walk = func(cur SwitchID, inPort PortID, acc Path) {
		if len(out) >= maxPaths {
			return
		}
		if cur == dst.Switch {
			full := make(Path, len(acc), len(acc)+1)
			copy(full, acc)
			full = append(full, Hop{In: inPort, Switch: cur, Out: dst.Port})
			out = append(out, full)
			return
		}
		for _, a := range n.adjacency(cur) {
			if dist[a.peer.Switch] != dist[cur]+1 {
				continue
			}
			hop := Hop{In: inPort, Switch: cur, Out: a.localPort}
			walk(a.peer.Switch, a.peer.Port, append(acc, hop))
		}
	}
	walk(src.Switch, src.Port, nil)
	if len(out) == 0 {
		return nil, fmt.Errorf("topo: no path from %v to %v", src, dst)
	}
	return out, nil
}

// HostPath returns one shortest path between two named hosts.
func (n *Network) HostPath(srcHost, dstHost string) (Path, error) {
	hs, hd := n.Host(srcHost), n.Host(dstHost)
	if hs == nil {
		return nil, fmt.Errorf("topo: unknown host %q", srcHost)
	}
	if hd == nil {
		return nil, fmt.Errorf("topo: unknown host %q", dstHost)
	}
	return n.ShortestPath(hs.Attach, hd.Attach)
}

// Neighbor describes one internal link from a switch's perspective.
type Neighbor struct {
	LocalPort PortID
	Switch    SwitchID
	Port      PortID
}

// Neighbors returns the switch's internal links sorted by local port.
func (n *Network) Neighbors(sw SwitchID) []Neighbor {
	adj := n.adjacency(sw)
	out := make([]Neighbor, len(adj))
	for i, a := range adj {
		out[i] = Neighbor{LocalPort: a.localPort, Switch: a.peer.Switch, Port: a.peer.Port}
	}
	return out
}

// SwitchPath returns a shortest switch-level path from one switch to
// another (inclusive of both), or ok=false if disconnected. Deterministic:
// ties break toward lower port numbers.
func (n *Network) SwitchPath(from, to SwitchID) ([]SwitchID, bool) {
	if n.switches[from] == nil || n.switches[to] == nil {
		return nil, false
	}
	if from == to {
		return []SwitchID{from}, true
	}
	prev := map[SwitchID]SwitchID{from: from}
	queue := []SwitchID{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, a := range n.adjacency(cur) {
			next := a.peer.Switch
			if _, seen := prev[next]; seen {
				continue
			}
			prev[next] = cur
			if next == to {
				var path []SwitchID
				for s := to; s != from; s = prev[s] {
					path = append(path, s)
				}
				path = append(path, from)
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path, true
			}
			queue = append(queue, next)
		}
	}
	return nil, false
}

// NextHopPort returns the egress port at from on a shortest path toward to
// (ok=false when disconnected or from==to). Route compilation uses this to
// build per-destination forwarding trees.
func (n *Network) NextHopPort(from, to SwitchID) (PortID, bool) {
	path, ok := n.SwitchPath(from, to)
	if !ok || len(path) < 2 {
		return 0, false
	}
	return n.LinkPort(path[0], path[1])
}

// LinkPort returns the local port on switch a that connects directly to
// switch b (the lowest-numbered one if parallel links exist).
func (n *Network) LinkPort(a, b SwitchID) (PortID, bool) {
	for _, adj := range n.adjacency(a) {
		if adj.peer.Switch == b {
			return adj.localPort, true
		}
	}
	return 0, false
}

// Connected reports whether every switch can reach every other over internal
// links — a sanity check the topology builders run on their outputs.
func (n *Network) Connected() bool {
	if len(n.switches) == 0 {
		return true
	}
	var start SwitchID
	for id := range n.switches {
		start = id
		break
	}
	seen := map[SwitchID]bool{start: true}
	queue := []SwitchID{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, a := range n.adjacency(cur) {
			if !seen[a.peer.Switch] {
				seen[a.peer.Switch] = true
				queue = append(queue, a.peer.Switch)
			}
		}
	}
	return len(seen) == len(n.switches)
}
