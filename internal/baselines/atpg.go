// Package baselines implements simplified versions of the two data-plane
// testing tools the paper positions VeriDP against (§1, §3.1, §7):
//
//   - ATPG (Zeng et al., CoNEXT'12): generate a minimal set of end-to-end
//     probe packets that collectively exercise every rule, and check only
//     whether each probe is received. Reception-only checking cannot see
//     path deviations that still deliver the packet — the limitation §3.1
//     illustrates and our comparison tests demonstrate.
//
//   - Monocle (Kuźniar et al., CoNEXT'15): per-rule probe generation — craft
//     a packet that can only trigger the rule under test and observe which
//     port emits it. Exact but slow to generate (tens of seconds for 10K
//     rules in the paper), so it cannot track frequent updates; the probe
//     generation benchmarks reproduce that scaling argument.
package baselines

import (
	"veridp/internal/core"
	"veridp/internal/dataplane"
	"veridp/internal/header"
	"veridp/internal/topo"
)

// Probe is one ATPG end-to-end test packet.
type Probe struct {
	Inport topo.PortKey
	Header header.Header
	// ExpectDelivery and ExpectExit describe the control plane's intent.
	ExpectDelivery bool
	ExpectExit     topo.PortKey
	// Covers lists the (switch, rule) pairs the probe exercises.
	Covers []RuleRef
}

// RuleRef names one rule on one switch.
type RuleRef struct {
	Switch topo.SwitchID
	RuleID uint64
}

// GenerateATPGProbes computes a probe set covering every coverable rule:
// one candidate probe per path-table entry (each entry is one forwarding
// equivalence class end-to-end), then a greedy set cover to minimize the
// probe count, as ATPG's Min-Set-Cover step does.
func GenerateATPGProbes(pt *core.PathTable) []Probe {
	var candidates []Probe
	pt.Entries(func(in, out topo.PortKey, e *core.PathEntry) {
		if !pt.Net.IsEdgePort(in) {
			return
		}
		h, ok := pt.Space.Witness(e.Headers)
		if !ok {
			return
		}
		p := Probe{
			Inport:         in,
			Header:         h,
			ExpectDelivery: pt.Net.IsEdgePort(out),
			ExpectExit:     out,
			Covers:         rulesOnPath(pt, in, h),
		}
		candidates = append(candidates, p)
	})

	// Greedy set cover over rule references.
	uncovered := map[RuleRef]bool{}
	for _, c := range candidates {
		for _, r := range c.Covers {
			uncovered[r] = true
		}
	}
	var picked []Probe
	for len(uncovered) > 0 {
		bestIdx, bestGain := -1, 0
		for i, c := range candidates {
			gain := 0
			for _, r := range c.Covers {
				if uncovered[r] {
					gain++
				}
			}
			if gain > bestGain {
				bestIdx, bestGain = i, gain
			}
		}
		if bestIdx < 0 {
			break
		}
		for _, r := range candidates[bestIdx].Covers {
			delete(uncovered, r)
		}
		picked = append(picked, candidates[bestIdx])
		candidates = append(candidates[:bestIdx], candidates[bestIdx+1:]...)
	}
	return picked
}

// rulesOnPath walks the logical configuration and records which rule each
// hop's lookup hits.
func rulesOnPath(pt *core.PathTable, at topo.PortKey, h header.Header) []RuleRef {
	var out []RuleRef
	cur := at
	for budget := pt.Net.MaxPathLength(); budget > 0; budget-- {
		cfg, ok := pt.Configs[cur.Switch]
		if !ok {
			return out
		}
		r := cfg.Table.Lookup(cur.Port, h)
		if r != nil {
			out = append(out, RuleRef{Switch: cur.Switch, RuleID: r.ID})
		}
		y := cfg.Classify(cur.Port, h)
		outKey := topo.PortKey{Switch: cur.Switch, Port: y}
		if y == topo.DropPort || pt.Net.IsEdgePort(outKey) {
			return out
		}
		next, ok := pt.Net.Peer(outKey)
		if !ok {
			return out
		}
		cur = next
	}
	return out
}

// ATPGResult summarizes one probe run.
type ATPGResult struct {
	Probes   int
	Passed   int
	Failed   int
	Failures []Probe
}

// RunATPG injects every probe and checks reception only: delivered probes
// pass if delivery was expected — regardless of the path taken, which is
// exactly ATPG's blind spot.
func RunATPG(f *dataplane.Fabric, probes []Probe) (ATPGResult, error) {
	var res ATPGResult
	res.Probes = len(probes)
	for _, p := range probes {
		r, err := f.Inject(p.Inport, p.Header)
		if err != nil {
			return res, err
		}
		delivered := r.Outcome == dataplane.OutcomeDelivered
		ok := delivered == p.ExpectDelivery
		if ok && delivered {
			// ATPG checks *which host* received the probe.
			ok = r.Exit == p.ExpectExit
		}
		if ok {
			res.Passed++
		} else {
			res.Failed++
			res.Failures = append(res.Failures, p)
		}
	}
	return res, nil
}
