// Table-dump auditing: the first design option §3.1 considers — "the
// controller can periodically check the health of rules at switches' flow
// tables" — and rejects, because "frequently dumping all rules from
// switches is clearly inefficient, and will place burden on switches".
// AuditTable implements the comparison itself (it does find every rule
// discrepancy); the benchmarks quantify the inefficiency: the bytes moved
// and time spent scale with table size on every audit cycle, whereas
// VeriDP's per-packet work is constant.

package baselines

import (
	"veridp/internal/flowtable"
	"veridp/internal/openflow"
)

// AuditResult classifies every discrepancy between the controller's
// logical table and a dumped physical table.
type AuditResult struct {
	// Missing rules exist logically but not physically (failed installs,
	// evictions).
	Missing []uint64
	// Extraneous rules exist physically but not logically (external
	// modification).
	Extraneous []uint64
	// Modified rules exist on both sides with differing priority, match,
	// action, output port, or rewrite.
	Modified []uint64
	// DumpBytes is the wire size of the dump — the recurring cost §3.1
	// objects to.
	DumpBytes int
}

// Clean reports whether the audit found no discrepancy.
func (r AuditResult) Clean() bool {
	return len(r.Missing) == 0 && len(r.Extraneous) == 0 && len(r.Modified) == 0
}

// AuditTable diffs a logical table against a dumped physical rule list.
func AuditTable(logical *flowtable.Table, physical []*flowtable.Rule) AuditResult {
	res := AuditResult{DumpBytes: len(openflow.MarshalTableDump(physical))}
	phys := make(map[uint64]*flowtable.Rule, len(physical))
	for _, r := range physical {
		phys[r.ID] = r
	}
	for _, lr := range logical.Rules() {
		pr, ok := phys[lr.ID]
		if !ok {
			res.Missing = append(res.Missing, lr.ID)
			continue
		}
		if pr.Priority != lr.Priority || pr.Match != lr.Match ||
			pr.Action != lr.Action || pr.OutPort != lr.OutPort ||
			!pr.Rewrite.Equal(lr.Rewrite) {
			res.Modified = append(res.Modified, lr.ID)
		}
		delete(phys, lr.ID)
	}
	for id := range phys {
		res.Extraneous = append(res.Extraneous, id)
	}
	return res
}
