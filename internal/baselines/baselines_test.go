package baselines

import (
	"testing"

	"veridp/internal/bloom"
	"veridp/internal/core"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/sim"
	"veridp/internal/topo"
)

func figure5() (*sim.Env, *core.PathTable) {
	e, err := sim.Figure5Env(bloom.DefaultParams)
	if err != nil {
		panic(err)
	}
	return e, e.Table()
}

func TestATPGHealthyNetworkPasses(t *testing.T) {
	e, pt := figure5()
	probes := GenerateATPGProbes(pt)
	if len(probes) == 0 {
		t.Fatal("no probes generated")
	}
	res, err := RunATPG(e.Fabric, probes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("healthy network failed %d probes: %v", res.Failed, res.Failures)
	}
}

func TestATPGCoversAllRules(t *testing.T) {
	_, pt := figure5()
	probes := GenerateATPGProbes(pt)
	covered := map[RuleRef]bool{}
	for _, p := range probes {
		for _, r := range p.Covers {
			covered[r] = true
		}
	}
	// Every rule that some packet can trigger from an edge port should be
	// covered; in Figure 5 that is most of the ten rules.
	if len(covered) < 8 {
		t.Fatalf("probes cover only %d rules", len(covered))
	}
}

func TestATPGSetCoverSmallerThanCandidates(t *testing.T) {
	_, pt := figure5()
	probes := GenerateATPGProbes(pt)
	// The greedy cover should not exceed the number of path entries.
	if len(probes) > pt.NumPaths() {
		t.Fatalf("set cover grew: %d probes for %d paths", len(probes), pt.NumPaths())
	}
}

func TestATPGCatchesBlackhole(t *testing.T) {
	e, pt := figure5()
	probes := GenerateATPGProbes(pt)
	// Fault: S3's delivery rule to H3 becomes a drop.
	s3 := e.Net.SwitchByName("S3").ID
	var target uint64
	for _, r := range e.Fabric.Switch(s3).Config.Table.Rules() {
		if r.Action == flowtable.ActOutput && r.OutPort == 2 {
			target = r.ID
		}
	}
	if err := e.Fabric.Switch(s3).Config.Table.Modify(target, func(r *flowtable.Rule) { r.Action = flowtable.ActDrop }); err != nil {
		t.Fatal(err)
	}
	res, err := RunATPG(e.Fabric, probes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed == 0 {
		t.Fatal("ATPG missed a black hole it is designed to catch")
	}
}

// TestATPGMissesPathDeviation reproduces the §3.1 argument: a fault that
// deviates the path but still delivers the packet passes ATPG's
// reception-only check, while VeriDP's tag verification catches it.
func TestATPGMissesPathDeviation(t *testing.T) {
	e, pt := figure5()
	probes := GenerateATPGProbes(pt)

	// Fault: the SSH redirect at S1 (to the middlebox) sends traffic down
	// the direct link instead. SSH still reaches H3 — but bypasses the
	// middlebox.
	s1 := e.Net.SwitchByName("S1").ID
	var sshRule uint64
	for _, r := range e.Fabric.Switch(s1).Config.Table.Rules() {
		if r.Match.HasDst && r.Match.DstPort == 22 {
			sshRule = r.ID
		}
	}
	if sshRule == 0 {
		t.Fatal("SSH rule not found")
	}
	if err := e.Fabric.Switch(s1).Config.Table.Modify(sshRule, func(r *flowtable.Rule) { r.OutPort = 4 }); err != nil {
		t.Fatal(err)
	}

	res, err := RunATPG(e.Fabric, probes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("expected ATPG to miss the deviation, but it failed %d probes", res.Failed)
	}

	// VeriDP catches the same fault.
	ssh := header.Header{SrcIP: 0x0a000101, DstIP: 0x0a000201, Proto: header.ProtoTCP, DstPort: 22}
	r, err := e.Fabric.InjectFromHost("H1", ssh)
	if err != nil {
		t.Fatal(err)
	}
	if v := pt.Verify(r.Reports[0]); v.OK {
		t.Fatal("VeriDP should catch the middlebox bypass")
	}
}

func TestMonocleProbesHealthySwitch(t *testing.T) {
	e, _ := figure5()
	s1 := e.Net.SwitchByName("S1").ID
	cfg := e.Ctrl.Logical()[s1]
	probes, shadowed, err := GenerateMonocleProbes(e.Space, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(probes) == 0 {
		t.Fatal("no probes")
	}
	_ = shadowed
	for _, v := range CheckSwitch(e.Fabric.Switch(s1).Config, probes) {
		if !v.OK {
			t.Fatalf("healthy switch failed rule %d: got %s want %s", v.RuleID, v.GotOut, v.ExpectOut)
		}
	}
}

func TestMonocleDetectsEvictionAndModification(t *testing.T) {
	e, _ := figure5()
	s1 := e.Net.SwitchByName("S1").ID
	cfg := e.Ctrl.Logical()[s1]
	probes, _, err := GenerateMonocleProbes(e.Space, cfg)
	if err != nil {
		t.Fatal(err)
	}
	phys := e.Fabric.Switch(s1).Config

	// Evict the SSH redirect.
	var sshRule uint64
	for _, r := range phys.Table.Rules() {
		if r.Match.HasDst && r.Match.DstPort == 22 {
			sshRule = r.ID
		}
	}
	if err := phys.Table.Delete(sshRule); err != nil {
		t.Fatal(err)
	}
	bad := 0
	for _, v := range CheckSwitch(phys, probes) {
		if !v.OK {
			bad++
			if v.RuleID != sshRule {
				t.Fatalf("wrong rule flagged: %d (evicted %d)", v.RuleID, sshRule)
			}
		}
	}
	if bad != 1 {
		t.Fatalf("eviction should fail exactly the evicted rule's probe, failed %d", bad)
	}
}

func TestMonocleShadowedRules(t *testing.T) {
	s := header.NewSpace()
	cfg := flowtable.NewSwitchConfig([]topo.PortID{1, 2})
	cfg.Table.Add(&flowtable.Rule{Priority: 10, Action: flowtable.ActOutput, OutPort: 1}) // match-all
	lo, _ := cfg.Table.Add(&flowtable.Rule{Priority: 5, Match: flowtable.Match{HasDst: true, DstPort: 80}, Action: flowtable.ActOutput, OutPort: 2})
	probes, shadowed, err := GenerateMonocleProbes(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(probes) != 1 {
		t.Fatalf("probes %d, want 1", len(probes))
	}
	if len(shadowed) != 1 || shadowed[0] != lo {
		t.Fatalf("shadowed = %v, want [%d]", shadowed, lo)
	}
}

func BenchmarkMonocleProbeGen1K(b *testing.B) {
	// The §1 scaling argument: probe generation cost grows with the rule
	// count, which is why Monocle cannot track frequent updates.
	s := header.NewSpace()
	cfg := flowtable.NewSwitchConfig([]topo.PortID{1, 2, 3, 4})
	for i := 0; i < 1000; i++ {
		cfg.Table.Add(&flowtable.Rule{
			Priority: uint16(24),
			Match:    flowtable.Match{DstPrefix: flowtable.Prefix{IP: uint32(10)<<24 | uint32(i)<<8, Len: 24}},
			Action:   flowtable.ActOutput,
			OutPort:  topo.PortID(i%4 + 1),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GenerateMonocleProbes(s, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
