// Monocle-style per-rule probe generation: for every rule of a switch,
// solve for a packet that only that rule can catch (its match minus every
// higher-priority overlap), and predict the emitting port. Checking a rule
// is then one PacketOut + one observation. The expensive part — and the
// reason the paper argues Monocle cannot track frequent updates — is the
// constraint solving per rule, which the benchmarks measure.

package baselines

import (
	"fmt"

	"veridp/internal/bdd"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/topo"
)

// RuleProbe is one Monocle probe for one rule of one switch.
type RuleProbe struct {
	RuleID    uint64
	Header    header.Header
	InPort    topo.PortID // input port the probe must claim (0 if any)
	ExpectOut topo.PortID // port the rule should emit it on (⊥ for drops)
}

// GenerateMonocleProbes computes a probe per rule of the switch. Rules
// whose exclusive match is empty (fully shadowed by higher priorities) are
// unprobeable and reported in the second return value, as Monocle reports
// unverifiable rules.
func GenerateMonocleProbes(s *header.Space, cfg *flowtable.SwitchConfig) (probes []RuleProbe, shadowed []uint64, err error) {
	rules := cfg.Table.Rules() // already in descending match order
	remaining := s.All()
	for _, r := range rules {
		m := r.Match.HeaderPredicate(s)
		exclusive := s.T.And(remaining, m)
		remaining = s.T.Diff(remaining, m)
		if exclusive == bdd.False {
			shadowed = append(shadowed, r.ID)
			continue
		}
		h, ok := s.Witness(exclusive)
		if !ok {
			return nil, nil, fmt.Errorf("baselines: witness extraction failed for rule %d", r.ID)
		}
		probes = append(probes, RuleProbe{
			RuleID:    r.ID,
			Header:    h,
			InPort:    r.Match.InPort,
			ExpectOut: r.EffectiveOut(),
		})
	}
	return probes, shadowed, nil
}

// MonocleVerdict reports one rule check.
type MonocleVerdict struct {
	RuleID    uint64
	OK        bool
	GotOut    topo.PortID
	ExpectOut topo.PortID
}

// CheckSwitch runs every probe against the switch's PHYSICAL configuration
// and compares emitting ports — detecting missing, modified, or
// priority-corrupted rules on that one switch.
func CheckSwitch(phys *flowtable.SwitchConfig, probes []RuleProbe) []MonocleVerdict {
	out := make([]MonocleVerdict, 0, len(probes))
	for _, p := range probes {
		in := p.InPort
		if in == 0 {
			in = 1 // any port; pick the first
		}
		got := phys.Classify(in, p.Header)
		out = append(out, MonocleVerdict{
			RuleID:    p.RuleID,
			OK:        got == p.ExpectOut,
			GotOut:    got,
			ExpectOut: p.ExpectOut,
		})
	}
	return out
}
