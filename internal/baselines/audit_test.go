package baselines

import (
	"context"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"veridp/internal/controller"
	"veridp/internal/dataplane"
	"veridp/internal/faults"
	"veridp/internal/flowtable"
	"veridp/internal/openflow"
	"veridp/internal/topo"
)

func TestAuditCleanOnHealthyTable(t *testing.T) {
	n := topo.Linear(3, 1)
	f := dataplane.NewFabric(n)
	c := controller.New(n, &dataplane.FabricInstaller{Fabric: f})
	if err := c.RouteAllHosts(); err != nil {
		t.Fatal(err)
	}
	sw := n.SwitchByName("s2").ID
	res := AuditTable(c.Logical()[sw].Table, f.Switch(sw).Config.Table.Rules())
	if !res.Clean() {
		t.Fatalf("healthy table audits dirty: %+v", res)
	}
	if res.DumpBytes == 0 {
		t.Fatal("dump bytes not accounted")
	}
}

func TestAuditFindsEveryFaultClass(t *testing.T) {
	n := topo.Linear(3, 1)
	f := dataplane.NewFabric(n)
	c := controller.New(n, &dataplane.FabricInstaller{Fabric: f})
	if err := c.RouteAllHosts(); err != nil {
		t.Fatal(err)
	}
	sw := n.SwitchByName("s2").ID
	phys := f.Switch(sw).Config.Table
	rules := phys.Rules()
	if len(rules) < 3 {
		t.Fatalf("need ≥3 rules, have %d", len(rules))
	}
	evictedID := rules[0].ID
	modifiedID := rules[1].ID
	if _, err := faults.Evict(f, sw, evictedID); err != nil {
		t.Fatal(err)
	}
	if err := phys.Modify(modifiedID, func(r *flowtable.Rule) { r.OutPort = 1 }); err != nil {
		t.Fatal(err)
	}
	phys.Add(&flowtable.Rule{ID: 9999, Priority: 1, Action: flowtable.ActDrop}) // external rule

	res := AuditTable(c.Logical()[sw].Table, phys.Rules())
	if len(res.Missing) != 1 || res.Missing[0] != evictedID {
		t.Fatalf("missing = %v", res.Missing)
	}
	if len(res.Modified) != 1 || res.Modified[0] != modifiedID {
		t.Fatalf("modified = %v", res.Modified)
	}
	if len(res.Extraneous) != 1 || res.Extraneous[0] != 9999 {
		t.Fatalf("extraneous = %v", res.Extraneous)
	}
}

func TestTableDumpRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var rules []*flowtable.Rule
	for i := 0; i < 50; i++ {
		rules = append(rules, &flowtable.Rule{
			ID:       uint64(i + 1),
			Priority: uint16(rng.Intn(100)),
			Match:    flowtable.Match{DstPrefix: flowtable.Prefix{IP: rng.Uint32(), Len: rng.Intn(33)}.Canonical()},
			Action:   flowtable.ActOutput,
			OutPort:  topo.PortID(rng.Intn(4) + 1),
		})
	}
	got, err := openflow.UnmarshalTableDump(openflow.MarshalTableDump(rules))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rules) {
		t.Fatalf("rules %d", len(got))
	}
	for i := range rules {
		if *got[i] != *rules[i] {
			t.Fatalf("rule %d corrupted: %+v vs %+v", i, got[i], rules[i])
		}
	}
	if _, err := openflow.UnmarshalTableDump([]byte{1}); err == nil {
		t.Fatal("short dump accepted")
	}
}

// TestDumpOverLiveChannel drives the full §3.1 audit loop over TCP: the
// controller server requests a dump from a live agent and audits it.
func TestDumpOverLiveChannel(t *testing.T) {
	n := topo.Linear(2, 1)
	f := dataplane.NewFabric(n)
	srv := controller.NewServer()
	srv.Timeout = 3 * time.Second
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(context.Background(), l)
	defer srv.Close()

	sw := n.SwitchByName("s1").ID
	var mu sync.Mutex
	agent := &dataplane.Agent{Fabric: f, ID: sw, Mu: &mu}
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go agent.Run(context.Background(), conn)
	if err := srv.WaitForSwitches([]topo.SwitchID{sw}); err != nil {
		t.Fatal(err)
	}

	ctrl := controller.New(n, srv)
	if _, err := ctrl.InstallRule(sw, flowtable.Rule{Priority: 7, Action: flowtable.ActOutput, OutPort: 2}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Barrier(sw); err != nil {
		t.Fatal(err)
	}

	dumped, err := srv.DumpTable(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(dumped) != 1 || dumped[0].Priority != 7 {
		t.Fatalf("dump %v", dumped)
	}
	if res := AuditTable(ctrl.Logical()[sw].Table, dumped); !res.Clean() {
		t.Fatalf("audit over the wire dirty: %+v", res)
	}
	// Corrupt the physical rule out-of-band; the audit catches it.
	mu.Lock()
	f.Switch(sw).Config.Table.Modify(dumped[0].ID, func(r *flowtable.Rule) { r.OutPort = 1 })
	mu.Unlock()
	dumped, err = srv.DumpTable(sw)
	if err != nil {
		t.Fatal(err)
	}
	if res := AuditTable(ctrl.Logical()[sw].Table, dumped); len(res.Modified) != 1 {
		t.Fatalf("audit missed the modification: %+v", res)
	}
}

// BenchmarkTableDumpAudit quantifies the §3.1 inefficiency: per-audit cost
// (serialize + parse + diff) grows linearly with the table.
func BenchmarkTableDumpAudit(b *testing.B) {
	logical := flowtable.NewTable()
	var physical []*flowtable.Rule
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10000; i++ {
		r := &flowtable.Rule{
			Priority: 24,
			Match:    flowtable.Match{DstPrefix: flowtable.Prefix{IP: rng.Uint32(), Len: 24}.Canonical()},
			Action:   flowtable.ActOutput,
			OutPort:  topo.PortID(rng.Intn(4) + 1),
		}
		id, _ := logical.Add(r)
		pr := *r
		pr.ID = id
		physical = append(physical, &pr)
	}
	b.ResetTimer()
	var bytes int
	for i := 0; i < b.N; i++ {
		wire := openflow.MarshalTableDump(physical)
		bytes = len(wire)
		rules, err := openflow.UnmarshalTableDump(wire)
		if err != nil {
			b.Fatal(err)
		}
		if res := AuditTable(logical, rules); !res.Clean() {
			b.Fatal("dirty")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(bytes), "bytes/audit")
}
