package openflow

import (
	"context"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"veridp/internal/flowtable"
	"veridp/internal/topo"
)

func TestFlowModRoundTrip(t *testing.T) {
	f := &FlowMod{
		Command: FlowAdd,
		Switch:  9,
		RuleID:  1234567,
		Rule: flowtable.Rule{
			Priority: 42,
			Match: flowtable.Match{
				InPort:    2,
				SrcPrefix: flowtable.Prefix{IP: 0x0a000000, Len: 8},
				DstPrefix: flowtable.Prefix{IP: 0x0a000200, Len: 24},
				HasProto:  true, Proto: 6,
				HasDst: true, DstPort: 22,
			},
			Action:  flowtable.ActOutput,
			OutPort: 3,
		},
	}
	got, err := UnmarshalFlowMod(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Command != f.Command || got.Switch != f.Switch || got.RuleID != f.RuleID {
		t.Fatalf("envelope mismatch: %+v", got)
	}
	if got.Rule.Priority != f.Rule.Priority || got.Rule.Match != f.Rule.Match ||
		got.Rule.Action != f.Rule.Action || got.Rule.OutPort != f.Rule.OutPort {
		t.Fatalf("rule mismatch: %+v vs %+v", got.Rule, f.Rule)
	}
	if got.Rule.ID != f.RuleID {
		t.Fatal("rule ID not propagated from envelope")
	}
}

// Property: FlowMod marshalling round-trips for random rules.
func TestQuickFlowModRoundTrip(t *testing.T) {
	prop := func(cmd uint8, sw uint16, id uint64, pri uint16, srcIP, dstIP uint32,
		srcLen, dstLen uint8, flags uint8, proto uint8, sp, dp uint16, out uint16) bool {
		f := &FlowMod{
			Command: FlowModCommand(cmd%3 + 1),
			Switch:  topo.SwitchID(sw),
			RuleID:  id,
			Rule: flowtable.Rule{
				Priority: pri,
				Match: flowtable.Match{
					SrcPrefix: flowtable.Prefix{IP: srcIP, Len: int(srcLen % 33)},
					DstPrefix: flowtable.Prefix{IP: dstIP, Len: int(dstLen % 33)},
					HasProto:  flags&1 != 0, Proto: proto,
					HasSrc: flags&2 != 0, SrcPort: sp,
					HasDst: flags&4 != 0, DstPort: dp,
				},
				Action:  flowtable.Action(flags % 2),
				OutPort: topo.PortID(out),
			},
		}
		got, err := UnmarshalFlowMod(f.Marshal())
		if err != nil {
			return false
		}
		return got.Command == f.Command && got.Rule.Match == f.Rule.Match &&
			got.Rule.OutPort == f.Rule.OutPort && got.RuleID == f.RuleID
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowModRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalFlowMod([]byte{1, 2}); err == nil {
		t.Fatal("short FlowMod accepted")
	}
	f := &FlowMod{Command: FlowAdd}
	b := f.Marshal()
	b[0] = 99
	if _, err := UnmarshalFlowMod(b); err == nil {
		t.Fatal("bad command accepted")
	}
	b = f.Marshal()
	b[13+6] = 77 // src prefix length: 13-byte envelope + offset 6 in the match
	if _, err := UnmarshalFlowMod(b); err == nil {
		t.Fatal("bad prefix length accepted")
	}
}

func TestPacketOutRoundTrip(t *testing.T) {
	p := &PacketOut{Port: 3, Data: []byte{0xde, 0xad}}
	got, err := UnmarshalPacketOut(p.Marshal())
	if err != nil || got.Port != 3 || string(got.Data) != string(p.Data) {
		t.Fatalf("round trip: %+v err %v", got, err)
	}
	if _, err := UnmarshalPacketOut([]byte{1}); err == nil {
		t.Fatal("short PacketOut accepted")
	}
}

func TestErrorRoundTrip(t *testing.T) {
	e := &ErrorMsg{Xid: 77, Reason: "no such rule"}
	got, err := UnmarshalError(e.Marshal())
	if err != nil || got.Xid != 77 || got.Reason != e.Reason {
		t.Fatalf("round trip: %+v err %v", got, err)
	}
}

// pipeConns returns two Conns joined by an in-memory pipe.
func pipeConns() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

func TestConnSendRecv(t *testing.T) {
	a, b := pipeConns()
	defer a.Close()
	defer b.Close()
	go func() {
		a.Send(&Message{Type: TypeEchoRequest, Xid: 5, Body: []byte("ping")})
	}()
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != TypeEchoRequest || m.Xid != 5 || string(m.Body) != "ping" {
		t.Fatalf("recv %+v", m)
	}
}

func TestConnHello(t *testing.T) {
	a, b := pipeConns()
	defer a.Close()
	defer b.Close()
	go a.SendHello(13)
	sw, err := b.RecvHello()
	if err != nil || sw != 13 {
		t.Fatalf("hello: %d, %v", sw, err)
	}
}

func TestConnRejectsBadVersion(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go a.Write([]byte{0xff, 1, 0, 8, 0, 0, 0, 0})
	if _, err := NewConn(b).Recv(); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestConnRejectsBadLength(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go a.Write([]byte{Version, 1, 0, 3, 0, 0, 0, 0}) // length < header
	if _, err := NewConn(b).Recv(); err == nil {
		t.Fatal("undersized frame accepted")
	}
}

func TestBarrierXidEcho(t *testing.T) {
	a, b := pipeConns()
	defer a.Close()
	defer b.Close()
	var xid uint32
	done := make(chan struct{})
	go func() {
		defer close(done)
		m, err := b.Recv()
		if err != nil || m.Type != TypeBarrierRequest {
			t.Errorf("expected BarrierRequest, got %v err %v", m, err)
			return
		}
		b.SendBarrierReply(m.Xid)
	}()
	xid, err := a.SendBarrierRequest()
	if err != nil {
		t.Fatal(err)
	}
	m, err := a.Recv()
	if err != nil || m.Type != TypeBarrierReply || m.Xid != xid {
		t.Fatalf("barrier reply: %+v err %v", m, err)
	}
	<-done
}

// TestProxySplice runs a real TCP controller, proxy, and switch, and checks
// that FlowMods flow through with interception and barriers round-trip.
func TestProxySplice(t *testing.T) {
	// Controller: accepts one connection, sends a FlowMod + barrier.
	ctrlL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrlL.Close()
	sentRule := flowtable.Rule{Priority: 7, Action: flowtable.ActOutput, OutPort: 2}
	go func() {
		raw, err := ctrlL.Accept()
		if err != nil {
			return
		}
		c := NewConn(raw)
		sw, err := c.RecvHello()
		if err != nil || sw != 21 {
			t.Errorf("controller hello: %d %v", sw, err)
			return
		}
		c.SendFlowMod(&FlowMod{Command: FlowAdd, Switch: sw, RuleID: 5, Rule: sentRule})
		c.SendBarrierRequest()
	}()

	// Proxy with interception hooks.
	var mu sync.Mutex
	var intercepted []*FlowMod
	var barriers []uint32
	hooks := ProxyHooks{
		OnFlowMod: func(sw topo.SwitchID, f *FlowMod) {
			mu.Lock()
			intercepted = append(intercepted, f)
			mu.Unlock()
		},
		OnBarrierReply: func(sw topo.SwitchID, xid uint32) {
			mu.Lock()
			barriers = append(barriers, xid)
			mu.Unlock()
		},
	}
	proxy := NewProxy(ctrlL.Addr().String(), hooks, nil)
	proxyL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go proxy.Serve(context.Background(), proxyL)
	defer proxy.Close()

	// Switch: dials the proxy, installs the rule, answers the barrier.
	raw, err := net.Dial("tcp", proxyL.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	swc := NewConn(raw)
	if err := swc.SendHello(21); err != nil {
		t.Fatal(err)
	}
	m, err := swc.Recv()
	if err != nil || m.Type != TypeFlowMod {
		t.Fatalf("switch recv: %+v err %v", m, err)
	}
	f, err := UnmarshalFlowMod(m.Body)
	if err != nil || f.RuleID != 5 || f.Rule.OutPort != sentRule.OutPort {
		t.Fatalf("flowmod through proxy: %+v err %v", f, err)
	}
	m, err = swc.Recv()
	if err != nil || m.Type != TypeBarrierRequest {
		t.Fatalf("barrier through proxy: %+v err %v", m, err)
	}
	swc.SendBarrierReply(m.Xid)

	// Give the proxy a beat to forward the reply upstream.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		fm, br := len(intercepted), len(barriers)
		mu.Unlock()
		if fm == 1 && br == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("interception incomplete: flowmods=%d barriers=%d", fm, br)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if intercepted[0].RuleID != 5 {
		t.Fatalf("intercepted wrong rule: %+v", intercepted[0])
	}
}
