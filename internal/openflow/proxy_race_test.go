//go:build race

// Race-gated regression for the serveSwitch join. Each spliced session
// runs two legs (controller→switch, switch→controller) that fire the
// interception hooks; serveSwitch must not return — and therefore Serve
// must not drain — until both legs have exited. The join is a
// sync.WaitGroup the legs Done under defer, replacing an earlier
// hand-rolled buffered done-channel the checkers could not see through.
// This test pins the property the refactor made checkable: after Serve
// returns, no hook can fire, ever. A leaked leg shows up two ways — the
// late-hook counter below, and the race detector flagging the leg's
// hook write against the test's final read.

package openflow

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"veridp/internal/topo"
)

// TestProxyCloseJoinsSpliceLegs floods eight spliced sessions with
// BarrierReplies, closes the proxy mid-flood, and verifies that Serve's
// return is a true join: once it comes back, the hooks have gone silent.
func TestProxyCloseJoinsSpliceLegs(t *testing.T) {
	// Upstream controller: accept every session, complete the hello,
	// then swallow traffic until the proxy tears the leg down.
	ctrlL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrlL.Close()
	go func() {
		for {
			raw, err := ctrlL.Accept()
			if err != nil {
				return
			}
			go func(raw net.Conn) {
				defer raw.Close()
				c := NewConn(raw)
				if _, err := c.RecvHello(); err != nil {
					return
				}
				for {
					if _, err := c.Recv(); err != nil {
						return
					}
				}
			}(raw)
		}
	}()

	var mu sync.Mutex
	served := false // set once Serve has returned
	late := 0       // hook invocations after that point
	record := func() {
		mu.Lock()
		if served {
			late++
		}
		mu.Unlock()
	}
	hooks := ProxyHooks{
		OnBarrierReply: func(topo.SwitchID, uint32) { record() },
		OnDisconnect:   func(topo.SwitchID) { record() },
	}
	proxy := NewProxy(ctrlL.Addr().String(), hooks, nil)
	proxyL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- proxy.Serve(context.Background(), proxyL) }()

	// Switches: connect through the proxy and flood replies so the
	// switch→controller legs are mid-forward when Close lands.
	var flood sync.WaitGroup
	for i := 0; i < 8; i++ {
		flood.Add(1)
		go func(id topo.SwitchID) {
			defer flood.Done()
			raw, err := net.Dial("tcp", proxyL.Addr().String())
			if err != nil {
				return
			}
			defer raw.Close()
			c := NewConn(raw)
			if err := c.SendHello(id); err != nil {
				return
			}
			for x := uint32(1); ; x++ {
				if err := c.SendBarrierReply(x); err != nil {
					return
				}
			}
		}(topo.SwitchID(i + 1))
	}

	time.Sleep(20 * time.Millisecond) // let the splices carry real traffic
	proxy.Close()
	select {
	case err := <-serveDone:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("Serve returned %v, want net.ErrClosed after Close", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close: a splice leg was not joined")
	}
	mu.Lock()
	served = true
	mu.Unlock()

	flood.Wait()
	// Give any leaked leg a window to fire a hook against the flag.
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if late != 0 {
		t.Fatalf("%d hook call(s) after Serve returned — splice legs outlived the join", late)
	}
}
