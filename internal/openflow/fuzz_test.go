package openflow

import (
	"testing"

	"veridp/internal/flowtable"
)

// FuzzUnmarshalFlowMod: the southbound decoder must never panic and must
// round-trip everything it accepts.
func FuzzUnmarshalFlowMod(f *testing.F) {
	fm := &FlowMod{Command: FlowAdd, Switch: 2, RuleID: 3,
		Rule: flowtable.Rule{Priority: 4, Action: flowtable.ActOutput, OutPort: 1}}
	f.Add(fm.Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalFlowMod(data)
		if err != nil {
			return
		}
		back, err := UnmarshalFlowMod(got.Marshal())
		if err != nil {
			t.Fatalf("re-marshal unparseable: %v", err)
		}
		if back.Command != got.Command || back.RuleID != got.RuleID ||
			back.Rule.Match != got.Rule.Match || !back.Rule.Rewrite.Equal(got.Rule.Rewrite) {
			t.Fatalf("flowmod round trip broke: %+v vs %+v", back, got)
		}
	})
}

// FuzzUnmarshalTableDump: length-prefixed repeated records are a classic
// overflow spot; the decoder must stay allocation-bounded and panic-free.
func FuzzUnmarshalTableDump(f *testing.F) {
	rules := []*flowtable.Rule{
		{ID: 1, Priority: 2, Action: flowtable.ActOutput, OutPort: 3},
		{ID: 2, Priority: 9, Action: flowtable.ActDrop},
	}
	f.Add(MarshalTableDump(rules))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalTableDump(data)
		if err != nil {
			return
		}
		back, err := UnmarshalTableDump(MarshalTableDump(got))
		if err != nil || len(back) != len(got) {
			t.Fatalf("dump round trip broke: %d vs %d (%v)", len(back), len(got), err)
		}
	})
}

// FuzzUnmarshalPacketOut and FuzzUnmarshalError cover the small codecs.
func FuzzUnmarshalPacketOut(f *testing.F) {
	f.Add((&PacketOut{Port: 1, Data: []byte("x")}).Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		if p, err := UnmarshalPacketOut(data); err == nil {
			if _, err := UnmarshalPacketOut(p.Marshal()); err != nil {
				t.Fatal(err)
			}
		}
	})
}
