// Package openflow implements the southbound channel between the controller
// and switches: a compact OpenFlow-style binary protocol (Hello, Echo,
// FlowMod, Barrier, PacketOut, Error) over length-framed TCP, plus the
// interception proxy the VeriDP server uses to observe "the bidirectional
// OpenFlow messages exchanged between the controller and switches" (§3.2)
// and keep its path table synchronized with rule installs.
//
// The protocol is deliberately OpenFlow-shaped rather than OpenFlow-exact:
// the paper's system needs FlowMod semantics (add/modify/delete with
// priority and match), Barrier ordering, and message interception — not the
// full 1.5 feature surface. See DESIGN.md, "Substitutions".
package openflow

import (
	"encoding/binary"
	"fmt"

	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/topo"
)

// Version is the protocol version carried in every frame header.
const Version = 0x56 // 'V'

// MsgType enumerates the message kinds.
type MsgType uint8

const (
	TypeHello MsgType = iota + 1
	TypeEchoRequest
	TypeEchoReply
	TypeFlowMod
	TypeBarrierRequest
	TypeBarrierReply
	TypePacketOut
	TypeError
	// TypeTableDumpRequest asks a switch for its full flow table;
	// TypeTableDumpReply carries it back. This is the "periodically check
	// the health of rules at switches' flow tables" design option §3.1
	// weighs (and rejects as inefficient); implemented for the comparison.
	TypeTableDumpRequest
	TypeTableDumpReply
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "Hello"
	case TypeEchoRequest:
		return "EchoRequest"
	case TypeEchoReply:
		return "EchoReply"
	case TypeFlowMod:
		return "FlowMod"
	case TypeBarrierRequest:
		return "BarrierRequest"
	case TypeBarrierReply:
		return "BarrierReply"
	case TypePacketOut:
		return "PacketOut"
	case TypeError:
		return "Error"
	case TypeTableDumpRequest:
		return "TableDumpRequest"
	case TypeTableDumpReply:
		return "TableDumpReply"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// headerLen is the fixed frame header: version, type, length, xid.
const headerLen = 8

// maxBody bounds message bodies to keep a corrupted length field from
// allocating unbounded memory.
const maxBody = 1 << 24 // large enough for a full-table dump of ~300K rules

// Message is one southbound frame.
type Message struct {
	Type MsgType
	Xid  uint32
	Body []byte
}

// FlowModCommand selects the FlowMod operation.
type FlowModCommand uint8

const (
	FlowAdd FlowModCommand = iota + 1
	FlowModify
	FlowDelete
)

// String names the command.
func (c FlowModCommand) String() string {
	switch c {
	case FlowAdd:
		return "add"
	case FlowModify:
		return "modify"
	case FlowDelete:
		return "delete"
	default:
		return fmt.Sprintf("FlowModCommand(%d)", uint8(c))
	}
}

// FlowMod installs, modifies, or deletes one rule on the switch at the far
// end of the connection. RuleID is controller-assigned so the control
// plane, the switch, and the VeriDP server agree on rule identity.
type FlowMod struct {
	Command FlowModCommand
	Switch  topo.SwitchID // target switch (proxy uses it for demux/logging)
	RuleID  uint64
	Rule    flowtable.Rule // Priority, Match, Action, OutPort (ID ignored)
}

// flowModLen is the fixed body size of a FlowMod.
const flowModLen = 1 + 2 + 8 + 2 + matchLen + 1 + 2 + rewriteLen

// matchLen is the serialized size of a flowtable.Match.
const matchLen = 2 + 4 + 1 + 4 + 1 + 1 + 1 + 2 + 2

// rewriteLen is the serialized size of the optional set-field actions:
// flags, src IP, dst IP, src port, dst port.
const rewriteLen = 1 + 4 + 4 + 2 + 2

// marshalRewrite encodes the set-field actions into b (≥ rewriteLen).
func marshalRewrite(rw *header.Rewrite, b []byte) {
	var flags uint8
	if rw != nil {
		if rw.SetSrcIP {
			flags |= 1
		}
		if rw.SetDstIP {
			flags |= 2
		}
		if rw.SetSrcPort {
			flags |= 4
		}
		if rw.SetDstPort {
			flags |= 8
		}
		binary.BigEndian.PutUint32(b[1:5], rw.SrcIP)
		binary.BigEndian.PutUint32(b[5:9], rw.DstIP)
		binary.BigEndian.PutUint16(b[9:11], rw.SrcPort)
		binary.BigEndian.PutUint16(b[11:13], rw.DstPort)
	}
	b[0] = flags
}

// unmarshalRewrite decodes set-field actions (nil when no defined flag is
// set). Value bytes under clear flags are ignored rather than copied, so a
// decoded rewrite always re-marshals to identical bytes.
func unmarshalRewrite(b []byte) (*header.Rewrite, error) {
	if len(b) < rewriteLen {
		return nil, fmt.Errorf("openflow: rewrite truncated (%d bytes, want %d)", len(b), rewriteLen)
	}
	flags := b[0]
	rw := &header.Rewrite{}
	if flags&1 != 0 {
		rw.SetSrcIP, rw.SrcIP = true, binary.BigEndian.Uint32(b[1:5])
	}
	if flags&2 != 0 {
		rw.SetDstIP, rw.DstIP = true, binary.BigEndian.Uint32(b[5:9])
	}
	if flags&4 != 0 {
		rw.SetSrcPort, rw.SrcPort = true, binary.BigEndian.Uint16(b[9:11])
	}
	if flags&8 != 0 {
		rw.SetDstPort, rw.DstPort = true, binary.BigEndian.Uint16(b[11:13])
	}
	if rw.IsZero() {
		return nil, nil
	}
	return rw, nil
}

// marshalMatch encodes a match into b (≥ matchLen bytes).
func marshalMatch(m *flowtable.Match, b []byte) {
	binary.BigEndian.PutUint16(b[0:2], uint16(m.InPort))
	binary.BigEndian.PutUint32(b[2:6], m.SrcPrefix.IP)
	b[6] = uint8(m.SrcPrefix.Len)
	binary.BigEndian.PutUint32(b[7:11], m.DstPrefix.IP)
	b[11] = uint8(m.DstPrefix.Len)
	var flags uint8
	if m.HasProto {
		flags |= 1
	}
	if m.HasSrc {
		flags |= 2
	}
	if m.HasDst {
		flags |= 4
	}
	b[12] = flags
	b[13] = m.Proto
	binary.BigEndian.PutUint16(b[14:16], m.SrcPort)
	binary.BigEndian.PutUint16(b[16:18], m.DstPort)
}

// unmarshalMatch decodes a match from b (≥ matchLen bytes).
func unmarshalMatch(b []byte) (flowtable.Match, error) {
	if len(b) < matchLen {
		return flowtable.Match{}, fmt.Errorf("openflow: match truncated (%d bytes, want %d)", len(b), matchLen)
	}
	m := flowtable.Match{
		InPort:    topo.PortID(binary.BigEndian.Uint16(b[0:2])),
		SrcPrefix: flowtable.Prefix{IP: binary.BigEndian.Uint32(b[2:6]), Len: int(b[6])},
		DstPrefix: flowtable.Prefix{IP: binary.BigEndian.Uint32(b[7:11]), Len: int(b[11])},
		Proto:     b[13],
		SrcPort:   binary.BigEndian.Uint16(b[14:16]),
		DstPort:   binary.BigEndian.Uint16(b[16:18]),
	}
	if m.SrcPrefix.Len > 32 || m.DstPrefix.Len > 32 {
		return m, fmt.Errorf("openflow: prefix length out of range")
	}
	flags := b[12]
	m.HasProto = flags&1 != 0
	m.HasSrc = flags&2 != 0
	m.HasDst = flags&4 != 0
	return m, nil
}

// Marshal encodes the FlowMod as a message body.
func (f *FlowMod) Marshal() []byte {
	b := make([]byte, flowModLen)
	b[0] = uint8(f.Command)
	binary.BigEndian.PutUint16(b[1:3], uint16(f.Switch))
	binary.BigEndian.PutUint64(b[3:11], f.RuleID)
	binary.BigEndian.PutUint16(b[11:13], f.Rule.Priority)
	marshalMatch(&f.Rule.Match, b[13:13+matchLen])
	b[13+matchLen] = uint8(f.Rule.Action)
	binary.BigEndian.PutUint16(b[14+matchLen:16+matchLen], uint16(f.Rule.OutPort))
	marshalRewrite(f.Rule.Rewrite, b[16+matchLen:16+matchLen+rewriteLen])
	return b
}

// UnmarshalFlowMod decodes a FlowMod body.
func UnmarshalFlowMod(b []byte) (*FlowMod, error) {
	if len(b) < flowModLen {
		return nil, fmt.Errorf("openflow: FlowMod truncated (%d bytes)", len(b))
	}
	cmd := FlowModCommand(b[0])
	if cmd < FlowAdd || cmd > FlowDelete {
		return nil, fmt.Errorf("openflow: bad FlowMod command %d", b[0])
	}
	if act := flowtable.Action(b[13+matchLen]); act != flowtable.ActOutput && act != flowtable.ActDrop {
		return nil, fmt.Errorf("openflow: bad FlowMod action %d", b[13+matchLen])
	}
	m, err := unmarshalMatch(b[13 : 13+matchLen])
	if err != nil {
		return nil, err
	}
	rw, err := unmarshalRewrite(b[16+matchLen : 16+matchLen+rewriteLen])
	if err != nil {
		return nil, err
	}
	f := &FlowMod{
		Command: cmd,
		Switch:  topo.SwitchID(binary.BigEndian.Uint16(b[1:3])),
		RuleID:  binary.BigEndian.Uint64(b[3:11]),
		Rule: flowtable.Rule{
			Priority: binary.BigEndian.Uint16(b[11:13]),
			Match:    m,
			Action:   flowtable.Action(b[13+matchLen]),
			OutPort:  topo.PortID(binary.BigEndian.Uint16(b[14+matchLen : 16+matchLen])),
			Rewrite:  rw,
		},
	}
	f.Rule.ID = f.RuleID
	return f, nil
}

// ruleWireLen is one serialized rule in a TableDumpReply: ID, priority,
// match, action, out port, rewrite.
const ruleWireLen = 8 + 2 + matchLen + 1 + 2 + rewriteLen

// MarshalTableDump encodes a flow table snapshot as a dump-reply body.
func MarshalTableDump(rules []*flowtable.Rule) []byte {
	b := make([]byte, 4+len(rules)*ruleWireLen)
	binary.BigEndian.PutUint32(b[0:4], uint32(len(rules)))
	off := 4
	for _, r := range rules {
		binary.BigEndian.PutUint64(b[off:off+8], r.ID)
		binary.BigEndian.PutUint16(b[off+8:off+10], r.Priority)
		marshalMatch(&r.Match, b[off+10:off+10+matchLen])
		b[off+10+matchLen] = uint8(r.Action)
		binary.BigEndian.PutUint16(b[off+11+matchLen:off+13+matchLen], uint16(r.OutPort))
		marshalRewrite(r.Rewrite, b[off+13+matchLen:off+13+matchLen+rewriteLen])
		off += ruleWireLen
	}
	return b
}

// UnmarshalTableDump decodes a dump-reply body.
func UnmarshalTableDump(b []byte) ([]*flowtable.Rule, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("openflow: table dump truncated")
	}
	n := binary.BigEndian.Uint32(b[0:4])
	if uint64(len(b)) < 4+uint64(n)*ruleWireLen {
		return nil, fmt.Errorf("openflow: table dump of %d rules truncated (%d bytes)", n, len(b))
	}
	rules := make([]*flowtable.Rule, 0, n)
	off := 4
	for i := uint32(0); i < n; i++ {
		m, err := unmarshalMatch(b[off+10 : off+10+matchLen])
		if err != nil {
			return nil, err
		}
		rw, err := unmarshalRewrite(b[off+13+matchLen : off+13+matchLen+rewriteLen])
		if err != nil {
			return nil, err
		}
		rules = append(rules, &flowtable.Rule{
			ID:       binary.BigEndian.Uint64(b[off : off+8]),
			Priority: binary.BigEndian.Uint16(b[off+8 : off+10]),
			Match:    m,
			Action:   flowtable.Action(b[off+10+matchLen]),
			OutPort:  topo.PortID(binary.BigEndian.Uint16(b[off+11+matchLen : off+13+matchLen])),
			Rewrite:  rw,
		})
		off += ruleWireLen
	}
	return rules, nil
}

// PacketOut asks a switch to emit a packet on a port (used to inject test
// traffic at edge switches).
type PacketOut struct {
	Port topo.PortID
	Data []byte
}

// Marshal encodes the PacketOut body.
func (p *PacketOut) Marshal() []byte {
	b := make([]byte, 2+len(p.Data))
	binary.BigEndian.PutUint16(b[0:2], uint16(p.Port))
	copy(b[2:], p.Data)
	return b
}

// UnmarshalPacketOut decodes a PacketOut body.
func UnmarshalPacketOut(b []byte) (*PacketOut, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("openflow: PacketOut truncated")
	}
	return &PacketOut{
		Port: topo.PortID(binary.BigEndian.Uint16(b[0:2])),
		Data: append([]byte(nil), b[2:]...),
	}, nil
}

// ErrorMsg reports a failure processing the message with the given xid.
type ErrorMsg struct {
	Xid    uint32 // xid of the offending request
	Reason string
}

// Marshal encodes the error body.
func (e *ErrorMsg) Marshal() []byte {
	b := make([]byte, 4+len(e.Reason))
	binary.BigEndian.PutUint32(b[0:4], e.Xid)
	copy(b[4:], e.Reason)
	return b
}

// UnmarshalError decodes an error body.
func UnmarshalError(b []byte) (*ErrorMsg, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("openflow: Error truncated")
	}
	return &ErrorMsg{Xid: binary.BigEndian.Uint32(b[0:4]), Reason: string(b[4:])}, nil
}
