// Length-framed message transport over any net.Conn, with the Hello
// handshake that binds a connection to a switch identity (real OpenFlow
// carries the datapath ID in FeaturesReply; we fold it into Hello).

package openflow

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"veridp/internal/topo"
)

// DefaultIOTimeout bounds each in-flight frame transfer: once the peer
// starts a frame (or we start writing one), the bytes must keep arriving
// within this window or the read/write fails with a timeout. It bounds
// stalled peers, not idle ones — idleness is governed separately.
const DefaultIOTimeout = 10 * time.Second

// Conn is a message-oriented southbound connection. Reads and writes are
// each internally serialized, so one reader goroutine and any number of
// writer goroutines may share a Conn.
//
// Every read and write on the underlying socket is armed with a deadline
// first (the deadline checker enforces this): writes and frame-body reads
// use the I/O timeout; the frame-header read uses the idle timeout, which
// defaults to zero (wait forever) because a healthy OpenFlow session is
// silent between messages — cancelling an idle session is the owner's job,
// via the context that Close()s the Conn and fails the parked read.
type Conn struct {
	c           net.Conn
	readMu      sync.Mutex
	writeMu     sync.Mutex
	nextXid     atomic.Uint32
	ioTimeout   atomic.Int64 // ns; bounds writes and frame-body reads
	idleTimeout atomic.Int64 // ns; bounds the wait for the next frame (0 = forever)
}

// NewConn wraps a net.Conn with the default I/O timeout and no idle
// timeout.
func NewConn(c net.Conn) *Conn {
	cc := &Conn{c: c}
	cc.ioTimeout.Store(int64(DefaultIOTimeout))
	return cc
}

// SetIOTimeout bounds each frame transfer (write, or body read after a
// header). Zero or negative disables the bound.
func (c *Conn) SetIOTimeout(d time.Duration) { c.ioTimeout.Store(int64(d)) }

// SetIdleTimeout bounds the wait for the next inbound frame header. Zero
// (the default) waits forever; the connection's lifetime is then governed
// by its owner cancelling/Closing it.
func (c *Conn) SetIdleTimeout(d time.Duration) { c.idleTimeout.Store(int64(d)) }

// deadlineFor converts a stored timeout into an absolute deadline; the
// zero time clears the deadline, which is how "wait forever" is armed.
func deadlineFor(ns int64) time.Time {
	if ns <= 0 {
		return time.Time{}
	}
	return time.Now().Add(time.Duration(ns))
}

// armWrite sets the write deadline for one frame write.
func (c *Conn) armWrite() error {
	return c.c.SetWriteDeadline(deadlineFor(c.ioTimeout.Load()))
}

// armRead sets the read deadline for a frame-body read (the frame has
// started; the rest must arrive within the I/O timeout).
func (c *Conn) armRead() error {
	return c.c.SetReadDeadline(deadlineFor(c.ioTimeout.Load()))
}

// armIdle sets the read deadline for the between-frames wait.
func (c *Conn) armIdle() error {
	return c.c.SetReadDeadline(deadlineFor(c.idleTimeout.Load()))
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr exposes the peer address for logging.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }

// NextXid allocates a fresh transaction ID.
func (c *Conn) NextXid() uint32 { return c.nextXid.Add(1) }

// Send writes one message.
func (c *Conn) Send(m *Message) error {
	if len(m.Body) > maxBody {
		return fmt.Errorf("openflow: body too large (%d bytes)", len(m.Body))
	}
	var hdr [headerLen]byte
	hdr[0] = Version
	hdr[1] = uint8(m.Type)
	binary.BigEndian.PutUint16(hdr[2:4], uint16(headerLen+len(m.Body)))
	binary.BigEndian.PutUint32(hdr[4:8], m.Xid)
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if err := c.armWrite(); err != nil {
		return err
	}
	//lint:ignore lockedblock writeMu exists to serialize frame writes on the shared conn; blocking under it is its contract
	if _, err := c.c.Write(hdr[:]); err != nil {
		return err
	}
	if len(m.Body) > 0 {
		//lint:ignore lockedblock header and body must reach the wire as one frame; releasing between writes would interleave frames
		if _, err := c.c.Write(m.Body); err != nil {
			return err
		}
	}
	return nil
}

// Recv reads one message, blocking until a full frame arrives.
func (c *Conn) Recv() (*Message, error) {
	c.readMu.Lock()
	defer c.readMu.Unlock()
	var hdr [headerLen]byte
	if err := c.armIdle(); err != nil {
		return nil, err
	}
	//lint:ignore lockedblock readMu exists to serialize frame reads on the shared conn; blocking under it is its contract
	if _, err := io.ReadFull(c.c, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != Version {
		return nil, fmt.Errorf("openflow: bad version %#02x", hdr[0])
	}
	length := int(binary.BigEndian.Uint16(hdr[2:4]))
	if length < headerLen || length-headerLen > maxBody {
		return nil, fmt.Errorf("openflow: bad frame length %d", length)
	}
	m := &Message{
		Type: MsgType(hdr[1]),
		Xid:  binary.BigEndian.Uint32(hdr[4:8]),
	}
	if length > headerLen {
		m.Body = make([]byte, length-headerLen)
		if err := c.armRead(); err != nil {
			return nil, err
		}
		//lint:ignore lockedblock the body belongs to the frame whose header this goroutine just consumed; no other reader may run first
		if _, err := io.ReadFull(c.c, m.Body); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// SendHello announces the local switch identity (switches hello first).
func (c *Conn) SendHello(sw topo.SwitchID) error {
	var body [2]byte
	binary.BigEndian.PutUint16(body[:], uint16(sw))
	return c.Send(&Message{Type: TypeHello, Xid: c.NextXid(), Body: body[:]})
}

// RecvHello reads the peer's Hello and returns the announced switch ID.
func (c *Conn) RecvHello() (topo.SwitchID, error) {
	m, err := c.Recv()
	if err != nil {
		return 0, err
	}
	if m.Type != TypeHello || len(m.Body) < 2 {
		return 0, fmt.Errorf("openflow: expected Hello, got %v", m.Type)
	}
	return topo.SwitchID(binary.BigEndian.Uint16(m.Body[:2])), nil
}

// SendFlowMod sends a FlowMod and returns its xid.
func (c *Conn) SendFlowMod(f *FlowMod) (uint32, error) {
	xid := c.NextXid()
	return xid, c.Send(&Message{Type: TypeFlowMod, Xid: xid, Body: f.Marshal()})
}

// SendBarrierRequest sends a BarrierRequest and returns its xid; the peer
// echoes the xid back in BarrierReply after processing everything before it.
func (c *Conn) SendBarrierRequest() (uint32, error) {
	xid := c.NextXid()
	return xid, c.Send(&Message{Type: TypeBarrierRequest, Xid: xid})
}

// SendBarrierReply acknowledges the barrier with the request's xid.
func (c *Conn) SendBarrierReply(xid uint32) error {
	return c.Send(&Message{Type: TypeBarrierReply, Xid: xid})
}

// SendPacketOut injects a packet on the remote switch.
func (c *Conn) SendPacketOut(p *PacketOut) error {
	return c.Send(&Message{Type: TypePacketOut, Xid: c.NextXid(), Body: p.Marshal()})
}

// SendError reports a processing failure for the given request xid.
func (c *Conn) SendError(xid uint32, reason string) error {
	e := &ErrorMsg{Xid: xid, Reason: reason}
	return c.Send(&Message{Type: TypeError, Xid: c.NextXid(), Body: e.Marshal()})
}
