// Length-framed message transport over any net.Conn, with the Hello
// handshake that binds a connection to a switch identity (real OpenFlow
// carries the datapath ID in FeaturesReply; we fold it into Hello).

package openflow

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"veridp/internal/topo"
)

// Conn is a message-oriented southbound connection. Reads and writes are
// each internally serialized, so one reader goroutine and any number of
// writer goroutines may share a Conn.
type Conn struct {
	c       net.Conn
	readMu  sync.Mutex
	writeMu sync.Mutex
	nextXid atomic.Uint32
}

// NewConn wraps a net.Conn.
func NewConn(c net.Conn) *Conn { return &Conn{c: c} }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr exposes the peer address for logging.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }

// NextXid allocates a fresh transaction ID.
func (c *Conn) NextXid() uint32 { return c.nextXid.Add(1) }

// Send writes one message.
func (c *Conn) Send(m *Message) error {
	if len(m.Body) > maxBody {
		return fmt.Errorf("openflow: body too large (%d bytes)", len(m.Body))
	}
	var hdr [headerLen]byte
	hdr[0] = Version
	hdr[1] = uint8(m.Type)
	binary.BigEndian.PutUint16(hdr[2:4], uint16(headerLen+len(m.Body)))
	binary.BigEndian.PutUint32(hdr[4:8], m.Xid)
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	//lint:ignore lockedblock writeMu exists to serialize frame writes on the shared conn; blocking under it is its contract
	if _, err := c.c.Write(hdr[:]); err != nil {
		return err
	}
	if len(m.Body) > 0 {
		//lint:ignore lockedblock header and body must reach the wire as one frame; releasing between writes would interleave frames
		if _, err := c.c.Write(m.Body); err != nil {
			return err
		}
	}
	return nil
}

// Recv reads one message, blocking until a full frame arrives.
func (c *Conn) Recv() (*Message, error) {
	c.readMu.Lock()
	defer c.readMu.Unlock()
	var hdr [headerLen]byte
	//lint:ignore lockedblock readMu exists to serialize frame reads on the shared conn; blocking under it is its contract
	if _, err := io.ReadFull(c.c, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != Version {
		return nil, fmt.Errorf("openflow: bad version %#02x", hdr[0])
	}
	length := int(binary.BigEndian.Uint16(hdr[2:4]))
	if length < headerLen || length-headerLen > maxBody {
		return nil, fmt.Errorf("openflow: bad frame length %d", length)
	}
	m := &Message{
		Type: MsgType(hdr[1]),
		Xid:  binary.BigEndian.Uint32(hdr[4:8]),
	}
	if length > headerLen {
		m.Body = make([]byte, length-headerLen)
		//lint:ignore lockedblock the body belongs to the frame whose header this goroutine just consumed; no other reader may run first
		if _, err := io.ReadFull(c.c, m.Body); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// SendHello announces the local switch identity (switches hello first).
func (c *Conn) SendHello(sw topo.SwitchID) error {
	var body [2]byte
	binary.BigEndian.PutUint16(body[:], uint16(sw))
	return c.Send(&Message{Type: TypeHello, Xid: c.NextXid(), Body: body[:]})
}

// RecvHello reads the peer's Hello and returns the announced switch ID.
func (c *Conn) RecvHello() (topo.SwitchID, error) {
	m, err := c.Recv()
	if err != nil {
		return 0, err
	}
	if m.Type != TypeHello || len(m.Body) < 2 {
		return 0, fmt.Errorf("openflow: expected Hello, got %v", m.Type)
	}
	return topo.SwitchID(binary.BigEndian.Uint16(m.Body[:2])), nil
}

// SendFlowMod sends a FlowMod and returns its xid.
func (c *Conn) SendFlowMod(f *FlowMod) (uint32, error) {
	xid := c.NextXid()
	return xid, c.Send(&Message{Type: TypeFlowMod, Xid: xid, Body: f.Marshal()})
}

// SendBarrierRequest sends a BarrierRequest and returns its xid; the peer
// echoes the xid back in BarrierReply after processing everything before it.
func (c *Conn) SendBarrierRequest() (uint32, error) {
	xid := c.NextXid()
	return xid, c.Send(&Message{Type: TypeBarrierRequest, Xid: xid})
}

// SendBarrierReply acknowledges the barrier with the request's xid.
func (c *Conn) SendBarrierReply(xid uint32) error {
	return c.Send(&Message{Type: TypeBarrierReply, Xid: xid})
}

// SendPacketOut injects a packet on the remote switch.
func (c *Conn) SendPacketOut(p *PacketOut) error {
	return c.Send(&Message{Type: TypePacketOut, Xid: c.NextXid(), Body: p.Marshal()})
}

// SendError reports a processing failure for the given request xid.
func (c *Conn) SendError(xid uint32, reason string) error {
	e := &ErrorMsg{Xid: xid, Reason: reason}
	return c.Send(&Message{Type: TypeError, Xid: c.NextXid(), Body: e.Marshal()})
}
