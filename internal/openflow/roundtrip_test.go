package openflow

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"strings"
	"testing"

	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/topo"
)

// declaredMsgTypes enumerates every MsgType the package declares, using
// String() as the ground truth: a declared constant has a name, an
// undeclared value prints as "MsgType(n)". This keeps the round-trip
// table honest without hand-maintaining a second list.
func declaredMsgTypes() []MsgType {
	var out []MsgType
	for v := 1; v < 256; v++ {
		if mt := MsgType(v); !strings.HasPrefix(mt.String(), "MsgType(") {
			out = append(out, mt)
		}
	}
	return out
}

// wireCase is one golden round-trip: a representative body for the type
// and a decode→re-encode function proving the body codec is lossless.
type wireCase struct {
	body   []byte
	rebody func([]byte) ([]byte, error)
}

// identityEmpty is the codec of bodyless messages.
func identityEmpty(b []byte) ([]byte, error) {
	if len(b) != 0 {
		return nil, fmt.Errorf("unexpected body (%d bytes)", len(b))
	}
	return nil, nil
}

func wireCases() map[MsgType]wireCase {
	fm := &FlowMod{Command: FlowModify, Switch: 7, RuleID: 0xdeadbeef,
		Rule: flowtable.Rule{
			Priority: 100,
			Match: flowtable.Match{InPort: 3, HasProto: true, Proto: 6,
				SrcPrefix: flowtable.Prefix{IP: 0x0a000000, Len: 8}},
			Action:  flowtable.ActOutput,
			OutPort: 2,
			Rewrite: &header.Rewrite{SetDstIP: true, DstIP: 0x0a000102, SetSrcPort: true, SrcPort: 9999},
		}}
	dump := MarshalTableDump([]*flowtable.Rule{
		{ID: 1, Priority: 2, Action: flowtable.ActOutput, OutPort: 3},
		{ID: 2, Priority: 9, Action: flowtable.ActDrop,
			Rewrite: &header.Rewrite{SetSrcIP: true, SrcIP: 1}},
	})
	po := &PacketOut{Port: 5, Data: []byte("injected frame")}
	em := &ErrorMsg{Xid: 42, Reason: "table full"}

	hello := make([]byte, 2)
	binary.BigEndian.PutUint16(hello, 0x1234)

	return map[MsgType]wireCase{
		TypeHello: {body: hello, rebody: func(b []byte) ([]byte, error) {
			if len(b) < 2 {
				return nil, fmt.Errorf("hello truncated")
			}
			out := make([]byte, 2)
			binary.BigEndian.PutUint16(out, uint16(topo.SwitchID(binary.BigEndian.Uint16(b[:2]))))
			return out, nil
		}},
		TypeEchoRequest:      {rebody: identityEmpty},
		TypeEchoReply:        {rebody: identityEmpty},
		TypeBarrierRequest:   {rebody: identityEmpty},
		TypeBarrierReply:     {rebody: identityEmpty},
		TypeTableDumpRequest: {rebody: identityEmpty},
		TypeFlowMod: {body: fm.Marshal(), rebody: func(b []byte) ([]byte, error) {
			f, err := UnmarshalFlowMod(b)
			if err != nil {
				return nil, err
			}
			return f.Marshal(), nil
		}},
		TypeTableDumpReply: {body: dump, rebody: func(b []byte) ([]byte, error) {
			rules, err := UnmarshalTableDump(b)
			if err != nil {
				return nil, err
			}
			return MarshalTableDump(rules), nil
		}},
		TypePacketOut: {body: po.Marshal(), rebody: func(b []byte) ([]byte, error) {
			p, err := UnmarshalPacketOut(b)
			if err != nil {
				return nil, err
			}
			return p.Marshal(), nil
		}},
		TypeError: {body: em.Marshal(), rebody: func(b []byte) ([]byte, error) {
			e, err := UnmarshalError(b)
			if err != nil {
				return nil, err
			}
			return e.Marshal(), nil
		}},
	}
}

// TestWireRoundTripAllMessageTypes is the dynamic companion to the
// enumswitch checker: every declared message type must have a golden
// case, and each case must survive frame transport (Send/Recv over a
// real connection) and a body decode→re-encode bit-exactly. Adding a
// MsgType constant without extending wireCases fails here.
func TestWireRoundTripAllMessageTypes(t *testing.T) {
	cases := wireCases()
	for _, mt := range declaredMsgTypes() {
		if _, ok := cases[mt]; !ok {
			t.Errorf("message type %v has no wire round-trip case; extend wireCases", mt)
		}
	}
	for mt := range cases {
		if strings.HasPrefix(mt.String(), "MsgType(") {
			t.Errorf("wireCases has entry for undeclared type %d", uint8(mt))
		}
	}

	for _, mt := range declaredMsgTypes() {
		wc, ok := cases[mt]
		if !ok {
			continue // already reported above
		}
		t.Run(mt.String(), func(t *testing.T) {
			client, server := net.Pipe()
			defer client.Close()
			defer server.Close()
			c1, c2 := NewConn(client), NewConn(server)

			sent := &Message{Type: mt, Xid: 77, Body: wc.body}
			errc := make(chan error, 1)
			go func() { errc <- c1.Send(sent) }()
			got, err := c2.Recv()
			if err != nil {
				t.Fatalf("recv: %v", err)
			}
			if err := <-errc; err != nil {
				t.Fatalf("send: %v", err)
			}
			if got.Type != mt || got.Xid != 77 || !bytes.Equal(got.Body, wc.body) {
				t.Fatalf("frame drifted: %v xid=%d body=%x, want %v xid=77 body=%x",
					got.Type, got.Xid, got.Body, mt, wc.body)
			}
			re, err := wc.rebody(got.Body)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !bytes.Equal(re, wc.body) {
				t.Fatalf("body round trip drifted:\n got %x\nwant %x", re, wc.body)
			}
		})
	}
}

// Regression tests for the wiretaint hardening: the inner decoders must
// return errors on truncated windows, never panic. Before the fix both
// indexed their argument on the callers' length contract alone.
func TestUnmarshalMatchTruncated(t *testing.T) {
	for n := 0; n < matchLen; n++ {
		if _, err := unmarshalMatch(make([]byte, n)); err == nil {
			t.Fatalf("unmarshalMatch accepted %d bytes (want error below %d)", n, matchLen)
		}
	}
	if _, err := unmarshalMatch(make([]byte, matchLen)); err != nil {
		t.Fatalf("unmarshalMatch rejected a full window: %v", err)
	}
}

func TestUnmarshalRewriteTruncated(t *testing.T) {
	for n := 0; n < rewriteLen; n++ {
		if _, err := unmarshalRewrite(make([]byte, n)); err == nil {
			t.Fatalf("unmarshalRewrite accepted %d bytes (want error below %d)", n, rewriteLen)
		}
	}
	if _, err := unmarshalRewrite(make([]byte, rewriteLen)); err != nil {
		t.Fatalf("unmarshalRewrite rejected a full window: %v", err)
	}
}
