// The VeriDP interception proxy (§3.2): it sits on the OpenFlow channel
// between the controller and every switch, forwarding messages unchanged in
// both directions while feeding FlowMods to the verification server so the
// path table tracks what the controller believes it installed.

package openflow

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"veridp/internal/netutil"
	"veridp/internal/topo"
)

// dialTimeout bounds the upstream controller dial for one spliced session.
const dialTimeout = 10 * time.Second

// ProxyHooks receives intercepted control traffic. Callbacks run on the
// proxy's per-connection goroutines; implementations must be safe for
// concurrent use. A nil hook is skipped.
type ProxyHooks struct {
	// OnFlowMod fires for every controller→switch FlowMod, before it is
	// forwarded to the switch.
	OnFlowMod func(sw topo.SwitchID, f *FlowMod)
	// OnBarrierReply fires for every switch→controller BarrierReply.
	OnBarrierReply func(sw topo.SwitchID, xid uint32)
	// OnConnect fires when a switch completes its Hello through the proxy.
	OnConnect func(sw topo.SwitchID)
	// OnDisconnect fires when either side of a proxied session closes.
	OnDisconnect func(sw topo.SwitchID)
}

// Proxy accepts switch connections and splices each to its own upstream
// controller connection.
type Proxy struct {
	controllerAddr string
	hooks          ProxyHooks
	logger         *log.Logger

	acceptRetries atomic.Uint64 // temporary Accept errors retried with backoff

	mu       sync.Mutex
	listener net.Listener          // guarded by mu
	sessions map[net.Conn]struct{} // guarded by mu
	closed   bool                  // guarded by mu
	draining sync.WaitGroup        // one unit per serveSwitch goroutine
}

// NewProxy returns a proxy that splices to the controller at addr. logger
// may be nil to disable logging.
func NewProxy(controllerAddr string, hooks ProxyHooks, logger *log.Logger) *Proxy {
	return &Proxy{
		controllerAddr: controllerAddr,
		hooks:          hooks,
		logger:         logger,
		sessions:       make(map[net.Conn]struct{}),
	}
}

func (p *Proxy) logf(format string, args ...interface{}) {
	if p.logger != nil {
		p.logger.Printf("proxy: "+format, args...)
	}
}

// AcceptRetries returns how many temporary Accept errors the proxy has
// ridden out with backoff since it started.
func (p *Proxy) AcceptRetries() uint64 { return p.acceptRetries.Load() }

// Serve accepts switch connections on l until ctx is cancelled or Close
// is called, then drains every spliced session before returning. It
// always returns a non-nil error: ctx.Err() after cancellation,
// net.ErrClosed after Close. Temporary Accept errors are retried with
// capped exponential backoff rather than killing the listener.
func (p *Proxy) Serve(ctx context.Context, l net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("openflow: proxy already closed")
	}
	p.listener = l
	p.mu.Unlock()

	// Cancellation is delivered by closing the listener and sessions,
	// which fails the parked Accept/Recv calls below.
	stop := context.AfterFunc(ctx, p.Close)
	defer stop()

	var bo netutil.Backoff
	for {
		c, err := l.Accept()
		if err != nil {
			if netutil.IsTemporary(err) && bo.Sleep(ctx) {
				p.acceptRetries.Add(1)
				p.logf("temporary accept error, retrying: %v", err)
				continue
			}
			p.draining.Wait()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		bo.Reset()
		p.draining.Add(1)
		go func() {
			defer p.draining.Done()
			p.serveSwitch(ctx, c)
		}()
	}
}

// Close stops the accept loop and tears down every spliced session. The
// session goroutines are drained by Serve before it returns.
func (p *Proxy) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	if p.listener != nil {
		p.listener.Close()
	}
	for c := range p.sessions {
		c.Close()
	}
}

// track registers a connection for teardown; returns false if closing.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.sessions[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.sessions, c)
}

// serveSwitch handles one switch: handshake, upstream dial, then splice.
// ctx cancellation closes both legs via Proxy.Close, which ends the
// splice goroutines through their failed reads.
func (p *Proxy) serveSwitch(ctx context.Context, raw net.Conn) {
	if !p.track(raw) {
		raw.Close()
		return
	}
	defer p.untrack(raw)
	defer raw.Close()

	swConn := NewConn(raw)
	sw, err := swConn.RecvHello()
	if err != nil {
		p.logf("handshake with %v failed: %v", raw.RemoteAddr(), err)
		return
	}

	d := net.Dialer{Timeout: dialTimeout}
	upRaw, err := d.DialContext(ctx, "tcp", p.controllerAddr)
	if err != nil {
		p.logf("switch %d: controller dial failed: %v", sw, err)
		return
	}
	if !p.track(upRaw) {
		upRaw.Close()
		return
	}
	defer p.untrack(upRaw)
	defer upRaw.Close()

	upConn := NewConn(upRaw)
	if err := upConn.SendHello(sw); err != nil {
		p.logf("switch %d: upstream hello failed: %v", sw, err)
		return
	}
	p.logf("switch %d connected via %v", sw, raw.RemoteAddr())
	if p.hooks.OnConnect != nil {
		p.hooks.OnConnect(sw)
	}
	defer func() {
		if p.hooks.OnDisconnect != nil {
			p.hooks.OnDisconnect(sw)
		}
	}()

	// Join both splice legs before the deferred teardown runs: each leg
	// unblocks the other's parked Recv by closing the conn it writes to,
	// so Wait cannot hang on a half-closed session.
	var splice sync.WaitGroup
	// Controller → switch: intercept FlowMods.
	splice.Add(1)
	go func() {
		defer splice.Done()
		for {
			m, err := upConn.Recv()
			if err != nil {
				p.reportSpliceEnd(sw, "controller", err)
				raw.Close()
				return
			}
			if m.Type == TypeFlowMod && p.hooks.OnFlowMod != nil {
				if f, err := UnmarshalFlowMod(m.Body); err == nil {
					p.hooks.OnFlowMod(sw, f)
				} else {
					p.logf("switch %d: undecodable FlowMod: %v", sw, err)
				}
			}
			if err := swConn.Send(m); err != nil {
				p.reportSpliceEnd(sw, "switch(write)", err)
				upRaw.Close()
				return
			}
		}
	}()
	// Switch → controller: intercept BarrierReplies.
	splice.Add(1)
	go func() {
		defer splice.Done()
		for {
			m, err := swConn.Recv()
			if err != nil {
				p.reportSpliceEnd(sw, "switch", err)
				upRaw.Close()
				return
			}
			if m.Type == TypeBarrierReply && p.hooks.OnBarrierReply != nil {
				p.hooks.OnBarrierReply(sw, m.Xid)
			}
			if err := upConn.Send(m); err != nil {
				p.reportSpliceEnd(sw, "controller(write)", err)
				raw.Close()
				return
			}
		}
	}()
	splice.Wait()
}

func (p *Proxy) reportSpliceEnd(sw topo.SwitchID, side string, err error) {
	if err == io.EOF {
		p.logf("switch %d: %s closed", sw, side)
	} else {
		p.logf("switch %d: %s error: %v", sw, side, err)
	}
}
