// Package netutil holds the shared lifetime-and-retry vocabulary for the
// monitor's long-lived network loops: a capped exponential backoff that
// waits under a context, and the temporary-error test that decides
// whether an Accept/Dial failure is worth retrying at all. Every accept
// and reconnect loop in the repo goes through Backoff.Sleep, which is the
// shape the retrybound checker certifies as a bound (context check plus
// capped growth) — a loop that retries I/O without one of these is a
// hot-spin or a retry-forever hazard and lints dirty.
package netutil

import (
	"context"
	"errors"
	"net"
	"time"
)

// Backoff defaults: the first retry waits DefaultMin, each subsequent
// failure doubles the wait, and DefaultMax caps it — the same 5ms→1s
// ramp net/http uses for temporary Accept errors.
const (
	DefaultMin = 5 * time.Millisecond
	DefaultMax = 1 * time.Second
)

// Backoff is a capped exponential delay for retry loops. The zero value
// is ready to use with the default ramp. It is not safe for concurrent
// use; each retry loop owns its own Backoff.
type Backoff struct {
	// Min is the first delay (DefaultMin when zero).
	Min time.Duration
	// Max caps the doubling (DefaultMax when zero).
	Max time.Duration

	cur time.Duration
}

// Sleep waits the current delay (doubling it, capped at Max, for the
// next call) and reports whether the wait completed. It returns false
// immediately when ctx is cancelled — the loop must exit, not retry.
func (b *Backoff) Sleep(ctx context.Context) bool {
	d := b.cur
	if d <= 0 {
		d = b.Min
		if d <= 0 {
			d = DefaultMin
		}
	}
	max := b.Max
	if max <= 0 {
		max = DefaultMax
	}
	next := d * 2
	if next > max {
		next = max
	}
	b.cur = next
	if ctx.Err() != nil {
		return false
	}
	// A stopped Timer is reclaimed immediately; time.After would pin its
	// channel for the full delay even when ctx fires first.
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Reset returns the delay to Min; call it after a successful attempt so
// the next failure starts the ramp over.
func (b *Backoff) Reset() { b.cur = 0 }

// IsTemporary reports whether a network error is worth retrying:
// timeouts and errors that self-describe as temporary. A closed listener
// or socket (net.ErrClosed) is always permanent — it is how cancellation
// is delivered to a parked Accept or Read.
func IsTemporary(err error) bool {
	if err == nil || errors.Is(err, net.ErrClosed) {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) {
		// Temporary is deprecated in general but remains the accept-loop
		// retry contract net/http relies on; Timeout alone misses
		// ECONNABORTED-style transient accept failures.
		return ne.Timeout() || ne.Temporary()
	}
	return false
}
