package netutil

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// TestBackoffRamp verifies the delay doubles from Min and caps at Max.
func TestBackoffRamp(t *testing.T) {
	b := &Backoff{Min: time.Millisecond, Max: 4 * time.Millisecond}
	ctx := context.Background()
	want := []time.Duration{2 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond}
	for i, w := range want {
		if !b.Sleep(ctx) {
			t.Fatalf("Sleep %d: cancelled with live context", i)
		}
		if b.cur != w {
			t.Fatalf("after Sleep %d: next delay = %v, want %v", i, b.cur, w)
		}
	}
	b.Reset()
	if b.cur != 0 {
		t.Fatalf("after Reset: cur = %v, want 0", b.cur)
	}
}

// TestBackoffDefaults verifies the zero value uses the stdlib-style ramp.
func TestBackoffDefaults(t *testing.T) {
	var b Backoff
	if !b.Sleep(context.Background()) {
		t.Fatal("zero-value Sleep cancelled with live context")
	}
	if b.cur != 2*DefaultMin {
		t.Fatalf("after first Sleep: next delay = %v, want %v", b.cur, 2*DefaultMin)
	}
}

// TestBackoffCancelled verifies Sleep returns false without waiting when
// the context is already done, and when it fires mid-wait.
func TestBackoffCancelled(t *testing.T) {
	done, cancel := context.WithCancel(context.Background())
	cancel()
	b := &Backoff{Min: time.Hour}
	start := time.Now()
	if b.Sleep(done) {
		t.Fatal("Sleep returned true under a cancelled context")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Sleep waited %v under a cancelled context", elapsed)
	}

	mid, cancelMid := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancelMid()
	}()
	start = time.Now()
	if (&Backoff{Min: time.Hour}).Sleep(mid) {
		t.Fatal("Sleep outlived a mid-wait cancellation")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Sleep took %v to observe cancellation", elapsed)
	}
}

// timeoutErr is a net.Error whose Timeout/Temporary answers are configurable.
type timeoutErr struct{ timeout, temporary bool }

func (e timeoutErr) Error() string   { return "timeoutErr" }
func (e timeoutErr) Timeout() bool   { return e.timeout }
func (e timeoutErr) Temporary() bool { return e.temporary }

func TestIsTemporary(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"closed", net.ErrClosed, false},
		{"wrapped closed", errors.Join(errors.New("accept"), net.ErrClosed), false},
		{"timeout", timeoutErr{timeout: true}, true},
		{"temporary", timeoutErr{temporary: true}, true},
		{"permanent net.Error", timeoutErr{}, false},
		{"plain error", errors.New("boom"), false},
	}
	for _, tc := range cases {
		if got := IsTemporary(tc.err); got != tc.want {
			t.Errorf("IsTemporary(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}
