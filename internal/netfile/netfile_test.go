package netfile

import (
	"strings"
	"testing"

	"veridp/internal/bloom"
	"veridp/internal/controller"
	"veridp/internal/core"
	"veridp/internal/dataplane"
	"veridp/internal/header"
	"veridp/internal/topo"
)

// figure5JSON describes the paper's Figure 5 network in the file format.
const figure5JSON = `{
  "switches": [
    {"name": "S1", "ports": 4},
    {"name": "S2", "ports": 3},
    {"name": "S3", "ports": 3}
  ],
  "links": [
    {"a": "S1:3", "b": "S2:1"},
    {"a": "S1:4", "b": "S3:3"},
    {"a": "S2:2", "b": "S3:1"}
  ],
  "hosts": [
    {"name": "H1", "ip": "10.0.1.1", "attach": "S1:1"},
    {"name": "H2", "ip": "10.0.1.2", "attach": "S1:2"},
    {"name": "H3", "ip": "10.0.2.1", "attach": "S3:2"}
  ],
  "middleboxes": ["S2:3"],
  "rules": [
    {"switch": "S1", "priority": 20, "match": {"dst": "10.0.2.0/24", "dstPort": 22}, "action": "output:3"},
    {"switch": "S1", "priority": 10, "match": {"dst": "10.0.2.0/24"}, "action": "output:4"},
    {"switch": "S2", "priority": 10, "match": {"inPort": 1}, "action": "output:3"},
    {"switch": "S2", "priority": 10, "match": {"inPort": 3}, "action": "output:2"},
    {"switch": "S3", "priority": 30, "match": {"src": "10.0.1.2/32"}, "action": "drop"},
    {"switch": "S3", "priority": 20, "match": {"dst": "10.0.2.0/24"}, "action": "output:2"}
  ]
}`

func TestLoadFigure5(t *testing.T) {
	n, rules, err := Load(strings.NewReader(figure5JSON))
	if err != nil {
		t.Fatal(err)
	}
	if n.NumSwitches() != 3 || len(n.Hosts()) != 3 || n.NumLinks() != 3 {
		t.Fatalf("shape: %d switches %d hosts %d links", n.NumSwitches(), len(n.Hosts()), n.NumLinks())
	}
	s2 := n.SwitchByName("S2")
	if peer, ok := n.Peer(topo.PortKey{Switch: s2.ID, Port: 3}); !ok || peer.Switch != s2.ID {
		t.Fatal("middlebox port not reflecting")
	}
	if len(rules) != 6 {
		t.Fatalf("rules %d", len(rules))
	}

	// Install and drive the network end to end.
	f := dataplane.NewFabric(n)
	c := controller.New(n, &dataplane.FabricInstaller{Fabric: f})
	if _, err := InstallRules(n, c, rules); err != nil {
		t.Fatal(err)
	}
	pt := (&core.Builder{Net: n, Space: header.NewSpace(), Params: bloom.DefaultParams, Configs: c.Logical()}).Build()
	ssh := header.Header{SrcIP: header.MustParseIP("10.0.1.1"), DstIP: header.MustParseIP("10.0.2.1"), Proto: 6, DstPort: 22}
	res, err := f.InjectFromHost("H1", ssh)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != dataplane.OutcomeDelivered || len(res.Path) != 4 {
		t.Fatalf("SSH path %v (%v)", res.Path, res.Outcome)
	}
	if v := pt.Verify(res.Reports[0]); !v.OK {
		t.Fatalf("loaded network failed verification: %v", v.Reason)
	}
}

func TestLoadRewriteRule(t *testing.T) {
	doc := `{
	  "switches": [{"name": "gw", "ports": 2}],
	  "hosts": [
	    {"name": "c", "ip": "10.0.0.1", "attach": "gw:1"},
	    {"name": "b", "ip": "192.168.0.1", "attach": "gw:2"}
	  ],
	  "rules": [{
	    "switch": "gw", "priority": 10,
	    "match": {"dst": "203.0.113.80/32"},
	    "action": "output:2",
	    "rewrite": {"dstIP": "192.168.0.1", "dstPort": 8080}
	  }]
	}`
	n, rules, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	f := dataplane.NewFabric(n)
	c := controller.New(n, &dataplane.FabricInstaller{Fabric: f})
	if _, err := InstallRules(n, c, rules); err != nil {
		t.Fatal(err)
	}
	h := header.Header{SrcIP: header.MustParseIP("10.0.0.1"), DstIP: header.MustParseIP("203.0.113.80"), Proto: 6, DstPort: 80}
	res, err := f.InjectFromHost("c", h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != dataplane.OutcomeDelivered {
		t.Fatalf("outcome %v", res.Outcome)
	}
	rep := res.Reports[0]
	if rep.Header.DstIP != header.MustParseIP("192.168.0.1") || rep.Header.DstPort != 8080 {
		t.Fatalf("rewrite not loaded: %v", rep.Header)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		`{}`, // no switches
		`{"switches":[{"name":"s","ports":0}]}`,
		`{"switches":[{"name":"s","ports":2}],"links":[{"a":"s-1","b":"s:2"}]}`,
		`{"switches":[{"name":"s","ports":2}],"links":[{"a":"x:1","b":"s:2"}]}`,
		`{"switches":[{"name":"s","ports":2}],"links":[{"a":"s:9","b":"s:2"}]}`,
		`{"switches":[{"name":"s","ports":2}],"hosts":[{"name":"h","ip":"999.0.0.1","attach":"s:1"}]}`,
		`{"switches":[{"name":"s","ports":2}],"rules":[{"switch":"s","action":"teleport"}]}`,
		`{"switches":[{"name":"s","ports":2}],"rules":[{"switch":"s","action":"output:9"}]}`,
		`{"switches":[{"name":"s","ports":2}],"rules":[{"switch":"ghost","action":"drop"}]}`,
		`{"switches":[{"name":"s","ports":2}],"rules":[{"switch":"s","action":"drop","match":{"dst":"10.0.0.0/99"}}]}`,
		`{"bogusField": true}`,
		`not json at all`,
	}
	for i, c := range cases {
		if _, _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}
