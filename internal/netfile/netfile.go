// Package netfile loads network descriptions — topology, hosts,
// middleboxes, and flow rules — from a JSON document, so the command-line
// tools can run user-defined deployments instead of only the built-in
// topologies. The format:
//
//	{
//	  "switches":    [{"name": "s1", "ports": 4}],
//	  "links":       [{"a": "s1:3", "b": "s2:1"}],
//	  "hosts":       [{"name": "h1", "ip": "10.0.1.1", "attach": "s1:1"}],
//	  "middleboxes": ["s2:3"],
//	  "rules": [{
//	    "switch": "s1", "priority": 20,
//	    "match":  {"dst": "10.0.2.0/24", "dstPort": 22, "inPort": 1},
//	    "action": "output:3",
//	    "rewrite": {"dstIP": "192.168.0.1"}
//	  }]
//	}
//
// Matches accept "src"/"dst" CIDR prefixes, "proto", "srcPort"/"dstPort",
// and "inPort"; actions are "drop" or "output:N".
package netfile

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"veridp/internal/controller"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/topo"
)

// Document is the top-level JSON shape.
type Document struct {
	Switches    []SwitchSpec `json:"switches"`
	Links       []LinkSpec   `json:"links"`
	Hosts       []HostSpec   `json:"hosts"`
	Middleboxes []string     `json:"middleboxes"`
	Rules       []RuleSpec   `json:"rules"`
}

// SwitchSpec declares one switch.
type SwitchSpec struct {
	Name  string `json:"name"`
	Ports int    `json:"ports"`
}

// LinkSpec connects two "switch:port" endpoints.
type LinkSpec struct {
	A string `json:"a"`
	B string `json:"b"`
}

// HostSpec attaches a host to an edge port.
type HostSpec struct {
	Name   string `json:"name"`
	IP     string `json:"ip"`
	Attach string `json:"attach"`
}

// MatchSpec is the JSON form of a flowtable.Match.
type MatchSpec struct {
	Src     string  `json:"src,omitempty"`
	Dst     string  `json:"dst,omitempty"`
	Proto   *uint8  `json:"proto,omitempty"`
	SrcPort *uint16 `json:"srcPort,omitempty"`
	DstPort *uint16 `json:"dstPort,omitempty"`
	InPort  uint16  `json:"inPort,omitempty"`
}

// RewriteSpec is the JSON form of a header.Rewrite.
type RewriteSpec struct {
	SrcIP   string  `json:"srcIP,omitempty"`
	DstIP   string  `json:"dstIP,omitempty"`
	SrcPort *uint16 `json:"srcPort,omitempty"`
	DstPort *uint16 `json:"dstPort,omitempty"`
}

// RuleSpec declares one flow rule.
type RuleSpec struct {
	Switch   string       `json:"switch"`
	Priority uint16       `json:"priority"`
	Match    MatchSpec    `json:"match"`
	Action   string       `json:"action"`
	Rewrite  *RewriteSpec `json:"rewrite,omitempty"`
}

// Load parses a document and materializes the topology. Rules are returned
// for installation via InstallRules (they need a controller or fabric).
func Load(r io.Reader) (*topo.Network, []RuleSpec, error) {
	var doc Document
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, nil, fmt.Errorf("netfile: %w", err)
	}
	return Materialize(&doc)
}

// Materialize builds the network graph from a parsed document.
func Materialize(doc *Document) (*topo.Network, []RuleSpec, error) {
	if len(doc.Switches) == 0 {
		return nil, nil, fmt.Errorf("netfile: no switches declared")
	}
	n := topo.NewNetwork()
	for _, s := range doc.Switches {
		if s.Name == "" || s.Ports < 1 {
			return nil, nil, fmt.Errorf("netfile: bad switch spec %+v", s)
		}
		n.AddSwitch(s.Name, s.Ports)
	}
	for _, l := range doc.Links {
		a, ap, err := parsePort(n, l.A)
		if err != nil {
			return nil, nil, err
		}
		b, bp, err := parsePort(n, l.B)
		if err != nil {
			return nil, nil, err
		}
		n.AddLink(a, ap, b, bp)
	}
	for _, h := range doc.Hosts {
		sw, p, err := parsePort(n, h.Attach)
		if err != nil {
			return nil, nil, err
		}
		ip, err := header.ParseIP(h.IP)
		if err != nil {
			return nil, nil, fmt.Errorf("netfile: host %q: %w", h.Name, err)
		}
		n.AddHost(h.Name, ip, sw, p)
	}
	for _, m := range doc.Middleboxes {
		sw, p, err := parsePort(n, m)
		if err != nil {
			return nil, nil, err
		}
		n.AddMiddlebox(sw, p)
	}
	// Validate rules now so installation can't fail halfway.
	for i, r := range doc.Rules {
		if _, err := CompileRule(n, r); err != nil {
			return nil, nil, fmt.Errorf("netfile: rule %d: %w", i, err)
		}
	}
	return n, doc.Rules, nil
}

// parsePort resolves "switch:port".
func parsePort(n *topo.Network, s string) (topo.SwitchID, topo.PortID, error) {
	name, portStr, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("netfile: port %q is not switch:port", s)
	}
	sw := n.SwitchByName(name)
	if sw == nil {
		return 0, 0, fmt.Errorf("netfile: unknown switch %q", name)
	}
	p, err := strconv.Atoi(portStr)
	if err != nil || p < 1 || p > sw.NumPorts {
		return 0, 0, fmt.Errorf("netfile: bad port %q on switch %q", portStr, name)
	}
	return sw.ID, topo.PortID(p), nil
}

// parsePrefix resolves "a.b.c.d/len" (empty means match-all).
func parsePrefix(s string) (flowtable.Prefix, error) {
	if s == "" {
		return flowtable.Prefix{}, nil
	}
	ipStr, lenStr, ok := strings.Cut(s, "/")
	plen := 32
	if ok {
		v, err := strconv.Atoi(lenStr)
		if err != nil || v < 0 || v > 32 {
			return flowtable.Prefix{}, fmt.Errorf("bad prefix length %q", lenStr)
		}
		plen = v
	}
	ip, err := header.ParseIP(ipStr)
	if err != nil {
		return flowtable.Prefix{}, err
	}
	return flowtable.Prefix{IP: ip, Len: plen}.Canonical(), nil
}

// CompileRule turns a spec into a flowtable.Rule targeted at its switch.
func CompileRule(n *topo.Network, spec RuleSpec) (topo.SwitchID, error) {
	_, _, err := compileRule(n, spec)
	return swOf(n, spec.Switch), err
}

func swOf(n *topo.Network, name string) topo.SwitchID {
	if sw := n.SwitchByName(name); sw != nil {
		return sw.ID
	}
	return 0
}

func compileRule(n *topo.Network, spec RuleSpec) (topo.SwitchID, flowtable.Rule, error) {
	sw := n.SwitchByName(spec.Switch)
	if sw == nil {
		return 0, flowtable.Rule{}, fmt.Errorf("unknown switch %q", spec.Switch)
	}
	src, err := parsePrefix(spec.Match.Src)
	if err != nil {
		return 0, flowtable.Rule{}, err
	}
	dst, err := parsePrefix(spec.Match.Dst)
	if err != nil {
		return 0, flowtable.Rule{}, err
	}
	m := flowtable.Match{
		InPort:    topo.PortID(spec.Match.InPort),
		SrcPrefix: src,
		DstPrefix: dst,
	}
	if spec.Match.Proto != nil {
		m.HasProto, m.Proto = true, *spec.Match.Proto
	}
	if spec.Match.SrcPort != nil {
		m.HasSrc, m.SrcPort = true, *spec.Match.SrcPort
	}
	if spec.Match.DstPort != nil {
		m.HasDst, m.DstPort = true, *spec.Match.DstPort
	}
	r := flowtable.Rule{Priority: spec.Priority, Match: m}
	switch {
	case spec.Action == "drop":
		r.Action = flowtable.ActDrop
	case strings.HasPrefix(spec.Action, "output:"):
		p, err := strconv.Atoi(strings.TrimPrefix(spec.Action, "output:"))
		if err != nil || p < 1 || p > sw.NumPorts {
			return 0, flowtable.Rule{}, fmt.Errorf("bad output port in action %q", spec.Action)
		}
		r.Action = flowtable.ActOutput
		r.OutPort = topo.PortID(p)
	default:
		return 0, flowtable.Rule{}, fmt.Errorf("unknown action %q", spec.Action)
	}
	if spec.Rewrite != nil {
		rw := &header.Rewrite{}
		if spec.Rewrite.SrcIP != "" {
			ip, err := header.ParseIP(spec.Rewrite.SrcIP)
			if err != nil {
				return 0, flowtable.Rule{}, err
			}
			rw.SetSrcIP, rw.SrcIP = true, ip
		}
		if spec.Rewrite.DstIP != "" {
			ip, err := header.ParseIP(spec.Rewrite.DstIP)
			if err != nil {
				return 0, flowtable.Rule{}, err
			}
			rw.SetDstIP, rw.DstIP = true, ip
		}
		if spec.Rewrite.SrcPort != nil {
			rw.SetSrcPort, rw.SrcPort = true, *spec.Rewrite.SrcPort
		}
		if spec.Rewrite.DstPort != nil {
			rw.SetDstPort, rw.DstPort = true, *spec.Rewrite.DstPort
		}
		if !rw.IsZero() {
			r.Rewrite = rw
		}
	}
	return sw.ID, r, nil
}

// InstallRules pushes every rule through the controller, returning the
// assigned IDs in spec order.
func InstallRules(n *topo.Network, c *controller.Controller, specs []RuleSpec) ([]uint64, error) {
	ids := make([]uint64, 0, len(specs))
	for i, spec := range specs {
		sw, r, err := compileRule(n, spec)
		if err != nil {
			return ids, fmt.Errorf("netfile: rule %d: %w", i, err)
		}
		id, err := c.InstallRule(sw, r)
		if err != nil {
			return ids, fmt.Errorf("netfile: rule %d: %w", i, err)
		}
		ids = append(ids, id)
	}
	return ids, nil
}
