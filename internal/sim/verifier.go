// Batch-verification helper for the measurement loops: pin one snapshot,
// own one verdict cache, and reuse the buffers across injections — the
// same pinned-snapshot batch discipline the collector workers follow (see
// Handle.Current's doc comment), so the experiments measure the production
// verdict path rather than a bespoke single-shot one.

package sim

import (
	"veridp/internal/core"
	"veridp/internal/packet"
)

// BatchVerifier verifies injection results in batches against one pinned
// snapshot through a verdict cache. Single-goroutine use only: the cache
// is single-writer by design.
type BatchVerifier struct {
	snap  *core.Snapshot
	cache *core.VerdictCache
	in    []packet.Report
	out   []core.Verdict
}

// NewBatchVerifier pins snap with a fresh default-size verdict cache.
func NewBatchVerifier(snap *core.Snapshot) *BatchVerifier {
	return &BatchVerifier{snap: snap, cache: core.NewVerdictCache(0)}
}

// Verdicts verifies one injection's reports as a single batch and returns
// one verdict per report, in order. The returned slice is owned by the
// verifier and overwritten by the next call.
func (bv *BatchVerifier) Verdicts(reports []*packet.Report) []core.Verdict {
	if cap(bv.in) < len(reports) {
		bv.in = make([]packet.Report, len(reports))
		bv.out = make([]core.Verdict, len(reports))
	}
	in, out := bv.in[:len(reports)], bv.out[:len(reports)]
	for i, r := range reports {
		in[i] = *r
	}
	bv.snap.VerifyBatch(bv.cache, in, out)
	return out
}
