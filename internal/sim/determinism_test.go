package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"veridp/internal/bloom"
	"veridp/internal/faults"
	"veridp/internal/traffic"
)

// verdictTrace builds a randomized Stanford environment, injects one
// random wrong-port fault, drives part of the ping mesh, and renders every
// verdict into a byte trace. All randomness flows from the single seed.
func verdictTrace(t *testing.T, seed int64) []byte {
	t.Helper()
	rng := NewRNG(seed)
	e, err := StanfordEnv(StanfordScale{
		HostsPerRouter: 2, SubnetsPerRouter: 3, ACLRules: 8, ServicePolicies: 6, Rng: rng,
	}, bloom.Params{MBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	pt := e.Table()
	sw, ruleID, ok := faults.RandomRule(e.Fabric, rng)
	if !ok {
		t.Fatal("no rules")
	}
	if _, err := faults.WrongPort(e.Fabric, sw, ruleID, rng); err != nil {
		t.Fatal(err)
	}

	mesh := traffic.PingMesh(e.Net)
	if len(mesh) > 120 {
		mesh = mesh[:120]
	}
	var buf bytes.Buffer
	for _, ping := range mesh {
		res, err := e.Fabric.InjectFromHost(ping.SrcHost, ping.Header)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "%s->%s %s", ping.SrcHost, ping.DstHost, res.Outcome)
		for _, rep := range res.Reports {
			v := pt.Verify(rep)
			fmt.Fprintf(&buf, " ok=%t reason=%v tag=%x", v.OK, v.Reason, rep.Tag)
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestSeedDeterminism: identical seeds must reproduce byte-identical
// verdict traces — the contract the storm campaign replayer depends on.
func TestSeedDeterminism(t *testing.T) {
	a := verdictTrace(t, 5)
	b := verdictTrace(t, 5)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different verdict traces")
	}
	if len(a) == 0 {
		t.Fatal("empty trace proves nothing")
	}

	// The experiment harnesses are deterministic under a fixed seed too.
	vcfg := VolumeConfig{Flows: 8, PacketsPerFlow: 6,
		MeanInterArrival: 2 * time.Millisecond, SamplingInterval: 5 * time.Millisecond, Seed: 9}
	v1, err := ReportVolume(vcfg)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := ReportVolume(vcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Fatalf("ReportVolume diverged under one seed: %+v vs %+v", v1, v2)
	}
}
