// Fault-localization experiment (Table 3). Methodology from §6.3: flip a
// random rule's output port, run an all-pairs ping mesh, verify every tag
// report, and for each failed verification try to recover the packet's
// actual path with PathInfer. Localization succeeds when the recovered
// path set contains the ground-truth path the packet took.

package sim

import (
	"fmt"
	"math/rand"

	"veridp/internal/faults"
	"veridp/internal/flowtable"
	"veridp/internal/topo"
	"veridp/internal/traffic"
)

// LocalizationResult aggregates Table 3's columns.
type LocalizationResult struct {
	Rounds              int
	FailedVerifications int // "# failed verif."
	RecoveredPaths      int // "# recovered paths"
	CorrectSwitch       int // recovered AND the blamed switch is the faulty one
	StrawmanCorrect     int // §4.3 baseline for the ablation
}

// Probability returns the Table 3 "localization prob." column.
func (r LocalizationResult) Probability() float64 {
	if r.FailedVerifications == 0 {
		return 0
	}
	return float64(r.RecoveredPaths) / float64(r.FailedVerifications)
}

// SwitchAccuracy returns the fraction of failures whose blamed switch was
// exactly the faulty one.
func (r LocalizationResult) SwitchAccuracy() float64 {
	if r.FailedVerifications == 0 {
		return 0
	}
	return float64(r.CorrectSwitch) / float64(r.FailedVerifications)
}

// StrawmanAccuracy returns the same metric for the strawman baseline.
func (r LocalizationResult) StrawmanAccuracy() float64 {
	if r.FailedVerifications == 0 {
		return 0
	}
	return float64(r.StrawmanCorrect) / float64(r.FailedVerifications)
}

// Localization runs the Table 3 experiment for the given number of fault
// rounds. Each round injects one wrong-port fault on a random rule,
// replays the ping mesh, and restores the rule.
func Localization(e *Env, rounds int, seed int64) (LocalizationResult, error) {
	return LocalizationRNG(e, rounds, NewRNG(seed))
}

// LocalizationRNG is Localization drawing from a caller-owned stream.
func LocalizationRNG(e *Env, rounds int, rng *rand.Rand) (LocalizationResult, error) {
	pt := e.Table()
	bv := NewBatchVerifier(e.Handle().Current())
	mesh := traffic.PingMesh(e.Net)
	var result LocalizationResult

	// Faulted rules on switches no ping path crosses are inert; retry such
	// rounds (bounded) so every counted round exercises its fault.
	retries := rounds * 8
	for round := 0; round < rounds && retries > 0; round++ {
		sw, ruleID, ok := faults.RandomRule(e.Fabric, rng)
		if !ok {
			return result, fmt.Errorf("sim: no rules to fault in %s", e.Name)
		}
		inj, err := faults.WrongPort(e.Fabric, sw, ruleID, rng)
		if err != nil {
			return result, err
		}
		result.Rounds++
		failuresBefore := result.FailedVerifications

		for _, ping := range mesh {
			res, err := e.Fabric.InjectFromHost(ping.SrcHost, ping.Header)
			if err != nil {
				return result, err
			}
			verdicts := bv.Verdicts(res.Reports)
			for i, rep := range res.Reports {
				if verdicts[i].OK {
					continue
				}
				result.FailedVerifications++
				blamed, candidates, locOK := pt.Localize(rep)
				if locOK && containsPath(candidates, res.Path) {
					result.RecoveredPaths++
					if blamed == inj.Switch {
						result.CorrectSwitch++
					}
				}
				if strawman, ok := pt.StrawmanLocalize(rep); ok && strawman == inj.Switch {
					result.StrawmanCorrect++
				}
			}
		}

		// Restore the faulted rule.
		err = e.Fabric.Switch(sw).Config.Table.Modify(ruleID, func(r *flowtable.Rule) {
			r.OutPort = inj.OldPort
		})
		if err != nil {
			return result, err
		}
		if result.FailedVerifications == failuresBefore {
			// Inert fault: do not count the round; redraw.
			result.Rounds--
			round--
			retries--
		}
	}
	return result, nil
}

// containsPath reports whether any candidate equals the ground-truth path.
func containsPath(candidates []topo.Path, actual topo.Path) bool {
	for _, c := range candidates {
		if len(c) != len(actual) {
			continue
		}
		same := true
		for i := range c {
			if c[i] != actual[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}
