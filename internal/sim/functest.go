// The §6.2 function tests on the Stanford-like environment: black hole,
// path deviation, access violation, and loop. Each scenario injects one
// data-plane-only fault, drives the affected flow, and checks that
// verification fails and (where the paper claims it) the faulty switch is
// localized.

package sim

import (
	"fmt"

	"veridp/internal/bloom"
	"veridp/internal/core"
	"veridp/internal/dataplane"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/packet"
	"veridp/internal/topo"
)

// FunctionTestResult reports one §6.2 scenario.
type FunctionTestResult struct {
	Name      string
	Detected  bool // some report failed verification
	Localized bool // the faulty switch was named
	Blamed    string
	Expected  string
	Detail    string
}

// FunctionTests runs all four §6.2 scenarios, each on a fresh Stanford-like
// environment, and returns their outcomes.
func FunctionTests(scale StanfordScale, params bloom.Params) ([]FunctionTestResult, error) {
	runs := []struct {
		name string
		run  func() (FunctionTestResult, error)
	}{
		{"black hole", func() (FunctionTestResult, error) { return functestBlackhole(scale, params) }},
		{"path deviation", func() (FunctionTestResult, error) { return functestDeviation(scale, params) }},
		{"access violation", func() (FunctionTestResult, error) { return functestACL(scale, params) }},
		{"loop", func() (FunctionTestResult, error) { return functestLoop(scale, params) }},
	}
	var out []FunctionTestResult
	for _, r := range runs {
		res, err := r.run()
		if err != nil {
			return out, fmt.Errorf("sim: %s: %w", r.name, err)
		}
		res.Name = r.name
		out = append(out, res)
	}
	return out, nil
}

// bozaRouteRule finds boza's physical rule routing toward coza's first
// subnet — the rule both the black-hole and deviation tests corrupt,
// mirroring the paper's boza→coza flow.
func bozaRouteRule(e *Env) (topo.SwitchID, uint64, header.Header, error) {
	boza := e.Net.SwitchByName("boza")
	dst := e.Net.Host("host-coza-0")
	src := e.Net.Host("host-boza-0")
	if dst == nil || src == nil {
		return 0, 0, header.Header{}, fmt.Errorf("hosts missing")
	}
	h := header.Header{SrcIP: src.IP, DstIP: dst.IP, Proto: header.ProtoTCP, DstPort: 80}
	r := e.Fabric.Switch(boza.ID).Config.Table.Lookup(3, h)
	if r == nil {
		return 0, 0, header.Header{}, fmt.Errorf("no route at boza for %v", h)
	}
	return boza.ID, r.ID, h, nil
}

func functestBlackhole(scale StanfordScale, params bloom.Params) (FunctionTestResult, error) {
	e, err := StanfordEnv(scale, params)
	if err != nil {
		return FunctionTestResult{}, err
	}
	pt := e.Table()
	sw, ruleID, h, err := bozaRouteRule(e)
	if err != nil {
		return FunctionTestResult{}, err
	}
	if err := e.Fabric.Switch(sw).Config.Table.Modify(ruleID, func(r *flowtable.Rule) { r.Action = flowtable.ActDrop }); err != nil {
		return FunctionTestResult{}, err
	}
	res, err := e.Fabric.InjectFromHost("host-boza-0", h)
	if err != nil {
		return FunctionTestResult{}, err
	}
	return scoreScenario(e, pt, res, "boza")
}

func functestDeviation(scale StanfordScale, params bloom.Params) (FunctionTestResult, error) {
	e, err := StanfordEnv(scale, params)
	if err != nil {
		return FunctionTestResult{}, err
	}
	pt := e.Table()
	sw, ruleID, h, err := bozaRouteRule(e)
	if err != nil {
		return FunctionTestResult{}, err
	}
	// Deviate to the other backbone uplink (port 1 ↔ port 2), the paper's
	// "replace the action to forward towards bbrb".
	var oldPort topo.PortID
	err = e.Fabric.Switch(sw).Config.Table.Modify(ruleID, func(r *flowtable.Rule) {
		oldPort = r.OutPort
		if r.OutPort == 1 {
			r.OutPort = 2
		} else {
			r.OutPort = 1
		}
	})
	if err != nil {
		return FunctionTestResult{}, err
	}
	_ = oldPort
	res, err := e.Fabric.InjectFromHost("host-boza-0", h)
	if err != nil {
		return FunctionTestResult{}, err
	}
	return scoreScenario(e, pt, res, "boza")
}

func functestACL(scale StanfordScale, params bloom.Params) (FunctionTestResult, error) {
	e, err := StanfordEnv(scale, params)
	if err != nil {
		return FunctionTestResult{}, err
	}
	// Policy: cozb denies everything from sozb's /16 arriving on its
	// uplinks — installed on both planes, then deleted from the physical
	// plane only (the §6.2 access-violation fault).
	cozb := e.Net.SwitchByName("cozb")
	sozbIdx := 11 // soz pair is index 5; "b" member = 2*5+1
	srcBase, srcLen := topo.StanfordSubnet(sozbIdx)
	deny := flowtable.ACLRule{
		Match:  flowtable.Match{SrcPrefix: flowtable.Prefix{IP: srcBase, Len: srcLen}},
		Permit: false,
	}
	for _, uplink := range []topo.PortID{1, 2} {
		e.Ctrl.Logical()[cozb.ID].InACL[uplink] = append(e.Ctrl.Logical()[cozb.ID].InACL[uplink], deny)
		phys := e.Fabric.Switch(cozb.ID).Config
		phys.InACL[uplink] = append(phys.InACL[uplink], deny)
	}
	pt := e.Build() // table includes the deny
	e.table = pt

	// Fault: the physical ACL vanishes.
	phys := e.Fabric.Switch(cozb.ID).Config
	phys.InACL[1] = nil
	phys.InACL[2] = nil

	h := header.Header{
		SrcIP: e.Net.Host("host-sozb-0").IP,
		DstIP: e.Net.Host("host-cozb-0").IP,
		Proto: header.ProtoTCP, DstPort: 80,
	}
	res, err := e.Fabric.InjectFromHost("host-sozb-0", h)
	if err != nil {
		return FunctionTestResult{}, err
	}
	if res.Outcome != dataplane.OutcomeDelivered {
		return FunctionTestResult{Detail: fmt.Sprintf("flow not delivered (%v) — ACL still active?", res.Outcome)}, nil
	}
	return scoreScenario(e, pt, res, "cozb")
}

func functestLoop(scale StanfordScale, params bloom.Params) (FunctionTestResult, error) {
	e, err := StanfordEnv(scale, params)
	if err != nil {
		return FunctionTestResult{}, err
	}
	pt := e.Table()
	// Physical-only rules bounce a victim destination between yoza and its
	// bbra-side L2 switch: the control plane stays loop-free, the data
	// plane loops (§6.1's deliberate initial inconsistency, inverted).
	yoza := e.Net.SwitchByName("yoza")
	up, ok := e.Net.Peer(topo.PortKey{Switch: yoza.ID, Port: 1})
	if !ok {
		return FunctionTestResult{}, fmt.Errorf("yoza uplink missing")
	}
	victim := flowtable.Prefix{IP: header.MustParseIP("172.26.4.152"), Len: 32}
	e.Fabric.Switch(yoza.ID).Config.Table.Add(&flowtable.Rule{
		Priority: 60000, Match: flowtable.Match{DstPrefix: victim},
		Action: flowtable.ActOutput, OutPort: 1,
	})
	e.Fabric.Switch(up.Switch).Config.Table.Add(&flowtable.Rule{
		Priority: 60000, Match: flowtable.Match{DstPrefix: victim},
		Action: flowtable.ActOutput, OutPort: up.Port,
	})
	h := header.Header{SrcIP: e.Net.Host("host-yoza-0").IP, DstIP: victim.IP, Proto: header.ProtoTCP, DstPort: 443}
	res, err := e.Fabric.InjectFromHost("host-yoza-0", h)
	if err != nil {
		return FunctionTestResult{}, err
	}
	if res.Outcome != dataplane.OutcomeLooped {
		return FunctionTestResult{Detail: fmt.Sprintf("expected a loop, got %v", res.Outcome)}, nil
	}
	detected := false
	for _, rep := range res.Reports {
		if !pt.Verify(rep).OK {
			detected = true
		}
	}
	return FunctionTestResult{
		Detected: detected,
		Detail:   fmt.Sprintf("loop emitted %d TTL reports", len(res.Reports)),
	}, nil
}

// scoreScenario verifies the flow's reports and attempts localization.
func scoreScenario(e *Env, pt *core.PathTable, res *dataplane.Result, expectSwitch string) (FunctionTestResult, error) {
	out := FunctionTestResult{Expected: expectSwitch}
	var failing *packet.Report
	for _, rep := range res.Reports {
		if !pt.Verify(rep).OK {
			out.Detected = true
			failing = rep
		}
	}
	if failing == nil {
		out.Detail = "all reports verified — fault undetected"
		return out, nil
	}
	blamed, _, ok := pt.Localize(failing)
	if ok {
		if sw := e.Net.Switch(blamed); sw != nil {
			out.Blamed = sw.Name
		}
		out.Localized = out.Blamed == expectSwitch
	}
	out.Detail = fmt.Sprintf("outcome=%v reports=%d", res.Outcome, len(res.Reports))
	return out, nil
}
