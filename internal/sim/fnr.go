// Detection-accuracy experiment (Figure 12). Methodology from §6.3: pick
// random paths from the path table, synthesize one packet per path, force a
// random switch on the path to output it to a wrong port, and measure
//
//	absolute FNR = n2 / n      relative FNR = n2 / n1
//
// where n is the number of faulted packets, n1 the number that still
// arrive at the intended destination port, and n2 the number that arrive
// AND carry a tag identical to the path table's (Bloom collisions). The
// experiment sweeps the Bloom filter size from 8 to 64 bits.

package sim

import (
	"fmt"
	"math/rand"

	"veridp/internal/bloom"
	"veridp/internal/dataplane"
	"veridp/internal/header"
	"veridp/internal/topo"
	"veridp/internal/traffic"
)

// FNRPoint is one measurement of Figure 12.
type FNRPoint struct {
	MBits          int
	Trials         int // n: faulted packets injected
	Arrived        int // n1: still reached the intended destination port
	FalseNegatives int // n2: arrived and the tag matched
}

// Absolute returns n2/n.
func (p FNRPoint) Absolute() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.FalseNegatives) / float64(p.Trials)
}

// Relative returns n2/n1.
func (p FNRPoint) Relative() float64 {
	if p.Arrived == 0 {
		return 0
	}
	return float64(p.FalseNegatives) / float64(p.Arrived)
}

// FalseNegativeSweep measures FNRPoints for each tag size over the
// environment. The environment's fabric and table are re-tagged per size
// and restored to the original params afterwards.
func FalseNegativeSweep(e *Env, sizes []int, trials int, seed int64) ([]FNRPoint, error) {
	pt := e.Table()
	witnesses := deliveredWitnesses(e)
	if len(witnesses) == 0 {
		return nil, fmt.Errorf("sim: no delivered witness paths in %s", e.Name)
	}
	orig := e.Params
	defer func() {
		e.Fabric.SetParams(orig)
		pt.SetParams(orig)
	}()

	var out []FNRPoint
	for _, m := range sizes {
		params := bloom.Params{MBits: m}
		if err := params.Validate(); err != nil {
			return nil, err
		}
		e.Fabric.SetParams(params)
		pt.SetParams(params)
		rng := NewRNG(seed + int64(m))
		point := FNRPoint{MBits: m}

		for trial := 0; trial < trials; trial++ {
			w := witnesses[rng.Intn(len(witnesses))]
			hopIdx := rng.Intn(len(w.Entry.Path))
			hop := w.Entry.Path[hopIdx]
			sw := e.Fabric.Switch(hop.Switch)
			wrong, ok := wrongPortFor(e.Net.Switch(hop.Switch), hop.Out, rng)
			if !ok {
				continue
			}
			point.Trials++
			hdr := w.Header
			sw.OutputOverride = func(in topo.PortID, h header.Header, out topo.PortID) topo.PortID {
				if h == hdr && in == hop.In && out == hop.Out {
					return wrong
				}
				return out
			}
			res, err := e.Fabric.Inject(w.Inport, w.Header)
			sw.OutputOverride = nil
			if err != nil {
				return nil, err
			}
			intendedExit := topo.PortKey{
				Switch: w.Entry.Path[len(w.Entry.Path)-1].Switch,
				Port:   w.Entry.Path[len(w.Entry.Path)-1].Out,
			}
			if res.Outcome != dataplane.OutcomeDelivered || res.Exit != intendedExit {
				continue
			}
			point.Arrived++
			if len(res.Reports) > 0 && res.Reports[len(res.Reports)-1].Tag == w.Entry.Tag {
				point.FalseNegatives++
			}
		}
		out = append(out, point)
	}
	return out, nil
}

// deliveredWitnesses returns witnesses for paths that end at a host edge
// port (the only paths for which "arrives at the destination port" is
// meaningful).
func deliveredWitnesses(e *Env) []traffic.Witness {
	all := traffic.Witnesses(e.Table())
	out := all[:0]
	for _, w := range all {
		last := w.Entry.Path[len(w.Entry.Path)-1]
		if e.Net.IsEdgePort(topo.PortKey{Switch: last.Switch, Port: last.Out}) {
			out = append(out, w)
		}
	}
	return out
}

// wrongPortFor picks a random real port other than the original.
func wrongPortFor(sw *topo.Switch, orig topo.PortID, rng *rand.Rand) (topo.PortID, bool) {
	var choices []topo.PortID
	for _, p := range sw.Ports() {
		if p != orig {
			choices = append(choices, p)
		}
	}
	if len(choices) == 0 {
		return 0, false
	}
	return choices[rng.Intn(len(choices))], true
}
