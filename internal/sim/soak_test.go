package sim

import (
	"testing"

	"veridp/internal/bloom"
	"veridp/internal/core"
	"veridp/internal/dataplane"
	"veridp/internal/faults"
	"veridp/internal/topo"
	"veridp/internal/traffic"
)

// TestSoakRandomFaults hammers randomized environments with randomized
// faults and asserts the two soundness meta-invariants end to end:
//
//  1. No false positives: on a healthy network every report verifies.
//  2. Detection soundness (with 64-bit tags, where Bloom collisions are
//     negligible): every packet whose actual path deviates from the
//     intended one and that produced a report fails verification.
func TestSoakRandomFaults(t *testing.T) {
	params := bloom.Params{MBits: 64}
	for seed := int64(0); seed < 8; seed++ {
		rng := NewRNG(1000 + seed)
		var (
			e   *Env
			err error
		)
		switch seed % 3 {
		case 0:
			e, err = FatTreeEnv(4, params)
		case 1:
			e, err = Internet2Env(Internet2Scale{HostsPerRouter: 2, Prefixes: 32, Seed: seed}, params)
		default:
			e, err = StanfordEnv(StanfordScale{HostsPerRouter: 2, SubnetsPerRouter: 3, ACLRules: 8, ServicePolicies: 6, Seed: seed}, params)
		}
		if err != nil {
			t.Fatal(err)
		}
		pt := e.Table()
		mesh := traffic.PingMesh(e.Net)
		if len(mesh) > 300 {
			mesh = mesh[:300]
		}

		// Invariant 1: healthy network, zero violations.
		for _, ping := range mesh {
			res, err := e.Fabric.InjectFromHost(ping.SrcHost, ping.Header)
			if err != nil {
				t.Fatal(err)
			}
			for _, rep := range res.Reports {
				if v := pt.Verify(rep); !v.OK {
					t.Fatalf("seed %d: healthy %s violates: %v", seed, e.Name, v.Reason)
				}
			}
		}

		// Random fault of a random kind.
		sw, ruleID, ok := faults.RandomRule(e.Fabric, rng)
		if !ok {
			t.Fatalf("seed %d: no rules", seed)
		}
		switch rng.Intn(3) {
		case 0:
			_, err = faults.WrongPort(e.Fabric, sw, ruleID, rng)
		case 1:
			_, err = faults.Blackhole(e.Fabric, sw, ruleID)
		default:
			_, err = faults.Evict(e.Fabric, sw, ruleID)
		}
		if err != nil {
			t.Fatal(err)
		}

		// Invariant 2: deviated-and-reported ⇒ detected.
		for _, ping := range mesh {
			res, err := e.Fabric.InjectFromHost(ping.SrcHost, ping.Header)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Reports) == 0 {
				continue // lost packets are out of scope (§3.3)
			}
			intended := pt.IntendedPath(e.Net.Host(ping.SrcHost).Attach, ping.Header)
			if samePaths(intended, res.Path) {
				// Unaffected ping: must still verify.
				for _, rep := range res.Reports {
					if v := pt.Verify(rep); !v.OK {
						t.Fatalf("seed %d: unaffected ping violates: %v", seed, v.Reason)
					}
				}
				continue
			}
			detected := false
			for _, rep := range res.Reports {
				if !pt.Verify(rep).OK {
					detected = true
				}
			}
			if !detected {
				t.Fatalf("seed %d: deviated ping escaped detection (intended %v, actual %v)",
					seed, intended, res.Path)
			}
		}
	}
}

func samePaths(a, b topo.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSoakRepairConverges: inject, detect, repair, and demand the whole
// mesh verifies again — over several random fault rounds.
func TestSoakRepairConverges(t *testing.T) {
	params := bloom.Params{MBits: 32}
	e, err := FatTreeEnv(4, params)
	if err != nil {
		t.Fatal(err)
	}
	pt := e.Table()
	mesh := traffic.PingMesh(e.Net)
	rng := NewRNG(77)
	inst := installerFor(e)

	repaired := 0
	for round := 0; round < 12; round++ {
		sw, ruleID, ok := faults.RandomRule(e.Fabric, rng)
		if !ok {
			t.Fatal("no rules")
		}
		if _, err := faults.WrongPort(e.Fabric, sw, ruleID, rng); err != nil {
			t.Fatal(err)
		}
		// Drive the mesh; repair on the first failure.
		for _, ping := range mesh {
			res, err := e.Fabric.InjectFromHost(ping.SrcHost, ping.Header)
			if err != nil {
				t.Fatal(err)
			}
			for _, rep := range res.Reports {
				if pt.Verify(rep).OK {
					continue
				}
				if _, err := pt.Repair(rep, inst); err != nil {
					t.Fatalf("round %d: repair failed: %v", round, err)
				}
				repaired++
			}
		}
		// Post-repair sweep must be clean.
		for _, ping := range mesh {
			res, err := e.Fabric.InjectFromHost(ping.SrcHost, ping.Header)
			if err != nil {
				t.Fatal(err)
			}
			for _, rep := range res.Reports {
				if v := pt.Verify(rep); !v.OK {
					t.Fatalf("round %d: still inconsistent after repair: %v", round, v.Reason)
				}
			}
		}
	}
	if repaired == 0 {
		t.Skip("no fault was exercised in any round")
	}
}

func installerFor(e *Env) core.RuleInstaller {
	return &dataplane.FabricInstaller{Fabric: e.Fabric}
}
