// Deterministic randomness plumbing. Every sim experiment draws all of
// its randomness from one seeded *rand.Rand, so a seed fully determines
// an experiment's trace — the property TestSeedDeterminism asserts and
// the storm campaign engine builds on. Configs keep their Seed fields as
// the simple interface; an explicit Rng (a harness threading one stream
// through several experiments) takes precedence when set.

package sim

import "math/rand"

// NewRNG returns the canonical deterministic source for a seed.
func NewRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// rngOr returns rng, or a fresh seeded source when rng is nil.
func rngOr(rng *rand.Rand, seed int64) *rand.Rand {
	if rng != nil {
		return rng
	}
	return NewRNG(seed)
}
