// Detection-latency experiment (§4.5). With per-flow sampling interval T_s
// and maximum inter-packet gap T_a, the time from a fault occurring to the
// first sampled (and therefore verified) packet that experiences it is at
// most T_s + T_a — Figure 9's worst case. The experiment drives one flow
// through a fabric under a fake clock, injects a wrong-port fault
// mid-stream, and measures when verification first fails.

package sim

import (
	"fmt"
	"math/rand"
	"time"

	"veridp/internal/bloom"
	"veridp/internal/controller"
	"veridp/internal/core"
	"veridp/internal/dataplane"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/topo"
)

// LatencyConfig parameterizes the §4.5 experiment.
type LatencyConfig struct {
	SamplingInterval time.Duration // T_s
	MaxInterArrival  time.Duration // T_a: packet gaps are uniform in (0, T_a]
	Trials           int
	Seed             int64
	// Rng, when non-nil, supplies the randomness instead of Seed.
	Rng *rand.Rand
}

// LatencyResult reports measured detection latencies against the bound.
type LatencyResult struct {
	Bound     time.Duration // T_s + T_a
	Latencies []time.Duration
}

// Max returns the worst measured latency.
func (r LatencyResult) Max() time.Duration {
	var m time.Duration
	for _, l := range r.Latencies {
		if l > m {
			m = l
		}
	}
	return m
}

// DetectionLatency runs the experiment on a 3-switch chain. Each trial
// streams packets of one flow with random gaps ≤ T_a, flips the middle
// switch's route at a random instant, and records the delay until a
// sampled packet's report fails verification.
func DetectionLatency(cfg LatencyConfig) (*LatencyResult, error) {
	if cfg.SamplingInterval <= 0 || cfg.MaxInterArrival <= 0 || cfg.Trials <= 0 {
		return nil, fmt.Errorf("sim: invalid latency config %+v", cfg)
	}
	rng := rngOr(cfg.Rng, cfg.Seed)
	res := &LatencyResult{Bound: cfg.SamplingInterval + cfg.MaxInterArrival}

	for trial := 0; trial < cfg.Trials; trial++ {
		n := topo.Linear(3, 1)
		now := time.Unix(10_000, 0)
		f := dataplane.NewFabric(n,
			dataplane.WithParams(bloom.Params{MBits: 32}), // collisions off the critical claim
			dataplane.WithSampler(func() dataplane.Sampler {
				return dataplane.NewFlowSampler(cfg.SamplingInterval)
			}),
			dataplane.WithClock(func() time.Time { return now }),
		)
		c := controller.New(n, &dataplane.FabricInstaller{Fabric: f})
		if err := c.RouteAllHosts(); err != nil {
			return nil, err
		}
		pt := (&core.Builder{Net: n, Space: header.NewSpace(), Params: bloom.Params{MBits: 32}, Configs: c.Logical()}).Build()
		bv := NewBatchVerifier(core.NewHandle(pt).Current())

		flow := header.Header{
			SrcIP: n.Host("h1-0").IP, DstIP: n.Host("h3-0").IP,
			Proto: header.ProtoTCP, SrcPort: 50000, DstPort: 80,
		}
		// The middle switch's rule for the destination.
		mid := n.SwitchByName("s2")
		rule := f.Switch(mid.ID).Config.Table.Lookup(1, flow)
		if rule == nil {
			return nil, fmt.Errorf("sim: no route at the middle switch")
		}

		faultAfter := time.Duration(rng.Int63n(int64(10 * cfg.SamplingInterval)))
		start := now
		faultInjected := false
		var faultTime time.Time

		for step := 0; step < 4096; step++ {
			gap := time.Duration(1 + rng.Int63n(int64(cfg.MaxInterArrival)))
			now = now.Add(gap)
			if !faultInjected && now.Sub(start) >= faultAfter {
				// Flip the route to the port back toward s1: the §6.3
				// wrong-port fault, applied between two packets.
				if err := f.Switch(mid.ID).Config.Table.Modify(rule.ID, func(r *flowtable.Rule) { r.OutPort = 1 }); err != nil {
					return nil, err
				}
				faultInjected = true
				faultTime = now.Add(-gap) // fault landed right after the previous packet
			}
			r, err := f.InjectFromHost("h1-0", flow)
			if err != nil {
				return nil, err
			}
			if !faultInjected {
				continue
			}
			detected := false
			for _, v := range bv.Verdicts(r.Reports) {
				if !v.OK {
					detected = true
				}
			}
			if detected {
				res.Latencies = append(res.Latencies, now.Sub(faultTime))
				break
			}
		}
		if len(res.Latencies) != trial+1 {
			return nil, fmt.Errorf("sim: trial %d never detected the fault", trial)
		}
	}
	return res, nil
}
