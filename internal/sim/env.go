// Package sim assembles complete VeriDP deployments — topology, emulated
// data plane, controller, and path table — and runs the paper's §6
// experiments over them: detection accuracy (Figure 12), fault
// localization (Table 3), the §6.2 function tests, and the incremental
// update measurements (Figure 14).
//
// The Stanford and Internet2 environments are synthetic stand-ins for the
// paper's proprietary configuration snapshots: same topology structure,
// parameterizable rule scale with the published counts as the "full"
// setting (see DESIGN.md, "Substitutions").
package sim

import (
	"fmt"
	"math/rand"

	"veridp/internal/bloom"
	"veridp/internal/controller"
	"veridp/internal/core"
	"veridp/internal/dataplane"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/topo"
)

// defaultBloom returns the paper's prototype tag configuration.
func defaultBloom() bloom.Params { return bloom.DefaultParams }

// controllerFor wires a controller to an existing fabric.
func controllerFor(n *topo.Network, f *dataplane.Fabric) *controller.Controller {
	return controller.New(n, &dataplane.FabricInstaller{Fabric: f})
}

// Env is one ready-to-measure deployment.
type Env struct {
	Name   string
	Net    *topo.Network
	Fabric *dataplane.Fabric
	Ctrl   *controller.Controller
	Space  *header.Space
	Params bloom.Params

	table  *core.PathTable
	handle *core.Handle
}

// Table returns the path table, building it on first use (construction is
// the expensive step Table 2 measures, so callers time Build explicitly
// when they care).
func (e *Env) Table() *core.PathTable {
	if e.table == nil {
		e.table = e.Build()
	}
	return e.table
}

// Build constructs a fresh path table from the controller's logical view.
func (e *Env) Build() *core.PathTable {
	b := &core.Builder{Net: e.Net, Space: e.Space, Params: e.Params, Configs: e.Ctrl.Logical()}
	return b.Build()
}

// Handle wraps the path table in a snapshot-publishing core.Handle,
// building both on first use. Once a Handle exists, concurrent-safe
// callers go through it; Table remains for single-threaded measurement
// code, and both views share the same underlying table.
func (e *Env) Handle() *core.Handle {
	if e.handle == nil {
		e.handle = core.NewHandle(e.Table())
	}
	return e.handle
}

// InvalidateTable drops the cached table and handle (after deliberate
// logical changes).
func (e *Env) InvalidateTable() { e.table, e.handle = nil, nil }

// newEnv wires the common plumbing. Extra fabric options (capture taps,
// samplers, clocks) append after the params option.
func newEnv(name string, n *topo.Network, params bloom.Params, opts ...dataplane.Option) *Env {
	f := dataplane.NewFabric(n, append([]dataplane.Option{dataplane.WithParams(params)}, opts...)...)
	c := controller.New(n, &dataplane.FabricInstaller{Fabric: f})
	return &Env{
		Name:   name,
		Net:    n,
		Fabric: f,
		Ctrl:   c,
		Space:  header.NewSpace(),
		Params: params,
	}
}

// CustomEnv wraps an arbitrary topology (e.g. one loaded from a netfile
// document) in an Env; the caller installs rules through Ctrl.
func CustomEnv(name string, n *topo.Network, params bloom.Params, opts ...dataplane.Option) *Env {
	return newEnv(name, n, params, opts...)
}

// FatTreeEnv builds FT(k) with shortest-path /32 routes for every host —
// the §6.1 fat-tree setup.
func FatTreeEnv(k int, params bloom.Params, opts ...dataplane.Option) (*Env, error) {
	e := newEnv(fmt.Sprintf("FT(k=%d)", k), topo.FatTree(k), params, opts...)
	if err := e.Ctrl.RouteAllHosts(); err != nil {
		return nil, err
	}
	return e, nil
}

// StanfordScale parameterizes the Stanford-like environment.
type StanfordScale struct {
	HostsPerRouter   int // edge ports per zone router
	SubnetsPerRouter int // /24 rules carved from each router's /16
	ACLRules         int // deny rules spread across zone routers
	// ServicePolicies adds port-specific redirects (a service class routed
	// via the other backbone), reproducing the multi-path-per-pair
	// structure Figure 6 shows for the real configuration.
	ServicePolicies int
	Seed            int64
	// Rng, when non-nil, supplies the randomness instead of Seed — for
	// harnesses threading one deterministic stream through several builds.
	Rng *rand.Rand
}

// StanfordDefault keeps experiments laptop-fast while preserving the
// topology structure and rule nesting of the full configuration.
var StanfordDefault = StanfordScale{HostsPerRouter: 3, SubnetsPerRouter: 24, ACLRules: 48, ServicePolicies: 24, Seed: 1}

// StanfordFull approximates the published scale: 14 routers × 2080 subnets
// × 26 switches ≈ 757K forwarding rules, 1584 ACLs.
var StanfordFull = StanfordScale{HostsPerRouter: 8, SubnetsPerRouter: 2080, ACLRules: 1584, ServicePolicies: 96, Seed: 1}

// StanfordEnv builds the Stanford-backbone-like environment: every zone
// router owns a /16 sliced into /24 subnets routed network-wide, plus
// random deny ACLs on zone-router uplink ports.
func StanfordEnv(scale StanfordScale, params bloom.Params, opts ...dataplane.Option) (*Env, error) {
	n := topo.Stanford(scale.HostsPerRouter)
	e := newEnv("Stanford", n, params, opts...)
	rng := rngOr(scale.Rng, scale.Seed)

	for idx := 0; idx < 14; idx++ {
		base, _ := topo.StanfordSubnet(idx)
		routerName := topo.StanfordZones[idx/2] + map[int]string{0: "a", 1: "b"}[idx%2]
		router := n.SwitchByName(routerName)
		for j := 0; j < scale.SubnetsPerRouter; j++ {
			pfx := flowtable.Prefix{IP: base | uint32(j)<<8, Len: 24}
			// Subnets rotate across the router's host ports.
			attach := topo.PortKey{Switch: router.ID, Port: topo.PortID(3 + j%scale.HostsPerRouter)}
			if _, err := e.Ctrl.RoutePrefix(pfx, attach); err != nil {
				return nil, err
			}
		}
	}

	// Service policies: a source zone router steers one service class
	// toward a remote zone over the bbrb-side uplink (port 2) while bulk
	// traffic rides bbra — so affected inport-outport pairs carry two
	// paths, as Figure 6 shows for the real configuration.
	servicePorts := []uint16{22, 80, 443, 8080}
	type policyKey struct {
		router int
		zone   int
		port   uint16
	}
	seenPolicy := map[policyKey]bool{}
	for i := 0; i < scale.ServicePolicies; i++ {
		src := rng.Intn(14)
		dst := rng.Intn(14)
		if dst/2 == src/2 {
			continue // intra-zone traffic never leaves the router pair
		}
		port := servicePorts[rng.Intn(len(servicePorts))]
		k := policyKey{src, dst, port}
		if seenPolicy[k] {
			continue
		}
		seenPolicy[k] = true
		routerName := topo.StanfordZones[src/2] + map[int]string{0: "a", 1: "b"}[src%2]
		router := n.SwitchByName(routerName)
		dstBase, dstLen := topo.StanfordSubnet(dst)
		if _, err := e.Ctrl.InstallRule(router.ID, flowtable.Rule{
			Priority: 100,
			Match: flowtable.Match{
				DstPrefix: flowtable.Prefix{IP: dstBase, Len: dstLen},
				HasDst:    true,
				DstPort:   port,
			},
			Action:  flowtable.ActOutput,
			OutPort: 2, // the bbrb-side uplink
		}); err != nil {
			return nil, err
		}
	}

	// Random deny ACLs on zone-router uplinks: drop a random foreign /16's
	// traffic to one local /24, mirrored on logical and physical configs
	// (ACLs are configured state, not FlowMods).
	for i := 0; i < scale.ACLRules; i++ {
		idx := rng.Intn(14)
		routerName := topo.StanfordZones[idx/2] + map[int]string{0: "a", 1: "b"}[idx%2]
		router := n.SwitchByName(routerName)
		srcIdx := rng.Intn(14)
		srcBase, srcLen := topo.StanfordSubnet(srcIdx)
		dstBase, _ := topo.StanfordSubnet(idx)
		acl := flowtable.ACLRule{
			Match: flowtable.Match{
				SrcPrefix: flowtable.Prefix{IP: srcBase, Len: srcLen},
				DstPrefix: flowtable.Prefix{IP: dstBase | uint32(rng.Intn(scale.SubnetsPerRouter))<<8, Len: 24},
			},
			Permit: false,
		}
		// A third of the denies are port-specific, like real ACLs mixing
		// host blocks with service blocks.
		if rng.Intn(3) == 0 {
			acl.Match.HasDst = true
			acl.Match.DstPort = uint16(1 + rng.Intn(1024))
		}
		uplink := topo.PortID(1 + rng.Intn(2))
		e.Ctrl.Logical()[router.ID].InACL[uplink] = append(e.Ctrl.Logical()[router.ID].InACL[uplink], acl)
		phys := e.Fabric.Switch(router.ID).Config
		phys.InACL[uplink] = append(phys.InACL[uplink], acl)
	}
	return e, nil
}

// Internet2Scale parameterizes the Internet2-like environment.
type Internet2Scale struct {
	HostsPerRouter int
	Prefixes       int // global IPv4 prefixes, each anchored at one PoP
	// ServicePolicies pins a service class from one PoP's customers onto
	// an alternate equal-length path (per-hop rules), giving some
	// inport-outport pairs a second path as in Figure 6.
	ServicePolicies int
	Seed            int64
	// Rng, when non-nil, supplies the randomness instead of Seed.
	Rng *rand.Rand
}

// Internet2Default is laptop-fast; Internet2Full reproduces the published
// 126,017-rule order of magnitude (9 routers × 14K prefixes).
var (
	Internet2Default = Internet2Scale{HostsPerRouter: 2, Prefixes: 96, ServicePolicies: 12, Seed: 2}
	Internet2Full    = Internet2Scale{HostsPerRouter: 4, Prefixes: 14000, ServicePolicies: 48, Seed: 2}
)

// Internet2Env builds the Internet2-like environment: random global
// prefixes with a realistic length mix (/16–/24), each exiting at one PoP.
func Internet2Env(scale Internet2Scale, params bloom.Params, opts ...dataplane.Option) (*Env, error) {
	n := topo.Internet2(scale.HostsPerRouter)
	e := newEnv("Internet2", n, params, opts...)
	rng := rngOr(scale.Rng, scale.Seed)

	seen := map[flowtable.Prefix]bool{}
	for i := 0; i < scale.Prefixes; i++ {
		// Length mix roughly matching public BGP tables: /24-heavy.
		var plen int
		switch r := rng.Intn(10); {
		case r < 5:
			plen = 24
		case r < 7:
			plen = 22
		case r < 9:
			plen = 20
		default:
			plen = 16
		}
		// Anchor prefixes outside 10/8 so PoP-local subnets keep priority.
		pfx := flowtable.Prefix{IP: (uint32(rng.Intn(120)+60) << 24) | rng.Uint32()&0x00ffffff, Len: plen}.Canonical()
		if seen[pfx] {
			continue
		}
		seen[pfx] = true
		pop := rng.Intn(len(topo.Internet2Routers))
		router := n.SwitchByName(topo.Internet2Routers[pop])
		attach := topo.PortKey{Switch: router.ID, Port: topo.PortID(5 + rng.Intn(scale.HostsPerRouter))}
		if _, err := e.Ctrl.RoutePrefix(pfx, attach); err != nil {
			return nil, err
		}
	}
	// PoP-local subnets so hosts are reachable.
	if err := e.Ctrl.RouteAllHosts(); err != nil {
		return nil, err
	}

	// Service policies: pin a service class from one host edge onto the
	// second equal-cost path toward another host, hop by hop (loop-safe by
	// construction), so those pairs carry two paths.
	hosts := n.Hosts()
	installed := 0
	for attempt := 0; attempt < scale.ServicePolicies*8 && installed < scale.ServicePolicies; attempt++ {
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		if src == dst || src.Attach.Switch == dst.Attach.Switch {
			continue
		}
		paths, err := n.ShortestPaths(src.Attach, dst.Attach, 2)
		if err != nil || len(paths) < 2 {
			continue
		}
		m := flowtable.Match{
			SrcPrefix: flowtable.Prefix{IP: src.IP, Len: 32},
			DstPrefix: flowtable.Prefix{IP: dst.IP, Len: 32},
			HasDst:    true,
			DstPort:   443,
		}
		if _, err := e.Ctrl.InstallPathRules(paths[1], m, 20000); err != nil {
			return nil, err
		}
		installed++
	}
	return e, nil
}

// Figure5Env builds the toy network of Figure 5 with its ten-rule policy —
// used by the quickstart example and documentation.
func Figure5Env(params bloom.Params, opts ...dataplane.Option) (*Env, error) {
	n := topo.Figure5()
	e := newEnv("Figure5", n, params, opts...)
	s1 := n.SwitchByName("S1").ID
	s2 := n.SwitchByName("S2").ID
	s3 := n.SwitchByName("S3").ID
	type install struct {
		sw topo.SwitchID
		r  flowtable.Rule
	}
	rules := []install{
		{s1, flowtable.Rule{Priority: 30, Match: flowtable.Match{DstPrefix: flowtable.Prefix{IP: 0x0a000101, Len: 32}}, Action: flowtable.ActOutput, OutPort: 1}},
		{s1, flowtable.Rule{Priority: 30, Match: flowtable.Match{DstPrefix: flowtable.Prefix{IP: 0x0a000102, Len: 32}}, Action: flowtable.ActOutput, OutPort: 2}},
		{s1, flowtable.Rule{Priority: 20, Match: flowtable.Match{DstPrefix: flowtable.Prefix{IP: 0x0a000200, Len: 24}, HasDst: true, DstPort: 22}, Action: flowtable.ActOutput, OutPort: 3}},
		{s1, flowtable.Rule{Priority: 10, Match: flowtable.Match{DstPrefix: flowtable.Prefix{IP: 0x0a000200, Len: 24}}, Action: flowtable.ActOutput, OutPort: 4}},
		{s2, flowtable.Rule{Priority: 10, Match: flowtable.Match{InPort: 1}, Action: flowtable.ActOutput, OutPort: 3}},
		{s2, flowtable.Rule{Priority: 10, Match: flowtable.Match{InPort: 3}, Action: flowtable.ActOutput, OutPort: 2}},
		{s3, flowtable.Rule{Priority: 30, Match: flowtable.Match{SrcPrefix: flowtable.Prefix{IP: 0x0a000102, Len: 32}}, Action: flowtable.ActDrop}},
		{s3, flowtable.Rule{Priority: 20, Match: flowtable.Match{DstPrefix: flowtable.Prefix{IP: 0x0a000200, Len: 24}}, Action: flowtable.ActOutput, OutPort: 2}},
		{s3, flowtable.Rule{Priority: 10, Match: flowtable.Match{DstPrefix: flowtable.Prefix{IP: 0x0a000100, Len: 24}}, Action: flowtable.ActOutput, OutPort: 3}},
		{s1, flowtable.Rule{Priority: 5, Action: flowtable.ActDrop}},
	}
	for _, in := range rules {
		if _, err := e.Ctrl.InstallRule(in.sw, in.r); err != nil {
			return nil, err
		}
	}
	return e, nil
}
