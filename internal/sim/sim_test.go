package sim

import (
	"testing"
	"time"

	"veridp/internal/bloom"
	"veridp/internal/dataplane"
	"veridp/internal/faults"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/topo"
	"veridp/internal/traffic"
)

// small scales keep the test suite fast; the bench harness uses larger ones.
var (
	testStanford  = StanfordScale{HostsPerRouter: 2, SubnetsPerRouter: 4, ACLRules: 8, Seed: 1}
	testInternet2 = Internet2Scale{HostsPerRouter: 1, Prefixes: 24, Seed: 2}
)

func TestFatTreeEnvConsistentByDefault(t *testing.T) {
	e, err := FatTreeEnv(4, bloom.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	pt := e.Table()
	if pt.NumPaths() == 0 {
		t.Fatal("empty path table")
	}
	// Every ping verifies on a healthy network.
	for _, ping := range traffic.PingMesh(e.Net)[:100] {
		res, err := e.Fabric.InjectFromHost(ping.SrcHost, ping.Header)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != dataplane.OutcomeDelivered {
			t.Fatalf("%s→%s: %v", ping.SrcHost, ping.DstHost, res.Outcome)
		}
		for _, rep := range res.Reports {
			if v := pt.Verify(rep); !v.OK {
				t.Fatalf("healthy fat tree failed verification: %v", v.Reason)
			}
		}
	}
}

func TestStanfordEnvShapeAndConsistency(t *testing.T) {
	e, err := StanfordEnv(testStanford, bloom.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	pt := e.Table()
	st := pt.Stats()
	if st.Pairs == 0 || st.Paths == 0 {
		t.Fatalf("stats %+v", st)
	}
	// Cross-zone path length ~5 switches (zone → L2 → backbone → L2 → zone).
	if st.AvgPathLength < 2 || st.AvgPathLength > 7 {
		t.Fatalf("avg path length %v implausible for the Stanford shape", st.AvgPathLength)
	}
	// Healthy network verifies.
	h := header.Header{
		SrcIP: e.Net.Host("host-boza-0").IP,
		DstIP: e.Net.Host("host-yozb-0").IP,
		Proto: header.ProtoTCP, DstPort: 80, SrcPort: 4242,
	}
	res, err := e.Fabric.InjectFromHost("host-boza-0", h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != dataplane.OutcomeDelivered {
		t.Fatalf("outcome %v", res.Outcome)
	}
	for _, rep := range res.Reports {
		if v := pt.Verify(rep); !v.OK {
			t.Fatalf("healthy Stanford failed verification: %v", v.Reason)
		}
	}
}

func TestStanfordACLsAreEnforced(t *testing.T) {
	// With ACLs in both planes, some cross-zone flow must be dropped AND
	// verify (the drop is intended).
	e, err := StanfordEnv(StanfordScale{HostsPerRouter: 2, SubnetsPerRouter: 4, ACLRules: 200, Seed: 3}, bloom.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	pt := e.Table()
	drops := 0
	for _, ping := range traffic.PingMesh(e.Net) {
		h := ping.Header
		h.Proto = header.ProtoTCP
		h.DstPort = 80
		res, err := e.Fabric.InjectFromHost(ping.SrcHost, h)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome == dataplane.OutcomeDropped {
			drops++
		}
		for _, rep := range res.Reports {
			if v := pt.Verify(rep); !v.OK {
				t.Fatalf("consistent ACL drop failed verification: %v (%s→%s)", v.Reason, ping.SrcHost, ping.DstHost)
			}
		}
	}
	if drops == 0 {
		t.Fatal("200 ACLs produced no drops — ACL wiring inert?")
	}
}

func TestInternet2Env(t *testing.T) {
	e, err := Internet2Env(testInternet2, bloom.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	pt := e.Table()
	if pt.NumPaths() == 0 {
		t.Fatal("empty table")
	}
	// The Internet2 shape: 9 routers, short paths (paper: 2.89 avg).
	if st := pt.Stats(); st.AvgPathLength > 5 {
		t.Fatalf("avg path length %v too long for Internet2", st.AvgPathLength)
	}
}

func TestFigure5Env(t *testing.T) {
	e, err := Figure5Env(bloom.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	pt := e.Table()
	res, err := e.Fabric.InjectFromHost("H1", header.Header{
		SrcIP: 0x0a000101, DstIP: 0x0a000201, Proto: header.ProtoTCP, DstPort: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != dataplane.OutcomeDelivered || len(res.Path) != 4 {
		t.Fatalf("SSH path %v (%v)", res.Path, res.Outcome)
	}
	if v := pt.Verify(res.Reports[0]); !v.OK {
		t.Fatalf("verdict %v", v.Reason)
	}
}

func TestFalseNegativeSweep(t *testing.T) {
	e, err := FatTreeEnv(4, bloom.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	points, err := FalseNegativeSweep(e, []int{8, 16, 32, 64}, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points %d", len(points))
	}
	for i, p := range points {
		if p.Trials == 0 {
			t.Fatalf("point %d ran no trials", i)
		}
		if p.FalseNegatives > p.Arrived || p.Arrived > p.Trials {
			t.Fatalf("inconsistent counts %+v", p)
		}
		if p.Absolute() > 0.6 {
			t.Fatalf("absolute FNR %.2f absurdly high at %d bits", p.Absolute(), p.MBits)
		}
	}
	// The Figure 12 shape: 64-bit tags essentially eliminate collisions.
	if last := points[len(points)-1]; last.Relative() > 0.02 {
		t.Fatalf("relative FNR %.3f at 64 bits — should be ~0", last.Relative())
	}
	// Monotone trend (allowing noise): 8-bit ≥ 64-bit.
	if points[0].Relative() < points[3].Relative() {
		t.Fatalf("FNR did not decrease with tag size: %v vs %v", points[0].Relative(), points[3].Relative())
	}
	// Params restored.
	if e.Fabric.Params != bloom.DefaultParams || e.Table().Params != bloom.DefaultParams {
		t.Fatal("sweep did not restore params")
	}
}

func TestLocalizationFatTree(t *testing.T) {
	e, err := FatTreeEnv(4, bloom.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Localization(e, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedVerifications == 0 {
		t.Fatal("no verification failures across 3 fault rounds — faults inert?")
	}
	// Table 3's claim: localization probability is high (99.2% for k=4).
	if p := res.Probability(); p < 0.85 {
		t.Fatalf("localization probability %.2f below the paper's ballpark (%+v)", p, res)
	}
	// After restoration, the network verifies again.
	pt := e.Table()
	for _, ping := range traffic.PingMesh(e.Net)[:50] {
		r, err := e.Fabric.InjectFromHost(ping.SrcHost, ping.Header)
		if err != nil {
			t.Fatal(err)
		}
		for _, rep := range r.Reports {
			if !pt.Verify(rep).OK {
				t.Fatal("fault restoration incomplete")
			}
		}
	}
}

func TestFunctionTests(t *testing.T) {
	results, err := FunctionTests(testStanford, bloom.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d scenarios", len(results))
	}
	for _, r := range results {
		if !r.Detected {
			t.Errorf("%s: fault not detected (%s)", r.Name, r.Detail)
		}
	}
	// The paper localizes the black-hole and deviation faults to boza.
	for _, r := range results {
		if r.Name == "black hole" || r.Name == "path deviation" {
			if !r.Localized {
				t.Errorf("%s: blamed %q, expected %q", r.Name, r.Blamed, r.Expected)
			}
		}
	}
}

func TestIncrementalUpdateExperiment(t *testing.T) {
	res, err := IncrementalUpdate(testInternet2, "wash")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Measurements) == 0 {
		t.Fatal("no measurements")
	}
	// The headline claim: incremental updates are far cheaper than a full
	// rebuild (most under 10ms in the paper; we assert each median update
	// is well under the rebuild).
	med := res.Percentile(0.5)
	if med <= 0 {
		t.Fatal("non-positive median")
	}
	if med > res.RebuildTime {
		t.Fatalf("median incremental update %v slower than full rebuild %v", med, res.RebuildTime)
	}
	if res.Percentile(1.0) > 2*time.Second {
		t.Fatalf("worst-case update %v absurd", res.Percentile(1.0))
	}
}

// TestOverflowDetectedByVeriDP closes the §2.2 Pica8 story end to end:
// the overflow bug inverts a security rule's effect, packets still flow,
// and VeriDP's tag verification flags the inconsistency.
func TestOverflowDetectedByVeriDP(t *testing.T) {
	// Routes first (they fill the "hardware" table), then a high-priority
	// security deny installed last — the rule that overflows into the
	// dependency-blind software table.
	n := topo.Linear(3, 1)
	e := CustomEnv("overflow", n, bloom.DefaultParams)
	if err := e.Ctrl.RouteAllHosts(); err != nil {
		t.Fatal(err)
	}
	mid := n.SwitchByName("s2").ID
	deny := flowtable.Rule{
		Priority: 50000,
		Match:    flowtable.Match{SrcPrefix: flowtable.Prefix{IP: n.Host("h1-0").IP, Len: 32}},
		Action:   flowtable.ActDrop,
	}
	if _, err := e.Ctrl.InstallRule(mid, deny); err != nil {
		t.Fatal(err)
	}
	pt := e.Table()
	h := header.Header{SrcIP: n.Host("h1-0").IP, DstIP: n.Host("h3-0").IP, Proto: 6, DstPort: 80}

	// Healthy: the deny holds and verifies.
	res, err := e.Fabric.InjectFromHost("h1-0", h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != dataplane.OutcomeDropped {
		t.Fatalf("pre-fault outcome %v, want dropped", res.Outcome)
	}
	if v := pt.Verify(res.Reports[0]); !v.OK {
		t.Fatalf("pre-fault verdict %v", v.Reason)
	}

	// The switch's hardware table holds everything but the late deny.
	capacity := e.Fabric.Switch(mid).Config.Table.Len() - 1
	inj, err := faults.TableOverflow(e.Fabric, mid, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if len(inj) == 0 {
		t.Fatal("overflow injected nothing")
	}

	// The denied flow now slips through — and VeriDP catches it.
	res, err = e.Fabric.InjectFromHost("h1-0", h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != dataplane.OutcomeDelivered {
		t.Fatalf("post-fault outcome %v — bug did not manifest", res.Outcome)
	}
	detected := false
	for _, rep := range res.Reports {
		if !pt.Verify(rep).OK {
			detected = true
		}
	}
	if !detected {
		t.Fatal("table-overflow access violation escaped verification")
	}
}

// TestDetectionLatencyBound asserts the §4.5 worst case: a fault is
// detected within T_s + T_a of occurring.
func TestDetectionLatencyBound(t *testing.T) {
	cfg := LatencyConfig{
		SamplingInterval: 100 * time.Millisecond,
		MaxInterArrival:  40 * time.Millisecond,
		Trials:           40,
		Seed:             13,
	}
	res, err := DetectionLatency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Latencies) != cfg.Trials {
		t.Fatalf("latencies %d, want %d", len(res.Latencies), cfg.Trials)
	}
	if max := res.Max(); max > res.Bound {
		t.Fatalf("detection latency %v exceeds the §4.5 bound T_s+T_a = %v", max, res.Bound)
	}
	// The bound should also be approached: some latency above T_a alone
	// shows the sampler (not just packet gaps) drives the worst case.
	if res.Max() <= cfg.MaxInterArrival {
		t.Logf("note: max latency %v never exceeded T_a; bound untested at the top end", res.Max())
	}
}

// TestReportVolumeBeatsNetSight quantifies the §7 comparison: per-hop
// postcards dwarf sampled tag reports on the same workload.
func TestReportVolumeBeatsNetSight(t *testing.T) {
	res, err := ReportVolume(VolumeConfig{
		Flows:            30,
		PacketsPerFlow:   40,
		MeanInterArrival: 5 * time.Millisecond,
		SamplingInterval: 200 * time.Millisecond,
		Seed:             21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 30*40 {
		t.Fatalf("packets %d", res.Packets)
	}
	if res.VeriDPReports == 0 {
		t.Fatal("sampling produced no reports at all")
	}
	if res.VeriDPReports >= res.Packets {
		t.Fatalf("sampling did not thin reports: %d reports for %d packets", res.VeriDPReports, res.Packets)
	}
	if res.Ratio() < 10 {
		t.Fatalf("NetSight/VeriDP volume ratio %.1f — expected an order of magnitude (postcards=%d, reports=%d)",
			res.Ratio(), res.NetSightPostcards, res.VeriDPReports)
	}
}

// TestIncrementalUpdateCorrectness: after the incremental run, verification
// still matches data-plane behavior.
func TestIncrementalUpdateCorrectness(t *testing.T) {
	e, err := Internet2Env(testInternet2, bloom.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	target := e.Net.SwitchByName("wash")

	type rule struct {
		prefix flowtable.Prefix
		port   topo.PortID
	}
	var ids []uint64
	var rules []rule
	for _, r := range e.Ctrl.Logical()[target.ID].Table.Rules() {
		ids = append(ids, r.ID)
		rules = append(rules, rule{r.Match.DstPrefix, r.OutPort})
	}
	for _, id := range ids {
		if err := e.Ctrl.RemoveRule(target.ID, id); err != nil {
			t.Fatal(err)
		}
	}
	pt := e.Build()
	tree := flowtable.NewPrefixTree(e.Space, target.Ports())
	for _, r := range rules {
		_, delta, err := tree.Insert(r.prefix, r.port)
		if err != nil {
			continue
		}
		if err := pt.ApplyDelta(target.ID, delta); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Ctrl.InstallRule(target.ID, flowtable.Rule{
			Priority: uint16(r.prefix.Len),
			Match:    flowtable.Match{DstPrefix: r.prefix},
			Action:   flowtable.ActOutput,
			OutPort:  r.port,
		}); err != nil {
			t.Fatal(err)
		}
	}
	pt.Compact()

	// Spot-check: traffic through wash verifies against the updated table.
	checked := 0
	for _, ping := range traffic.PingMesh(e.Net) {
		res, err := e.Fabric.InjectFromHost(ping.SrcHost, ping.Header)
		if err != nil {
			t.Fatal(err)
		}
		for _, rep := range res.Reports {
			if v := pt.Verify(rep); !v.OK {
				t.Fatalf("post-update verification failed: %v (%s→%s)", v.Reason, ping.SrcHost, ping.DstHost)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no reports checked")
	}
}
