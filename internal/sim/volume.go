// Report-volume comparison (§7): NetSight records a postcard for every
// packet at every hop, so its telemetry volume is (packets × path length);
// VeriDP samples flows at entry switches and emits one report per sampled
// packet. This experiment counts both over the same workload, quantifying
// the §7 claim that per-hop postcards "incur a huge volume of postcards
// traffic" compared to VeriDP's flow sampling.

package sim

import (
	"fmt"
	"math/rand"
	"time"

	"veridp/internal/dataplane"
	"veridp/internal/topo"
	"veridp/internal/traffic"
)

// VolumeConfig parameterizes the comparison.
type VolumeConfig struct {
	Flows            int
	PacketsPerFlow   int
	MeanInterArrival time.Duration // exponential-ish gaps between a flow's packets
	SamplingInterval time.Duration // VeriDP's per-flow T_s
	Seed             int64
	// Rng, when non-nil, supplies the randomness instead of Seed.
	Rng *rand.Rand
}

// VolumeResult reports the two systems' telemetry volumes.
type VolumeResult struct {
	Packets           int
	TotalHops         int
	NetSightPostcards int // = TotalHops: one postcard per packet per hop
	VeriDPReports     int
}

// Ratio returns NetSight postcards per VeriDP report.
func (r VolumeResult) Ratio() float64 {
	if r.VeriDPReports == 0 {
		return 0
	}
	return float64(r.NetSightPostcards) / float64(r.VeriDPReports)
}

// ReportVolume runs the workload over FT(k=4) with per-flow sampling and
// counts VeriDP reports against the postcards NetSight would have produced.
func ReportVolume(cfg VolumeConfig) (*VolumeResult, error) {
	if cfg.Flows <= 0 || cfg.PacketsPerFlow <= 0 {
		return nil, fmt.Errorf("sim: invalid volume config %+v", cfg)
	}
	rng := rngOr(cfg.Rng, cfg.Seed)
	n := topo.FatTree(4)
	now := time.Unix(50_000, 0)
	f := dataplane.NewFabric(n,
		dataplane.WithSampler(func() dataplane.Sampler {
			return dataplane.NewFlowSampler(cfg.SamplingInterval)
		}),
		dataplane.WithClock(func() time.Time { return now }),
	)
	c := controllerFor(n, f)
	if err := c.RouteAllHosts(); err != nil {
		return nil, err
	}

	flows := traffic.RandomFlows(n, cfg.Flows, rng)
	res := &VolumeResult{}
	for _, flow := range flows {
		src := n.HostByIP(flow.SrcIP)
		for p := 0; p < cfg.PacketsPerFlow; p++ {
			now = now.Add(time.Duration(1 + rng.Int63n(int64(2*cfg.MeanInterArrival))))
			r, err := f.Inject(src.Attach, flow)
			if err != nil {
				return nil, err
			}
			res.Packets++
			res.TotalHops += len(r.Path)
			res.VeriDPReports += len(r.Reports)
		}
	}
	res.NetSightPostcards = res.TotalHops
	return res, nil
}
