// Incremental path-table update experiment (Figure 14). Per §6.5: populate
// eight of Internet2's nine routers, leave the ninth empty, then install
// its rules one-by-one, measuring the time to update the path table for
// each rule. The paper reports most updates under 10 ms; the comparison
// point is a full rebuild.

package sim

import (
	"fmt"
	"time"

	"veridp/internal/core"
	"veridp/internal/flowtable"
	"veridp/internal/topo"
)

// UpdateMeasurement is one Figure 14 data point.
type UpdateMeasurement struct {
	RuleIndex int
	Prefix    flowtable.Prefix
	Duration  time.Duration
}

// UpdateExperimentResult aggregates the Figure 14 run.
type UpdateExperimentResult struct {
	Target       string // the initially-empty router
	Measurements []UpdateMeasurement
	RebuildTime  time.Duration // full Algorithm 2 rebuild, for comparison
}

// Percentile returns the p-quantile (0..1) of per-rule update times.
func (r UpdateExperimentResult) Percentile(p float64) time.Duration {
	if len(r.Measurements) == 0 {
		return 0
	}
	ds := make([]time.Duration, len(r.Measurements))
	for i, m := range r.Measurements {
		ds[i] = m.Duration
	}
	for i := 1; i < len(ds); i++ { // insertion sort; n is small enough
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	idx := int(p * float64(len(ds)-1))
	return ds[idx]
}

// IncrementalUpdate runs the Figure 14 experiment on an Internet2-like
// environment: strip the target router's rules, build the table, then
// re-add the rules one at a time through the §4.4 incremental path.
func IncrementalUpdate(scale Internet2Scale, targetRouter string) (*UpdateExperimentResult, error) {
	e, err := Internet2Env(scale, defaultBloom())
	if err != nil {
		return nil, err
	}
	target := e.Net.SwitchByName(targetRouter)
	if target == nil {
		return nil, fmt.Errorf("sim: unknown router %q", targetRouter)
	}

	// Snapshot and strip the target's rules from both planes.
	type pending struct {
		prefix flowtable.Prefix
		port   topo.PortID
	}
	var toAdd []pending
	for _, r := range e.Ctrl.Logical()[target.ID].Table.Rules() {
		toAdd = append(toAdd, pending{r.Match.DstPrefix, r.OutPort})
	}
	ids := make([]uint64, 0, len(toAdd))
	for _, r := range e.Ctrl.Logical()[target.ID].Table.Rules() {
		ids = append(ids, r.ID)
	}
	for _, id := range ids {
		if err := e.Ctrl.RemoveRule(target.ID, id); err != nil {
			return nil, err
		}
	}

	// Updates go through a Handle so each measured duration includes
	// snapshot publication — the cost a live multi-threaded server pays.
	h := core.NewHandle(e.Build())
	tree := flowtable.NewPrefixTree(e.Space, target.Ports())
	res := &UpdateExperimentResult{Target: targetRouter}

	for i, p := range toAdd {
		start := time.Now()
		_, delta, err := tree.Insert(p.prefix, p.port)
		if err != nil {
			continue // duplicate prefix in the synthetic set
		}
		if err := h.ApplyDelta(target.ID, delta); err != nil {
			return nil, err
		}
		res.Measurements = append(res.Measurements, UpdateMeasurement{
			RuleIndex: i,
			Prefix:    p.prefix,
			Duration:  time.Since(start),
		})
		// Mirror logically so a rebuild comparison stays meaningful.
		if _, err := e.Ctrl.InstallRule(target.ID, flowtable.Rule{
			Priority: uint16(p.prefix.Len),
			Match:    flowtable.Match{DstPrefix: p.prefix},
			Action:   flowtable.ActOutput,
			OutPort:  p.port,
		}); err != nil {
			return nil, err
		}
	}

	start := time.Now()
	e.Build()
	res.RebuildTime = time.Since(start)
	return res, nil
}
