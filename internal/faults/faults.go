// Package faults injects the control-data plane inconsistencies of §2.2
// into an emulated data plane: rules the switch silently fails to install
// (lack of acknowledgement), rules evicted by buggy table management
// (switch software bugs), priorities ignored (premature implementations),
// and rules modified behind the controller's back (external modification).
// Each fault mutates only the PHYSICAL tables; the controller's logical
// store — and therefore the path table — never learns about it, which is
// precisely the gap VeriDP monitors.
package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"veridp/internal/controller"
	"veridp/internal/dataplane"
	"veridp/internal/flowtable"
	"veridp/internal/openflow"
	"veridp/internal/topo"
)

// Kind enumerates the §2.2 fault classes.
type Kind uint8

const (
	// KindDropInstall silently discards a FlowMod: the switch acknowledges
	// but never installs ("lack of data plane acknowledgement").
	KindDropInstall Kind = iota
	// KindWrongPort rewires an installed rule's output port ("switch
	// software bugs" / Figure 7's misforwarding).
	KindWrongPort
	// KindPriorityLoss installs rules with priority forced to zero — the
	// HP ProCurve 5406zl behavior of §2.2.
	KindPriorityLoss
	// KindRuleEviction deletes an installed rule, as dependency-unaware
	// table management does under pressure (CacheFlow's observation).
	KindRuleEviction
	// KindExternalModify rewrites a rule's action out-of-band (dpctl or a
	// compromised switch OS).
	KindExternalModify
	// KindBlackhole replaces a rule's action with drop.
	KindBlackhole
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case KindDropInstall:
		return "drop-install"
	case KindWrongPort:
		return "wrong-port"
	case KindPriorityLoss:
		return "priority-loss"
	case KindRuleEviction:
		return "rule-eviction"
	case KindExternalModify:
		return "external-modify"
	case KindBlackhole:
		return "blackhole"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Injected describes one applied fault, for experiment ground truth.
type Injected struct {
	Kind   Kind
	Switch topo.SwitchID
	RuleID uint64
	// OldPort/NewPort are set for port-rewiring faults.
	OldPort, NewPort topo.PortID
}

// String renders the fault.
func (i Injected) String() string {
	return fmt.Sprintf("%v@S%d rule %d (%s→%s)", i.Kind, i.Switch, i.RuleID, i.OldPort, i.NewPort)
}

// WrongPort rewires an existing physical rule to a different, randomly
// chosen real port of the switch (never the original, never ⊥) — the fault
// model of the paper's detection and localization experiments (§6.3:
// "output the packet to a port different from the original one").
func WrongPort(f *dataplane.Fabric, sw topo.SwitchID, ruleID uint64, rng *rand.Rand) (Injected, error) {
	s := f.Switch(sw)
	if s == nil {
		return Injected{}, fmt.Errorf("faults: no switch %d", sw)
	}
	r := s.Config.Table.Get(ruleID)
	if r == nil {
		return Injected{}, fmt.Errorf("faults: no rule %d on switch %d", ruleID, sw)
	}
	var choices []topo.PortID
	for _, p := range s.Config.Ports {
		if p != r.OutPort {
			choices = append(choices, p)
		}
	}
	if len(choices) == 0 {
		return Injected{}, fmt.Errorf("faults: switch %d has no alternative port", sw)
	}
	i := rng.Intn(len(choices))
	if i < 0 || i >= len(choices) {
		i = 0 // rng may be seeded from untrusted campaign files
	}
	newPort := choices[i]
	inj := Injected{Kind: KindWrongPort, Switch: sw, RuleID: ruleID, OldPort: r.OutPort, NewPort: newPort}
	err := s.Config.Table.Modify(ruleID, func(r *flowtable.Rule) {
		r.Action = flowtable.ActOutput
		r.OutPort = newPort
	})
	return inj, err
}

// Blackhole turns a rule into a drop (§6.2's black-hole function test).
func Blackhole(f *dataplane.Fabric, sw topo.SwitchID, ruleID uint64) (Injected, error) {
	s := f.Switch(sw)
	if s == nil {
		return Injected{}, fmt.Errorf("faults: no switch %d", sw)
	}
	r := s.Config.Table.Get(ruleID)
	if r == nil {
		return Injected{}, fmt.Errorf("faults: no rule %d on switch %d", ruleID, sw)
	}
	inj := Injected{Kind: KindBlackhole, Switch: sw, RuleID: ruleID, OldPort: r.OutPort, NewPort: topo.DropPort}
	err := s.Config.Table.Modify(ruleID, func(r *flowtable.Rule) { r.Action = flowtable.ActDrop })
	return inj, err
}

// Evict removes a rule from the physical table only (§6.2's access
// violation deletes an ACL deny this way).
func Evict(f *dataplane.Fabric, sw topo.SwitchID, ruleID uint64) (Injected, error) {
	s := f.Switch(sw)
	if s == nil {
		return Injected{}, fmt.Errorf("faults: no switch %d", sw)
	}
	if err := s.Config.Table.Delete(ruleID); err != nil {
		return Injected{}, err
	}
	return Injected{Kind: KindRuleEviction, Switch: sw, RuleID: ruleID}, nil
}

// TableOverflow emulates the Pronto-Pica8 3290 bug the paper cites (§2.2,
// via CacheFlow): the switch holds `capacity` rules in its hardware table
// and "simply places all extra rules at the software flow table", which is
// consulted only when no hardware rule matches — respecting no dependency
// across rules. Behaviorally, the overflow rules (the most recently
// installed ones) act as if their priority dropped below every hardware
// rule. The injector reproduces exactly that observable behavior by
// rebasing the overflow rules' priorities below the hardware minimum,
// preserving their relative order. The logical table keeps the true
// priorities — the §2.2 inconsistency.
func TableOverflow(f *dataplane.Fabric, sw topo.SwitchID, capacity int) ([]Injected, error) {
	s := f.Switch(sw)
	if s == nil {
		return nil, fmt.Errorf("faults: no switch %d", sw)
	}
	if capacity < 0 {
		return nil, fmt.Errorf("faults: negative capacity")
	}
	// Install order = rule ID order.
	rules := append([]*flowtable.Rule(nil), s.Config.Table.Rules()...)
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	if len(rules) <= capacity {
		return nil, nil // everything fits: no fault manifests
	}
	hw := rules[:capacity]
	overflow := rules[capacity:]

	// The software table sits behind the hardware one: rebase overflow
	// priorities below the hardware minimum, keeping relative order.
	minHW := uint16(65535)
	for _, r := range hw {
		if r.Priority < minHW {
			minHW = r.Priority
		}
	}
	if int(minHW) <= len(overflow) {
		return nil, fmt.Errorf("faults: cannot rebase %d overflow rules below hardware priority %d", len(overflow), minHW)
	}
	// Order overflow rules by their true priority (the software table still
	// picks its own best match), then pack them under minHW.
	sort.SliceStable(overflow, func(i, j int) bool { return overflow[i].Priority > overflow[j].Priority })
	var out []Injected
	for i, r := range overflow {
		newPri := minHW - 1 - uint16(i)
		if r.Priority == newPri {
			continue
		}
		id := r.ID
		if err := s.Config.Table.Modify(id, func(rr *flowtable.Rule) { rr.Priority = newPri }); err != nil {
			return out, err
		}
		out = append(out, Injected{Kind: KindPriorityLoss, Switch: sw, RuleID: id})
	}
	return out, nil
}

// RandomRule picks a random installed forwarding rule (ActOutput) across
// all switches. Candidate enumeration is in sorted switch order so the same
// seed always faults the same rule — experiments stay reproducible.
func RandomRule(f *dataplane.Fabric, rng *rand.Rand) (topo.SwitchID, uint64, bool) {
	var candidates []struct {
		sw topo.SwitchID
		id uint64
	}
	ids := make([]topo.SwitchID, 0, len(f.Switches()))
	for sw := range f.Switches() {
		ids = append(ids, sw)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, sw := range ids {
		for _, r := range f.Switch(sw).Config.Table.Rules() {
			if r.Action == flowtable.ActOutput {
				candidates = append(candidates, struct {
					sw topo.SwitchID
					id uint64
				}{sw, r.ID})
			}
		}
	}
	if len(candidates) == 0 {
		return 0, 0, false
	}
	i := rng.Intn(len(candidates))
	if i < 0 || i >= len(candidates) {
		i = 0 // rng may be seeded from untrusted campaign files
	}
	c := candidates[i]
	return c.sw, c.id, true
}

// FaultyInstaller wraps a southbound installer with §2.2 installation
// faults: a configurable fraction of FlowAdds is silently dropped
// (DropRate) and/or installed with priority zero (PriorityLossRate).
// Barriers succeed unconditionally — mirroring the measured switches that
// answer Barrier before rules actually land (§2.2).
type FaultyInstaller struct {
	Inner controller.Installer

	DropRate         float64
	PriorityLossRate float64
	Rng              *rand.Rand

	// ForceDrop / ForceDegrade make the next FlowAdd deterministically
	// faulty regardless of the rates (and with no Rng required) — one-shot
	// triggers for targeted injections: the storm engine arms one, issues
	// exactly one install through the controller, and the flag clears
	// itself. ForceDrop wins when both are armed.
	ForceDrop    bool
	ForceDegrade bool

	// Dropped records the FlowMods that never reached the data plane.
	Dropped []*openflow.FlowMod
	// Degraded records the FlowMods installed with lost priority.
	Degraded []*openflow.FlowMod
}

// Apply forwards the FlowMod, possibly corrupting or discarding it first.
// Errors from the underlying installer still propagate: the fault model is
// about silent failures, not noisy ones.
func (fi *FaultyInstaller) Apply(f *openflow.FlowMod) error {
	if f.Command == openflow.FlowAdd {
		if fi.takeForce(&fi.ForceDrop) || fi.draw(fi.DropRate) {
			fi.Dropped = append(fi.Dropped, f)
			return nil // acknowledged, never installed
		}
		if fi.takeForce(&fi.ForceDegrade) || fi.draw(fi.PriorityLossRate) {
			c := *f
			c.Rule.Priority = 0
			fi.Degraded = append(fi.Degraded, f)
			return fi.Inner.Apply(&c)
		}
	}
	return fi.Inner.Apply(f)
}

// takeForce consumes a one-shot force flag.
func (fi *FaultyInstaller) takeForce(flag *bool) bool {
	if *flag {
		*flag = false
		return true
	}
	return false
}

// draw samples one rate. A zero rate never draws (so the RNG stream is
// untouched by disabled fault classes) and a nil Rng disables rate-based
// faults entirely rather than panicking.
func (fi *FaultyInstaller) draw(rate float64) bool {
	return rate > 0 && fi.Rng != nil && fi.Rng.Float64() < rate
}

// Barrier always succeeds immediately — the too-eager Barrier replies the
// paper's motivation cites ([50, 46]).
func (fi *FaultyInstaller) Barrier(topo.SwitchID) error { return nil }
