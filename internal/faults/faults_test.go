package faults

import (
	"fmt"
	"math/rand"
	"testing"

	"veridp/internal/controller"
	"veridp/internal/dataplane"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/openflow"
	"veridp/internal/topo"
)

func testFabric(t *testing.T) (*dataplane.Fabric, *controller.Controller, *topo.Network) {
	t.Helper()
	n := topo.Linear(3, 1)
	f := dataplane.NewFabric(n)
	c := controller.New(n, &dataplane.FabricInstaller{Fabric: f})
	if err := c.RouteAllHosts(); err != nil {
		t.Fatal(err)
	}
	return f, c, n
}

func TestWrongPortChangesPhysicalOnly(t *testing.T) {
	f, c, n := testFabric(t)
	rng := rand.New(rand.NewSource(1))
	sw, id, ok := RandomRule(f, rng)
	if !ok {
		t.Fatal("no rule")
	}
	logicalBefore := c.Logical()[sw].Table.Get(id).OutPort
	inj, err := WrongPort(f, sw, id, rng)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Kind != KindWrongPort || inj.NewPort == inj.OldPort {
		t.Fatalf("injection %v", inj)
	}
	if got := f.Switch(sw).Config.Table.Get(id).OutPort; got != inj.NewPort {
		t.Fatalf("physical port %s, want %s", got, inj.NewPort)
	}
	if c.Logical()[sw].Table.Get(id).OutPort != logicalBefore {
		t.Fatal("fault leaked into the logical store")
	}
	_ = n
}

func TestBlackholeAndEvict(t *testing.T) {
	f, _, _ := testFabric(t)
	rng := rand.New(rand.NewSource(2))
	sw, id, _ := RandomRule(f, rng)
	inj, err := Blackhole(f, sw, id)
	if err != nil {
		t.Fatal(err)
	}
	if inj.NewPort != topo.DropPort {
		t.Fatalf("blackhole target %v", inj)
	}
	if f.Switch(sw).Config.Table.Get(id).Action != flowtable.ActDrop {
		t.Fatal("rule not dropped")
	}
	inj, err = Evict(f, sw, id)
	if err != nil {
		t.Fatal(err)
	}
	if f.Switch(sw).Config.Table.Get(id) != nil {
		t.Fatal("rule survived eviction")
	}
	if _, err := Evict(f, sw, id); err == nil {
		t.Fatal("double eviction accepted")
	}
	if _, err := Blackhole(f, 99, 1); err == nil {
		t.Fatal("unknown switch accepted")
	}
	if _, err := WrongPort(f, 99, 1, rng); err == nil {
		t.Fatal("unknown switch accepted")
	}
}

func TestRandomRuleEmptyFabric(t *testing.T) {
	n := topo.Linear(2, 1)
	f := dataplane.NewFabric(n)
	if _, _, ok := RandomRule(f, rand.New(rand.NewSource(3))); ok {
		t.Fatal("rule found in an empty fabric")
	}
}

func TestFaultyInstallerDropsSilently(t *testing.T) {
	n := topo.Linear(3, 1)
	f := dataplane.NewFabric(n)
	fi := &FaultyInstaller{
		Inner:    &dataplane.FabricInstaller{Fabric: f},
		DropRate: 1.0, // drop every install
		Rng:      rand.New(rand.NewSource(4)),
	}
	c := controller.New(n, fi)
	if err := c.RouteAllHosts(); err != nil {
		t.Fatal(err) // the drop is silent: no error
	}
	if len(fi.Dropped) == 0 {
		t.Fatal("nothing recorded as dropped")
	}
	for _, sw := range n.Switches() {
		if f.Switch(sw.ID).Config.Table.Len() != 0 {
			t.Fatal("rules reached the data plane despite DropRate=1")
		}
		// The logical store is fully populated: this IS the inconsistency.
		if c.Logical()[sw.ID].Table.Len() == 0 {
			t.Fatal("logical store empty")
		}
	}
	if err := fi.Barrier(1); err != nil {
		t.Fatal("barrier should lie and succeed")
	}
}

func TestFaultyInstallerPriorityLoss(t *testing.T) {
	n := topo.Linear(2, 1)
	f := dataplane.NewFabric(n)
	fi := &FaultyInstaller{
		Inner:            &dataplane.FabricInstaller{Fabric: f},
		PriorityLossRate: 1.0,
		Rng:              rand.New(rand.NewSource(5)),
	}
	c := controller.New(n, fi)
	sw := n.SwitchByName("s1").ID
	id, err := c.InstallRule(sw, flowtable.Rule{Priority: 500, Action: flowtable.ActOutput, OutPort: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Switch(sw).Config.Table.Get(id).Priority; got != 0 {
		t.Fatalf("physical priority %d, want 0", got)
	}
	if c.Logical()[sw].Table.Get(id).Priority != 500 {
		t.Fatal("logical priority corrupted too")
	}
	if len(fi.Degraded) != 1 {
		t.Fatalf("degraded count %d", len(fi.Degraded))
	}
	// Deletes pass through untouched.
	if err := c.RemoveRule(sw, id); err != nil {
		t.Fatal(err)
	}
	if f.Switch(sw).Config.Table.Get(id) != nil {
		t.Fatal("delete did not pass through")
	}
}

// TestTableOverflowReproducesPica8Bug builds the §2.2 scenario: a
// high-priority deny installed late lands in the "software table" and is
// shadowed by an earlier low-priority permit — forwarding inverts exactly
// as CacheFlow observed on the Pronto-Pica8.
func TestTableOverflowReproducesPica8Bug(t *testing.T) {
	n := topo.Linear(2, 1)
	f := dataplane.NewFabric(n)
	c := controller.New(n, &dataplane.FabricInstaller{Fabric: f})
	sw := n.SwitchByName("s1").ID

	// Installed first (fits in hardware): forward everything.
	if _, err := c.InstallRule(sw, flowtable.Rule{Priority: 10, Action: flowtable.ActOutput, OutPort: 2}); err != nil {
		t.Fatal(err)
	}
	// Installed second (overflows): high-priority deny for one host.
	denySrc := flowtable.Prefix{IP: n.Host("h1-0").IP, Len: 32}
	if _, err := c.InstallRule(sw, flowtable.Rule{Priority: 100, Match: flowtable.Match{SrcPrefix: denySrc}, Action: flowtable.ActDrop}); err != nil {
		t.Fatal(err)
	}

	h := header.Header{SrcIP: n.Host("h1-0").IP, DstIP: n.Host("h2-0").IP, Proto: 6}
	// Healthy: the deny wins.
	if out := f.Switch(sw).Config.Classify(3, h); out != topo.DropPort {
		t.Fatalf("deny should win before the fault, got %s", out)
	}

	inj, err := TableOverflow(f, sw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(inj) == 0 {
		t.Fatal("overflow injected nothing")
	}
	// The bug: the hardware permit now shadows the overflowed deny.
	if out := f.Switch(sw).Config.Classify(3, h); out != 2 {
		t.Fatalf("overflowed deny still wins (got %s) — bug not reproduced", out)
	}
	// The logical table is untouched: this is a control-data inconsistency.
	if out := c.Logical()[sw].Classify(3, h); out != topo.DropPort {
		t.Fatal("fault leaked into the logical table")
	}

	// Everything-fits and impossible-rebase cases.
	if inj, err := TableOverflow(f, sw, 10); err != nil || inj != nil {
		t.Fatalf("capacity ≥ rules should be a no-op: %v %v", inj, err)
	}
	if _, err := TableOverflow(f, 99, 1); err == nil {
		t.Fatal("unknown switch accepted")
	}
}

// errInstaller fails every southbound call, for error-propagation tests.
type errInstaller struct{ err error }

func (e errInstaller) Apply(*openflow.FlowMod) error { return e.err }
func (e errInstaller) Barrier(topo.SwitchID) error   { return nil }

// TestFaultsOnRemovedRule: every injector must reject a rule that is no
// longer in the physical table instead of inventing state.
func TestFaultsOnRemovedRule(t *testing.T) {
	f, _, _ := testFabric(t)
	rng := rand.New(rand.NewSource(6))
	sw, id, ok := RandomRule(f, rng)
	if !ok {
		t.Fatal("no rule")
	}
	if _, err := Evict(f, sw, id); err != nil {
		t.Fatal(err)
	}
	if _, err := Evict(f, sw, id); err == nil {
		t.Fatal("Evict on a removed rule accepted")
	}
	if _, err := Blackhole(f, sw, id); err == nil {
		t.Fatal("Blackhole on a removed rule accepted")
	}
	if _, err := WrongPort(f, sw, id, rng); err == nil {
		t.Fatal("WrongPort on a removed rule accepted")
	}
}

// TestTableOverflowCapacityEdges: capacity 0 pushes every rule into the
// software table (relative order — and therefore forwarding — preserved),
// capacity beyond the rule count is a no-op, and negative capacity errors.
func TestTableOverflowCapacityZero(t *testing.T) {
	f, c, n := testFabric(t)
	sw := n.SwitchByName("s2").ID
	before := map[uint64]uint16{}
	for _, r := range c.Logical()[sw].Table.Rules() {
		before[r.ID] = r.Priority
	}
	if len(before) < 2 {
		t.Fatalf("want ≥2 rules, have %d", len(before))
	}

	inj, err := TableOverflow(f, sw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(inj) != len(before) {
		t.Fatalf("degraded %d of %d rules", len(inj), len(before))
	}
	// Every physical priority rebased below the 65535 sentinel, relative
	// order preserved, logical store untouched.
	phys := f.Switch(sw).Config.Table
	for id, pri := range before {
		r := phys.Get(id)
		if r == nil || r.Priority >= 65535 {
			t.Fatalf("rule %d not rebased: %+v", id, r)
		}
		if c.Logical()[sw].Table.Get(id).Priority != pri {
			t.Fatalf("rule %d: fault leaked into the logical store", id)
		}
	}
	h := header.Header{SrcIP: n.Host("h1-0").IP, DstIP: n.Host("h3-0").IP, Proto: 6}
	if got, want := phys.Lookup(1, h), c.Logical()[sw].Table.Lookup(1, h); (got == nil) != (want == nil) || (got != nil && got.ID != want.ID) {
		t.Fatalf("capacity-0 overflow changed forwarding: %v vs %v", got, want)
	}

	if inj, err := TableOverflow(f, sw, len(before)+5); err != nil || inj != nil {
		t.Fatalf("capacity > rule count should be a no-op: %v %v", inj, err)
	}
	if _, err := TableOverflow(f, sw, -1); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

// TestFaultyInstallerErrorPropagation: the fault model is about silent
// failures — noisy ones from the wrapped installer must still surface,
// except on a dropped install, which by definition never reaches it.
func TestFaultyInstallerErrorPropagation(t *testing.T) {
	boom := errInstaller{err: errTest}
	fi := &FaultyInstaller{Inner: boom}
	add := &openflow.FlowMod{Command: openflow.FlowAdd, Switch: 1, RuleID: 1}
	if err := fi.Apply(add); err != errTest {
		t.Fatalf("Apply error %v, want %v", err, errTest)
	}
	fi.ForceDegrade = true
	if err := fi.Apply(add); err != errTest {
		t.Fatalf("degraded Apply error %v, want %v", err, errTest)
	}
	fi.ForceDrop = true
	if err := fi.Apply(add); err != nil {
		t.Fatalf("dropped install must be silent, got %v", err)
	}
	del := &openflow.FlowMod{Command: openflow.FlowDelete, Switch: 1, RuleID: 1}
	if err := fi.Apply(del); err != errTest {
		t.Fatalf("delete error %v, want %v", err, errTest)
	}
}

var errTest = fmt.Errorf("southbound boom")

// TestFaultyInstallerForceFlags: the one-shot triggers fire exactly once,
// need no Rng, and a zero-rate installer with nil Rng passes through.
func TestFaultyInstallerForceFlags(t *testing.T) {
	n := topo.Linear(2, 1)
	f := dataplane.NewFabric(n)
	fi := &FaultyInstaller{Inner: &dataplane.FabricInstaller{Fabric: f}} // no Rng at all
	c := controller.New(n, fi)
	sw := n.SwitchByName("s1").ID

	fi.ForceDrop = true
	id1, err := c.InstallRule(sw, flowtable.Rule{Priority: 40, Action: flowtable.ActOutput, OutPort: 2})
	if err != nil {
		t.Fatal(err)
	}
	if f.Switch(sw).Config.Table.Get(id1) != nil {
		t.Fatal("forced drop reached the data plane")
	}
	if fi.ForceDrop || len(fi.Dropped) != 1 {
		t.Fatalf("ForceDrop not consumed exactly once: flag=%t dropped=%d", fi.ForceDrop, len(fi.Dropped))
	}

	fi.ForceDegrade = true
	id2, err := c.InstallRule(sw, flowtable.Rule{Priority: 40, Action: flowtable.ActOutput, OutPort: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Switch(sw).Config.Table.Get(id2).Priority; got != 0 {
		t.Fatalf("forced degrade priority %d, want 0", got)
	}
	if fi.ForceDegrade || len(fi.Degraded) != 1 {
		t.Fatal("ForceDegrade not consumed exactly once")
	}

	// With no flags and no Rng, installs pass through faithfully.
	id3, err := c.InstallRule(sw, flowtable.Rule{Priority: 40, Action: flowtable.ActOutput, OutPort: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Switch(sw).Config.Table.Get(id3); got == nil || got.Priority != 40 {
		t.Fatalf("pass-through broken: %+v", got)
	}
}

func TestInjectedString(t *testing.T) {
	inj := Injected{Kind: KindWrongPort, Switch: 3, RuleID: 9, OldPort: 1, NewPort: 2}
	if inj.String() == "" || KindBlackhole.String() != "blackhole" {
		t.Fatal("string rendering broken")
	}
	_ = openflow.FlowAdd // the package's fault surface includes FlowMods
}
