package faults

import (
	"math/rand"
	"testing"

	"veridp/internal/controller"
	"veridp/internal/dataplane"
	"veridp/internal/flowtable"
	"veridp/internal/header"
	"veridp/internal/openflow"
	"veridp/internal/topo"
)

func testFabric(t *testing.T) (*dataplane.Fabric, *controller.Controller, *topo.Network) {
	t.Helper()
	n := topo.Linear(3, 1)
	f := dataplane.NewFabric(n)
	c := controller.New(n, &dataplane.FabricInstaller{Fabric: f})
	if err := c.RouteAllHosts(); err != nil {
		t.Fatal(err)
	}
	return f, c, n
}

func TestWrongPortChangesPhysicalOnly(t *testing.T) {
	f, c, n := testFabric(t)
	rng := rand.New(rand.NewSource(1))
	sw, id, ok := RandomRule(f, rng)
	if !ok {
		t.Fatal("no rule")
	}
	logicalBefore := c.Logical()[sw].Table.Get(id).OutPort
	inj, err := WrongPort(f, sw, id, rng)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Kind != KindWrongPort || inj.NewPort == inj.OldPort {
		t.Fatalf("injection %v", inj)
	}
	if got := f.Switch(sw).Config.Table.Get(id).OutPort; got != inj.NewPort {
		t.Fatalf("physical port %s, want %s", got, inj.NewPort)
	}
	if c.Logical()[sw].Table.Get(id).OutPort != logicalBefore {
		t.Fatal("fault leaked into the logical store")
	}
	_ = n
}

func TestBlackholeAndEvict(t *testing.T) {
	f, _, _ := testFabric(t)
	rng := rand.New(rand.NewSource(2))
	sw, id, _ := RandomRule(f, rng)
	inj, err := Blackhole(f, sw, id)
	if err != nil {
		t.Fatal(err)
	}
	if inj.NewPort != topo.DropPort {
		t.Fatalf("blackhole target %v", inj)
	}
	if f.Switch(sw).Config.Table.Get(id).Action != flowtable.ActDrop {
		t.Fatal("rule not dropped")
	}
	inj, err = Evict(f, sw, id)
	if err != nil {
		t.Fatal(err)
	}
	if f.Switch(sw).Config.Table.Get(id) != nil {
		t.Fatal("rule survived eviction")
	}
	if _, err := Evict(f, sw, id); err == nil {
		t.Fatal("double eviction accepted")
	}
	if _, err := Blackhole(f, 99, 1); err == nil {
		t.Fatal("unknown switch accepted")
	}
	if _, err := WrongPort(f, 99, 1, rng); err == nil {
		t.Fatal("unknown switch accepted")
	}
}

func TestRandomRuleEmptyFabric(t *testing.T) {
	n := topo.Linear(2, 1)
	f := dataplane.NewFabric(n)
	if _, _, ok := RandomRule(f, rand.New(rand.NewSource(3))); ok {
		t.Fatal("rule found in an empty fabric")
	}
}

func TestFaultyInstallerDropsSilently(t *testing.T) {
	n := topo.Linear(3, 1)
	f := dataplane.NewFabric(n)
	fi := &FaultyInstaller{
		Inner:    &dataplane.FabricInstaller{Fabric: f},
		DropRate: 1.0, // drop every install
		Rng:      rand.New(rand.NewSource(4)),
	}
	c := controller.New(n, fi)
	if err := c.RouteAllHosts(); err != nil {
		t.Fatal(err) // the drop is silent: no error
	}
	if len(fi.Dropped) == 0 {
		t.Fatal("nothing recorded as dropped")
	}
	for _, sw := range n.Switches() {
		if f.Switch(sw.ID).Config.Table.Len() != 0 {
			t.Fatal("rules reached the data plane despite DropRate=1")
		}
		// The logical store is fully populated: this IS the inconsistency.
		if c.Logical()[sw.ID].Table.Len() == 0 {
			t.Fatal("logical store empty")
		}
	}
	if err := fi.Barrier(1); err != nil {
		t.Fatal("barrier should lie and succeed")
	}
}

func TestFaultyInstallerPriorityLoss(t *testing.T) {
	n := topo.Linear(2, 1)
	f := dataplane.NewFabric(n)
	fi := &FaultyInstaller{
		Inner:            &dataplane.FabricInstaller{Fabric: f},
		PriorityLossRate: 1.0,
		Rng:              rand.New(rand.NewSource(5)),
	}
	c := controller.New(n, fi)
	sw := n.SwitchByName("s1").ID
	id, err := c.InstallRule(sw, flowtable.Rule{Priority: 500, Action: flowtable.ActOutput, OutPort: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Switch(sw).Config.Table.Get(id).Priority; got != 0 {
		t.Fatalf("physical priority %d, want 0", got)
	}
	if c.Logical()[sw].Table.Get(id).Priority != 500 {
		t.Fatal("logical priority corrupted too")
	}
	if len(fi.Degraded) != 1 {
		t.Fatalf("degraded count %d", len(fi.Degraded))
	}
	// Deletes pass through untouched.
	if err := c.RemoveRule(sw, id); err != nil {
		t.Fatal(err)
	}
	if f.Switch(sw).Config.Table.Get(id) != nil {
		t.Fatal("delete did not pass through")
	}
}

// TestTableOverflowReproducesPica8Bug builds the §2.2 scenario: a
// high-priority deny installed late lands in the "software table" and is
// shadowed by an earlier low-priority permit — forwarding inverts exactly
// as CacheFlow observed on the Pronto-Pica8.
func TestTableOverflowReproducesPica8Bug(t *testing.T) {
	n := topo.Linear(2, 1)
	f := dataplane.NewFabric(n)
	c := controller.New(n, &dataplane.FabricInstaller{Fabric: f})
	sw := n.SwitchByName("s1").ID

	// Installed first (fits in hardware): forward everything.
	if _, err := c.InstallRule(sw, flowtable.Rule{Priority: 10, Action: flowtable.ActOutput, OutPort: 2}); err != nil {
		t.Fatal(err)
	}
	// Installed second (overflows): high-priority deny for one host.
	denySrc := flowtable.Prefix{IP: n.Host("h1-0").IP, Len: 32}
	if _, err := c.InstallRule(sw, flowtable.Rule{Priority: 100, Match: flowtable.Match{SrcPrefix: denySrc}, Action: flowtable.ActDrop}); err != nil {
		t.Fatal(err)
	}

	h := header.Header{SrcIP: n.Host("h1-0").IP, DstIP: n.Host("h2-0").IP, Proto: 6}
	// Healthy: the deny wins.
	if out := f.Switch(sw).Config.Classify(3, h); out != topo.DropPort {
		t.Fatalf("deny should win before the fault, got %s", out)
	}

	inj, err := TableOverflow(f, sw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(inj) == 0 {
		t.Fatal("overflow injected nothing")
	}
	// The bug: the hardware permit now shadows the overflowed deny.
	if out := f.Switch(sw).Config.Classify(3, h); out != 2 {
		t.Fatalf("overflowed deny still wins (got %s) — bug not reproduced", out)
	}
	// The logical table is untouched: this is a control-data inconsistency.
	if out := c.Logical()[sw].Classify(3, h); out != topo.DropPort {
		t.Fatal("fault leaked into the logical table")
	}

	// Everything-fits and impossible-rebase cases.
	if inj, err := TableOverflow(f, sw, 10); err != nil || inj != nil {
		t.Fatalf("capacity ≥ rules should be a no-op: %v %v", inj, err)
	}
	if _, err := TableOverflow(f, 99, 1); err == nil {
		t.Fatal("unknown switch accepted")
	}
}

func TestInjectedString(t *testing.T) {
	inj := Injected{Kind: KindWrongPort, Switch: 3, RuleID: 9, OldPort: 1, NewPort: 2}
	if inj.String() == "" || KindBlackhole.String() != "blackhole" {
		t.Fatal("string rendering broken")
	}
	_ = openflow.FlowAdd // the package's fault surface includes FlowMods
}
