package bloom

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

// Murmur3 reference vectors computed with the canonical C++ implementation
// (MurmurHash3_x86_32).
func TestMurmur3ReferenceVectors(t *testing.T) {
	cases := []struct {
		data string
		seed uint32
		want uint32
	}{
		{"", 0, 0},
		{"", 1, 0x514e28b7},
		{"", 0xffffffff, 0x81f16f39},
		{"a", 0, 0x3c2569b2},
		{"abc", 0, 0xb3dd93fa},
		{"abcd", 0, 0x43ed676a},
		{"hello", 0, 0x248bfa47},
		{"hello, world", 0, 0x149bbb7f},
		{"The quick brown fox jumps over the lazy dog", 0x9747b28c, 0x2fa826cd},
	}
	for _, c := range cases {
		if got := Murmur3([]byte(c.data), c.seed); got != c.want {
			t.Errorf("Murmur3(%q, %#x) = %#x, want %#x", c.data, c.seed, got, c.want)
		}
	}
}

func TestMurmur3AllTailLengths(t *testing.T) {
	// Exercise every body/tail combination; verify determinism and that
	// extending input changes the hash (no trivial collisions on prefixes).
	data := []byte("0123456789abcdef")
	seen := map[uint32]int{}
	for n := 0; n <= len(data); n++ {
		h := Murmur3(data[:n], 42)
		if prev, dup := seen[h]; dup {
			t.Fatalf("prefix lengths %d and %d collide", prev, n)
		}
		seen[h] = n
		if h != Murmur3(data[:n], 42) {
			t.Fatalf("Murmur3 not deterministic at length %d", n)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	for _, m := range []int{1, 8, 16, 32, 64} {
		if err := (Params{MBits: m}).Validate(); err != nil {
			t.Errorf("MBits=%d unexpectedly invalid: %v", m, err)
		}
	}
	for _, m := range []int{0, -1, 65, 1000} {
		if err := (Params{MBits: m}).Validate(); err == nil {
			t.Errorf("MBits=%d unexpectedly valid", m)
		}
	}
}

func TestHashStaysInsideFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, m := range []int{8, 16, 24, 32, 48, 64} {
		p := Params{MBits: m}
		for i := 0; i < 200; i++ {
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], rng.Uint64())
			tag := p.Hash(buf[:])
			if uint64(tag) & ^p.mask() != 0 {
				t.Fatalf("m=%d: hash set bits above the filter width: %v", m, tag)
			}
			if tag == 0 {
				t.Fatalf("m=%d: element filter is empty", m)
			}
			if pc := tag.PopCount(); pc > NumHashes {
				t.Fatalf("m=%d: element filter has %d bits set, max %d", m, pc, NumHashes)
			}
		}
	}
}

func TestContainsSelf(t *testing.T) {
	p := DefaultParams
	e := p.Hash([]byte("hop-1"))
	if !e.Contains(e) {
		t.Fatal("element not contained in itself")
	}
	var empty Tag
	if !e.Contains(empty) {
		t.Fatal("empty filter should be subset of everything")
	}
	if empty.Contains(e) {
		t.Fatal("non-empty filter contained in empty one")
	}
}

func TestUnionMonotone(t *testing.T) {
	p := DefaultParams
	a := p.Hash([]byte("hop-a"))
	b := p.Hash([]byte("hop-b"))
	u := a.Union(b)
	if !u.Contains(a) || !u.Contains(b) {
		t.Fatal("union does not contain its operands")
	}
	if u.Union(u) != u {
		t.Fatal("union not idempotent")
	}
	if a.Union(b) != b.Union(a) {
		t.Fatal("union not commutative")
	}
}

// Property: inserting elements never makes a previously-present element
// disappear (no false negatives — the property Figure 12's "no false
// positives in verification" argument rests on).
func TestQuickNoFalseNegatives(t *testing.T) {
	p := Params{MBits: 16}
	prop := func(elems [][]byte, probe uint8) bool {
		if len(elems) == 0 {
			return true
		}
		var tag Tag
		for _, e := range elems {
			tag = tag.Union(p.Hash(e))
		}
		// Every inserted element must still test positive.
		for _, e := range elems {
			if !tag.Contains(p.Hash(e)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: subset testing is sound — if Contains returns false the element
// was definitely never inserted.
func TestQuickContainsFalseIsDefinite(t *testing.T) {
	p := Params{MBits: 32}
	prop := func(elems [][]byte, probe []byte) bool {
		var tag Tag
		inserted := false
		for _, e := range elems {
			tag = tag.Union(p.Hash(e))
			if string(e) == string(probe) {
				inserted = true
			}
		}
		if !tag.Contains(p.Hash(probe)) && inserted {
			return false // false negative: forbidden
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestFalsePositiveRateMatchesTheory measures the empirical false-positive
// rate for a 16-bit filter holding 5 hops (a typical fat-tree path length)
// and checks it is within 3x of the analytic estimate — the scale that makes
// Figure 12's curves meaningful.
func TestFalsePositiveRateMatchesTheory(t *testing.T) {
	p := Params{MBits: 16}
	rng := rand.New(rand.NewSource(123))
	const nHops = 5
	const trials = 20000
	fp := 0
	for trial := 0; trial < trials; trial++ {
		var tag Tag
		for i := 0; i < nHops; i++ {
			var buf [12]byte
			binary.BigEndian.PutUint32(buf[0:], rng.Uint32())
			binary.BigEndian.PutUint64(buf[4:], rng.Uint64())
			tag = tag.Union(p.Hash(buf[:]))
		}
		var probe [12]byte
		binary.BigEndian.PutUint32(probe[0:], rng.Uint32())
		binary.BigEndian.PutUint64(probe[4:], rng.Uint64())
		if tag.Contains(p.Hash(probe[:])) {
			fp++
		}
	}
	got := float64(fp) / trials
	want := p.FalsePositiveRate(nHops)
	if got > want*3 || got < want/3 {
		t.Fatalf("empirical FP rate %.4f vs theory %.4f: off by more than 3x", got, want)
	}
}

// TestBiggerFilterFewerFalsePositives checks the monotonicity driving
// Figure 12: doubling the filter size lowers the false positive rate.
func TestBiggerFilterFewerFalsePositives(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	rates := make([]float64, 0, 4)
	for _, m := range []int{8, 16, 32, 64} {
		p := Params{MBits: m}
		const trials = 10000
		fp := 0
		for trial := 0; trial < trials; trial++ {
			var tag Tag
			for i := 0; i < 5; i++ {
				var buf [8]byte
				binary.BigEndian.PutUint64(buf[:], rng.Uint64())
				tag = tag.Union(p.Hash(buf[:]))
			}
			var probe [8]byte
			binary.BigEndian.PutUint64(probe[:], rng.Uint64())
			if tag.Contains(p.Hash(probe[:])) {
				fp++
			}
		}
		rates = append(rates, float64(fp)/trials)
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] >= rates[i-1] && rates[i-1] > 0.001 {
			t.Fatalf("FP rate did not decrease with filter size: %v", rates)
		}
	}
}

func TestString(t *testing.T) {
	if got := Tag(0xbeef).String(); got != "0xbeef" {
		t.Fatalf("String() = %q", got)
	}
}

func BenchmarkHash(b *testing.B) {
	p := DefaultParams
	data := []byte("\x00\x01\x00\x00\x00\x07\x00\x03")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Hash(data)
	}
}

func BenchmarkMurmur3(b *testing.B) {
	data := make([]byte, 12)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Murmur3(data, murmurSeed)
	}
}
