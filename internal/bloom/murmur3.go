// Murmur3 x86 32-bit hash, implemented from scratch per the reference
// algorithm (Austin Appleby's MurmurHash3_x86_32). The paper's §5 derives its
// Bloom-filter probe functions from "the two halves of a 32-bit Murmur3
// hash"; this file provides that hash.

package bloom

import "encoding/binary"

const (
	murmurC1 = 0xcc9e2d51
	murmurC2 = 0x1b873593
)

// Murmur3 computes the 32-bit Murmur3 hash of data with the given seed.
func Murmur3(data []byte, seed uint32) uint32 {
	h := seed
	n := len(data)

	// Body: 4-byte blocks.
	nblocks := n / 4
	for i := 0; i < nblocks; i++ {
		k := binary.LittleEndian.Uint32(data[i*4:])
		k *= murmurC1
		k = k<<15 | k>>17
		k *= murmurC2
		h ^= k
		h = h<<13 | h>>19
		h = h*5 + 0xe6546b64
	}

	// Tail: the remaining 0-3 bytes.
	var k uint32
	tail := data[nblocks*4:]
	switch len(tail) {
	case 3:
		k ^= uint32(tail[2]) << 16
		fallthrough
	case 2:
		k ^= uint32(tail[1]) << 8
		fallthrough
	case 1:
		k ^= uint32(tail[0])
		k *= murmurC1
		k = k<<15 | k>>17
		k *= murmurC2
		h ^= k
	}

	// Finalization: force all bits to avalanche.
	h ^= uint32(n)
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}
