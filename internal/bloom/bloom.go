// Package bloom implements the Bloom-filter packet tags at the heart of
// VeriDP's path encoding.
//
// Every hop a sampled packet takes is folded into its tag as
//
//	tag ← tag ⊔ BF(input_port ‖ switch_ID ‖ output_port)
//
// where BF(x) is a k-bit Bloom filter holding the single element x and ⊔ is
// bitwise OR (Algorithm 1). The same fold computed offline over a path in the
// path table yields the expected tag; equality of the two verifies the path,
// and the subset structure of Bloom filters (unlike a plain hash/XOR fold)
// is what lets Algorithm 4 test individual hops for membership during fault
// localization — the reason §3.3 rejects hash-based tagging.
//
// Following §5, the probe positions are derived with Kirsch–Mitzenmacher
// double hashing: g_i(x) = h1(x) + i·h2(x) for i = 0, 1, 2, where h1 and h2
// are the two 16-bit halves of one 32-bit Murmur3 hash — the same scheme
// Cassandra uses. The paper's prototype uses a 16-bit filter carried in a
// VLAN tag; Figure 12 sweeps the size from 8 to 64 bits, so the size is a
// parameter here.
package bloom

import (
	"fmt"
	"math/bits"
)

// Tag is a Bloom-filter packet tag of up to 64 bits. Bits above the
// configured filter size are always zero. The zero Tag is the empty filter,
// matching Algorithm 1's "tag ← 0" initialization at entry switches.
type Tag uint64

// NumHashes is the number of probe positions per element, fixed at three by
// the paper's implementation (§5).
const NumHashes = 3

// murmurSeed is the fixed seed shared by taggers and the verification
// server; both sides must compute identical filters.
const murmurSeed = 0x56444250 // "VDBP"

// Params configures the tag scheme: the filter width in bits. All switches
// and the verification server must agree on Params.
type Params struct {
	// MBits is the Bloom filter size in bits, 1..64. The paper's prototype
	// uses 16 (one VLAN TCI); Figure 12 evaluates 8..64.
	MBits int
}

// DefaultParams is the paper's prototype configuration: a 16-bit tag carried
// in the first VLAN tag's TCI.
var DefaultParams = Params{MBits: 16}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.MBits < 1 || p.MBits > 64 {
		return fmt.Errorf("bloom: filter size %d bits out of range [1,64]", p.MBits)
	}
	return nil
}

// mask returns the bitmask covering the filter's m bits.
func (p Params) mask() uint64 {
	if p.MBits >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<p.MBits - 1
}

// Hash returns BF(data): the filter holding the single element data. The
// three probe positions are g_i = (h1 + i·h2) mod m with h1, h2 the two
// halves of Murmur3(data).
func (p Params) Hash(data []byte) Tag {
	h := Murmur3(data, murmurSeed)
	h1 := h & 0xffff
	h2 := h >> 16
	m := uint32(p.MBits)
	var t Tag
	for i := uint32(0); i < NumHashes; i++ {
		pos := (h1 + i*h2) % m
		t |= 1 << pos
	}
	return t
}

// Union returns the bitwise OR of two tags — the ⊔ of Algorithm 1.
func (t Tag) Union(o Tag) Tag { return t | o }

// Contains reports whether element filter e is a subset of t: the membership
// test BF(hop) ⊓ tag == BF(hop) from Algorithm 4 (PathInfer). A true result
// may be a Bloom-filter false positive; a false result is definite.
func (t Tag) Contains(e Tag) bool { return t&e == e }

// PopCount returns the number of set bits, useful for fill-ratio diagnostics.
func (t Tag) PopCount() int { return bits.OnesCount64(uint64(t)) }

// String renders the tag as a hexadecimal literal.
func (t Tag) String() string { return fmt.Sprintf("%#x", uint64(t)) }

// FalsePositiveRate estimates the probability that a random absent element
// passes Contains against a filter holding n elements: (1-(1-1/m)^(kn))^k.
// Used by the evaluation harness to sanity-check measured Figure 12 curves.
func (p Params) FalsePositiveRate(n int) float64 {
	m := float64(p.MBits)
	inside := 1.0
	base := 1 - 1/m
	for i := 0; i < NumHashes*n; i++ {
		inside *= base
	}
	fp := 1 - inside
	return fp * fp * fp
}
