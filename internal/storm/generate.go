// Campaign generation: a weighted draw per step, all randomness from the
// campaign seed. Churn dominates (it is the background noise real
// controllers produce); faults, maintenance, and restarts are salted in.

package storm

import "math/rand"

// GenOptions tunes generation.
type GenOptions struct {
	// DesyncWeight is the weight of the desync-params self-test op.
	// Default 0: an honest campaign never desyncs the planes' parameters,
	// so any failure it reports is real.
	DesyncWeight int
}

// genWeights is the default op mix.
var genWeights = [numOps]int{
	OpChurnInstall:     12,
	OpChurnDelete:      8,
	OpReroute:          6,
	OpWrongPort:        4,
	OpBlackhole:        3,
	OpEvict:            3,
	OpOverflow:         2,
	OpMissedRule:       4,
	OpPriorityLoss:     3,
	OpSampleShift:      4,
	OpCompact:          3,
	OpSwap:             3,
	OpRestartMonitor:   2,
	OpRestartCollector: 2,
	OpDesyncParams:     0,
}

// Generate draws a steps-long campaign for the topology. The same
// (topo, seed, steps, probes, opt) always yields the same campaign; each
// step's Pick is drawn from the same stream, so the campaign file is the
// complete record of the run.
func Generate(topoName string, seed int64, steps, probes int, opt GenOptions) *Campaign {
	rng := rand.New(rand.NewSource(seed))
	w := genWeights
	if opt.DesyncWeight > 0 {
		w[OpDesyncParams] = opt.DesyncWeight
	}
	total := 0
	for _, x := range w {
		total += x
	}
	c := &Campaign{Version: Version, Topo: topoName, MBits: 64, Probes: probes, Seed: seed}
	for i := 0; i < steps; i++ {
		r := rng.Intn(total)
		op := Op(0)
		for o := Op(0); o < numOps; o++ {
			if r < w[o] {
				op = o
				break
			}
			r -= w[o]
		}
		c.Steps = append(c.Steps, Step{Op: op, Pick: rng.Int63()})
	}
	return c
}
