package storm

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzCampaignReplay holds the campaign codec to its trust-boundary
// contract: arbitrary bytes never panic Decode, and anything that decodes
// re-encodes to a document that decodes back to the same campaign — the
// property that makes a CI artifact from one build replayable on another.
func FuzzCampaignReplay(f *testing.F) {
	dir := filepath.Join("..", "..", "testdata", "storm")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("seed corpus: %v", err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatalf("seed corpus: %v", err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"version":1,"topo":"figure5","mbits":16,"probes":1,"seed":0,"steps":[]}`))
	f.Add([]byte(`{"version":1,"topo":"ft4","mbits":64,"probes":64,"seed":-1,"steps":[{"op":"overflow","pick":-9}]}`))
	f.Add([]byte(`{"op":"desync-params"`))
	f.Add([]byte("null"))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			return // malformed input must error, never panic
		}
		enc, err := Encode(c)
		if err != nil {
			t.Fatalf("decoded campaign failed to re-encode: %v", err)
		}
		c2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded campaign failed to decode: %v", err)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatalf("decode/encode/decode changed the campaign:\n%+v\n%+v", c, c2)
		}
	})
}
