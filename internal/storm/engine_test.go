package storm

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestStormShortCampaign is the standing fuzz smoke: a 200-step ft6
// campaign covering the whole op mix must pass every oracle. It runs
// under -race in `make check`, where the shadow verifiers in the
// maintenance ops and the concurrent collector handler do their real work.
func TestStormShortCampaign(t *testing.T) {
	c := Generate("ft6", 7, 200, 2, GenOptions{})
	res, err := Run(context.Background(), c, t.Logf)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Failure != nil {
		data, _ := Encode(c)
		t.Fatalf("oracle failure: %s\ncampaign for replay:\n%s", res.Failure, data)
	}
	if res.Steps != 200 {
		t.Fatalf("executed %d of 200 steps", res.Steps)
	}
	if res.Reports == 0 {
		t.Fatal("campaign produced no reports")
	}
	if res.Violated == 0 {
		t.Fatal("200 steps of fault injection tripped no verification — oracles are blind")
	}
	if res.Localized == 0 {
		t.Fatal("no violation was localized")
	}
}

// TestCampaignDeterminism is the replay contract: the same campaign run
// twice produces byte-identical verdict traces and identical counters.
func TestCampaignDeterminism(t *testing.T) {
	c := Generate("ft4", 5, 60, 3, GenOptions{})
	a, err := Run(context.Background(), c, nil)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := Run(context.Background(), c, nil)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.Failure != nil || b.Failure != nil {
		t.Fatalf("unexpected failures: %v / %v", a.Failure, b.Failure)
	}
	if !bytes.Equal(a.Trace, b.Trace) {
		t.Fatalf("same campaign, different traces:\n--- a\n%s--- b\n%s", a.Trace, b.Trace)
	}
	if len(a.Trace) == 0 {
		t.Fatal("empty trace")
	}
	if a.Probes != b.Probes || a.Reports != b.Reports ||
		a.Verified != b.Verified || a.Violated != b.Violated || a.Localized != b.Localized {
		t.Fatalf("counter mismatch: %+v vs %+v", a, b)
	}
}

// TestStepSelfContainment is the minimizer's prerequisite: a step's
// behavior depends only on its own Pick, so a subsequence replays
// identically. The suffix of a campaign's trace must match the trace of
// the suffix alone when the dropped prefix did not change state.
func TestStepSelfContainment(t *testing.T) {
	full := &Campaign{
		Version: Version, Topo: "ft4", MBits: 64, Probes: 2, Seed: 1,
		Steps: []Step{
			{Op: OpCompact, Pick: 11}, // no state change: nothing installed yet
			{Op: OpSampleShift, Pick: 22},
			{Op: OpChurnInstall, Pick: 33},
		},
	}
	sub := &Campaign{
		Version: Version, Topo: "ft4", MBits: 64, Probes: 2, Seed: 1,
		Steps: []Step{
			{Op: OpSampleShift, Pick: 22},
			{Op: OpChurnInstall, Pick: 33},
		},
	}
	a, err := Run(context.Background(), full, nil)
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	b, err := Run(context.Background(), sub, nil)
	if err != nil {
		t.Fatalf("sub: %v", err)
	}
	// Trace lines are prefixed with the step index; drop the full run's
	// step-0 lines and the prefixes, then the remainders must match.
	want := stripStepPrefix(t, a.Trace, "step=0000 ")
	got := stripStepPrefix(t, b.Trace, "")
	if len(want) == 0 || len(want) != len(got) {
		t.Fatalf("trace line counts: full-without-step0 %d, subsequence %d", len(want), len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("line %d: subsequence replayed differently:\n%s\n%s", i, got[i], want[i])
		}
	}
}

// stripStepPrefix splits a trace, drops lines carrying the skip prefix,
// and strips the "step=NNNN " prefix from the rest.
func stripStepPrefix(t *testing.T, trace []byte, skip string) []string {
	t.Helper()
	lines := bytes.Split(bytes.TrimSuffix(trace, []byte("\n")), []byte("\n"))
	out := make([]string, 0, len(lines))
	for _, l := range lines {
		if skip != "" && bytes.HasPrefix(l, []byte(skip)) {
			continue
		}
		i := bytes.IndexByte(l, ' ')
		if i < 0 {
			t.Fatalf("malformed trace line %q", l)
		}
		out = append(out, string(l[i+1:]))
	}
	return out
}

// TestReplayMinimizedRegression replays the committed ddmin output: the
// one-step desync campaign must still trip the no-false-positive oracle
// at step 0 — the self-test that proves the failure path works end to end.
func TestReplayMinimizedRegression(t *testing.T) {
	c := loadCampaign(t, "min-desync.json")
	res, err := Run(context.Background(), c, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Failure == nil {
		t.Fatal("minimized regression campaign no longer fails")
	}
	if res.Failure.Oracle != OracleNoFalsePositive {
		t.Fatalf("failed oracle %s, want %s", res.Failure.Oracle, OracleNoFalsePositive)
	}
	if res.Failure.Step != 0 {
		t.Fatalf("failure at step %d of a 1-step campaign", res.Failure.Step)
	}
}

// TestReplayPassingCorpus replays the committed passing campaign.
func TestReplayPassingCorpus(t *testing.T) {
	c := loadCampaign(t, "seed1.json")
	res, err := Run(context.Background(), c, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Failure != nil {
		t.Fatalf("corpus campaign failed: %s", res.Failure)
	}
	if res.Steps != len(c.Steps) {
		t.Fatalf("executed %d of %d steps", res.Steps, len(c.Steps))
	}
}

// TestRunRejects covers the harness-error paths.
func TestRunRejects(t *testing.T) {
	if _, err := Run(context.Background(), &Campaign{Version: 9}, nil); err == nil {
		t.Fatal("Run accepted an invalid campaign")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := Generate("ft4", 1, 5, 1, GenOptions{})
	if _, err := Run(ctx, c, nil); err == nil {
		t.Fatal("Run ignored a cancelled context")
	}
}

func loadCampaign(t *testing.T, name string) *Campaign {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "storm", name))
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	c, err := Decode(data)
	if err != nil {
		t.Fatalf("decode %s: %v", name, err)
	}
	return c
}
