package storm

import (
	"reflect"
	"strings"
	"testing"
)

func validCampaign() *Campaign {
	return &Campaign{
		Version: Version,
		Topo:    "ft4",
		MBits:   64,
		Probes:  2,
		Seed:    9,
		Steps: []Step{
			{Op: OpChurnInstall, Pick: 1},
			{Op: OpCompact, Pick: 2},
		},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	c := validCampaign()
	data, err := Encode(c)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", c, got)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Campaign)
		want string
	}{
		{"version", func(c *Campaign) { c.Version = 2 }, "version"},
		{"topology", func(c *Campaign) { c.Topo = "clos" }, "topology"},
		{"mbits", func(c *Campaign) { c.MBits = -1 }, ""},
		{"probes-zero", func(c *Campaign) { c.Probes = 0 }, "probes"},
		{"probes-huge", func(c *Campaign) { c.Probes = MaxProbes + 1 }, "probes"},
		{"steps-cap", func(c *Campaign) { c.Steps = make([]Step, MaxSteps+1) }, "cap"},
		{"bad-op", func(c *Campaign) { c.Steps[0].Op = numOps }, "invalid op"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := validCampaign()
			tc.mut(c)
			err := c.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if _, err := Encode(c); err == nil {
				t.Fatalf("Encode accepted %s", tc.name)
			}
		})
	}
}

func TestDecodeMalformed(t *testing.T) {
	for _, bad := range []string{
		"", "{", "null", `{"version":1}`,
		`{"version":1,"topo":"ft4","mbits":64,"probes":1,"steps":[{"op":"warp","pick":1}]}`,
		`{"version":1,"topo":"ft4","mbits":64,"probes":1,"steps":[{"op":7,"pick":1}]}`,
	} {
		if _, err := Decode([]byte(bad)); err == nil {
			t.Errorf("Decode(%q) accepted malformed input", bad)
		}
	}
}

func TestOpNamesRoundTrip(t *testing.T) {
	for o := Op(0); o < numOps; o++ {
		got, err := ParseOp(o.String())
		if err != nil || got != o {
			t.Fatalf("ParseOp(%q) = %v, %v; want %v", o.String(), got, err, o)
		}
	}
	if _, err := ParseOp("nope"); err == nil {
		t.Fatal("ParseOp accepted unknown name")
	}
	if s := Op(200).String(); s != "Op(200)" {
		t.Fatalf("out-of-range String() = %q", s)
	}
	if _, err := Op(200).MarshalJSON(); err == nil {
		t.Fatal("MarshalJSON accepted out-of-range op")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := Generate("ft6", 77, 300, 3, GenOptions{})
	b := Generate("ft6", 77, 300, 3, GenOptions{})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed generated different campaigns")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated campaign invalid: %v", err)
	}
	c := Generate("ft6", 78, 300, 3, GenOptions{})
	if reflect.DeepEqual(a.Steps, c.Steps) {
		t.Fatal("different seeds generated identical step sequences")
	}
	for _, st := range Generate("ft4", 5, 500, 2, GenOptions{}).Steps {
		if st.Op == OpDesyncParams {
			t.Fatal("default generator emitted the desync-params self-test op")
		}
	}
	d := Generate("ft4", 5, 500, 2, GenOptions{DesyncWeight: 50})
	found := false
	for _, st := range d.Steps {
		if st.Op == OpDesyncParams {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("DesyncWeight 50 over 500 steps emitted no desync-params op")
	}
}
