// The failure minimizer: classic ddmin (Zeller's delta debugging) over
// campaign steps. Because every step is self-contained (its Pick seeds a
// private RNG), any subsequence of a failing campaign is itself a valid
// campaign — the structural property ddmin needs. The result is a
// 1-minimal failing campaign small enough to read, commit, and replay as
// a regression test.

package storm

import (
	"context"
	"fmt"
)

// MinimizeBudget is the default bound on campaign re-runs during
// minimization.
const MinimizeBudget = 400

// minState carries the shrink loop's bookkeeping.
type minState struct {
	base   *Campaign
	oracle string // the failure must stay on this oracle to count
	budget int
	runs   int
	logf   func(format string, args ...any)
}

// Minimize shrinks a failing campaign to a smaller one that still fails
// the same oracle. It first re-runs the campaign to confirm and locate
// the failure, truncates everything past the failing step, then applies
// ddmin followed by a 1-minimal single-removal pass. The run budget
// bounds total work; on exhaustion the best reduction so far is
// returned. A campaign that does not fail yields an error.
func Minimize(ctx context.Context, c *Campaign, budget int, logf func(format string, args ...any)) (*Campaign, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if budget <= 0 {
		budget = MinimizeBudget
	}
	res, err := Run(ctx, c, logf)
	if err != nil {
		return nil, err
	}
	if res.Failure == nil {
		return nil, fmt.Errorf("storm: campaign passes all oracles; nothing to minimize")
	}
	m := &minState{base: c, oracle: res.Failure.Oracle, budget: budget, runs: 1, logf: logf}

	// Steps past the failing one never executed; drop them for free.
	last := res.Failure.Step
	if last < 0 || last >= len(c.Steps) {
		last = len(c.Steps) - 1
	}
	steps := append([]Step(nil), c.Steps[:last+1]...)
	logf("storm: minimizing %d steps failing oracle %s", len(steps), m.oracle)

	steps, err = m.ddmin(ctx, steps)
	if err != nil {
		return nil, err
	}
	steps, err = m.oneMinimal(ctx, steps)
	if err != nil {
		return nil, err
	}
	logf("storm: minimized to %d steps in %d runs", len(steps), m.runs)
	out := *c
	out.Steps = steps
	return &out, nil
}

// fails re-runs the base campaign with the candidate step sequence and
// reports whether it still fails the original oracle.
func (m *minState) fails(ctx context.Context, steps []Step) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if m.runs >= m.budget {
		return false, nil // budget exhausted: treat as passing, keep best-so-far
	}
	m.runs++
	cand := *m.base
	cand.Steps = steps
	res, err := Run(ctx, &cand, func(string, ...any) {})
	if err != nil {
		return false, err
	}
	return res.Failure != nil && res.Failure.Oracle == m.oracle, nil
}

// ddmin is the classic algorithm: split into n chunks, try each chunk
// alone, then each complement; on success recurse with the reduction,
// otherwise double the granularity until it exceeds the sequence length.
func (m *minState) ddmin(ctx context.Context, steps []Step) ([]Step, error) {
	n := 2
	for len(steps) >= 2 {
		chunks := split(steps, n)
		reduced := false

		for _, ch := range chunks {
			ok, err := m.fails(ctx, ch)
			if err != nil {
				return nil, err
			}
			if ok {
				steps, n, reduced = ch, 2, true
				break
			}
		}
		if reduced {
			continue
		}

		for i := range chunks {
			comp := complement(chunks, i)
			ok, err := m.fails(ctx, comp)
			if err != nil {
				return nil, err
			}
			if ok {
				steps, reduced = comp, true
				n = maxInt(n-1, 2)
				break
			}
		}
		if reduced {
			continue
		}

		if n >= len(steps) {
			break
		}
		n = minInt(n*2, len(steps))
	}
	return steps, nil
}

// oneMinimal removes single steps until no single removal still fails.
func (m *minState) oneMinimal(ctx context.Context, steps []Step) ([]Step, error) {
	for i := 0; i < len(steps) && len(steps) > 1; {
		cand := make([]Step, 0, len(steps)-1)
		cand = append(cand, steps[:i]...)
		cand = append(cand, steps[i+1:]...)
		ok, err := m.fails(ctx, cand)
		if err != nil {
			return nil, err
		}
		if ok {
			steps = cand // retry same index: a new step shifted into it
		} else {
			i++
		}
	}
	return steps, nil
}

// split partitions steps into n non-empty contiguous chunks.
func split(steps []Step, n int) [][]Step {
	if n > len(steps) {
		n = len(steps)
	}
	chunks := make([][]Step, 0, n)
	size := len(steps) / n
	rem := len(steps) % n
	at := 0
	for i := 0; i < n; i++ {
		sz := size
		if i < rem {
			sz++
		}
		chunks = append(chunks, steps[at:at+sz])
		at += sz
	}
	return chunks
}

// complement concatenates every chunk except the i-th.
func complement(chunks [][]Step, i int) []Step {
	var out []Step
	for j, ch := range chunks {
		if j != i {
			out = append(out, ch...)
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
