package storm

import (
	"context"
	"testing"
)

// TestMinimizeKnownFailure seeds a campaign with noise around one
// desync-params step and checks ddmin strips everything else: the
// minimized campaign has at most a handful of steps (this one shrinks to
// exactly the desync step), still fails the same oracle, and stays
// within the run budget.
func TestMinimizeKnownFailure(t *testing.T) {
	noise := Generate("ft4", 3, 12, 2, GenOptions{})
	c := &Campaign{Version: Version, Topo: "ft4", MBits: 64, Probes: 2, Seed: 3}
	c.Steps = append(c.Steps, noise.Steps[:8]...)
	c.Steps = append(c.Steps, Step{Op: OpDesyncParams, Pick: 7})
	c.Steps = append(c.Steps, noise.Steps[8:]...)

	min, err := Minimize(context.Background(), c, 100, t.Logf)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if len(min.Steps) > 10 {
		t.Fatalf("minimized campaign still has %d steps", len(min.Steps))
	}
	hasDesync := false
	for _, st := range min.Steps {
		if st.Op == OpDesyncParams {
			hasDesync = true
		}
	}
	if !hasDesync {
		t.Fatalf("minimized campaign lost the culprit step: %+v", min.Steps)
	}
	res, err := Run(context.Background(), min, nil)
	if err != nil {
		t.Fatalf("replay minimized: %v", err)
	}
	if res.Failure == nil || res.Failure.Oracle != OracleNoFalsePositive {
		t.Fatalf("minimized campaign failure = %v, want %s", res.Failure, OracleNoFalsePositive)
	}
}

// TestMinimizePassingCampaign: nothing to shrink is an error, not a
// zero-step campaign.
func TestMinimizePassingCampaign(t *testing.T) {
	c := Generate("ft4", 1, 10, 1, GenOptions{})
	if _, err := Minimize(context.Background(), c, 50, nil); err == nil {
		t.Fatal("Minimize accepted a passing campaign")
	}
}

func TestSplitComplement(t *testing.T) {
	steps := make([]Step, 7)
	for i := range steps {
		steps[i].Pick = int64(i)
	}
	chunks := split(steps, 3)
	if len(chunks) != 3 {
		t.Fatalf("split produced %d chunks", len(chunks))
	}
	total := 0
	for _, ch := range chunks {
		if len(ch) == 0 {
			t.Fatal("split produced an empty chunk")
		}
		total += len(ch)
	}
	if total != len(steps) {
		t.Fatalf("split covers %d of %d steps", total, len(steps))
	}
	comp := complement(chunks, 1)
	if len(comp)+len(chunks[1]) != len(steps) {
		t.Fatalf("complement of chunk 1 has %d steps", len(comp))
	}
	if split(steps, 100)[0][0].Pick != 0 {
		t.Fatal("oversized n did not clamp")
	}
}
