// The invariant oracles. After every campaign step the engine drives a
// probe phase and checks six properties; violating any one halts the
// campaign with a Failure the minimizer can shrink. Each oracle pins down
// one subsystem (the DESIGN.md table spells the mapping out):
//
//	one-verdict        snapshot publication (core.Handle / core.Snapshot)
//	cache-coherent     the verdict cache (core.VerdictCache epoch invalidation)
//	no-false-positive  path-table construction + Algorithm 3 verification
//	localization       Algorithm 4 PathInfer / FaultySwitch
//	counter-fold       report pipeline (Sender → Collector worker pool)
//	no-leak            lifecycle contract (ctx-governed Run/Close paths)

package storm

import "fmt"

// Oracle names, as written into failure reports and campaign artifacts.
const (
	// OracleOneVerdict: a report verified twice against one pinned
	// snapshot yields the same verdict — including while Compact/Swap
	// maintenance runs concurrently.
	OracleOneVerdict = "one-verdict"
	// OracleCacheCoherent: a verdict served by the equivalence-class cache
	// is identical (OK, Reason, and Matched entry) to what the uncached
	// Snapshot.Verify computes — checked differentially on every probe
	// report and by replaying a sample ring of cached verdicts after each
	// step, across Compact/Swap/ApplyDelta epoch changes.
	OracleCacheCoherent = "cache-coherent"
	// OracleNoFalsePositive: a probe whose actual path equals its
	// intended path never produces a failing report; on a fault-free
	// prefix that is every probe.
	OracleNoFalsePositive = "no-false-positive"
	// OracleLocalization: with 64-bit tags and a single injected fault,
	// every deviated-and-reported probe is detected, localization
	// recovers the ground-truth path, and the blamed switch is the
	// divergence switch.
	OracleLocalization = "localization"
	// OracleCounterFold: every report the fabric emitted is accounted
	// for — collector shard counters fold exactly to the sent count and
	// the handler invocation count, with zero malformed datagrams.
	OracleCounterFold = "counter-fold"
	// OracleNoLeak: after collector teardown (mid-campaign restart or
	// final shutdown) the goroutine count returns to the pre-deployment
	// baseline.
	OracleNoLeak = "no-leak"
)

// Failure is one oracle violation: the step it surfaced at, the oracle it
// violated, and a human-readable account. It halts the campaign — state
// after a violated invariant proves nothing further.
type Failure struct {
	Step   int    `json:"step"`
	Oracle string `json:"oracle"`
	Detail string `json:"detail"`
}

func (f *Failure) String() string {
	return fmt.Sprintf("step %d: oracle %s: %s", f.Step, f.Oracle, f.Detail)
}

func failf(step int, oracle, format string, args ...any) *Failure {
	return &Failure{Step: step, Oracle: oracle, Detail: fmt.Sprintf(format, args...)}
}
