// Package storm is VeriDP's network-state fuzzing harness. It generates
// seeded, deterministic campaigns of interleaved control- and data-plane
// actions — rule churn, failover reroutes, the §2.2 fault matrix,
// sampling-rate shifts, monitor/collector restarts, snapshot maintenance —
// runs them against a live sim.Env + core.Handle deployment, and checks a
// set of invariant oracles after every step (see oracles.go). "Consistent
// SDNs through Network State Fuzzing" (Shukla et al.) is the motivating
// observation: randomized state fuzzing finds control/data-plane gaps that
// curated scenarios miss.
//
// Determinism contract: a Campaign fully determines a run. Every step
// carries its own Pick seed and the engine derives a private RNG from it,
// so any subsequence of a campaign's steps replays exactly the same way —
// the property the delta-debugging minimizer (minimize.go) relies on.
// The campaign-level Seed is generator provenance only; replay never
// reads it.
package storm

import (
	"encoding/json"
	"fmt"
)

// Op enumerates the campaign actions.
type Op uint8

const (
	// OpChurnInstall routes a fresh synthetic /32 prefix network-wide
	// through the controller (both planes; the path table goes stale by
	// design — synthetic prefixes never collide with probe headers).
	OpChurnInstall Op = iota
	// OpChurnDelete removes one previously churned route from both planes.
	OpChurnDelete
	// OpReroute emulates a link flap's control-plane reaction: pin one
	// host pair onto its second equal-cost path and rebuild the table.
	OpReroute
	// OpWrongPort rewires a random physical rule to a wrong port (§2.2
	// "switch software bugs").
	OpWrongPort
	// OpBlackhole turns a random physical rule into a drop.
	OpBlackhole
	// OpEvict deletes a random rule from the physical table only.
	OpEvict
	// OpOverflow overflows a random switch's hardware table (Pica8 bug).
	OpOverflow
	// OpMissedRule installs a path-deviating rule that the data plane
	// silently drops (§2.2 "lack of data plane acknowledgement"): the rule
	// exists logically only, so the intended path moves and the packets do
	// not.
	OpMissedRule
	// OpPriorityLoss installs a path-deviating rule whose physical copy
	// loses its priority (the HP ProCurve behavior of §2.2).
	OpPriorityLoss
	// OpSampleShift swaps every switch's sampler (SampleAll or a flow
	// sampler at a random interval).
	OpSampleShift
	// OpCompact garbage-collects the writer table under shadow-verifier
	// stress.
	OpCompact
	// OpSwap rebuilds the table wholesale under shadow-verifier stress.
	OpSwap
	// OpRestartMonitor drops the verification handle and re-derives it
	// from the controller's logical state.
	OpRestartMonitor
	// OpRestartCollector drains, stops, and restarts the UDP collector,
	// checking counter folds and goroutine leaks across the boundary.
	OpRestartCollector
	// OpDesyncParams is the harness self-test: it changes the data plane's
	// tag parameters behind the monitor's back, which deterministically
	// trips the no-false-positive oracle. The generator never emits it
	// unless asked (GenOptions.DesyncWeight); it exists so the failure
	// path — campaign file, minimizer, regression replay — stays
	// exercised end to end.
	OpDesyncParams

	numOps // count sentinel; keep last
)

// opNames is the wire vocabulary of the campaign file format.
var opNames = [numOps]string{
	OpChurnInstall:     "churn-install",
	OpChurnDelete:      "churn-delete",
	OpReroute:          "reroute",
	OpWrongPort:        "wrong-port",
	OpBlackhole:        "blackhole",
	OpEvict:            "evict",
	OpOverflow:         "overflow",
	OpMissedRule:       "missed-rule",
	OpPriorityLoss:     "priority-loss",
	OpSampleShift:      "sample-shift",
	OpCompact:          "compact",
	OpSwap:             "swap",
	OpRestartMonitor:   "restart-monitor",
	OpRestartCollector: "restart-collector",
	OpDesyncParams:     "desync-params",
}

// String names the op.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// ParseOp resolves a campaign-file op name.
func ParseOp(s string) (Op, error) {
	for o, name := range opNames {
		if s == name {
			return Op(o), nil
		}
	}
	return 0, fmt.Errorf("storm: unknown op %q", s)
}

// MarshalJSON writes the op as its name.
func (o Op) MarshalJSON() ([]byte, error) {
	if int(o) >= len(opNames) {
		return nil, fmt.Errorf("storm: cannot encode op %d", uint8(o))
	}
	return json.Marshal(o.String())
}

// UnmarshalJSON reads an op name.
func (o *Op) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	op, err := ParseOp(s)
	if err != nil {
		return err
	}
	*o = op
	return nil
}

// Step is one campaign action. Pick seeds the step's private RNG: every
// random choice the action and its probe phase make derives from Pick
// alone, never from shared state, so steps replay independently.
type Step struct {
	Op   Op    `json:"op"`
	Pick int64 `json:"pick"`
}

// Campaign is the versioned, replayable unit of fuzzing work.
type Campaign struct {
	Version int    `json:"version"`
	Topo    string `json:"topo"`   // ft4 | ft6 | figure5
	MBits   int    `json:"mbits"`  // Bloom tag size the deployment runs
	Probes  int    `json:"probes"` // probe injections after every step
	Seed    int64  `json:"seed"`   // generator provenance; unused on replay
	Steps   []Step `json:"steps"`
}
