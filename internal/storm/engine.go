// The campaign engine. One Run deploys a live environment — emulated
// fabric with a fake clock, controller behind a faults.FaultyInstaller,
// core.Handle snapshot publication, and a real UDP Sender → Collector
// pipeline — then executes the campaign step by step: apply the step's
// action, drive a probe phase, check the oracles, wait for the collector
// to drain. Everything observable is deterministic: actions and probes
// draw only from the step's private Pick RNG, the clock only advances
// when the engine says so, and the async collector side feeds counters
// (folded by the counter-fold oracle), never the verdict trace.

package storm

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"veridp/internal/bloom"
	"veridp/internal/core"
	"veridp/internal/dataplane"
	"veridp/internal/faults"
	"veridp/internal/flowtable"
	"veridp/internal/packet"
	"veridp/internal/report"
	"veridp/internal/sim"
	"veridp/internal/topo"
	"veridp/internal/traffic"
)

// drainTimeout bounds the wait for in-flight UDP reports; on loopback a
// healthy pipeline drains in microseconds, so hitting this is itself a
// counter-fold failure, not a reason to wait longer.
const drainTimeout = 10 * time.Second

// syntheticBase is where churned /32 prefixes are drawn from
// (198.18.0.0/15, the benchmarking range) — guaranteed disjoint from the
// 10/8 host addressing, so churn never changes a probe's forwarding.
const syntheticBase = 0xc6120000

// Result summarizes one campaign run.
type Result struct {
	Steps     int      // steps executed (≤ len(campaign.Steps) on failure)
	Probes    int      // probe packets injected
	Reports   int      // tag reports those probes produced
	Verified  int      // reports that verified OK (synchronous pass)
	Violated  int      // reports that failed verification
	Localized int      // failed reports PathInfer recovered a path for
	Failure   *Failure // first oracle violation, nil on a clean run
	Trace     []byte   // deterministic per-report verdict trace
}

// ruleKey identifies one physical rule.
type ruleKey struct {
	sw topo.SwitchID
	id uint64
}

// churnRoute remembers one synthetic route's installed rule IDs.
type churnRoute struct {
	ids map[topo.SwitchID]uint64
}

// relaySink forwards fabric reports to the current UDP sender and counts
// them — the ground truth the counter-fold oracle measures against.
type relaySink struct {
	mu   sync.Mutex
	sent uint64               // guarded by mu
	dst  dataplane.ReportSink // guarded by mu
}

func (s *relaySink) HandleReport(r *packet.Report) {
	s.mu.Lock()
	s.sent++
	dst := s.dst
	s.mu.Unlock()
	if dst != nil {
		dst.HandleReport(r)
	}
}

func (s *relaySink) setDst(dst dataplane.ReportSink) {
	s.mu.Lock()
	s.dst = dst
	s.mu.Unlock()
}

func (s *relaySink) Sent() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sent
}

// engine is the mutable state of one campaign run.
type engine struct {
	c    *Campaign
	logf func(format string, args ...any)

	env    *sim.Env
	faulty *faults.FaultyInstaller
	relay  *relaySink
	now    time.Time // fake clock; advances once per probe
	mesh   []traffic.PingPair

	mu     sync.Mutex
	handle *core.Handle // guarded by mu; re-seated by restart-monitor while collector workers read it

	collector *report.Collector
	sender    *report.Sender
	colCancel context.CancelFunc
	colDone   chan error
	// Counters of previous collector incarnations, accumulated at restart.
	receivedPrev  uint64
	malformedPrev uint64
	handled       atomic.Uint64 // collector handler invocations, all incarnations
	asyncViolated atomic.Uint64 // failing verdicts seen by the async path

	baseGoroutines int

	// Campaign ground truth.
	churn       []churnRoute
	missing     map[ruleKey]bool       // rules absent from the physical plane
	injected    map[topo.SwitchID]bool // switches carrying an injected fault
	faultEvents int
	nextIP      uint32
	rerouteN    int
	deviantN    int
	lastReport  *packet.Report

	// Verdict-cache plumbing: probeCache serves the synchronous probe
	// phase (the engine goroutine is its single writer); the scratch
	// single-report batch keeps VerifyBatch on the deterministic path.
	// coSamples is the cache-coherence oracle's replay ring: cached
	// verdicts pinned with the snapshot that produced them, re-checked
	// against uncached Verify after every step.
	probeCache *core.VerdictCache
	cacheIn    [1]packet.Report
	cacheOut   [1]core.Verdict
	coSamples  [coSampleRing]cacheSample
	coNext     int

	res   *Result
	trace bytes.Buffer
}

// coSampleRing bounds how many cached verdicts the coherence oracle
// retains; old entries (and the snapshots they pin) roll off.
const coSampleRing = 32

// cacheSample is one cached verdict with everything needed to recompute
// it: the exact snapshot it was served under and a copy of the report.
type cacheSample struct {
	snap *core.Snapshot
	rep  packet.Report
	v    core.Verdict
}

// Run executes the campaign. The returned error is harness trouble
// (bad campaign, socket failure, cancelled ctx); an oracle violation is
// not an error — it comes back as Result.Failure with the Result's
// counters and trace intact.
func Run(ctx context.Context, c *Campaign, logf func(format string, args ...any)) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	e := &engine{
		c:        c,
		logf:     logf,
		relay:    &relaySink{},
		missing:  map[ruleKey]bool{},
		injected: map[topo.SwitchID]bool{},
		nextIP:   syntheticBase,
		res:      &Result{},
	}
	if err := e.setup(ctx); err != nil {
		return nil, err
	}

	var fail *Failure
	for i, st := range c.Steps {
		if err := ctx.Err(); err != nil {
			e.abandon()
			return nil, err
		}
		f, err := e.step(ctx, i, st)
		if err != nil {
			e.abandon()
			return nil, err
		}
		e.res.Steps++
		if f != nil {
			fail = f
			break
		}
	}

	tfail, err := e.teardown()
	if err != nil {
		return nil, err
	}
	if fail == nil {
		fail = tfail
	}
	e.res.Failure = fail
	e.res.Trace = e.trace.Bytes()
	return e.res, nil
}

// setup deploys the environment and starts the report pipeline.
func (e *engine) setup(ctx context.Context) error {
	e.baseGoroutines = runtime.NumGoroutine()
	e.now = time.Unix(100_000, 0)
	params := bloom.Params{MBits: e.c.MBits}
	opts := []dataplane.Option{
		dataplane.WithReportSink(e.relay),
		// The engine is the only writer of e.now and injection is
		// synchronous, so the closure is race-free.
		dataplane.WithClock(func() time.Time { return e.now }),
	}
	var (
		env *sim.Env
		err error
	)
	switch e.c.Topo {
	case "ft4":
		env, err = sim.FatTreeEnv(4, params, opts...)
	case "ft6":
		env, err = sim.FatTreeEnv(6, params, opts...)
	case "figure5":
		env, err = sim.Figure5Env(params, opts...)
	default:
		err = fmt.Errorf("storm: unknown topology %q", e.c.Topo)
	}
	if err != nil {
		return err
	}
	e.env = env
	e.faulty = &faults.FaultyInstaller{Inner: &dataplane.FabricInstaller{Fabric: env.Fabric}}
	env.Ctrl.SetInstaller(e.faulty)
	e.setHandle(core.NewHandle(env.Build()))
	e.probeCache = core.NewVerdictCache(0)
	e.mesh = traffic.PingMesh(env.Net)
	if len(e.mesh) == 0 {
		return fmt.Errorf("storm: topology %q has no probe pairs", e.c.Topo)
	}
	return e.startCollector(ctx)
}

// currentHandle is the monitor the collector workers verify against; the
// restart-monitor action re-seats it.
func (e *engine) currentHandle() *core.Handle {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.handle
}

func (e *engine) setHandle(h *core.Handle) {
	e.mu.Lock()
	e.handle = h
	e.mu.Unlock()
}

// batchHandler builds one collector worker's report handler. It exercises
// the batched, cached verify path concurrently with the engine's
// maintenance ops — each worker owns a private verdict cache, exactly the
// production Monitor arrangement; its verdicts feed counters only — the
// deterministic trace comes from the synchronous probe phase.
func (e *engine) batchHandler() func([]packet.Report) {
	cache := core.NewVerdictCache(0)
	var verdicts []core.Verdict
	return func(batch []packet.Report) {
		e.handled.Add(uint64(len(batch)))
		if cap(verdicts) < len(batch) {
			verdicts = make([]core.Verdict, len(batch))
		}
		out := verdicts[:len(batch)]
		e.currentHandle().Current().VerifyBatch(cache, batch, out)
		for i := range out {
			if !out[i].OK {
				e.asyncViolated.Add(1)
			}
		}
	}
}

// startCollector boots one collector incarnation and points the relay's
// UDP sender at it.
func (e *engine) startCollector(ctx context.Context) error {
	col, err := report.NewCollector("127.0.0.1:0", e.batchHandler, nil, report.WithWorkers(2))
	if err != nil {
		return err
	}
	snd, err := report.NewSender(col.Addr().String())
	if err != nil {
		col.Close()
		return err
	}
	cctx, cancel := context.WithCancel(ctx)
	// chan: buffered 1 — Run's exit status parks here even if stopCollector times out and never receives
	done := make(chan error, 1)
	go func() { done <- col.Run(cctx) }()
	e.collector, e.sender, e.colCancel, e.colDone = col, snd, cancel, done
	e.relay.setDst(snd)
	return nil
}

// stopCollector detaches the relay, cancels the incarnation, waits for
// Run to return (workers joined ⇒ handler count settled), and folds the
// incarnation's counters into the cumulative totals.
func (e *engine) stopCollector() error {
	e.relay.setDst(nil)
	e.colCancel()
	select {
	case <-e.colDone:
	case <-time.After(drainTimeout):
		return fmt.Errorf("storm: collector did not stop within %v", drainTimeout)
	}
	e.sender.Close()
	e.receivedPrev += e.collector.Received()
	e.malformedPrev += e.collector.Malformed()
	e.collector, e.sender = nil, nil
	return nil
}

// abandon tears the pipeline down after a harness error, best-effort.
func (e *engine) abandon() {
	if e.collector != nil {
		_ = e.stopCollector()
	}
}

// step applies one campaign step and runs the oracle battery.
func (e *engine) step(ctx context.Context, i int, st Step) (*Failure, error) {
	rng := rand.New(rand.NewSource(st.Pick))
	f, err := e.apply(ctx, i, st.Op, rng)
	if f != nil || err != nil {
		return f, err
	}
	if f, err := e.probePhase(i, rng); f != nil || err != nil {
		return f, err
	}
	if f := e.cacheCoherenceOracle(i); f != nil {
		return f, nil
	}
	return e.drain(i), nil
}

// cacheCoherenceOracle replays the sample ring: every verdict the cache
// ever served must be recomputable, identically, by the uncached Verify
// against the exact snapshot that served it — no matter how many
// Compact/Swap/ApplyDelta publications (epoch bumps) have happened since.
// Snapshots are immutable, so any divergence means the cache associated a
// verdict with the wrong key or the wrong epoch.
func (e *engine) cacheCoherenceOracle(i int) *Failure {
	for idx := range e.coSamples {
		s := &e.coSamples[idx]
		if s.snap == nil {
			continue
		}
		if got := s.snap.Verify(&s.rep); got != s.v {
			return failf(i, OracleCacheCoherent,
				"replayed report %v: cached verdict ok=%t reason=%v, uncached recompute ok=%t reason=%v (epoch %d)",
				&s.rep, s.v.OK, s.v.Reason, got.OK, got.Reason, s.snap.Epoch())
		}
	}
	return nil
}

// apply dispatches one action.
func (e *engine) apply(ctx context.Context, i int, op Op, rng *rand.Rand) (*Failure, error) {
	switch op {
	case OpChurnInstall:
		return nil, e.churnInstall(rng)
	case OpChurnDelete:
		return nil, e.churnDelete(rng)
	case OpReroute:
		return nil, e.reroute(rng)
	case OpWrongPort, OpBlackhole, OpEvict:
		return nil, e.randomRuleFault(op, rng)
	case OpOverflow:
		return nil, e.overflow(rng)
	case OpMissedRule:
		return nil, e.deviantInstall(rng, false)
	case OpPriorityLoss:
		return nil, e.deviantInstall(rng, true)
	case OpSampleShift:
		e.sampleShift(rng)
		return nil, nil
	case OpCompact:
		h := e.currentHandle()
		return e.stressMaintenance(i, h.Compact), nil
	case OpSwap:
		h := e.currentHandle()
		return e.stressMaintenance(i, func() {
			h.Swap(func(*core.PathTable) *core.PathTable { return e.env.Build() })
		}), nil
	case OpRestartMonitor:
		e.setHandle(core.NewHandle(e.env.Build()))
		return nil, nil
	case OpRestartCollector:
		return e.restartCollector(ctx, i)
	case OpDesyncParams:
		e.desyncParams()
		return nil, nil
	default:
		return nil, fmt.Errorf("storm: unknown op %d", uint8(op))
	}
}

// rebuild republishes the table from the controller's live logical state.
// Actions that change a probe-relevant logical config call it, mirroring
// the interception proxy keeping the monitor in sync with FlowMods.
func (e *engine) rebuild() {
	e.currentHandle().Swap(func(*core.PathTable) *core.PathTable { return e.env.Build() })
}

// churnInstall routes one fresh synthetic /32 through the controller.
func (e *engine) churnInstall(rng *rand.Rand) error {
	hosts := e.env.Net.Hosts()
	h := hosts[pick(rng, len(hosts))]
	ip := e.nextIP
	e.nextIP++
	ids, err := e.env.Ctrl.RoutePrefix(flowtable.Prefix{IP: ip, Len: 32}, h.Attach)
	if err != nil {
		return err
	}
	e.churn = append(e.churn, churnRoute{ids: ids})
	return nil
}

// churnDelete removes one churned route whose rules are all still
// physically present (RemoveRule on an evicted or never-installed rule
// would error — those routes stay as permanent inconsistencies).
func (e *engine) churnDelete(rng *rand.Rand) error {
	var cands []int
	for idx, cr := range e.churn {
		damaged := false
		for sw, id := range cr.ids {
			if e.missing[ruleKey{sw, id}] {
				damaged = true
				break
			}
		}
		if !damaged {
			cands = append(cands, idx)
		}
	}
	if len(cands) == 0 {
		return nil // nothing safely deletable: no-op
	}
	idx := cands[pick(rng, len(cands))]
	cr := e.churn[idx]
	sws := make([]topo.SwitchID, 0, len(cr.ids))
	for sw := range cr.ids {
		sws = append(sws, sw)
	}
	sort.Slice(sws, func(a, b int) bool { return sws[a] < sws[b] })
	for _, sw := range sws {
		if err := e.env.Ctrl.RemoveRule(sw, cr.ids[sw]); err != nil {
			return err
		}
	}
	e.churn = append(e.churn[:idx], e.churn[idx+1:]...)
	return nil
}

// reroute pins one host pair onto its second equal-cost path — the
// control plane's reaction to a link flap — on both planes, then rebuilds.
func (e *engine) reroute(rng *rand.Rand) error {
	if e.rerouteN >= 9000 {
		return nil // priority headroom exhausted; keep the run deterministic
	}
	hosts := e.env.Net.Hosts()
	for attempt := 0; attempt < 16; attempt++ {
		src := hosts[pick(rng, len(hosts))]
		dst := hosts[pick(rng, len(hosts))]
		if src == dst || src.Attach.Switch == dst.Attach.Switch {
			continue
		}
		paths, err := e.env.Net.ShortestPaths(src.Attach, dst.Attach, 2)
		if err != nil || len(paths) < 2 {
			continue
		}
		m := flowtable.Match{
			SrcPrefix: flowtable.Prefix{IP: src.IP, Len: 32},
			DstPrefix: flowtable.Prefix{IP: dst.IP, Len: 32},
		}
		prio := uint16(20000 + e.rerouteN)
		e.rerouteN++
		if _, err := e.env.Ctrl.InstallPathRules(paths[1], m, prio); err != nil {
			return err
		}
		e.rebuild()
		return nil
	}
	return nil // no reroutable pair found: no-op
}

// randomRuleFault applies one of the physical-only §2.2 faults to a
// random installed rule.
func (e *engine) randomRuleFault(op Op, rng *rand.Rand) error {
	sw, id, ok := faults.RandomRule(e.env.Fabric, rng)
	if !ok {
		return nil
	}
	var err error
	switch op {
	case OpWrongPort:
		_, err = faults.WrongPort(e.env.Fabric, sw, id, rng)
	case OpBlackhole:
		_, err = faults.Blackhole(e.env.Fabric, sw, id)
	case OpEvict:
		_, err = faults.Evict(e.env.Fabric, sw, id)
		if err == nil {
			e.missing[ruleKey{sw, id}] = true
		}
	default:
		return fmt.Errorf("storm: op %v is not a rule fault", op)
	}
	if err != nil {
		return err
	}
	e.injected[sw] = true
	e.faultEvents++
	return nil
}

// overflow drops the tail of a random switch's table into the "software
// table" (rebased priorities), keeping the rebase small enough to stay
// feasible against the switch's priority floor.
func (e *engine) overflow(rng *rand.Rand) error {
	ids := make([]topo.SwitchID, 0, len(e.env.Fabric.Switches()))
	for sw := range e.env.Fabric.Switches() {
		ids = append(ids, sw)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	sw := ids[pick(rng, len(ids))]
	rules := e.env.Fabric.Switch(sw).Config.Table.Len()
	if rules < 2 {
		return nil
	}
	over := 1 + pick(rng, minInt(8, rules-1))
	injs, err := faults.TableOverflow(e.env.Fabric, sw, rules-over)
	if err != nil {
		return nil // rebase impossible against this switch's priority floor: inert
	}
	if len(injs) > 0 {
		e.injected[sw] = true
		e.faultEvents++
	}
	return nil
}

// deviantInstall drives a targeted §2.2 installation fault through the
// controller: pick a probe pair, install a high-priority rule at one hop
// of its intended path steering it to a different port, and arm the
// FaultyInstaller so the physical copy is dropped (missed rule) or
// degraded to priority zero (priority loss). Either way the intended path
// moves and the data plane stays put — a deviation the oracles must see.
func (e *engine) deviantInstall(rng *rand.Rand, degrade bool) error {
	if e.deviantN >= 9000 {
		return nil
	}
	for attempt := 0; attempt < 16; attempt++ {
		pair := e.mesh[pick(rng, len(e.mesh))]
		src := e.env.Net.Host(pair.SrcHost)
		dst := e.env.Net.Host(pair.DstHost)
		var intended topo.Path
		e.currentHandle().Inspect(func(pt *core.PathTable) {
			intended = pt.IntendedPath(src.Attach, pair.Header)
		})
		if len(intended) == 0 {
			continue
		}
		hop := intended[pick(rng, len(intended))]
		if hop.Out == topo.DropPort {
			continue
		}
		var alts []topo.PortID
		for _, p := range e.env.Net.Switch(hop.Switch).Ports() {
			if p != hop.Out {
				alts = append(alts, p)
			}
		}
		if len(alts) == 0 {
			continue
		}
		alt := alts[pick(rng, len(alts))]
		r := flowtable.Rule{
			Priority: uint16(30000 + e.deviantN),
			Match: flowtable.Match{
				InPort:    hop.In,
				SrcPrefix: flowtable.Prefix{IP: src.IP, Len: 32},
				DstPrefix: flowtable.Prefix{IP: dst.IP, Len: 32},
			},
			Action:  flowtable.ActOutput,
			OutPort: alt,
		}
		e.deviantN++
		if degrade {
			e.faulty.ForceDegrade = true
		} else {
			e.faulty.ForceDrop = true
		}
		id, err := e.env.Ctrl.InstallRule(hop.Switch, r)
		e.faulty.ForceDrop, e.faulty.ForceDegrade = false, false
		if err != nil {
			return err
		}
		if !degrade {
			e.missing[ruleKey{hop.Switch, id}] = true
		}
		e.injected[hop.Switch] = true
		e.faultEvents++
		e.rebuild()
		return nil
	}
	return nil
}

// sampleShift re-seats every switch's sampler.
func (e *engine) sampleShift(rng *rand.Rand) {
	intervals := []time.Duration{0, 5 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond}
	iv := intervals[pick(rng, len(intervals))]
	if iv == 0 {
		e.env.Fabric.SetSampler(func() dataplane.Sampler { return dataplane.SampleAll{} })
		return
	}
	e.env.Fabric.SetSampler(func() dataplane.Sampler { return dataplane.NewFlowSampler(iv) })
}

// desyncParams is the self-test action: shift the fabric's tag parameters
// while the monitor keeps the old ones. Every subsequent sampled probe
// folds its tag under different parameters than the table — a guaranteed,
// deterministic false positive.
func (e *engine) desyncParams() {
	alt := bloom.Params{MBits: 32}
	if e.c.MBits == 32 {
		alt = bloom.Params{MBits: 64}
	}
	e.env.Fabric.SetParams(alt)
}

// restartCollector drains the current incarnation, stops it (checking the
// cross-incarnation counter fold and the goroutine baseline), and boots a
// fresh one.
func (e *engine) restartCollector(ctx context.Context, i int) (*Failure, error) {
	if f := e.drain(i); f != nil {
		return f, nil
	}
	if err := e.stopCollector(); err != nil {
		return nil, err
	}
	if got, want := e.handled.Load(), e.receivedPrev; got != want {
		return failf(i, OracleCounterFold,
			"handler ran %d times, collectors received %d", got, want), nil
	}
	if f := e.checkGoroutines(i, "collector restart"); f != nil {
		return f, nil
	}
	return nil, e.startCollector(ctx)
}

// stressMaintenance runs a maintenance mutation while shadow verifiers
// hammer a pinned snapshot with the last report: their verdict must never
// change mid-flight — the one-verdict contract of snapshot publication.
func (e *engine) stressMaintenance(i int, mutate func()) *Failure {
	rep := e.lastReport
	if rep == nil {
		mutate()
		return nil
	}
	snap := e.currentHandle().Current()
	want := snap.Verify(rep)
	stop := make(chan struct{})
	var torn atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each shadow verifier owns a cache, so the hammering also
			// covers the cached probe path against concurrent publication.
			cache := core.NewVerdictCache(6)
			var in [1]packet.Report
			var out [1]core.Verdict
			in[0] = *rep
			for {
				//lint:ignore chanflow the shadow verifiers spin deliberately: yielding would shrink the race window the oracle exists to probe
				select {
				case _, open := <-stop:
					if !open { // stop is only ever closed
						return
					}
				default:
					snap.VerifyBatch(cache, in[:], out[:])
					if got := out[0]; got.OK != want.OK || got.Reason != want.Reason {
						torn.Store(true)
						return
					}
				}
			}
		}()
	}
	mutate()
	close(stop)
	wg.Wait()
	if torn.Load() {
		return failf(i, OracleOneVerdict,
			"pinned snapshot verdict changed during maintenance (want ok=%t reason=%v)",
			want.OK, want.Reason)
	}
	return nil
}

// probePhase injects Probes random mesh probes, verifies every report
// synchronously against one pinned snapshot, and applies the per-probe
// oracles.
func (e *engine) probePhase(i int, rng *rand.Rand) (*Failure, error) {
	h := e.currentHandle()
	snap := h.Current()
	probes := e.c.Probes
	if probes < 1 || probes > MaxProbes {
		probes = 4
	}
	for p := 0; p < probes; p++ {
		ping := e.mesh[pick(rng, len(e.mesh))]
		src := e.env.Net.Host(ping.SrcHost)
		var intended topo.Path
		h.Inspect(func(pt *core.PathTable) {
			intended = pt.IntendedPath(src.Attach, ping.Header)
		})
		e.now = e.now.Add(7 * time.Millisecond)
		res, err := e.env.Fabric.InjectFromHost(ping.SrcHost, ping.Header)
		if err != nil {
			return nil, err
		}
		deviated := !samePaths(intended, res.Path)
		e.res.Probes++
		violations := 0
		for ri, rep := range res.Reports {
			e.res.Reports++
			e.lastReport = rep
			// Cached arm: the engine goroutine is probeCache's single
			// writer, so the probe phase runs the same batch API the
			// collector workers use.
			e.cacheIn[0] = *rep
			snap.VerifyBatch(e.probeCache, e.cacheIn[:], e.cacheOut[:])
			v := e.cacheOut[0]
			again := snap.Verify(rep)
			if v.OK != again.OK || v.Reason != again.Reason || v.Matched != again.Matched {
				return failf(i, OracleCacheCoherent,
					"report %v: cached verdict ok=%t reason=%v diverges from uncached ok=%t reason=%v",
					rep, v.OK, v.Reason, again.OK, again.Reason), nil
			}
			e.coSamples[e.coNext] = cacheSample{snap: snap, rep: *rep, v: v}
			e.coNext = (e.coNext + 1) % coSampleRing
			fmt.Fprintf(&e.trace, "step=%04d %s>%s %s r%d ok=%t reason=%v\n",
				i, ping.SrcHost, ping.DstHost, res.Outcome, ri, v.OK, v.Reason)
			if v.OK {
				e.res.Verified++
				continue
			}
			e.res.Violated++
			violations++
			if !deviated {
				state := "unaffected probe"
				if e.faultEvents == 0 {
					state = "fault-free prefix"
				}
				return failf(i, OracleNoFalsePositive,
					"%s: %s>%s followed its intended path but report failed (%v)",
					state, ping.SrcHost, ping.DstHost, v.Reason), nil
			}
			if f := e.localizationOracle(i, snap, h, rep, intended, res); f != nil {
				return f, nil
			}
		}
		// Detection soundness: with 64-bit tags collisions are negligible,
		// so a deviated probe that reported must be caught.
		if deviated && len(res.Reports) > 0 && e.c.MBits >= 48 && violations == 0 {
			return failf(i, OracleLocalization,
				"deviated probe %s>%s produced %d reports, none failed verification (intended %v, actual %v)",
				ping.SrcHost, ping.DstHost, len(res.Reports), intended, res.Path), nil
		}
	}
	return nil, nil
}

// localizationOracle checks Algorithm 4 against ground truth on one
// failed report. The strong form — localization succeeds, recovers the
// actual path, and blames the divergence switch — is only guaranteed for
// a single injected fault (PathInfer's single-deviation model); past that
// it still counts recoveries for the Result.
func (e *engine) localizationOracle(i int, snap *core.Snapshot, h *core.Handle,
	rep *packet.Report, intended topo.Path, res *dataplane.Result) *Failure {
	var (
		blamed     topo.SwitchID
		candidates []topo.Path
		locOK      bool
	)
	h.Inspect(func(pt *core.PathTable) {
		blamed, candidates, locOK = pt.Localize(rep)
	})
	if locOK {
		e.res.Localized++
	}
	if snap.Params().MBits < 48 || e.faultEvents != 1 {
		return nil
	}
	expected, expOK := core.FaultySwitch(intended, res.Path)
	if !expOK {
		return nil // deviation not visible in this report's ground truth
	}
	if !locOK {
		return failf(i, OracleLocalization,
			"single fault at an injected switch, but PathInfer recovered no candidate for %v", rep)
	}
	if !containsPath(candidates, res.Path) {
		return failf(i, OracleLocalization,
			"candidate set misses the ground-truth path %v", res.Path)
	}
	if len(candidates) == 1 && blamed != expected {
		return failf(i, OracleLocalization,
			"blamed switch %d, ground truth diverges at %d", blamed, expected)
	}
	return nil
}

// drain waits until every report the fabric emitted has been counted by a
// collector incarnation — the progressive counter-fold oracle.
func (e *engine) drain(i int) *Failure {
	want := e.relay.Sent()
	deadline := time.Now().Add(drainTimeout)
	for {
		got := e.receivedPrev + e.malformedPrev
		if e.collector != nil {
			got += e.collector.Received() + e.collector.Malformed()
		}
		if got == want {
			break
		}
		if time.Now().After(deadline) {
			return failf(i, OracleCounterFold,
				"collector counted %d of %d sent reports after %v", got, want, drainTimeout)
		}
		time.Sleep(100 * time.Microsecond)
	}
	if m := e.malformedCount(); m != 0 {
		return failf(i, OracleCounterFold, "%d malformed datagrams on a loopback pipeline", m)
	}
	return nil
}

func (e *engine) malformedCount() uint64 {
	m := e.malformedPrev
	if e.collector != nil {
		m += e.collector.Malformed()
	}
	return m
}

// checkGoroutines waits for the goroutine count to settle back to the
// pre-deployment baseline.
func (e *engine) checkGoroutines(i int, when string) *Failure {
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= e.baseGoroutines {
			return nil
		}
		if time.Now().After(deadline) {
			return failf(i, OracleNoLeak,
				"%d goroutines after %s, baseline %d", n, when, e.baseGoroutines)
		}
		time.Sleep(time.Millisecond)
	}
}

// teardown drains and stops the pipeline, then checks the terminal folds:
// handler invocations equal received reports equal sent reports, and the
// goroutine count returns to baseline.
func (e *engine) teardown() (*Failure, error) {
	last := e.res.Steps
	if f := e.drain(last); f != nil {
		_ = e.stopCollector()
		return f, nil
	}
	if err := e.stopCollector(); err != nil {
		return nil, err
	}
	if got, want := e.receivedPrev, e.relay.Sent(); got != want {
		return failf(last, OracleCounterFold,
			"collectors received %d reports, fabric sent %d", got, want), nil
	}
	if got, want := e.handled.Load(), e.receivedPrev; got != want {
		return failf(last, OracleCounterFold,
			"handler ran %d times, collectors received %d", got, want), nil
	}
	if m := e.malformedPrev; m != 0 {
		return failf(last, OracleCounterFold, "%d malformed datagrams", m), nil
	}
	return e.checkGoroutines(last, "teardown"), nil
}

// samePaths reports hop-exact path equality.
func samePaths(a, b topo.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// containsPath reports whether any candidate equals the ground-truth path.
func containsPath(candidates []topo.Path, actual topo.Path) bool {
	for _, c := range candidates {
		if samePaths(c, actual) {
			return true
		}
	}
	return false
}

// pick draws a bounded index from the step RNG. The explicit range check
// is the sanitizing step for wire-derived Pick seeds: no campaign file
// content can drive an out-of-range index.
func pick(rng *rand.Rand, n int) int {
	i := rng.Intn(n)
	if i < 0 || i >= n {
		return 0
	}
	return i
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
