// Campaign file codec. Campaigns are versioned JSON documents so a failing
// sequence found by one build replays on another; Decode validates hard
// (unknown ops, absurd sizes, wrong version all error) because campaign
// files cross trust boundaries: CI artifacts, bug reports, fuzz corpora.

package storm

import (
	"encoding/json"
	"fmt"

	"veridp/internal/bloom"
)

const (
	// Version is the current campaign file format version.
	Version = 1
	// MaxSteps bounds a campaign's length; far above any useful run, it
	// exists so a malformed file cannot demand unbounded work.
	MaxSteps = 100_000
	// MaxProbes bounds the per-step probe count.
	MaxProbes = 64
)

// Topologies lists the deployments a campaign may target.
var Topologies = []string{"ft4", "ft6", "figure5"}

// Validate checks the campaign is well-formed and within bounds.
func (c *Campaign) Validate() error {
	if c.Version != Version {
		return fmt.Errorf("storm: campaign version %d, want %d", c.Version, Version)
	}
	known := false
	for _, t := range Topologies {
		if c.Topo == t {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("storm: unknown topology %q (have %v)", c.Topo, Topologies)
	}
	if err := (bloom.Params{MBits: c.MBits}).Validate(); err != nil {
		return fmt.Errorf("storm: %w", err)
	}
	if c.Probes < 1 || c.Probes > MaxProbes {
		return fmt.Errorf("storm: probes %d out of range [1,%d]", c.Probes, MaxProbes)
	}
	if len(c.Steps) > MaxSteps {
		return fmt.Errorf("storm: %d steps exceed the %d cap", len(c.Steps), MaxSteps)
	}
	for i, st := range c.Steps {
		if st.Op >= numOps {
			return fmt.Errorf("storm: step %d has invalid op %d", i, uint8(st.Op))
		}
	}
	return nil
}

// Encode renders a validated campaign as its canonical JSON document.
func Encode(c *Campaign) ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Decode parses and validates a campaign document. It never panics on
// malformed input — FuzzCampaignReplay holds it to that.
func Decode(data []byte) (*Campaign, error) {
	var c Campaign
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("storm: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
