// Checker lifecycle: every goroutine that loops on channel operations
// must have a reachable stop signal. It deepens goleak in two ways, both
// whole-program: `go f(...)` spawns of *named* functions are followed to
// their declarations (goleak only sees literals), and `for range ch`
// loops are only accepted when some loaded package actually closes that
// channel — a range over a never-closed channel parks the goroutine
// forever once senders stop.
//
// A loop is accepted if it can exit: a return, a break that leaves the
// loop, a select with a cancellation-shaped case (`<-ctx.Done()`-style,
// `<-time.After(...)`, or comma-ok), or — for range loops — a close() of
// the ranged channel class somewhere in the program.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Lifecycle reports goroutine channel loops with no shutdown path.
var Lifecycle = &Analyzer{
	Name:   "lifecycle",
	Doc:    "goroutine channel loops must have a stop signal: ctx.Done()/quit select case, a reachable close, or a return/break",
	Global: true,
	Run:    runLifecycle,
}

func runLifecycle(pass *Pass) {
	prog := pass.Prog
	reported := make(map[token.Pos]bool)
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if fl, ok := gs.Call.Fun.(*ast.FuncLit); ok {
					subst := paramSubst(pkg, gs.Call, pkg, fl.Type)
					checkSpawnedBody(pass, pkg, fl.Body, gs.Go, subst, reported)
					return true
				}
				for _, callee := range prog.resolveCall(pkg, gs.Call) {
					if callee.Decl != nil {
						subst := paramSubst(pkg, gs.Call, callee.Pkg, callee.Decl.Type)
						checkSpawnedBody(pass, callee.Pkg, callee.Decl.Body, gs.Go, subst, reported)
					}
				}
				return true
			})
		}
	}
}

// paramSubst maps the spawned function's parameter identities to the
// caller-side identities of the arguments at the spawn site, so a
// `close(ch)` in the spawner is credited to a `for range ch` over the
// corresponding parameter in the spawned body.
func paramSubst(callerPkg *Package, call *ast.CallExpr, calleePkg *Package, ft *ast.FuncType) map[string]string {
	subst := make(map[string]string)
	if ft.Params == nil {
		return subst
	}
	i := 0
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if i >= len(call.Args) {
				return subst
			}
			if obj, ok := calleePkg.Info.Defs[name].(*types.Var); ok {
				if argKey := chanKey(callerPkg, call.Args[i]); argKey != "" {
					subst[localKey(obj)] = argKey
				}
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	return subst
}

// checkSpawnedBody scans one goroutine body for channel loops with no
// stop path. Nested function literals are skipped — they are separate
// goroutines (or stored closures) with their own spawn sites.
func checkSpawnedBody(pass *Pass, pkg *Package, body *ast.BlockStmt, spawn token.Pos, subst map[string]string, reported map[token.Pos]bool) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.RangeStmt:
			checkRangeLoop(pass, pkg, n, spawn, subst, reported)
		case *ast.ForStmt:
			checkForLoop(pass, pkg, n, spawn, reported)
		}
		walkChildren(n, walk)
	}
	walk(body)
}

// checkRangeLoop handles `for ... := range ch`: it exits only when ch is
// closed or the body breaks out.
func checkRangeLoop(pass *Pass, pkg *Package, loop *ast.RangeStmt, spawn token.Pos, subst map[string]string, reported map[token.Pos]bool) {
	if !isChanType(typeOf(pkg, loop.X)) || reported[loop.For] {
		return
	}
	if loopCanExit(pkg, loop.Body, false) {
		return
	}
	if key := chanKey(pkg, loop.X); key != "" {
		if mapped, ok := subst[key]; ok {
			key = mapped
		}
		if pass.Prog.closedChans[key] {
			return
		}
	}
	reported[loop.For] = true
	pass.Reportf(loop.For,
		"goroutine (spawned at %s) ranges over a channel that no loaded package closes and the loop has no return/break — no shutdown path",
		pass.Prog.shortPos(spawn))
}

// checkForLoop handles `for { ... }` loops whose body performs channel
// operations; loops with a real condition terminate on their own.
func checkForLoop(pass *Pass, pkg *Package, loop *ast.ForStmt, spawn token.Pos, reported map[token.Pos]bool) {
	if loop.Cond != nil || reported[loop.For] || !hasChanOp(loop.Body) {
		return
	}
	if loopCanExit(pkg, loop.Body, true) {
		return
	}
	reported[loop.For] = true
	pass.Reportf(loop.For,
		"goroutine (spawned at %s) loops forever on channel operations with no ctx.Done()/quit select case and no return/break — no shutdown path",
		pass.Prog.shortPos(spawn))
}

// hasChanOp reports whether the loop body (excluding nested function
// literals) performs any channel send, receive, or select.
func hasChanOp(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if found {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
			return
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
				return
			}
		case *ast.RangeStmt:
			return // nested loops are checked on their own
		case *ast.ForStmt:
			return
		}
		walkChildren(n, walk)
	}
	walk(body)
	return found
}

// loopCanExit reports whether the loop body can leave the loop: a
// return, a break that targets this loop (plain break not swallowed by
// an inner select/switch/loop, or any labeled break/goto, which always
// jumps at least this far out), or — when selects count as signals — a
// select carrying a cancellation-shaped case.
func loopCanExit(pkg *Package, body *ast.BlockStmt, selectSignals bool) bool {
	exits := false
	// depth counts enclosing constructs that capture a plain `break`.
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		if exits {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ReturnStmt:
			exits = true
			return
		case *ast.BranchStmt:
			switch n.Tok {
			case token.BREAK:
				if n.Label != nil || depth == 0 {
					exits = true
				}
			case token.GOTO:
				exits = true
			}
			return
		case *ast.ForStmt, *ast.RangeStmt:
			walkChildren(n, func(c ast.Node) { walk(c, depth+1) })
			return
		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			walkChildren(n, func(c ast.Node) { walk(c, depth+1) })
			return
		case *ast.SelectStmt:
			if selectSignals && selectHasEscapeInfo(pkg.Info, n) {
				exits = true
				return
			}
			walkChildren(n, func(c ast.Node) { walk(c, depth+1) })
			return
		}
		walkChildren(n, func(c ast.Node) { walk(c, depth) })
	}
	walk(body, 0)
	return exits
}

// selectHasEscapeInfo is goleak's cancellation-case test, reusable from
// the whole-program pass (which has no per-package Pass.Info).
func selectHasEscapeInfo(info *types.Info, sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		var recv ast.Expr
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			recv = comm.X
		case *ast.AssignStmt:
			if len(comm.Lhs) == 2 {
				return true // comma-ok case observes closure
			}
			if len(comm.Rhs) == 1 {
				recv = comm.Rhs[0]
			}
		}
		ue, ok := recv.(*ast.UnaryExpr)
		if !ok || ue.Op != token.ARROW {
			continue
		}
		if isEscapeChannelInfo(info, ue.X) {
			return true
		}
	}
	return false
}

func isEscapeChannelInfo(info *types.Info, ch ast.Expr) bool {
	call, ok := ch.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name == "Done" {
		return true
	}
	if sel.Sel.Name == "After" {
		if obj, ok := info.Uses[sel.Sel].(*types.Func); ok {
			if pkg := obj.Pkg(); pkg != nil && pkg.Path() == "time" {
				return true
			}
		}
	}
	return false
}
