// Baseline support: a committed file of known findings so CI gates on
// *new* violations only while the backlog burns down. Entries match on
// (checker, file, message) — line numbers are deliberately excluded so
// unrelated edits above a known finding do not break the gate. Matching
// is multiset: three known findings cover at most three occurrences.

package lint

import (
	"bufio"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// BaselineEntry is one accepted finding.
type BaselineEntry struct {
	Checker string
	File    string // relative to the lint root, forward slashes
	Message string
}

func (e BaselineEntry) key() string {
	return e.Checker + "\t" + e.File + "\t" + e.Message
}

// ParseBaseline reads entries, one per line, tab-separated as
// "checker\tfile\tmessage". Blank lines and '#' comments are skipped.
func ParseBaseline(r io.Reader) ([]BaselineEntry, error) {
	var entries []BaselineEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("lint: baseline line %d: want checker<TAB>file<TAB>message, got %q", lineno, line)
		}
		entries = append(entries, BaselineEntry{Checker: parts[0], File: parts[1], Message: parts[2]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lint: reading baseline: %v", err)
	}
	return entries, nil
}

// FormatBaseline writes diags as a fresh baseline, sorted and with a
// header documenting the format.
func FormatBaseline(w io.Writer, root string, diags []Diagnostic) error {
	entries := make([]BaselineEntry, 0, len(diags))
	for _, d := range diags {
		entries = append(entries, entryFor(root, d))
	}
	return WriteBaselineEntries(w, entries)
}

// WriteBaselineEntries writes entries in the committed baseline format,
// sorted and with the explanatory header.
func WriteBaselineEntries(w io.Writer, entries []BaselineEntry) error {
	lines := make([]string, 0, len(entries))
	for _, e := range entries {
		lines = append(lines, e.key())
	}
	sort.Strings(lines)
	if _, err := fmt.Fprintf(w, "# veridp-lint baseline: known findings CI tolerates while the backlog\n# burns down. One per line: checker<TAB>file<TAB>message. Regenerate with\n#   go run ./cmd/veridp-lint -write-baseline lint.baseline ./...\n"); err != nil {
		return err
	}
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// PruneBaseline returns the entries still matched by at least one current
// diagnostic, multiset-style: an entry listed N times survives at most as
// many times as the finding still occurs. The dropped count is what a
// fixed finding leaves behind — the stale entries ApplyBaseline reports.
func PruneBaseline(root string, diags []Diagnostic, entries []BaselineEntry) (kept []BaselineEntry, dropped int) {
	occur := make(map[string]int, len(diags))
	for _, d := range diags {
		occur[entryFor(root, d).key()]++
	}
	for _, e := range entries {
		k := e.key()
		if occur[k] > 0 {
			occur[k]--
			kept = append(kept, e)
		} else {
			dropped++
		}
	}
	return kept, dropped
}

func entryFor(root string, d Diagnostic) BaselineEntry {
	file := d.Pos.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return BaselineEntry{
		Checker: d.Checker,
		File:    filepath.ToSlash(file),
		Message: d.Message,
	}
}

// ApplyBaseline splits diags into fresh findings and baselined ones, and
// reports how many baseline entries no longer match anything (stale —
// time to shrink the file).
func ApplyBaseline(root string, diags []Diagnostic, entries []BaselineEntry) (fresh, baselined []Diagnostic, stale int) {
	budget := make(map[string]int, len(entries))
	for _, e := range entries {
		budget[e.key()]++
	}
	for _, d := range diags {
		k := entryFor(root, d).key()
		if budget[k] > 0 {
			budget[k]--
			baselined = append(baselined, d)
		} else {
			fresh = append(fresh, d)
		}
	}
	for _, left := range budget {
		stale += left
	}
	return fresh, baselined, stale
}
