package lint

import (
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The corpus harness: each checker owns a testdata/<name> directory
// holding one known-bad and one known-good file. Lines in bad.go carry
// `want "<substring>"` markers; the checker must produce a diagnostic
// containing the substring on every marked line and nothing anywhere
// else — in particular nothing in good.go.

var wantRe = regexp.MustCompile(`want "([^"]+)"`)

var (
	exportsOnce sync.Once
	exportsMap  map[string]string
	exportsErr  error
)

// corpusExports builds (once) the export-data map for everything the
// corpus imports: the module's own packages plus the stdlib packages the
// testdata files use directly.
func corpusExports(t *testing.T) map[string]string {
	t.Helper()
	exportsOnce.Do(func() {
		out, err := exec.Command("go", "env", "GOMOD").Output()
		if err != nil {
			exportsErr = err
			return
		}
		root := filepath.Dir(strings.TrimSpace(string(out)))
		exportsMap, _, exportsErr = GoList(root, "./...", "context", "time", "sync", "net", "io")
	})
	if exportsErr != nil {
		t.Fatalf("building corpus export data: %v", exportsErr)
	}
	return exportsMap
}

func TestCheckerCorpus(t *testing.T) {
	for _, a := range Analyzers {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			files, err := filepath.Glob(filepath.Join("testdata", a.Name, "*.go"))
			if err != nil || len(files) < 2 {
				t.Fatalf("corpus for %s: files=%v err=%v (want good.go and bad.go)", a.Name, files, err)
			}
			fset := token.NewFileSet()
			imp := NewImporter(fset, corpusExports(t))
			pkg, err := CheckFiles(fset, imp, "veridp/lint/corpus/"+a.Name, files)
			if err != nil {
				t.Fatal(err)
			}
			diags := Run([]*Package{pkg}, []*Analyzer{a}).Diags

			type mark struct {
				file string
				line int
			}
			wants := make(map[mark]string)
			for _, f := range pkg.Files {
				name := fset.Position(f.Pos()).Filename
				for _, cg := range f.Comments {
					for _, c := range cg.List {
						if m := wantRe.FindStringSubmatch(c.Text); m != nil {
							wants[mark{name, fset.Position(c.Pos()).Line}] = m[1]
						}
					}
				}
			}
			if len(wants) == 0 {
				t.Fatalf("corpus for %s has no want markers", a.Name)
			}

			seen := make(map[mark]bool)
			for _, d := range diags {
				if filepath.Base(d.Pos.Filename) == "good.go" {
					t.Errorf("checker fired on the known-good file: %s", d)
					continue
				}
				k := mark{d.Pos.Filename, d.Pos.Line}
				sub, ok := wants[k]
				if !ok {
					t.Errorf("unexpected diagnostic: %s", d)
					continue
				}
				if !strings.Contains(d.Message, sub) {
					t.Errorf("%s:%d: diagnostic %q does not contain %q", k.file, k.line, d.Message, sub)
				}
				seen[k] = true
			}
			for k, sub := range wants {
				if !seen[k] {
					t.Errorf("%s:%d: expected a diagnostic containing %q, got none", k.file, k.line, sub)
				}
			}
		})
	}
}

// TestLockOrderChain pins the diagnostic contract for the seeded ABBA
// deadlock in the lockorder corpus: the single report must carry the
// full acquisition chain, i.e. the Lock() sites of *both* functions that
// traverse the cycle in opposite orders.
func TestLockOrderChain(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "lockorder", "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("glob: %v %v", files, err)
	}
	fset := token.NewFileSet()
	imp := NewImporter(fset, corpusExports(t))
	pkg, err := CheckFiles(fset, imp, "veridp/lint/corpus/lockorder", files)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{LockOrder}).Diags
	// The ABBA report is anchored at bad.go:20 (the nested b acquisition).
	var msg string
	for _, d := range diags {
		if filepath.Base(d.Pos.Filename) == "bad.go" && d.Pos.Line == 20 {
			msg = d.Message
		}
	}
	if msg == "" {
		t.Fatalf("no ABBA diagnostic at bad.go:20 in %v", diags)
	}
	for _, site := range []string{
		"held since bad.go:18", "at bad.go:20", // abThenBa: a locked, then b
		"held since bad.go:25", "at bad.go:27", // baThenAb: b locked, then a
	} {
		if !strings.Contains(msg, site) {
			t.Errorf("ABBA diagnostic %q is missing lock site %q", msg, site)
		}
	}
}

// TestCheckerInteraction pins the composition contract: one function can
// be both an //lint:allocfree hot path and a snapfreeze publication site,
// and the two checkers report independently — each fires on its own
// violation at a distinct position, neither masking the other. (The
// interaction corpus is not in the TestCheckerCorpus loop because it
// belongs to no single analyzer.)
func TestCheckerInteraction(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "interaction", "*.go"))
	if err != nil || len(files) < 2 {
		t.Fatalf("interaction corpus: files=%v err=%v (want good.go and bad.go)", files, err)
	}
	fset := token.NewFileSet()
	imp := NewImporter(fset, corpusExports(t))
	pkg, err := CheckFiles(fset, imp, "veridp/lint/corpus/interaction", files)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{SnapFreeze, AllocFree}).Diags

	lines := make(map[string][]int) // checker -> bad.go lines it fired on
	for _, d := range diags {
		if filepath.Base(d.Pos.Filename) == "good.go" {
			t.Errorf("checker fired on the known-good file: %s", d)
			continue
		}
		lines[d.Checker] = append(lines[d.Checker], d.Pos.Line)
	}
	af, sf := lines["allocfree"], lines["snapfreeze"]
	if len(af) != 1 || len(sf) != 1 {
		t.Fatalf("want exactly one finding per checker, got allocfree=%v snapfreeze=%v (all: %v)", af, sf, diags)
	}
	if af[0] == sf[0] {
		t.Errorf("both checkers fired on line %d; the corpus seeds violations at distinct positions", af[0])
	}
	for _, d := range diags {
		switch d.Checker {
		case "allocfree":
			if !strings.Contains(d.Message, "address-taken composite literal") {
				t.Errorf("allocfree diagnostic %q is not about the inline allocation", d.Message)
			}
		case "snapfreeze":
			if !strings.Contains(d.Message, "frozen after publish") {
				t.Errorf("snapfreeze diagnostic %q is not about the post-publish write", d.Message)
			}
		}
	}
}

// TestCtxFlowInteraction pins the composition contract for the three
// lifetime checkers: one relay type seeds a ctxprop violation (spawned
// sleep-loop with no cancellation), a retrybound violation (unbounded
// redial), and a deadline violation (write on a never-armed conn), and
// each checker reports exactly its own finding at a distinct position.
func TestCtxFlowInteraction(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "ctxinteraction", "*.go"))
	if err != nil || len(files) < 2 {
		t.Fatalf("ctxinteraction corpus: files=%v err=%v (want good.go and bad.go)", files, err)
	}
	fset := token.NewFileSet()
	imp := NewImporter(fset, corpusExports(t))
	pkg, err := CheckFiles(fset, imp, "veridp/lint/corpus/ctxinteraction", files)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{CtxProp, Deadline, RetryBound}).Diags

	lines := make(map[string][]int) // checker -> bad.go lines it fired on
	for _, d := range diags {
		if filepath.Base(d.Pos.Filename) == "good.go" {
			t.Errorf("checker fired on the known-good file: %s", d)
			continue
		}
		lines[d.Checker] = append(lines[d.Checker], d.Pos.Line)
	}
	cp, dl, rb := lines["ctxprop"], lines["deadline"], lines["retrybound"]
	if len(cp) != 1 || len(dl) != 1 || len(rb) != 1 {
		t.Fatalf("want exactly one finding per checker, got ctxprop=%v deadline=%v retrybound=%v (all: %v)",
			cp, dl, rb, diags)
	}
	if cp[0] == dl[0] || cp[0] == rb[0] || dl[0] == rb[0] {
		t.Errorf("findings share a line (ctxprop=%d deadline=%d retrybound=%d); the corpus seeds them at distinct positions",
			cp[0], dl[0], rb[0])
	}
	for _, d := range diags {
		switch d.Checker {
		case "ctxprop":
			if !strings.Contains(d.Message, "no exit and no cancellation signal") {
				t.Errorf("ctxprop diagnostic %q is not about the unstoppable loop", d.Message)
			}
		case "deadline":
			if !strings.Contains(d.Message, "has not armed") {
				t.Errorf("deadline diagnostic %q is not about the unarmed caller", d.Message)
			}
		case "retrybound":
			if !strings.Contains(d.Message, "without a bound") {
				t.Errorf("retrybound diagnostic %q is not about the unbounded retry", d.Message)
			}
		}
	}
}

// TestChanFlowInteraction pins the composition contract for the
// message-passing checkers: one launch method seeds a chanflow
// violation (undocumented buffer), a lifecycle violation (drain
// goroutine over a never-closed channel), and a wgsync violation
// (producer spawned after Add that never reaches Done), and each
// checker reports exactly its own finding at a distinct position.
func TestChanFlowInteraction(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "chaninteraction", "*.go"))
	if err != nil || len(files) < 2 {
		t.Fatalf("chaninteraction corpus: files=%v err=%v (want good.go and bad.go)", files, err)
	}
	fset := token.NewFileSet()
	imp := NewImporter(fset, corpusExports(t))
	pkg, err := CheckFiles(fset, imp, "veridp/lint/corpus/chaninteraction", files)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{ChanFlow, WgSync, Lifecycle}).Diags

	lines := make(map[string][]int) // checker -> bad.go lines it fired on
	for _, d := range diags {
		if filepath.Base(d.Pos.Filename) == "good.go" {
			t.Errorf("checker fired on the known-good file: %s", d)
			continue
		}
		lines[d.Checker] = append(lines[d.Checker], d.Pos.Line)
	}
	cf, wg, lc := lines["chanflow"], lines["wgsync"], lines["lifecycle"]
	if len(cf) != 1 || len(wg) != 1 || len(lc) != 1 {
		t.Fatalf("want exactly one finding per checker, got chanflow=%v wgsync=%v lifecycle=%v (all: %v)",
			cf, wg, lc, diags)
	}
	if cf[0] == wg[0] || cf[0] == lc[0] || wg[0] == lc[0] {
		t.Errorf("findings share a line (chanflow=%d wgsync=%d lifecycle=%d); the corpus seeds them at distinct positions",
			cf[0], wg[0], lc[0])
	}
	for _, d := range diags {
		switch d.Checker {
		case "chanflow":
			if !strings.Contains(d.Message, "without a justification") {
				t.Errorf("chanflow diagnostic %q is not about the undocumented buffer", d.Message)
			}
		case "wgsync":
			if !strings.Contains(d.Message, "never calls") {
				t.Errorf("wgsync diagnostic %q is not about the missing Done", d.Message)
			}
		case "lifecycle":
			if !strings.Contains(d.Message, "ranges over a channel") {
				t.Errorf("lifecycle diagnostic %q is not about the never-closed drain", d.Message)
			}
		}
	}
}

// TestLoadSelf exercises the production loader end-to-end on this very
// package: list, build export data, parse, type-check.
func TestLoadSelf(t *testing.T) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(strings.TrimSpace(string(out)))
	pkgs, err := Load(root, "./internal/lint")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Types.Name() != "lint" {
		t.Fatalf("Load returned %+v, want the lint package itself", pkgs)
	}
	if res := Run(pkgs, Analyzers); len(res.Diags) != 0 {
		t.Fatalf("the linter does not lint clean: %v", res.Diags)
	}
}
