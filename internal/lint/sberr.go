// Checker sberr: unchecked southbound writes. Every Send* method on
// openflow.Conn returns an error, and on the southbound channel a failed
// send means the switch and the controller now disagree about what was
// installed — precisely the control/data-plane gap VeriDP monitors. An
// ignored send error turns a detectable transport fault into a silent
// inconsistency, so the repo rule is: the error result of every
// openflow.Conn Send* call must be consumed (assigned to a non-blank
// identifier or checked directly).

package lint

import (
	"go/ast"
	"go/types"
)

// openflowPkgPath is the package that owns the southbound transport.
const openflowPkgPath = "veridp/internal/openflow"

// SouthboundErr flags openflow.Conn Send* calls whose error result is
// discarded.
var SouthboundErr = &Analyzer{
	Name: "sberr",
	Doc:  "the error result of openflow.Conn Send* calls must not be discarded",
	Run:  runSouthboundErr,
}

// southboundSend reports whether call is a Send* method on
// *openflow.Conn whose last result is an error.
func southboundSend(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	if len(fn.Name()) < 4 || fn.Name()[:4] != "Send" {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	if _, ok := isNamed(sig.Recv().Type(), openflowPkgPath, "Conn"); !ok {
		return "", false
	}
	results := sig.Results()
	if results.Len() == 0 {
		return "", false
	}
	last := results.At(results.Len() - 1).Type()
	if named, ok := last.(*types.Named); !ok || named.Obj().Name() != "error" {
		return "", false
	}
	return fn.Name(), true
}

func runSouthboundErr(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, ok := southboundSend(pass, call); ok {
						pass.Reportf(call.Pos(),
							"southbound %s error discarded; a failed send leaves the planes inconsistent", name)
					}
				}
			case *ast.GoStmt:
				if name, ok := southboundSend(pass, n.Call); ok {
					pass.Reportf(n.Call.Pos(),
						"southbound %s error discarded by go statement", name)
				}
			case *ast.DeferStmt:
				if name, ok := southboundSend(pass, n.Call); ok {
					pass.Reportf(n.Call.Pos(),
						"southbound %s error discarded by defer statement", name)
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := southboundSend(pass, call)
				if !ok {
					return true
				}
				// The error is the last result; flag a blank in that slot.
				if last, isIdent := n.Lhs[len(n.Lhs)-1].(*ast.Ident); isIdent && last.Name == "_" {
					pass.Reportf(last.Pos(),
						"southbound %s error assigned to the blank identifier", name)
				}
			}
			return true
		})
	}
}
