// Checker tickleak: timer and ticker lifetimes. A time.Ticker that
// never reaches Stop pins a runtime timer (and its goroutine wakeups)
// for the life of the process; `time.After` inside an unbounded loop
// allocates a fresh timer per iteration that nothing can cancel — the
// hazard internal/netutil documents in prose; and `Timer.Reset` on a
// timer whose channel was never drained can deliver a stale fire into
// the new window. Clauses:
//
//  1. Every `time.NewTicker`/`time.NewTimer` whose result stays local
//     must reach Stop on all return paths — `defer t.Stop()` is the
//     only shape that dominates every return, so a plain Stop behind a
//     branch or after an earlier return is reported. A result that
//     escapes (returned, stored in a struct, handed to another
//     function) transfers ownership and is exempt here; a result that
//     is discarded outright can never be stopped and is reported at
//     the call.
//  2. `time.Tick` is reported unconditionally: its ticker is
//     unreachable and unstoppable by construction.
//  3. `time.After` inside an unbounded loop (`for { ... }` or a range
//     over a channel) pins one timer per iteration; hoist a NewTimer
//     and Reset it.
//  4. `(*time.Timer).Reset` without a lexically preceding receive from
//     the timer's channel in the same function — the canonical guard is
//     `if !t.Stop() { <-t.C }` — risks the old fire leaking into the
//     new window.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TickLeak enforces timer/ticker lifetime hygiene.
var TickLeak = &Analyzer{
	Name:   "tickleak",
	Doc:    "timer lifetimes: NewTicker/NewTimer reach Stop on all returns (defer preferred), no time.Tick, no time.After in unbounded loops, no Timer.Reset without draining",
	Global: true,
	Run:    runTickLeak,
}

func runTickLeak(pass *Pass) {
	for _, node := range pass.Prog.nodes {
		checkTimerLifetimes(pass, node)
		checkAfterInLoops(pass, node)
		checkTimerResets(pass, node)
	}
}

// timeFuncCall matches a call to a package-level function of the time
// package and returns its name.
func timeFuncCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
		return "", false
	}
	if _, isPkg := pkg.Info.Uses[baseIdent(sel.X)].(*types.PkgName); !isPkg {
		return "", false
	}
	return sel.Sel.Name, true
}

func baseIdent(e ast.Expr) *ast.Ident {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id
	}
	return &ast.Ident{}
}

// ---- clauses 1–2: creation sites and Stop dominance --------------------

// timerUse classifies every mention of a created timer/ticker local.
type timerUse struct {
	creator  string // "time.NewTicker" or "time.NewTimer"
	obj      *types.Var
	pos      token.Pos // creation site
	escaped  bool      // handed beyond Stop/Reset/C — ownership moved
	deferred bool      // a defer reaches Stop
	plainTop token.Pos // first non-deferred Stop at creation depth before any return
	plainBad token.Pos // first non-deferred Stop that is conditional or post-return
}

func checkTimerLifetimes(pass *Pass, node *FuncNode) {
	pkg := node.Pkg
	timers := make(map[*types.Var]*timerUse)

	// Pass 1: creation sites. `t := time.NewTicker(d)` binds an owned
	// local; a bare `time.NewTicker(d)` statement discards the only
	// handle that could ever stop it.
	walkOwnBody(node, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				if name, ok := timeFuncCall(pkg, call); ok && (name == "NewTicker" || name == "NewTimer") {
					pass.Reportf(call.Pos(),
						"time.%s result is discarded — the %s can never be stopped; bind it and defer Stop",
						name, tickerNoun(name))
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return
			}
			name, ok := timeFuncCall(pkg, call)
			if !ok || (name != "NewTicker" && name != "NewTimer") {
				return
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return // stored through a selector/index: ownership moves with it
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(),
					"time.%s result is discarded — the %s can never be stopped; bind it and defer Stop",
					name, tickerNoun(name))
				return
			}
			obj, ok := objectOf(pkg, id)
			if !ok {
				return
			}
			timers[obj] = &timerUse{creator: "time." + name, obj: obj, pos: call.Pos()}
		}
	})
	if len(timers) == 0 {
		return
	}

	// Pass 2: uses. Stop/Reset/C through the local are lifecycle
	// operations; anything else — returning it, storing it, passing it
	// on — transfers ownership out of this function's proof obligation.
	sawReturn := false
	var walk func(n ast.Node, depth int, inDefer bool)
	walk = func(n ast.Node, depth int, inDefer bool) {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure using the timer keeps it alive beyond this
			// function's returns; treat as escape unless it only stops it.
			for obj, tu := range timers {
				if usesObjBeyondLifecycle(pkg, n.Body, obj) {
					tu.escaped = true
				}
			}
			return
		case *ast.ReturnStmt:
			sawReturn = true
		case *ast.DeferStmt:
			if obj, ok := timerMethodRecv(pkg, n.Call, "Stop", timers); ok {
				timers[obj].deferred = true
				return
			}
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(c ast.Node) bool {
					if call, ok := c.(*ast.CallExpr); ok {
						if obj, ok := timerMethodRecv(pkg, call, "Stop", timers); ok {
							timers[obj].deferred = true
						}
					}
					return true
				})
				return
			}
			walkChildren(n, func(c ast.Node) { walk(c, depth, true) })
			return
		case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			walkChildren(n, func(c ast.Node) { walk(c, depth+1, inDefer) })
			return
		case *ast.CallExpr:
			if obj, ok := timerMethodRecv(pkg, n, "Stop", timers); ok {
				tu := timers[obj]
				if inDefer {
					tu.deferred = true
				} else if depth == 0 && !sawReturn {
					if !tu.plainTop.IsValid() {
						tu.plainTop = n.Pos()
					}
				} else if !tu.plainBad.IsValid() {
					tu.plainBad = n.Pos()
				}
				walkChildren(n, func(c ast.Node) { walk(c, depth, inDefer) })
				return
			}
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				if obj, ok := objectOf(pkg, id); ok && timers[obj] != nil {
					switch n.Sel.Name {
					case "Stop", "Reset", "C":
					default:
						timers[obj].escaped = true
					}
					return
				}
			}
		case *ast.Ident:
			if obj, ok := objectOf(pkg, n); ok && timers[obj] != nil && obj.Pos() != n.Pos() {
				timers[obj].escaped = true
			}
		}
		walkChildren(n, func(c ast.Node) { walk(c, depth, inDefer) })
	}
	walkChildren(node.body(), func(c ast.Node) { walk(c, 0, false) })

	for _, tu := range timers {
		if tu.escaped || tu.deferred {
			continue
		}
		name := tu.obj.Name()
		switch {
		case !tu.plainTop.IsValid() && !tu.plainBad.IsValid():
			pass.Reportf(tu.pos,
				"%s %s is never stopped — the %s outlives this function; defer %s.Stop()",
				tu.creator, name, tickerNoun(tu.creator), name)
		case !tu.plainTop.IsValid():
			pass.Reportf(tu.plainBad,
				"%s.Stop is not reached on every return path — a branch or earlier return leaks the %s; defer %s.Stop() instead",
				name, tickerNoun(tu.creator), name)
		}
	}
}

// objectOf resolves an identifier to its variable object via Uses or Defs.
func objectOf(pkg *Package, id *ast.Ident) (*types.Var, bool) {
	if obj, ok := pkg.Info.Uses[id].(*types.Var); ok {
		return obj, true
	}
	if obj, ok := pkg.Info.Defs[id].(*types.Var); ok {
		return obj, true
	}
	return nil, false
}

// timerMethodRecv matches `<local>.<method>(...)` for a tracked timer.
func timerMethodRecv(pkg *Package, call *ast.CallExpr, method string, timers map[*types.Var]*timerUse) (*types.Var, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil, false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj, ok := objectOf(pkg, id)
	if !ok || timers[obj] == nil {
		return nil, false
	}
	return obj, true
}

// usesObjBeyondLifecycle reports whether body mentions obj other than as
// the receiver of Stop/Reset or the .C field — any such use hands the
// timer beyond this function's proof obligation.
func usesObjBeyondLifecycle(pkg *Package, body *ast.BlockStmt, obj *types.Var) bool {
	beyond := false
	ast.Inspect(body, func(n ast.Node) bool {
		if beyond {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if o, ok := objectOf(pkg, id); ok && o == obj {
					switch sel.Sel.Name {
					case "Stop", "Reset", "C":
						return false // lifecycle use; don't re-visit the ident
					}
					beyond = true
					return false
				}
			}
		}
		if id, ok := n.(*ast.Ident); ok {
			if o, ok := objectOf(pkg, id); ok && o == obj {
				beyond = true
			}
		}
		return true
	})
	return beyond
}

// tickerNoun names the resource for diagnostics; creator may be bare
// ("NewTicker") or qualified ("time.NewTicker").
func tickerNoun(creator string) string {
	if creator == "NewTicker" || creator == "time.NewTicker" {
		return "ticker"
	}
	return "timer"
}

// ---- clause 2: time.Tick ----------------------------------------------

// ---- clause 3: time.After in unbounded loops ---------------------------

func checkAfterInLoops(pass *Pass, node *FuncNode) {
	pkg := node.Pkg
	var loops []ast.Node // enclosing unbounded-loop stack
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ForStmt:
			if n.Cond == nil {
				loops = append(loops, n)
				walkChildren(n, walk)
				loops = loops[:len(loops)-1]
				return
			}
		case *ast.RangeStmt:
			if isChanType(typeOf(pkg, n.X)) {
				loops = append(loops, n)
				walkChildren(n, walk)
				loops = loops[:len(loops)-1]
				return
			}
		case *ast.CallExpr:
			name, ok := timeFuncCall(pkg, n)
			if !ok {
				break
			}
			switch name {
			case "Tick":
				pass.Reportf(n.Pos(),
					"time.Tick leaks its ticker — no handle ever reaches Stop; use time.NewTicker with defer Stop")
			case "After":
				if len(loops) > 0 {
					pass.Reportf(n.Pos(),
						"time.After inside an unbounded loop pins a fresh timer every iteration — hoist a time.NewTimer and Reset it per pass")
				}
			}
		}
		walkChildren(n, walk)
	}
	walkChildren(node.body(), walk)
}

// ---- clause 4: Timer.Reset without drain -------------------------------

func checkTimerResets(pass *Pass, node *FuncNode) {
	pkg := node.Pkg
	type resetSite struct {
		pos   token.Pos
		chain string
	}
	var resets []resetSite
	drained := make(map[string]token.Pos) // chain -> earliest <-chain.C receive

	recordRecv := func(e ast.Expr) {
		ue, ok := ast.Unparen(e).(*ast.UnaryExpr)
		if !ok || ue.Op != token.ARROW {
			return
		}
		sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "C" {
			return
		}
		if _, ok := isNamed(typeOf(pkg, sel.X), "time", "Timer"); !ok {
			return
		}
		chain := types.ExprString(sel.X)
		if prev, ok := drained[chain]; !ok || ue.Pos() < prev {
			drained[chain] = ue.Pos()
		}
	}

	walkOwnBody(node, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			recordRecv(n)
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Reset" {
				return
			}
			if _, ok := isNamed(typeOf(pkg, sel.X), "time", "Timer"); !ok {
				return
			}
			resets = append(resets, resetSite{n.Pos(), types.ExprString(sel.X)})
		}
	})
	for _, r := range resets {
		if pos, ok := drained[r.chain]; ok && pos < r.pos {
			continue
		}
		pass.Reportf(r.pos,
			"%s.Reset without draining the timer's channel — a pending fire delivers into the new window; guard with `if !%s.Stop() { <-%s.C }`",
			r.chain, r.chain, r.chain)
	}
}
