package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The loader's error paths: pattern resolution failures surface the go
// list error, and CheckFiles distinguishes parse errors, type errors,
// and missing export data.

func TestLoadMissingDirectory(t *testing.T) {
	_, err := Load(t.TempDir(), "./no/such/dir")
	if err == nil {
		t.Fatal("Load on a nonexistent pattern succeeded")
	}
	if !strings.Contains(err.Error(), "go list") {
		t.Errorf("error %q does not surface the go list failure", err)
	}
}

func TestLoadParseError(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("bad.go", "package scratch\n\nfunc broken( {\n")
	if _, err := Load(dir, "./..."); err == nil {
		t.Fatal("Load on a module with a syntax error succeeded")
	}
}

func TestCheckFilesParseError(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "bad.go")
	if err := os.WriteFile(name, []byte("package p\n\nfunc broken( {\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	_, err := CheckFiles(fset, NewImporter(fset, nil), "p", []string{name})
	if err == nil {
		t.Fatal("CheckFiles parsed a file with a syntax error")
	}
	if !strings.Contains(err.Error(), "lint:") {
		t.Errorf("error %q is not wrapped with the lint prefix", err)
	}
}

func TestCheckFilesTypeError(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "bad.go")
	if err := os.WriteFile(name, []byte("package p\n\nvar x undefinedType\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	_, err := CheckFiles(fset, NewImporter(fset, nil), "p", []string{name})
	if err == nil {
		t.Fatal("CheckFiles type-checked a file with an undefined type")
	}
	if !strings.Contains(err.Error(), "type-checking") {
		t.Errorf("error %q does not name the type-checking phase", err)
	}
}

func TestCheckFilesMissingExportData(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "imports.go")
	src := "package p\n\nimport \"sync\"\n\nvar mu sync.Mutex\n"
	if err := os.WriteFile(name, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	// An importer with no export data cannot resolve "sync".
	_, err := CheckFiles(fset, NewImporter(fset, map[string]string{}), "p", []string{name})
	if err == nil {
		t.Fatal("CheckFiles resolved an import with no export data")
	}
	if !strings.Contains(err.Error(), "no export data") {
		t.Errorf("error %q does not surface the missing export data", err)
	}
}
