// Checker ctxprop: cancellation must be threaded, not invented. The
// monitor's long-lived goroutines (proxy splices, collector workers,
// agent serve loops) park in blocking operations; the only way to shut
// one down is a cancellation signal that reaches it, so the repo rule has
// four clauses:
//
//  1. A context.Context parameter is the function's first parameter —
//     the position every caller scans for when wiring cancellation.
//  2. Contexts are not stored in struct fields: a stored context outlives
//     the call tree that created it and silently decouples the field's
//     owner from its caller's lifetime. A field that genuinely carries a
//     lifetime is annotated `// ctx: bound to <lifetime>` naming it.
//  3. context.Background() and context.TODO() mint fresh root lifetimes,
//     which is main's job (and the tests'); anywhere else they sever the
//     caller's cancellation chain.
//  4. A spawned goroutine that loops forever into blocking operations
//     (net I/O, channel ops, time.Sleep, Wait — directly or through any
//     resolvable call chain) with no exit and no cancellation-shaped
//     select case has no shutdown path: it must accept and thread a
//     context.Context or stop channel.
//
// Clause 4 deepens lifecycle: lifecycle demands stop signals for channel
// loops, ctxprop demands them for every blocking loop — a sleep-poll
// loop has no channel and still leaks.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ctxBoundPrefix is the field annotation naming the lifetime a stored
// context is bound to: `// ctx: bound to <lifetime>`.
const ctxBoundPrefix = "ctx: bound to "

// CtxProp enforces the context-threading discipline.
var CtxProp = &Analyzer{
	Name:   "ctxprop",
	Doc:    "context.Context is threaded: first parameter only, never a struct field (unless `// ctx: bound to <lifetime>`), Background()/TODO() only in main; blocking goroutine loops need a cancellation signal",
	Global: true,
	Run:    runCtxProp,
}

func runCtxProp(pass *Pass) {
	prog := pass.Prog
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			checkCtxFile(pass, pkg, file)
		}
	}
	checkBlockingLoops(pass)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	_, ok := isNamed(t, "context", "Context")
	return ok
}

// checkCtxFile applies the three syntactic clauses to one file.
func checkCtxFile(pass *Pass, pkg *Package, file *ast.File) {
	inMain := file.Name.Name == "main"
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkCtxParams(pass, pkg, n.Type)
		case *ast.FuncLit:
			// Literals inherit their context by capture; a ctx parameter
			// on one is unusual but must still come first.
			checkCtxParams(pass, pkg, n.Type)
		case *ast.StructType:
			checkCtxFields(pass, pkg, n)
		case *ast.CallExpr:
			if inMain {
				return true
			}
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if name := fn.Name(); name == "Background" || name == "TODO" {
				pass.Reportf(n.Pos(),
					"context.%s() outside package main severs the caller's cancellation chain; accept a ctx parameter instead", name)
			}
		}
		return true
	})
}

// checkCtxParams reports context.Context parameters that are not the
// first parameter.
func checkCtxParams(pass *Pass, pkg *Package, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	index := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(typeOf(pkg, field.Type)) && index > 0 {
			pass.Reportf(field.Pos(),
				"context.Context must be the first parameter (found at parameter %d)", index+1)
		}
		index += n
	}
}

// checkCtxFields reports struct fields of type context.Context that lack
// the `// ctx: bound to <lifetime>` annotation.
func checkCtxFields(pass *Pass, pkg *Package, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if !isContextType(typeOf(pkg, field.Type)) {
			continue
		}
		if hasCtxBound(field.Doc) || hasCtxBound(field.Comment) {
			continue
		}
		pass.Reportf(field.Pos(),
			"context.Context stored in a struct field decouples the field from its caller's lifetime; thread it as a parameter or annotate `// ctx: bound to <lifetime>`")
	}
}

// hasCtxBound scans raw comment lines for the lifetime annotation with a
// non-empty lifetime.
func hasCtxBound(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.Text), "//"))
		if strings.HasPrefix(text, ctxBoundPrefix) && strings.TrimSpace(strings.TrimPrefix(text, ctxBoundPrefix)) != "" {
			return true
		}
	}
	return false
}

// checkBlockingLoops is clause 4: spawned goroutine bodies (literals and
// named spawns, like lifecycle) must not loop forever into blocking
// operations without a cancellation signal.
func checkBlockingLoops(pass *Pass) {
	prog := pass.Prog
	blocks := prog.mayBlock()
	reported := make(map[token.Pos]bool)
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if fl, ok := gs.Call.Fun.(*ast.FuncLit); ok {
					checkBlockingBody(pass, pkg, fl.Body, gs.Go, blocks, reported)
					return true
				}
				for _, callee := range prog.resolveCall(pkg, gs.Call) {
					if callee.Decl != nil {
						checkBlockingBody(pass, callee.Pkg, callee.Decl.Body, gs.Go, blocks, reported)
					}
				}
				return true
			})
		}
	}
}

// checkBlockingBody scans one goroutine body for condition-less loops
// that reach a blocking operation and cannot exit. Nested literals are
// separate goroutines (or stored closures) with their own spawn sites.
func checkBlockingBody(pass *Pass, pkg *Package, body *ast.BlockStmt, spawn token.Pos, blocks map[*FuncNode]*blockInfo, reported map[token.Pos]bool) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if _, ok := n.(*ast.FuncLit); ok {
			return
		}
		if loop, ok := n.(*ast.ForStmt); ok && loop.Cond == nil && !reported[loop.For] {
			if what := loopBlocks(pass, pkg, loop.Body, blocks); what != "" && !loopCanExit(pkg, loop.Body, true) {
				reported[loop.For] = true
				pass.Reportf(loop.For,
					"goroutine (spawned at %s) loops forever into %s with no exit and no cancellation signal — accept and thread a context.Context or stop channel",
					pass.Prog.shortPos(spawn), what)
			}
		}
		walkChildren(n, walk)
	}
	walk(body)
}

// loopBlocks names the first blocking operation the loop body reaches —
// a direct channel op, an intrinsic blocker, or a resolvable call chain
// that may block — or "" when the body cannot block.
func loopBlocks(pass *Pass, pkg *Package, body *ast.BlockStmt, blocks map[*FuncNode]*blockInfo) string {
	found := ""
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if found != "" {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.SendStmt:
			found = "a channel send"
			return
		case *ast.SelectStmt:
			found = "a select"
			return
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = "a channel receive"
				return
			}
		case *ast.RangeStmt:
			if isChanType(typeOf(pkg, n.X)) {
				found = "a channel range"
				return
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if what := intrinsicBlock(pkg, sel); what != "" {
					found = what
					return
				}
			}
			for _, callee := range pass.Prog.resolveCall(pkg, n) {
				if info := blocks[callee]; info != nil {
					found = info.what + " (via " + callee.Name + ")"
					return
				}
			}
		}
		walkChildren(n, walk)
	}
	walk(body)
	return found
}
