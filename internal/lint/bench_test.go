package lint

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// BenchmarkLintWholeRepo measures one full veridp-lint analysis pass —
// every registered checker over every package in the module — with the
// load/type-check cost paid once outside the timer. This is the number
// the shared-Program refactor moves: the Program (call graph + lockset
// summaries) is built once per Run and shared by all checkers, so the
// per-iteration cost is one BuildProgram plus the checker passes.
func BenchmarkLintWholeRepo(b *testing.B) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		b.Fatal(err)
	}
	root := filepath.Dir(strings.TrimSpace(string(out)))
	pkgs, err := Load(root, "./...")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		result, stats := RunStats(pkgs, Analyzers)
		if len(result.Diags) != 0 {
			b.Fatalf("the repo must lint clean during the benchmark, got %d findings", len(result.Diags))
		}
		if len(stats.Checkers) != len(Analyzers) {
			b.Fatalf("stats cover %d checkers, want %d", len(stats.Checkers), len(Analyzers))
		}
	}
}
