// Checker snapfreeze: publication-safety for snapshot types. VeriDP's
// verdict path is lock-free because core.Handle publishes immutable
// Snapshots through an atomic pointer and bdd.Table hands out Views over
// an append-only node array — invariants that nothing in the language
// enforces. A single post-publication store tears a snapshot some reader
// goroutine is verifying against, and the resulting mis-verdict is
// indistinguishable from the data-plane fault the monitor exists to
// detect. This checker turns the convention into a compile-time contract:
//
// Publication points (where a value becomes shared and must freeze):
//   - Store / Swap / CompareAndSwap on a sync/atomic.Pointer[T] — the
//     Handle.cur idiom;
//   - a channel send of a pointer-to-struct value whose line (or the line
//     above) carries a `// published` comment — the hand-off idiom.
//
// Annotation vocabulary, on struct fields:
//   - `// frozen after publish` — the field must never be written after
//     the enclosing value is published. Writes are allowed only while the
//     value is provably fresh: local, created in this same body by a
//     composite literal / new / a constructor that only returns fresh
//     values, and not yet passed away or published.
//   - `// append-only` — a slice field that may grow (`x.f = append(x.f,
//     ...)`) but whose existing elements are immutable: in-place element
//     writes, non-append reassignment, copy-into, and delete are flagged
//     (again, except on fresh values — bdd.New seeding the terminal nodes
//     of a table it just allocated is construction, not mutation).
//
// Completeness: every field of a type that is published anywhere in the
// program must carry one of the two annotations. Deleting an annotation
// from core.Snapshot is therefore itself a finding — the contract cannot
// silently erode.
//
// The write check is interprocedural in effect rather than by summary
// propagation: a helper that receives a *Snapshot parameter holds a
// possibly-published value (parameters are never fresh), so a frozen
// write inside the helper is flagged at the write site no matter which
// caller hands the value over. What the checker does not model is
// aliasing through unannotated fields (a *PathEntry reached both from the
// writer table and from a frozen slice) — the freeze boundary is the
// annotated field itself.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// SnapFreeze enforces the frozen-after-publish / append-only contract on
// published snapshot types.
var SnapFreeze = &Analyzer{
	Name:   "snapfreeze",
	Doc:    "values published via atomic.Pointer or `// published` channel sends must not be mutated; their fields carry `// frozen after publish` / `// append-only` annotations",
	Global: true,
	Run:    runSnapFreeze,
}

// freezeMode is the annotation on one struct field.
type freezeMode int

const (
	modeNone       freezeMode = iota
	modeFrozen                // `// frozen after publish`
	modeAppendOnly            // `// append-only`
)

var (
	frozenRe     = regexp.MustCompile(`\bfrozen after publish\b`)
	appendOnlyRe = regexp.MustCompile(`\bappend-only\b`)
	publishedRe  = regexp.MustCompile(`\bpublished\b`)
)

// typeKey is the cross-package identity of a named type ("pkgpath.Name").
// Each package is type-checked separately against export data, so the
// same type is a different *types.Named in its defining package and in
// its importers; the string unifies them, exactly like funcKey does for
// functions.
func typeKey(named *types.Named) string {
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// structDecl remembers where a named struct type is declared, for the
// completeness check over published types.
type structDecl struct {
	fields []*ast.Field
	name   string
}

// sfState is the whole-program snapfreeze state.
type sfState struct {
	pass  *Pass
	prog  *Program
	modes map[string]map[string]freezeMode // typeKey → field → mode
	decls map[string]*structDecl           // typeKey → declaration site

	published map[string]token.Pos // typeKey → first publication site

	freshRet map[string]bool // funcKey → returns only fresh values

	pubLines map[string]map[int]bool // file → lines carrying `// published`
}

func runSnapFreeze(pass *Pass) {
	st := &sfState{
		pass:      pass,
		prog:      pass.Prog,
		modes:     make(map[string]map[string]freezeMode),
		decls:     make(map[string]*structDecl),
		published: make(map[string]token.Pos),
		freshRet:  make(map[string]bool),
		pubLines:  make(map[string]map[int]bool),
	}
	st.collectAnnotations()
	st.collectPublishedLines()
	st.collectPublications()
	st.computeFreshReturns()
	st.checkCompleteness()
	for _, n := range st.prog.nodes {
		st.checkBody(n)
	}
}

// collectAnnotations indexes every `// frozen after publish` /
// `// append-only` field annotation and every struct declaration.
func (st *sfState) collectAnnotations() {
	for _, pkg := range st.prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				stType, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				obj, ok := pkg.Info.Defs[ts.Name]
				if !ok {
					return true
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					return true
				}
				key := typeKey(named)
				if key == "" {
					return true
				}
				st.decls[key] = &structDecl{fields: stType.Fields.List, name: shortName(key)}
				for _, field := range stType.Fields.List {
					mode := fieldFreezeMode(field)
					if mode == modeNone {
						continue
					}
					if st.modes[key] == nil {
						st.modes[key] = make(map[string]freezeMode)
					}
					for _, name := range field.Names {
						st.modes[key][name.Name] = mode
					}
				}
				return true
			})
		}
	}
}

// fieldFreezeMode reads a field's doc or trailing comment.
func fieldFreezeMode(field *ast.Field) freezeMode {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		text := cg.Text()
		if frozenRe.MatchString(text) {
			return modeFrozen
		}
		if appendOnlyRe.MatchString(text) {
			return modeAppendOnly
		}
	}
	return modeNone
}

// collectPublishedLines records, per file, the lines whose comments carry
// the `published` marker (the channel-send publication tag).
func (st *sfState) collectPublishedLines() {
	for _, pkg := range st.prog.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if !publishedRe.MatchString(c.Text) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					if st.pubLines[pos.Filename] == nil {
						st.pubLines[pos.Filename] = make(map[int]bool)
					}
					st.pubLines[pos.Filename][pos.Line] = true
				}
			}
		}
	}
}

// publishedStructOf unwraps a published value's type (pointer chased) to
// the named struct being shared, or "".
func publishedStructOf(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return ""
	}
	return typeKey(named)
}

// collectPublications finds every publication point in the program and
// records the published struct types.
func (st *sfState) collectPublications() {
	record := func(key string, pos token.Pos) {
		if key == "" {
			return
		}
		if _, seen := st.published[key]; !seen {
			st.published[key] = pos
		}
	}
	for _, pkg := range st.prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
					if !ok {
						return true
					}
					switch sel.Sel.Name {
					case "Store", "Swap", "CompareAndSwap":
					default:
						return true
					}
					recvT := typeOf(pkg, sel.X)
					named, ok := isNamed(recvT, "sync/atomic", "Pointer")
					if !ok {
						return true
					}
					if args := named.TypeArgs(); args != nil && args.Len() == 1 {
						record(publishedStructOf(args.At(0)), n.Pos())
					}
				case *ast.SendStmt:
					pos := pkg.Fset.Position(n.Pos())
					lines := st.pubLines[pos.Filename]
					if lines == nil || (!lines[pos.Line] && !lines[pos.Line-1]) {
						return true
					}
					if t := typeOf(pkg, n.Value); t != nil {
						if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
							record(publishedStructOf(t), n.Pos())
						}
					}
				}
				return true
			})
		}
	}
}

// checkCompleteness demands an annotation on every field of every
// published type, reported in a stable order.
func (st *sfState) checkCompleteness() {
	keys := make([]string, 0, len(st.published))
	for k := range st.published {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		decl := st.decls[key]
		if decl == nil {
			continue // declared outside the loaded program
		}
		for _, field := range decl.fields {
			if fieldFreezeMode(field) != modeNone {
				continue
			}
			for _, name := range field.Names {
				if name.Name == "_" {
					continue
				}
				st.pass.Reportf(field.Pos(),
					"field %s.%s belongs to a type published at %s but carries no `// frozen after publish` or `// append-only` annotation",
					decl.name, name.Name, st.prog.shortPos(st.published[key]))
			}
		}
	}
}

// computeFreshReturns fixpoints the set of functions that only ever
// return freshly-constructed values (composite literals, new, calls to
// other fresh constructors) — their results are safe to mutate before
// publication, the freezeAll pattern.
func (st *sfState) computeFreshReturns() {
	for changed := true; changed; {
		changed = false
		for key, node := range st.prog.funcs {
			if st.freshRet[key] {
				continue
			}
			if st.returnsOnlyFresh(node) {
				st.freshRet[key] = true
				changed = true
			}
		}
	}
}

// returnsOnlyFresh reports whether every return statement in node's body
// yields only fresh expressions (ignoring nil/basic results). A function
// with no return statements does not qualify.
func (st *sfState) returnsOnlyFresh(node *FuncNode) bool {
	body := node.body()
	if body == nil {
		return false
	}
	// Flow-insensitive local freshness: a variable assigned only fresh
	// expressions and never passed away counts as fresh in returns.
	freshVars := st.flowInsensitiveFresh(node)
	returns := 0
	ok := true
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n != ast.Node(node.Lit) {
			return false
		}
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet {
			return true
		}
		returns++
		for _, r := range ret.Results {
			if !st.freshExpr(node, r, freshVars) && !inertResult(node.Pkg, r) {
				ok = false
			}
		}
		return true
	})
	return ok && returns > 0
}

// inertResult reports whether a returned expression can never be a
// published struct value: nil, constants, booleans, errors.
func inertResult(pkg *Package, e ast.Expr) bool {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name == "nil" {
		return true
	}
	if tv, ok := pkg.Info.Types[e]; ok {
		if tv.Value != nil {
			return true
		}
		if tv.Type != nil {
			if publishedStructOf(tv.Type) == "" {
				return true
			}
		}
	}
	return false
}

// flowInsensitiveFresh scans a body once and returns the set of local
// variables whose every definition is a fresh expression and which are
// never handed to other code (no call argument, send, or non-local
// store).
func (st *sfState) flowInsensitiveFresh(node *FuncNode) map[*types.Var]bool {
	fresh := make(map[*types.Var]bool)
	poisoned := make(map[*types.Var]bool)
	body := node.body()
	localOf := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj, ok := node.Pkg.Info.Defs[id].(*types.Var); ok {
			return obj
		}
		if obj, ok := node.Pkg.Info.Uses[id].(*types.Var); ok {
			return obj
		}
		return nil
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, l := range n.Lhs {
					v := localOf(l)
					if v == nil {
						continue
					}
					if st.freshExprShallow(node, n.Rhs[i]) {
						fresh[v] = true
					} else {
						poisoned[v] = true
					}
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if v := localOf(arg); v != nil {
					poisoned[v] = true
				}
			}
		case *ast.SendStmt:
			if v := localOf(n.Value); v != nil {
				poisoned[v] = true
			}
		}
		return true
	})
	for v := range poisoned {
		delete(fresh, v)
	}
	return fresh
}

// freshExprShallow is freshExpr without the fresh-variable lookup (used
// while computing that very set).
func (st *sfState) freshExprShallow(node *FuncNode, e ast.Expr) bool {
	return st.freshExpr(node, e, nil)
}

// freshExpr reports whether e denotes a freshly-constructed value: a
// composite literal (address-taken or not), new(T), a call to a
// fresh-constructor, or a variable in freshVars.
func (st *sfState) freshExpr(node *FuncNode, e ast.Expr, freshVars map[*types.Var]bool) bool {
	pkg := node.Pkg
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, isLit := ast.Unparen(e.X).(*ast.CompositeLit)
			return isLit
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
			if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
		for _, callee := range st.prog.resolveCall(pkg, e) {
			if callee.Decl != nil {
				if obj, ok := pkg.Info.Defs[callee.Decl.Name].(*types.Func); ok && st.freshRet[funcKey(obj)] {
					return true
				}
				// The callee is declared in another package; recover its key
				// through the node's own package definition table.
				if obj, ok := callee.Pkg.Info.Defs[callee.Decl.Name].(*types.Func); ok && st.freshRet[funcKey(obj)] {
					return true
				}
			}
		}
	case *ast.Ident:
		if freshVars == nil {
			return false
		}
		if obj, ok := pkg.Info.Uses[e].(*types.Var); ok && freshVars[obj] {
			return true
		}
		if obj, ok := pkg.Info.Defs[e].(*types.Var); ok && freshVars[obj] {
			return true
		}
	}
	return false
}

// annotatedSel describes a write that travels through an annotated field.
type annotatedSel struct {
	sel   *ast.SelectorExpr
	mode  freezeMode
	owner string // display name of the owning type
	whole bool   // the LHS *is* the field (not an element/nested write)
}

// findAnnotated scans an lvalue expression for the annotated field
// selector it writes through.
func (st *sfState) findAnnotated(pkg *Package, lhs ast.Expr) *annotatedSel {
	whole := true
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				if named, okN := derefNamed(sel.Recv()); okN {
					key := typeKey(named)
					if mode, okM := st.modes[key][e.Sel.Name]; okM {
						return &annotatedSel{sel: e, mode: mode, owner: shortName(key), whole: whole}
					}
				}
			}
			lhs, whole = e.X, false
		case *ast.IndexExpr:
			lhs, whole = e.X, false
		case *ast.StarExpr:
			lhs, whole = e.X, false
		case *ast.SliceExpr:
			lhs, whole = e.X, false
		default:
			return nil
		}
	}
}

// baseVar returns the local variable at the root of a selector chain, or
// nil when the chain roots elsewhere (package var, call result, ...).
func baseVar(pkg *Package, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj, ok := pkg.Info.Uses[x].(*types.Var); ok {
				return obj
			}
			if obj, ok := pkg.Info.Defs[x].(*types.Var); ok {
				return obj
			}
			return nil
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sfWalker threads flow-sensitive freshness through one body, flagging
// annotated-field writes on values that are not (or no longer) fresh.
type sfWalker struct {
	st    *sfState
	node  *FuncNode
	fresh map[*types.Var]bool
}

// checkBody analyzes one function body.
func (st *sfState) checkBody(node *FuncNode) {
	body := node.body()
	if body == nil {
		return
	}
	w := &sfWalker{st: st, node: node, fresh: make(map[*types.Var]bool)}
	w.walk(body)
}

// kill ends a variable's freshness (it escaped or was published).
func (w *sfWalker) kill(e ast.Expr) {
	if v := baseVar(w.node.Pkg, e); v != nil {
		delete(w.fresh, v)
	}
}

// walk visits statements in source order. Nested function literals are
// separate analysis roots (they appear in prog.nodes) and are skipped.
func (w *sfWalker) walk(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			w.assign(n)
			return false // children handled inside
		case *ast.IncDecStmt:
			w.checkWrite(n.X, n.Pos(), nil, token.ASSIGN)
			return true
		case *ast.SendStmt:
			w.kill(n.Value)
			return true
		case *ast.CallExpr:
			w.call(n)
			return true
		}
		return true
	})
}

// assign processes one assignment statement: first the RHS (calls may
// publish), then the write checks, then the freshness transfer.
func (w *sfWalker) assign(s *ast.AssignStmt) {
	for _, r := range s.Rhs {
		w.walk(r)
	}
	for i, l := range s.Lhs {
		var rhs ast.Expr
		if i < len(s.Rhs) {
			rhs = s.Rhs[i]
		}
		w.checkWrite(l, s.Pos(), rhs, s.Tok)
	}
	// Freshness transfer for plain variable targets.
	if len(s.Lhs) == len(s.Rhs) {
		for i, l := range s.Lhs {
			id, ok := ast.Unparen(l).(*ast.Ident)
			if !ok {
				continue
			}
			var v *types.Var
			if obj, okD := w.node.Pkg.Info.Defs[id].(*types.Var); okD {
				v = obj
			} else if obj, okU := w.node.Pkg.Info.Uses[id].(*types.Var); okU {
				v = obj
			}
			if v == nil {
				continue
			}
			if w.st.freshExpr(w.node, s.Rhs[i], w.fresh) {
				w.fresh[v] = true
			} else {
				delete(w.fresh, v)
			}
		}
	} else {
		for _, l := range s.Lhs {
			w.kill(l)
		}
	}
}

// call handles publication and escape at call sites: arguments lose
// freshness (the callee may retain or publish them), and copy/delete on
// annotated fields are writes.
func (w *sfWalker) call(call *ast.CallExpr) {
	pkg := w.node.Pkg
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "copy", "delete":
				if len(call.Args) > 0 {
					w.checkWrite(call.Args[0], call.Pos(), nil, token.ASSIGN)
				}
				return
			case "len", "cap", "append":
				return // reads (append's mutation is checked at its assignment)
			}
		}
	}
	for _, arg := range call.Args {
		w.kill(arg)
	}
}

// checkWrite flags a write through an annotated field unless the value
// is still fresh, or (append-only) the write is a self-append.
func (w *sfWalker) checkWrite(lhs ast.Expr, pos token.Pos, rhs ast.Expr, tok token.Token) {
	ann := w.st.findAnnotated(w.node.Pkg, lhs)
	if ann == nil {
		return
	}
	if v := baseVar(w.node.Pkg, ann.sel.X); v != nil && w.fresh[v] {
		return // constructing, not mutating
	}
	field := ann.owner + "." + ann.sel.Sel.Name
	if ann.mode == modeAppendOnly {
		if ann.whole && tok == token.ASSIGN && rhs != nil && isSelfAppend(w.node.Pkg, ann.sel, rhs) {
			return // x.f = append(x.f, ...) is the one permitted growth
		}
		if ann.whole {
			w.st.pass.Reportf(pos,
				"append-only field %s may only grow via %s = append(%s, ...); this assignment replaces it",
				field, exprText(ann.sel), exprText(ann.sel))
			return
		}
		w.st.pass.Reportf(pos,
			"write into element of append-only field %s — published readers may hold a view over it", field)
		return
	}
	w.st.pass.Reportf(pos,
		"write to %s, which is frozen after publish — mutating a published value tears concurrent readers", field)
}

// isSelfAppend reports whether rhs is append(f, ...) growing the same
// field chain f that is being assigned.
func isSelfAppend(pkg *Package, sel *ast.SelectorExpr, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	want := exprChain(sel)
	return want != "" && exprChain(call.Args[0]) == want
}
