// Checker lockedblock: blocking operations reached while a mutex is
// held. A channel send/receive, select, time.Sleep, WaitGroup.Wait, or
// network I/O performed under a lock couples the lock's hold time to an
// unbounded external event — a stalled peer wedges every other path
// through that mutex. In the VeriDP monitor that failure is
// indistinguishable from the data-plane fault the monitor exists to
// detect, which is why this invariant gets its own checker.
//
// Direct violations are reported at the operation; interprocedural ones
// at the call site that was made under the lock, with the root blocking
// operation chained in the message. Calls through interfaces fan out to
// every loaded implementation (conservative dispatch).

package lint

import "strings"

// LockedBlock reports blocking operations performed while holding a mutex.
var LockedBlock = &Analyzer{
	Name:   "lockedblock",
	Doc:    "no channel, timer, WaitGroup, or network blocking operation while a mutex is held",
	Global: true,
	Run:    runLockedBlock,
}

func runLockedBlock(pass *Pass) {
	prog := pass.Prog
	blocks := prog.mayBlock()
	for _, n := range prog.nodes {
		for _, b := range n.Sum.blocks {
			if len(b.held) == 0 {
				continue
			}
			pass.Reportf(b.pos, "%s while holding %s", b.what, heldKeys(b.held))
		}
		reported := make(map[int]bool) // one report per call position offset
		for _, cs := range n.Sum.calls {
			if cs.spawned || len(cs.held) == 0 || reported[int(cs.pos)] {
				continue
			}
			for _, callee := range cs.callees {
				info := blocks[callee]
				if info == nil {
					continue
				}
				chain := callee.Name
				if info.via != "" {
					chain += " → " + info.via
				}
				if !strings.HasSuffix(chain, info.what) {
					chain += " → " + info.what
				}
				pass.Reportf(cs.pos,
					"call to %s may block (%s at %s) while holding %s",
					cs.name, chain, prog.shortPos(info.pos), heldKeys(cs.held))
				reported[int(cs.pos)] = true
				break
			}
		}
	}
}
