// Checker wgsync: sync.WaitGroup join protocol. Every long-lived
// component of the monitor drains its workers through a WaitGroup (the
// proxy's splice goroutines, the controller's per-switch serveConn
// units, the collector's worker pool), and each of the classic WaitGroup
// mistakes deadlocks or under-counts the join at shutdown — exactly when
// the monitor must prove it leaked nothing. Four clauses:
//
//  1. Add precedes the spawn it covers. An Add inside the spawned
//     goroutine races Wait: the waiter can observe the counter at zero
//     before the goroutine has announced itself. Orderings where the
//     goroutine's Done has no Add before the go statement are reported
//     too (whole-program: if the WaitGroup is a field whose Add lives in
//     some other loaded function, the ordering is credited).
//  2. Spawned bodies reach Done on every path — defer preferred. A Done
//     behind a branch or after an early return undercounts the join; a
//     body that never calls Done after an immediately preceding Add
//     hangs Wait forever.
//  3. Add must not run concurrently with Wait (clause 1's spawned-Add
//     rule is the schedule that breaks this).
//  4. WaitGroups travel by pointer. A by-value parameter or a plain
//     copy splits the counter: Done on the copy never releases Wait on
//     the original.
//
// Spawn-site argument flow follows `go worker(&wg)` into the named
// callee's declaration, mapping its *sync.WaitGroup parameters back to
// the caller's identities, so the split-function spawn idiom is checked
// the same as the inline literal.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WgSync enforces the WaitGroup pairing protocol.
var WgSync = &Analyzer{
	Name:   "wgsync",
	Doc:    "sync.WaitGroup joins: Add precedes the spawn it covers, spawned bodies defer Done on every path, no Add inside the goroutine, no WaitGroup by value or copy",
	Global: true,
	Run:    runWgSync,
}

func runWgSync(pass *Pass) {
	prog := pass.Prog
	addsAnywhere := make(map[string]bool)
	for _, node := range prog.nodes {
		walkOwnBody(node, func(n ast.Node) {
			if call, ok := n.(*ast.CallExpr); ok {
				if key, _, ok := wgMethodCall(node.Pkg, call, "Add"); ok {
					addsAnywhere[key] = true
				}
			}
		})
	}
	for _, node := range prog.nodes {
		checkWgCopies(pass, node)
		checkWgFunc(pass, node, addsAnywhere)
	}
}

// isWaitGroupValue reports whether t is sync.WaitGroup itself (not a
// pointer to it).
func isWaitGroupValue(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// wgKey is the program-wide identity of a WaitGroup expression; a
// leading & is unwrapped so `&wg` and `wg` share one class.
func wgKey(pkg *Package, e ast.Expr) string {
	e = ast.Unparen(e)
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		e = ue.X
	}
	return chanKey(pkg, e)
}

// wgMethodCall matches a call of the named method on a sync.WaitGroup
// receiver and returns the receiver's identity key and expression.
func wgMethodCall(pkg *Package, call *ast.CallExpr, method string) (key string, recv ast.Expr, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != method {
		return "", nil, false
	}
	if _, isWG := isNamed(typeOf(pkg, sel.X), "sync", "WaitGroup"); !isWG {
		return "", nil, false
	}
	return wgKey(pkg, sel.X), sel.X, true
}

// ---- clause 4: by-value parameters and copies --------------------------

func checkWgCopies(pass *Pass, node *FuncNode) {
	pkg := node.Pkg
	var ft *ast.FuncType
	if node.Decl != nil {
		ft = node.Decl.Type
	} else {
		ft = node.Lit.Type
	}
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			if isWaitGroupValue(typeOf(pkg, field.Type)) {
				pass.Reportf(field.Pos(),
					"sync.WaitGroup passed by value — Add/Done/Wait act on a private copy of the counter; pass *sync.WaitGroup")
			}
		}
	}
	walkOwnBody(node, func(n ast.Node) {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return
		}
		for _, rhs := range assign.Rhs {
			rhs = ast.Unparen(rhs)
			switch rhs.(type) {
			case *ast.Ident, *ast.SelectorExpr:
			default:
				continue // composite literals, calls, & — not a counter copy
			}
			if isWaitGroupValue(typeOf(pkg, rhs)) {
				pass.Reportf(rhs.Pos(),
					"assignment copies the sync.WaitGroup %s — Done on the copy never releases Wait on the original; share a pointer",
					types.ExprString(rhs))
			}
		}
	})
}

// ---- clauses 1–3: per-spawn pairing ------------------------------------

// doneScan is what one spawned body does with a WaitGroup class.
type doneScan struct {
	deferred    bool      // a defer reaches Done (directly or via a deferred literal)
	plain       token.Pos // first non-deferred Done
	conditional bool      // that Done sits behind a branch or after a return
}

// checkWgFunc walks one function's statements in order, tracking Add
// sites, and validates every go statement against them.
func checkWgFunc(pass *Pass, node *FuncNode, addsAnywhere map[string]bool) {
	pkg := node.Pkg
	type addSite struct {
		key string
		pos token.Pos
	}
	var adds []addSite

	// addBefore reports whether an Add on key was seen before pos.
	addBefore := func(key string, pos token.Pos) bool {
		for _, a := range adds {
			if a.key == key && a.pos < pos {
				return true
			}
		}
		return false
	}

	var walkStmts func(stmts []ast.Stmt)
	var walkStmt func(s ast.Stmt, prev ast.Stmt)
	walkStmts = func(stmts []ast.Stmt) {
		var prev ast.Stmt
		for _, s := range stmts {
			walkStmt(s, prev)
			prev = s
		}
	}
	walkStmt = func(s ast.Stmt, prev ast.Stmt) {
		switch s := s.(type) {
		case nil:
		case *ast.BlockStmt:
			walkStmts(s.List)
		case *ast.LabeledStmt:
			walkStmt(s.Stmt, nil)
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				if key, _, ok := wgMethodCall(pkg, call, "Add"); ok && key != "" {
					adds = append(adds, addSite{key, call.Pos()})
				}
			}
		case *ast.IfStmt:
			walkStmt(s.Init, nil)
			walkStmts(s.Body.List)
			walkStmt(s.Else, nil)
		case *ast.ForStmt:
			walkStmt(s.Init, nil)
			walkStmts(s.Body.List)
		case *ast.RangeStmt:
			walkStmts(s.Body.List)
		case *ast.SwitchStmt:
			walkStmt(s.Init, nil)
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					walkStmts(cc.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					walkStmts(cc.Body)
				}
			}
		case *ast.SelectStmt:
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					walkStmts(cc.Body)
				}
			}
		case *ast.GoStmt:
			checkSpawn(pass, pkg, node, s, prev, addBefore, addsAnywhere)
		}
	}
	walkStmts(node.body().List)
}

// checkSpawn validates one go statement: the spawned body's Done calls
// have a preceding Add, the Done is defer-shaped, and an immediately
// preceding Add is actually paired with a Done in the body.
func checkSpawn(pass *Pass, pkg *Package, node *FuncNode, gs *ast.GoStmt, prev ast.Stmt,
	addBefore func(string, token.Pos) bool, addsAnywhere map[string]bool) {

	dones := make(map[string]*doneScan)
	if fl, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		// Only a directly spawned literal is a join unit whose internal
		// Add races the spawner's Wait; a named callee is a whole
		// component that may legitimately run its own Add/Wait protocol.
		scanSpawnedBody(pass, pkg, fl.Body, nil, dones, true)
	} else {
		for _, callee := range pass.Prog.resolveCall(pkg, gs.Call) {
			if callee.Decl != nil {
				subst := wgParamSubst(pkg, gs.Call, callee)
				scanSpawnedBody(pass, callee.Pkg, callee.Decl.Body, subst, dones, false)
			}
		}
	}

	for key, scan := range dones {
		display := shortWgKey(key)
		if !addBefore(key, gs.Go) {
			// The Add may live in another function when the WaitGroup is
			// shared state (a struct field drained elsewhere); only a
			// class no loaded function ever Adds to is certainly wrong.
			if isLocalWgKey(key) || !addsAnywhere[key] {
				pass.Reportf(gs.Go,
					"goroutine calls %s.Done but no %s.Add precedes the spawn — Add must be ordered before the go statement, or Wait can return early",
					display, display)
			}
		}
		if !scan.deferred && scan.plain.IsValid() && scan.conditional {
			pass.Reportf(scan.plain,
				"%s.Done is not reached on every path of the spawned goroutine — defer %s.Done() at the top of the body",
				display, display)
		}
	}

	// An Add immediately before the spawn is this goroutine's unit; a
	// body that never calls Done on that class hangs Wait.
	if prevAdd, ok := immediateAdd(pkg, prev); ok && dones[prevAdd] == nil {
		display := shortWgKey(prevAdd)
		pass.Reportf(gs.Go,
			"goroutine spawned right after %s.Add never calls %s.Done — Wait hangs; defer %s.Done() in the body",
			display, display, display)
	}
}

// immediateAdd matches `wg.Add(...)` as the statement directly before a
// go statement and returns the WaitGroup class it increments.
func immediateAdd(pkg *Package, prev ast.Stmt) (string, bool) {
	es, ok := prev.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	key, _, ok := wgMethodCall(pkg, call, "Add")
	if !ok || key == "" {
		return "", false
	}
	return key, true
}

// wgParamSubst maps the spawned callee's *sync.WaitGroup parameter
// identities to the caller-side argument identities, mirroring
// lifecycle's paramSubst.
func wgParamSubst(callerPkg *Package, call *ast.CallExpr, callee *FuncNode) map[string]string {
	subst := make(map[string]string)
	ft := callee.Decl.Type
	if ft.Params == nil {
		return subst
	}
	i := 0
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if i >= len(call.Args) {
				return subst
			}
			if obj, ok := callee.Pkg.Info.Defs[name].(*types.Var); ok {
				if argKey := wgKey(callerPkg, call.Args[i]); argKey != "" {
					subst[localKey(obj)] = argKey
				}
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	return subst
}

// scanSpawnedBody records what the spawned body does with each WaitGroup
// class: deferred Dones, plain Dones (and whether they are conditional),
// and — when reportAdds is set (literal spawns only) — Adds, which are
// reported on the spot, because an Add on the spawned side of the go
// statement races Wait no matter what follows.
func scanSpawnedBody(pass *Pass, pkg *Package, body *ast.BlockStmt, subst map[string]string, dones map[string]*doneScan, reportAdds bool) {
	mapKey := func(key string) string {
		if mapped, ok := subst[key]; ok {
			return mapped
		}
		return key
	}
	record := func(key string) *doneScan {
		key = mapKey(key)
		if dones[key] == nil {
			dones[key] = &doneScan{}
		}
		return dones[key]
	}

	sawReturn := false
	var walk func(n ast.Node, depth int, inDefer bool)
	walk = func(n ast.Node, depth int, inDefer bool) {
		switch n := n.(type) {
		case *ast.FuncLit:
			return // a nested goroutine or stored closure, not this body
		case *ast.ReturnStmt:
			sawReturn = true
		case *ast.DeferStmt:
			// defer wg.Done() — or a deferred literal whose body reaches it.
			if key, _, ok := wgMethodCall(pkg, n.Call, "Done"); ok && key != "" {
				record(key).deferred = true
				return
			}
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(c ast.Node) bool {
					if call, ok := c.(*ast.CallExpr); ok {
						if key, _, ok := wgMethodCall(pkg, call, "Done"); ok && key != "" {
							record(key).deferred = true
						}
					}
					return true
				})
				return
			}
			walkChildren(n, func(c ast.Node) { walk(c, depth, true) })
			return
		case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			walkChildren(n, func(c ast.Node) { walk(c, depth+1, inDefer) })
			return
		case *ast.CallExpr:
			if key, recv, ok := wgMethodCall(pkg, n, "Done"); ok && key != "" {
				scan := record(key)
				if inDefer {
					scan.deferred = true
				} else if !scan.plain.IsValid() {
					scan.plain = n.Pos()
					scan.conditional = depth > 0 || sawReturn
				}
				_ = recv
			}
			if key, recv, ok := wgMethodCall(pkg, n, "Add"); ok && key != "" {
				if reportAdds && !definedWithin(pkg, recv, body) {
					pass.Reportf(n.Pos(),
						"%s.Add inside the spawned goroutine races Wait — the waiter can see the counter hit zero first; hoist the Add before the go statement",
						shortWgKey(mapKey(key)))
				}
			}
		}
		walkChildren(n, func(c ast.Node) { walk(c, depth, inDefer) })
	}
	walkChildren(body, func(c ast.Node) { walk(c, 0, false) })
}

// definedWithin reports whether the base variable of a receiver chain is
// declared inside body — a WaitGroup local to the goroutine is its own
// join domain and may Add freely.
func definedWithin(pkg *Package, recv ast.Expr, body *ast.BlockStmt) bool {
	recv = ast.Unparen(recv)
	for {
		if sel, ok := recv.(*ast.SelectorExpr); ok {
			recv = ast.Unparen(sel.X)
			continue
		}
		break
	}
	id, ok := recv.(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := pkg.Info.Uses[id].(*types.Var)
	if !ok {
		if def, okDef := pkg.Info.Defs[id].(*types.Var); okDef {
			obj = def
		} else {
			return false
		}
	}
	return obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
}

// isLocalWgKey reports whether a WaitGroup class key names a function
// local (where the whole Add/spawn ordering is visible) rather than a
// field or package variable shared across functions.
func isLocalWgKey(key string) bool {
	return len(key) > 6 && key[:6] == "local:"
}

// shortWgKey compresses a class key for diagnostics: locals render as
// their variable name, fields and package vars as their dotted tail.
func shortWgKey(key string) string {
	if isLocalWgKey(key) {
		rest := key[6:]
		for i := 0; i < len(rest); i++ {
			if rest[i] == ':' {
				return rest[:i]
			}
		}
		return rest
	}
	return shortName(key)
}
