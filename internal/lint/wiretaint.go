// Checker wiretaint: interprocedural taint analysis of untrusted wire
// input. VeriDP's trust boundary is the wire — every tag report, every
// southbound frame, every capture file and network description is parsed
// from bytes an adversarial or faulty switch controls — and the class of
// bug that actually crashes network servers in production is a tainted
// length or offset reaching an allocation, a slice expression, or a loop
// bound. The checker tracks wire-derived values flow-sensitively through
// each function body and interprocedurally across the PR-2 call graph.
//
// Sources (taint enters the program):
//   - []byte / string parameters of decode-shaped functions (names
//     starting with Unmarshal/Decode/Parse, any case),
//   - byte buffers filled by reads from the network or an io.Reader
//     (net.Conn.Read, ReadFromUDP, io.ReadFull, io.ReadAll, ...),
//   - values populated by encoding/json Decode/Unmarshal.
//
// Sinks (taint must not reach them unsanitized):
//   - make([]T, n) / make(..., n, c) with a tainted size or capacity,
//   - an index expression with a tainted index,
//   - a slice expression with a tainted bound,
//   - a for-loop condition bounded by a tainted value,
//   - indexing or reslicing a wire-derived slice that was never
//     length-checked (the truncated-frame panic class),
//   - passing a tainted value to a helper whose parameter reaches one of
//     the sinks above (the interprocedural case).
//
// Sanitizers (taint is cleared):
//   - an ordering comparison (< <= > >=) of the tainted value against an
//     untainted bound — len(b), a named length constant, a literal —
//     dominating the use (the walk clears the value at the comparison),
//   - any comparison mentioning len(b) marks the slice b length-checked,
//     which satisfies the unchecked-access sink (values read out of b
//     remain tainted: len(b) >= 4 bounds offsets into b, not the bytes),
//   - ranging over a slice marks it length-checked (range is bounded).
//
// Taint is a label {wire, params}: the wire bit is concrete taint, the
// param bitmask is symbolic ("depends on parameter i"), which is what the
// interprocedural fixpoint propagates — a function summary records which
// results carry which parameter bits and which parameters reach sinks, so
// a caller holding concrete taint reports at its own call site.

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WireTaint reports wire-derived lengths and offsets reaching dangerous
// operations without a dominating bounds check.
var WireTaint = &Analyzer{
	Name:   "wiretaint",
	Doc:    "wire-derived lengths/offsets must be bounds-checked before reaching allocations, slice expressions, or loop bounds",
	Global: true,
	Run:    runWireTaint,
}

// taintLabel is the abstract value of one expression: concrete wire taint
// and/or a dependency on the enclosing function's parameters.
type taintLabel struct {
	wire   bool
	params uint64 // bit i set: derived from parameter i (i < 64)
}

func (l taintLabel) clean() bool { return !l.wire && l.params == 0 }

func (l taintLabel) union(o taintLabel) taintLabel {
	return taintLabel{wire: l.wire || o.wire, params: l.params | o.params}
}

// sinkKind distinguishes how a parameter reaches a sink, because the
// caller-side guard differs: a value sink fires on any tainted argument,
// an access sink is satisfied by passing a length-bounded slice.
type sinkKind int

const (
	sinkValue  sinkKind = iota // used as size/index/offset/bound
	sinkAccess                 // indexed/resliced without a length check
)

// paramSink records that a parameter flows to a sink inside the callee.
type paramSink struct {
	kind sinkKind
	pos  token.Pos // sink site in the callee
	what string    // human description of the sink
	via  string    // callee chain for transitive sinks
}

// taintSummary is the per-function interprocedural surface.
type taintSummary struct {
	// results carries the label of the function's return values assuming
	// parameter i has label {params: 1<<i}: the wire bit is set when the
	// body taints its results from its own sources.
	results taintLabel
	// sinks[i] is set when parameter i reaches a sink unsanitized.
	sinks map[int]paramSink
	// sanitized bit i: the body bounds-compares parameter i against a
	// clean value (a validator — it panics or errors on the failing
	// branch), so callers may treat the argument as checked after the
	// call. This is the interprocedural sanitizer: validatePort-style
	// helpers dominate their callers' subsequent uses.
	sanitized uint64
}

// wtState is the whole-analysis state shared across the fixpoint.
type wtState struct {
	prog      *Program
	summaries map[*FuncNode]*taintSummary
	pass      *Pass
	reported  map[token.Pos]bool
}

func runWireTaint(pass *Pass) {
	st := &wtState{
		prog:      pass.Prog,
		summaries: make(map[*FuncNode]*taintSummary, len(pass.Prog.nodes)),
		reported:  make(map[token.Pos]bool),
	}
	for _, n := range st.prog.nodes {
		st.summaries[n] = &taintSummary{sinks: make(map[int]paramSink)}
	}
	// Fixpoint the summaries. Result labels and sanitized masks only
	// grow; sink sets are recomputed each round because a sanitized-param
	// fact discovered late retracts sinks recorded early (t.check(f)
	// clearing f must erase the t.nodes[f] sink). The monotone parts
	// stabilize first, then the sink sets settle; the iteration cap is a
	// backstop against pathological recursion.
	for iter := 0; iter < len(st.prog.nodes)+8; iter++ {
		changed := false
		for _, n := range st.prog.nodes {
			if st.analyze(n, nil) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Reporting pass: same walk, now emitting diagnostics.
	st.pass = pass
	for _, n := range st.prog.nodes {
		st.analyze(n, pass)
	}
}

// analyze walks one function body and returns whether its summary grew.
// With pass == nil it only computes summaries; otherwise it reports.
func (st *wtState) analyze(node *FuncNode, pass *Pass) bool {
	w := &taintWalker{
		st:      st,
		node:    node,
		pkg:     node.Pkg,
		pass:    pass,
		labels:  make(map[*types.Var]taintLabel),
		checked: make(map[*types.Var]bool),
	}
	w.seedParams()
	body := node.body()
	if body != nil {
		// Two passes over the body so loop-carried taint (a value tainted
		// late in an iteration, used early in the next) converges.
		w.walkStmt(body)
		if pass == nil {
			w.walkStmt(body)
		}
	}
	sum := st.summaries[node]
	grew := false
	if w.retLabel.wire && !sum.results.wire {
		sum.results.wire = true
		grew = true
	}
	if w.retLabel.params&^sum.results.params != 0 {
		sum.results.params |= w.retLabel.params
		grew = true
	}
	if w.sanitized&^sum.sanitized != 0 {
		sum.sanitized |= w.sanitized
		grew = true
	}
	// Sinks are replaced wholesale: this walk saw the freshest sanitized
	// facts, so both additions and retractions count as change.
	if len(w.paramSinks) != len(sum.sinks) {
		grew = true
	} else {
		for i := range w.paramSinks {
			if _, ok := sum.sinks[i]; !ok {
				grew = true
				break
			}
		}
	}
	if w.paramSinks == nil {
		sum.sinks = map[int]paramSink{}
	} else {
		sum.sinks = w.paramSinks
	}
	return grew
}

// taintWalker threads taint state through one function body.
type taintWalker struct {
	st   *wtState
	node *FuncNode
	pkg  *Package
	pass *Pass // nil during summary computation

	labels  map[*types.Var]taintLabel // abstract value per local/param
	checked map[*types.Var]bool       // slice/string vars with a len() check
	params  []*types.Var              // declared parameter objects, in order

	retLabel   taintLabel        // union of labels returned anywhere
	paramSinks map[int]paramSink // params reaching sinks in this body
	sanitized  uint64            // params this body bounds-compares
}

// decodeShaped reports whether a function name marks its byte/string
// parameters as wire input.
func decodeShaped(name string) bool {
	lower := strings.ToLower(name)
	for _, prefix := range []string{"unmarshal", "decode", "parse"} {
		if strings.HasPrefix(lower, prefix) {
			return true
		}
	}
	return false
}

// seedParams labels each parameter: symbolic bit i always, plus the wire
// bit when the function is decode-shaped and the parameter carries bytes.
func (w *taintWalker) seedParams() {
	var ft *ast.FuncType
	name := ""
	if w.node.Decl != nil {
		ft = w.node.Decl.Type
		name = w.node.Decl.Name.Name
	} else {
		ft = w.node.Lit.Type
	}
	if ft.Params == nil {
		return
	}
	i := 0
	for _, field := range ft.Params.List {
		for _, id := range field.Names {
			obj, ok := w.pkg.Info.Defs[id].(*types.Var)
			if !ok {
				i++
				continue
			}
			w.params = append(w.params, obj)
			label := taintLabel{}
			if i < 64 {
				label.params = 1 << uint(i)
			}
			if decodeShaped(name) && isBytesOrString(obj.Type()) {
				label.wire = true
			}
			w.labels[obj] = label
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
}

func isBytesOrString(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		b, ok := u.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

// rootVar resolves an expression to the local variable that owns its
// storage ("m", "m.Body", "b[i]" all root at the base object), or nil.
func (w *taintWalker) rootVar(e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj, ok := w.pkg.Info.Uses[e].(*types.Var); ok {
			return obj
		}
		if obj, ok := w.pkg.Info.Defs[e].(*types.Var); ok {
			return obj
		}
	case *ast.SelectorExpr:
		return w.rootVar(e.X)
	case *ast.IndexExpr:
		return w.rootVar(e.X)
	case *ast.SliceExpr:
		return w.rootVar(e.X)
	case *ast.StarExpr:
		return w.rootVar(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return w.rootVar(e.X)
		}
	case *ast.CallExpr:
		// Conversions keep the operand's identity: []byte(s), T(x).
		if w.isConversion(e) && len(e.Args) == 1 {
			return w.rootVar(e.Args[0])
		}
	}
	return nil
}

func (w *taintWalker) isConversion(call *ast.CallExpr) bool {
	if tv, ok := w.pkg.Info.Types[call.Fun]; ok {
		return tv.IsType()
	}
	return false
}

// isLenOf returns the slice/string variable X when e is len(X), else nil.
func (w *taintWalker) isLenOf(e ast.Expr) *types.Var {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || (id.Name != "len" && id.Name != "cap") {
		return nil
	}
	if _, builtin := w.pkg.Info.Uses[id].(*types.Builtin); !builtin {
		return nil
	}
	return w.rootVar(call.Args[0])
}

// labelOf computes the taint label of an expression.
func (w *taintWalker) labelOf(e ast.Expr) taintLabel {
	switch e := ast.Unparen(e).(type) {
	case nil:
		return taintLabel{}
	case *ast.Ident:
		if obj, ok := w.pkg.Info.Uses[e].(*types.Var); ok {
			return w.labels[obj]
		}
		return taintLabel{}
	case *ast.BasicLit:
		return taintLabel{}
	case *ast.SelectorExpr:
		// A constant selector (pkg.Const) is clean; a field read carries
		// the owner's taint.
		if _, isConst := w.pkg.Info.Uses[e.Sel].(*types.Const); isConst {
			return taintLabel{}
		}
		if root := w.rootVar(e); root != nil {
			return w.labels[root]
		}
		return w.labelOf(e.X)
	case *ast.IndexExpr:
		return w.labelOf(e.X).union(w.labelOf(e.Index))
	case *ast.SliceExpr:
		l := w.labelOf(e.X)
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			if b != nil {
				l = l.union(w.labelOf(b))
			}
		}
		return l
	case *ast.StarExpr:
		return w.labelOf(e.X)
	case *ast.UnaryExpr:
		return w.labelOf(e.X)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return taintLabel{} // booleans never reach a sink
		}
		return w.labelOf(e.X).union(w.labelOf(e.Y))
	case *ast.CallExpr:
		return w.callLabel(e)
	case *ast.TypeAssertExpr:
		return w.labelOf(e.X)
	case *ast.CompositeLit:
		var l taintLabel
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			l = l.union(w.labelOf(elt))
		}
		return l
	case *ast.FuncLit:
		return taintLabel{}
	}
	// Constant-folded expressions are clean regardless of shape.
	if tv, ok := w.pkg.Info.Types[e]; ok && tv.Value != nil {
		return taintLabel{}
	}
	return taintLabel{}
}

// lengthBounded reports whether passing e as a []byte argument satisfies
// a callee's unchecked-access sink: the value's length is already pinned —
// a length-checked variable, a constant-bound reslice, or an array view.
func (w *taintWalker) lengthBounded(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		// b[lo:hi] with constant bounds has a known length.
		constBound := func(x ast.Expr) bool {
			if x == nil {
				return false
			}
			tv, ok := w.pkg.Info.Types[x]
			return ok && tv.Value != nil
		}
		if constBound(e.Low) && constBound(e.High) {
			return true
		}
		if root := w.rootVar(e.X); root != nil && w.checked[root] {
			return true
		}
	case *ast.Ident, *ast.SelectorExpr:
		if root := w.rootVar(e); root != nil && w.checked[root] {
			return true
		}
		// Arrays (and slices of arrays) have static length.
		if tv, ok := w.pkg.Info.Types[e]; ok {
			if _, isArr := tv.Type.Underlying().(*types.Array); isArr {
				return true
			}
		}
	}
	return false
}

// report emits one deduplicated diagnostic during the reporting pass.
func (w *taintWalker) report(pos token.Pos, format string, args ...interface{}) {
	if w.pass == nil || w.st.reported[pos] {
		return
	}
	w.st.reported[pos] = true
	w.pass.Reportf(pos, format, args...)
}

// hitSink handles a sink fed by label: concrete wire taint reports here;
// symbolic parameter taint records a summary entry for the callers.
func (w *taintWalker) hitSink(kind sinkKind, pos token.Pos, what string, label taintLabel) {
	if label.wire {
		w.report(pos, "%s derived from untrusted wire input without a dominating bounds check", what)
		return
	}
	if label.params == 0 {
		return
	}
	if w.paramSinks == nil {
		w.paramSinks = make(map[int]paramSink)
	}
	for i := range w.params {
		if i < 64 && label.params&(1<<uint(i)) != 0 {
			if _, ok := w.paramSinks[i]; !ok {
				w.paramSinks[i] = paramSink{kind: kind, pos: pos, what: what}
			}
		}
	}
}

// sanitizeCond applies the sanitizer model to one condition expression:
// ordering comparisons clear the tainted side when the other side is
// clean, and any mention of len(X) marks X length-checked.
func (w *taintWalker) sanitizeCond(cond ast.Expr) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND, token.LOR:
			w.sanitizeCond(e.X)
			w.sanitizeCond(e.Y)
			return
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			w.markLenChecked(e.X)
			w.markLenChecked(e.Y)
			lx, ly := w.labelOf(e.X), w.labelOf(e.Y)
			if !lx.clean() && ly.clean() {
				w.clearRoots(e.X)
			}
			if !ly.clean() && lx.clean() {
				w.clearRoots(e.Y)
			}
		case token.EQL, token.NEQ:
			// len(b) == 0 style guards bound the slice but not values.
			w.markLenChecked(e.X)
			w.markLenChecked(e.Y)
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			w.sanitizeCond(e.X)
		}
	}
}

// markLenChecked scans an expression tree for len(X)/cap(X) and marks X.
func (w *taintWalker) markLenChecked(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if v := w.isLenOf(call); v != nil {
				w.checked[v] = true
			}
		}
		return true
	})
}

// clearRoots removes concrete and symbolic taint from every variable
// mentioned in a sanitizing comparison side. Clearing a parameter is
// recorded in the sanitized mask so callers learn this function is a
// validator for that argument.
func (w *taintWalker) clearRoots(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj, ok := w.pkg.Info.Uses[id].(*types.Var); ok {
			if _, tracked := w.labels[obj]; tracked {
				w.labels[obj] = taintLabel{}
				for i, p := range w.params {
					if p == obj && i < 64 {
						w.sanitized |= 1 << uint(i)
					}
				}
			}
		}
		return true
	})
}

// taint merges a label into the variable rooted at e (field and element
// writes taint the owner; a whole-variable assignment replaces instead —
// the callers pick which).
func (w *taintWalker) taintRoot(e ast.Expr, label taintLabel) {
	if root := w.rootVar(e); root != nil {
		w.labels[root] = w.labels[root].union(label)
	}
}

func (w *taintWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, stmt := range s.List {
			w.walkStmt(stmt)
		}
	case *ast.ExprStmt:
		w.walkExpr(s.X)
	case *ast.AssignStmt:
		w.walkAssign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					w.walkExpr(v)
				}
				for i, id := range vs.Names {
					obj, ok := w.pkg.Info.Defs[id].(*types.Var)
					if !ok {
						continue
					}
					if len(vs.Values) == len(vs.Names) {
						w.labels[obj] = w.labelOf(vs.Values[i])
					} else if len(vs.Values) == 1 {
						w.labels[obj] = w.labelOf(vs.Values[0])
					} else {
						w.labels[obj] = taintLabel{}
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.walkExpr(r)
			w.retLabel = w.retLabel.union(w.labelOf(r))
		}
	case *ast.IfStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Cond)
		w.sanitizeCond(s.Cond)
		w.walkStmt(s.Body)
		w.walkStmt(s.Else)
	case *ast.ForStmt:
		w.walkStmt(s.Init)
		if s.Cond != nil {
			w.walkExpr(s.Cond)
			w.checkLoopBound(s.Cond)
		}
		w.walkStmt(s.Body)
		w.walkStmt(s.Post)
	case *ast.RangeStmt:
		w.walkExpr(s.X)
		// Ranging is intrinsically bounded; the ranged slice needs no
		// further length check, and the iteration vars are clean.
		if root := w.rootVar(s.X); root != nil {
			w.checked[root] = true
		}
		for _, v := range []ast.Expr{s.Key, s.Value} {
			if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
				if obj, ok := w.pkg.Info.Defs[id].(*types.Var); ok {
					w.labels[obj] = taintLabel{}
				}
			}
		}
		// The element of a wire-derived slice is still wire data.
		if s.Value != nil {
			if id, ok := s.Value.(*ast.Ident); ok && id.Name != "_" {
				if obj, ok := w.pkg.Info.Defs[id].(*types.Var); ok {
					w.labels[obj] = w.labelOf(s.X)
				}
			}
		}
		w.walkStmt(s.Body)
	case *ast.SwitchStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Tag)
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CaseClause)
			for _, e := range cc.List {
				w.walkExpr(e)
			}
			for _, b := range cc.Body {
				w.walkStmt(b)
			}
		}
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init)
		w.walkStmt(s.Assign)
		for _, clause := range s.Body.List {
			for _, b := range clause.(*ast.CaseClause).Body {
				w.walkStmt(b)
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			w.walkStmt(cc.Comm)
			for _, b := range cc.Body {
				w.walkStmt(b)
			}
		}
	case *ast.SendStmt:
		w.walkExpr(s.Chan)
		w.walkExpr(s.Value)
	case *ast.IncDecStmt:
		w.walkExpr(s.X)
	case *ast.GoStmt:
		w.walkExpr(s.Call)
	case *ast.DeferStmt:
		w.walkExpr(s.Call)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	}
}

// checkLoopBound fires the loop-bound sink on `i < n` with tainted n.
func (w *taintWalker) checkLoopBound(cond ast.Expr) {
	e, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return
	}
	switch e.Op {
	case token.LAND, token.LOR:
		w.checkLoopBound(e.X)
		w.checkLoopBound(e.Y)
		return
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
	default:
		return
	}
	// A bound of len(X) also counts as a length check for X.
	w.markLenChecked(e.X)
	w.markLenChecked(e.Y)
	sides := [2]ast.Expr{e.X, e.Y}
	for i, side := range sides {
		l := w.labelOf(side)
		if l.clean() {
			continue
		}
		// Comparing the tainted value against a constant is itself the
		// bound: `for sum > 0xffff { fold }` is the checksum idiom, not an
		// attacker-stretched loop. Consistent with if-cond sanitizing.
		other := sides[1-i]
		if tv, ok := w.pkg.Info.Types[other]; ok && tv.Value != nil {
			w.clearRoots(side)
			continue
		}
		w.hitSink(sinkValue, e.Pos(), fmt.Sprintf("loop bound %q", exprText(side)), l)
	}
}

func (w *taintWalker) walkAssign(s *ast.AssignStmt) {
	for _, r := range s.Rhs {
		w.walkExpr(r)
	}
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// Tuple assignment: every target inherits the call's label.
		label := w.labelOf(s.Rhs[0])
		for _, l := range s.Lhs {
			w.assign(l, label, s.Tok)
		}
		return
	}
	for i, l := range s.Lhs {
		if i < len(s.Rhs) {
			label := w.labelOf(s.Rhs[i])
			if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
				label = label.union(w.labelOf(l)) // x += y keeps x's taint
			}
			w.assign(l, label, s.Tok)
			// buf := make([]byte, n): the length is program-chosen (a
			// tainted n already fired the allocation sink), so even once a
			// read or element store taints the contents, offset access is
			// not the truncated-input panic class.
			if w.isMakeCall(s.Rhs[i]) {
				if root := w.rootVar(l); root != nil {
					w.checked[root] = true
				}
			}
		}
	}
	for _, l := range s.Lhs {
		w.walkIndexUse(l)
	}
}

// isMakeCall reports whether e is a call of the builtin make.
func (w *taintWalker) isMakeCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	_, builtin := w.pkg.Info.Uses[id].(*types.Builtin)
	return builtin
}

// assign stores label into the target. Whole-variable stores replace the
// label (a clean reassignment kills taint); field/element stores merge.
func (w *taintWalker) assign(target ast.Expr, label taintLabel, tok token.Token) {
	switch t := ast.Unparen(target).(type) {
	case *ast.Ident:
		if t.Name == "_" {
			return
		}
		if obj, ok := w.pkg.Info.Defs[t].(*types.Var); ok {
			w.labels[obj] = label
			return
		}
		if obj, ok := w.pkg.Info.Uses[t].(*types.Var); ok {
			w.labels[obj] = label
			return
		}
	default:
		if !label.clean() {
			w.taintRoot(target, label)
		}
	}
}

func (w *taintWalker) walkExpr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.callLabel(e) // walks args, applies sources/sinks
	case *ast.ParenExpr:
		w.walkExpr(e.X)
	case *ast.UnaryExpr:
		w.walkExpr(e.X)
	case *ast.BinaryExpr:
		w.walkExpr(e.X)
		// Short-circuit guards dominate their right operand:
		// `len(b) >= 2 && b[1] == x` and `len(f) < 2 || use(f[1])` both
		// length-check before the access evaluates.
		if e.Op == token.LAND || e.Op == token.LOR {
			w.sanitizeCond(e.X)
		}
		w.walkExpr(e.Y)
	case *ast.StarExpr:
		w.walkExpr(e.X)
	case *ast.SelectorExpr:
		w.walkExpr(e.X)
	case *ast.IndexExpr:
		w.walkExpr(e.X)
		w.walkExpr(e.Index)
		w.walkIndexUse(e)
	case *ast.SliceExpr:
		w.walkExpr(e.X)
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			w.walkExpr(b)
		}
		w.walkIndexUse(e)
	case *ast.TypeAssertExpr:
		w.walkExpr(e.X)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			w.walkExpr(elt)
		}
	case *ast.KeyValueExpr:
		w.walkExpr(e.Value)
	case *ast.FuncLit:
		// Literal bodies are separate analysis roots (registered by the
		// lockset walk); captured taint is not modeled.
	}
}

// walkIndexUse applies the index/slice sinks to one access expression.
func (w *taintWalker) walkIndexUse(e ast.Expr) {
	switch e := ast.Unparen(e).(type) {
	case *ast.IndexExpr:
		// Maps index by key, not offset — no panic class there.
		if tv, ok := w.pkg.Info.Types[e.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				return
			}
		}
		if l := w.labelOf(e.Index); !l.clean() {
			w.hitSink(sinkValue, e.Pos(), fmt.Sprintf("index %q", exprText(e.Index)), l)
			return
		}
		w.checkUncheckedAccess(e, e.X)
	case *ast.SliceExpr:
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			if b == nil {
				continue
			}
			if l := w.labelOf(b); !l.clean() {
				w.hitSink(sinkValue, e.Pos(), fmt.Sprintf("slice bound %q", exprText(b)), l)
				return
			}
		}
		// A bare reslice b[:] or b[0:] cannot panic.
		if e.Low == nil && e.High == nil {
			return
		}
		w.checkUncheckedAccess(e, e.X)
	}
}

// checkUncheckedAccess fires the truncated-frame sink: constant-offset
// access into a wire-derived slice that was never length-checked.
func (w *taintWalker) checkUncheckedAccess(access ast.Expr, x ast.Expr) {
	label := w.labelOf(x)
	if label.clean() {
		return
	}
	// Arrays have static bounds.
	if tv, ok := w.pkg.Info.Types[x]; ok {
		t := tv.Type.Underlying()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem().Underlying()
		}
		if _, isArr := t.(*types.Array); isArr {
			return
		}
	}
	if root := w.rootVar(x); root != nil && w.checked[root] {
		return
	}
	what := fmt.Sprintf("access %q into wire-derived bytes with no length check", exprText(access))
	if label.wire {
		w.report(access.Pos(), "%s — truncated input panics here; check len first", what)
		return
	}
	w.hitSink(sinkAccess, access.Pos(), what, label)
}

// callLabel walks a call's arguments, applies source and sink rules, and
// returns the label of the call's results.
func (w *taintWalker) callLabel(call *ast.CallExpr) taintLabel {
	fun := ast.Unparen(call.Fun)
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		w.walkExpr(sel.X)
	} else if fl, isLit := fun.(*ast.FuncLit); isLit {
		w.walkExpr(fl)
	}
	for _, arg := range call.Args {
		w.walkExpr(arg)
	}

	// Type conversion: the operand's label passes through.
	if w.isConversion(call) && len(call.Args) == 1 {
		return w.labelOf(call.Args[0])
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := w.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "len", "cap":
				// Ground truth about real data: the result is clean, and
				// observing len(X) anywhere marks X length-aware — the
				// unchecked-access sink targets decoders that never
				// consider length at all (nblocks := len(data)/4 then
				// data[i*4:] is the bounded murmur3 idiom, not a bug).
				if v := w.isLenOf(call); v != nil {
					w.checked[v] = true
				}
				return taintLabel{}
			case "make":
				for _, sz := range call.Args[1:] {
					if l := w.labelOf(sz); !l.clean() {
						w.hitSink(sinkValue, call.Pos(), fmt.Sprintf("allocation size %q", exprText(sz)), l)
					}
				}
				return taintLabel{}
			case "copy":
				// copy(dst, src): dst absorbs src's taint.
				if len(call.Args) == 2 {
					w.taintRoot(call.Args[0], w.labelOf(call.Args[1]))
				}
				return taintLabel{}
			case "append":
				var l taintLabel
				for _, a := range call.Args {
					l = l.union(w.labelOf(a))
				}
				return l
			default:
				return taintLabel{}
			}
		}
	}

	// Intrinsic sources: reads from the network / an io.Reader fill their
	// buffer arguments with wire bytes; json decoding fills its target.
	if label, isSource := w.applyIntrinsicSource(call, fun); isSource {
		return label
	}

	// Resolved calls: use the callee summaries.
	callees := w.st.prog.resolveCall(w.pkg, call)
	if len(callees) > 0 {
		var out taintLabel
		var sanitizedArgs uint64
		for _, callee := range callees {
			sum := w.st.summaries[callee]
			if sum == nil {
				continue
			}
			if sum.results.wire {
				out.wire = true
			}
			sanitizedArgs |= sum.sanitized
			for i, arg := range call.Args {
				argLabel := w.labelOf(arg)
				if i < 64 && sum.results.params&(1<<uint(i)) != 0 {
					out = out.union(argLabel)
				}
				ps, sinks := sum.sinks[i]
				if !sinks || argLabel.clean() {
					continue
				}
				if ps.kind == sinkAccess && w.lengthBounded(arg) {
					continue // caller already pinned the slice's length
				}
				// A decode-shaped callee taints its own parameter: the
				// in-body diagnostic already covers it; a call-site report
				// would double-count the same root cause.
				if callee.Decl != nil && decodeShaped(callee.Decl.Name.Name) {
					continue
				}
				via := callee.Name
				if ps.via != "" {
					via = callee.Name + " → " + ps.via
				}
				if argLabel.wire {
					w.report(call.Pos(),
						"wire-tainted %q passed to %s, where %s (at %s) has no dominating bounds check",
						exprText(arg), via, ps.what, w.st.prog.shortPos(ps.pos))
				} else {
					// Still symbolic: lift the callee's sink to this
					// function's own parameters.
					for pi := range w.params {
						if pi < 64 && argLabel.params&(1<<uint(pi)) != 0 {
							if w.paramSinks == nil {
								w.paramSinks = make(map[int]paramSink)
							}
							if _, ok := w.paramSinks[pi]; !ok {
								w.paramSinks[pi] = paramSink{kind: ps.kind, pos: ps.pos, what: ps.what, via: via}
							}
						}
					}
				}
			}
		}
		// The callee is a validator for these arguments: it bounds-checks
		// them (panicking or erroring on the failing branch), which is
		// the dominating check for everything the caller does after.
		for i, arg := range call.Args {
			if i < 64 && sanitizedArgs&(1<<uint(i)) != 0 {
				w.clearRoots(arg)
			}
		}
		return out
	}

	// Unresolved call (stdlib, interface with no loaded impl): results
	// conservatively union the argument labels; tainted arguments also
	// leak into writable (slice/pointer) arguments.
	var out taintLabel
	for _, a := range call.Args {
		out = out.union(w.labelOf(a))
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		out = out.union(w.labelOf(sel.X))
	}
	if !out.clean() {
		for _, a := range call.Args {
			if t, ok := w.pkg.Info.Types[a]; ok {
				switch t.Type.Underlying().(type) {
				case *types.Slice, *types.Pointer:
					w.taintRoot(a, out)
				}
			}
		}
	}
	return out
}

// applyIntrinsicSource recognizes the wire-read shapes and taints the
// written-to buffer arguments. The second result reports whether the call
// IS a source; the first is the label of the call's own results — reads
// returning (n int, err error) are clean (io contracts bound n by the
// buffer length the caller chose), while ReadAll-style calls return the
// wire bytes themselves.
func (w *taintWalker) applyIntrinsicSource(call *ast.CallExpr, fun ast.Expr) (taintLabel, bool) {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return taintLabel{}, false
	}
	name := sel.Sel.Name
	taintArgs := func(args []ast.Expr) {
		for _, a := range args {
			w.taintRoot(a, taintLabel{wire: true})
		}
	}
	// Package-level io helpers: io.ReadFull(r, buf), io.ReadAll(r), ...
	if obj, ok := w.pkg.Info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil {
		switch obj.Pkg().Path() {
		case "strings", "bytes":
			// Index-family results are valid offsets into their first
			// argument by contract (or -1, which callers guard): treating
			// them as clean and the searched value as length-aware keeps
			// `s[strings.LastIndex(s, "/")+1:]` quiet.
			if strings.HasPrefix(name, "Index") || strings.HasPrefix(name, "LastIndex") {
				if len(call.Args) > 0 {
					if root := w.rootVar(call.Args[0]); root != nil {
						w.checked[root] = true
					}
				}
				return taintLabel{}, true
			}
			return taintLabel{}, false
		case "io":
			switch name {
			case "ReadFull", "ReadAtLeast":
				taintArgs(call.Args[1:])
				return taintLabel{}, true
			case "ReadAll":
				return taintLabel{wire: true}, true
			}
		case "encoding/json":
			if name == "Unmarshal" || name == "Decode" {
				taintArgs(call.Args)
				return taintLabel{}, true
			}
		}
	}
	// Method reads on net/io/bufio receivers: Read, ReadFromUDP, ... and
	// json.Decoder.Decode.
	recvT := typeOf(w.pkg, sel.X)
	if recvT == nil {
		return taintLabel{}, false
	}
	if _, isDec := isNamed(recvT, "encoding/json", "Decoder"); isDec && name == "Decode" {
		taintArgs(call.Args)
		return taintLabel{}, true
	}
	switch declaredPkgPath(recvT) {
	case "net", "io", "bufio", "os":
		switch name {
		case "Read", "ReadFrom", "ReadFromUDP", "ReadFromIP", "ReadMsgUDP":
			taintArgs(call.Args)
			return taintLabel{}, true
		case "ReadBytes", "ReadString", "ReadSlice":
			// bufio-style: the read bytes come back as the result.
			return taintLabel{wire: true}, true
		}
	}
	return taintLabel{}, false
}

// declaredPkgPath returns the package path of a named (possibly pointer)
// type, or "".
func declaredPkgPath(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	if obj := named.Obj(); obj != nil && obj.Pkg() != nil {
		return obj.Pkg().Path()
	}
	return ""
}

// exprText renders an expression for diagnostics.
func exprText(e ast.Expr) string {
	return types.ExprString(e)
}
