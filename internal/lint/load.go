// Package loading without golang.org/x/tools: `go list -export -json
// -deps` resolves the package patterns AND compiles export data for the
// whole dependency graph into the build cache; the stdlib gc importer is
// then pointed at those export files through its lookup hook. Each target
// package is parsed from source and type-checked against that importer,
// which is exactly what the compiler itself sees.

package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one parsed, type-checked lint target.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// GoList runs `go list -export -json -deps patterns...` in dir and
// returns the export-data map (import path → export file) for the whole
// dependency graph plus the metadata of the directly matched packages.
func GoList(dir string, patterns ...string) (map[string]string, []listPkg, error) {
	args := append([]string{
		"list", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Incomplete,Error",
		"-deps",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.Bytes())
	}
	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	return exports, targets, nil
}

// NewImporter returns a types.Importer that resolves every import from
// the given export-data files.
func NewImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// CheckFiles parses the named source files and type-checks them as one
// package against imp. Used by Load for real packages and by the tests
// for the testdata corpus.
func CheckFiles(fset *token.FileSet, imp types.Importer, importPath string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Types:      pkg,
		Info:       info,
	}, nil
}

// Load resolves patterns relative to dir and returns every matched
// non-standard package, parsed and type-checked. Test files are not
// loaded; `go vet` and `go test -race` cover those.
func Load(dir string, patterns ...string) ([]*Package, error) {
	exports, targets, err := GoList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := NewImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		filenames := make([]string, len(t.GoFiles))
		for i, g := range t.GoFiles {
			filenames[i] = filepath.Join(t.Dir, g)
		}
		pkg, err := CheckFiles(fset, imp, t.ImportPath, filenames)
		if err != nil {
			return nil, err
		}
		pkg.Dir = t.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
