// Whole-program call graph over the loaded packages, still stdlib-only.
// Each package is type-checked separately against export data, so the
// same function is represented by *different* types.Func objects in its
// defining package and in its importers; functions are therefore keyed
// by a stable string ("pkgpath.(*Type).Method" / "pkgpath.Func") that
// unifies the two. Dispatch resolution is static for direct calls and
// conservative for interface calls: an interface method call fans out to
// every loaded concrete type whose method set satisfies the interface.

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Program is the whole-program view the Global analyzers run over: every
// loaded package, a function index, per-function lockset summaries, and
// the set of channels the program ever closes (for lifecycle analysis).
type Program struct {
	Pkgs []*Package
	Fset *token.FileSet

	funcs map[string]*FuncNode // funcKey → node, declared funcs with bodies
	nodes []*FuncNode          // all nodes (decls + literals), build order
	named []namedType          // every top-level named type, for dispatch

	// closedChans holds a stable key (see chanKey) for every channel the
	// program passes to close().
	closedChans map[string]bool

	mayAcquireMemo map[*FuncNode]map[lockKey]acquireInfo
	mayBlockMemo   map[*FuncNode]*blockInfo
}

type namedType struct {
	t   *types.Named
	pkg *Package
}

// FuncNode is one analyzed function body: a declared function/method or
// a function literal (literals are roots of their own, analyzed with an
// empty entry lockset — a goroutine or stored closure does not inherit
// its creator's locks).
type FuncNode struct {
	Name string        // display name for diagnostics
	Decl *ast.FuncDecl // exactly one of Decl/Lit is set
	Lit  *ast.FuncLit
	Pkg  *Package
	Sum  *Summary
}

func (n *FuncNode) body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// funcKey renders the stable cross-package identity of a declared
// function, or "" when it has none (builtins, errors).
func funcKey(obj *types.Func) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		ptr := ""
		if p, isPtr := t.(*types.Pointer); isPtr {
			t, ptr = p.Elem(), "*"
		}
		named, isNamed := t.(*types.Named)
		if !isNamed {
			return ""
		}
		return obj.Pkg().Path() + ".(" + ptr + named.Obj().Name() + ")." + obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// shortName compresses "veridp/internal/controller.(*Server).Barrier" to
// "controller.(*Server).Barrier" for diagnostics.
func shortName(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

// BuildProgram indexes every function body across pkgs and summarizes
// each one's lock behavior. All packages must share one FileSet.
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:        pkgs,
		funcs:       make(map[string]*FuncNode),
		closedChans: make(map[string]bool),
	}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	} else {
		p.Fset = token.NewFileSet()
	}
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
				if named, ok := tn.Type().(*types.Named); ok {
					p.named = append(p.named, namedType{named, pkg})
				}
			}
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				node := &FuncNode{Decl: fd, Pkg: pkg}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					if key := funcKey(obj); key != "" {
						node.Name = shortName(key)
						p.funcs[key] = node
					}
				}
				if node.Name == "" {
					node.Name = fd.Name.Name
				}
				p.nodes = append(p.nodes, node)
			}
		}
	}
	// Summarize every declared body; literals discovered inside are
	// appended to p.nodes by the walk and summarized in turn.
	for i := 0; i < len(p.nodes); i++ {
		p.summarize(p.nodes[i])
	}
	p.scanCloses()
	return p
}

// resolveCall maps one call expression in pkg to the loaded function
// nodes it can reach: the static callee for direct calls, every
// conservative implementation for interface method calls, nothing for
// dynamic calls through plain function values.
func (p *Program) resolveCall(pkg *Package, call *ast.CallExpr) []*FuncNode {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return p.lookup(obj)
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			obj, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			recv := sel.Recv()
			if iface := underlyingInterface(recv); iface != nil {
				return p.implementations(iface, obj.Name())
			}
			return p.lookup(obj)
		}
		// Package-qualified call: pkg.Func.
		if obj, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return p.lookup(obj)
		}
	}
	return nil
}

func (p *Program) lookup(obj *types.Func) []*FuncNode {
	if node, ok := p.funcs[funcKey(obj)]; ok {
		return []*FuncNode{node}
	}
	return nil
}

func underlyingInterface(t types.Type) *types.Interface {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	iface, _ := t.Underlying().(*types.Interface)
	return iface
}

// implementations returns the loaded method bodies named method on every
// top-level named type whose method set satisfies iface.
func (p *Program) implementations(iface *types.Interface, method string) []*FuncNode {
	var out []*FuncNode
	seen := make(map[*FuncNode]bool)
	for _, nt := range p.named {
		if _, isIface := nt.t.Underlying().(*types.Interface); isIface {
			continue
		}
		if !types.Implements(nt.t, iface) && !types.Implements(types.NewPointer(nt.t), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(nt.t), true, nt.t.Obj().Pkg(), method)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if node, ok := p.funcs[funcKey(fn)]; ok && !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// localKey is the identity of one function-local variable object.
func localKey(obj *types.Var) string {
	return fmt.Sprintf("local:%s:%d", obj.Name(), obj.Pos())
}

// chanKey renders a stable program-wide identity for a channel-valued
// expression: struct fields as "pkg.Type.field", package vars as
// "pkg.var", locals by object position. Returns "" when the expression
// has no stable identity (map lookups, call results, ...).
func chanKey(pkg *Package, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj, ok := pkg.Info.Uses[e].(*types.Var)
		if !ok {
			if def, okDef := pkg.Info.Defs[e].(*types.Var); okDef {
				obj = def
			} else {
				return ""
			}
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return localKey(obj)
	case *ast.SelectorExpr:
		sel, ok := pkg.Info.Selections[e]
		if ok && sel.Kind() == types.FieldVal {
			if named, okNamed := derefNamed(sel.Recv()); okNamed && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name
			}
			return ""
		}
		if obj, okUse := pkg.Info.Uses[e.Sel].(*types.Var); okUse && obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	}
	return ""
}

// scanCloses records every close(ch) target in the program.
func (p *Program) scanCloses() {
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "close" {
					return true
				}
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				if key := chanKey(pkg, call.Args[0]); key != "" {
					p.closedChans[key] = true
				}
				return true
			})
		}
	}
}
