// Checker atomicfield: all-or-nothing atomicity. A word that is ever
// accessed through sync/atomic is part of a lock-free protocol — the
// collector's per-shard counters, the monitor's verdict totals, the
// snapshot pointer — and a single plain load or store of the same word
// is a data race the race detector only catches if a test happens to
// interleave it. The checker makes the discipline structural, in two
// halves:
//
// Function-style atomics: any field, package variable, or local whose
// address is passed as the first argument to a sync/atomic function
// (atomic.AddUint64(&s.hits, 1), ...) is classified atomic, and every
// other appearance of the same variable — reads, writes, address-takes —
// anywhere in the program is flagged, citing one representative atomic
// access site. Identity is the same cross-package key the other checkers
// use ("pkg.Type.field" / "pkg.var" / local object), so a field
// atomically updated in one package and plainly read in another is still
// caught.
//
// Typed atomics (atomic.Uint64, atomic.Int64, atomic.Bool, ...,
// atomic.Pointer[T], atomic.Value): the type system already prevents
// plain arithmetic, but not copying — `x := s.counter` smuggles the
// value out of the protocol (and go vet's copylocks only catches some
// shapes). Here a typed-atomic expression may only appear as a method
// receiver (s.counter.Add(1)) or an address-take (&s.counter); any other
// use by value is flagged. Initialize typed atomics with their zero
// value inside composite literals rather than by assignment.
//
// The checker is flow-blind on purpose: a plain write that is provably
// before any goroutine starts is still flagged. Constructors should
// publish zero values or use the atomic API — the uniformity is what
// makes the sharding and verdict-cache work safe to refactor.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AtomicField enforces that atomically-accessed state is accessed
// atomically everywhere.
var AtomicField = &Analyzer{
	Name:   "atomicfield",
	Doc:    "state accessed via sync/atomic anywhere must be accessed atomically everywhere; typed atomics must not be copied by value",
	Global: true,
	Run:    runAtomicField,
}

// atomicFuncPrefixes match the sync/atomic function families whose first
// argument is the address of the word being accessed.
var atomicFuncPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "Or", "And"}

// typedAtomicNames are the sync/atomic struct types with method APIs.
var typedAtomicNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// atomicClass is one atomically-accessed variable.
type atomicClass struct {
	display string    // expression text at the classifying site
	pos     token.Pos // representative atomic access, for the diagnostic
}

type afieldState struct {
	pass    *Pass
	prog    *Program
	classes map[string]*atomicClass // chanKey → class
	allowed map[token.Pos]bool      // operand positions inside atomic calls
}

func runAtomicField(pass *Pass) {
	st := &afieldState{
		pass:    pass,
		prog:    pass.Prog,
		classes: make(map[string]*atomicClass),
		allowed: make(map[token.Pos]bool),
	}
	st.collectClasses()
	st.checkPlainAccess()
	st.checkTypedCopies()
}

// isAtomicPkgFunc reports whether call is sync/atomic.<Family><Width>(...)
// and returns its first argument.
func isAtomicPkgFunc(pkg *Package, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil, false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return nil, false
	}
	for _, prefix := range atomicFuncPrefixes {
		if strings.HasPrefix(sel.Sel.Name, prefix) {
			return call.Args[0], true
		}
	}
	return nil, false
}

// collectClasses finds every &x handed to a sync/atomic function and
// classifies x as atomic.
func (st *afieldState) collectClasses() {
	for _, pkg := range st.prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				arg, ok := isAtomicPkgFunc(pkg, call)
				if !ok {
					return true
				}
				addr, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || addr.Op != token.AND {
					return true
				}
				inner := ast.Unparen(addr.X)
				key := chanKey(pkg, inner)
				if key == "" {
					return true
				}
				if st.classes[key] == nil {
					st.classes[key] = &atomicClass{display: exprText(inner), pos: inner.Pos()}
				}
				st.allowed[inner.Pos()] = true
				return true
			})
		}
	}
}

// checkPlainAccess flags every appearance of a classified variable that
// is not one of the recorded atomic operands.
func (st *afieldState) checkPlainAccess() {
	if len(st.classes) == 0 {
		return
	}
	type finding struct {
		pos   token.Pos
		class *atomicClass
	}
	var finds []finding
	for _, pkg := range st.prog.Pkgs {
		for _, file := range pkg.Files {
			var stack []ast.Node
			ast.Inspect(file, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				defer func() { stack = append(stack, n) }()
				e, ok := n.(ast.Expr)
				if !ok {
					return true
				}
				switch e.(type) {
				case *ast.Ident, *ast.SelectorExpr:
				default:
					return true
				}
				if len(stack) > 0 {
					// The Sel half of a selector is reported via the whole
					// selector expression; skip it here.
					if sel, isSel := stack[len(stack)-1].(*ast.SelectorExpr); isSel && sel.Sel == n {
						return true
					}
				}
				key := chanKey(pkg, e)
				if key == "" {
					return true
				}
				class, classified := st.classes[key]
				if !classified || st.allowed[ast.Unparen(e).Pos()] {
					return true
				}
				// Declarations of the variable itself are not accesses.
				if id, isIdent := e.(*ast.Ident); isIdent {
					if _, isDef := pkg.Info.Defs[id]; isDef {
						return true
					}
				}
				finds = append(finds, finding{e.Pos(), class})
				// Returning true is safe: the inner chain never re-flags —
				// the Sel ident is filtered above and the base roots at a
				// different (unclassified) variable.
				return true
			})
		}
	}
	sort.Slice(finds, func(i, j int) bool { return finds[i].pos < finds[j].pos })
	for _, f := range finds {
		st.pass.Reportf(f.pos,
			"%s is accessed with sync/atomic at %s; this plain access races with it — use the atomic API everywhere",
			f.class.display, st.prog.shortPos(f.class.pos))
	}
}

// typedAtomic returns the sync/atomic type name when t is a typed
// atomic (atomic.Uint64, atomic.Pointer[T], ...).
func typedAtomic(t types.Type) (string, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return "", false
	}
	if !typedAtomicNames[obj.Name()] {
		return "", false
	}
	return obj.Name(), true
}

// checkTypedCopies flags typed-atomic values used outside the two
// allowed contexts: method receiver and address-take.
func (st *afieldState) checkTypedCopies() {
	for _, pkg := range st.prog.Pkgs {
		for _, file := range pkg.Files {
			var stack []ast.Node
			ast.Inspect(file, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				defer func() { stack = append(stack, n) }()
				e, ok := n.(ast.Expr)
				if !ok {
					return true
				}
				tv, ok := pkg.Info.Types[e]
				if !ok || tv.IsType() || tv.Type == nil {
					return true
				}
				name, ok := typedAtomic(tv.Type)
				if !ok {
					return true
				}
				if _, isLit := e.(*ast.CompositeLit); isLit {
					return true // zero-value construction inside a literal
				}
				// Climb past parens to the effective parent (n itself is not
				// pushed until this callback returns, so the parent is the
				// current stack top).
				parent := parentAbove(stack, len(stack))
				switch p := parent.(type) {
				case *ast.SelectorExpr:
					if p.Sel == n {
						return true // field name inside the selector; whole expr carries the check
					}
					return true // receiver of a method (s.counter.Add) or deeper field path
				case *ast.UnaryExpr:
					if p.Op == token.AND {
						return true // &s.counter — pointer to the atomic, fine
					}
				case *ast.KeyValueExpr:
					if p.Key == n {
						return true // struct-literal field name
					}
				}
				st.pass.Reportf(e.Pos(),
					"sync/atomic.%s used by value — typed atomics must be addressed (&x) or used as method receivers, never copied",
					name)
				return true
			})
		}
	}
}

// parentAbove walks the node stack from index i-1 down past ParenExprs
// and returns the first effective ancestor.
func parentAbove(stack []ast.Node, i int) ast.Node {
	for j := i - 1; j >= 0; j-- {
		if _, isParen := stack[j].(*ast.ParenExpr); isParen {
			continue
		}
		return stack[j]
	}
	return nil
}
