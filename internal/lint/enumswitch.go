// Checker enumswitch: exhaustiveness of switches over module-local enum
// types. The protocol grows by appending constants — a new openflow
// MsgType, a new fault Kind, a new flowtable instruction — and every
// switch over one of those sets that neither covers all constants nor
// carries an explicit default silently drops the new arm at runtime
// (a dataplane agent that ignores a message type it was just sent is
// exactly the control-data gap VeriDP exists to detect, created by the
// monitor itself). The contract: a switch over a module-declared integer
// enum type must either enumerate every declared constant of that type
// or say `default:` out loud.
//
// Only module-local enums are checked (the defining package shares the
// module's first import-path segment): stdlib enums like time.Month are
// open sets we don't own. Switches with any non-constant case expression
// are skipped — the checker cannot reason about them.

package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// EnumSwitch reports switches over declared enum constant sets that are
// neither exhaustive nor defaulted.
var EnumSwitch = &Analyzer{
	Name:   "enumswitch",
	Doc:    "switches over module-local enum types must cover every declared constant or carry an explicit default",
	Global: true,
	Run:    runEnumSwitch,
}

func runEnumSwitch(pass *Pass) {
	for _, pkg := range pass.Prog.Pkgs {
		localSeg := firstPathSegment(pkg.ImportPath)
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				checkEnumSwitch(pass, pkg, localSeg, sw)
				return true
			})
		}
	}
}

func checkEnumSwitch(pass *Pass, pkg *Package, localSeg string, sw *ast.SwitchStmt) {
	tagT := typeOf(pkg, sw.Tag)
	if tagT == nil {
		return
	}
	named, ok := tagT.(*types.Named)
	if !ok {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return
	}
	// Only enums this module declares: stdlib/other-module constant sets
	// are open and not ours to police.
	if firstPathSegment(obj.Pkg().Path()) != localSeg {
		return
	}

	// The declared constant set: every package-level constant of exactly
	// this named type. Fewer than two constants is not an enum.
	declared := make(map[string]string) // constant value -> name
	scope := obj.Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		val := c.Val().ExactString()
		// Aliases for one value (e.g. a Max/sentinel naming an existing
		// constant) count once; keep the first name seen.
		if _, dup := declared[val]; !dup {
			declared[val] = name
		}
	}
	if len(declared) < 2 {
		return
	}

	covered := make(map[string]bool)
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: contract satisfied
		}
		for _, e := range cc.List {
			tv, ok := pkg.Info.Types[e]
			if !ok || tv.Value == nil {
				return // non-constant case: can't reason, stay silent
			}
			covered[tv.Value.ExactString()] = true
		}
	}

	var missing []string
	for val, name := range declared {
		if !covered[val] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(),
		"switch on %s.%s is not exhaustive and has no default: missing %s",
		obj.Pkg().Name(), obj.Name(), strings.Join(missing, ", "))
}

// firstPathSegment returns the leading element of an import path, the
// module-identity approximation used to separate our enums from others'.
func firstPathSegment(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}
