// Package lint is veridp-lint: a stdlib-only static-analysis framework
// (go/parser, go/ast, go/types — no external dependencies) that enforces
// repo-specific concurrency and correctness invariants across the VeriDP
// monitoring pipeline. The design mirrors golang.org/x/tools/go/analysis
// — an Analyzer owns a name, a doc string, and a Run function over a Pass
// — but is self-contained so go.mod stays empty.
//
// The checkers exist because VeriDP's monitor is itself concurrent: the
// southbound proxy, the controller server, the dataplane agents, and the
// report collector all spawn goroutines, and a state-corruption bug in
// the monitor masquerades as a data-plane fault (exactly the confusion
// the system is meant to resolve). See the package docs on each checker
// file for the invariant it enforces.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"
)

// Diagnostic is one finding: a position, the checker that produced it,
// and a human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Checker string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Checker)
}

// Pass carries one type-checked package through one analyzer. Prog —
// the shared cross-package view (call graph, summaries), built once per
// run — is set on every pass; for whole-program analyzers
// (Analyzer.Global) the per-package fields are nil and Prog is the
// entire input.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Prog  *Program

	checker string
	diags   *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Checker: p.checker,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named checker. Per-package analyzers get one Pass per
// package; Global analyzers get a single Pass whose Prog field spans
// every loaded package (call graph, lockset summaries), which is what
// the interprocedural checkers need.
type Analyzer struct {
	Name   string
	Doc    string
	Global bool
	Run    func(*Pass)
}

// Analyzers lists every checker in registration order.
var Analyzers = []*Analyzer{
	MutexByValue,
	GuardedBy,
	GoLeak,
	BDDMix,
	SouthboundErr,
	LockOrder,
	LockedBlock,
	Lifecycle,
	WireTaint,
	EnumSwitch,
	SnapFreeze,
	AtomicField,
	AllocFree,
	CtxProp,
	Deadline,
	RetryBound,
	ChanFlow,
	WgSync,
	TickLeak,
}

// ByName returns the analyzer registered under name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Result is one lint run: the findings that stand, and the findings that
// were silenced by `//lint:ignore` directives (counted, never hidden).
type Result struct {
	Diags      []Diagnostic
	Suppressed []Diagnostic
}

// CheckerTiming is one analyzer's wall time within a run.
type CheckerTiming struct {
	Name     string
	Duration time.Duration
}

// Stats reports where a run's wall time went: the single whole-program
// build (call graph + lock summaries, shared by every checker) and each
// analyzer's own pass.
type Stats struct {
	BuildProgram time.Duration
	Checkers     []CheckerTiming
}

// Run applies each analyzer to each package (or, for Global analyzers,
// once to the whole program), filters `//lint:ignore` suppressions, and
// returns both lists sorted by file position. All packages must share
// one token.FileSet, which is how Load and CheckFiles build them.
func Run(pkgs []*Package, analyzers []*Analyzer) Result {
	result, _ := RunStats(pkgs, analyzers)
	return result
}

// RunStats is Run plus per-checker wall-time accounting. The Program is
// built exactly once up front — every Global analyzer shares it, and
// per-package passes carry it too, so no checker ever reconstructs the
// call graph.
func RunStats(pkgs []*Package, analyzers []*Analyzer) (Result, Stats) {
	var diags []Diagnostic
	var stats Stats

	start := time.Now()
	prog := BuildProgram(pkgs)
	stats.BuildProgram = time.Since(start)

	for _, a := range analyzers {
		t0 := time.Now()
		if a.Global {
			pass := &Pass{
				Fset:    prog.Fset,
				Prog:    prog,
				checker: a.Name,
				diags:   &diags,
			}
			a.Run(pass)
		} else {
			for _, pkg := range pkgs {
				pass := &Pass{
					Fset:    pkg.Fset,
					Files:   pkg.Files,
					Pkg:     pkg.Types,
					Info:    pkg.Info,
					Prog:    prog,
					checker: a.Name,
					diags:   &diags,
				}
				a.Run(pass)
			}
		}
		stats.Checkers = append(stats.Checkers, CheckerTiming{Name: a.Name, Duration: time.Since(t0)})
	}
	kept, suppressed := applyIgnores(pkgs, diags)
	sortDiags(kept)
	sortDiags(suppressed)
	return Result{Diags: kept, Suppressed: suppressed}, stats
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Checker < diags[j].Checker
	})
}

// exprChain renders a receiver expression as a dotted identifier chain
// ("t", "s.T", "m.left.table"). It returns "" for expressions that are
// not pure ident/selector chains (calls, index expressions, ...), which
// callers treat as "provenance unknown — do not report".
func exprChain(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprChain(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprChain(e.X)
	case *ast.StarExpr:
		return exprChain(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprChain(e.X)
		}
	}
	return ""
}

// isNamed reports whether t (after pointer unwrapping) is the named type
// pkgPath.name, and returns the unwrapped named type.
func isNamed(t types.Type, pkgPath, name string) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return nil, false
	}
	if obj.Pkg().Path() == pkgPath && obj.Name() == name {
		return named, true
	}
	return nil, false
}
