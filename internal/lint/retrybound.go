// Checker retrybound: a loop that retries failed I/O must be bounded.
// An accept or reconnect loop that retries on error without a bound
// either hot-spins (temporary error, no backoff) or retries forever
// (peer gone, no deadline), and both failure modes took down real
// monitors — the paper's collector must survive switch flaps without
// melting a core.
//
// A loop is flagged when all three hold:
//
//   - it attempts I/O: a net dial/listen/accept/read/write or io helper,
//     directly or through any resolvable call chain (whole-program);
//   - it retries: the error result of an I/O attempt is guarded by an if
//     whose taken branch stays in the loop (continue or fall-through), or
//     the attempt's error is discarded inside a condition-less loop;
//   - it has no bound. A bound is any of: a context check (ctx.Err(),
//     a <-ctx.Done()/time.After select case), a wall-clock check
//     (time.Now() compared against a deadline), an attempt counter (an
//     integer comparison that exits the loop, or an integer loop
//     condition), or a call to a bound-providing helper — a loaded
//     function that itself observes a context or deadline, like
//     netutil.(*Backoff).Sleep.
//
// The bound-provider rule is what lets the repo's accept loops write
// `if netutil.IsTemporary(err) && bo.Sleep(ctx) { continue }` and lint
// clean: Sleep returns false once ctx dies, so the retry is conditioned
// on a live context.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RetryBound enforces bounded retry loops around I/O.
var RetryBound = &Analyzer{
	Name:   "retrybound",
	Doc:    "loops retrying failed I/O must be bounded: an attempt counter, a deadline/context check, or a capped backoff",
	Global: true,
	Run:    runRetryBound,
}

func runRetryBound(pass *Pass) {
	prog := pass.Prog
	attempts := mayAttemptIO(prog)
	providers := boundProviders(prog)
	for _, n := range prog.nodes {
		body := n.body()
		if body == nil {
			continue
		}
		rb := &rbScan{pass: pass, pkg: n.Pkg, node: n, attempts: attempts, providers: providers}
		var walk func(node ast.Node)
		walk = func(node ast.Node) {
			if _, ok := node.(*ast.FuncLit); ok {
				return // literals are their own nodes
			}
			if loop, ok := node.(*ast.ForStmt); ok {
				rb.checkLoop(loop)
			}
			walkChildren(node, walk)
		}
		for _, s := range body.List {
			walk(s)
		}
	}
}

// ioIntrinsic reports whether one call is a direct I/O attempt: a net
// package dial/listen, a net-type accept/dial/read/write method, or an
// io helper driving a reader/writer.
func ioIntrinsic(pkg *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	if obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil {
		switch obj.Pkg().Path() {
		case "net":
			switch name {
			case "Dial", "DialTimeout", "DialUDP", "DialTCP", "DialIP",
				"Listen", "ListenTCP", "ListenUDP", "ListenPacket", "ListenIP":
				return "net." + name
			}
		case "io":
			switch name {
			case "Copy", "CopyN", "ReadAll", "ReadFull", "WriteString":
				return "io." + name
			}
		}
	}
	recvT := typeOf(pkg, sel.X)
	if recvT == nil || !isNetConnType(recvT) {
		return ""
	}
	switch name {
	case "Accept", "AcceptTCP", "AcceptUDP", "Dial", "DialContext":
		return name
	}
	if dlIOMethod(name) != 0 {
		return name
	}
	return ""
}

// mayAttemptIO computes, per function, whether calling it may attempt
// I/O, transitively through resolvable calls (spawns cut it: a goroutine
// retries on its own stack).
func mayAttemptIO(prog *Program) map[*FuncNode]bool {
	out := make(map[*FuncNode]bool, len(prog.nodes))
	for _, n := range prog.nodes {
		body := n.body()
		if body == nil {
			continue
		}
		ast.Inspect(body, func(node ast.Node) bool {
			if out[n] {
				return false
			}
			if call, ok := node.(*ast.CallExpr); ok && ioIntrinsic(n.Pkg, call) != "" {
				out[n] = true
				return false
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, n := range prog.nodes {
			if out[n] {
				continue
			}
			for _, cs := range n.Sum.calls {
				if cs.spawned {
					continue
				}
				for _, callee := range cs.callees {
					if out[callee] {
						out[n] = true
						changed = true
						break
					}
				}
				if out[n] {
					break
				}
			}
		}
	}
	return out
}

// boundProviders computes the functions whose bodies observe a context
// or deadline — ctx.Err(), a ctx.Done()/time.After select case, or a
// time.Now() comparison — transitively through resolvable calls. Calling
// one inside a retry loop conditions the retry on a live context.
func boundProviders(prog *Program) map[*FuncNode]bool {
	out := make(map[*FuncNode]bool, len(prog.nodes))
	for _, n := range prog.nodes {
		body := n.body()
		if body == nil {
			continue
		}
		ast.Inspect(body, func(node ast.Node) bool {
			if out[n] {
				return false
			}
			if isCtxOrClockCheck(n.Pkg, node) {
				out[n] = true
				return false
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, n := range prog.nodes {
			if out[n] {
				continue
			}
			for _, cs := range n.Sum.calls {
				if cs.spawned {
					continue
				}
				for _, callee := range cs.callees {
					if out[callee] {
						out[n] = true
						changed = true
						break
					}
				}
				if out[n] {
					break
				}
			}
		}
	}
	return out
}

// isCtxOrClockCheck matches one node that observes cancellation or the
// clock: ctx.Err(), <-ctx.Done(), a select with a cancellation-shaped
// case, or a time.Now()/time.Since comparison.
func isCtxOrClockCheck(pkg *Package, node ast.Node) bool {
	switch node := node.(type) {
	case *ast.SelectStmt:
		return selectHasEscapeInfo(pkg.Info, node)
	case *ast.CallExpr:
		sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		switch sel.Sel.Name {
		case "Err", "Done":
			return isContextType(typeOf(pkg, sel.X))
		case "After", "Before":
			// t.After(deadline) on a time.Time — a wall-clock bound.
			_, isTime := isNamed(typeOf(pkg, sel.X), "time", "Time")
			return isTime
		}
	}
	return false
}

// rbScan checks the for-loops of one function body.
type rbScan struct {
	pass      *Pass
	pkg       *Package
	node      *FuncNode
	attempts  map[*FuncNode]bool
	providers map[*FuncNode]bool
}

// checkLoop applies the three-part test to one for-loop. The walk over
// the body excludes nested for/range loops (checked on their own) and
// function literals (their own analysis roots).
func (rb *rbScan) checkLoop(loop *ast.ForStmt) {
	var attempt string // first I/O attempt found, for the message
	ioErrs := map[*types.Var]bool{}
	retries := false
	bounded := false

	if loop.Cond != nil && (rb.condBounds(loop.Cond) || hasIntCompare(rb.pkg, loop.Cond)) {
		bounded = true
	}

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ForStmt, *ast.RangeStmt:
			return
		case *ast.SelectStmt:
			if selectHasEscapeInfo(rb.pkg.Info, n) {
				bounded = true
			}
		case *ast.AssignStmt:
			// x, err := <attempt>: remember which error objects carry an
			// I/O attempt's outcome. A direct intrinsic attempt whose error
			// is dropped in a condition-less loop is an unconditional
			// retry; a transitive attempt with a dropped error handled its
			// failures inside the callee, so only a guarded error counts.
			if len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					if what := rb.attemptCall(call); what != "" {
						if attempt == "" {
							attempt = what
						}
						tracked := false
						for _, lhs := range n.Lhs {
							if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
								if obj, ok := rb.pkg.Info.Defs[id].(*types.Var); ok && isErrorType(obj.Type()) {
									ioErrs[obj] = true
									tracked = true
								} else if obj, ok := rb.pkg.Info.Uses[id].(*types.Var); ok && isErrorType(obj.Type()) {
									ioErrs[obj] = true
									tracked = true
								}
							}
						}
						if !tracked && loop.Cond == nil && ioIntrinsic(rb.pkg, call) != "" {
							retries = true
						}
					}
				}
			}
		case *ast.ExprStmt:
			// A bare statement-position intrinsic attempt discards both the
			// result and the error: in a condition-less loop that is a
			// hot-spin retry. Transitive calls are excluded — the callee
			// owns its error handling (a heartbeat loop calling flush() is
			// periodic work, not a retry).
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				if what := ioIntrinsic(rb.pkg, call); what != "" {
					if attempt == "" {
						attempt = what
					}
					if loop.Cond == nil {
						retries = true
					}
				}
			}
		case *ast.IfStmt:
			if rb.ifIsBound(n) {
				bounded = true
			}
			if rb.guardsIOErr(n, ioErrs) && !branchLeavesLoop(n.Body) {
				retries = true
			}
		case *ast.CallExpr:
			if rb.isBoundCall(n) {
				bounded = true
			}
		}
		walkChildren(n, walk)
	}
	for _, s := range loop.Body.List {
		walk(s)
	}

	if attempt == "" || !retries || bounded {
		return
	}
	if rb.backoffIsCapped(loop) {
		return
	}
	rb.pass.Reportf(loop.For,
		"loop retries %s without a bound: add an attempt counter, a deadline/context check, or a capped backoff",
		attempt)
}

// attemptCall names the I/O attempt a call makes, directly or through a
// resolvable callee, or "".
func (rb *rbScan) attemptCall(call *ast.CallExpr) string {
	if what := ioIntrinsic(rb.pkg, call); what != "" {
		return what
	}
	for _, callee := range rb.pass.Prog.resolveCall(rb.pkg, call) {
		if rb.attempts[callee] {
			return callee.Name
		}
	}
	return ""
}

// isBoundCall reports whether the call observes a context or deadline:
// a direct ctx/clock check or a call to a bound-providing function.
func (rb *rbScan) isBoundCall(call *ast.CallExpr) bool {
	if isCtxOrClockCheck(rb.pkg, call) {
		return true
	}
	for _, callee := range rb.pass.Prog.resolveCall(rb.pkg, call) {
		if rb.providers[callee] {
			return true
		}
	}
	return false
}

// ifIsBound reports whether an if statement is a counter exit: an
// integer comparison whose taken branch leaves the loop.
func (rb *rbScan) ifIsBound(n *ast.IfStmt) bool {
	return hasIntCompare(rb.pkg, n.Cond) && branchLeavesLoop(n.Body)
}

// condBounds reports whether a loop condition observes a bound provider
// (e.g. `for bo.Sleep(ctx)`).
func (rb *rbScan) condBounds(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && rb.isBoundCall(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// guardsIOErr reports whether the if condition mentions an error object
// produced by an I/O attempt in this loop.
func (rb *rbScan) guardsIOErr(n *ast.IfStmt, ioErrs map[*types.Var]bool) bool {
	if len(ioErrs) == 0 {
		return false
	}
	found := false
	ast.Inspect(n.Cond, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok {
			if obj, ok := rb.pkg.Info.Uses[id].(*types.Var); ok && ioErrs[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// branchLeavesLoop reports whether the branch body always transfers
// control out of the enclosing loop: its last statement is a return, a
// goto, or a break (continue stays in the loop).
func branchLeavesLoop(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch s := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.BREAK || s.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return branchLeavesLoop(s)
	}
	return false
}

// hasIntCompare reports whether the expression contains an ordered
// comparison between integer-typed operands — the shape of an attempt
// counter check.
func hasIntCompare(pkg *Package, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
		default:
			return true
		}
		if isIntType(typeOf(pkg, be.X)) && isIntType(typeOf(pkg, be.Y)) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isIntType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// backoffIsCapped recognizes the inline capped-backoff idiom: the loop
// sleeps a variable duration that grows (d *= k or d += k) and is capped
// (an if comparing d that reassigns it, or d = min(...)). Growth without
// a cap — or a constant sleep — is not a bound.
func (rb *rbScan) backoffIsCapped(loop *ast.ForStmt) bool {
	// Find the duration variable the loop sleeps on.
	var sleepVar *types.Var
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if sleepVar != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Sleep" {
			return true
		}
		obj, ok := rb.pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if v, ok := rb.pkg.Info.Uses[id].(*types.Var); ok {
				sleepVar = v
			}
		}
		return true
	})
	if sleepVar == nil {
		return false
	}
	grows, capped := false, false
	scan := func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj, ok := rb.pkg.Info.Uses[id].(*types.Var)
			if !ok || obj != sleepVar {
				continue
			}
			switch as.Tok {
			case token.MUL_ASSIGN, token.ADD_ASSIGN, token.SHL_ASSIGN:
				grows = true
			case token.ASSIGN:
				if i < len(as.Rhs) {
					if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok {
						if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fid.Name == "min" {
							if _, isBuiltin := rb.pkg.Info.Uses[fid].(*types.Builtin); isBuiltin {
								capped = true
								grows = true // min(d*2, max) both grows and caps
							}
						}
					}
					if be, ok := ast.Unparen(as.Rhs[i]).(*ast.BinaryExpr); ok {
						if be.Op == token.MUL || be.Op == token.ADD || be.Op == token.SHL {
							grows = true
						}
					}
				}
			}
		}
		return true
	}
	// A cap: an if comparing the sleep variable whose body reassigns it.
	capScan := func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if !exprMentionsVar(rb.pkg, ifs.Cond, sleepVar) {
			return true
		}
		ast.Inspect(ifs.Body, func(b ast.Node) bool {
			if as, ok := b.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						if obj, ok := rb.pkg.Info.Uses[id].(*types.Var); ok && obj == sleepVar {
							capped = true
						}
					}
				}
			}
			return true
		})
		return true
	}
	ast.Inspect(loop.Body, scan)
	ast.Inspect(loop.Body, capScan)
	return grows && capped
}

func exprMentionsVar(pkg *Package, e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj, ok := pkg.Info.Uses[id].(*types.Var); ok && obj == v {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
